module twoface

go 1.22
