package twoface

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestOpsServerLiveScrape hammers /metrics and /healthz over real HTTP while
// a run executes — the concurrency contract of the ops endpoint (scrapes
// snapshot state and never perturb the simulation), checked for data races
// by the suite's -race pass.
func TestOpsServerLiveScrape(t *testing.T) {
	DefaultMetrics().Reset()
	DefaultMetrics().SetEnabled(true)
	defer DefaultMetrics().SetEnabled(false)

	srv, err := ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetStatus("running")

	scrape := func(path string) (string, string, error) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			return "", "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type"), err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var scrapeErr error
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := scrape("/metrics"); err != nil {
					mu.Lock()
					scrapeErr = err
					mu.Unlock()
					return
				}
				if _, _, err := scrape("/healthz"); err != nil {
					mu.Lock()
					scrapeErr = err
					mu.Unlock()
					return
				}
			}
		}()
	}

	sys, err := New(Options{Nodes: 4, DenseColumns: 32, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	a := Generate("web", 0.05, 9)
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Multiply(RandomDense(int(a.NumCols), 32, 10))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if scrapeErr != nil {
		t.Fatalf("scrape during the run failed: %v", scrapeErr)
	}

	// After the run: the exposition is well formed and carries executor
	// counters incremented mid-run.
	body, ctype, err := scrape("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.HasSuffix(body, "# EOF\n") || !strings.Contains(body, "# TYPE exec_") {
		t.Fatalf("/metrics is not a valid exposition with executor metrics:\n%s", body)
	}

	// Publishing the finished run's report flips /report from 404 to JSON
	// carrying the critical-path attribution.
	rep := NewRunReport("ops-test")
	rep.SetRun(res.Breakdowns, res.Transfer, res.ModeledSeconds, res.Wall)
	srv.SetReport(rep)
	srv.SetStatus("done")
	body, _, err = scrape("/report")
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal([]byte(body), &back); err != nil {
		t.Fatal(err)
	}
	if back.CriticalPath == nil || back.CriticalPath.Makespan != res.ModeledSeconds {
		t.Fatalf("/report critical path missing or wrong: %+v", back.CriticalPath)
	}
	if body, _, _ := scrape("/healthz"); body != "ok done\n" {
		t.Fatalf("/healthz after the run = %q", body)
	}
}
