package twoface

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"twoface/internal/chaos"
	"twoface/internal/cluster"
	"twoface/internal/core"
)

// The chaos harness: Two-Face and every baseline run under randomized
// seeded fault plans, and each run must (a) produce a result bit-identical
// to the fault-free run — survivable faults are absorbed by retry and
// degradation, never by changing what data moves — and (b) inflate the
// modeled makespan by a bounded, non-negative amount that the resilience
// counters attribute.

const chaosNodes = 4

var chaosAlgos = []string{"twoface", "DS1", "DS2", "Allgather", "AsyncCoarse", "AsyncFine"}

func chaosWorkload(t *testing.T) (*SparseMatrix, *DenseMatrix) {
	t.Helper()
	a := Generate("queen", 0.02, 42)
	return a, RandomDense(int(a.NumCols), 8, 1)
}

// runChaosAlgo executes one algorithm on a fresh system, under the given
// fault plan (nil = healthy).
func runChaosAlgo(t *testing.T, algo string, a *SparseMatrix, b *DenseMatrix, plan *FaultPlan) *Result {
	t.Helper()
	sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols, Chaos: plan})
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	if algo == "twoface" {
		pl, err := sys.Preprocess(a)
		if err != nil {
			t.Fatal(err)
		}
		res, err = pl.Multiply(b)
		if err != nil {
			t.Fatalf("%s under chaos: %v", algo, err)
		}
		return res
	}
	res, err = sys.RunBaseline(Baseline(algo), a, b)
	if err != nil {
		t.Fatalf("%s under chaos: %v", algo, err)
	}
	return res
}

func bitIdentical(x, y *DenseMatrix) error {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return fmt.Errorf("shape %dx%d vs %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			return fmt.Errorf("element %d: %v vs %v", i, x.Data[i], y.Data[i])
		}
	}
	return nil
}

// ulpEquivalent accepts the reassociation noise of concurrent accumulation:
// multi-worker runs reorder float additions by scheduling, so even two
// fault-free runs of the async algorithms differ by ~1e-13 relative. Any
// element past 1e-9 means wrong data moved, not reordered sums — see
// TestChaosSingleWorkerExact for the bit-exact single-worker case.
func ulpEquivalent(x, y *DenseMatrix) error {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return fmt.Errorf("shape %dx%d vs %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	for i := range x.Data {
		if !within(x.Data[i], y.Data[i], 1e-9) {
			return fmt.Errorf("element %d: %v vs %v", i, x.Data[i], y.Data[i])
		}
	}
	return nil
}

// TestChaosSurvivableBitExact is the tentpole acceptance test: randomized
// survivable fault plans leave every algorithm's result identical to the
// fault-free run — up to the reassociation ulps multi-worker scheduling
// already introduces between two healthy runs — with non-negative
// attributed makespan inflation.
func TestChaosSurvivableBitExact(t *testing.T) {
	a, b := chaosWorkload(t)
	clean := map[string]*Result{}
	for _, algo := range chaosAlgos {
		clean[algo] = runChaosAlgo(t, algo, a, b, nil)
	}
	for _, seed := range []uint64{3, 11, 27} {
		plan := RandomFaultPlan(seed, chaosNodes)
		if !plan.Survivable() {
			t.Fatalf("seed %d: RandomFaultPlan must be survivable", seed)
		}
		var anyFaulted bool
		for _, algo := range chaosAlgos {
			res := runChaosAlgo(t, algo, a, b, plan)
			if err := ulpEquivalent(res.C, clean[algo].C); err != nil {
				t.Errorf("seed %d, %s: result differs from fault-free run: %v", seed, algo, err)
			}
			rs := res.TotalResilience
			if rs.Faulted() {
				anyFaulted = true
			}
			// Inflation is bounded below by zero: the plan only stretches
			// charges (factors >= 1) and adds retry/backoff/delay time.
			infl := res.ModeledSeconds - clean[algo].ModeledSeconds
			if infl < -1e-12*clean[algo].ModeledSeconds {
				t.Errorf("seed %d, %s: chaotic makespan %v below fault-free %v", seed, algo, res.ModeledSeconds, clean[algo].ModeledSeconds)
			}
			// Attribution: whenever the run absorbed faults, the counters
			// must carry the time the ledger was inflated by.
			if rs.Faulted() && rs.BackoffSeconds+rs.DelaySeconds > 0 && infl <= 0 {
				t.Errorf("seed %d, %s: %v backoff+delay absorbed but makespan did not move", seed, algo, rs.BackoffSeconds+rs.DelaySeconds)
			}
			if len(res.Resilience) != chaosNodes {
				t.Errorf("seed %d, %s: per-rank resilience missing (%d entries)", seed, algo, len(res.Resilience))
			}
		}
		if !anyFaulted {
			t.Errorf("seed %d: no algorithm recorded any fault handling; the plan is vacuous", seed)
		}
	}
}

// TestChaosSameSeedReproduces: the same -chaos-seed replays identical fault
// events — exact integer retry/degradation counts — and a modeled makespan
// identical to float tolerance (concurrent workers may reorder float
// summation by ulps; see TestChaosSingleWorkerExact for the exact case).
func TestChaosSameSeedReproduces(t *testing.T) {
	a, b := chaosWorkload(t)
	plan := RandomFaultPlan(7, chaosNodes)
	first := runChaosAlgo(t, "twoface", a, b, plan)
	for i := 0; i < 3; i++ {
		res := runChaosAlgo(t, "twoface", a, b, plan)
		if err := ulpEquivalent(res.C, first.C); err != nil {
			t.Fatalf("replay %d: C differs: %v", i, err)
		}
		for rank := range res.Resilience {
			got, want := res.Resilience[rank], first.Resilience[rank]
			if got.GetRetries != want.GetRetries || got.GetExhausted != want.GetExhausted ||
				got.Degradations != want.Degradations || got.DegradedElems != want.DegradedElems ||
				got.LegRetries != want.LegRetries {
				t.Fatalf("replay %d, rank %d: fault counts differ: %+v vs %+v", i, rank, got, want)
			}
			if !within(got.BackoffSeconds, want.BackoffSeconds, 1e-9) || !within(got.DelaySeconds, want.DelaySeconds, 1e-9) {
				t.Fatalf("replay %d, rank %d: fault seconds differ: %+v vs %+v", i, rank, got, want)
			}
		}
		if !within(res.ModeledSeconds, first.ModeledSeconds, 1e-9) {
			t.Fatalf("replay %d: makespan %v vs %v", i, res.ModeledSeconds, first.ModeledSeconds)
		}
	}
}

func within(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*math.Max(scale, 1e-300)
}

// TestChaosSingleWorkerExact: with one worker per queue there is no
// concurrent float summation, so the same seed reproduces the modeled
// makespan and every resilience counter bit-for-bit.
func TestChaosSingleWorkerExact(t *testing.T) {
	a, b := chaosWorkload(t)
	plan := RandomFaultPlan(7, chaosNodes)

	runOnce := func() (*core.Result, []cluster.ResilienceStats) {
		sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols})
		if err != nil {
			t.Fatal(err)
		}
		net := sys.Net(a.NumRows)
		params := core.Params{P: chaosNodes, K: b.Cols, W: 8, Coef: DeriveCoefficients(net)}
		prep, err := core.Preprocess(a, params)
		if err != nil {
			t.Fatal(err)
		}
		clu, err := cluster.New(chaosNodes, net)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := plan.Injector(chaosNodes)
		if err != nil {
			t.Fatal(err)
		}
		clu.SetFaultInjector(inj)
		res, err := core.Exec(prep, b, clu, core.ExecOptions{AsyncWorkers: 1, SyncWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Resilience
	}

	r1, s1 := runOnce()
	r2, s2 := runOnce()
	if r1.ModeledSeconds != r2.ModeledSeconds {
		t.Errorf("single-worker makespan not bit-identical: %v vs %v", r1.ModeledSeconds, r2.ModeledSeconds)
	}
	for rank := range s1 {
		if s1[rank] != s2[rank] {
			t.Errorf("rank %d: resilience not bit-identical: %+v vs %+v", rank, s1[rank], s2[rank])
		}
	}
	if err := bitIdentical(r1.C, r2.C); err != nil {
		t.Errorf("single-worker C not bit-identical: %v", err)
	}
}

// TestChaosTraceAttribution: retries and degradations surface as trace
// events, so the exported trace attributes the inflation.
func TestChaosTraceAttribution(t *testing.T) {
	a, b := chaosWorkload(t)
	plan := RandomFaultPlan(7, chaosNodes)
	sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols, Chaos: plan, TraceEvents: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TotalResilience.Faulted() {
		t.Skip("plan injected nothing on this workload; nothing to attribute")
	}
	var retries, degrades int
	for _, ev := range res.TraceEvents {
		switch ev.Op {
		case cluster.TraceRetry:
			retries++
		case cluster.TraceDegrade:
			degrades++
		}
	}
	if int64(retries) != res.TotalResilience.GetRetries+res.TotalResilience.LegRetries {
		t.Errorf("trace has %d retry events, counters say %d", retries, res.TotalResilience.GetRetries+res.TotalResilience.LegRetries)
	}
	if int64(degrades) != res.TotalResilience.Degradations {
		t.Errorf("trace has %d degrade events, counters say %d", degrades, res.TotalResilience.Degradations)
	}
}

// TestChaosCrashFailsCleanly: a non-survivable plan (rank crash) must fail
// the run with typed errors, not hang it, and the error must be observable
// through the public facade.
func TestChaosCrashFailsCleanly(t *testing.T) {
	a, b := chaosWorkload(t)
	plan := &FaultPlan{Crashes: []chaos.Crash{{Rank: 1, At: 1e-12}}}
	sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols, Chaos: plan})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pl.Multiply(b)
	if err == nil {
		t.Fatal("crash plan must fail the multiply")
	}
	if !errors.Is(err, cluster.ErrCrashed) {
		t.Errorf("error %v does not wrap ErrCrashed", err)
	}
	if !errors.Is(err, cluster.ErrAborted) {
		t.Errorf("error %v does not wrap ErrAborted", err)
	}
}

// --- Fail-recover: checkpointed crash recovery (DESIGN.md section 12) ---

// TestChaosRecoverySingleWorkerExact is the recovery acceptance test: a
// seeded crash plan with recovery enabled completes without abort, the
// recovered C agrees with the fault-free run, and a same-seed replay is
// bit-identical in C, makespan, and every resilience counter. Runs both the
// batched and the legacy one-get-per-stripe async paths, with crashes at
// the very start and in the middle of the run.
func TestChaosRecoverySingleWorkerExact(t *testing.T) {
	a, b := chaosWorkload(t)
	for _, legacy := range []bool{false, true} {
		name := "batched"
		if legacy {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			runOnce := func(plan *FaultPlan, recovery bool, interval float64) *core.Result {
				t.Helper()
				sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols})
				if err != nil {
					t.Fatal(err)
				}
				net := sys.Net(a.NumRows)
				params := core.Params{P: chaosNodes, K: b.Cols, W: 8, Coef: DeriveCoefficients(net), LegacyAsyncGets: legacy}
				prep, err := core.Preprocess(a, params)
				if err != nil {
					t.Fatal(err)
				}
				clu, err := cluster.New(chaosNodes, net)
				if err != nil {
					t.Fatal(err)
				}
				if plan != nil {
					inj, err := plan.Injector(chaosNodes)
					if err != nil {
						t.Fatal(err)
					}
					clu.SetFaultInjector(inj)
				}
				clu.SetRecovery(recovery)
				res, err := core.Exec(prep, b, clu, core.ExecOptions{AsyncWorkers: 1, SyncWorkers: 1, CheckpointInterval: interval})
				if err != nil {
					t.Fatalf("exec (recovery=%v): %v", recovery, err)
				}
				return res
			}

			clean := runOnce(nil, false, 0)
			// The miniature workload's makespan is shorter than the automatic
			// ~2%-overhead cadence, so pin an interval that forces
			// checkpoints before the mid-run crashes.
			interval := clean.ModeledSeconds / 20
			for _, frac := range []float64{0, 0.3, 0.7} {
				at := 1e-12 + frac*clean.ModeledSeconds
				plan := &FaultPlan{Crashes: []chaos.Crash{{Rank: 1, At: at}}}
				r1 := runOnce(plan, true, interval)
				r2 := runOnce(plan, true, interval)

				rs := r1.TotalResilience
				if rs.Crashes != 1 {
					t.Errorf("frac %v: Crashes = %d, want 1", frac, rs.Crashes)
				}
				if rs.RecoveredStripes+rs.RecoveredPanels == 0 {
					t.Errorf("frac %v: nothing re-executed: %+v", frac, rs)
				}
				if rs.RecoverySeconds <= 0 {
					t.Errorf("frac %v: no recovery time attributed: %+v", frac, rs)
				}
				// The recovered result must agree with the fault-free run.
				if err := ulpEquivalent(r1.C, clean.C); err != nil {
					t.Errorf("frac %v: recovered C differs from fault-free: %v", frac, err)
				}
				// And the replay must be an exact reproduction.
				if err := bitIdentical(r1.C, r2.C); err != nil {
					t.Errorf("frac %v: replay C not bit-identical: %v", frac, err)
				}
				if r1.ModeledSeconds != r2.ModeledSeconds {
					t.Errorf("frac %v: replay makespan %v vs %v", frac, r1.ModeledSeconds, r2.ModeledSeconds)
				}
				for rank := range r1.Resilience {
					if r1.Resilience[rank] != r2.Resilience[rank] {
						t.Errorf("frac %v, rank %d: resilience not bit-identical:\n  %+v\n  %+v",
							frac, rank, r1.Resilience[rank], r2.Resilience[rank])
					}
				}
				// A mid-run crash leaves time for checkpoints at the auto
				// cadence, and the checkpoint cut must shrink the redo.
				if frac > 0 && rs.Checkpoints == 0 {
					t.Errorf("frac %v: no checkpoints written before the crash", frac)
				}
			}
		})
	}
}

// TestChaosRecoveryFacade: the public facade path — Options.Recover on a
// crash-extended random plan — completes Multiply under concurrent workers
// and matches the fault-free run within reassociation tolerance.
func TestChaosRecoveryFacade(t *testing.T) {
	a, b := chaosWorkload(t)
	clean := runChaosAlgo(t, "twoface", a, b, nil)
	plan := RandomFaultPlan(9, chaosNodes)
	plan.Crashes = append(plan.Crashes, chaos.Crash{Rank: 2, At: 0.4 * clean.ModeledSeconds})
	if !plan.Recoverable(chaosNodes) {
		t.Fatal("plan must be recoverable")
	}

	sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols, Chaos: plan, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Multiply(b)
	if err != nil {
		t.Fatalf("recovery-enabled multiply must complete: %v", err)
	}
	if err := ulpEquivalent(res.C, clean.C); err != nil {
		t.Errorf("recovered C differs from fault-free run: %v", err)
	}
	rs := res.TotalResilience
	if rs.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", rs.Crashes)
	}
	if rs.RecoveredStripes+rs.RecoveredPanels == 0 || rs.RecoverySeconds <= 0 {
		t.Errorf("recovery not attributed: %+v", rs)
	}
}

// TestChaosRecoveryAllCrashAborts: when every rank is doomed there is no
// survivor to recover, and the run must still fail cleanly with typed
// errors — the documented unrecoverable case.
func TestChaosRecoveryAllCrashAborts(t *testing.T) {
	a, b := chaosWorkload(t)
	var crashes []chaos.Crash
	for rank := 0; rank < chaosNodes; rank++ {
		crashes = append(crashes, chaos.Crash{Rank: rank, At: 1e-12})
	}
	sys, err := New(Options{Nodes: chaosNodes, DenseColumns: b.Cols, Chaos: &FaultPlan{Crashes: crashes}, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Multiply(b); !errors.Is(err, cluster.ErrCrashed) {
		t.Errorf("all-rank crash: %v, want ErrCrashed", err)
	}
}
