package twoface_test

import (
	"fmt"
	"sync"
	"testing"

	"twoface"
)

// TestConcurrentMultiplyOnOnePlan hammers a single Plan from many goroutines
// with a mix of dense operands. The Plan contract says concurrent Multiply
// calls serialize internally; under -race this test is the proof that the
// shared cluster state, the cross-run row cache (which the mixed operands
// keep invalidating), and the pooled scratch survive the traffic, and every
// call must still return the exact reference product for its own B.
func TestConcurrentMultiplyOnOnePlan(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer is not a -short test")
	}
	a := twoface.Generate("web", 0.05, 7)
	sys, err := twoface.New(twoface.Options{Nodes: 4, DenseColumns: 16})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}

	// Three operands: repeats of one B exercise the row-cache hit path,
	// switches between them exercise invalidation mid-hammer.
	const nOperands = 3
	bs := make([]*twoface.DenseMatrix, nOperands)
	want := make([]*twoface.DenseMatrix, nOperands)
	for i := range bs {
		bs[i] = twoface.RandomDense(plan.NumCols(), sys.DenseColumns(), uint64(100+i))
		want[i], err = twoface.Reference(a, bs[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				bi := (g + it) % nOperands
				res, err := plan.Multiply(bs[bi])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if !res.C.AlmostEqual(want[bi], 1e-9) {
					errs <- fmt.Errorf("goroutine %d iter %d: C does not match the reference for operand %d", g, it, bi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixedExecKinds interleaves Multiply, MultiplySampled, and
// SDDMM on one Plan from separate goroutines — the three entry points share
// the cluster, so all of them must take the same serialization.
func TestConcurrentMixedExecKinds(t *testing.T) {
	a := twoface.Generate("web", 0.05, 11)
	sys, err := twoface.New(twoface.Options{Nodes: 4, DenseColumns: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	b := twoface.RandomDense(plan.NumCols(), 8, 21)
	x := twoface.RandomDense(plan.NumRows(), 8, 22)
	y := twoface.RandomDense(plan.NumCols(), 8, 23)

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		if _, err := plan.Multiply(b); err != nil {
			errs <- err
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := plan.MultiplySampled(b, 0.5, 9); err != nil {
			errs <- err
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := plan.SDDMM(x, y); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFingerprintDense pins the row-cache invalidation contract: identical
// contents agree, and a tail mutation — which the strided sampler would
// otherwise miss — changes the fingerprint. (It is a sampled heuristic, so
// the serving coalescer keys on exact identity instead; see
// internal/serve/coalesce.go.)
func TestFingerprintDense(t *testing.T) {
	b1 := twoface.RandomDense(64, 8, 1)
	b2 := twoface.RandomDense(64, 8, 1)
	if twoface.FingerprintDense(b1) != twoface.FingerprintDense(b2) {
		t.Fatal("identical operands fingerprint differently")
	}
	fp := twoface.FingerprintDense(b1)
	b1.Data[len(b1.Data)-1] += 1
	if twoface.FingerprintDense(b1) == fp {
		t.Fatal("tail mutation did not change the fingerprint")
	}
}
