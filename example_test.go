package twoface_test

import (
	"fmt"

	"twoface"
)

// The basic flow: preprocess once, multiply many times.
func Example() {
	a := twoface.Generate("web", 0.02, 42)
	b := twoface.RandomDense(int(a.NumCols), 32, 1)

	sys, err := twoface.New(twoface.Options{Nodes: 4, DenseColumns: 32})
	if err != nil {
		panic(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		panic(err)
	}
	res, err := plan.Multiply(b)
	if err != nil {
		panic(err)
	}

	want, _ := twoface.Reference(a, b)
	fmt.Println("correct:", res.C.AlmostEqual(want, 1e-9))
	fmt.Println("C shape:", res.C.Rows, "x", res.C.Cols)
	// Output:
	// correct: true
	// C shape: 1978 x 32
}

// Comparing Two-Face against a baseline on the same simulated cluster.
func ExampleSystem_RunBaseline() {
	a := twoface.Generate("queen", 0.02, 42)
	b := twoface.RandomDense(int(a.NumCols), 16, 1)

	sys, _ := twoface.New(twoface.Options{Nodes: 4, DenseColumns: 16})
	plan, _ := sys.Preprocess(a)
	tf, _ := plan.Multiply(b)
	ds, _ := sys.RunBaseline(twoface.DenseShift2, a, b)

	fmt.Println("same result:", tf.C.AlmostEqual(ds.C, 1e-9))
	fmt.Println("Two-Face faster:", tf.ModeledSeconds < ds.ModeledSeconds)
	// Output:
	// same result: true
	// Two-Face faster: true
}

// SDDMM reuses the SpMM plan's communication schedule (paper section 9).
func ExamplePlan_SDDMM() {
	a := twoface.Generate("stokes", 0.02, 7)
	n := int(a.NumRows)
	x := twoface.RandomDense(n, 8, 1)
	y := twoface.RandomDense(n, 8, 2)

	sys, _ := twoface.New(twoface.Options{Nodes: 4, DenseColumns: 8})
	plan, _ := sys.Preprocess(a)
	res, _ := plan.SDDMM(x, y)

	fmt.Println("sampled entries == nnz(A):", res.C.NNZ() == a.NNZ())
	// Output:
	// sampled entries == nnz(A): true
}

// Sampled SpMM (paper section 5.4): the plan is fixed, the mask varies per
// iteration.
func ExamplePlan_MultiplySampled() {
	a := twoface.Generate("kmer", 0.01, 3)
	b := twoface.RandomDense(int(a.NumCols), 8, 4)

	sys, _ := twoface.New(twoface.Options{Nodes: 2, DenseColumns: 8})
	plan, _ := sys.Preprocess(a)

	full, _ := plan.Multiply(b)
	sampled, _ := plan.MultiplySampled(b, 0.5, 1)

	diff, _ := full.C.MaxAbsDiff(sampled.C)
	fmt.Println("sampling changes the result:", diff > 0)
	// Output:
	// sampling changes the result: true
}
