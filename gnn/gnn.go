// Package gnn implements full-graph graph-convolutional-network training on
// top of Two-Face, the motivating application of the paper (section 5.4):
// every layer's neighbourhood aggregation — forward and backward — is a
// distributed SpMM over the same normalized adjacency matrix, so one
// Two-Face preprocessing pass is amortized over every layer of every epoch.
//
// The model is a standard GCN for semi-supervised node classification
// (Kipf & Welling, cited by the paper): H_l = act(Â H_{l-1} W_l) with
// Â = D^-1/2 (A + A^T + I) D^-1/2. Because Â is symmetric, the backward
// pass's Â^T SpMMs reuse the forward plan unchanged.
package gnn

import (
	"fmt"
	"math"

	"twoface"
	"twoface/internal/dense"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	// None is the identity (used for the output layer's logits).
	None Activation = iota
	// ReLU is max(0, x).
	ReLU
)

func (a Activation) apply(m *twoface.DenseMatrix) {
	if a == ReLU {
		for i, v := range m.Data {
			if v < 0 {
				m.Data[i] = 0
			}
		}
	}
}

// maskGrad zeroes gradient entries where the activation was inactive.
func (a Activation) maskGrad(grad, pre *twoface.DenseMatrix) {
	if a == ReLU {
		for i := range grad.Data {
			if pre.Data[i] <= 0 {
				grad.Data[i] = 0
			}
		}
	}
}

// Layer is one graph convolution: aggregate neighbours, project, activate.
type Layer struct {
	W   *twoface.DenseMatrix // in x out projection
	Act Activation
}

// Model is a GCN bound to a preprocessed graph.
type Model struct {
	plan   *twoface.Plan
	Layers []*Layer
	// ModeledSeconds accumulates the modeled time of every distributed SpMM
	// the model has executed (forward and backward).
	ModeledSeconds float64
}

// NormalizeAdjacency returns Â = D^-1/2 (A + A^T + I) D^-1/2, the symmetric
// GCN propagation matrix of the input graph's structure (values are
// ignored; each edge contributes structure only).
func NormalizeAdjacency(g *twoface.SparseMatrix) (*twoface.SparseMatrix, error) {
	if g.NumRows != g.NumCols {
		return nil, fmt.Errorf("gnn: adjacency must be square, got %dx%d", g.NumRows, g.NumCols)
	}
	n := g.NumRows
	out := twoface.NewSparse(n, n)
	for _, e := range g.Entries {
		out.Append(e.Row, e.Col, 1)
		if e.Row != e.Col {
			out.Append(e.Col, e.Row, 1)
		}
	}
	for i := int32(0); i < n; i++ {
		out.Append(i, i, 1)
	}
	out.Dedup()
	// Dedup sums duplicates; reset all structural values to 1 before
	// normalizing.
	for i := range out.Entries {
		out.Entries[i].Val = 1
	}
	deg := make([]float64, n)
	for _, e := range out.Entries {
		deg[e.Row]++
	}
	for i := range out.Entries {
		e := &out.Entries[i]
		e.Val = 1 / math.Sqrt(deg[e.Row]*deg[e.Col])
	}
	return out, nil
}

// New builds a GCN with the given layer dimensions (dims[0] is the input
// feature width; len(dims)-1 layers follow; the last layer emits logits with
// no activation). Every hidden dimension must equal sys's DenseColumns so
// each aggregation is one distributed SpMM of the configured width; the
// simplest valid configuration uses the same width everywhere.
//
// The adjacency must already be normalized (see NormalizeAdjacency); New
// preprocesses it once.
func New(sys *twoface.System, adj *twoface.SparseMatrix, dims []int, seed uint64) (*Model, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("gnn: need at least input and output dims, got %v", dims)
	}
	// Every tensor that flows through the distributed aggregation (the layer
	// inputs, and the gradients flowing back) must have the plan's width.
	for l := 0; l+1 < len(dims); l++ {
		if dims[l] != sys.DenseColumns() {
			return nil, fmt.Errorf("gnn: dims[%d] = %d must equal the system's DenseColumns (%d)", l, dims[l], sys.DenseColumns())
		}
	}
	if dims[len(dims)-1] <= 0 {
		return nil, fmt.Errorf("gnn: non-positive output dimension in %v", dims)
	}
	plan, err := sys.Preprocess(adj)
	if err != nil {
		return nil, err
	}
	m := &Model{plan: plan}
	for l := 0; l+1 < len(dims); l++ {
		w := twoface.RandomDense(dims[l], dims[l+1], seed+uint64(l))
		w.Scale(1 / math.Sqrt(float64(dims[l]))) // Glorot-style
		act := ReLU
		if l == len(dims)-2 {
			act = None
		}
		m.Layers = append(m.Layers, &Layer{W: w, Act: act})
	}
	return m, nil
}

// forwardState caches the per-layer tensors the backward pass needs.
type forwardState struct {
	inputs []*twoface.DenseMatrix // H_{l-1} per layer
	aggs   []*twoface.DenseMatrix // Â H_{l-1} per layer
	pres   []*twoface.DenseMatrix // Z_l = Agg W before activation
	out    *twoface.DenseMatrix   // H_L (logits for the last layer)
}

func (m *Model) forward(x *twoface.DenseMatrix) (*forwardState, error) {
	st := &forwardState{}
	h := x
	for _, layer := range m.Layers {
		st.inputs = append(st.inputs, h)
		res, err := m.plan.Multiply(h)
		if err != nil {
			return nil, err
		}
		m.ModeledSeconds += res.ModeledSeconds
		st.aggs = append(st.aggs, res.C)
		z, err := dense.MatMul(res.C, layer.W)
		if err != nil {
			return nil, err
		}
		st.pres = append(st.pres, z.Clone())
		layer.Act.apply(z)
		h = z
	}
	st.out = h
	return st, nil
}

// Forward runs inference and returns the logits.
func (m *Model) Forward(x *twoface.DenseMatrix) (*twoface.DenseMatrix, error) {
	st, err := m.forward(x)
	if err != nil {
		return nil, err
	}
	return st.out, nil
}

// Metrics reports one training step's outcome.
type Metrics struct {
	Loss     float64 // mean cross-entropy over labeled nodes
	Accuracy float64 // argmax accuracy over labeled nodes
}

// Step runs one full-graph training step: forward, softmax cross-entropy on
// the labeled nodes (labels[i] < 0 marks node i unlabeled), backward through
// every layer — including the distributed Â^T SpMMs — and an SGD update
// with the given learning rate.
func (m *Model) Step(x *twoface.DenseMatrix, labels []int, lr float64) (Metrics, error) {
	if len(labels) != x.Rows {
		return Metrics{}, fmt.Errorf("gnn: %d labels for %d nodes", len(labels), x.Rows)
	}
	st, err := m.forward(x)
	if err != nil {
		return Metrics{}, err
	}
	classes := st.out.Cols
	for _, l := range labels {
		if l >= classes {
			return Metrics{}, fmt.Errorf("gnn: label %d outside %d classes", l, classes)
		}
	}

	// Softmax cross-entropy on labeled rows; dZ_L = (softmax - onehot)/m.
	grad := twoface.NewDense(st.out.Rows, classes)
	var loss float64
	var correct, labeled int
	for i := 0; i < st.out.Rows; i++ {
		if labels[i] < 0 {
			continue
		}
		labeled++
		row := st.out.Row(i)
		p, argmax := softmax(row)
		loss += -math.Log(math.Max(p[labels[i]], 1e-300))
		if argmax == labels[i] {
			correct++
		}
		g := grad.Row(i)
		copy(g, p)
		g[labels[i]] -= 1
	}
	if labeled == 0 {
		return Metrics{}, fmt.Errorf("gnn: no labeled nodes")
	}
	grad.Scale(1 / float64(labeled))
	met := Metrics{Loss: loss / float64(labeled), Accuracy: float64(correct) / float64(labeled)}

	// Backward through the layers.
	dZ := grad
	for l := len(m.Layers) - 1; l >= 0; l-- {
		layer := m.Layers[l]
		dW, err := dense.MatMulT1(st.aggs[l], dZ)
		if err != nil {
			return Metrics{}, err
		}
		if l > 0 {
			dAgg, err := dense.MatMulT2(dZ, layer.W)
			if err != nil {
				return Metrics{}, err
			}
			// dH_{l-1} = Â^T dAgg; Â is symmetric, so the forward plan serves.
			res, err := m.plan.Multiply(dAgg)
			if err != nil {
				return Metrics{}, err
			}
			m.ModeledSeconds += res.ModeledSeconds
			dZ = res.C
			m.Layers[l-1].Act.maskGrad(dZ, st.pres[l-1])
		}
		if err := layer.W.AddScaled(-lr, dW); err != nil {
			return Metrics{}, err
		}
	}
	return met, nil
}

// softmax returns the probability vector and argmax of one logit row.
func softmax(row []float64) ([]float64, int) {
	max, arg := math.Inf(-1), 0
	for j, v := range row {
		if v > max {
			max, arg = v, j
		}
	}
	p := make([]float64, len(row))
	var sum float64
	for j, v := range row {
		p[j] = math.Exp(v - max)
		sum += p[j]
	}
	for j := range p {
		p[j] /= sum
	}
	return p, arg
}
