package gnn

import (
	"math"
	"testing"

	"twoface"
)

func ringGraph(n int32) *twoface.SparseMatrix {
	g := twoface.NewSparse(n, n)
	for i := int32(0); i < n; i++ {
		g.Append(i, (i+1)%n, 1)
	}
	return g
}

func testSystem(t *testing.T, k int) *twoface.System {
	t.Helper()
	sys, err := twoface.New(twoface.Options{Nodes: 2, DenseColumns: k})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNormalizeAdjacency(t *testing.T) {
	g := ringGraph(6)
	norm, err := NormalizeAdjacency(g)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric with self loops: every node has degree 3 (two neighbours +
	// self), so every value is 1/3.
	if norm.NNZ() != 18 {
		t.Fatalf("normalized ring has %d entries, want 18", norm.NNZ())
	}
	for _, e := range norm.Entries {
		if math.Abs(e.Val-1.0/3) > 1e-12 {
			t.Fatalf("entry (%d,%d) = %v, want 1/3", e.Row, e.Col, e.Val)
		}
	}
	// Symmetry.
	vals := map[[2]int32]float64{}
	for _, e := range norm.Entries {
		vals[[2]int32{e.Row, e.Col}] = e.Val
	}
	for k, v := range vals {
		if vals[[2]int32{k[1], k[0]}] != v {
			t.Fatal("normalized adjacency not symmetric")
		}
	}
	if _, err := NormalizeAdjacency(twoface.NewSparse(3, 4)); err == nil {
		t.Fatal("non-square adjacency should fail")
	}
}

func TestNewValidation(t *testing.T) {
	sys := testSystem(t, 4)
	adj, _ := NormalizeAdjacency(ringGraph(10))
	if _, err := New(sys, adj, []int{4}, 1); err == nil {
		t.Fatal("single dim should fail")
	}
	if _, err := New(sys, adj, []int{5, 3}, 1); err == nil {
		t.Fatal("input dim != DenseColumns should fail")
	}
	if _, err := New(sys, adj, []int{4, 0}, 1); err == nil {
		t.Fatal("zero output dim should fail")
	}
	m, err := New(sys, adj, []int{4, 4, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 2 || m.Layers[0].Act != ReLU || m.Layers[1].Act != None {
		t.Fatalf("layer structure wrong: %+v", m.Layers)
	}
}

func TestForwardShapes(t *testing.T) {
	sys := testSystem(t, 4)
	adj, _ := NormalizeAdjacency(ringGraph(12))
	m, err := New(sys, adj, []int{4, 4, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := twoface.RandomDense(12, 4, 3)
	out, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 12 || out.Cols != 3 {
		t.Fatalf("logits shape %dx%d", out.Rows, out.Cols)
	}
	if m.ModeledSeconds <= 0 {
		t.Fatal("forward should accumulate modeled SpMM time")
	}
}

func TestStepValidation(t *testing.T) {
	sys := testSystem(t, 4)
	adj, _ := NormalizeAdjacency(ringGraph(8))
	m, _ := New(sys, adj, []int{4, 3}, 2)
	x := twoface.RandomDense(8, 4, 3)
	if _, err := m.Step(x, []int{0}, 0.1); err == nil {
		t.Fatal("label length mismatch should fail")
	}
	if _, err := m.Step(x, []int{9, -1, -1, -1, -1, -1, -1, -1}, 0.1); err == nil {
		t.Fatal("out-of-range label should fail")
	}
	if _, err := m.Step(x, []int{-1, -1, -1, -1, -1, -1, -1, -1}, 0.1); err == nil {
		t.Fatal("no labeled nodes should fail")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	const n, k, classes = 64, 8, 4
	g := twoface.Generate("stokes", 0.01, 5)
	adj, err := NormalizeAdjacency(g)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := twoface.New(twoface.Options{Nodes: 4, DenseColumns: k})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(sys, adj, []int{k, k, classes}, 7)
	if err != nil {
		t.Fatal(err)
	}
	nn := int(adj.NumRows)
	x := twoface.RandomDense(nn, k, 8)
	labels := make([]int, nn)
	for i := range labels {
		if i%3 == 0 {
			labels[i] = -1 // unlabeled
		} else {
			labels[i] = i % classes
		}
	}
	var first, last Metrics
	for step := 0; step < 30; step++ {
		met, err := m.Step(x, labels, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = met
		}
		last = met
	}
	if !(last.Loss < first.Loss) {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first.Loss, last.Loss)
	}
	if last.Accuracy < first.Accuracy {
		t.Fatalf("accuracy regressed: %.3f -> %.3f", first.Accuracy, last.Accuracy)
	}
	_ = n
}

// TestGradientCheck verifies the analytic weight gradients against finite
// differences on a tiny deterministic network — the strongest possible test
// of the backward pass through the distributed aggregations.
func TestGradientCheck(t *testing.T) {
	const n, k, classes = 12, 4, 3
	adj, err := NormalizeAdjacency(ringGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	sys := testSystem(t, k)
	x := twoface.RandomDense(n, k, 11)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}

	lossOf := func(m *Model) float64 {
		st, err := m.forward(x)
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		for i := 0; i < n; i++ {
			p, _ := softmax(st.out.Row(i))
			loss += -math.Log(math.Max(p[labels[i]], 1e-300))
		}
		return loss / float64(n)
	}

	build := func() *Model {
		m, err := New(sys, adj, []int{k, k, classes}, 13)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Analytic gradients: run one Step with lr so that W' = W - lr*dW, i.e.
	// dW = (W - W')/lr.
	const lr = 1e-3
	ref := build()
	before := make([]*twoface.DenseMatrix, len(ref.Layers))
	for l, layer := range ref.Layers {
		before[l] = layer.W.Clone()
	}
	if _, err := ref.Step(x, labels, lr); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-6
	for l := range ref.Layers {
		for _, idx := range []int{0, 1, len(before[l].Data) - 1} {
			analytic := (before[l].Data[idx] - ref.Layers[l].W.Data[idx]) / lr

			plus := build()
			plus.Layers[l].W.Data[idx] += eps
			minus := build()
			minus.Layers[l].W.Data[idx] -= eps
			numeric := (lossOf(plus) - lossOf(minus)) / (2 * eps)

			diff := math.Abs(analytic - numeric)
			scale := math.Max(1e-4, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if diff/scale > 2e-2 {
				t.Fatalf("layer %d W[%d]: analytic %v vs numeric %v", l, idx, analytic, numeric)
			}
		}
	}
}
