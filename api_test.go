package twoface

import (
	"math"
	"path/filepath"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Nodes: 0, DenseColumns: 8}); err == nil {
		t.Fatal("Nodes=0 should fail")
	}
	if _, err := New(Options{Nodes: 4, DenseColumns: 0}); err == nil {
		t.Fatal("DenseColumns=0 should fail")
	}
	sys, err := New(Options{Nodes: 4, DenseColumns: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Paper-size matrices get the unscaled machine; small analogs get fixed
	// overheads scaled down proportionally.
	if sys.Net(50e6) != DefaultNet() {
		t.Fatal("paper-size matrix should use DefaultNet unscaled")
	}
	small := sys.Net(50e3)
	if small.AlphaS >= DefaultNet().AlphaS || small.BetaS != DefaultNet().BetaS {
		t.Fatalf("small-matrix net not scaled correctly: %+v", small)
	}
}

func TestQuickstartFlow(t *testing.T) {
	a := Generate("queen", 0.02, 42)
	b := RandomDense(int(a.NumCols), 8, 1)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("Two-Face result differs from reference")
	}
	if res.ModeledSeconds <= 0 || len(res.Breakdowns) != 4 {
		t.Fatalf("result metadata: %v, %d breakdowns", res.ModeledSeconds, len(res.Breakdowns))
	}
	if plan.Stats().TotalNNZ != int64(a.NNZ()) {
		t.Fatal("prep stats missing")
	}
}

func TestPlanReuse(t *testing.T) {
	a := Generate("stokes", 0.02, 7)
	sys, err := New(Options{Nodes: 4, DenseColumns: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		b := RandomDense(int(a.NumCols), 4, seed)
		res, err := plan.Multiply(b)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Reference(a, b)
		if !res.C.AlmostEqual(want, 1e-9) {
			t.Fatalf("reused plan wrong for seed %d", seed)
		}
	}
}

func TestOneShotMultiply(t *testing.T) {
	a := Generate("kmer", 0.01, 3)
	b := RandomDense(int(a.NumCols), 4, 9)
	res, err := Multiply(a, b, Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Reference(a, b)
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("one-shot Multiply wrong")
	}
}

func TestBaselinesAgreeWithTwoFace(t *testing.T) {
	a := Generate("arabic", 0.02, 11)
	k := 4
	b := RandomDense(int(a.NumCols), k, 2)
	sys, err := New(Options{Nodes: 4, DenseColumns: k})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Reference(a, b)
	for _, alg := range []Baseline{DenseShift1, DenseShift2, DenseShift4, Allgather, AsyncCoarse, AsyncFine} {
		res, err := sys.RunBaseline(alg, a, b)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.C.AlmostEqual(want, 1e-9) {
			t.Fatalf("%s differs from reference", alg)
		}
	}
	if _, err := sys.RunBaseline(Baseline("bogus"), a, b); err == nil {
		t.Fatal("unknown baseline should fail")
	}
}

func TestIsOutOfMemory(t *testing.T) {
	a := Generate("kmer", 0.05, 4)
	k := 64
	b := RandomDense(int(a.NumCols), k, 5)
	sys, err := New(Options{Nodes: 4, DenseColumns: k, MemBudgetElems: int64(k) * 2048, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunBaseline(Allgather, a, b)
	if !IsOutOfMemory(err) {
		t.Fatalf("want OOM, got %v", err)
	}
	if IsOutOfMemory(nil) {
		t.Fatal("nil is not OOM")
	}
}

func TestTimingOnlyMode(t *testing.T) {
	a := Generate("web", 0.02, 5)
	b := RandomDense(int(a.NumCols), 8, 6)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.C.FrobeniusNorm() != 0 {
		t.Fatal("timing-only mode must leave C zero")
	}
	if res.ModeledSeconds <= 0 {
		t.Fatal("timing-only mode must still model time")
	}
}

func TestAutoWidth(t *testing.T) {
	if w := autoWidth(100); w != 8 {
		t.Fatalf("autoWidth(100) = %d, want floor 8", w)
	}
	if w := autoWidth(512 * 128); w != 128 {
		t.Fatalf("autoWidth = %d, want 128", w)
	}
}

func TestGenerateAndRegistryHelpers(t *testing.T) {
	names := Matrices()
	if len(names) != 8 {
		t.Fatalf("Matrices = %v", names)
	}
	for _, n := range names {
		if w := StripeWidthFor(n, 0.1); w < 8 {
			t.Fatalf("StripeWidthFor(%s) = %d", n, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with unknown name should panic")
		}
	}()
	Generate("bogus", 1, 1)
}

func TestIOHelpers(t *testing.T) {
	dir := t.TempDir()
	a := Generate("queen", 0.01, 8)

	mm := filepath.Join(dir, "a.mtx")
	if err := WriteMatrixMarketFile(mm, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarketFile(mm)
	if err != nil || back.NNZ() != a.NNZ() {
		t.Fatalf("MatrixMarket roundtrip: %v, %d vs %d nnz", err, back.NNZ(), a.NNZ())
	}

	bin := filepath.Join(dir, "a.bin")
	if err := WriteBinaryFile(bin, a); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadBinaryFile(bin)
	if err != nil || back2.NNZ() != a.NNZ() {
		t.Fatalf("binary roundtrip: %v", err)
	}
}

func TestDeriveCoefficients(t *testing.T) {
	c := DeriveCoefficients(DefaultNet())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.BetaA != DefaultNet().BetaA {
		t.Fatal("BetaA should carry over from the machine")
	}
}

func TestCustomNetAndCoefficients(t *testing.T) {
	net := DefaultNet()
	net.BetaA *= 10 // make one-sided transfers terrible
	coef := DeriveCoefficients(net)
	a := Generate("web", 0.02, 13)
	b := RandomDense(int(a.NumCols), 8, 14)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8, Net: &net, Coefficients: &coef})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Reference(a, b)
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("custom-net run wrong")
	}
	if math.IsNaN(res.ModeledSeconds) {
		t.Fatal("NaN modeled time")
	}
}

func TestMultiplySampled(t *testing.T) {
	a := Generate("stokes", 0.02, 21)
	b := RandomDense(int(a.NumCols), 4, 22)
	sys, err := New(Options{Nodes: 4, DenseColumns: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	const keep, seed = 0.4, uint64(5)
	res, err := plan.MultiplySampled(b, keep, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: filter A by the same mask and multiply.
	filtered := NewSparse(a.NumRows, a.NumCols)
	for _, e := range a.Entries {
		if Sampled(e.Row, e.Col, seed, keep) {
			filtered.Append(e.Row, e.Col, e.Val)
		}
	}
	want, _ := Reference(filtered, b)
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("sampled multiply differs from filtered reference")
	}
	// Different seeds give different samples.
	res2, err := plan.MultiplySampled(b, keep, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := res.C.MaxAbsDiff(res2.C); d == 0 {
		t.Fatal("different seeds should sample differently")
	}
}

func TestColumnClassifierOption(t *testing.T) {
	a := Generate("twitter", 0.02, 31)
	b := RandomDense(int(a.NumCols), 8, 32)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8, UseColumnClassifier: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Reference(a, b)
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("column classifier result wrong")
	}
}

func TestPlanSDDMMViaAPI(t *testing.T) {
	a := Generate("arabic", 0.02, 41)
	n := int(a.NumRows)
	x := RandomDense(n, 8, 1)
	y := RandomDense(n, 8, 2)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want.SortRowMajor()
	if res.C.NNZ() != want.NNZ() {
		t.Fatalf("SDDMM nnz %d vs %d", res.C.NNZ(), want.NNZ())
	}
	for i := range want.Entries {
		if d := res.C.Entries[i].Val - want.Entries[i].Val; math.Abs(d) > 1e-9 {
			t.Fatalf("SDDMM entry %d off by %v", i, d)
		}
	}
}

func TestPlanSaveLoad(t *testing.T) {
	dir := t.TempDir()
	a := Generate("queen", 0.02, 51)
	b := RandomDense(int(a.NumCols), 8, 52)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "plan.tfp")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := sys.LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRows() != plan.NumRows() || loaded.NumCols() != plan.NumCols() {
		t.Fatal("loaded plan has wrong shape")
	}
	r1, err := plan.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Multiply(b)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := r1.C.MaxAbsDiff(r2.C); d > 1e-12 {
		t.Fatalf("loaded plan computes differently: %v", d)
	}
	// Mismatched systems must be rejected.
	other, _ := New(Options{Nodes: 2, DenseColumns: 8})
	if _, err := other.LoadPlan(path); err == nil {
		t.Fatal("wrong node count should fail")
	}
	other2, _ := New(Options{Nodes: 4, DenseColumns: 16})
	if _, err := other2.LoadPlan(path); err == nil {
		t.Fatal("wrong K should fail")
	}
}

func TestPlanTraceSummaries(t *testing.T) {
	a := Generate("kmer", 0.02, 61)
	b := RandomDense(int(a.NumCols), 8, 62)
	sys, err := New(Options{Nodes: 4, DenseColumns: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sys.DenseColumns() != 8 {
		t.Fatal("DenseColumns accessor wrong")
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	plan.EnableTrace(0)
	if _, err := plan.Multiply(b); err != nil {
		t.Fatal(err)
	}
	sums := plan.TraceSummaries()
	if len(sums) != 4 {
		t.Fatalf("%d summaries", len(sums))
	}
	var events int
	var bytes int64
	for i, s := range sums {
		if s.Rank != i {
			t.Fatalf("summary %d has rank %d", i, s.Rank)
		}
		events += s.Events
		bytes += s.CollectiveElems + s.OneSidedElems
	}
	if events == 0 || bytes == 0 {
		t.Fatal("tracing recorded nothing for a 4-node SpMM")
	}
}
