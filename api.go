package twoface

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"

	"twoface/internal/baselines"
	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/kernels"
)

// Options configures a Two-Face system. Zero values take the paper's
// defaults (Tables 2 and 3).
type Options struct {
	// Nodes is the simulated cluster size. Required.
	Nodes int
	// DenseColumns is K, the width of the dense operands. Required.
	DenseColumns int
	// StripeWidth is the sparse stripe width W. 0 picks a power of two near
	// cols/512, the paper's Table 1 scaling rule.
	StripeWidth int32
	// Net overrides the simulated machine model. Nil uses DefaultNet scaled
	// to the input matrix: fixed per-message and setup overheads shrink
	// proportionally for matrices smaller than the paper's (~50M rows), so
	// the overhead-to-payload ratios of the full-scale machine are
	// preserved. Provide an explicit NetModel to disable the auto-scaling.
	Net *NetModel
	// Coefficients overrides the classifier's cost model. Nil derives it
	// from the machine model, the ideal calibration outcome.
	Coefficients *Coefficients
	// MemBudgetElems caps each node's dense receive buffers, in float64
	// elements. 0 uses the core default (48 Mi elements).
	MemBudgetElems int64
	// RowPanelHeight is the synchronous work unit height (default 32 rows).
	RowPanelHeight int32
	// Workers is the real goroutine parallelism per node (wall-clock only;
	// modeled time uses the paper's thread counts). Default 4.
	Workers int
	// AsyncWorkers is the per-node goroutine count draining the one-sided
	// queue (wall-clock only, like Workers). Default 2.
	AsyncWorkers int
	// LegacyAsyncGets restores the pre-aggregation one-sided path: one
	// GetIndexed per async stripe, no cross-run row cache. The fidelity
	// toggle for reproducing earlier accounting.
	LegacyAsyncGets bool
	// MaxAsyncBatchBytes caps how many fetched bytes one aggregated
	// one-sided request may carry (0 uses the core default of 1 MiB).
	MaxAsyncBatchBytes int64
	// RowCacheElems bounds each rank's remote-row cache, in float64
	// elements (0 uses the core default; negative disables the cache).
	RowCacheElems int64
	// Verify keeps the arithmetic on (default). Setting TimingOnly skips
	// the floating-point loops, which is how the experiment harness runs.
	TimingOnly bool
	// DisableOverlap serializes the synchronous phase the way the seed
	// executor did: every dense stripe lands before the first row panel
	// runs, and modeled node time charges the full SyncComm + SyncComp sum
	// with no pipelining credit. The escape hatch for A/B-ing the pipelined
	// path; results stay bit-identical either way.
	DisableOverlap bool
	// UseColumnClassifier switches from the paper's cost-model balancer to
	// the column-popularity heuristic of its future-work discussion: dense
	// stripes needed by at least ColumnSyncThreshold nodes go collective,
	// everything else one-sided.
	UseColumnClassifier bool
	// ColumnSyncThreshold tunes the column classifier; 0 means max(2, Nodes/4).
	ColumnSyncThreshold int
	// TraceEvents, when positive, enables per-rank transfer tracing (capped
	// at this many events per rank) on every cluster the system creates —
	// plans and baselines alike. Results then carry TraceEvents and
	// per-rank TraceDropped counts.
	TraceEvents int
	// SpanRecorder, when non-nil, receives a virtual-time span for every
	// ledger charge on every cluster the system creates (see obs.Tracer for
	// the standard recorder and its Chrome-trace exporter). Nil keeps
	// instrumentation off and modeled time bit-identical.
	SpanRecorder SpanRecorder
	// Logger, when non-nil, attaches structured logging to every cluster the
	// system creates: retries, degradations, and aborts come out as slog
	// records with rank attrs. Like span recording, logging is observation
	// only — modeled time and C stay bit-identical. Nil disables it.
	Logger *slog.Logger
	// AllowFMA opts the compute kernels into fused multiply-add assembly on
	// hosts that support it (amd64 FMA3). Fusing rounds once per
	// multiply-add instead of twice, so results may differ from the default
	// kernels by an ulp per accumulation — off by default to keep C
	// bit-identical across dispatch variants. Equivalent to setting
	// TWOFACE_ALLOW_FMA=1. Process-wide: the toggle rebinds the shared
	// kernel dispatch table, not just this System.
	AllowFMA bool
	// ForceGenericKernels pins the compute kernels to the portable pure-Go
	// loops, ignoring any SIMD assembly CPU detection found. The escape
	// hatch for ruling kernel dispatch out of a reproduction discrepancy.
	// Equivalent to TWOFACE_FORCE_GENERIC=1, and process-wide like AllowFMA.
	ForceGenericKernels bool
	// Chaos, when non-nil, attaches the seeded fault plan to every cluster
	// the system creates: stragglers stretch virtual-time charges, one-sided
	// gets suffer transient failures (retried with backoff, degrading to the
	// synchronous path when the budget runs out), multicast legs straggle or
	// fail, and ranks crash at virtual times. Survivable plans leave the
	// computed C bit-identical to the fault-free run. Nil keeps the machine
	// healthy and the fault machinery entirely out of the hot path. A plan
	// with crashes aborts the run unless Recover is set.
	Chaos *FaultPlan
	// Recover switches crashed ranks from fail-clean (abort the run) to
	// fail-recover: a crash becomes a membership transition, the survivors
	// fence at the next barrier and re-execute the dead rank's unfinished
	// work from its last virtual-time checkpoint, and Multiply still
	// completes with the full C (see DESIGN.md section 12). Only the
	// Two-Face executor recovers; baselines and SDDMM stay fail-clean.
	Recover bool
	// CheckpointInterval is the virtual-time cadence (seconds) at which each
	// rank checkpoints its C panel and progress cursor when Recover is set.
	// 0 picks an interval worth ~50 checkpoint write costs, keeping the
	// modeled overhead of a fault-free run near 2%. Ignored without Recover.
	CheckpointInterval float64
	// Transport overrides the byte-movement backend. Nil (the default) uses
	// the in-process virtual-time simulator. A wall-clock backend (e.g.
	// internal/transport/tcp) turns the system into one rank of a
	// multi-process cluster: this process executes only the transport's
	// local ranks, ledgers measure real elapsed time, and communication-model
	// charges are reported as measured rather than modeled. The transport's
	// cluster size must equal Nodes. A provided transport is single-use:
	// create one Plan (or run one baseline) per System. Chaos and Recover
	// are rejected with a wall-clock transport — fault injection and
	// checkpoint cadence are virtual-time machinery.
	Transport Transport
}

// System is a configured simulated cluster ready to preprocess and multiply.
type System struct {
	opts Options
}

// New validates options.
func New(opts Options) (*System, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("twoface: Options.Nodes must be >= 1, got %d", opts.Nodes)
	}
	if opts.DenseColumns < 1 {
		return nil, fmt.Errorf("twoface: Options.DenseColumns must be >= 1, got %d", opts.DenseColumns)
	}
	if opts.Transport != nil {
		if tp := opts.Transport.P(); tp != opts.Nodes {
			return nil, fmt.Errorf("twoface: Options.Transport serves %d ranks, Options.Nodes is %d", tp, opts.Nodes)
		}
		if opts.Transport.WallClock() && (opts.Chaos != nil || opts.Recover) {
			return nil, errors.New("twoface: Chaos and Recover are virtual-time machinery; they cannot run on a wall-clock transport")
		}
	}
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.AllowFMA {
		kernels.SetAllowFMA(true)
	}
	if opts.ForceGenericKernels {
		kernels.SetForceGeneric(true)
	}
	return &System{opts: opts}, nil
}

// paperNativeRows is the matrix dimension at which DefaultNet's fixed
// overheads are calibrated (the paper's mid-size matrices).
const paperNativeRows = 50e6

// netFor resolves the machine model for a matrix of the given dimension.
func (s *System) netFor(rows int32) NetModel {
	if s.opts.Net != nil {
		return *s.opts.Net
	}
	f := paperNativeRows / float64(rows)
	if f < 1 {
		f = 1
	}
	return DefaultNet().Scaled(f)
}

// Net reports the machine model the system would use for a matrix with the
// given number of rows.
func (s *System) Net(rows int32) NetModel { return s.netFor(rows) }

// DenseColumns reports the configured dense width K.
func (s *System) DenseColumns() int { return s.opts.DenseColumns }

// Plan is a preprocessed sparse matrix bound to a system: the stripe
// classification, modified-COO matrices, and multicast metadata of the
// paper's section 5.1, reusable across many Multiply calls.
//
// A Plan is safe for concurrent use: Multiply, MultiplySampled, and SDDMM
// may be called from many goroutines. Calls on one Plan serialize under an
// internal mutex — the simulated cluster, the cross-run row cache, and the
// pooled per-run scratch are all single-run state — so concurrency within
// one Plan buys ordering safety, not speedup. Concurrent throughput comes
// from multiplying across distinct Plans (each has its own cluster), which
// is how the serving layer (internal/serve) schedules traffic.
type Plan struct {
	sys  *System
	prep *core.Prep
	clu  *cluster.Cluster

	// execMu serializes executions on this plan. The cluster's virtual
	// clocks, ledgers, and windows are reset per run, and the row cache's
	// per-run counters and B-identity check assume one run at a time;
	// interleaving two Execs on one cluster would corrupt both.
	execMu sync.Mutex
}

// autoWidth applies the Table 1 rule: a power of two near cols/512, floor 8.
func autoWidth(cols int32) int32 {
	w := float64(cols) / 512
	if w < 8 {
		return 8
	}
	return int32(1) << int32(math.Round(math.Log2(w)))
}

func (s *System) params(net NetModel) core.Params {
	p := core.Params{
		P: s.opts.Nodes, K: s.opts.DenseColumns, W: s.opts.StripeWidth,
		RowPanelHeight:  s.opts.RowPanelHeight,
		MemBudgetElems:  s.opts.MemBudgetElems,
		MaxBatchBytes:   s.opts.MaxAsyncBatchBytes,
		LegacyAsyncGets: s.opts.LegacyAsyncGets,
		RowCacheElems:   s.opts.RowCacheElems,
	}
	if s.opts.Coefficients != nil {
		p.Coef = *s.opts.Coefficients
	} else {
		p.Coef = DeriveCoefficients(net)
	}
	if s.opts.UseColumnClassifier {
		p.Classifier = core.ClassifierColumn
		p.ColumnSyncThreshold = s.opts.ColumnSyncThreshold
	}
	return p
}

// newCluster builds a cluster with the system's observability options
// (transfer tracing, span recording) applied.
func (s *System) newCluster(net NetModel) (*cluster.Cluster, error) {
	var (
		clu *cluster.Cluster
		err error
	)
	if s.opts.Transport != nil {
		clu, err = cluster.NewWithTransport(s.opts.Transport, net)
	} else {
		clu, err = cluster.New(s.opts.Nodes, net)
	}
	if err != nil {
		return nil, err
	}
	if s.opts.TraceEvents > 0 {
		clu.EnableTrace(s.opts.TraceEvents)
	}
	if s.opts.SpanRecorder != nil {
		clu.SetSpanRecorder(s.opts.SpanRecorder)
	}
	if s.opts.Logger != nil {
		clu.SetLogger(s.opts.Logger)
	}
	if s.opts.Chaos != nil {
		inj, err := s.opts.Chaos.Injector(s.opts.Nodes)
		if err != nil {
			return nil, err
		}
		clu.SetFaultInjector(inj)
	}
	clu.SetRecovery(s.opts.Recover)
	return clu, nil
}

// Preprocess classifies the matrix's stripes and builds the runtime state.
// The plan is valid for any dense input with a.NumCols rows and the
// configured DenseColumns width.
func (s *System) Preprocess(a *SparseMatrix) (*Plan, error) {
	net := s.netFor(a.NumRows)
	params := s.params(net)
	if params.W == 0 {
		params.W = autoWidth(a.NumCols)
	}
	prep, err := core.Preprocess(a, params)
	if err != nil {
		return nil, err
	}
	clu, err := s.newCluster(net)
	if err != nil {
		return nil, err
	}
	return &Plan{sys: s, prep: prep, clu: clu}, nil
}

// Stats returns the preprocessing summary (stripe counts, modeled
// preprocessing cost, multicast fan-out).
func (p *Plan) Stats() PrepStats { return p.prep.Stats }

// NumRows reports the plan's sparse matrix row count (C's rows).
func (p *Plan) NumRows() int { return int(p.prep.Layout.NumRows) }

// NumCols reports the plan's sparse matrix column count (B's required rows).
func (p *Plan) NumCols() int { return int(p.prep.Layout.NumCols) }

// RowBlocks returns each rank's C row block [lo, hi) in rank order — the
// assembly map a multi-process runner needs to gather rank-local partial
// outputs into the full C.
func (p *Plan) RowBlocks() [][2]int {
	out := make([][2]int, len(p.prep.Nodes))
	for i := range p.prep.Nodes {
		out[i] = [2]int{int(p.prep.Nodes[i].RowLo), int(p.prep.Nodes[i].RowHi)}
	}
	return out
}

// Transport returns the byte-movement backend of the plan's cluster. With
// Options.Transport set this is that transport; multi-process runners use it
// to publish and gather C row blocks after Multiply.
func (p *Plan) Transport() Transport { return p.clu.Transport() }

// Multiply executes one distributed SpMM: C = A x B with the plan's A.
// Safe for concurrent use; concurrent calls on one Plan serialize.
func (p *Plan) Multiply(b *DenseMatrix) (*Result, error) {
	p.execMu.Lock()
	defer p.execMu.Unlock()
	return core.Exec(p.prep, b, p.clu, p.execOptions())
}

// SDDMM executes a distributed sampled dense-dense multiplication with the
// plan's sparsity pattern: C_ij = A_ij * dot(X[i,:], Y[j,:]) over A's
// nonzeros (paper section 9). X must be NumRows x K and Y NumCols x K. The
// communication schedule — which dense rows move collectively and which
// one-sidedly — is the SpMM plan's, reused verbatim.
func (p *Plan) SDDMM(x, y *DenseMatrix) (*SDDMMResult, error) {
	p.execMu.Lock()
	defer p.execMu.Unlock()
	return core.ExecSDDMM(p.prep, x, y, p.clu, p.execOptions())
}

// MultiplySampled runs a sampled SpMM (paper section 5.4): every nonzero of
// A survives with probability keep under a deterministic per-iteration mask,
// the offline classification and transfers staying fixed. Use a fresh seed
// per training iteration.
func (p *Plan) MultiplySampled(b *DenseMatrix, keep float64, seed uint64) (*Result, error) {
	opts := p.execOptions()
	opts.SampleKeep = keep
	opts.SampleSeed = seed
	p.execMu.Lock()
	defer p.execMu.Unlock()
	return core.Exec(p.prep, b, p.clu, opts)
}

// FingerprintDense returns the dense-operand identity hash used by the
// cross-run row cache to detect B changes between runs (DESIGN.md section
// 8): a strided 16-sample content hash that always mixes the final element.
// It is a mutation-detection heuristic, not a digest: two distinct operands
// can share a fingerprint, which is why the serving layer's request
// coalescing keys on exact operand identity (full-content hash plus a
// bitwise check) instead of this sample.
func FingerprintDense(b *DenseMatrix) uint64 {
	return core.FingerprintData(b.Data)
}

// Sampled reports whether an entry of A survives the sampling mask used by
// MultiplySampled with the given parameters.
func Sampled(row, col int32, seed uint64, keep float64) bool {
	return core.SampleMask(row, col, seed, keep)
}

// TraceSummary is an aggregated view of one rank's traced transfers.
type TraceSummary struct {
	Rank            int
	CollectiveElems int64
	OneSidedElems   int64
	OneSidedMsgs    int64
	Events          int
	// Dropped counts events this rank discarded after its buffer filled.
	Dropped int64
}

// EnableTrace turns on per-rank transfer tracing for subsequent Multiply /
// SDDMM calls on this plan (bounded to limit events per rank; <=0 uses the
// default cap).
func (p *Plan) EnableTrace(limit int) { p.clu.EnableTrace(limit) }

// TraceSummaries aggregates the traced events per rank. Call after a
// Multiply with tracing enabled.
func (p *Plan) TraceSummaries() []TraceSummary {
	events, dropped := p.clu.TraceByRank()
	var all []TraceEvent
	for _, ev := range events {
		all = append(all, ev...)
	}
	return SummarizeTrace(all, dropped, p.sys.opts.Nodes)
}

// SummarizeTrace aggregates traced transfer events per rank. dropped is the
// per-rank dropped-event count (as in Result.TraceDropped) and may be nil.
func SummarizeTrace(events []TraceEvent, dropped []int64, p int) []TraceSummary {
	out := make([]TraceSummary, p)
	for i := range out {
		out[i].Rank = i
		if i < len(dropped) {
			out[i].Dropped = dropped[i]
		}
	}
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		s := &out[e.Rank]
		s.Events++
		switch e.Op {
		case cluster.TraceGet:
			s.OneSidedElems += e.Elems
			s.OneSidedMsgs += e.Msgs
		default:
			s.CollectiveElems += e.Elems
		}
	}
	return out
}

// Save writes the plan's preprocessing state to disk in the bespoke binary
// plan format, so twoface-prep can run offline and executors load the result
// (paper section 7.3's pipeline).
func (p *Plan) Save(path string) error { return core.WritePrepFile(path, p.prep) }

// LoadPlan reads a plan written by Save and binds it to this system. The
// system's Nodes and DenseColumns must match the stored plan.
func (s *System) LoadPlan(path string) (*Plan, error) {
	prep, err := core.ReadPrepFile(path)
	if err != nil {
		return nil, err
	}
	if prep.Params.P != s.opts.Nodes {
		return nil, fmt.Errorf("twoface: plan was built for %d nodes, system has %d", prep.Params.P, s.opts.Nodes)
	}
	if prep.Params.K != s.opts.DenseColumns {
		return nil, fmt.Errorf("twoface: plan was built for K=%d, system has K=%d", prep.Params.K, s.opts.DenseColumns)
	}
	// Communication knobs are runtime policy, not part of the stored
	// classification: the loading system's settings win over whatever
	// defaults the plan was normalized with when it was written.
	prep.Params.LegacyAsyncGets = s.opts.LegacyAsyncGets
	if s.opts.MaxAsyncBatchBytes != 0 {
		prep.Params.MaxBatchBytes = s.opts.MaxAsyncBatchBytes
	}
	if s.opts.RowCacheElems != 0 {
		prep.Params.RowCacheElems = s.opts.RowCacheElems
	}
	clu, err := s.newCluster(s.netFor(prep.Layout.NumRows))
	if err != nil {
		return nil, err
	}
	return &Plan{sys: s, prep: prep, clu: clu}, nil
}

func (p *Plan) execOptions() core.ExecOptions {
	aw := p.sys.opts.AsyncWorkers
	if aw == 0 {
		aw = 2
	}
	return core.ExecOptions{
		AsyncWorkers:       aw,
		SyncWorkers:        p.sys.opts.Workers,
		SkipCompute:        p.sys.opts.TimingOnly,
		DisableOverlap:     p.sys.opts.DisableOverlap,
		CheckpointInterval: p.sys.opts.CheckpointInterval,
	}
}

// Multiply is the one-shot convenience: preprocess + multiply in one call.
// Applications that reuse A (GNN training, iterative solvers) should hold a
// Plan instead to amortize preprocessing.
func Multiply(a *SparseMatrix, b *DenseMatrix, opts Options) (*Result, error) {
	if opts.DenseColumns == 0 {
		opts.DenseColumns = b.Cols
	}
	sys, err := New(opts)
	if err != nil {
		return nil, err
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		return nil, err
	}
	return plan.Multiply(b)
}

// Baseline names one of the paper's comparison algorithms.
type Baseline string

// The baseline roster (paper Table 4).
const (
	DenseShift1 Baseline = "DS1"
	DenseShift2 Baseline = "DS2"
	DenseShift4 Baseline = "DS4"
	DenseShift8 Baseline = "DS8"
	Allgather   Baseline = "Allgather"
	AsyncCoarse Baseline = "AsyncCoarse"
	AsyncFine   Baseline = "AsyncFine"
)

// RunBaseline executes a baseline algorithm on the system's cluster. For
// AsyncFine, the stripe width follows the system's StripeWidth (or the
// Table 1 auto rule).
func (s *System) RunBaseline(alg Baseline, a *SparseMatrix, b *DenseMatrix) (*Result, error) {
	clu, err := s.newCluster(s.netFor(a.NumRows))
	if err != nil {
		return nil, err
	}
	opts := baselines.Options{
		Workers:        s.opts.Workers,
		MemBudgetElems: s.opts.MemBudgetElems,
		SkipCompute:    s.opts.TimingOnly,
	}
	switch alg {
	case DenseShift1, DenseShift2, DenseShift4, DenseShift8:
		var c int
		switch alg {
		case DenseShift1:
			c = 1
		case DenseShift2:
			c = 2
		case DenseShift4:
			c = 4
		default:
			c = 8
		}
		return baselines.DenseShift(a, b, clu, c, opts)
	case Allgather:
		return baselines.Allgather(a, b, clu, opts)
	case AsyncCoarse:
		return baselines.AsyncCoarse(a, b, clu, opts)
	case AsyncFine:
		w := s.opts.StripeWidth
		if w == 0 {
			w = autoWidth(a.NumCols)
		}
		return baselines.AsyncFine(a, b, clu, w, opts)
	}
	return nil, fmt.Errorf("twoface: unknown baseline %q", alg)
}

// IsOutOfMemory reports whether an error from RunBaseline means the
// algorithm's replication exceeded the per-node memory budget (the blank
// bars of the paper's figures).
func IsOutOfMemory(err error) bool {
	return errors.Is(err, baselines.ErrOutOfMemory)
}
