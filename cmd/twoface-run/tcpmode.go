// Multi-process mode: -rank N turns this invocation into one rank of a real
// TCP cluster instead of the whole simulated machine. Every rank runs the
// same command line (same matrix, seed, K, p) plus its own -rank; peers find
// each other either through -peers (an explicit address list) or through a
// -rendezvous directory where each rank publishes its bound address. The
// ledger runs on the wall clock, and rank 0 gathers the C row blocks over
// the same transport the multiply used.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"twoface"
	"twoface/internal/cluster"
	"twoface/internal/transport/tcp"
)

// runTCP executes this process's rank of a multi-process run.
func runTCP(c cli) error {
	switch {
	case c.rank >= c.p:
		return fmt.Errorf("-rank %d out of range for -p %d", c.rank, c.p)
	case strings.ToLower(c.algo) != "twoface":
		return fmt.Errorf("multi-process mode runs the twoface algorithm only (got -algo %s)", c.algo)
	case c.chaosSeed != 0 || c.faultPlan != "":
		return fmt.Errorf("chaos is virtual-time machinery; it cannot run on the TCP transport")
	case c.recover:
		return fmt.Errorf("crash recovery is virtual-time machinery; it cannot run on the TCP transport")
	case c.plan != "":
		return fmt.Errorf("multi-process mode generates its workload from -matrix/-in (saved plans carry no digestable source)")
	case (c.peers == "") == (c.rendezvous == ""):
		return fmt.Errorf("multi-process mode needs exactly one of -peers or -rendezvous")
	}

	a, err := loadMatrix(c.in, c.name, c.scale, c.seed)
	if err != nil {
		return err
	}
	digest := workloadDigest(c, a)

	logger, _, err := twoface.SetupLogging(fmt.Sprintf("twoface-run[%d]", c.rank), c.logLevel, c.logJSON)
	if err != nil {
		return err
	}

	addrs, ln, err := resolveEndpoints(c)
	if err != nil {
		return err
	}
	tcfg := tcp.Config{Rank: c.rank, Addrs: addrs, Listener: ln, Digest: digest}
	if c.logLevel != "" {
		tcfg.Logger = logger
	}
	tr, err := tcp.New(tcfg)
	if err != nil {
		ln.Close()
		return err
	}
	defer tr.Close()

	opts := twoface.Options{
		Nodes: c.p, DenseColumns: c.k, Transport: tr,
		Workers: c.syncW, AsyncWorkers: c.asyncW, LegacyAsyncGets: c.legacy,
		DisableOverlap:      c.noOverlap,
		ForceGenericKernels: c.forceGen, AllowFMA: c.allowFMA,
	}
	if c.logLevel != "" {
		opts.Logger = logger
	}
	sys, err := twoface.New(opts)
	if err != nil {
		return err
	}

	// Every rank preprocesses the full matrix (the digest handshake already
	// guarantees they preprocess the *same* matrix, so the classifications
	// agree) and keeps only its own part live.
	pl, err := sys.Preprocess(a)
	if err != nil {
		return err
	}
	if c.rank == 0 {
		st := a.ComputeStats()
		ps := pl.Stats()
		fmt.Printf("A: %dx%d, %d nonzeros; K=%d, p=%d ranks (multi-process TCP)\n",
			st.NumRows, st.NumCols, st.NNZ, c.k, c.p)
		fmt.Printf("classified: %d sync stripes, %d async stripes\n", ps.SyncStripes, ps.AsyncStripes)
	}

	b := twoface.RandomDense(int(a.NumCols), c.k, c.seed+1)
	res, err := pl.Multiply(b)
	if err != nil {
		return err
	}

	if err := gatherC(pl, res, c.rank, c.k); err != nil {
		return fmt.Errorf("gathering C: %w", err)
	}

	if c.rank != 0 {
		return nil // rank 0 owns reporting
	}
	if c.verify {
		want, err := twoface.Reference(a, b)
		if err != nil {
			return err
		}
		if !res.C.AlmostEqual(want, 1e-9) {
			return fmt.Errorf("gathered result does not match the reference kernel")
		}
		fmt.Println("verified against the reference kernel")
	}
	report(res)
	if c.writeC != "" {
		if err := writeCFile(c.writeC, res.C); err != nil {
			return err
		}
		fmt.Printf("wrote C: %s\n", c.writeC)
	}
	return nil
}

// gatherC assembles the full C on rank 0: each rank publishes its local row
// block as a one-sided window, rank 0 reads every peer's block into its own
// full-size C, and a closing barrier keeps peers alive until the reads land.
func gatherC(pl *twoface.Plan, res *twoface.Result, rank, k int) error {
	blocks := pl.RowBlocks()
	tr := pl.Transport()
	lo, hi := blocks[rank][0], blocks[rank][1]
	tr.Expose(rank, "C.gather", res.C.Data[lo*k:hi*k])
	if err := tr.Barrier(rank); err != nil {
		return err
	}
	if rank == 0 {
		for peer := 1; peer < len(blocks); peer++ {
			plo, phi := blocks[peer][0], blocks[peer][1]
			if phi == plo {
				continue
			}
			n := int64((phi - plo) * k)
			if _, err := tr.Read(0, peer, "C.gather", []cluster.Region{{Off: 0, Elems: n}},
				res.C.Data[plo*k:phi*k]); err != nil {
				return fmt.Errorf("rank %d's block: %w", peer, err)
			}
		}
	}
	return tr.Barrier(rank)
}

// resolveEndpoints produces the full rank→address table and this rank's
// bound listener, either from an explicit -peers list or by publishing
// through a -rendezvous directory.
func resolveEndpoints(c cli) ([]string, net.Listener, error) {
	if c.peers != "" {
		addrs := strings.Split(c.peers, ",")
		if len(addrs) != c.p {
			return nil, nil, fmt.Errorf("-peers lists %d addresses, -p is %d", len(addrs), c.p)
		}
		ln, err := net.Listen("tcp", addrs[c.rank])
		if err != nil {
			return nil, nil, fmt.Errorf("binding %s for rank %d: %w", addrs[c.rank], c.rank, err)
		}
		return addrs, ln, nil
	}
	// Rendezvous: bind an ephemeral port, publish it as rank-N.addr (write
	// temp + rename so readers never see a partial file), poll for peers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(c.rendezvous, 0o755); err != nil {
		ln.Close()
		return nil, nil, err
	}
	self := filepath.Join(c.rendezvous, fmt.Sprintf("rank-%d.addr", c.rank))
	tmp := self + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		ln.Close()
		return nil, nil, err
	}
	if err := os.Rename(tmp, self); err != nil {
		ln.Close()
		return nil, nil, err
	}
	addrs := make([]string, c.p)
	deadline := time.Now().Add(30 * time.Second)
	for r := 0; r < c.p; r++ {
		path := filepath.Join(c.rendezvous, fmt.Sprintf("rank-%d.addr", r))
		for {
			b, err := os.ReadFile(path)
			if err == nil && len(b) > 0 {
				addrs[r] = string(b)
				break
			}
			if time.Now().After(deadline) {
				ln.Close()
				return nil, nil, fmt.Errorf("rendezvous: rank %d never published %s", r, path)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return addrs, ln, nil
}

// workloadDigest fingerprints everything that must agree across ranks for
// one multiply to be meaningful: the matrix source and its realized shape,
// the dense seed, and the partitioning-relevant knobs. It feeds the TCP
// handshake, so two ranks started with different inputs refuse to pair.
func workloadDigest(c cli, a *twoface.SparseMatrix) uint64 {
	h := fnv.New64a()
	write := func(parts ...any) {
		for _, p := range parts {
			fmt.Fprintf(h, "%v|", p)
		}
	}
	st := a.ComputeStats()
	write("v1", c.in, c.name, math.Float64bits(c.scale), c.seed, c.k, c.p,
		c.legacy, c.noOverlap, st.NumRows, st.NumCols, st.NNZ)
	return h.Sum64()
}

// writeCFile writes C as raw little-endian float64s (row-major), preceded by
// a 16-byte rows/cols header — enough structure for bitwise diffing between
// backends without inventing a real format.
func writeCFile(path string, c *twoface.DenseMatrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(c.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(c.Cols))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, 0, 8*len(c.Data))
	for _, v := range c.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
