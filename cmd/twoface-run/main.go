// Command twoface-run executes one distributed SpMM on a matrix from disk
// (or a generated analog) with a chosen algorithm, printing the modeled
// time, per-node breakdown, and data-movement summary.
//
// Usage:
//
//	twoface-run -matrix web -scale 0.25 -algo twoface -K 128 -p 8
//	twoface-run -in graph.mtx.gz -algo ds2 -K 64
//	twoface-run -plan web.tfp -K 128 -p 8        # run a saved plan
//
// Observability (any algorithm):
//
//	-trace               print a per-node transfer-trace summary
//	-trace-out t.json    write a Chrome/Perfetto-loadable virtual-time trace
//	-report r.json       write a structured JSON run report
//	-explain             print the critical-path makespan attribution
//	-explain-json        same, as JSON
//	-listen :9090        serve /metrics (OpenMetrics), /report, /healthz,
//	                     and /debug/pprof over HTTP while the run executes
//	-log-level info      structured slog logging to stderr (-log-json for
//	                     JSON lines): retries, degradations, aborts
//	-cpuprofile p.out    write a pprof CPU profile of the (wall-clock) run
//	-memprofile m.out    write a pprof heap profile at exit
//
// Fault injection (any algorithm):
//
//	-chaos-seed 7        run under a random survivable fault plan; with
//	                     -verify the result is checked against a fault-free
//	                     twin run (bit-exact, or ulp-level for algorithms
//	                     that accumulate concurrently)
//	-fault-plan f.json   run under a hand-written fault plan
//	-chaos-crash         add a recoverable rank crash to the -chaos-seed
//	                     plan (pair with -recover, or watch the abort)
//	-recover             fail-recover mode: survivors re-execute a crashed
//	                     rank's work from its last checkpoint instead of
//	                     aborting (twoface algorithm only)
//	-checkpoint-interval virtual-seconds between checkpoints under -recover
//	                     (0 = automatic ~2%-overhead cadence)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"twoface"
)

type cli struct {
	in, name   string
	scale      float64
	seed       uint64
	plan, algo string
	k, p       int
	syncW      int
	asyncW     int
	legacy     bool
	noOverlap  bool
	verify     bool
	trace      bool
	traceOut   string
	traceCap   int
	report     string
	cpuProfile string
	memProfile string
	chaosSeed  uint64
	faultPlan  string
	chaosCrash bool
	recover    bool
	ckptEvery  float64
	forceGen   bool
	allowFMA   bool
	listen     string
	logLevel   string
	logJSON    bool
	explain    bool
	explainOut bool // -explain-json: attribution as JSON on stdout
	quiet      bool // suppress progress prints (fault-free twin run)
	rank       int
	peers      string
	rendezvous string
	writeC     string
}

func main() {
	var c cli
	flag.StringVar(&c.in, "in", "", "input matrix file (.mtx, .mtx.gz, or .bin)")
	flag.StringVar(&c.name, "matrix", "", "or: generate a registry analog by name")
	flag.Float64Var(&c.scale, "scale", 0.25, "scale for -matrix")
	flag.Uint64Var(&c.seed, "seed", 42, "seed for -matrix and B")
	flag.StringVar(&c.plan, "plan", "", "or: load a saved preprocessing plan (.tfp)")
	flag.StringVar(&c.algo, "algo", "twoface", "algorithm: twoface|ds1|ds2|ds4|ds8|allgather|asynccoarse|asyncfine")
	flag.IntVar(&c.k, "K", 128, "dense matrix columns")
	flag.IntVar(&c.p, "p", 8, "simulated nodes")
	flag.IntVar(&c.syncW, "sync-workers", 4, "goroutines per node on the collective path (wall-clock only)")
	flag.IntVar(&c.asyncW, "async-workers", 2, "goroutines per node draining the one-sided queue (wall-clock only)")
	flag.BoolVar(&c.legacy, "legacy-async", false, "one get per async stripe, no batching or row cache (seed accounting)")
	flag.BoolVar(&c.noOverlap, "no-overlap", false, "serialize stripe multicasts before panel compute (seed accounting, no pipelining credit)")
	flag.BoolVar(&c.verify, "verify", true, "check the result against the reference kernel")
	flag.BoolVar(&c.trace, "trace", false, "print a per-node transfer trace summary")
	flag.StringVar(&c.traceOut, "trace-out", "", "write a Chrome trace-event JSON of the run's virtual-time spans")
	flag.IntVar(&c.traceCap, "trace-cap", 1<<16, "per-node transfer-trace event cap for -trace")
	flag.Uint64Var(&c.chaosSeed, "chaos-seed", 0, "run under a random survivable fault plan with this seed (0 = off)")
	flag.StringVar(&c.faultPlan, "fault-plan", "", "run under the JSON fault plan at this path")
	flag.BoolVar(&c.chaosCrash, "chaos-crash", false, "add a recoverable rank crash to the -chaos-seed plan")
	flag.BoolVar(&c.recover, "recover", false, "recover crashed ranks from checkpoints instead of aborting (twoface only)")
	flag.Float64Var(&c.ckptEvery, "checkpoint-interval", 0, "virtual seconds between checkpoints under -recover (0 = auto)")
	flag.BoolVar(&c.forceGen, "force-generic", false, "pin compute kernels to the portable pure-Go loops (no SIMD dispatch)")
	flag.BoolVar(&c.allowFMA, "allow-fma", false, "opt compute kernels into fused multiply-add assembly (ulp-level drift vs default)")
	flag.StringVar(&c.report, "report", "", "write a structured JSON run report")
	flag.StringVar(&c.cpuProfile, "cpuprofile", "", "write a pprof CPU profile")
	flag.StringVar(&c.memProfile, "memprofile", "", "write a pprof heap profile")
	flag.StringVar(&c.listen, "listen", "", "serve the live ops endpoint (/metrics, /report, /healthz, /debug/pprof) on this host:port")
	flag.StringVar(&c.logLevel, "log-level", "", "structured logging to stderr at this level: debug|info|warn|error (empty = off)")
	flag.BoolVar(&c.logJSON, "log-json", false, "emit log records as JSON lines (with -log-level)")
	flag.BoolVar(&c.explain, "explain", false, "print the critical-path makespan attribution after the run")
	flag.BoolVar(&c.explainOut, "explain-json", false, "print the critical-path attribution as JSON")
	flag.IntVar(&c.rank, "rank", -1, "multi-process mode: run as this rank of a real TCP cluster (-1 = in-process simulator)")
	flag.StringVar(&c.peers, "peers", "", "multi-process mode: comma-separated host:port of every rank, in rank order")
	flag.StringVar(&c.rendezvous, "rendezvous", "", "multi-process mode: directory where ranks publish their bound addresses (use instead of -peers)")
	flag.StringVar(&c.writeC, "write-c", "", "write the computed C to this file (raw row-major float64; rank 0 only in multi-process mode)")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "twoface-run:", err)
		os.Exit(1)
	}
}

func run(c cli) error {
	if c.rank >= 0 {
		return runTCP(c)
	}
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	logger, _, err := twoface.SetupLogging("twoface-run", c.logLevel, c.logJSON)
	if err != nil {
		return err
	}

	var tracer *twoface.Tracer
	if c.traceOut != "" || c.explain || c.explainOut {
		tracer = twoface.NewTracer(0)
	}
	if c.report != "" || c.listen != "" {
		twoface.DefaultMetrics().SetEnabled(true)
	}
	srv, err := twoface.ServeOps(c.listen)
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
		srv.SetStatus("running")
		fmt.Printf("ops endpoint: http://%s (/metrics, /report, /healthz, /debug/pprof)\n", srv.Addr())
	}

	chaosPlan, err := resolveFaultPlan(c)
	if err != nil {
		return err
	}

	opts := twoface.Options{
		Nodes: c.p, DenseColumns: c.k, TimingOnly: !c.verify, Chaos: chaosPlan,
		Workers: c.syncW, AsyncWorkers: c.asyncW, LegacyAsyncGets: c.legacy,
		DisableOverlap:      c.noOverlap,
		ForceGenericKernels: c.forceGen, AllowFMA: c.allowFMA,
		Recover: c.recover, CheckpointInterval: c.ckptEvery,
	}
	if c.trace {
		opts.TraceEvents = c.traceCap
	}
	if tracer != nil {
		opts.SpanRecorder = tracer
	}
	if c.logLevel != "" {
		opts.Logger = logger
	}
	sys, err := twoface.New(opts)
	if err != nil {
		return err
	}

	var (
		res *twoface.Result
		a   *twoface.SparseMatrix
	)
	switch {
	case c.plan != "":
		res, err = runPlan(sys, c)
	default:
		a, err = loadMatrix(c.in, c.name, c.scale, c.seed)
		if err != nil {
			return err
		}
		res, err = runMatrix(sys, a, c)
	}
	if err != nil {
		return err
	}
	if res == nil { // OOM already reported
		return nil
	}

	if c.verify && a != nil {
		want, err := twoface.Reference(a, twoface.RandomDense(int(a.NumCols), c.k, c.seed+1))
		if err != nil {
			return err
		}
		if !res.C.AlmostEqual(want, 1e-9) {
			return fmt.Errorf("result does not match the reference kernel")
		}
		fmt.Println("verified against the reference kernel")
	}
	if chaosPlan != nil {
		if err := reportChaos(c, a, res, chaosPlan); err != nil {
			return err
		}
	}
	report(res)
	if c.writeC != "" && res.C != nil {
		if err := writeCFile(c.writeC, res.C); err != nil {
			return err
		}
		fmt.Printf("wrote C: %s\n", c.writeC)
	}

	if c.explain || c.explainOut {
		cp := tracer.CriticalPath()
		if cp == nil {
			return fmt.Errorf("explain: no spans were recorded")
		}
		// The attribution must agree with the ledger bit-for-bit; a mismatch
		// means the tracer and the cluster disagree about the run.
		if err := cp.Reconciles(res.Breakdowns); err != nil {
			return fmt.Errorf("explain: %w", err)
		}
		if c.explainOut {
			b, err := json.MarshalIndent(cp, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		}
		if c.explain {
			fmt.Print(cp.Table())
		}
	}

	if c.trace {
		fmt.Println("per-node transfer trace:")
		for _, s := range twoface.SummarizeTrace(res.TraceEvents, res.TraceDropped, c.p) {
			fmt.Printf("  node %d: %d events (%d dropped), %.2f MB collective, %.2f MB one-sided in %d regions\n",
				s.Rank, s.Events, s.Dropped, float64(8*s.CollectiveElems)/1e6, float64(8*s.OneSidedElems)/1e6, s.OneSidedMsgs)
		}
	}
	if tracer != nil && c.traceOut != "" {
		if err := tracer.WriteChromeTraceFile(c.traceOut); err != nil {
			return err
		}
		fmt.Printf("virtual-time trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", c.traceOut)
	}
	if c.report != "" || srv != nil {
		rep := buildReport(c, res, tracer)
		if srv != nil {
			srv.SetReport(rep)
			srv.SetStatus("done")
		}
		if c.report != "" {
			if err := rep.WriteFile(c.report); err != nil {
				return err
			}
			fmt.Printf("run report: %s\n", c.report)
		}
	}
	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// resolveFaultPlan turns the chaos flags into a fault plan (nil = healthy).
func resolveFaultPlan(c cli) (*twoface.FaultPlan, error) {
	switch {
	case c.faultPlan != "" && c.chaosSeed != 0:
		return nil, fmt.Errorf("use -chaos-seed or -fault-plan, not both")
	case c.chaosCrash && c.chaosSeed == 0:
		return nil, fmt.Errorf("-chaos-crash needs -chaos-seed")
	case c.faultPlan != "":
		return twoface.LoadFaultPlan(c.faultPlan)
	case c.chaosSeed != 0:
		if c.chaosCrash {
			return twoface.RandomFaultPlanWithCrash(c.chaosSeed, c.p), nil
		}
		return twoface.RandomFaultPlan(c.chaosSeed, c.p), nil
	}
	return nil, nil
}

// reportChaos prints the resilience summary of a chaotic run and, when the
// plan is survivable (or recoverable under -recover) and verification is
// on, replays the run on a healthy twin system and checks the two results
// agree — the headline guarantee of the degradation and recovery designs.
func reportChaos(c cli, a *twoface.SparseMatrix, res *twoface.Result, plan *twoface.FaultPlan) error {
	rs := res.TotalResilience
	fmt.Printf("chaos: %d get retries (%d exhausted), %d degradations (%.2f MB re-fetched synchronously), %d leg retries, %.3g s backoff, %.3g s injected delay\n",
		rs.GetRetries, rs.GetExhausted, rs.Degradations, float64(8*rs.DegradedElems)/1e6, rs.LegRetries, rs.BackoffSeconds, rs.DelaySeconds)
	if rs.Crashes > 0 {
		fmt.Printf("chaos: recovered %d crashed rank(s): %d checkpoints (%.3g s), %d stripes + %d panels re-executed, %.2f MB re-fetched, %.3g s recovery work\n",
			rs.Crashes, rs.Checkpoints, rs.CheckpointSeconds, rs.RecoveredStripes, rs.RecoveredPanels,
			float64(8*rs.RefetchedElems)/1e6, rs.RecoverySeconds)
	}
	if !c.verify || !(plan.Survivable() || (c.recover && plan.Recoverable(c.p))) {
		return nil
	}
	twinCfg := c
	twinCfg.quiet = true
	twinSys, err := twoface.New(twoface.Options{
		Nodes: c.p, DenseColumns: c.k,
		Workers: c.syncW, AsyncWorkers: c.asyncW, LegacyAsyncGets: c.legacy,
		DisableOverlap: c.noOverlap,
	})
	if err != nil {
		return err
	}
	var twin *twoface.Result
	if c.plan != "" {
		twin, err = runPlan(twinSys, twinCfg)
	} else {
		twin, err = runMatrix(twinSys, a, twinCfg)
	}
	if err != nil {
		return fmt.Errorf("fault-free twin run: %w", err)
	}
	maxRel, err := compareTwin(res.C, twin.C)
	if err != nil {
		return fmt.Errorf("chaos: result differs from the fault-free run: %w", err)
	}
	inflation := fmt.Sprintf("makespan %.4g s vs %.4g s fault-free, %+.1f%%",
		res.ModeledSeconds, twin.ModeledSeconds, 100*(res.ModeledSeconds/twin.ModeledSeconds-1))
	if maxRel == 0 {
		fmt.Printf("chaos: bit-exact with the fault-free run (%s)\n", inflation)
	} else {
		// Some algorithms accumulate C concurrently, so two healthy runs
		// already differ by reassociation ulps (DESIGN.md section 7); the
		// twin check then asserts ulp-level agreement, not bit equality.
		fmt.Printf("chaos: matches the fault-free run within float tolerance (max rel diff %.2g; %s)\n",
			maxRel, inflation)
	}
	return nil
}

// twinRelTol bounds the per-element relative difference accepted between a
// chaotic run and its fault-free twin. Concurrent accumulation reorders
// float additions by scheduling, so even two fault-free runs of the async
// baselines differ by ~1e-13; anything past this bound means the chaos
// layer moved wrong data, not just reassociated the same sums.
const twinRelTol = 1e-9

// compareTwin returns the maximum per-element relative difference between
// the two results (0 when bit-identical), or an error when the shapes
// mismatch or any element diverges past twinRelTol.
func compareTwin(a, b *twoface.DenseMatrix) (float64, error) {
	if a == nil || b == nil || a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("result shape mismatch")
	}
	var maxRel float64
	for i, v := range a.Data {
		w := b.Data[i]
		if v == w {
			continue
		}
		rel := math.Abs(v-w) / math.Max(math.Max(math.Abs(v), math.Abs(w)), 1)
		if rel > twinRelTol {
			return 0, fmt.Errorf("element %d: %v vs %v (rel %.2g)", i, v, w, rel)
		}
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel, nil
}

func runMatrix(sys *twoface.System, a *twoface.SparseMatrix, c cli) (*twoface.Result, error) {
	b := twoface.RandomDense(int(a.NumCols), c.k, c.seed+1)
	if !c.quiet {
		st := a.ComputeStats()
		fmt.Printf("A: %dx%d, %d nonzeros (avg %.2f/row); K=%d, p=%d, algo=%s\n",
			st.NumRows, st.NumCols, st.NNZ, st.AvgPerRow, c.k, c.p, c.algo)
	}

	switch strings.ToLower(c.algo) {
	case "twoface":
		pl, err := sys.Preprocess(a)
		if err != nil {
			return nil, err
		}
		if !c.quiet {
			ps := pl.Stats()
			fmt.Printf("classified: %d sync stripes, %d async stripes, fan-out avg %.1f\n",
				ps.SyncStripes, ps.AsyncStripes, ps.AvgMulticastFanout)
		}
		return pl.Multiply(b)
	default:
		base, err := baselineFor(c.algo)
		if err != nil {
			return nil, err
		}
		res, err := sys.RunBaseline(base, a, b)
		if twoface.IsOutOfMemory(err) {
			fmt.Println("result: OUT OF MEMORY (replication exceeds the per-node budget)")
			return nil, nil
		}
		return res, err
	}
}

func baselineFor(algo string) (twoface.Baseline, error) {
	switch strings.ToLower(algo) {
	case "ds1":
		return twoface.DenseShift1, nil
	case "ds2":
		return twoface.DenseShift2, nil
	case "ds4":
		return twoface.DenseShift4, nil
	case "ds8":
		return twoface.DenseShift8, nil
	case "allgather":
		return twoface.Allgather, nil
	case "asynccoarse":
		return twoface.AsyncCoarse, nil
	case "asyncfine":
		return twoface.AsyncFine, nil
	}
	return "", fmt.Errorf("unknown algorithm %q", algo)
}

func runPlan(sys *twoface.System, c cli) (*twoface.Result, error) {
	pl, err := sys.LoadPlan(c.plan)
	if err != nil {
		return nil, err
	}
	if !c.quiet {
		st := pl.Stats()
		fmt.Printf("loaded plan: %d nonzeros, %d sync / %d async stripes\n", st.TotalNNZ, st.SyncStripes, st.AsyncStripes)
	}
	// The plan knows B's required row count through its layout.
	b := twoface.RandomDense(pl.NumCols(), c.k, c.seed+1)
	return pl.Multiply(b)
}

func buildReport(c cli, res *twoface.Result, tracer *twoface.Tracer) *twoface.RunReport {
	rep := twoface.NewRunReport("twoface-run")
	rep.Config = map[string]any{
		"in": c.in, "matrix": c.name, "plan": c.plan, "scale": c.scale,
		"seed": c.seed, "algo": strings.ToLower(c.algo), "K": c.k, "p": c.p,
		"verify": c.verify,
	}
	if c.chaosSeed != 0 {
		rep.Config["chaos_seed"] = c.chaosSeed
	}
	if c.faultPlan != "" {
		rep.Config["fault_plan"] = c.faultPlan
	}
	if c.chaosCrash {
		rep.Config["chaos_crash"] = true
	}
	if c.recover {
		rep.Config["recover"] = true
		if c.ckptEvery > 0 {
			rep.Config["checkpoint_interval"] = c.ckptEvery
		}
	}
	rep.SetRun(res.Breakdowns, res.Transfer, res.ModeledSeconds, res.Wall)
	rep.SetResilience(res.TotalResilience)
	snap := twoface.DefaultMetrics().Snapshot()
	rep.Metrics = &snap
	if tracer != nil {
		rep.Trace = tracer.Info()
		rep.Trace.File = c.traceOut
		// The tracer's attribution is the ledger one plus per-op detail and
		// dropped-span caveats; prefer it over SetRun's ledger-only analysis.
		if cp := tracer.CriticalPath(); cp != nil {
			rep.CriticalPath = cp
			for _, w := range cp.Warnings {
				rep.Warn("%s", w)
			}
		}
	}
	return rep
}

func report(res *twoface.Result) {
	kind := "modeled"
	if res.Measured {
		kind = "measured"
	}
	fmt.Printf("%s time: %.4g s (wall %v)\n", kind, res.ModeledSeconds, res.Wall)
	fmt.Printf("per-node breakdown (%s seconds):\n", kind)
	fmt.Printf("  %4s  %10s %10s %10s %10s %10s %10s\n", "node", "SyncComm", "SyncComp", "Overlap", "AsyncComm", "AsyncComp", "Other")
	var overlap, serial float64
	for i, bd := range res.Breakdowns {
		fmt.Printf("  %4d  %10.3g %10.3g %10.3g %10.3g %10.3g %10.3g\n", i, bd.SyncComm, bd.SyncComp, bd.SyncOverlap, bd.AsyncComm, bd.AsyncComp, bd.Other)
		overlap += bd.SyncOverlap
		serial += bd.SyncComm + bd.SyncComp
	}
	if overlap > 0 && serial > 0 {
		fmt.Printf("sync overlap: %.4g s hidden by pipelining (%.0f%% of the serial sync half)\n",
			overlap, 100*overlap/serial)
	}
	t := res.TotalTransfer
	if t.TotalBytes() > 0 {
		fmt.Printf("data moved: %.2f MB collective in %d ops, %.2f MB one-sided in %d gets (%d regions)\n",
			float64(t.CollectiveBytes)/1e6, t.CollectiveMsgs, float64(t.OneSidedBytes)/1e6, t.OneSidedGets, t.OneSidedMsgs)
	}
	if rc := res.RowCache; rc.Hits+rc.Misses > 0 {
		fmt.Printf("row cache: %d hits / %d misses (%.0f%% hit rate), %.2f MB not re-fetched\n",
			rc.Hits, rc.Misses, 100*rc.HitRate(), float64(rc.SavedBytes)/1e6)
	}
}

func loadMatrix(in, name string, scale float64, seed uint64) (*twoface.SparseMatrix, error) {
	switch {
	case in != "" && name != "":
		return nil, fmt.Errorf("use -in or -matrix, not both")
	case in != "":
		if strings.HasSuffix(in, ".bin") {
			return twoface.ReadBinaryFile(in)
		}
		return twoface.ReadMatrixMarketFile(in)
	case name != "":
		for _, m := range twoface.Matrices() {
			if m == name {
				return twoface.Generate(name, scale, seed), nil
			}
		}
		return nil, fmt.Errorf("unknown matrix %q (see twoface-gen -list)", name)
	}
	return nil, fmt.Errorf("one of -in, -matrix, or -plan is required")
}
