// Command twoface-run executes one distributed SpMM on a matrix from disk
// (or a generated analog) with a chosen algorithm, printing the modeled
// time, per-node breakdown, and data-movement summary.
//
// Usage:
//
//	twoface-run -matrix web -scale 0.25 -algo twoface -K 128 -p 8
//	twoface-run -in graph.mtx.gz -algo ds2 -K 64
//	twoface-run -plan web.tfp -K 128 -p 8        # run a saved plan
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twoface"
)

func main() {
	var (
		in     = flag.String("in", "", "input matrix file (.mtx, .mtx.gz, or .bin)")
		name   = flag.String("matrix", "", "or: generate a registry analog by name")
		scale  = flag.Float64("scale", 0.25, "scale for -matrix")
		seed   = flag.Uint64("seed", 42, "seed for -matrix and B")
		plan   = flag.String("plan", "", "or: load a saved preprocessing plan (.tfp)")
		algo   = flag.String("algo", "twoface", "algorithm: twoface|ds1|ds2|ds4|ds8|allgather|asynccoarse|asyncfine")
		k      = flag.Int("K", 128, "dense matrix columns")
		p      = flag.Int("p", 8, "simulated nodes")
		verify = flag.Bool("verify", true, "check the result against the reference kernel")
		trace  = flag.Bool("trace", false, "print a per-node transfer trace summary (twoface only)")
	)
	flag.Parse()

	sys, err := twoface.New(twoface.Options{Nodes: *p, DenseColumns: *k, TimingOnly: !*verify})
	if err != nil {
		fatal(err)
	}

	if *plan != "" {
		runPlan(sys, *plan, *k, *seed)
		return
	}

	a, err := loadMatrix(*in, *name, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	b := twoface.RandomDense(int(a.NumCols), *k, *seed+1)
	st := a.ComputeStats()
	fmt.Printf("A: %dx%d, %d nonzeros (avg %.2f/row); K=%d, p=%d, algo=%s\n",
		st.NumRows, st.NumCols, st.NNZ, st.AvgPerRow, *k, *p, *algo)

	var res *twoface.Result
	switch strings.ToLower(*algo) {
	case "twoface":
		pl, err := sys.Preprocess(a)
		if err != nil {
			fatal(err)
		}
		ps := pl.Stats()
		fmt.Printf("classified: %d sync stripes, %d async stripes, fan-out avg %.1f\n",
			ps.SyncStripes, ps.AsyncStripes, ps.AvgMulticastFanout)
		if *trace {
			pl.EnableTrace(1 << 16)
		}
		res, err = pl.Multiply(b)
		if err != nil {
			fatal(err)
		}
		if *trace {
			fmt.Println("per-node transfer trace:")
			for _, s := range pl.TraceSummaries() {
				fmt.Printf("  node %d: %d events, %.2f MB collective, %.2f MB one-sided in %d regions\n",
					s.Rank, s.Events, float64(8*s.CollectiveElems)/1e6, float64(8*s.OneSidedElems)/1e6, s.OneSidedMsgs)
			}
		}
	default:
		var base twoface.Baseline
		switch strings.ToLower(*algo) {
		case "ds1":
			base = twoface.DenseShift1
		case "ds2":
			base = twoface.DenseShift2
		case "ds4":
			base = twoface.DenseShift4
		case "ds8":
			base = twoface.DenseShift8
		case "allgather":
			base = twoface.Allgather
		case "asynccoarse":
			base = twoface.AsyncCoarse
		case "asyncfine":
			base = twoface.AsyncFine
		default:
			fatal(fmt.Errorf("unknown algorithm %q", *algo))
		}
		res, err = sys.RunBaseline(base, a, b)
		if twoface.IsOutOfMemory(err) {
			fmt.Println("result: OUT OF MEMORY (replication exceeds the per-node budget)")
			return
		}
		if err != nil {
			fatal(err)
		}
	}

	if *verify {
		want, err := twoface.Reference(a, b)
		if err != nil {
			fatal(err)
		}
		if !res.C.AlmostEqual(want, 1e-9) {
			fatal(fmt.Errorf("result does not match the reference kernel"))
		}
		fmt.Println("verified against the reference kernel")
	}
	report(res)
}

func runPlan(sys *twoface.System, path string, k int, seed uint64) {
	pl, err := sys.LoadPlan(path)
	if err != nil {
		fatal(err)
	}
	st := pl.Stats()
	rows := st.TotalNNZ // plan stores nnz, not dims; report what we have
	fmt.Printf("loaded plan: %d nonzeros, %d sync / %d async stripes\n", rows, st.SyncStripes, st.AsyncStripes)
	// The plan knows its own dense width; B's rows come from the layout via
	// a probe multiply with a fresh random input.
	b := twoface.RandomDense(planCols(pl), k, seed+1)
	res, err := pl.Multiply(b)
	if err != nil {
		fatal(err)
	}
	report(res)
}

// planCols infers B's row count by asking the plan's stats — the plan's
// matrix is square in all registry workloads; for the general case the
// executor validates and reports the expected shape in its error.
func planCols(pl *twoface.Plan) int { return pl.NumCols() }

func report(res *twoface.Result) {
	fmt.Printf("modeled time: %.4g s (wall %v)\n", res.ModeledSeconds, res.Wall)
	fmt.Println("per-node breakdown (modeled seconds):")
	fmt.Printf("  %4s  %10s %10s %10s %10s %10s\n", "node", "SyncComm", "SyncComp", "AsyncComm", "AsyncComp", "Other")
	for i, bd := range res.Breakdowns {
		fmt.Printf("  %4d  %10.3g %10.3g %10.3g %10.3g %10.3g\n", i, bd.SyncComm, bd.SyncComp, bd.AsyncComm, bd.AsyncComp, bd.Other)
	}
}

func loadMatrix(in, name string, scale float64, seed uint64) (*twoface.SparseMatrix, error) {
	switch {
	case in != "" && name != "":
		return nil, fmt.Errorf("use -in or -matrix, not both")
	case in != "":
		if strings.HasSuffix(in, ".bin") {
			return twoface.ReadBinaryFile(in)
		}
		return twoface.ReadMatrixMarketFile(in)
	case name != "":
		for _, m := range twoface.Matrices() {
			if m == name {
				return twoface.Generate(name, scale, seed), nil
			}
		}
		return nil, fmt.Errorf("unknown matrix %q (see twoface-gen -list)", name)
	}
	return nil, fmt.Errorf("one of -in, -matrix, or -plan is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "twoface-run:", err)
	os.Exit(1)
}
