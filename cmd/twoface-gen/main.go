// Command twoface-gen emits synthetic analogs of the paper's evaluation
// matrices (Table 1) as Matrix Market text or bespoke binary files.
//
// Usage:
//
//	twoface-gen -matrix web -scale 0.25 -o web.mtx
//	twoface-gen -matrix kmer -format binary -o kmer.bin
//	twoface-gen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"twoface"
	"twoface/internal/gen"
)

func main() {
	var (
		name   = flag.String("matrix", "", "matrix short name (see -list)")
		scale  = flag.Float64("scale", 1.0, "scale relative to the registry (1.0 = 1/512 of the paper)")
		seed   = flag.Uint64("seed", 42, "generator seed")
		format = flag.String("format", "mm", "output format: mm (MatrixMarket) or binary")
		out    = flag.String("o", "", "output file (required unless -list)")
		list   = flag.Bool("list", false, "list available matrices and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("matrix      rows(scale=1)  avg deg  stripe W  paper analog")
		for _, s := range gen.Specs() {
			fmt.Printf("%-11s %13d  %7.2f  %8d  %s\n", s.Short, s.Rows, s.AvgDeg, s.Width, s.Long)
		}
		return
	}
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "twoface-gen: -matrix and -o are required (or -list)")
		os.Exit(2)
	}
	spec, err := gen.ByName(*name)
	if err != nil {
		fatal(err)
	}
	m := spec.Build(*scale, *seed)
	switch *format {
	case "mm":
		err = twoface.WriteMatrixMarketFile(*out, m)
	case "binary":
		err = twoface.WriteBinaryFile(*out, m)
	default:
		err = fmt.Errorf("unknown format %q (want mm or binary)", *format)
	}
	if err != nil {
		fatal(err)
	}
	st := m.ComputeStats()
	fmt.Printf("wrote %s: %dx%d, %d nonzeros (avg %.2f/row), stripe width %d\n",
		*out, st.NumRows, st.NumCols, st.NNZ, st.AvgPerRow, spec.ScaledWidth(*scale))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "twoface-gen:", err)
	os.Exit(1)
}
