// Command twoface-tune performs the installation-time parameter search of
// the paper's section 5.3: it sweeps stripe width, row-coalescing gap, row
// panel height, and the async-compute thread split on a workload and prints
// the best configuration under the virtual-time model.
//
// Usage:
//
//	twoface-tune -matrix twitter -scale 0.25 -K 128 -p 8
//	twoface-tune -in graph.mtx -K 64 -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twoface"
	"twoface/internal/tune"
)

func main() {
	var (
		in    = flag.String("in", "", "input matrix file (.mtx, .mtx.gz, or .bin)")
		name  = flag.String("matrix", "", "or: generate a registry analog by name")
		scale = flag.Float64("scale", 0.25, "scale for -matrix")
		seed  = flag.Uint64("seed", 42, "seed for -matrix")
		k     = flag.Int("K", 128, "dense matrix columns")
		p     = flag.Int("p", 8, "simulated nodes")
		top   = flag.Int("top", 5, "how many configurations to print")
	)
	flag.Parse()

	var a *twoface.SparseMatrix
	var err error
	switch {
	case *in != "":
		if strings.HasSuffix(*in, ".bin") {
			a, err = twoface.ReadBinaryFile(*in)
		} else {
			a, err = twoface.ReadMatrixMarketFile(*in)
		}
	case *name != "":
		a = twoface.Generate(*name, *scale, *seed)
	default:
		err = fmt.Errorf("-in or -matrix is required")
	}
	if err != nil {
		fatal(err)
	}

	sys, err := twoface.New(twoface.Options{Nodes: *p, DenseColumns: *k})
	if err != nil {
		fatal(err)
	}
	net := sys.Net(a.NumRows)
	fmt.Printf("tuning on %dx%d (%d nnz), K=%d, p=%d ...\n", a.NumRows, a.NumCols, a.NNZ(), *k, *p)
	best, all, err := tune.Tune(a, *k, *p, net, tune.Space{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("evaluated %d configurations\n\nbest: %s\n\ntop %d:\n", len(all), best, *top)
	for i, c := range all {
		if i >= *top {
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, c)
	}
	worst := all[len(all)-1]
	fmt.Printf("\nworst: %s (%.2fx slower than best)\n", worst, worst.Modeled/best.Modeled)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "twoface-tune:", err)
	os.Exit(1)
}
