// Command twoface-prep runs Two-Face preprocessing offline: it reads a
// sparse matrix (Matrix Market or binary), classifies its stripes for a
// given cluster size and dense width, reports the classification, and
// optionally writes the per-node sparse parts in the bespoke binary format
// (the paper's section 7.3 pipeline).
//
// Usage:
//
//	twoface-prep -in web.mtx -p 8 -K 128
//	twoface-prep -in web.bin -p 8 -K 128 -W 256 -outdir parts/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"twoface"
	"twoface/internal/core"
	"twoface/internal/sparse"
)

func main() {
	var (
		in      = flag.String("in", "", "input matrix (.mtx MatrixMarket or .bin bespoke binary); required")
		p       = flag.Int("p", 8, "number of nodes")
		k       = flag.Int("K", 128, "dense matrix columns")
		w       = flag.Int("W", 0, "stripe width (0 = cols/512 rounded to a power of two)")
		outdir  = flag.String("outdir", "", "if set, write per-node sync/async parts here")
		planOut = flag.String("plan", "", "if set, write the complete preprocessing plan here (load with twoface-run -plan)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "twoface-prep: -in is required")
		os.Exit(2)
	}

	var a *twoface.SparseMatrix
	var err error
	if strings.HasSuffix(*in, ".bin") {
		a, err = twoface.ReadBinaryFile(*in)
	} else {
		a, err = twoface.ReadMatrixMarketFile(*in)
	}
	if err != nil {
		fatal(err)
	}

	params := core.Params{P: *p, K: *k, W: int32(*w)}
	if params.W == 0 {
		params.W = autoWidth(a.NumCols)
	}
	params.Coef = twoface.DeriveCoefficients(twoface.DefaultNet())
	prep, err := core.Preprocess(a, params)
	if err != nil {
		fatal(err)
	}
	s := prep.Stats
	fmt.Printf("matrix: %dx%d, %d nonzeros; p=%d K=%d W=%d\n", a.NumRows, a.NumCols, s.TotalNNZ, *p, *k, params.W)
	fmt.Printf("classification: %d local-input nnz, %d sync nnz (%d stripes), %d async nnz (%d stripes)\n",
		s.LocalInputNNZ, s.SyncNNZ, s.SyncStripes, s.AsyncNNZ, s.AsyncStripes)
	fmt.Printf("multicast fan-out: avg %.1f, max %d; memory-cap flips: %d\n",
		s.AvgMulticastFanout, s.MaxMulticastFanout, s.MemCapFlips)
	fmt.Printf("preprocessing wall time: %.3fs (modeled single-node: %.3fs, with I/O: %.3fs)\n",
		s.WallSeconds, s.ModeledPrepSeconds, s.ModeledPrepWithIOSeconds)

	if *planOut != "" {
		if err := core.WritePrepFile(*planOut, prep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote preprocessing plan to %s\n", *planOut)
	}
	if *outdir == "" {
		return
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		if err := writePart(filepath.Join(*outdir, fmt.Sprintf("node%d.sync.bin", i)),
			np.Sync.Entries, np.RowHi-np.RowLo, a.NumCols); err != nil {
			fatal(err)
		}
		if err := writePart(filepath.Join(*outdir, fmt.Sprintf("node%d.async.bin", i)),
			np.Async.Entries, np.RowHi-np.RowLo, a.NumCols); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d per-node part files to %s\n", 2*len(prep.Nodes), *outdir)
}

func writePart(path string, entries []sparse.NZ, rows, cols int32) error {
	part := &sparse.COO{NumRows: rows, NumCols: cols, Entries: entries}
	return sparse.WriteBinaryFile(path, part)
}

func autoWidth(cols int32) int32 {
	w := cols / 512
	if w < 8 {
		return 8
	}
	// Round down to a power of two.
	for x := int32(8); ; x <<= 1 {
		if x*2 > w {
			return x
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "twoface-prep:", err)
	os.Exit(1)
}
