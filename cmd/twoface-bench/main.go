// Command twoface-bench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	twoface-bench -exp all                 # everything, default scale
//	twoface-bench -exp fig8 -p 8 -scale 1  # one experiment
//	twoface-bench -exp fig11 -full         # add p=32,64 to the scaling study
//
// Experiments: table1, fig2, fig7, fig8, fig9, table3, table5, fig10,
// fig11, table6, fig12, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"twoface/internal/chaos"
	"twoface/internal/harness"
	"twoface/internal/kernels"
	"twoface/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: table1|fig2|fig7|fig8|fig9|table3|table5|fig10|fig11|table6|fig12|volume|comm|seeds|all")
		scale      = flag.Float64("scale", 1.0, "matrix scale relative to the registry (1.0 = 1/512 of the paper)")
		p          = flag.Int("p", 8, "number of simulated nodes")
		seed       = flag.Uint64("seed", 42, "generator seed")
		workers    = flag.Int("workers", 4, "real goroutines per node")
		verify     = flag.Bool("verify", false, "run real arithmetic (slow) instead of timing-only mode")
		full       = flag.Bool("full", false, "extend fig11 to 32 and 64 nodes")
		asJSON     = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
		chaosSeed  = flag.Uint64("chaos-seed", 0, "run every algorithm under a random survivable fault plan with this seed (0 = off)")
		faultPlan  = flag.String("fault-plan", "", "run every algorithm under the JSON fault plan at this path")
		recovery   = flag.Bool("recover", false, "recover crashed ranks from checkpoints instead of aborting (TwoFace runs only)")
		ckptEvery  = flag.Float64("checkpoint-interval", 0, "virtual seconds between checkpoints under -recover (0 = auto)")
		report     = flag.String("report", "", "write a structured JSON report of this invocation")
		commOut    = flag.String("comm-out", "", "with -exp comm: write the per-matrix aggregation rows as JSON")
		runsFile   = flag.String("runs-file", "BENCH_runs.json", "trajectory file appended to when -report is set (empty disables)")
		forceGen   = flag.Bool("force-generic", false, "pin compute kernels to the portable pure-Go loops (no SIMD dispatch)")
		allowFMA   = flag.Bool("allow-fma", false, "opt compute kernels into fused multiply-add assembly (ulp-level drift vs default)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile")
		listen     = flag.String("listen", "", "serve the live ops endpoint (/metrics, /report, /healthz, /debug/pprof) on this host:port")
		logLevel   = flag.String("log-level", "", "structured logging to stderr at this level: debug|info|warn|error (empty = off)")
		logJSON    = flag.Bool("log-json", false, "emit log records as JSON lines (with -log-level)")
		compareRep = flag.String("compare-report", "", "compare two report/trajectory files (OLD,NEW) benchstat-style and exit")
		compFail   = flag.Bool("compare-fail", false, "with -compare-report: exit non-zero when any metric regressed")
	)
	flag.Parse()

	if *compareRep != "" {
		if err := compareReports(*compareRep, *compFail); err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
		return
	}

	if _, _, err := obs.SetupLogging("twoface-bench", *logLevel, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "twoface-bench:", err)
		os.Exit(1)
	}

	if *allowFMA {
		kernels.SetAllowFMA(true)
	}
	if *forceGen {
		kernels.SetForceGeneric(true)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *report != "" || *listen != "" {
		obs.Default.SetEnabled(true)
	}

	start := time.Now()
	cfg := harness.Config{
		Scale: *scale, P: *p, Seed: *seed, Workers: *workers, Verify: *verify, Listen: *listen,
		Recover: *recovery, CheckpointInterval: *ckptEvery,
	}
	srv, err := cfg.StartOps()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twoface-bench:", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
		srv.SetStatus("running")
		fmt.Printf("ops endpoint: http://%s (/metrics, /report, /healthz, /debug/pprof)\n", srv.Addr())
	}
	switch {
	case *faultPlan != "" && *chaosSeed != 0:
		fmt.Fprintln(os.Stderr, "twoface-bench: use -chaos-seed or -fault-plan, not both")
		os.Exit(1)
	case *faultPlan != "":
		plan, err := chaos.LoadFile(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
		cfg.Chaos = plan
	case *chaosSeed != 0:
		cfg.Chaos = chaos.RandomPlan(*chaosSeed, *p)
	}
	if err := run(cfg, strings.ToLower(*exp), *full, *asJSON, *commOut); err != nil {
		fmt.Fprintln(os.Stderr, "twoface-bench:", err)
		os.Exit(1)
	}
	if srv != nil {
		srv.SetStatus("done")
	}
	if *report != "" {
		if err := writeReport(*report, *runsFile, cfg, strings.ToLower(*exp), time.Since(start), srv); err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "twoface-bench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// writeReport emits the invocation-level report (there is no single modeled
// run to validate here, so it is written directly) and appends a compact
// entry to the BENCH_runs.json trajectory — the run-level sibling of
// BENCH_kernels.json that lets sessions compare harness behavior PR over
// PR.
func writeReport(path, runsFile string, cfg harness.Config, exp string, wall time.Duration, srv *obs.Server) error {
	rep := obs.NewReport("twoface-bench")
	rep.Config = map[string]any{
		"exp": exp, "scale": cfg.Scale, "p": cfg.P, "seed": cfg.Seed,
		"workers": cfg.Workers, "verify": cfg.Verify,
	}
	if cfg.Chaos != nil {
		rep.Config["chaos_seed"] = cfg.Chaos.Seed
	}
	if cfg.Recover {
		rep.Config["recover"] = true
	}
	rep.WallSeconds = wall.Seconds()
	snap := obs.Default.Snapshot()
	rep.Metrics = &snap
	if srv != nil {
		srv.SetReport(rep)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench report: %s\n", path)
	if runsFile == "" {
		return nil
	}
	entry := map[string]any{
		"unix_time":    time.Now().Unix(),
		"tool":         "twoface-bench",
		"go_version":   rep.GoVersion,
		"commit":       rep.Commit,
		"config":       rep.Config,
		"wall_seconds": rep.WallSeconds,
	}
	if err := obs.AppendTrajectory(runsFile, entry); err != nil {
		return err
	}
	fmt.Printf("trajectory: appended to %s\n", runsFile)
	return nil
}

// compareReports is the -compare-report mode: diff two report (or
// trajectory) files benchstat-style. Regressions print but exit zero — a
// soft gate — unless failOnRegress makes them fatal.
func compareReports(spec string, failOnRegress bool) error {
	oldPath, newPath, ok := strings.Cut(spec, ",")
	if !ok || oldPath == "" || newPath == "" {
		return fmt.Errorf("-compare-report wants OLD,NEW file paths, got %q", spec)
	}
	d, err := obs.CompareFiles(strings.TrimSpace(oldPath), strings.TrimSpace(newPath), obs.DiffOptions{})
	if err != nil {
		return err
	}
	fmt.Print(d.String())
	if failOnRegress && d.Regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed", d.Regressions)
	}
	return nil
}

func run(cfg harness.Config, exp string, full bool, asJSON bool, commOut string) error {
	show := func(t *harness.Table) {
		if asJSON {
			b, err := t.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "twoface-bench: json:", err)
				return
			}
			fmt.Println(string(b))
			return
		}
		fmt.Println(t.String())
	}
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		show(cfg.Table1())
		ran = true
	}
	if want("fig2") {
		show(cfg.Figure2())
		ran = true
	}
	for _, fk := range []struct {
		name string
		k    int
	}{{"fig7", 32}, {"fig8", 128}, {"fig9", 512}} {
		if want(fk.name) {
			show(cfg.SpeedupFigure(fk.k))
			ran = true
		}
	}
	if want("table3") {
		t, err := cfg.Table3()
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if want("table5") {
		show(cfg.Table5())
		ran = true
	}
	if want("fig10") {
		show(cfg.Figure10())
		ran = true
	}
	if want("fig11") {
		counts := []int{1, 2, 4, 8, 16}
		if full {
			counts = append(counts, 32, 64)
		}
		for _, t := range cfg.Figure11(counts) {
			show(t)
		}
		ran = true
	}
	if want("table6") {
		show(cfg.Table6())
		ran = true
	}
	if want("fig12") {
		for _, t := range cfg.Figure12() {
			show(t)
		}
		ran = true
	}
	if want("volume") {
		show(cfg.CommVolume(128))
		ran = true
	}
	if want("comm") {
		rows, t, err := cfg.CommAggregation(128)
		if err != nil {
			return err
		}
		show(t)
		if commOut != "" {
			b, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(commOut, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("comm aggregation rows: %s\n", commOut)
		}
		ran = true
	}
	if want("seeds") {
		show(cfg.SeedSweep(128, nil))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
