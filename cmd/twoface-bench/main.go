// Command twoface-bench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	twoface-bench -exp all                 # everything, default scale
//	twoface-bench -exp fig8 -p 8 -scale 1  # one experiment
//	twoface-bench -exp fig11 -full         # add p=32,64 to the scaling study
//
// Experiments: table1, fig2, fig7, fig8, fig9, table3, table5, fig10,
// fig11, table6, fig12, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twoface/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: table1|fig2|fig7|fig8|fig9|table3|table5|fig10|fig11|table6|fig12|volume|seeds|all")
		scale   = flag.Float64("scale", 1.0, "matrix scale relative to the registry (1.0 = 1/512 of the paper)")
		p       = flag.Int("p", 8, "number of simulated nodes")
		seed    = flag.Uint64("seed", 42, "generator seed")
		workers = flag.Int("workers", 4, "real goroutines per node")
		verify  = flag.Bool("verify", false, "run real arithmetic (slow) instead of timing-only mode")
		full    = flag.Bool("full", false, "extend fig11 to 32 and 64 nodes")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	)
	flag.Parse()

	cfg := harness.Config{Scale: *scale, P: *p, Seed: *seed, Workers: *workers, Verify: *verify}
	if err := run(cfg, strings.ToLower(*exp), *full, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "twoface-bench:", err)
		os.Exit(1)
	}
}

func run(cfg harness.Config, exp string, full bool, asJSON bool) error {
	show := func(t *harness.Table) {
		if asJSON {
			b, err := t.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "twoface-bench: json:", err)
				return
			}
			fmt.Println(string(b))
			return
		}
		fmt.Println(t.String())
	}
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		show(cfg.Table1())
		ran = true
	}
	if want("fig2") {
		show(cfg.Figure2())
		ran = true
	}
	for _, fk := range []struct {
		name string
		k    int
	}{{"fig7", 32}, {"fig8", 128}, {"fig9", 512}} {
		if want(fk.name) {
			show(cfg.SpeedupFigure(fk.k))
			ran = true
		}
	}
	if want("table3") {
		t, err := cfg.Table3()
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if want("table5") {
		show(cfg.Table5())
		ran = true
	}
	if want("fig10") {
		show(cfg.Figure10())
		ran = true
	}
	if want("fig11") {
		counts := []int{1, 2, 4, 8, 16}
		if full {
			counts = append(counts, 32, 64)
		}
		for _, t := range cfg.Figure11(counts) {
			show(t)
		}
		ran = true
	}
	if want("table6") {
		show(cfg.Table6())
		ran = true
	}
	if want("fig12") {
		for _, t := range cfg.Figure12() {
			show(t)
		}
		ran = true
	}
	if want("volume") {
		show(cfg.CommVolume(128))
		ran = true
	}
	if want("seeds") {
		show(cfg.SeedSweep(128, nil))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
