// Command twoface-calibrate reproduces the paper's section 6.2 one-time
// system calibration: it profiles the Two-Face executor on the twitter
// analog under nine forced configurations and fits the six preprocessing
// coefficients by linear regression, printing them next to the simulated
// machine's true parameters (this repository's Table 3).
//
// Usage:
//
//	twoface-calibrate -p 8 -scale 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"twoface/internal/harness"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.25, "matrix scale for the calibration workload")
		p     = flag.Int("p", 8, "number of simulated nodes")
		seed  = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	cfg := harness.Config{Scale: *scale, P: *p, Seed: *seed}
	table, err := cfg.Table3()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twoface-calibrate:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())
}
