// Command twoface-serve is the resident-plan serving daemon: it preprocesses
// a set of matrices once at startup, holds the resulting plans in memory, and
// serves multiply requests over HTTP with bounded admission control and
// duplicate coalescing (internal/serve, DESIGN.md section 13).
//
// Usage:
//
//	twoface-serve -plans web:0.25,stokes:0.1 -K 128 -p 8 -listen :8080
//	twoface-serve -plans fast=web:0.05 -max-inflight 8 -max-queue 256
//	twoface-serve -plans saved=plan.tfp -K 64
//
// Each -plans entry is [name=]matrix:scale (a generator spec) or
// [name=]path.tfp (a saved preprocessing plan); the name defaults to the
// matrix name or the file basename. Endpoints:
//
//	POST /v1/multiply    run one multiply (JSON body, or octet-stream B)
//	GET  /v1/plans       list resident plans
//	GET  /metrics        OpenMetrics exposition (serve.* counters included)
//	GET  /healthz        liveness + status (serving / draining)
//
// SIGTERM/SIGINT starts a graceful drain: queued requests are completed or
// refused with 503, in-flight multiplies finish, and the process exits 0
// once the HTTP layer is idle (or after -drain-timeout, whichever first).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"twoface"
	"twoface/internal/serve"
)

type cli struct {
	listen   string
	plans    string
	k, p     int
	syncW    int
	asyncW   int
	seed     uint64
	forceGen bool
	allowFMA bool

	maxInFlight  int
	maxQueue     int
	queueTimeout time.Duration
	maxBytes     int64
	maxBodyBytes int64
	drainTimeout time.Duration
	allowHold    bool
	logLevel     string
	logJSON      bool
}

func main() {
	var c cli
	flag.StringVar(&c.listen, "listen", ":8080", "listen address (host:port; :0 picks a free port)")
	flag.StringVar(&c.plans, "plans", "", "resident plans: comma-separated [name=]matrix:scale or [name=]path.tfp")
	flag.IntVar(&c.k, "K", 128, "dense operand columns")
	flag.IntVar(&c.p, "p", 8, "simulated nodes per plan")
	flag.IntVar(&c.syncW, "sync-workers", 4, "goroutines per node on the collective path (wall-clock only)")
	flag.IntVar(&c.asyncW, "async-workers", 2, "goroutines per node draining the one-sided queue (wall-clock only)")
	flag.Uint64Var(&c.seed, "seed", 42, "seed for generated matrices")
	flag.BoolVar(&c.forceGen, "force-generic", false, "pin compute kernels to the portable pure-Go loops")
	flag.BoolVar(&c.allowFMA, "allow-fma", false, "opt compute kernels into fused multiply-add assembly")
	flag.IntVar(&c.maxInFlight, "max-inflight", 4, "concurrent multiply executions")
	flag.IntVar(&c.maxQueue, "max-queue", 64, "requests waiting for a slot before shedding with 429")
	flag.DurationVar(&c.queueTimeout, "queue-timeout", 2*time.Second, "max time a request waits for a slot")
	flag.Int64Var(&c.maxBytes, "max-inflight-bytes", 1<<30, "operand byte budget across executing+queued requests (-1 disables)")
	flag.Int64Var(&c.maxBodyBytes, "max-body-bytes", 256<<20, "max bytes in one request body")
	flag.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "max time to drain on SIGTERM before cutting stragglers")
	flag.BoolVar(&c.allowHold, "allow-hold", false, "honor the hold_ms request field (load-testing aid)")
	flag.StringVar(&c.logLevel, "log-level", "info", "structured logging to stderr: debug|info|warn|error (empty = off)")
	flag.BoolVar(&c.logJSON, "log-json", false, "emit log records as JSON lines")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "twoface-serve:", err)
		os.Exit(1)
	}
}

func run(c cli) error {
	// Install the signal handler before any slow work. The old order —
	// preprocess, bind, print the banner, THEN Notify — left every second of
	// startup under the default SIGTERM disposition: an orchestrator's
	// early shutdown killed the process mid-preprocess with no drain
	// message, and a signal landing between banner and Notify died after
	// advertising the endpoint. Now a startup-time signal parks in the
	// channel until the next check.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	if c.plans == "" {
		return fmt.Errorf("-plans is required (e.g. -plans web:0.25,stokes:0.1)")
	}
	logger, _, err := twoface.SetupLogging("twoface-serve", c.logLevel, c.logJSON)
	if err != nil {
		return err
	}
	logger.Info("starting", "plans", c.plans, "listen", c.listen)
	twoface.DefaultMetrics().SetEnabled(true)

	reg := serve.NewRegistry()
	for _, spec := range strings.Split(c.plans, ",") {
		if got := pendingSignal(sig); got != nil {
			return exitDuringStartup(logger, got, "preprocessing")
		}
		res, err := buildResident(strings.TrimSpace(spec), c)
		if err != nil {
			return err
		}
		if err := reg.Add(res); err != nil {
			return err
		}
		st := res.Plan.Stats()
		fmt.Printf("plan %q: %s — %dx%d, %d nonzeros, %d sync / %d async stripes, prep %.2fs\n",
			res.Name, res.Source, res.Plan.NumRows(), res.Plan.NumCols(),
			st.TotalNNZ, st.SyncStripes, st.AsyncStripes, st.WallSeconds)
	}

	// A signal that landed during preprocessing must not bring the listener
	// up only to tear it straight down — answer it before binding, so no
	// client ever sees the port open.
	if got := pendingSignal(sig); got != nil {
		return exitDuringStartup(logger, got, "before listener")
	}

	srv := serve.New(serve.Config{
		MaxInFlight:      c.maxInFlight,
		MaxQueue:         c.maxQueue,
		QueueTimeout:     c.queueTimeout,
		MaxInFlightBytes: c.maxBytes,
		MaxBodyBytes:     c.maxBodyBytes,
		AllowHold:        c.allowHold,
		Logger:           logger,
	}, reg)
	if err := srv.Start(c.listen); err != nil {
		return err
	}
	// Print the banner only once we know no shutdown is already pending, so
	// a startup-time signal never advertises an endpoint it is about to
	// close (the banner/drain interleaving was racy before).
	got := pendingSignal(sig)
	if got == nil {
		fmt.Printf("serving on http://%s (/v1/multiply, /v1/plans, /metrics, /healthz)\n", srv.Addr())
		logger.Info("serving", "addr", srv.Addr(), "plans", reg.Names(),
			"max_inflight", c.maxInFlight, "max_queue", c.maxQueue)
		got = <-sig
	}
	fmt.Printf("%s: draining (up to %v)\n", got, c.drainTimeout)
	logger.Info("draining", "signal", got.String(), "timeout", c.drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Println("drained; exiting cleanly")
	return nil
}

// pendingSignal drains one already-delivered signal without blocking.
func pendingSignal(sig <-chan os.Signal) os.Signal {
	select {
	case s := <-sig:
		return s
	default:
		return nil
	}
}

// exitDuringStartup is the clean exit for a shutdown signal that arrived
// before the server existed: nothing is listening and nothing is in flight,
// so the drain is trivially complete. The message keeps the same "drained;
// exiting cleanly" terminator the post-startup path prints, so process
// supervisors can match one pattern.
func exitDuringStartup(logger *slog.Logger, got os.Signal, stage string) error {
	logger.Info("shutdown during startup", "signal", got.String(), "stage", stage)
	fmt.Printf("%s during startup (%s): drained; exiting cleanly\n", got, stage)
	return nil
}

// buildResident turns one -plans entry into a preprocessed resident plan.
// Each resident gets its own System so plans execute independently.
func buildResident(spec string, c cli) (*serve.Resident, error) {
	if spec == "" {
		return nil, fmt.Errorf("empty -plans entry")
	}
	name := ""
	if i := strings.IndexByte(spec, '='); i >= 0 {
		name, spec = spec[:i], spec[i+1:]
	}
	sys, err := twoface.New(twoface.Options{
		Nodes: c.p, DenseColumns: c.k,
		Workers: c.syncW, AsyncWorkers: c.asyncW,
		ForceGenericKernels: c.forceGen, AllowFMA: c.allowFMA,
	})
	if err != nil {
		return nil, err
	}

	if strings.HasSuffix(spec, ".tfp") {
		pl, err := sys.LoadPlan(spec)
		if err != nil {
			return nil, fmt.Errorf("plan %q: %w", spec, err)
		}
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(spec), ".tfp")
		}
		return &serve.Resident{Name: name, Plan: pl, K: c.k, Source: spec}, nil
	}

	matrix, scale := spec, 0.25
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		s, err := strconv.ParseFloat(spec[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("plan spec %q: bad scale %q", spec, spec[i+1:])
		}
		matrix, scale = spec[:i], s
	}
	known := false
	for _, m := range twoface.Matrices() {
		if m == matrix {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("unknown matrix %q (have %v)", matrix, twoface.Matrices())
	}
	a := twoface.Generate(matrix, scale, c.seed)
	pl, err := sys.Preprocess(a)
	if err != nil {
		return nil, fmt.Errorf("preprocess %s: %w", spec, err)
	}
	if name == "" {
		name = matrix
	}
	return &serve.Resident{Name: name, Plan: pl, K: c.k, Source: fmt.Sprintf("%s:%g", matrix, scale)}, nil
}
