package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The tests below re-exec the test binary as the real daemon: TestMain
// detects the env var and hands control to main(), so the child process has
// the production signal handling, flag parsing, and exit codes — not a
// test-harness approximation of them.
func TestMain(m *testing.M) {
	if os.Getenv("TWOFACE_SERVE_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// startServe launches the daemon as a child process with the given args and
// returns the command plus a line-channel fed from its stderr (structured
// logs) so tests can synchronize on startup progress.
func startServe(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer, <-chan string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TWOFACE_SERVE_BE_MAIN=1")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default: // test stopped listening; keep draining so the child can't block
			}
		}
		close(lines)
	}()
	return cmd, &stdout, lines
}

// waitForLine blocks until a stderr log line containing substr appears.
func waitForLine(t *testing.T, lines <-chan string, substr string) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("child stderr closed before %q appeared", substr)
			}
			if strings.Contains(line, substr) {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q on child stderr", substr)
		}
	}
}

// TestSigtermDuringStartup delivers SIGTERM as soon as the daemon has
// installed its handler but is still preprocessing — before the listener
// exists. The process must exit 0 with the drain message and must never
// print the serving banner (no banner race: a dying process must not
// advertise an endpoint).
func TestSigtermDuringStartup(t *testing.T) {
	// A large enough plan that preprocessing comfortably outlasts signal
	// delivery; "starting" is logged right after signal.Notify, so the
	// SIGTERM below always lands inside the startup window.
	cmd, stdout, lines := startServe(t,
		"-plans", "web:0.5", "-K", "32", "-p", "4", "-listen", "127.0.0.1:0")
	waitForLine(t, lines, "starting")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child exited with error (want clean exit 0): %v\nstdout:\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "drained; exiting cleanly") {
		t.Fatalf("missing drain message in stdout:\n%s", out)
	}
	if strings.Contains(out, "serving on http://") {
		t.Fatalf("startup-time SIGTERM still printed the serving banner:\n%s", out)
	}
}

// TestSigtermAfterStartupDrains is the post-startup control: once the banner
// is up, SIGTERM must drain and exit 0 — the startup rework must not have
// broken the normal path.
func TestSigtermAfterStartupDrains(t *testing.T) {
	cmd, stdout, lines := startServe(t,
		"-plans", "web:0.05", "-K", "16", "-p", "2", "-listen", "127.0.0.1:0")
	waitForLine(t, lines, "serving")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child exited with error: %v\nstdout:\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"serving on http://", "draining", "drained; exiting cleanly"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
	// The banner must precede the drain chatter — no interleaving.
	if strings.Index(out, "serving on http://") > strings.Index(out, "draining") {
		t.Fatalf("banner printed after drain started:\n%s", out)
	}
}
