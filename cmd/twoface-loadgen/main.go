// Command twoface-loadgen drives the serving daemon (cmd/twoface-serve) with
// measured load and emits the serving benchmark artifacts: a closed-loop
// throughput-vs-concurrency sweep, an open-loop fixed-QPS latency profile, a
// saturation probe demonstrating bounded queueing plus 429 shedding, and a
// duplicate-coalescing experiment comparing effective QPS with coalescing on
// versus the no_coalesce baseline.
//
// Usage:
//
//	twoface-loadgen -self-host -plans web:0.05 -copies 4 -mode all \
//	    -out BENCH_serve.json -report REPORT_serve.md
//	twoface-loadgen -target 127.0.0.1:8080 -mode sweep -conc 1,2,4,8
//	twoface-loadgen -target 127.0.0.1:8080 -probe-coalesce   # smoke probe
//
// Methodology (SNIPPETS.md section 1 discipline): every measured point runs
// -warmup discarded runs then -runs >= 3 measurement runs; reports carry
// P50/P95/P99, coefficient of variation, scaling efficiency against the
// lowest concurrency, and Cohen's d effect sizes so throughput deltas ship
// with evidence they exceed run-to-run noise.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twoface"
	"twoface/internal/harness"
	"twoface/internal/obs"
	"twoface/internal/serve"
)

type cli struct {
	target        string
	selfHost      bool
	plans         string
	copies        int
	k, p          int
	seed          uint64
	mode          string
	probeCoalesce bool

	conc     string
	warmup   int
	runs     int
	requests int
	qps      float64
	runDur   time.Duration
	seeds    int
	dupFrac  float64

	maxInFlight  int
	maxQueue     int
	queueTimeout time.Duration

	out    string
	report string
}

func main() {
	var c cli
	flag.StringVar(&c.target, "target", "", "serving daemon host:port (omit with -self-host)")
	flag.BoolVar(&c.selfHost, "self-host", false, "start an in-process server instead of targeting a daemon")
	flag.StringVar(&c.plans, "plans", "web:0.05", "-self-host resident plans ([name=]matrix:scale,...)")
	flag.IntVar(&c.copies, "copies", 4, "-self-host: replicate each plan spec this many times (cross-plan parallelism)")
	flag.IntVar(&c.k, "K", 32, "-self-host dense operand columns")
	flag.IntVar(&c.p, "p", 4, "-self-host simulated nodes per plan")
	flag.Uint64Var(&c.seed, "seed", 42, "-self-host matrix seed")
	flag.StringVar(&c.mode, "mode", "all", "experiment: sweep|openloop|saturate|coalesce|all")
	flag.BoolVar(&c.probeCoalesce, "probe-coalesce", false, "smoke probe: one held leader + one duplicate, assert the follower coalesces")
	flag.StringVar(&c.conc, "conc", "1,2,4,8,16", "closed-loop concurrency sweep levels")
	flag.IntVar(&c.warmup, "warmup", 1, "discarded warmup runs per point")
	flag.IntVar(&c.runs, "runs", 3, "measurement runs per point (>= 3 for effect sizes)")
	flag.IntVar(&c.requests, "requests", 200, "requests per closed-loop run")
	flag.Float64Var(&c.qps, "qps", 50, "open-loop arrival rate (requests/s)")
	flag.DurationVar(&c.runDur, "run-dur", 2*time.Second, "open-loop run duration")
	flag.IntVar(&c.seeds, "seeds", 8, "operand working-set size (distinct B seeds)")
	flag.Float64Var(&c.dupFrac, "dup-frac", 0, "fraction of sweep requests pinned to seed 0 (duplicate pressure)")
	flag.IntVar(&c.maxInFlight, "max-inflight", 4, "-self-host admission: concurrent executions")
	flag.IntVar(&c.maxQueue, "max-queue", 16, "-self-host admission: queue slots")
	flag.DurationVar(&c.queueTimeout, "queue-timeout", time.Second, "-self-host admission: max queue wait")
	flag.StringVar(&c.out, "out", "", "append the benchmark record to this JSON trajectory (e.g. BENCH_serve.json)")
	flag.StringVar(&c.report, "report", "", "write a markdown report to this path (e.g. REPORT_serve.md)")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "twoface-loadgen:", err)
		os.Exit(1)
	}
}

func run(c cli) error {
	var srv *serve.Server
	if c.selfHost {
		if c.target != "" {
			return fmt.Errorf("use -target or -self-host, not both")
		}
		var err error
		if srv, err = selfHost(c); err != nil {
			return err
		}
		defer srv.Close()
		c.target = srv.Addr()
		fmt.Printf("self-hosted server on %s\n", c.target)
	}
	if c.target == "" {
		return fmt.Errorf("-target or -self-host is required")
	}

	lg := &loadgen{addr: c.target, client: &http.Client{Timeout: 60 * time.Second}, srv: srv}
	plans, err := lg.discoverPlans()
	if err != nil {
		return err
	}
	if len(plans) == 0 {
		return fmt.Errorf("server at %s has no resident plans", c.target)
	}
	lg.plans = plans

	if c.probeCoalesce {
		return lg.probeCoalesce()
	}
	if c.runs < 1 {
		return fmt.Errorf("-runs must be >= 1")
	}

	record := map[string]any{
		"bench": "serve",
		"when":  time.Now().UTC().Format(time.RFC3339),
		"config": map[string]any{
			"target": c.target, "self_host": c.selfHost, "plans": plans,
			"K": c.k, "p": c.p, "warmup": c.warmup, "runs": c.runs,
			"requests": c.requests, "seeds": c.seeds, "dup_frac": c.dupFrac,
			"max_inflight": c.maxInFlight, "max_queue": c.maxQueue,
			"queue_timeout_ms": c.queueTimeout.Milliseconds(),
			"num_cpu":          runtime.NumCPU(), "go": runtime.Version(),
		},
	}
	var md mdReport
	md.title(c)

	want := func(m string) bool { return c.mode == "all" || c.mode == m }
	if want("sweep") {
		sweep, err := lg.sweep(c)
		if err != nil {
			return err
		}
		record["sweep"] = sweep
		md.sweep(sweep)
	}
	if want("openloop") {
		ol, err := lg.openLoop(c)
		if err != nil {
			return err
		}
		record["open_loop"] = ol
		md.openLoop(ol)
	}
	if want("saturate") {
		sat, err := lg.saturate(c)
		if err != nil {
			return err
		}
		record["saturation"] = sat
		md.saturation(sat, c)
	}
	if want("coalesce") {
		co, err := lg.coalesce(c)
		if err != nil {
			return err
		}
		record["coalesce"] = co
		md.coalesce(co)
	}

	if c.out != "" {
		if err := obs.AppendTrajectory(c.out, record); err != nil {
			return err
		}
		fmt.Printf("benchmark record appended to %s\n", c.out)
	}
	if c.report != "" {
		if err := os.WriteFile(c.report, md.bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", c.report)
	}
	return nil
}

// selfHost builds the resident registry in-process and serves it on a
// loopback port, so the measured path (HTTP, admission, coalescing) is
// identical to the daemon's while the artifact stays reproducible.
func selfHost(c cli) (*serve.Server, error) {
	twoface.DefaultMetrics().SetEnabled(true)
	reg := serve.NewRegistry()
	for _, spec := range strings.Split(c.plans, ",") {
		spec = strings.TrimSpace(spec)
		for i := 0; i < c.copies; i++ {
			name := ""
			base := spec
			if j := strings.IndexByte(spec, '='); j >= 0 {
				name, base = spec[:j], spec[j+1:]
			} else {
				name = base[:strings.IndexAny(base+":", ":")]
			}
			if c.copies > 1 {
				name = fmt.Sprintf("%s%d", name, i)
			}
			res, err := buildResident(name, base, c, c.seed+uint64(i))
			if err != nil {
				return nil, err
			}
			if err := reg.Add(res); err != nil {
				return nil, err
			}
		}
	}
	srv := serve.New(serve.Config{
		MaxInFlight:  c.maxInFlight,
		MaxQueue:     c.maxQueue,
		QueueTimeout: c.queueTimeout,
		AllowHold:    true,
	}, reg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return srv, nil
}

func buildResident(name, spec string, c cli, seed uint64) (*serve.Resident, error) {
	matrix, scale := spec, 0.25
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		s, err := strconv.ParseFloat(spec[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("plan spec %q: bad scale", spec)
		}
		matrix, scale = spec[:i], s
	}
	sys, err := twoface.New(twoface.Options{Nodes: c.p, DenseColumns: c.k})
	if err != nil {
		return nil, err
	}
	a := twoface.Generate(matrix, scale, seed)
	pl, err := sys.Preprocess(a)
	if err != nil {
		return nil, fmt.Errorf("preprocess %s: %w", spec, err)
	}
	return &serve.Resident{Name: name, Plan: pl, K: c.k, Source: fmt.Sprintf("%s:%g", matrix, scale)}, nil
}

// loadgen is one client against one serving endpoint.
type loadgen struct {
	addr   string
	client *http.Client
	plans  []string
	srv    *serve.Server // non-nil in self-host mode
}

func (lg *loadgen) discoverPlans() ([]string, error) {
	resp, err := lg.client.Get("http://" + lg.addr + "/v1/plans")
	if err != nil {
		return nil, fmt.Errorf("discovering plans: %w", err)
	}
	defer resp.Body.Close()
	var infos []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	sort.Strings(names)
	return names, nil
}

// outcome is one request's client-side observation.
type outcome struct {
	status    int
	latencyMS float64
	coalesced bool
}

// post issues one seed-addressed multiply.
func (lg *loadgen) post(plan string, seed uint64, holdMS, queueTimeoutMS int, noCoalesce bool) (outcome, error) {
	body := map[string]any{"plan": plan, "seed": seed}
	if holdMS > 0 {
		body["hold_ms"] = holdMS
	}
	if queueTimeoutMS > 0 {
		body["queue_timeout_ms"] = queueTimeoutMS
	}
	if noCoalesce {
		body["no_coalesce"] = true
	}
	buf, _ := json.Marshal(body)
	start := time.Now()
	resp, err := lg.client.Post("http://"+lg.addr+"/v1/multiply", "application/json", bytes.NewReader(buf))
	if err != nil {
		return outcome{}, err
	}
	defer resp.Body.Close()
	o := outcome{status: resp.StatusCode, latencyMS: float64(time.Since(start)) / float64(time.Millisecond)}
	if resp.StatusCode == http.StatusOK {
		var mr struct {
			Coalesced bool `json:"coalesced"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			return o, err
		}
		o.coalesced = mr.Coalesced
	}
	return o, nil
}

// runClosed runs one closed-loop trial: conc workers share a budget of
// total requests, each looping pick-plan → pick-seed → post.
func (lg *loadgen) runClosed(conc, total, seeds int, dupFrac float64, noCoalesce bool) (qps float64, lat []float64, shed, coalesced int, err error) {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	lat = make([]float64, 0, total)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				plan := lg.plans[i%len(lg.plans)]
				seed := uint64(i % seeds)
				if dupFrac > 0 && float64(i%100) < dupFrac*100 {
					seed = 0
					plan = lg.plans[0]
				}
				o, err := lg.post(plan, seed, 0, 0, noCoalesce)
				mu.Lock()
				switch {
				case err != nil:
					if firstEr == nil {
						firstEr = err
					}
				case o.status == http.StatusOK:
					lat = append(lat, o.latencyMS)
					if o.coalesced {
						coalesced++
					}
				case o.status == http.StatusTooManyRequests:
					shed++
				default:
					if firstEr == nil {
						firstEr = fmt.Errorf("unexpected status %d", o.status)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return 0, nil, 0, 0, firstEr
	}
	wall := time.Since(start).Seconds()
	return float64(len(lat)) / wall, lat, shed, coalesced, nil
}

// sweepPoint is one concurrency level of the closed-loop sweep.
type sweepPoint struct {
	Conc              int             `json:"conc"`
	RunQPS            []float64       `json:"run_qps"`
	QPSMean           float64         `json:"qps_mean"`
	QPSCV             float64         `json:"qps_cv"`
	Latency           harness.Summary `json:"latency_ms"`
	ScalingEfficiency float64         `json:"scaling_efficiency"`
	CohenDVsPrev      *float64        `json:"cohen_d_vs_prev,omitempty"`
	Shed              int             `json:"shed"`
	Coalesced         int             `json:"coalesced"`
}

func (lg *loadgen) sweep(c cli) ([]sweepPoint, error) {
	levels, err := parseConc(c.conc)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	var prevQPS []float64
	baseConc, baseQPS := 0, 0.0
	for _, conc := range levels {
		for i := 0; i < c.warmup; i++ {
			if _, _, _, _, err := lg.runClosed(conc, c.requests, c.seeds, c.dupFrac, false); err != nil {
				return nil, fmt.Errorf("conc %d warmup: %w", conc, err)
			}
		}
		pt := sweepPoint{Conc: conc}
		var allLat []float64
		for i := 0; i < c.runs; i++ {
			qps, lat, shed, coal, err := lg.runClosed(conc, c.requests, c.seeds, c.dupFrac, false)
			if err != nil {
				return nil, fmt.Errorf("conc %d run %d: %w", conc, i, err)
			}
			pt.RunQPS = append(pt.RunQPS, qps)
			allLat = append(allLat, lat...)
			pt.Shed += shed
			pt.Coalesced += coal
		}
		pt.QPSMean, _ = harness.MeanStd(pt.RunQPS)
		pt.QPSCV = harness.CV(pt.RunQPS)
		pt.Latency = harness.Summarize(allLat)
		if baseConc == 0 {
			baseConc, baseQPS = conc, pt.QPSMean
		}
		pt.ScalingEfficiency = harness.ScalingEfficiency(baseConc, baseQPS, conc, pt.QPSMean)
		if prevQPS != nil {
			pt.CohenDVsPrev = fin(harness.CohenD(pt.RunQPS, prevQPS))
		}
		prevQPS = pt.RunQPS
		fmt.Printf("sweep conc=%-3d qps=%.1f (cv %.1f%%)  p50=%.2fms p95=%.2fms p99=%.2fms  eff=%.2f shed=%d\n",
			conc, pt.QPSMean, 100*pt.QPSCV, pt.Latency.P50, pt.Latency.P95, pt.Latency.P99, pt.ScalingEfficiency, pt.Shed)
		points = append(points, pt)
	}
	return points, nil
}

// openLoopResult is the fixed-rate latency profile.
type openLoopResult struct {
	TargetQPS   float64         `json:"target_qps"`
	AchievedQPS float64         `json:"achieved_qps"`
	Latency     harness.Summary `json:"latency_ms"`
	Shed        int             `json:"shed"`
	Runs        int             `json:"runs"`
}

// openLoop fires requests at a fixed arrival rate regardless of completions
// (open-loop load, no coordinated omission) and profiles response latency.
func (lg *loadgen) openLoop(c cli) (*openLoopResult, error) {
	if c.qps <= 0 {
		return nil, fmt.Errorf("-qps must be > 0 for open-loop mode")
	}
	interval := time.Duration(float64(time.Second) / c.qps)
	res := &openLoopResult{TargetQPS: c.qps, Runs: c.runs}
	var allLat []float64
	for run := 0; run < c.warmup+c.runs; run++ {
		measured := run >= c.warmup
		var (
			mu sync.Mutex
			wg sync.WaitGroup
		)
		tick := time.NewTicker(interval)
		deadline := time.Now().Add(c.runDur)
		i := 0
		for time.Now().Before(deadline) {
			<-tick.C
			i++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				plan := lg.plans[i%len(lg.plans)]
				o, err := lg.post(plan, uint64(i%c.seeds), 0, 0, false)
				if !measured || err != nil {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if o.status == http.StatusOK {
					allLat = append(allLat, o.latencyMS)
				} else if o.status == http.StatusTooManyRequests {
					res.Shed++
				}
			}(i)
		}
		tick.Stop()
		wg.Wait()
	}
	res.Latency = harness.Summarize(allLat)
	res.AchievedQPS = float64(len(allLat)) / (float64(c.runs) * c.runDur.Seconds())
	fmt.Printf("open-loop target=%.0f qps achieved=%.1f qps  p50=%.2fms p95=%.2fms p99=%.2fms shed=%d\n",
		res.TargetQPS, res.AchievedQPS, res.Latency.P50, res.Latency.P95, res.Latency.P99, res.Shed)
	return res, nil
}

// saturationResult demonstrates overload behavior: bounded queueing and 429
// shedding instead of collapse.
type saturationResult struct {
	Conc           int             `json:"conc"`
	Requests       int             `json:"requests"`
	Completed      int             `json:"completed"`
	Shed           int             `json:"shed"`
	QPS            float64         `json:"qps"`
	Latency        harness.Summary `json:"latency_ms"`
	QueueHighWater int64           `json:"queue_high_water,omitempty"`
	RetryAfterSeen bool            `json:"retry_after_seen"`
}

func (lg *loadgen) saturate(c cli) (*saturationResult, error) {
	conc := 8 * c.maxInFlight
	if conc < 32 {
		conc = 32
	}
	// Short per-request queue deadline: overload resolves as shedding, not
	// as every request waiting out the full server timeout.
	res := &saturationResult{Conc: conc, Requests: c.requests * 2}
	var (
		mu     sync.Mutex
		allLat []float64
		next   atomic.Int64
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= res.Requests {
					return
				}
				// hold_ms pins the service time so overload does not depend
				// on scheduler luck; servers without -allow-hold ignore it
				// and shed only under real load.
				plan := lg.plans[i%len(lg.plans)]
				req, _ := json.Marshal(map[string]any{
					"plan": plan, "seed": uint64(i % c.seeds),
					"no_coalesce": true, "queue_timeout_ms": 300, "hold_ms": 20,
				})
				t0 := time.Now()
				resp, err := lg.client.Post("http://"+lg.addr+"/v1/multiply", "application/json", bytes.NewReader(req))
				if err != nil {
					continue
				}
				lat := float64(time.Since(t0)) / float64(time.Millisecond)
				ra := resp.Header.Get("Retry-After")
				code := resp.StatusCode
				resp.Body.Close()
				mu.Lock()
				switch code {
				case http.StatusOK:
					res.Completed++
					allLat = append(allLat, lat)
				case http.StatusTooManyRequests:
					res.Shed++
					if ra != "" {
						res.RetryAfterSeen = true
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	res.QPS = float64(res.Completed) / time.Since(start).Seconds()
	res.Latency = harness.Summarize(allLat)
	if lg.srv != nil {
		res.QueueHighWater = lg.srv.QueueHighWater()
	}
	fmt.Printf("saturate conc=%d: %d completed (%.1f qps), %d shed with 429 (retry-after %v), queue high-water %d\n",
		res.Conc, res.Completed, res.QPS, res.Shed, res.RetryAfterSeen, res.QueueHighWater)
	if res.Shed == 0 {
		return nil, fmt.Errorf("saturation at conc %d shed nothing — admission limits not exercised", conc)
	}
	return res, nil
}

// coalesceResult compares duplicate-heavy traffic with coalescing against
// the no_coalesce baseline.
type coalesceResult struct {
	Conc           int       `json:"conc"`
	CoalescedQPS   []float64 `json:"coalesced_run_qps"`
	UncoalescedQPS []float64 `json:"uncoalesced_run_qps"`
	Speedup        float64   `json:"speedup"`
	CohenD         *float64  `json:"cohen_d,omitempty"`
	CoalescedFrac  float64   `json:"coalesced_frac"`
}

// coalesce hammers one plan with one operand from many workers — the
// worst-case duplicate storm — and measures effective QPS with coalescing
// on and off. Duplicates of an in-flight execution ride along for free, so
// the coalesced arm should multiply effective throughput.
func (lg *loadgen) coalesce(c cli) (*coalesceResult, error) {
	conc := 8
	res := &coalesceResult{Conc: conc}
	var coalescedHits, served int
	for arm := 0; arm < 2; arm++ {
		noCoalesce := arm == 1
		for i := 0; i < c.warmup; i++ {
			if _, _, _, _, err := lg.runClosed(conc, c.requests, 1, 1, noCoalesce); err != nil {
				return nil, err
			}
		}
		for i := 0; i < c.runs; i++ {
			qps, lat, shed, coal, err := lg.runClosed(conc, c.requests, 1, 1, noCoalesce)
			if err != nil {
				return nil, err
			}
			_ = shed
			if noCoalesce {
				res.UncoalescedQPS = append(res.UncoalescedQPS, qps)
			} else {
				res.CoalescedQPS = append(res.CoalescedQPS, qps)
				coalescedHits += coal
				served += len(lat)
			}
		}
	}
	cm, _ := harness.MeanStd(res.CoalescedQPS)
	um, _ := harness.MeanStd(res.UncoalescedQPS)
	res.Speedup = cm / um
	res.CohenD = fin(harness.CohenD(res.CoalescedQPS, res.UncoalescedQPS))
	if served > 0 {
		res.CoalescedFrac = float64(coalescedHits) / float64(served)
	}
	d := math.NaN()
	if res.CohenD != nil {
		d = *res.CohenD
	}
	fmt.Printf("coalesce conc=%d: %.1f qps coalesced vs %.1f qps uncoalesced — %.2fx (d=%.1f, %.0f%% of responses coalesced)\n",
		conc, cm, um, res.Speedup, d, 100*res.CoalescedFrac)
	return res, nil
}

// probeCoalesce is the check.sh smoke: hold one leader in flight, send an
// identical duplicate, and assert the duplicate coalesced onto the leader.
// Requires the server to run with -allow-hold.
func (lg *loadgen) probeCoalesce() error {
	plan := lg.plans[0]
	type res struct {
		o   outcome
		err error
	}
	leadCh := make(chan res, 1)
	go func() {
		o, err := lg.post(plan, 12345, 500, 0, false)
		leadCh <- res{o, err}
	}()
	time.Sleep(150 * time.Millisecond) // leader is inside its hold window
	follower, err := lg.post(plan, 12345, 0, 0, false)
	if err != nil {
		return fmt.Errorf("follower request: %w", err)
	}
	lead := <-leadCh
	if lead.err != nil {
		return fmt.Errorf("leader request: %w", lead.err)
	}
	if lead.o.status != http.StatusOK || follower.status != http.StatusOK {
		return fmt.Errorf("probe statuses: leader %d, follower %d", lead.o.status, follower.status)
	}
	if lead.o.coalesced {
		return fmt.Errorf("leader marked coalesced")
	}
	if !follower.coalesced {
		return fmt.Errorf("follower did not coalesce onto the held leader (is the server running with -allow-hold?)")
	}
	fmt.Println("coalesce probe: leader executed, duplicate coalesced — OK")
	return nil
}

// fin returns &v when v is finite, nil otherwise — JSON has no encoding for
// NaN or Inf, so non-finite statistics are omitted rather than crashing the
// marshal.
func fin(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func parseConc(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -conc entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-conc is empty")
	}
	return out, nil
}

// mdReport accumulates the REPORT_serve.md markdown.
type mdReport struct {
	sb strings.Builder
}

func (m *mdReport) bytes() []byte { return []byte(m.sb.String()) }

func (m *mdReport) title(c cli) {
	fmt.Fprintf(&m.sb, "# Serving benchmark\n\n")
	fmt.Fprintf(&m.sb, "Generated by `twoface-loadgen` on %s.\n\n", time.Now().UTC().Format("2006-01-02"))
	fmt.Fprintf(&m.sb, "Configuration: plans=%s ×%d copies, K=%d, p=%d nodes/plan; admission max-inflight=%d, "+
		"max-queue=%d, queue-timeout=%s; host has %d CPU core(s) (%s). Methodology: %d warmup run(s) discarded, "+
		"%d measurement runs per point, %d requests per closed-loop run, %d-seed operand working set.\n\n",
		c.plans, c.copies, c.k, c.p, c.maxInFlight, c.maxQueue, c.queueTimeout,
		runtime.NumCPU(), runtime.Version(), c.warmup, c.runs, c.requests, c.seeds)
}

func (m *mdReport) sweep(points []sweepPoint) {
	fmt.Fprintf(&m.sb, "## Throughput vs concurrency (closed loop)\n\n")
	fmt.Fprintf(&m.sb, "| conc | QPS (mean) | CV | P50 ms | P95 ms | P99 ms | scaling eff | d vs prev | shed | coalesced |\n")
	fmt.Fprintf(&m.sb, "|-----:|-----------:|---:|-------:|-------:|-------:|------------:|----------:|-----:|----------:|\n")
	for _, p := range points {
		d := "—"
		if p.CohenDVsPrev != nil {
			d = fmt.Sprintf("%.1f", *p.CohenDVsPrev)
		}
		fmt.Fprintf(&m.sb, "| %d | %.1f | %.1f%% | %.2f | %.2f | %.2f | %.2f | %s | %d | %d |\n",
			p.Conc, p.QPSMean, 100*p.QPSCV, p.Latency.P50, p.Latency.P95, p.Latency.P99,
			p.ScalingEfficiency, d, p.Shed, p.Coalesced)
	}
	fmt.Fprintf(&m.sb, "\nScaling efficiency is measured against linear scaling from the first level. "+
		"The throughput ceiling is min(resident plans, max-inflight, host cores): one plan executes one "+
		"multiply at a time, admission bounds concurrent executions, and the multiply itself is CPU-bound. "+
		"On a host where cores are the binding constraint, throughput holds flat as concurrency rises "+
		"(latency grows linearly, the queue absorbs the excess) rather than collapsing — the bounded-capacity "+
		"behavior the admission layer exists to provide.\n\n")
}

func (m *mdReport) openLoop(ol *openLoopResult) {
	fmt.Fprintf(&m.sb, "## Open-loop latency at fixed arrival rate\n\n")
	fmt.Fprintf(&m.sb, "Target %.0f req/s (arrivals independent of completions — no coordinated omission): "+
		"achieved %.1f req/s served, P50 %.2f ms, P95 %.2f ms, P99 %.2f ms, %d shed.\n\n",
		ol.TargetQPS, ol.AchievedQPS, ol.Latency.P50, ol.Latency.P95, ol.Latency.P99, ol.Shed)
}

func (m *mdReport) saturation(sat *saturationResult, c cli) {
	fmt.Fprintf(&m.sb, "## Saturation: bounded queue + load shedding\n\n")
	fmt.Fprintf(&m.sb, "%d closed-loop workers against max-inflight=%d, max-queue=%d: %d requests completed "+
		"(%.1f QPS, P99 %.2f ms), %d shed with HTTP 429", sat.Conc, c.maxInFlight, c.maxQueue,
		sat.Completed, sat.QPS, sat.Latency.P99, sat.Shed)
	if sat.RetryAfterSeen {
		fmt.Fprintf(&m.sb, " (Retry-After present)")
	}
	if sat.QueueHighWater > 0 {
		fmt.Fprintf(&m.sb, "; the admission queue never exceeded %d entries (bound %d)", sat.QueueHighWater, c.maxQueue)
	}
	fmt.Fprintf(&m.sb, ". Overload resolves as fast, explicit shedding — served latency stays bounded instead of "+
		"the backlog growing without limit.\n\n")
}

func (m *mdReport) coalesce(co *coalesceResult) {
	cm, _ := harness.MeanStd(co.CoalescedQPS)
	um, _ := harness.MeanStd(co.UncoalescedQPS)
	d := math.NaN()
	if co.CohenD != nil {
		d = *co.CohenD
	}
	fmt.Fprintf(&m.sb, "## Duplicate coalescing\n\n")
	fmt.Fprintf(&m.sb, "%d workers hammering one plan with one operand (worst-case duplicate storm): "+
		"%.1f effective QPS with coalescing vs %.1f QPS with `no_coalesce` — **%.2f× effective throughput** "+
		"(Cohen's d %.1f; %.0f%% of coalesced-arm responses rode an in-flight leader). Coalesced duplicates "+
		"share the leader's execution without consuming admission slots; the `no_coalesce` arm executes every "+
		"duplicate and serializes on the plan.\n",
		co.Conc, cm, um, co.Speedup, d, 100*co.CoalescedFrac)
}
