// Package twoface is a from-scratch Go implementation of Two-Face, the
// hybrid collective/one-sided distributed SpMM algorithm of Block et al.
// (ASPLOS 2024), together with the full substrate its evaluation needs: a
// simulated multi-node message-passing runtime with a calibrated
// virtual-time network model, the paper's baselines (dense shifting, full
// replication, coarse- and fine-grained one-sided), synthetic analogs of the
// paper's eight benchmark matrices, and a harness that regenerates every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	a := twoface.Generate("web", 0.1, 42)          // a paper-matrix analog
//	b := twoface.RandomDense(int(a.NumCols), 128, 1)
//	sys, err := twoface.New(twoface.Options{Nodes: 8, DenseColumns: 128})
//	if err != nil { ... }
//	plan, err := sys.Preprocess(a)                 // classify stripes once
//	if err != nil { ... }
//	res, err := plan.Multiply(b)                   // C = A x B, many times
//	if err != nil { ... }
//	_ = res.C                                      // the product
//	_ = res.ModeledSeconds                         // time on the modeled cluster
//
// Preprocessing is the expensive step (the paper amortizes it over hundreds
// of SpMM iterations in GNN training); Multiply may be called repeatedly
// with different dense inputs against the same plan.
//
// # Layout
//
// The paper's primary contribution lives in internal/core (partitioner,
// preprocessing model, Algorithms 1-3); internal/cluster is the simulated
// machine; internal/baselines holds the compared algorithms;
// internal/harness regenerates the evaluation. See DESIGN.md for the full
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package twoface

import (
	"log/slog"

	"twoface/internal/chaos"
	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/gen"
	"twoface/internal/model"
	"twoface/internal/obs"
	"twoface/internal/sparse"
)

// Re-exported substrate types. The facade keeps downstream code to a single
// import for common use; power users can reach the internal packages'
// functionality through these aliases.
type (
	// SparseMatrix is a coordinate-format sparse matrix (the A operand).
	SparseMatrix = sparse.COO
	// DenseMatrix is a row-major dense matrix (the B and C operands).
	DenseMatrix = dense.Matrix
	// NetModel describes the simulated machine's performance.
	NetModel = cluster.NetModel
	// Coefficients are the preprocessing model's classifier parameters.
	Coefficients = model.Coefficients
	// Breakdown is a per-node modeled-time ledger (Figure 10 categories).
	Breakdown = cluster.Breakdown
	// Result is the outcome of one distributed SpMM.
	Result = core.Result
	// SDDMMResult is the outcome of one distributed SDDMM.
	SDDMMResult = core.SDDMMResult
	// PrepStats summarizes a preprocessing run.
	PrepStats = core.PrepStats
	// TransferStats are one rank's honest data-movement counters.
	TransferStats = cluster.TransferStats
	// RowCacheStats summarize a run's remote-row cache effectiveness (see
	// Result.RowCache and Options.RowCacheElems).
	RowCacheStats = core.RowCacheStats
	// TraceEvent is one traced transfer (see Options.TraceEvents).
	TraceEvent = cluster.Event
	// SpanRecorder observes virtual-time spans (see Options.SpanRecorder).
	SpanRecorder = cluster.SpanRecorder
	// Tracer collects virtual-time spans and exports Chrome trace JSON.
	Tracer = obs.Tracer
	// Metrics is the counter/gauge/histogram registry of internal/obs.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's values.
	MetricsSnapshot = obs.Snapshot
	// RunReport is the structured JSON document describing one run.
	RunReport = obs.Report
	// FaultPlan is a seeded, deterministic fault-injection plan (see
	// Options.Chaos and internal/chaos).
	FaultPlan = chaos.Plan
	// RetryPolicy governs the cluster's retry/backoff behaviour under
	// injected faults.
	RetryPolicy = cluster.RetryPolicy
	// ResilienceStats count a run's injected faults, retries, and
	// degradations (see Result.Resilience).
	ResilienceStats = cluster.ResilienceStats
	// OpsServer serves the live ops endpoint: /metrics (OpenMetrics),
	// /report, /healthz, and /debug/pprof over HTTP (see ServeOps).
	OpsServer = obs.Server
	// CriticalPath is the makespan attribution of one run: the straggler
	// rank, its critical half, the dominant phase, and per-rank barrier wait.
	CriticalPath = obs.CriticalPath
	// ReportDiff is a benchstat-style comparison of two run reports.
	ReportDiff = obs.Diff
	// Transport is the transfer-level backend seam (see Options.Transport):
	// the in-process virtual-time simulator by default, or a wall-clock
	// multi-process backend such as internal/transport/tcp.
	Transport = cluster.Transport
)

// NewMemTransport returns the in-process simulator transport for p ranks —
// the backend Options.Transport defaults to. Exported for conformance
// testing and for embedding the simulator behind the same seam real
// backends use.
func NewMemTransport(p int) (Transport, error) { return cluster.NewMemTransport(p) }

// NewTracer returns an empty virtual-time span tracer (per-rank span cap;
// <= 0 uses the default). Attach it through Options.SpanRecorder.
func NewTracer(perRankLimit int) *Tracer { return obs.NewTracer(perRankLimit) }

// DefaultMetrics returns the process-wide metrics registry that the
// executor's instrumentation writes to. It starts disabled; call
// SetEnabled(true) before a run to collect.
func DefaultMetrics() *Metrics { return obs.Default }

// NewRunReport starts a run report for the named tool, stamped with build
// provenance (Go version, VCS commit when available).
func NewRunReport(tool string) *RunReport { return obs.NewReport(tool) }

// ServeOps starts the live ops HTTP endpoint on addr (host:port; ":0" picks
// a free port), serving the default metrics registry at /metrics in
// OpenMetrics text format alongside /report, /healthz, and /debug/pprof.
// An empty addr is a no-op returning nil. Close the server when done.
func ServeOps(addr string) (*OpsServer, error) { return obs.Serve(addr) }

// SetupLogging parses a -log-level flag value ("" = off, or debug | info |
// warn | error), installs a process-wide stderr slog logger (JSON lines
// when asJSON) stamped with the tool name and a fresh run ID, and returns
// it. Pass the result to Options.Logger to attach rank-attributed cluster
// logging.
func SetupLogging(tool, level string, asJSON bool) (*slog.Logger, string, error) {
	return obs.SetupLogging(tool, level, asJSON)
}

// AnalyzeCriticalPath attributes a run's makespan from its per-rank
// breakdowns: straggler, critical half, dominant phase, barrier wait. The
// result's per-rank ledger fields are copied bit-for-bit from the input.
func AnalyzeCriticalPath(breakdowns []Breakdown) *CriticalPath {
	return obs.AnalyzeBreakdowns(breakdowns)
}

// CompareReportFiles diffs two run report (or trajectory) files with the
// default noise thresholds — the twoface-bench -compare-report engine.
func CompareReportFiles(oldPath, newPath string) (*ReportDiff, error) {
	return obs.CompareFiles(oldPath, newPath, obs.DiffOptions{})
}

// RandomFaultPlan generates a survivable fault plan for a p-node cluster,
// deterministic in seed: stragglers, transient get failures within the
// retry budget, a persistently unreachable get target that forces the
// degradation path, and straggling multicast legs — but no crashes and no
// collective failure beyond the budget, so every algorithm must complete
// bit-exactly under it. This is what -chaos-seed feeds to twoface-run and
// twoface-bench.
func RandomFaultPlan(seed uint64, p int) *FaultPlan { return chaos.RandomPlan(seed, p) }

// RandomFaultPlanWithCrash is RandomFaultPlan plus one rank crash at a
// random early virtual time, deterministic in seed. The result is never
// survivable fail-clean — run it with Options.Recover (twoface-run
// -recover) so the survivors re-execute the dead rank's work and the run
// still completes. The non-crash faults are byte-identical to
// RandomFaultPlan's for the same seed.
func RandomFaultPlanWithCrash(seed uint64, p int) *FaultPlan {
	return chaos.RandomPlanWithCrash(seed, p)
}

// LoadFaultPlan reads and validates a JSON fault plan file (the
// twoface-run -fault-plan format).
func LoadFaultPlan(path string) (*FaultPlan, error) { return chaos.LoadFile(path) }

// NewSparse returns an empty sparse matrix with the given shape.
func NewSparse(rows, cols int32) *SparseMatrix { return sparse.NewCOO(rows, cols, 0) }

// NewDense returns a zeroed dense matrix.
func NewDense(rows, cols int) *DenseMatrix { return dense.New(rows, cols) }

// RandomDense returns a dense matrix with entries uniform in [-1, 1),
// deterministic in seed.
func RandomDense(rows, cols int, seed uint64) *DenseMatrix { return dense.Random(rows, cols, seed) }

// DefaultNet returns the simulated machine model calibrated to the paper's
// Table 3 measurements of NCSA Delta.
func DefaultNet() NetModel { return cluster.Default() }

// Generate builds a synthetic analog of one of the paper's Table 1 matrices
// ("mawi", "queen", "stokes", "kmer", "arabic", "twitter", "web",
// "friendster") at the given scale (1.0 is roughly 1/512 of the paper's
// dimensions). It panics on an unknown name; use Matrices for the roster.
func Generate(name string, scale float64, seed uint64) *SparseMatrix {
	spec, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	return spec.Build(scale, seed)
}

// StripeWidthFor returns the paper-scaled stripe width for a registry matrix
// at the given scale.
func StripeWidthFor(name string, scale float64) int32 {
	spec, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	return spec.ScaledWidth(scale)
}

// Matrices lists the short names of the paper's evaluation matrices.
func Matrices() []string {
	specs := gen.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Short
	}
	return names
}

// ReadMatrixMarketFile loads a sparse matrix from a Matrix Market file.
func ReadMatrixMarketFile(path string) (*SparseMatrix, error) {
	return sparse.ReadMatrixMarketFile(path)
}

// WriteMatrixMarketFile stores a sparse matrix as Matrix Market text.
func WriteMatrixMarketFile(path string, m *SparseMatrix) error {
	return sparse.WriteMatrixMarketFile(path, m)
}

// ReadBinaryFile loads a sparse matrix from the bespoke binary format.
func ReadBinaryFile(path string) (*SparseMatrix, error) { return sparse.ReadBinaryFile(path) }

// WriteBinaryFile stores a sparse matrix in the bespoke binary format.
func WriteBinaryFile(path string, m *SparseMatrix) error { return sparse.WriteBinaryFile(path, m) }

// Reference computes C = A x B with the sequential reference kernel, for
// checking distributed results.
func Reference(a *SparseMatrix, b *DenseMatrix) (*DenseMatrix, error) {
	return a.ToCSR().Mul(b)
}

// DeriveCoefficients returns the classifier coefficients that describe the
// given machine, as the paper's calibration would fit them.
func DeriveCoefficients(net NetModel) Coefficients {
	return core.CoefficientsFromNet(net, 8)
}
