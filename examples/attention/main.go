// Graph-attention scoring as distributed SDDMM (paper section 9: Two-Face
// "should also be applicable to sparse kernels such as SDDMM"). Attention
// mechanisms on graphs score every edge (i, j) with a dot product of the
// endpoints' feature vectors — exactly C_ij = A_ij * dot(Q[i,:], K[j,:])
// over the adjacency structure. One SpMM preprocessing plan drives both the
// SDDMM scoring pass and the SpMM aggregation pass of an attention layer.
//
//	go run ./examples/attention
package main

import (
	"fmt"
	"log"
	"math"

	"twoface"
)

const (
	nodes = 8
	dim   = 32 // feature dimension (K)
)

func main() {
	g := twoface.Generate("arabic", 0.03, 42)
	n := int(g.NumRows)
	fmt.Printf("graph: %d vertices, %d edges; attention dim %d on %d nodes\n", n, g.NNZ(), dim, nodes)

	// Structure-only adjacency (value 1 per edge) so the SDDMM result is the
	// raw attention logit.
	adj := twoface.NewSparse(g.NumRows, g.NumCols)
	for _, e := range g.Entries {
		adj.Append(e.Row, e.Col, 1)
	}
	adj.Dedup()

	sys, err := twoface.New(twoface.Options{Nodes: nodes, DenseColumns: dim})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Preprocess(adj)
	if err != nil {
		log.Fatal(err)
	}

	q := twoface.RandomDense(n, dim, 1) // query projections
	k := twoface.RandomDense(n, dim, 2) // key projections

	// Pass 1 (SDDMM): per-edge attention logits.
	logits, err := plan.SDDMM(q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDDMM scoring: %d edge logits, modeled %.3g s\n",
		logits.C.NNZ(), logits.ModeledSeconds)

	// Softmax the logits per row (locally; the scores are row-partitioned).
	attn := rowSoftmax(logits.C)

	// Verify against the sequential reference.
	want, err := adj.SDDMM(q, k)
	if err != nil {
		log.Fatal(err)
	}
	want.SortRowMajor()
	for i := range want.Entries {
		if d := logits.C.Entries[i].Val - want.Entries[i].Val; math.Abs(d) > 1e-9 {
			log.Fatalf("logit %d differs from reference by %v", i, d)
		}
	}
	fmt.Println("logits match the sequential reference")

	// Pass 2 (SpMM): aggregate value vectors with the attention weights.
	// The attention matrix has the adjacency's structure, so the same plan
	// would classify it identically; re-preprocessing is only needed because
	// the *values* changed, which the plan embeds. (The paper's GNN pipeline
	// preprocesses once per structure for the same reason.)
	attnPlan, err := sys.Preprocess(attn)
	if err != nil {
		log.Fatal(err)
	}
	v := twoface.RandomDense(n, dim, 3)
	out, err := attnPlan.Multiply(v)
	if err != nil {
		log.Fatal(err)
	}
	wantOut, _ := twoface.Reference(attn, v)
	if !out.C.AlmostEqual(wantOut, 1e-9) {
		log.Fatal("aggregation differs from reference")
	}
	fmt.Printf("SpMM aggregation: correct; modeled %.3g s\n", out.ModeledSeconds)
	fmt.Printf("attention layer total (modeled): %.3g s\n", logits.ModeledSeconds+out.ModeledSeconds)
}

// rowSoftmax exponentiates and row-normalizes a row-major-sorted sparse
// matrix's values.
func rowSoftmax(m *twoface.SparseMatrix) *twoface.SparseMatrix {
	out := m.Clone()
	i := 0
	for i < len(out.Entries) {
		j := i
		var max float64 = math.Inf(-1)
		for j < len(out.Entries) && out.Entries[j].Row == out.Entries[i].Row {
			if out.Entries[j].Val > max {
				max = out.Entries[j].Val
			}
			j++
		}
		var sum float64
		for t := i; t < j; t++ {
			out.Entries[t].Val = math.Exp(out.Entries[t].Val - max)
			sum += out.Entries[t].Val
		}
		for t := i; t < j; t++ {
			out.Entries[t].Val /= sum
		}
		i = j
	}
	return out
}
