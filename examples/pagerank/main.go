// Multi-source personalized PageRank as iterated distributed SpMM: R is an
// n x K dense matrix whose columns are rank vectors for K different seed
// sets, updated by R <- d * P^T R + (1-d) * E. Each iteration is one SpMM
// over the same column-normalized link matrix, so Two-Face's preprocessing
// amortizes across the power iteration, and the web-crawl structure is
// exactly the paper's best case.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"

	"twoface"
)

const (
	nodes   = 8
	seeds   = 16 // K: personalized rank vectors computed at once
	damping = 0.85
	maxIter = 30
	tol     = 1e-8
)

func main() {
	g := twoface.Generate("web", 0.05, 42)
	n := int(g.NumRows)
	pt := transposeNormalize(g)
	fmt.Printf("link graph: %d pages, %d links; %d personalized rank columns\n", n, pt.NNZ(), seeds)

	sys, err := twoface.New(twoface.Options{Nodes: nodes, DenseColumns: seeds})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Preprocess(pt)
	if err != nil {
		log.Fatal(err)
	}

	// Seed matrix E: column j restarts at page j*stride.
	e := twoface.NewDense(n, seeds)
	for j := 0; j < seeds; j++ {
		e.Set(j*(n/seeds), j, 1)
	}
	r := e.Clone()

	var modeled float64
	iter := 0
	for ; iter < maxIter; iter++ {
		res, err := plan.Multiply(r)
		if err != nil {
			log.Fatal(err)
		}
		modeled += res.ModeledSeconds
		next := res.C
		next.Scale(damping)
		for i := range next.Data {
			next.Data[i] += (1 - damping) * e.Data[i]
		}
		delta, err := next.MaxAbsDiff(r)
		if err != nil {
			log.Fatal(err)
		}
		r = next
		if delta < tol {
			iter++
			break
		}
	}

	fmt.Printf("converged after %d iterations; total modeled SpMM time %.3g s\n", iter, modeled)
	for j := 0; j < 3; j++ {
		page, score := argmaxColumn(r, j)
		fmt.Printf("seed %d: top page %d (score %.4g)\n", j, page, score)
	}
}

// transposeNormalize returns P^T where P is the column-stochastic link
// matrix: P^T[i][j] = 1/outdeg(i) for each link i -> j ... transposed so
// that rank mass flows along links under SpMM.
func transposeNormalize(g *twoface.SparseMatrix) *twoface.SparseMatrix {
	outdeg := make([]float64, g.NumRows)
	for _, e := range g.Entries {
		outdeg[e.Row]++
	}
	t := twoface.NewSparse(g.NumCols, g.NumRows)
	for _, e := range g.Entries {
		t.Append(e.Col, e.Row, 1/math.Max(outdeg[e.Row], 1))
	}
	t.Dedup()
	return t
}

func argmaxColumn(m *twoface.DenseMatrix, col int) (int, float64) {
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < m.Rows; i++ {
		if v := m.At(i, col); v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}
