// Locality restoration with RCM reordering (extension): Two-Face's wins
// come from sparse-matrix locality under 1D partitioning, so a matrix whose
// natural ordering scatters its nonzeros forfeits them. This example takes a
// banded FEM analog, destroys its ordering with a random symmetric
// permutation, restores it with reverse Cuthill-McKee, and compares
// Two-Face's modeled time in all three orderings.
//
//	go run ./examples/reorder
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"twoface"
	"twoface/internal/sparse"
)

const (
	nodes = 8
	k     = 64
)

func main() {
	original := twoface.Generate("stokes", 0.1, 42)
	n := original.NumRows

	// Destroy the ordering.
	rng := rand.New(rand.NewPCG(7, 7))
	shufflePerm := make([]int32, n)
	for i := range shufflePerm {
		shufflePerm[i] = int32(i)
	}
	rng.Shuffle(int(n), func(i, j int) { shufflePerm[i], shufflePerm[j] = shufflePerm[j], shufflePerm[i] })
	shuffled, err := original.PermuteSymmetric(shufflePerm)
	if err != nil {
		log.Fatal(err)
	}

	// Restore locality with RCM.
	rcmPerm, err := sparse.RCM(shuffled)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := shuffled.PermuteSymmetric(rcmPerm)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := twoface.New(twoface.Options{Nodes: nodes, DenseColumns: k, TimingOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stokes analog: %d rows, %d nonzeros; p=%d, K=%d\n\n", n, original.NNZ(), nodes, k)
	fmt.Printf("%-10s %12s %14s %12s %12s\n", "ordering", "bandwidth", "modeled time", "sync str.", "async str.")
	for _, c := range []struct {
		name string
		m    *twoface.SparseMatrix
	}{{"original", original}, {"shuffled", shuffled}, {"rcm", restored}} {
		plan, err := sys.Preprocess(c.m)
		if err != nil {
			log.Fatal(err)
		}
		res, err := plan.Multiply(twoface.NewDense(int(n), k))
		if err != nil {
			log.Fatal(err)
		}
		st := plan.Stats()
		fmt.Printf("%-10s %12d %12.4g s %12d %12d\n",
			c.name, c.m.Bandwidth(), res.ModeledSeconds, st.SyncStripes, st.AsyncStripes)
	}
	fmt.Println("\nRCM recovers the thin-band structure, collapsing the communication the")
	fmt.Println("shuffle created — the same effect that makes queen/stokes the paper's best cases.")
}
