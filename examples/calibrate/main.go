// Calibration walkthrough (paper section 6.2): profile the Two-Face
// executor on a calibration workload under forced configurations, fit the
// six preprocessing-model coefficients by least squares, and show how a
// plan built with the fitted coefficients performs against one built with
// the machine truth.
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"

	"twoface"
	"twoface/internal/harness"
)

func main() {
	cfg := harness.Config{Scale: 0.05, P: 4}
	fmt.Println("profiling 9 forced configurations of the twitter analog (3 widths x 3 splits)...")
	fitted, truth, err := cfg.Calibrate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %12s %12s\n", "coef", "fitted", "machine")
	rows := []struct {
		name string
		f, t float64
	}{
		{"betaS", fitted.BetaS, truth.BetaS},
		{"alphaS", fitted.AlphaS, truth.AlphaS},
		{"betaA", fitted.BetaA, truth.BetaA},
		{"alphaA", fitted.AlphaA, truth.AlphaA},
		{"gammaA", fitted.GammaA, truth.GammaA},
		{"kappaA", fitted.KappaA, truth.KappaA},
	}
	for _, r := range rows {
		fmt.Printf("%-8s %12.3g %12.3g\n", r.name, r.f, r.t)
	}

	// Use the fitted coefficients to drive a real plan.
	a := twoface.Generate("stokes", 0.05, 42)
	b := twoface.RandomDense(int(a.NumCols), 32, 1)
	for _, c := range []struct {
		name string
		coef twoface.Coefficients
	}{{"fitted", fitted}, {"machine truth", truth}} {
		coef := c.coef
		sys, err := twoface.New(twoface.Options{Nodes: 4, DenseColumns: 32, Coefficients: &coef})
		if err != nil {
			log.Fatal(err)
		}
		plan, err := sys.Preprocess(a)
		if err != nil {
			log.Fatal(err)
		}
		res, err := plan.Multiply(b)
		if err != nil {
			log.Fatal(err)
		}
		st := plan.Stats()
		fmt.Printf("\nwith %s coefficients: %d sync / %d async stripes, modeled %.3g s\n",
			c.name, st.SyncStripes, st.AsyncStripes, res.ModeledSeconds)
	}
}
