// Quickstart: one distributed SpMM with Two-Face, checked against the
// sequential reference, plus a comparison against the paper's baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"twoface"
)

func main() {
	// A web-crawl analog (GAP-web at 5% registry scale) on 8 simulated
	// nodes with K=64 dense columns.
	const (
		nodes = 8
		k     = 64
	)
	a := twoface.Generate("web", 0.05, 42)
	b := twoface.RandomDense(int(a.NumCols), k, 1)
	fmt.Printf("A: %dx%d with %d nonzeros; B: %dx%d; %d nodes\n",
		a.NumRows, a.NumCols, a.NNZ(), b.Rows, b.Cols, nodes)

	sys, err := twoface.New(twoface.Options{Nodes: nodes, DenseColumns: k})
	if err != nil {
		log.Fatal(err)
	}

	// Preprocess once: the cost model classifies every sparse stripe as
	// synchronous (collective multicast) or asynchronous (one-sided gets).
	plan, err := sys.Preprocess(a)
	if err != nil {
		log.Fatal(err)
	}
	st := plan.Stats()
	fmt.Printf("classified: %d local-input nnz, %d sync nnz over %d stripes, %d async nnz over %d stripes\n",
		st.LocalInputNNZ, st.SyncNNZ, st.SyncStripes, st.AsyncNNZ, st.AsyncStripes)

	res, err := plan.Multiply(b)
	if err != nil {
		log.Fatal(err)
	}
	want, err := twoface.Reference(a, b)
	if err != nil {
		log.Fatal(err)
	}
	if !res.C.AlmostEqual(want, 1e-9) {
		log.Fatal("Two-Face result does not match the reference kernel")
	}
	fmt.Printf("Two-Face: correct; modeled time %.3g s on the simulated cluster (wall %v)\n",
		res.ModeledSeconds, res.Wall.Round(1000))

	// Compare against the paper's baselines on the same cluster.
	for _, alg := range []twoface.Baseline{twoface.DenseShift2, twoface.DenseShift4, twoface.Allgather, twoface.AsyncFine} {
		out, err := sys.RunBaseline(alg, a, b)
		if twoface.IsOutOfMemory(err) {
			fmt.Printf("%-11s OOM (replication exceeds node memory)\n", alg)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		if !out.C.AlmostEqual(want, 1e-9) {
			log.Fatalf("%s result does not match the reference", alg)
		}
		fmt.Printf("%-11s modeled %.3g s  (Two-Face speedup %.2fx)\n",
			alg, out.ModeledSeconds, out.ModeledSeconds/res.ModeledSeconds)
	}
}
