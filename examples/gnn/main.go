// Full-graph GCN training (paper section 5.4): a two-layer graph
// convolutional network for semi-supervised node classification where every
// layer's aggregation — forward and backward — is a distributed SpMM over
// the same normalized adjacency, so Two-Face's preprocessing runs once and
// amortizes over the whole training run.
//
//	go run ./examples/gnn
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"twoface"
	"twoface/gnn"
)

const (
	nodes   = 8
	hidden  = 16 // feature width (K of the distributed SpMM)
	classes = 4
	epochs  = 40
)

func main() {
	// A web-crawl analog; rows are graph vertices. Planted communities
	// give the classifier something learnable: each vertex's class is its
	// community, and features are noisy class indicators.
	g := twoface.Generate("web", 0.02, 42)
	n := int(g.NumRows)
	adj, err := gnn.NormalizeAdjacency(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d normalized edges; 2-layer GCN, %d epochs on %d nodes\n",
		n, adj.NNZ(), epochs, nodes)

	sys, err := twoface.New(twoface.Options{Nodes: nodes, DenseColumns: hidden})
	if err != nil {
		log.Fatal(err)
	}
	model, err := gnn.New(sys, adj, []int{hidden, hidden, classes}, 7)
	if err != nil {
		log.Fatal(err)
	}

	x, labels := plantedTask(n)
	for epoch := 1; epoch <= epochs; epoch++ {
		met, err := model.Step(x, labels, 2.0)
		if err != nil {
			log.Fatal(err)
		}
		if epoch == 1 || epoch%10 == 0 {
			fmt.Printf("epoch %2d: loss %.4f, labeled accuracy %.1f%%\n", epoch, met.Loss, 100*met.Accuracy)
		}
	}
	fmt.Printf("\ntotal modeled SpMM time across training: %.3g s\n", model.ModeledSeconds)
	fmt.Println("(one preprocessing pass served every forward and backward aggregation)")
}

// plantedTask assigns each vertex a class by index block and builds noisy
// class-indicator features; 40% of vertices are labeled for training.
func plantedTask(n int) (*twoface.DenseMatrix, []int) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := twoface.NewDense(n, hidden)
	labels := make([]int, n)
	block := (n + classes - 1) / classes
	for i := 0; i < n; i++ {
		class := i / block
		if class >= classes {
			class = classes - 1
		}
		row := x.Row(i)
		for j := range row {
			row[j] = 0.3 * (2*rng.Float64() - 1)
		}
		row[class] += 1 // signal
		if rng.Float64() < 0.4 {
			labels[i] = class
		} else {
			labels[i] = -1 // unlabeled
		}
	}
	return x, labels
}
