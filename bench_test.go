package twoface

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index), plus ablation
// benches for the design choices the paper calls out and microbenchmarks of
// the hot kernels.
//
// The figure/table benches run the experiment harness in timing-only mode
// and report the modeled metric of interest via b.ReportMetric; one
// iteration takes seconds, so `go test -bench .` runs each once. Set
// TWOFACE_BENCH_SCALE (default 0.1) to change the matrix scale and
// TWOFACE_BENCH_P (default 8) for the node count.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"twoface/internal/atomicfloat"
	"twoface/internal/baselines"
	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/gen"
	"twoface/internal/harness"
	"twoface/internal/kernels"
	"twoface/internal/sparse"
)

func newCluster(cfg harness.Config) (*cluster.Cluster, error) {
	return cluster.New(cfg.P, cfg.Net())
}

func benchConfig() harness.Config {
	scale := 0.1
	if s := os.Getenv("TWOFACE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	p := 8
	if s := os.Getenv("TWOFACE_BENCH_P"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			p = v
		}
	}
	return harness.Config{Scale: scale, P: p, Seed: 42, Workers: 2}
}

// Workloads are cached across benchmarks: generating friendster's millions
// of nonzeros dominates otherwise.
var (
	wlMu    sync.Mutex
	wlCache = map[string]*harness.Workload{}
)

func workload(b *testing.B, name string) *harness.Workload {
	b.Helper()
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache[name]; ok {
		return w
	}
	spec, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	w := benchConfig().BuildWorkload(spec)
	wlCache[name] = w
	return w
}

// BenchmarkTable1_Matrices regenerates the matrix inventory.
func BenchmarkTable1_Matrices(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.Table1()
		if len(t.RowHead) != 8 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkFigure2_AsyncVsCollectives regenerates the motivation study:
// Async Fine vs Allgather for K in {32, 128}.
func BenchmarkFigure2_AsyncVsCollectives(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.Figure2()
		b.ReportMetric(t.Value("web", "K=128"), "web-speedup")
		b.ReportMetric(t.Value("twitter", "K=128"), "twitter-speedup")
	}
}

func speedupFigure(b *testing.B, k int) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.SpeedupFigure(k)
		b.ReportMetric(t.Value("avg", "TwoFace"), "avg-speedup-vs-DS2")
		b.ReportMetric(t.Value("web", "TwoFace"), "web-speedup")
	}
}

// BenchmarkFigure7_K32 regenerates the K=32 speedup figure.
func BenchmarkFigure7_K32(b *testing.B) { speedupFigure(b, 32) }

// BenchmarkFigure8_K128 regenerates the K=128 speedup figure (the paper's
// headline 2.11x average over dense shifting).
func BenchmarkFigure8_K128(b *testing.B) { speedupFigure(b, 128) }

// BenchmarkFigure9_K512 regenerates the K=512 speedup figure.
func BenchmarkFigure9_K512(b *testing.B) { speedupFigure(b, 512) }

// BenchmarkTable3_Calibration fits the six model coefficients by regression
// on profiled runs (paper section 6.2).
func BenchmarkTable3_Calibration(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fitted, truth, err := cfg.Calibrate()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fitted.GammaA/truth.GammaA, "gammaA-fit-ratio")
		b.ReportMetric(fitted.BetaA/truth.BetaA, "betaA-fit-ratio")
	}
}

// BenchmarkTable5_AbsoluteTimes regenerates the absolute-time table for DS2
// and Two-Face at K in {32, 128, 512}.
func BenchmarkTable5_AbsoluteTimes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.Table5()
		b.ReportMetric(t.Value("K=128 Two-Face", "web")*1e6, "web-twoface-us")
		b.ReportMetric(t.Value("K=128 DS2", "web")*1e6, "web-ds2-us")
	}
}

// BenchmarkFigure10_Breakdown regenerates the DS4-vs-Two-Face time
// breakdown at K=128.
func BenchmarkFigure10_Breakdown(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.Figure10()
		b.ReportMetric(t.Value("web", "2F/DS4 time"), "web-2F-over-DS4")
		b.ReportMetric(t.Value("twitter", "2F SyncComm"), "twitter-2F-synccomm")
	}
}

// BenchmarkFigure11_Scaling regenerates the strong-scaling study
// (p = 1..16 by default; the paper goes to 64).
func BenchmarkFigure11_Scaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tables := cfg.Figure11([]int{1, 2, 4, 8, 16})
		for _, t := range tables {
			if t.Title == "" {
				b.Fatal("missing table")
			}
		}
		web := tables[6] // Table 1 order: web is 7th
		b.ReportMetric(web.Value("TwoFace", "p=1")/web.Value("TwoFace", "p=16"), "web-scaling-1to16")
	}
}

// BenchmarkTable6_Preprocessing regenerates the preprocessing-overhead
// table (modeled preprocessing cost per SpMM).
func BenchmarkTable6_Preprocessing(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.Table6()
		b.ReportMetric(t.Value("avg", "t_norm"), "avg-tnorm")
		b.ReportMetric(t.Value("avg", "t_norm_io"), "avg-tnorm-io")
	}
}

// BenchmarkFigure12_Sensitivity regenerates the coefficient-sensitivity
// grids.
func BenchmarkFigure12_Sensitivity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tables := cfg.Figure12()
		if len(tables) != 3 {
			b.Fatal("want 3 sensitivity grids")
		}
		b.ReportMetric(tables[1].Value("1.0x", "0.8x"), "betaS-0.8x-reltime")
	}
}

// --- Ablation benches: design choices DESIGN.md section 3 calls out. ---

func runTwoFaceModeled(b *testing.B, w *harness.Workload, k int, mutate func(*core.Params)) float64 {
	b.Helper()
	cfg := benchConfig()
	params := core.Params{
		P: cfg.P, K: k, W: w.W,
		Coef:           cfg.Coef(),
		MemBudgetElems: cfg.MemBudget(),
	}
	if mutate != nil {
		mutate(&params)
	}
	prep, err := core.Preprocess(w.A, params)
	if err != nil {
		b.Fatal(err)
	}
	clu, err := newCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Exec(prep, w.B(k), clu, core.ExecOptions{SkipCompute: true})
	if err != nil {
		b.Fatal(err)
	}
	return res.ModeledSeconds
}

// BenchmarkAblation_Coalescing sweeps the async row-coalescing gap
// (section 5.2.3; Table 2 default 127/K+1).
func BenchmarkAblation_Coalescing(b *testing.B) {
	for _, gap := range []int32{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("gap=%d", gap), func(b *testing.B) {
			w := workload(b, "kmer")
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, w, 32, func(p *core.Params) { p.MaxCoalesceGap = gap })
				b.ReportMetric(t*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_RowPanelHeight sweeps the sync row-panel height
// (Table 2 default 32).
func BenchmarkAblation_RowPanelHeight(b *testing.B) {
	for _, h := range []int32{8, 32, 128} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			w := workload(b, "web")
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, w, 128, func(p *core.Params) { p.RowPanelHeight = h })
				b.ReportMetric(t*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_StripeWidth sweeps W around the Table 1 value (the
// paper found widths must scale with the matrix).
func BenchmarkAblation_StripeWidth(b *testing.B) {
	w := workload(b, "twitter")
	for _, f := range []int32{4, 2, 1} {
		b.Run(fmt.Sprintf("W=%d", w.W/f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, w, 128, func(p *core.Params) { p.W = w.W / f })
				b.ReportMetric(t*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_ThreadSplit sweeps the modeled async-compute thread
// allocation (Table 2 dedicates 8 of 128 threads).
func BenchmarkAblation_ThreadSplit(b *testing.B) {
	for _, threads := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("asyncComp=%d", threads), func(b *testing.B) {
			w := workload(b, "mawi")
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, w, 128, func(p *core.Params) {
					p.ModelAsyncCompThreads = threads
					p.ModelSyncThreads = 128 - 2 - threads
				})
				b.ReportMetric(t*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_Classifier compares the paper's cost-model balancer
// against the column-popularity alternative it leaves as future work
// (section 4.2), on the matrix class where they differ most.
func BenchmarkAblation_Classifier(b *testing.B) {
	for _, c := range []struct {
		name string
		kind core.Classifier
	}{{"model", core.ClassifierModel}, {"column", core.ClassifierColumn}} {
		b.Run(c.name, func(b *testing.B) {
			w := workload(b, "web")
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, w, 128, func(p *core.Params) { p.Classifier = c.kind })
				b.ReportMetric(t*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_Sampling measures the modeled time of sampled SpMM
// (paper section 5.4 future work) at decreasing keep rates: transfers stay
// constant while compute shrinks.
func BenchmarkAblation_Sampling(b *testing.B) {
	for _, keep := range []float64{1.0, 0.5, 0.1} {
		b.Run(fmt.Sprintf("keep=%.1f", keep), func(b *testing.B) {
			w := workload(b, "mawi")
			cfg := benchConfig()
			params := core.Params{P: cfg.P, K: 128, W: w.W, Coef: cfg.Coef(), MemBudgetElems: cfg.MemBudget()}
			prep, err := core.Preprocess(w.A, params)
			if err != nil {
				b.Fatal(err)
			}
			clu, err := newCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := core.Exec(prep, w.B(128), clu, core.ExecOptions{SkipCompute: true, SampleKeep: keep, SampleSeed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ModeledSeconds*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_BalancedPartition compares equal row blocks (the
// paper's choice) against nnz-balanced blocks on the load-imbalanced mawi
// analog (extension; see internal/core/balance.go).
func BenchmarkAblation_BalancedPartition(b *testing.B) {
	for _, balanced := range []bool{false, true} {
		name := "equal"
		if balanced {
			name = "balanced"
		}
		b.Run(name, func(b *testing.B) {
			w := workload(b, "mawi")
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, w, 128, func(p *core.Params) { p.BalanceRows = balanced })
				b.ReportMetric(t*1e6, "modeled-us")
			}
		})
	}
}

// BenchmarkAblation_RCMReorder measures Two-Face on a scatter-destroyed
// banded matrix before and after RCM reordering restores its locality
// (extension; see internal/sparse/rcm.go).
func BenchmarkAblation_RCMReorder(b *testing.B) {
	cfg := benchConfig()
	spec, err := gen.ByName("stokes")
	if err != nil {
		b.Fatal(err)
	}
	a := spec.Build(cfg.Scale, cfg.Seed)
	// Destroy the ordering with a deterministic Fisher-Yates permutation.
	n := a.NumRows
	shuffle := make([]int32, n)
	for i := range shuffle {
		shuffle[i] = int32(i)
	}
	state := uint64(0x9e3779b97f4a7c15)
	for i := int32(n - 1); i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int32(state % uint64(i+1))
		shuffle[i], shuffle[j] = shuffle[j], shuffle[i]
	}
	shuffled, err := a.PermuteSymmetric(shuffle)
	if err != nil {
		b.Fatal(err)
	}
	perm, err := sparse.RCM(shuffled)
	if err != nil {
		b.Fatal(err)
	}
	restored, err := shuffled.PermuteSymmetric(perm)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		m    *sparse.COO
	}{{"shuffled", shuffled}, {"rcm", restored}} {
		b.Run(c.name, func(b *testing.B) {
			wl := cfg.BuildWorkload(spec)
			wl.A = c.m
			for i := 0; i < b.N; i++ {
				t := runTwoFaceModeled(b, wl, 128, nil)
				b.ReportMetric(t*1e6, "modeled-us")
				b.ReportMetric(float64(c.m.Bandwidth()), "bandwidth")
			}
		})
	}
}

// BenchmarkAblation_TargetContention charges targets a fraction of each
// one-sided transfer (the resource contention the paper cites for limiting
// async threads) and measures Async Fine's degradation on kmer, the most
// get-heavy workload.
func BenchmarkAblation_TargetContention(b *testing.B) {
	for _, f := range []float64{0, 0.5, 1.0} {
		b.Run(fmt.Sprintf("contention=%.1f", f), func(b *testing.B) {
			w := workload(b, "kmer")
			cfg := benchConfig()
			net := cfg.Net()
			net.TargetContention = f
			for i := 0; i < b.N; i++ {
				clu, err := cluster.New(cfg.P, net)
				if err != nil {
					b.Fatal(err)
				}
				res, err := baselines.AsyncFine(w.A, w.B(32), clu, w.W, baselines.Options{SkipCompute: true, MemBudgetElems: cfg.MemBudget()})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ModeledSeconds*1e6, "modeled-us")
			}
		})
	}
}

// --- Microbenchmarks with real arithmetic (wall time is the metric). ---

// BenchmarkKernelLocalSpMM measures the reference CSR kernel.
func BenchmarkKernelLocalSpMM(b *testing.B) {
	a := Generate("stokes", 0.05, 1)
	bm := RandomDense(int(a.NumCols), 32, 2)
	csr := a.ToCSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := csr.Mul(bm); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(csr.NNZ()) * 32 * 8)
}

// BenchmarkKernelTwoFaceExec measures a full Two-Face SpMM with real
// arithmetic on a small workload.
func BenchmarkKernelTwoFaceExec(b *testing.B) {
	a := Generate("web", 0.05, 1)
	k := 32
	bm := RandomDense(int(a.NumCols), k, 2)
	sys, err := New(Options{Nodes: 4, DenseColumns: k})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sys.Preprocess(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Multiply(bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelDenseShift measures the DS2 baseline with real arithmetic.
func BenchmarkKernelDenseShift(b *testing.B) {
	a := Generate("web", 0.05, 1)
	k := 32
	bm := RandomDense(int(a.NumCols), k, 2)
	sys, err := New(Options{Nodes: 4, DenseColumns: k})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunBaseline(DenseShift2, a, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel-layer microbenchmarks (hot-path overhaul). ---
//
// These isolate the inner loops of internal/kernels as wired into the
// executor: the raw AXPY kernel, the async-stripe accumulate path (legacy
// per-scalar atomics vs the stripe-local accumulator that replaced them),
// and the sync row-panel multiply with its pre-resolved column table.
// scripts/bench.sh records them into BENCH_kernels.json.

var benchKs = []int{32, 128, 512}

// BenchmarkKernelAxpy measures the dispatched AXPY kernel at the paper's
// dense widths (whatever variant CPU detection selected — see
// BenchmarkKernelAxpyVariants for the side-by-side).
func BenchmarkKernelAxpy(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			x := RandomDense(1, k, 1).Data
			y := RandomDense(1, k, 2).Data
			b.ReportAllocs()
			b.SetBytes(int64(16 * k))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.Axpy(1.0000001, x, y)
			}
		})
	}
}

// BenchmarkKernelAxpyVariants measures every kernel implementation this host
// can run — generic, plus the SIMD variants CPU detection found — side by
// side, without flipping global dispatch.
func BenchmarkKernelAxpyVariants(b *testing.B) {
	for _, k := range benchKs {
		for _, v := range kernels.Implementations() {
			b.Run(fmt.Sprintf("K=%d/%s", k, v.Variant), func(b *testing.B) {
				x := RandomDense(1, k, 1).Data
				y := RandomDense(1, k, 2).Data
				b.ReportAllocs()
				b.SetBytes(int64(16 * k))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v.Axpy(1.0000001, x, y)
				}
			})
		}
	}
}

// benchStripe builds a synthetic async stripe in the executor's column-major
// entry order: 64 distinct columns over a 256-row block, 8 rows per column
// (ascending within each column), with the unique-column and buffer-row
// tables the fetch path would produce.
func benchStripe() (entries []sparse.NZ, cols, bufRow []int32) {
	const w, rows, perCol = 64, 256, 8
	cols = make([]int32, w)
	bufRow = make([]int32, w)
	for c := 0; c < w; c++ {
		cols[c] = int32(c)
		bufRow[c] = int32(c)
		rs := make([]int, 0, perCol)
		for t := 0; t < perCol; t++ {
			rs = append(rs, (c*37+t*31)%rows)
		}
		sort.Ints(rs)
		for _, r := range rs {
			entries = append(entries, sparse.NZ{Row: int32(r), Col: int32(c), Val: 0.5 + 0.1*float64(c%7)})
		}
	}
	return entries, cols, bufRow
}

// BenchmarkKernelAsyncStripeAccumulate measures Algorithm 3's accumulate
// phase two ways: "atomic" is the pre-overhaul path (one CAS-looped atomic
// add per scalar per nonzero); "stripelocal" is the shipped path (dense
// stripe-local accumulation flushed once per touched C row through
// AddRange). The stripelocal variant must be ≥2x faster at K=128 and run
// allocation-free in steady state.
func BenchmarkKernelAsyncStripeAccumulate(b *testing.B) {
	entries, cols, bufRow := benchStripe()
	const rows = 256
	for _, k := range benchKs {
		drows := RandomDense(len(cols), k, 3).Data
		b.Run(fmt.Sprintf("K=%d/atomic", k), func(b *testing.B) {
			out := atomicfloat.NewSlice(rows * k)
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				ci := 0
				for _, e := range entries {
					for cols[ci] != e.Col {
						ci++
					}
					brow := drows[int(bufRow[ci])*k : (int(bufRow[ci])+1)*k]
					cOff := int(e.Row) * k
					for j := 0; j < k; j++ {
						if v := e.Val * brow[j]; v != 0 {
							out.Add(cOff+j, v)
						}
					}
				}
			}
		})
		b.Run(fmt.Sprintf("K=%d/stripelocal", k), func(b *testing.B) {
			out := atomicfloat.NewSlice(rows * k)
			var acc kernels.RowAccumulator
			// Warm the scratch to its high-water mark so steady state is
			// measured, as the pooled executor workspaces reach after their
			// first stripe.
			acc.Begin(rows, k)
			for _, e := range entries {
				acc.Accumulate(e.Row, e.Val, drows[:k])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				acc.Begin(rows, k)
				ci := 0
				for _, e := range entries {
					for cols[ci] != e.Col {
						ci++
					}
					off := int(bufRow[ci]) * k
					acc.Accumulate(e.Row, e.Val, drows[off:off+k])
				}
				for i, row := range acc.Touched() {
					out.AddRange(int(row)*k, acc.Vals(i))
				}
			}
		})
	}
}

// benchPanel builds the 32-row, 16-nnz-per-row synthetic panel used by the
// panel benchmarks, sorted row-major with ascending columns per row.
func benchPanel() []sparse.NZ {
	const rows, nCols, perRow = 32, 128, 16
	var entries []sparse.NZ
	for r := 0; r < rows; r++ {
		cs := make([]int, 0, perRow)
		for t := 0; t < perRow; t++ {
			cs = append(cs, (r*5+t*7)%nCols)
		}
		sort.Ints(cs)
		for _, c := range cs {
			entries = append(entries, sparse.NZ{Row: int32(r), Col: int32(c), Val: 1.5 - 0.2*float64(c%5)})
		}
	}
	return entries
}

// panelMultiplyTiled is the shipped sync-panel inner loop: nonzeros within a
// row are paired so the panel-local accumulation runs through the two-source
// register-tiled Axpy2, with an odd leftover flushed via plain Axpy.
func panelMultiplyTiled(entries []sparse.NZ, table [][]float64, out *atomicfloat.Slice, acc []float64, k int) {
	clear(acc)
	prevRow := entries[0].Row
	pendVal, pendRow := 0.0, []float64(nil)
	for _, e := range entries {
		if e.Row != prevRow {
			if pendRow != nil {
				kernels.Axpy(pendVal, pendRow, acc)
				pendRow = nil
			}
			out.AddRange(int(prevRow)*k, acc)
			clear(acc)
			prevRow = e.Row
		}
		if pendRow == nil {
			pendVal, pendRow = e.Val, table[e.Col]
			continue
		}
		kernels.Axpy2(pendVal, pendRow, e.Val, table[e.Col], acc)
		pendRow = nil
	}
	if pendRow != nil {
		kernels.Axpy(pendVal, pendRow, acc)
	}
	out.AddRange(int(prevRow)*k, acc)
}

// BenchmarkKernelPanelMultiply measures Algorithm 2's row-panel multiply as
// shipped: pre-resolved column table, pair-tiled Axpy2 accumulation into a
// panel-local row, one atomic AddRange per output row. Steady state must not
// allocate.
func BenchmarkKernelPanelMultiply(b *testing.B) {
	entries := benchPanel()
	const rows, nCols = 32, 128
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			bm := RandomDense(nCols, k, 4)
			table := make([][]float64, nCols)
			for c := 0; c < nCols; c++ {
				table[c] = bm.Row(c)
			}
			out := atomicfloat.NewSlice(rows * k)
			acc := make([]float64, k)
			b.ReportAllocs()
			b.SetBytes(int64(len(entries) * k * 16))
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				panelMultiplyTiled(entries, table, out, acc, k)
			}
		})
	}
}

// BenchmarkKernelPanelVariants decomposes the panel-multiply speedup into its
// two ingredients: "generic" is one scalar Axpy per nonzero through the
// pure-Go loops, "simd" is the same per-nonzero loop through the dispatched
// kernel, and "tiled" adds the pair-wise Axpy2 register tiling on top (the
// shipped formulation, identical to BenchmarkKernelPanelMultiply).
func BenchmarkKernelPanelVariants(b *testing.B) {
	entries := benchPanel()
	const rows, nCols = 32, 128
	impls := kernels.Implementations()
	generic := impls[0]
	for _, k := range benchKs {
		bm := RandomDense(nCols, k, 4)
		table := make([][]float64, nCols)
		for c := 0; c < nCols; c++ {
			table[c] = bm.Row(c)
		}
		perNZ := func(b *testing.B, axpy func(float64, []float64, []float64)) {
			out := atomicfloat.NewSlice(rows * k)
			acc := make([]float64, k)
			b.ReportAllocs()
			b.SetBytes(int64(len(entries) * k * 16))
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				clear(acc)
				prevRow := entries[0].Row
				for _, e := range entries {
					if e.Row != prevRow {
						out.AddRange(int(prevRow)*k, acc)
						clear(acc)
						prevRow = e.Row
					}
					axpy(e.Val, table[e.Col], acc)
				}
				out.AddRange(int(prevRow)*k, acc)
			}
		}
		b.Run(fmt.Sprintf("K=%d/generic", k), func(b *testing.B) {
			perNZ(b, generic.Axpy)
		})
		b.Run(fmt.Sprintf("K=%d/simd", k), func(b *testing.B) {
			perNZ(b, kernels.Axpy)
		})
		b.Run(fmt.Sprintf("K=%d/tiled", k), func(b *testing.B) {
			out := atomicfloat.NewSlice(rows * k)
			acc := make([]float64, k)
			b.ReportAllocs()
			b.SetBytes(int64(len(entries) * k * 16))
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				panelMultiplyTiled(entries, table, out, acc, k)
			}
		})
	}
}

// BenchmarkKernelPreprocess measures Two-Face preprocessing throughput.
func BenchmarkKernelPreprocess(b *testing.B) {
	a := Generate("twitter", 0.05, 1)
	sys, err := New(Options{Nodes: 8, DenseColumns: 128})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Preprocess(a); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(a.NNZ()) * 16)
}
