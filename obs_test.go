package twoface

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunObservability drives one small Two-Face run with the full
// observability stack attached — span tracer, metrics registry, transfer
// trace — and checks the acceptance-criteria invariants: the tracer's
// per-rank span totals equal the run's virtual-time breakdown, the report
// round-trips through disk, and its makespan equals the straggler's node
// time.
func TestRunObservability(t *testing.T) {
	tracer := NewTracer(0)
	DefaultMetrics().Reset()
	DefaultMetrics().SetEnabled(true)
	defer DefaultMetrics().SetEnabled(false)

	sys, err := New(Options{
		Nodes: 2, DenseColumns: 16, TimingOnly: true,
		TraceEvents: 1 << 12, SpanRecorder: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := Generate("web", 0.05, 7)
	plan, err := sys.Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	tracer.Reset() // keep only the Multiply spans: Preprocess charges too
	res, err := plan.Multiply(RandomDense(int(a.NumCols), 16, 8))
	if err != nil {
		t.Fatal(err)
	}

	// Span totals must equal the run's breakdowns exactly (the tracer
	// accumulates every charge, stored or dropped).
	totals := tracer.Totals()
	if len(totals) != len(res.Breakdowns) {
		t.Fatalf("tracer covers %d ranks, run has %d", len(totals), len(res.Breakdowns))
	}
	for i, bd := range res.Breakdowns {
		if totals[i] != bd {
			t.Fatalf("rank %d: tracer totals %+v != breakdown %+v", i, totals[i], bd)
		}
	}

	// The modeled makespan is the straggling rank's node time.
	var max float64
	for _, bd := range res.Breakdowns {
		if nt := bd.NodeTime(); nt > max {
			max = nt
		}
	}
	if max != res.ModeledSeconds {
		t.Fatalf("ModeledSeconds %g != max node time %g", res.ModeledSeconds, max)
	}

	// Transfer stats and trace events agree on the 8-byte element convention.
	var traced int64
	for _, ev := range res.TraceEvents {
		traced += ev.Bytes()
	}
	if traced == 0 || traced > res.TotalTransfer.TotalBytes() {
		t.Fatalf("traced bytes %d vs total moved %d", traced, res.TotalTransfer.TotalBytes())
	}

	// Executor metrics were collected.
	snap := DefaultMetrics().Snapshot()
	if snap.Counters["exec.sync.panels"] == 0 && snap.Counters["exec.async.stripes"] == 0 {
		t.Fatalf("executor counted no work: %+v", snap.Counters)
	}

	// Report: build, write, read back, revalidate.
	rep := NewRunReport("test")
	rep.Config["matrix"] = "web"
	rep.SetRun(res.Breakdowns, res.Transfer, res.ModeledSeconds, res.Wall)
	rep.Metrics = &snap
	rep.Trace = tracer.Info()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ModeledSeconds != res.ModeledSeconds || len(back.Ranks) != 2 {
		t.Fatalf("report round trip lost the run: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}

	// The Chrome trace export is loadable JSON with the expected envelope.
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	if err := tracer.WriteChromeTraceFile(tracePath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("trace file has no traceEvents array")
	}
}

// TestInstrumentationOffBitIdentical checks the other acceptance criterion:
// with no recorder and the registry disabled, modeled time is bit-identical
// to an instrumented run of the same problem.
func TestInstrumentationOffBitIdentical(t *testing.T) {
	run := func(instrument bool) []Breakdown {
		opts := Options{Nodes: 2, DenseColumns: 16, TimingOnly: true}
		if instrument {
			opts.SpanRecorder = NewTracer(0)
			opts.TraceEvents = 1 << 10
			DefaultMetrics().SetEnabled(true)
			defer DefaultMetrics().SetEnabled(false)
		}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		a := Generate("stokes", 0.05, 3)
		plan, err := sys.Preprocess(a)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Multiply(RandomDense(int(a.NumCols), 16, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Breakdowns
	}
	plain := run(false)
	traced := run(true)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("rank %d: instrumented ledger %+v != plain %+v", i, traced[i], plain[i])
		}
	}
}
