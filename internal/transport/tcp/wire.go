// Package tcp is the multi-process wall-clock backend of the
// cluster.Transport seam: each rank is an OS process, peers connect over
// length-prefixed TCP framing, and the rank ledger measures real elapsed
// time instead of accumulating modeled virtual seconds.
//
// Wire format. Every message is one frame:
//
//	uint32 payload length (big-endian) | uint8 type | payload
//
// A connection starts with a handshake: the dialer sends HELLO carrying the
// protocol magic and version, the cluster size, its own rank, and the
// workload digest (a caller-chosen fingerprint of matrix/plan/config); the
// accepter answers HELLO_OK or ERR and closes. The handshake is what turns
// "two processes happened to dial each other" into "two ranks of the same
// run": any mismatch — different binary version, different cluster size,
// different matrix — fails fast at connect time instead of corrupting C at
// row one.
//
// After the handshake the dialer owns the connection and issues requests
// (GET, COLLECT, BARRIER, ABORT); the accepter answers each with exactly one
// response frame (DATA, COLLECT_DATA, RELEASE, ABORT_ACK, or ERR).
// Float64 payloads travel as their IEEE-754 bit patterns, little-endian, so
// a byte moved over the wire is bit-identical to one copied through the
// simulator's shared memory.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"twoface/internal/cluster"
)

const (
	// Magic and ProtocolVersion gate the handshake. Bump the version on any
	// wire-format change.
	Magic           = 0x54463246 // "TF2F"
	ProtocolVersion = 1

	// maxFrame bounds a frame payload: a defense against a corrupted or
	// malicious length prefix, sized above any window this repository moves
	// (a dense B block of 10^7 rows x 128 cols is ~1 GiB; transfers here
	// are per-stripe, orders of magnitude smaller).
	maxFrame = 1 << 30
)

// Frame types.
const (
	msgHello       = 1
	msgHelloOK     = 2
	msgGet         = 3
	msgData        = 4
	msgCollect     = 5
	msgCollectData = 6
	msgBarrier     = 7
	msgRelease     = 8
	msgAbort       = 9
	msgAbortAck    = 10
	msgErr         = 127
)

// Error codes carried by msgErr frames, mapping the cluster's typed
// sentinels across the wire so errors.Is keeps working on the requester.
const (
	codeGeneric       = 1
	codeWindowMissing = 2
	codeRegionOOB     = 3
	codeDstTooSmall   = 4
	codeAborted       = 5
)

// errToCode maps an error to its wire code.
func errToCode(err error) uint8 {
	switch {
	case errors.Is(err, cluster.ErrWindowMissing):
		return codeWindowMissing
	case errors.Is(err, cluster.ErrRegionOOB):
		return codeRegionOOB
	case errors.Is(err, cluster.ErrDstTooSmall):
		return codeDstTooSmall
	case errors.Is(err, cluster.ErrAborted):
		return codeAborted
	default:
		return codeGeneric
	}
}

// codeToErr rebuilds a sentinel-wrapping error from a wire code and message.
func codeToErr(code uint8, msg string) error {
	switch code {
	case codeWindowMissing:
		return fmt.Errorf("%s: %w", msg, cluster.ErrWindowMissing)
	case codeRegionOOB:
		return fmt.Errorf("%s: %w", msg, cluster.ErrRegionOOB)
	case codeDstTooSmall:
		return fmt.Errorf("%s: %w", msg, cluster.ErrDstTooSmall)
	case codeAborted:
		return cluster.NewAbortError(errors.New(msg))
	default:
		return errors.New(msg)
	}
}

// writeFrame sends one frame: length prefix, type byte, payload.
func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("tcp: frame payload %d exceeds limit %d", len(payload), maxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("tcp: frame length %d exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// helloPayload encodes the handshake.
func helloPayload(p, rank int, digest uint64) []byte {
	b := make([]byte, 4+2+4+4+8)
	binary.BigEndian.PutUint32(b[0:], Magic)
	binary.BigEndian.PutUint16(b[4:], ProtocolVersion)
	binary.BigEndian.PutUint32(b[6:], uint32(p))
	binary.BigEndian.PutUint32(b[10:], uint32(rank))
	binary.BigEndian.PutUint64(b[14:], digest)
	return b
}

// parseHello decodes and validates a HELLO payload against local expectations.
func parseHello(b []byte, p int, digest uint64) (peerRank int, err error) {
	if len(b) != 22 {
		return 0, fmt.Errorf("tcp: malformed hello (%d bytes)", len(b))
	}
	if m := binary.BigEndian.Uint32(b[0:]); m != Magic {
		return 0, fmt.Errorf("tcp: bad magic %#x (not a twoface peer?)", m)
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != ProtocolVersion {
		return 0, fmt.Errorf("tcp: protocol version mismatch: peer %d, local %d", v, ProtocolVersion)
	}
	if pp := int(binary.BigEndian.Uint32(b[6:])); pp != p {
		return 0, fmt.Errorf("tcp: cluster size mismatch: peer says %d ranks, local %d", pp, p)
	}
	rank := int(binary.BigEndian.Uint32(b[10:]))
	if rank < 0 || rank >= p {
		return 0, fmt.Errorf("tcp: peer rank %d out of range [0,%d)", rank, p)
	}
	if d := binary.BigEndian.Uint64(b[14:]); d != digest {
		return 0, fmt.Errorf("tcp: workload digest mismatch: peer %#x, local %#x (different matrix/plan/config?)", d, digest)
	}
	return rank, nil
}

// getPayload encodes a GET request: window name + region list.
func getPayload(name string, regions []cluster.Region) []byte {
	b := make([]byte, 0, 2+len(name)+4+16*len(regions))
	b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(regions)))
	for _, reg := range regions {
		b = binary.BigEndian.AppendUint64(b, uint64(reg.Off))
		b = binary.BigEndian.AppendUint64(b, uint64(reg.Elems))
	}
	return b
}

// parseGet decodes a GET request payload.
func parseGet(b []byte) (name string, regions []cluster.Region, err error) {
	if len(b) < 2 {
		return "", nil, errors.New("tcp: short get payload")
	}
	nameLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < nameLen+4 {
		return "", nil, errors.New("tcp: short get payload")
	}
	name = string(b[:nameLen])
	b = b[nameLen:]
	nRegions := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) != 16*nRegions {
		return "", nil, fmt.Errorf("tcp: get payload region count mismatch (%d regions, %d bytes)", nRegions, len(b))
	}
	regions = make([]cluster.Region, nRegions)
	for i := range regions {
		regions[i].Off = int64(binary.BigEndian.Uint64(b[16*i:]))
		regions[i].Elems = int64(binary.BigEndian.Uint64(b[16*i+8:]))
	}
	return name, regions, nil
}

// encodeFloats appends the IEEE-754 bit patterns of vals, little-endian.
func encodeFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeFloats unpacks a little-endian float64 payload into dst.
func decodeFloats(b []byte, dst []float64) error {
	if len(b) != 8*len(dst) {
		return fmt.Errorf("tcp: float payload is %d bytes, want %d", len(b), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// errPayload encodes an ERR frame payload.
func errPayload(err error) []byte {
	msg := err.Error()
	b := make([]byte, 0, 1+len(msg))
	b = append(b, errToCode(err))
	b = append(b, msg...)
	return b
}

// parseErr decodes an ERR frame payload back into an error.
func parseErr(b []byte) error {
	if len(b) < 1 {
		return errors.New("tcp: malformed error frame")
	}
	return codeToErr(b[0], string(b[1:]))
}

// respondErr sends an ERR frame; used by the accepter side.
func respondErr(c net.Conn, err error) error {
	return writeFrame(c, msgErr, errPayload(err))
}
