package tcp

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"twoface/internal/cluster"
)

// newPair builds a p-rank TCP cluster inside one test process: p listeners
// on 127.0.0.1:0, one Transport per rank, all sharing digest.
func newRing(t *testing.T, p int, digests []uint64) []*Transport {
	t.Helper()
	listeners := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	trs := make([]*Transport, p)
	for i := range trs {
		tr, err := New(Config{
			Rank:           i,
			Addrs:          addrs,
			Listener:       listeners[i],
			Digest:         digests[i],
			DialTimeout:    5 * time.Second,
			RequestTimeout: 5 * time.Second,
			BarrierTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return trs
}

func TestHandshakeAndGet(t *testing.T) {
	trs := newRing(t, 2, []uint64{7, 7})
	trs[1].Expose(1, "B", []float64{1, 2, 3, 4, 5, 6, 7, 8})

	dst := make([]float64, 4)
	n, err := trs[0].Read(0, 1, "B", []cluster.Region{{Off: 2, Elems: 2}, {Off: 6, Elems: 2}}, dst)
	if err != nil || n != 4 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	want := []float64{3, 4, 7, 8}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], v)
		}
	}
}

func TestDigestMismatchFailsHandshake(t *testing.T) {
	trs := newRing(t, 2, []uint64{7, 8})
	dst := make([]float64, 1)
	_, err := trs[0].Read(0, 1, "B", []cluster.Region{{Off: 0, Elems: 1}}, dst)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("want digest mismatch handshake failure, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	trs := newRing(t, 1, []uint64{7})
	c, err := net.Dial("tcp", trs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A frame with the right shape but wrong magic must be refused.
	payload := helloPayload(1, 0, 7)
	payload[0] = 0xde
	if err := writeFrame(c, msgHello, payload); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgErr || !strings.Contains(parseErr(body).Error(), "bad magic") {
		t.Fatalf("want bad-magic ERR frame, got type %d %q", typ, body)
	}
}

func TestRemoteErrorsKeepSentinels(t *testing.T) {
	trs := newRing(t, 2, []uint64{7, 7})
	trs[1].Expose(1, "B", []float64{1, 2, 3, 4})

	dst := make([]float64, 8)
	if _, err := trs[0].Read(0, 1, "missing", []cluster.Region{{Off: 0, Elems: 1}}, dst); !errors.Is(err, cluster.ErrWindowMissing) {
		t.Fatalf("want ErrWindowMissing across the wire, got %v", err)
	}
	// OOB second region: the peer rejects before sending bytes, dst untouched.
	for i := range dst {
		dst[i] = -1
	}
	if _, err := trs[0].Read(0, 1, "B", []cluster.Region{{Off: 0, Elems: 2}, {Off: 3, Elems: 2}}, dst); !errors.Is(err, cluster.ErrRegionOOB) {
		t.Fatalf("want ErrRegionOOB across the wire, got %v", err)
	}
	for i, v := range dst {
		if v != -1 {
			t.Fatalf("dst[%d] = %v: failed remote get leaked bytes", i, v)
		}
	}
}

func TestDepositCollect(t *testing.T) {
	trs := newRing(t, 2, []uint64{7, 7})
	trs[0].Deposit(0, []float64{10, 20})

	got, err := trs[1].Collect(1, 0)
	if err != nil || len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("collect: %v err=%v", got, err)
	}
	// Collecting from a rank that deposited nothing yields nil, not an error.
	got, err = trs[0].Collect(0, 1)
	if err != nil || got != nil {
		t.Fatalf("empty collect: %v err=%v", got, err)
	}
}

func TestBarrierReleasesAllRanks(t *testing.T) {
	trs := newRing(t, 3, []uint64{7, 7, 7})
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			// Two consecutive barriers: exercises sequence bookkeeping.
			if err := tr.Barrier(i); err != nil {
				errs[i] = err
				return
			}
			errs[i] = tr.Barrier(i)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d barrier: %v", i, err)
		}
	}
}

func TestAbortReleasesBarrierAndPropagates(t *testing.T) {
	trs := newRing(t, 2, []uint64{7, 7})

	done := make(chan error, 1)
	go func() { done <- trs[1].Barrier(1) }()
	time.Sleep(50 * time.Millisecond) // let rank 1 block at the coordinator

	boom := errors.New("boom")
	if !trs[0].Abort(boom) {
		t.Fatal("first abort should win")
	}
	select {
	case err := <-done:
		if !errors.Is(err, cluster.ErrAborted) {
			t.Fatalf("blocked barrier should fail with ErrAborted, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not release the blocked barrier")
	}

	// The abort broadcast reaches rank 1's local state too.
	deadline := time.Now().Add(5 * time.Second)
	for trs[1].AbortErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("abort never propagated to rank 1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(trs[1].AbortErr(), cluster.ErrAborted) {
		t.Fatalf("rank 1 abort err = %v", trs[1].AbortErr())
	}
	// New barriers fail immediately everywhere.
	if err := trs[0].Barrier(0); !errors.Is(err, cluster.ErrAborted) {
		t.Fatalf("post-abort barrier on rank 0: %v", err)
	}
}
