package tcp

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"twoface/internal/cluster"
)

// Config describes one rank's endpoint of a multi-process TCP cluster.
type Config struct {
	// Rank is this process's rank, 0-based.
	Rank int
	// Addrs holds every rank's listen address, indexed by rank. Addrs[Rank]
	// is informational (the caller binds Listener); the rest are dialed.
	Addrs []string
	// Listener is this rank's bound listener. The caller binds it (so
	// "127.0.0.1:0" works: bind first, publish the concrete port, then
	// construct the transport). The transport owns and closes it.
	Listener net.Listener
	// Digest fingerprints the workload (matrix, plan, config). Handshakes
	// fail unless every peer presents the same digest, so two processes
	// cannot silently multiply different matrices into one C.
	Digest uint64
	// DialTimeout bounds how long connecting to a peer may take, retries
	// included; it covers peers that start a little later. Default 30s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response exchange (GET, COLLECT,
	// ABORT). Default 60s.
	RequestTimeout time.Duration
	// BarrierTimeout bounds one barrier entry: how long this rank may wait
	// for the stragglers. A rank that waits longer aborts the cluster
	// instead of hanging forever on a silently dead peer. Default 120s.
	BarrierTimeout time.Duration
	// Logger receives connection-level events; nil disables logging.
	Logger *slog.Logger
}

// Transport is the TCP implementation of cluster.Transport: one rank per
// process, length-prefixed frames, wall-clock ledger. See the package
// comment for the wire protocol and DESIGN.md section 14 for how it slots
// under the executor.
//
// Barrier protocol: rank 0 coordinates. Every rank numbers its barrier
// entries with a local sequence counter; because the executor is SPMD (all
// ranks run the same program), entry N on one rank matches entry N on every
// other. Non-zero ranks send BARRIER(seq) to rank 0 and block for the
// RELEASE; rank 0 enters locally. When all P entries for a sequence have
// arrived, the coordinator releases them. An abort anywhere is broadcast to
// every rank and fails the coordinator, which releases all current and
// future waiters with the abort error — the same fail-fast contract the
// in-process barrier provides.
type Transport struct {
	cfg    Config
	p      int
	locals []int

	mu      sync.RWMutex
	windows map[string][]float64
	staging []float64

	abortVal atomic.Pointer[abortBox]

	poolMu sync.Mutex
	idle   map[int][]net.Conn

	coord *coordinator // rank 0 only

	barSeq atomic.Uint64

	closed   atomic.Bool
	acceptWG sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{} // accepted connections, for Close
}

type abortBox struct{ err error }

// New constructs the transport and starts serving peers on cfg.Listener.
// The caller must have bound the listener already; peers may begin dialing
// immediately after New returns.
func New(cfg Config) (*Transport, error) {
	p := len(cfg.Addrs)
	if p < 1 {
		return nil, errors.New("tcp: need at least one rank address")
	}
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("tcp: rank %d out of range [0,%d)", cfg.Rank, p)
	}
	if cfg.Listener == nil {
		return nil, errors.New("tcp: listener required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.BarrierTimeout <= 0 {
		cfg.BarrierTimeout = 120 * time.Second
	}
	t := &Transport{
		cfg:     cfg,
		p:       p,
		locals:  []int{cfg.Rank},
		windows: map[string][]float64{},
		idle:    map[int][]net.Conn{},
		conns:   map[net.Conn]struct{}{},
	}
	if cfg.Rank == 0 {
		t.coord = newCoordinator(p)
	}
	t.acceptWG.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *Transport) logger() *slog.Logger { return t.cfg.Logger }

// --- cluster.Transport: identity ---

func (t *Transport) P() int            { return t.p }
func (t *Transport) LocalRanks() []int { return t.locals }
func (t *Transport) WallClock() bool   { return true }

// --- cluster.Transport: windows ---

func (t *Transport) Expose(rank int, name string, data []float64) {
	t.mu.Lock()
	t.windows[name] = data
	t.mu.Unlock()
}

func (t *Transport) Read(rank, target int, name string, regions []cluster.Region, dst []float64) (int64, error) {
	if target < 0 || target >= t.p {
		return 0, fmt.Errorf("cluster: rank %d: window target %d out of range [0,%d): %w", rank, target, t.p, cluster.ErrWindowMissing)
	}
	if target == t.cfg.Rank {
		return t.readLocal(rank, target, name, regions, dst)
	}
	// Validate what we can before going to the wire; the window length is
	// only known to the target, so OOB comes back as an ERR frame.
	var total int64
	for _, reg := range regions {
		if reg.Off < 0 || reg.Elems < 0 {
			return 0, fmt.Errorf("cluster: rank %d: region [%d,+%d) outside window %q of rank %d: %w",
				rank, reg.Off, reg.Elems, name, target, cluster.ErrRegionOOB)
		}
		total += reg.Elems
	}
	if int64(len(dst)) < total {
		return 0, fmt.Errorf("cluster: rank %d: destination too small for indexed get (%d < %d): %w",
			rank, len(dst), total, cluster.ErrDstTooSmall)
	}
	payload, err := t.roundTrip(target, msgGet, getPayload(name, regions), msgData, t.cfg.RequestTimeout)
	if err != nil {
		return 0, err
	}
	// The full response frame is buffered before any byte lands in dst, so
	// a mid-transfer connection loss surfaces as an error with dst
	// untouched — the transport-level half of the all-or-nothing contract.
	if err := decodeFloats(payload, dst[:total]); err != nil {
		return 0, err
	}
	return total, nil
}

func (t *Transport) readLocal(rank, target int, name string, regions []cluster.Region, dst []float64) (int64, error) {
	t.mu.RLock()
	w, ok := t.windows[name]
	t.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("cluster: rank %d: no window %q exposed by rank %d: %w", rank, name, target, cluster.ErrWindowMissing)
	}
	n, err := cluster.CheckRegions(rank, target, name, regions, len(w), len(dst))
	if err != nil {
		return 0, err
	}
	var off int64
	for _, reg := range regions {
		copy(dst[off:off+reg.Elems], w[reg.Off:reg.Off+reg.Elems])
		off += reg.Elems
	}
	return n, nil
}

// --- cluster.Transport: staging ---

func (t *Transport) Deposit(rank int, data []float64) {
	t.mu.Lock()
	t.staging = data
	t.mu.Unlock()
}

func (t *Transport) Collect(rank, from int) ([]float64, error) {
	if from < 0 || from >= t.p {
		return nil, fmt.Errorf("cluster: rank %d: collect from %d out of range [0,%d)", rank, from, t.p)
	}
	if from == t.cfg.Rank {
		t.mu.RLock()
		d := t.staging
		t.mu.RUnlock()
		return d, nil
	}
	payload, err := t.roundTrip(from, msgCollect, nil, msgCollectData, t.cfg.RequestTimeout)
	if err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, errors.New("tcp: malformed collect response")
	}
	if payload[0] == 0 {
		return nil, nil // peer had nothing deposited
	}
	out := make([]float64, len(payload[1:])/8)
	if err := decodeFloats(payload[1:], out); err != nil {
		return nil, err
	}
	return out, nil
}

// --- cluster.Transport: barrier ---

func (t *Transport) Barrier(rank int) error {
	if err := t.AbortErr(); err != nil {
		return err
	}
	seq := t.barSeq.Add(1) - 1
	if t.cfg.Rank == 0 {
		ch := make(chan error, 1)
		t.coord.enterLocal(seq, ch)
		select {
		case err := <-ch:
			return err
		case <-time.After(t.cfg.BarrierTimeout):
			err := fmt.Errorf("tcp: barrier %d timed out after %v waiting for peers", seq, t.cfg.BarrierTimeout)
			t.Abort(err)
			return t.AbortErr()
		}
	}
	var buf [8]byte
	putUint64(buf[:], seq)
	if _, err := t.roundTrip(0, msgBarrier, buf[:], msgRelease, t.cfg.BarrierTimeout); err != nil {
		return err
	}
	return nil
}

// Leave is unsupported: crash recovery needs surviving processes to adopt a
// dead rank's barrier slot, which this backend does not implement. The
// facade refuses to combine recovery with a wall-clock transport, so this
// is unreachable from the CLI.
func (t *Transport) Leave(rank int) {
	panic("tcp: Leave (crash-recovery membership) is not supported by the TCP transport")
}

// --- cluster.Transport: abort ---

func (t *Transport) Abort(cause error) bool {
	wrapped := cause
	if !errors.Is(cause, cluster.ErrAborted) {
		wrapped = cluster.NewAbortError(cause)
	}
	if !t.abortVal.CompareAndSwap(nil, &abortBox{err: wrapped}) {
		return false
	}
	if t.coord != nil {
		t.coord.fail(wrapped)
	}
	// Best-effort broadcast so remote ranks fail fast instead of timing
	// out; a peer we cannot reach is already failing on its own.
	for peer := 0; peer < t.p; peer++ {
		if peer == t.cfg.Rank {
			continue
		}
		go func(peer int) {
			if _, err := t.roundTrip(peer, msgAbort, []byte(cause.Error()), msgAbortAck, t.cfg.RequestTimeout); err != nil {
				if l := t.logger(); l != nil {
					l.Debug("abort broadcast failed", "peer", peer, "err", err.Error())
				}
			}
		}(peer)
	}
	return true
}

func (t *Transport) AbortErr() error {
	if b := t.abortVal.Load(); b != nil {
		return b.err
	}
	return nil
}

// abortRemote records an abort received from a peer without re-broadcasting
// (the originating rank already notifies everyone).
func (t *Transport) abortRemote(msg string) {
	wrapped := cluster.NewAbortError(errors.New(msg))
	if t.abortVal.CompareAndSwap(nil, &abortBox{err: wrapped}) {
		if t.coord != nil {
			t.coord.fail(wrapped)
		}
		if l := t.logger(); l != nil {
			l.Warn("cluster aborted by peer", "cause", msg)
		}
	}
}

// --- cluster.Transport: lifecycle ---

func (t *Transport) Reset() {
	t.mu.Lock()
	t.windows = map[string][]float64{}
	t.staging = nil
	t.mu.Unlock()
}

// Finish is a no-op: the TCP transport is single-shot per process (one
// multiply, then the gather, then Close), and its abort state is sticky —
// a late-arriving remote abort must still fail the post-run C gather.
func (t *Transport) Finish() {}

func (t *Transport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := t.cfg.Listener.Close()
	t.poolMu.Lock()
	for _, conns := range t.idle {
		for _, c := range conns {
			c.Close()
		}
	}
	t.idle = map[int][]net.Conn{}
	t.poolMu.Unlock()
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	t.acceptWG.Wait()
	return err
}

// Addr returns the listener's concrete address (useful after binding :0).
func (t *Transport) Addr() string { return t.cfg.Listener.Addr().String() }

// --- client side: connection pool and request/response ---

// getConn returns a pooled or freshly dialed+handshaked connection to peer.
func (t *Transport) getConn(peer int) (net.Conn, error) {
	t.poolMu.Lock()
	if conns := t.idle[peer]; len(conns) > 0 {
		c := conns[len(conns)-1]
		t.idle[peer] = conns[:len(conns)-1]
		t.poolMu.Unlock()
		return c, nil
	}
	t.poolMu.Unlock()
	return t.dial(peer)
}

func (t *Transport) putConn(peer int, c net.Conn) {
	if t.closed.Load() {
		c.Close()
		return
	}
	t.poolMu.Lock()
	t.idle[peer] = append(t.idle[peer], c)
	t.poolMu.Unlock()
}

// dial connects to a peer with retry (peers may still be starting up) and
// performs the handshake.
func (t *Transport) dial(peer int) (net.Conn, error) {
	addr := t.cfg.Addrs[peer]
	deadline := time.Now().Add(t.cfg.DialTimeout)
	var lastErr error
	for {
		if t.closed.Load() {
			return nil, errors.New("tcp: transport closed")
		}
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			if err := t.handshake(c); err != nil {
				c.Close()
				return nil, fmt.Errorf("tcp: handshake with rank %d (%s): %w", peer, addr, err)
			}
			return c, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcp: dial rank %d (%s): %w", peer, addr, lastErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (t *Transport) handshake(c net.Conn) error {
	c.SetDeadline(time.Now().Add(t.cfg.RequestTimeout))
	defer c.SetDeadline(time.Time{})
	if err := writeFrame(c, msgHello, helloPayload(t.p, t.cfg.Rank, t.cfg.Digest)); err != nil {
		return err
	}
	typ, payload, err := readFrame(c)
	if err != nil {
		return err
	}
	switch typ {
	case msgHelloOK:
		return nil
	case msgErr:
		return parseErr(payload)
	default:
		return fmt.Errorf("tcp: unexpected handshake response type %d", typ)
	}
}

// roundTrip sends one request frame to peer and reads the single response,
// expecting wantTyp (an ERR response is decoded into an error). The
// connection returns to the pool only after a fully successful exchange.
func (t *Transport) roundTrip(peer int, typ uint8, payload []byte, wantTyp uint8, timeout time.Duration) ([]byte, error) {
	c, err := t.getConn(peer)
	if err != nil {
		return nil, err
	}
	c.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(c, typ, payload); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcp: request to rank %d: %w", peer, err)
	}
	respTyp, resp, err := readFrame(c)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tcp: response from rank %d: %w", peer, err)
	}
	c.SetDeadline(time.Time{})
	t.putConn(peer, c)
	switch respTyp {
	case wantTyp:
		return resp, nil
	case msgErr:
		rerr := parseErr(resp)
		// A peer answering "aborted" means the cluster is going down:
		// record it locally so our own loops stop promptly too.
		if errors.Is(rerr, cluster.ErrAborted) && t.AbortErr() == nil {
			t.abortRemote(rerr.Error())
		}
		return nil, rerr
	default:
		return nil, fmt.Errorf("tcp: unexpected response type %d from rank %d", respTyp, peer)
	}
}

// --- server side ---

func (t *Transport) acceptLoop() {
	defer t.acceptWG.Done()
	for {
		c, err := t.cfg.Listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.connMu.Lock()
		t.conns[c] = struct{}{}
		t.connMu.Unlock()
		go t.serveConn(c)
	}
}

func (t *Transport) serveConn(c net.Conn) {
	defer func() {
		t.connMu.Lock()
		delete(t.conns, c)
		t.connMu.Unlock()
		c.Close()
	}()
	// First frame must be a valid handshake.
	typ, payload, err := readFrame(c)
	if err != nil {
		return
	}
	if typ != msgHello {
		respondErr(c, fmt.Errorf("tcp: expected hello, got frame type %d", typ))
		return
	}
	peer, err := parseHello(payload, t.p, t.cfg.Digest)
	if err != nil {
		respondErr(c, err)
		if l := t.logger(); l != nil {
			l.Warn("rejected peer handshake", "err", err.Error())
		}
		return
	}
	if err := writeFrame(c, msgHelloOK, nil); err != nil {
		return
	}
	for {
		typ, payload, err := readFrame(c)
		if err != nil {
			return // connection closed by peer (normal at shutdown)
		}
		if err := t.serveRequest(c, peer, typ, payload); err != nil {
			return
		}
	}
}

// serveRequest answers one request frame; a non-nil return closes the conn.
func (t *Transport) serveRequest(c net.Conn, peer int, typ uint8, payload []byte) error {
	switch typ {
	case msgGet:
		name, regions, err := parseGet(payload)
		if err != nil {
			return respondErr(c, err)
		}
		if aerr := t.AbortErr(); aerr != nil {
			return respondErr(c, aerr)
		}
		t.mu.RLock()
		w, ok := t.windows[name]
		t.mu.RUnlock()
		if !ok {
			return respondErr(c, fmt.Errorf("cluster: rank %d: no window %q exposed by rank %d: %w",
				peer, name, t.cfg.Rank, cluster.ErrWindowMissing))
		}
		total, err := cluster.CheckRegions(peer, t.cfg.Rank, name, regions, len(w), int(total64(regions)))
		if err != nil {
			return respondErr(c, err)
		}
		out := make([]byte, 0, 8*total)
		for _, reg := range regions {
			out = encodeFloats(out, w[reg.Off:reg.Off+reg.Elems])
		}
		return writeFrame(c, msgData, out)

	case msgCollect:
		t.mu.RLock()
		d := t.staging
		t.mu.RUnlock()
		if d == nil {
			return writeFrame(c, msgCollectData, []byte{0})
		}
		out := make([]byte, 0, 1+8*len(d))
		out = append(out, 1)
		out = encodeFloats(out, d)
		return writeFrame(c, msgCollectData, out)

	case msgBarrier:
		if t.coord == nil {
			return respondErr(c, fmt.Errorf("tcp: rank %d is not the barrier coordinator", t.cfg.Rank))
		}
		if len(payload) != 8 {
			return respondErr(c, errors.New("tcp: malformed barrier payload"))
		}
		// Register the waiter and keep reading: the release frame is written
		// by whichever goroutine completes the barrier (the peer holds this
		// connection out of its pool until the response lands, so no other
		// frame competes for the writer side).
		t.coord.enterRemote(getUint64(payload), c)
		return nil

	case msgAbort:
		t.abortRemote(string(payload))
		return writeFrame(c, msgAbortAck, nil)

	default:
		return respondErr(c, fmt.Errorf("tcp: unknown request type %d", typ))
	}
}

func total64(regions []cluster.Region) int64 {
	var n int64
	for _, reg := range regions {
		n += reg.Elems
	}
	return n
}

// --- barrier coordinator (rank 0) ---

// coordinator tracks barrier entries by sequence number and releases each
// cohort when all p ranks have arrived. fail releases everyone, current and
// future, with the abort error.
//
// Releases are executed synchronously by the goroutine that completes a
// cohort, remote responses before the local channel send. The ordering is
// load-bearing at shutdown: rank 0's final Barrier must not return (and let
// the process exit) until the RELEASE frames to every remote waiter have
// been handed to the kernel, or late ranks see a bare EOF instead of their
// release.
type coordinator struct {
	p       int
	mu      sync.Mutex
	arrived map[uint64]int
	remote  map[uint64][]net.Conn
	local   map[uint64][]chan error
	failed  error
}

func newCoordinator(p int) *coordinator {
	return &coordinator{
		p:       p,
		arrived: map[uint64]int{},
		remote:  map[uint64][]net.Conn{},
		local:   map[uint64][]chan error{},
	}
}

// enterLocal registers rank 0's own arrival; ch receives the release.
func (co *coordinator) enterLocal(seq uint64, ch chan error) {
	co.mu.Lock()
	if co.failed != nil {
		err := co.failed
		co.mu.Unlock()
		ch <- err
		return
	}
	co.arrived[seq]++
	co.local[seq] = append(co.local[seq], ch)
	co.maybeReleaseLocked(seq)
}

// enterRemote registers a remote rank's arrival; its release (or failure) is
// written to c as a frame by the releasing goroutine.
func (co *coordinator) enterRemote(seq uint64, c net.Conn) {
	co.mu.Lock()
	if co.failed != nil {
		err := co.failed
		co.mu.Unlock()
		respondErr(c, err)
		return
	}
	co.arrived[seq]++
	co.remote[seq] = append(co.remote[seq], c)
	co.maybeReleaseLocked(seq)
}

// maybeReleaseLocked releases cohort seq if complete. Called with co.mu
// held; unlocks it in all paths.
func (co *coordinator) maybeReleaseLocked(seq uint64) {
	if co.arrived[seq] < co.p {
		co.mu.Unlock()
		return
	}
	remote, local := co.remote[seq], co.local[seq]
	delete(co.arrived, seq)
	delete(co.remote, seq)
	delete(co.local, seq)
	co.mu.Unlock()
	for _, c := range remote {
		writeFrame(c, msgRelease, nil) // failed write: that peer is dying anyway
	}
	for _, ch := range local {
		ch <- nil
	}
}

func (co *coordinator) fail(err error) {
	co.mu.Lock()
	if co.failed != nil {
		co.mu.Unlock()
		return
	}
	co.failed = err
	var conns []net.Conn
	var chans []chan error
	for seq, ws := range co.remote {
		conns = append(conns, ws...)
		delete(co.remote, seq)
	}
	for seq, ws := range co.local {
		chans = append(chans, ws...)
		delete(co.local, seq)
	}
	for seq := range co.arrived {
		delete(co.arrived, seq)
	}
	co.mu.Unlock()
	for _, c := range conns {
		respondErr(c, err)
	}
	for _, ch := range chans {
		ch <- err
	}
}

// --- tiny endian helpers (avoid importing encoding/binary here) ---

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
