// Package conformance is the executable contract of cluster.Transport: one
// suite of semantic tests that every backend — the in-process virtual-time
// simulator and the multi-process TCP transport alike — must pass. The
// executor's correctness arguments (all-or-nothing gets feeding the
// retry/degrade path, barrier/abort interplay, bit-identical floats across
// backends) lean on exactly these properties, so a new backend passes this
// suite before it is allowed under the executor.
package conformance

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twoface/internal/cluster"
)

// Backend describes one transport implementation under test. New returns
// per-rank transport views for a p-rank cluster: the simulator returns the
// same Transport p times (all ranks share the process), a multi-process
// backend returns p distinct Transports (here: all in one test process,
// each serving one rank over real sockets).
type Backend struct {
	Name string
	New  func(t *testing.T, p int) []cluster.Transport
}

// Run drives the conformance suite against one backend.
func Run(t *testing.T, b Backend) {
	t.Run("GetSemantics", func(t *testing.T) { testGetSemantics(t, b) })
	t.Run("GetAllOrNothing", func(t *testing.T) { testGetAllOrNothing(t, b) })
	t.Run("DepositCollect", func(t *testing.T) { testDepositCollect(t, b) })
	t.Run("BarrierOrdering", func(t *testing.T) { testBarrierOrdering(t, b) })
	t.Run("AbortPropagation", func(t *testing.T) { testAbortPropagation(t, b) })
	t.Run("ConcurrentReads", func(t *testing.T) { testConcurrentReads(t, b) })
}

// view returns the transport that serves rank r.
func view(trs []cluster.Transport, r int) cluster.Transport {
	if len(trs) == 1 {
		return trs[0]
	}
	return trs[r]
}

func testGetSemantics(t *testing.T, b Backend) {
	trs := b.New(t, 2)
	w := make([]float64, 16)
	for i := range w {
		w[i] = float64(i) * 1.5
	}
	view(trs, 1).Expose(1, "B", w)

	// Multi-region gets pack contiguously, preserving request order.
	dst := make([]float64, 6)
	n, err := view(trs, 0).Read(0, 1, "B", []cluster.Region{{Off: 10, Elems: 2}, {Off: 0, Elems: 3}, {Off: 15, Elems: 1}}, dst)
	if err != nil || n != 6 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	want := []float64{15, 16.5, 0, 1.5, 3, 22.5}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("dst[%d] = %v, want %v (bit-exact floats are part of the contract)", i, dst[i], v)
		}
	}

	// Self-reads work: rank 1 reading its own window.
	self := make([]float64, 2)
	if n, err := view(trs, 1).Read(1, 1, "B", []cluster.Region{{Off: 4, Elems: 2}}, self); err != nil || n != 2 || self[0] != 6 {
		t.Fatalf("self read: n=%d err=%v dst=%v", n, err, self)
	}

	// Zero regions is a valid empty get.
	if n, err := view(trs, 0).Read(0, 1, "B", nil, nil); err != nil || n != 0 {
		t.Fatalf("empty read: n=%d err=%v", n, err)
	}

	// Re-exposing a name replaces the window.
	view(trs, 1).Expose(1, "B", []float64{-1, -2})
	if _, err := view(trs, 0).Read(0, 1, "B", []cluster.Region{{Off: 0, Elems: 2}}, dst); err != nil || dst[0] != -1 {
		t.Fatalf("re-exposed read: err=%v dst=%v", err, dst[:2])
	}
}

func testGetAllOrNothing(t *testing.T, b Backend) {
	trs := b.New(t, 2)
	view(trs, 1).Expose(1, "B", []float64{1, 2, 3, 4})

	const canary = -777.25
	fresh := func(n int) []float64 {
		d := make([]float64, n)
		for i := range d {
			d[i] = canary
		}
		return d
	}
	untouched := func(d []float64, label string) {
		t.Helper()
		for i, v := range d {
			if v != canary {
				t.Fatalf("%s: dst[%d] = %v — failed get leaked bytes", label, i, v)
			}
		}
	}

	// Second region OOB: first region's bytes must not appear.
	dst := fresh(4)
	if _, err := view(trs, 0).Read(0, 1, "B", []cluster.Region{{Off: 0, Elems: 2}, {Off: 3, Elems: 2}}, dst); !errors.Is(err, cluster.ErrRegionOOB) {
		t.Fatalf("want ErrRegionOOB, got %v", err)
	}
	untouched(dst, "oob")

	// Missing window.
	if _, err := view(trs, 0).Read(0, 1, "nope", []cluster.Region{{Off: 0, Elems: 1}}, dst); !errors.Is(err, cluster.ErrWindowMissing) {
		t.Fatalf("want ErrWindowMissing, got %v", err)
	}
	untouched(dst, "missing window")

	// Target out of range.
	if _, err := view(trs, 0).Read(0, 9, "B", []cluster.Region{{Off: 0, Elems: 1}}, dst); !errors.Is(err, cluster.ErrWindowMissing) {
		t.Fatalf("want ErrWindowMissing for bad target, got %v", err)
	}
	untouched(dst, "bad target")

	// Destination too small.
	small := fresh(1)
	if _, err := view(trs, 0).Read(0, 1, "B", []cluster.Region{{Off: 0, Elems: 2}}, small); !errors.Is(err, cluster.ErrDstTooSmall) {
		t.Fatalf("want ErrDstTooSmall, got %v", err)
	}
	untouched(small, "small dst")

	// Negative offsets and lengths are OOB, not panics.
	if _, err := view(trs, 0).Read(0, 1, "B", []cluster.Region{{Off: -1, Elems: 2}}, dst); !errors.Is(err, cluster.ErrRegionOOB) {
		t.Fatalf("want ErrRegionOOB for negative offset, got %v", err)
	}
	untouched(dst, "negative offset")
}

func testDepositCollect(t *testing.T, b Backend) {
	trs := b.New(t, 3)
	view(trs, 0).Deposit(0, []float64{1, 2})
	view(trs, 2).Deposit(2, []float64{9})

	got, err := view(trs, 1).Collect(1, 0)
	if err != nil || len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("collect from 0: %v err=%v", got, err)
	}
	got, err = view(trs, 0).Collect(0, 2)
	if err != nil || len(got) != 1 || got[0] != 9 {
		t.Fatalf("collect from 2: %v err=%v", got, err)
	}
	// Nothing deposited → nil payload, no error.
	if got, err := view(trs, 0).Collect(0, 1); err != nil || got != nil {
		t.Fatalf("empty collect: %v err=%v", got, err)
	}
	// Out-of-range source is an error.
	if _, err := view(trs, 0).Collect(0, 5); err == nil {
		t.Fatal("collect from out-of-range rank should fail")
	}
}

func testBarrierOrdering(t *testing.T, b Backend) {
	const p, rounds = 3, 5
	trs := b.New(t, p)
	// A barrier separates phases: all increments of round i are visible to
	// every rank before any rank starts round i+1.
	var counter atomic.Int64
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				counter.Add(1)
				if err := view(trs, r).Barrier(r); err != nil {
					errs[r] = err
					return
				}
				if got := counter.Load(); got < int64((round+1)*p) {
					errs[r] = fmt.Errorf("rank %d after round %d: counter %d < %d", r, round, got, (round+1)*p)
					return
				}
				if err := view(trs, r).Barrier(r); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func testAbortPropagation(t *testing.T, b Backend) {
	trs := b.New(t, 2)

	// Rank 1 blocks in a barrier; rank 0 aborts; the barrier must fail with
	// ErrAborted rather than hang.
	done := make(chan error, 1)
	go func() { done <- view(trs, 1).Barrier(1) }()
	time.Sleep(20 * time.Millisecond)

	cause := errors.New("conformance boom")
	if !view(trs, 0).Abort(cause) {
		t.Fatal("first abort should report true")
	}
	if view(trs, 0).Abort(errors.New("second")) {
		t.Fatal("second abort should lose")
	}
	select {
	case err := <-done:
		if !errors.Is(err, cluster.ErrAborted) {
			t.Fatalf("blocked barrier: want ErrAborted, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not release the blocked barrier")
	}

	// Every rank eventually observes the abort, and it unwraps to ErrAborted.
	for r := 0; r < 2; r++ {
		deadline := time.Now().Add(10 * time.Second)
		for view(trs, r).AbortErr() == nil {
			if time.Now().After(deadline) {
				t.Fatalf("rank %d never observed the abort", r)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := view(trs, r).AbortErr(); !errors.Is(err, cluster.ErrAborted) {
			t.Fatalf("rank %d: AbortErr = %v", r, err)
		}
	}

	// New barrier entries fail immediately.
	if err := view(trs, 0).Barrier(0); !errors.Is(err, cluster.ErrAborted) {
		t.Fatalf("post-abort barrier: %v", err)
	}
}

func testConcurrentReads(t *testing.T, b Backend) {
	const p = 2
	trs := b.New(t, p)
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i)
	}
	view(trs, 1).Expose(1, "B", w)

	// Many goroutines read overlapping regions while the owner re-exposes
	// other windows: exercised under -race, this is the data-race half of
	// the contract (windows are read-shared, the registry is locked).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float64, 64)
			for i := 0; i < 50; i++ {
				off := int64((g*37 + i*13) % 960)
				n, err := view(trs, 0).Read(0, 1, "B", []cluster.Region{{Off: off, Elems: 64}}, dst)
				if err != nil || n != 64 {
					t.Errorf("goroutine %d read %d: n=%d err=%v", g, i, n, err)
					return
				}
				if dst[0] != float64(off) {
					t.Errorf("goroutine %d read %d: dst[0]=%v want %v", g, i, dst[0], float64(off))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			view(trs, 1).Expose(1, "scratch", []float64{float64(i)})
		}
	}()
	wg.Wait()
}
