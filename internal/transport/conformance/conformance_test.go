package conformance

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"twoface"
	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/transport/tcp"
)

func memBackend() Backend {
	return Backend{
		Name: "mem",
		New: func(t *testing.T, p int) []cluster.Transport {
			tr, err := cluster.NewMemTransport(p)
			if err != nil {
				t.Fatal(err)
			}
			// One shared transport serves every rank in-process.
			return []cluster.Transport{tr}
		},
	}
}

// newTCPRing builds p TCP transports in one test process, each serving one
// rank on a 127.0.0.1 ephemeral port — the multi-process topology without
// the processes, so the suite (and -race) can see all sides at once.
func newTCPRing(t *testing.T, p int) []cluster.Transport {
	t.Helper()
	listeners := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	trs := make([]cluster.Transport, p)
	for i := range trs {
		tr, err := tcp.New(tcp.Config{
			Rank:           i,
			Addrs:          addrs,
			Listener:       listeners[i],
			Digest:         0xC0FFEE,
			DialTimeout:    5 * time.Second,
			RequestTimeout: 10 * time.Second,
			BarrierTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return trs
}

func tcpBackend() Backend {
	return Backend{Name: "tcp", New: newTCPRing}
}

func TestMemBackendConformance(t *testing.T) { Run(t, memBackend()) }
func TestTCPBackendConformance(t *testing.T) { Run(t, tcpBackend()) }

// TestCrossBackendBitIdenticalC is the ISSUE's headline acceptance check:
// the same seed and matrix, executed on the in-process simulator and on the
// TCP transport (one cluster per rank, sockets between them), must produce
// a bit-identical C. Single-worker execution pins the accumulation order
// (concurrent workers reassociate float additions by scheduling), so any
// byte of drift here means the transport moved wrong data.
func TestCrossBackendBitIdenticalC(t *testing.T) {
	const (
		p = 3
		k = 8
	)
	a := twoface.Generate("web", 0.02, 7)
	b := twoface.RandomDense(int(a.NumCols), k, 8)
	net := cluster.Default()
	params := core.Params{P: p, K: k, W: 8, Coef: twoface.DeriveCoefficients(net)}
	opts := core.ExecOptions{AsyncWorkers: 1, SyncWorkers: 1}

	// Reference: the simulator, all ranks in-process.
	memPrep, err := core.Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	memClu, err := cluster.New(p, net)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := core.Exec(memPrep, b, memClu, opts)
	if err != nil {
		t.Fatal(err)
	}

	// TCP: one transport, one cluster, one Exec per rank, concurrently —
	// each rank preprocesses independently (as real processes would) and
	// fills only its own C row block.
	trs := newTCPRing(t, p)
	results := make([]*core.Result, p)
	preps := make([]*core.Prep, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			prep, err := core.Preprocess(a, params)
			if err != nil {
				errs[r] = err
				return
			}
			preps[r] = prep
			clu, err := cluster.NewWithTransport(trs[r], net)
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = core.Exec(prep, b, clu, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !results[r].Measured {
			t.Fatalf("rank %d: TCP-backed result should be flagged Measured", r)
		}
	}

	// Each rank's row block must match the simulator's C bit for bit.
	for r := 0; r < p; r++ {
		lo, hi := int(preps[r].Nodes[r].RowLo), int(preps[r].Nodes[r].RowHi)
		for i := lo * k; i < hi*k; i++ {
			got, want := results[r].C.Data[i], memRes.C.Data[i]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("rank %d, element %d: TCP %v (%#x) vs sim %v (%#x) — backends diverged",
					r, i, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}
