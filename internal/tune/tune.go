// Package tune implements the installation-time parameter search of the
// paper's section 5.3: "the runtime algorithm is parameterized by the number
// of threads assigned to sync/async stripe processing, the aggressiveness of
// row coalescing, the height of the row panels, and the width of the
// stripes ... these parameters could be determined at installation time."
//
// Tune runs a full-factorial sweep of those knobs on a workload in
// timing-only mode (transfers and modeled time, no arithmetic) and returns
// the best configuration under the virtual-time model.
package tune

import (
	"fmt"
	"sort"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

// Space is the grid of candidate parameter values. Empty fields take
// defaults derived from the workload (widths) or the paper's Table 2.
type Space struct {
	Widths           []int32
	CoalesceGaps     []int32
	PanelHeights     []int32
	AsyncCompThreads []int
}

// Choice is one evaluated configuration.
type Choice struct {
	W                     int32
	MaxCoalesceGap        int32
	RowPanelHeight        int32
	ModelAsyncCompThreads int
	// Modeled is the configuration's cluster makespan in modeled seconds.
	Modeled float64
}

func (c Choice) String() string {
	return fmt.Sprintf("W=%d gap=%d panel=%d asyncComp=%d -> %.4g s",
		c.W, c.MaxCoalesceGap, c.RowPanelHeight, c.ModelAsyncCompThreads, c.Modeled)
}

// defaultSpace derives a grid around the Table 1/Table 2 defaults.
func defaultSpace(cols int32, k int, s Space) Space {
	if len(s.Widths) == 0 {
		base := cols / 512
		if base < 8 {
			base = 8
		}
		s.Widths = []int32{maxI32(base/2, 4), base, base * 2}
	}
	if len(s.CoalesceGaps) == 0 {
		def := int32(127/k) + 1
		s.CoalesceGaps = dedupI32([]int32{1, def, 4 * def})
	}
	if len(s.PanelHeights) == 0 {
		s.PanelHeights = []int32{8, 32, 128}
	}
	if len(s.AsyncCompThreads) == 0 {
		s.AsyncCompThreads = []int{4, 8, 16}
	}
	return s
}

// Tune evaluates every configuration in the (defaulted) space on the given
// workload and returns the best choice plus all evaluations sorted by
// modeled time. The dense input's values do not matter in timing-only mode,
// so only its shape is built.
func Tune(a *sparse.COO, k, p int, net cluster.NetModel, space Space) (Choice, []Choice, error) {
	if k < 1 || p < 1 {
		return Choice{}, nil, fmt.Errorf("tune: invalid K=%d or p=%d", k, p)
	}
	space = defaultSpace(a.NumCols, k, space)
	b := dense.New(int(a.NumCols), k)
	coef := core.CoefficientsFromNet(net, 8)

	var all []Choice
	for _, w := range space.Widths {
		for _, gap := range space.CoalesceGaps {
			for _, panel := range space.PanelHeights {
				for _, act := range space.AsyncCompThreads {
					params := core.Params{
						P: p, K: k, W: w,
						Coef:                  coef,
						MaxCoalesceGap:        gap,
						RowPanelHeight:        panel,
						ModelAsyncCompThreads: act,
						ModelSyncThreads:      maxI(1, 128-2-act),
					}
					prep, err := core.Preprocess(a, params)
					if err != nil {
						return Choice{}, nil, fmt.Errorf("tune: preprocessing W=%d: %w", w, err)
					}
					clu, err := cluster.New(p, net)
					if err != nil {
						return Choice{}, nil, err
					}
					res, err := core.Exec(prep, b, clu, core.ExecOptions{SkipCompute: true})
					if err != nil {
						return Choice{}, nil, fmt.Errorf("tune: executing W=%d: %w", w, err)
					}
					all = append(all, Choice{
						W: w, MaxCoalesceGap: gap, RowPanelHeight: panel,
						ModelAsyncCompThreads: act, Modeled: res.ModeledSeconds,
					})
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Modeled < all[j].Modeled })
	return all[0], all, nil
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func dedupI32(vs []int32) []int32 {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
