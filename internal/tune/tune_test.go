package tune

import (
	"math/rand/v2"
	"testing"

	"twoface/internal/cluster"
	"twoface/internal/gen"
	"twoface/internal/sparse"
)

func testMatrix(seed uint64) *sparse.COO {
	spec, _ := gen.ByName("web")
	return spec.Build(0.02, seed)
}

func TestTuneReturnsSortedChoices(t *testing.T) {
	a := testMatrix(1)
	best, all, err := Tune(a, 16, 4, cluster.Default().Scaled(1024), Space{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3*3*3*3 {
		t.Fatalf("expected 81 evaluations, got %d", len(all))
	}
	if best != all[0] {
		t.Fatal("best is not the first sorted choice")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Modeled < all[i-1].Modeled {
			t.Fatal("choices not sorted by modeled time")
		}
	}
	if best.Modeled <= 0 {
		t.Fatal("best has no modeled time")
	}
}

func TestTuneCustomSpace(t *testing.T) {
	a := testMatrix(2)
	space := Space{Widths: []int32{8, 16}, CoalesceGaps: []int32{1}, PanelHeights: []int32{32}, AsyncCompThreads: []int{8}}
	best, all, err := Tune(a, 8, 2, cluster.Default().Scaled(1024), space)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("expected 2 evaluations, got %d", len(all))
	}
	if best.W != 8 && best.W != 16 {
		t.Fatalf("best width %d outside space", best.W)
	}
	if best.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTuneValidation(t *testing.T) {
	a := testMatrix(3)
	if _, _, err := Tune(a, 0, 2, cluster.Default(), Space{}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, _, err := Tune(a, 4, 0, cluster.Default(), Space{}); err == nil {
		t.Fatal("p=0 should fail")
	}
}

func TestTunePicksReasonableWidth(t *testing.T) {
	// On a matrix with strong locality, the tuned config must not be worse
	// than the default-parameter run.
	a := testMatrix(4)
	net := cluster.Default().Scaled(1024)
	best, all, err := Tune(a, 16, 4, net, Space{})
	if err != nil {
		t.Fatal(err)
	}
	// The default configuration is in the grid (middle width, Table 2
	// values); best must be at least as good as any of them.
	for _, c := range all {
		if best.Modeled > c.Modeled {
			t.Fatal("best is not minimal")
		}
	}
}

func TestDedupI32(t *testing.T) {
	got := dedupI32([]int32{4, 1, 4, 2, 1})
	want := []int32{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedup = %v, want %v", got, want)
		}
	}
}

func TestTuneDeterministic(t *testing.T) {
	a := testMatrix(5)
	rng := rand.New(rand.NewPCG(1, 1))
	_ = rng
	net := cluster.Default().Scaled(1024)
	b1, _, err := Tune(a, 8, 2, net, Space{Widths: []int32{8}, CoalesceGaps: []int32{1, 2}, PanelHeights: []int32{32}, AsyncCompThreads: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Tune(a, 8, 2, net, Space{Widths: []int32{8}, CoalesceGaps: []int32{1, 2}, PanelHeights: []int32{32}, AsyncCompThreads: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("tuning not deterministic: %v vs %v", b1, b2)
	}
}
