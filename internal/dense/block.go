package dense

import "fmt"

// Block describes one contiguous row range of a 1D-partitioned matrix.
// Every distributed algorithm in this repository partitions A, B and C by
// consecutive rows across p nodes (paper section 2.2): node i owns rows
// [Lo, Hi) where Lo = i*n/p and Hi = (i+1)*n/p (integer arithmetic), so block
// sizes differ by at most one row when p does not divide n.
type Block struct {
	Lo, Hi int // row range [Lo, Hi)
}

// Len returns the number of rows in the block.
func (b Block) Len() int { return b.Hi - b.Lo }

// Contains reports whether global row r falls inside the block.
func (b Block) Contains(r int) bool { return r >= b.Lo && r < b.Hi }

// BlockOf returns the row range owned by node i out of p for an n-row matrix.
func BlockOf(n, p, i int) Block {
	if p <= 0 || i < 0 || i >= p {
		panic(fmt.Sprintf("dense: invalid block request node %d of %d", i, p))
	}
	return Block{Lo: int(int64(i) * int64(n) / int64(p)), Hi: int(int64(i+1) * int64(n) / int64(p))}
}

// OwnerOf returns the node that owns global row r of an n-row matrix split
// across p nodes. It inverts BlockOf: BlockOf(n, p, OwnerOf(n, p, r)).Contains(r)
// always holds for 0 <= r < n.
func OwnerOf(n, p, r int) int {
	if r < 0 || r >= n {
		panic(fmt.Sprintf("dense: row %d out of range [0,%d)", r, n))
	}
	// Initial guess from the inverse of Lo = i*n/p, then correct for integer
	// truncation. The guess is within one of the true owner.
	i := int((int64(r)*int64(p) + int64(p) - 1) / int64(n))
	if i >= p {
		i = p - 1
	}
	for i > 0 && int64(i)*int64(n)/int64(p) > int64(r) {
		i--
	}
	for i < p-1 && int64(i+1)*int64(n)/int64(p) <= int64(r) {
		i++
	}
	return i
}

// Partition returns all p blocks of an n-row matrix.
func Partition(n, p int) []Block {
	blocks := make([]Block, p)
	for i := 0; i < p; i++ {
		blocks[i] = BlockOf(n, p, i)
	}
	return blocks
}

// SliceRows returns a view of m restricted to the block's rows. The returned
// matrix aliases m's storage.
func (m *Matrix) SliceRows(b Block) *Matrix {
	return &Matrix{Rows: b.Len(), Cols: m.Cols, Data: m.RowRange(b.Lo, b.Hi)}
}
