package dense

import (
	"fmt"

	"twoface/internal/kernels"
)

// Local dense-dense products. These are the small per-node projections of
// GNN layers (feature-dim x feature-dim), not the distributed kernels; a
// blocked loop over the shared AXPY/dot kernels is plenty.

// MatMul returns a x b (a is m x k, b is k x n).
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("dense: MatMul shapes %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for kk, v := range arow {
			if v == 0 {
				continue
			}
			kernels.Axpy(v, b.Row(kk), crow)
		}
	}
	return c, nil
}

// MatMulT1 returns a^T x b (a is k x m, b is k x n; result m x n). This is
// the weight-gradient shape of a linear layer: dW = X^T dZ.
func MatMulT1(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("dense: MatMulT1 shapes (%dx%d)^T x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Cols, b.Cols)
	for kk := 0; kk < a.Rows; kk++ {
		arow := a.Row(kk)
		brow := b.Row(kk)
		for i, v := range arow {
			if v == 0 {
				continue
			}
			kernels.Axpy(v, brow, c.Row(i))
		}
	}
	return c, nil
}

// MatMulT2 returns a x b^T (a is m x k, b is n x k; result m x n). This is
// the input-gradient shape of a linear layer: dX = dZ W^T.
func MatMulT2(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("dense: MatMulT2 shapes %dx%d x (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			crow[j] = kernels.Dot(arow, b.Row(j))
		}
	}
	return c, nil
}
