package dense

import (
	"fmt"

	"twoface/internal/kernels"
)

// Local dense-dense products. These are the small per-node projections of
// GNN layers (feature-dim x feature-dim), not the distributed kernels; a
// blocked loop over the shared AXPY/dot kernels is plenty.

// MatMul returns a x b (a is m x k, b is k x n).
//
// Output rows are processed four at a time through the register-tiled
// AxpyQuad kernel, loading each B row once per group instead of once per
// row. Each output row still receives its multiply-adds in ascending kk
// order with the same zero skip, so results match the row-at-a-time loop
// bit for bit.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("dense: MatMul shapes %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, b.Cols)
	i := 0
	for ; i+3 < a.Rows; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		c0, c1, c2, c3 := c.Row(i), c.Row(i+1), c.Row(i+2), c.Row(i+3)
		for kk := 0; kk < a.Cols; kk++ {
			v0, v1, v2, v3 := a0[kk], a1[kk], a2[kk], a3[kk]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			brow := b.Row(kk)
			if v0 != 0 && v1 != 0 && v2 != 0 && v3 != 0 {
				kernels.AxpyQuad(brow, v0, c0, v1, c1, v2, c2, v3, c3)
				continue
			}
			if v0 != 0 {
				kernels.Axpy(v0, brow, c0)
			}
			if v1 != 0 {
				kernels.Axpy(v1, brow, c1)
			}
			if v2 != 0 {
				kernels.Axpy(v2, brow, c2)
			}
			if v3 != 0 {
				kernels.Axpy(v3, brow, c3)
			}
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for kk, v := range arow {
			if v == 0 {
				continue
			}
			kernels.Axpy(v, b.Row(kk), crow)
		}
	}
	return c, nil
}

// MatMulT1 returns a^T x b (a is k x m, b is k x n; result m x n). This is
// the weight-gradient shape of a linear layer: dW = X^T dZ.
//
// Output rows group four at a time per kk through the register-tiled
// AxpyQuad kernel, which spreads one load of b's row to four destinations.
// Each output row keeps its ascending-kk update order and zero skip, so
// results match the scalar-grouped loop bit for bit.
func MatMulT1(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("dense: MatMulT1 shapes (%dx%d)^T x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Cols, b.Cols)
	for kk := 0; kk < a.Rows; kk++ {
		arow := a.Row(kk)
		brow := b.Row(kk)
		i := 0
		for ; i+3 < len(arow); i += 4 {
			v0, v1, v2, v3 := arow[i], arow[i+1], arow[i+2], arow[i+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			if v0 != 0 && v1 != 0 && v2 != 0 && v3 != 0 {
				kernels.AxpyQuad(brow, v0, c.Row(i), v1, c.Row(i+1), v2, c.Row(i+2), v3, c.Row(i+3))
				continue
			}
			if v0 != 0 {
				kernels.Axpy(v0, brow, c.Row(i))
			}
			if v1 != 0 {
				kernels.Axpy(v1, brow, c.Row(i+1))
			}
			if v2 != 0 {
				kernels.Axpy(v2, brow, c.Row(i+2))
			}
			if v3 != 0 {
				kernels.Axpy(v3, brow, c.Row(i+3))
			}
		}
		for ; i < len(arow); i++ {
			if v := arow[i]; v != 0 {
				kernels.Axpy(v, brow, c.Row(i))
			}
		}
	}
	return c, nil
}

// MatMulT2 returns a x b^T (a is m x k, b is n x k; result m x n). This is
// the input-gradient shape of a linear layer: dX = dZ W^T.
func MatMulT2(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("dense: MatMulT2 shapes %dx%d x (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			crow[j] = kernels.Dot(arow, b.Row(j))
		}
	}
	return c, nil
}
