// Package dense provides row-major dense matrices used as the B (input) and
// C (output) operands of distributed SpMM, together with the 1D block
// partitioning helpers shared by every algorithm in this repository.
//
// A dense matrix with R rows and K columns is stored as a single contiguous
// []float64 of length R*K. Row r occupies Data[r*K : (r+1)*K]. All SpMM
// algorithms move whole rows, so the row-major layout keeps transfers and
// accumulations contiguous.
package dense

import (
	"fmt"
	"math"
	"math/rand/v2"

	"twoface/internal/kernels"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	Rows int
	Cols int
	Data []float64 // len == Rows*Cols, row-major
}

// New returns a zero-initialized Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps an existing slice as a matrix. The slice is not copied.
// It returns an error if len(data) != rows*cols.
func FromData(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("dense: data length %d does not match %dx%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// FromFunc builds a matrix whose element (r,c) is f(r,c).
func FromFunc(rows, cols int, f func(r, c int) float64) *Matrix {
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		for c := 0; c < cols; c++ {
			row[c] = f(r, c)
		}
	}
	return m
}

// Random returns a matrix with entries drawn uniformly from [-1, 1),
// deterministically from seed.
func Random(rows, cols int, seed uint64) *Matrix {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the slice aliasing row r. Mutating it mutates the matrix.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols : (r+1)*m.Cols] }

// RowRange returns the slice aliasing rows [lo, hi).
func (m *Matrix) RowRange(lo, hi int) []float64 { return m.Data[lo*m.Cols : hi*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	kernels.Scale(s, m.Data)
}

// AddScaledRow computes dst += s * src where dst aliases row r of m.
// len(src) must equal m.Cols.
func (m *Matrix) AddScaledRow(r int, s float64, src []float64) {
	kernels.Axpy(s, src, m.Row(r))
}

// Add computes m += other element-wise. The shapes must match.
func (m *Matrix) Add(other *Matrix) error {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return fmt.Errorf("dense: shape mismatch %dx%d += %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	kernels.Add(m.Data, other.Data)
	return nil
}

// AddScaled computes m += s * other element-wise (one fused pass, used for
// gradient updates W += -lr * dW). The shapes must match.
func (m *Matrix) AddScaled(s float64, other *Matrix) error {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return fmt.Errorf("dense: shape mismatch %dx%d += s*%dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	kernels.Axpy(s, other.Data, m.Data)
	return nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and other, or an error on shape mismatch.
func (m *Matrix) MaxAbsDiff(other *Matrix) (float64, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return 0, fmt.Errorf("dense: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	var max float64
	for i, v := range m.Data {
		d := math.Abs(v - other.Data[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}

// AlmostEqual reports whether every element of m is within tol of the
// corresponding element of other, using a mixed absolute/relative tolerance:
// |a-b| <= tol * max(1, |a|, |b|).
func (m *Matrix) AlmostEqual(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, a := range m.Data {
		b := other.Data[i]
		scale := 1.0
		if aa := math.Abs(a); aa > scale {
			scale = aa
		}
		if bb := math.Abs(b); bb > scale {
			scale = bb
		}
		if math.Abs(a-b) > tol*scale {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("dense.Matrix{%dx%d, fro=%.4g}", m.Rows, m.Cols, m.FrobeniusNorm())
	}
	s := fmt.Sprintf("dense.Matrix{%dx%d:", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		s += fmt.Sprintf(" %v", m.Row(r))
	}
	return s + "}"
}
