package dense

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m, err := FromData(2, 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	if _, err := FromData(2, 2, d); err == nil {
		t.Fatal("FromData with wrong length should error")
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(4, 3)
	m.Set(2, 1, 7.5)
	if m.At(2, 1) != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", m.At(2, 1))
	}
	row := m.Row(2)
	if len(row) != 3 || row[1] != 7.5 {
		t.Fatalf("Row(2) = %v", row)
	}
	row[0] = 3 // aliasing
	if m.At(2, 0) != 3 {
		t.Fatal("Row should alias matrix storage")
	}
}

func TestRowRangeAliases(t *testing.T) {
	m := FromFunc(5, 2, func(r, c int) float64 { return float64(r*10 + c) })
	rr := m.RowRange(1, 3)
	want := []float64{10, 11, 20, 21}
	for i, v := range want {
		if rr[i] != v {
			t.Fatalf("RowRange[%d] = %v, want %v", i, rr[i], v)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := Random(4, 4, 1)
	c := m.Clone()
	c.Set(0, 0, 999)
	if m.At(0, 0) == 999 {
		t.Fatal("Clone should not share storage")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(8, 8, 42)
	b := Random(8, 8, 42)
	if d, _ := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("same seed should give same matrix, diff %v", d)
	}
	c := Random(8, 8, 43)
	if d, _ := a.MaxAbsDiff(c); d == 0 {
		t.Fatal("different seeds should give different matrices")
	}
}

func TestRandomRange(t *testing.T) {
	m := Random(16, 16, 7)
	for _, v := range m.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("Random value %v outside [-1,1)", v)
		}
	}
}

func TestZeroFillScale(t *testing.T) {
	m := Random(3, 3, 1)
	m.Fill(2)
	m.Scale(3)
	for _, v := range m.Data {
		if v != 6 {
			t.Fatalf("Fill+Scale = %v, want 6", v)
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestAddScaledRow(t *testing.T) {
	m := New(2, 3)
	m.AddScaledRow(1, 2, []float64{1, 2, 3})
	m.AddScaledRow(1, -1, []float64{1, 1, 1})
	want := []float64{1, 3, 5}
	for i, v := range want {
		if m.At(1, i) != v {
			t.Fatalf("row = %v, want %v", m.Row(1), want)
		}
	}
}

func TestAddAndDiff(t *testing.T) {
	a := Random(4, 5, 1)
	b := Random(4, 5, 2)
	sum := a.Clone()
	if err := sum.Add(b); err != nil {
		t.Fatal(err)
	}
	for i := range sum.Data {
		if math.Abs(sum.Data[i]-(a.Data[i]+b.Data[i])) > 1e-15 {
			t.Fatal("Add mismatch")
		}
	}
	if err := sum.Add(New(3, 3)); err == nil {
		t.Fatal("Add with shape mismatch should error")
	}
	if _, err := a.MaxAbsDiff(New(1, 1)); err == nil {
		t.Fatal("MaxAbsDiff with shape mismatch should error")
	}
}

func TestAlmostEqual(t *testing.T) {
	a := Random(4, 4, 9)
	b := a.Clone()
	if !a.AlmostEqual(b, 0) {
		t.Fatal("identical matrices should be AlmostEqual at tol 0")
	}
	b.Set(2, 2, b.At(2, 2)+1e-9)
	if a.AlmostEqual(b, 1e-12) {
		t.Fatal("should fail at tight tolerance")
	}
	if !a.AlmostEqual(b, 1e-6) {
		t.Fatal("should pass at loose tolerance")
	}
	if a.AlmostEqual(New(4, 5), 1) {
		t.Fatal("shape mismatch should not be AlmostEqual")
	}
}

func TestAlmostEqualRelative(t *testing.T) {
	a := New(1, 1)
	b := New(1, 1)
	a.Set(0, 0, 1e12)
	b.Set(0, 0, 1e12*(1+1e-9))
	if !a.AlmostEqual(b, 1e-6) {
		t.Fatal("relative tolerance should absorb large magnitudes")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromData(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestBlockOfCoversAllRows(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {7, 7}, {100, 8}, {5, 8}, {1, 1}, {64, 5}} {
		prev := 0
		total := 0
		for i := 0; i < tc.p; i++ {
			b := BlockOf(tc.n, tc.p, i)
			if b.Lo != prev {
				t.Fatalf("n=%d p=%d: block %d starts at %d, want %d", tc.n, tc.p, i, b.Lo, prev)
			}
			if b.Hi < b.Lo {
				t.Fatalf("n=%d p=%d: block %d inverted", tc.n, tc.p, i)
			}
			total += b.Len()
			prev = b.Hi
		}
		if prev != tc.n || total != tc.n {
			t.Fatalf("n=%d p=%d: blocks cover %d rows", tc.n, tc.p, total)
		}
	}
}

func TestBlockSizesBalanced(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {100, 7}, {13, 4}} {
		min, max := tc.n, 0
		for i := 0; i < tc.p; i++ {
			l := BlockOf(tc.n, tc.p, i).Len()
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d p=%d: block sizes range [%d,%d]", tc.n, tc.p, min, max)
		}
	}
}

func TestOwnerOfInvertsBlockOf(t *testing.T) {
	f := func(nRaw, pRaw uint16, rRaw uint32) bool {
		n := int(nRaw)%5000 + 1
		p := int(pRaw)%65 + 1
		r := int(rRaw) % n
		owner := OwnerOf(n, p, r)
		return BlockOf(n, p, owner).Contains(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOfExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for p := 1; p <= 12; p++ {
			for r := 0; r < n; r++ {
				owner := OwnerOf(n, p, r)
				if !BlockOf(n, p, owner).Contains(r) {
					t.Fatalf("OwnerOf(%d,%d,%d) = %d, block %+v", n, p, r, owner, BlockOf(n, p, owner))
				}
			}
		}
	}
}

func TestPartition(t *testing.T) {
	blocks := Partition(10, 4)
	if len(blocks) != 4 {
		t.Fatalf("Partition returned %d blocks", len(blocks))
	}
	if blocks[3].Hi != 10 {
		t.Fatalf("last block ends at %d", blocks[3].Hi)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromFunc(6, 2, func(r, c int) float64 { return float64(r) })
	sub := m.SliceRows(Block{Lo: 2, Hi: 5})
	if sub.Rows != 3 || sub.At(0, 0) != 2 || sub.At(2, 1) != 4 {
		t.Fatalf("SliceRows wrong: %v", sub)
	}
	sub.Set(0, 0, 99) // aliasing
	if m.At(2, 0) != 99 {
		t.Fatal("SliceRows should alias parent storage")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := New(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	large := New(100, 100)
	if s := large.String(); len(s) == 0 || len(s) > 200 {
		t.Fatalf("large matrix String should be a summary, got %q", s)
	}
}
