package dense

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func transpose(m *Matrix) *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

func TestMatMulTiny(t *testing.T) {
	a, _ := FromData(2, 2, []float64{1, 2, 3, 4})
	b, _ := FromData(2, 2, []float64{5, 6, 7, 8})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapes(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("MatMul shape mismatch should fail")
	}
	if _, err := MatMulT1(New(2, 3), New(3, 2)); err == nil {
		t.Fatal("MatMulT1 shape mismatch should fail")
	}
	if _, err := MatMulT2(New(2, 3), New(2, 4)); err == nil {
		t.Fatal("MatMulT2 shape mismatch should fail")
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		a := Random(7, 5, seed)
		b := Random(5, 6, seed+1)
		got, err := MatMul(a, b)
		if err != nil {
			return false
		}
		return got.AlmostEqual(naiveMul(a, b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulT1MatchesTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		a := Random(6, 4, seed)
		b := Random(6, 5, seed+1)
		got, err := MatMulT1(a, b)
		if err != nil {
			return false
		}
		want, err := MatMul(transpose(a), b)
		if err != nil {
			return false
		}
		return got.AlmostEqual(want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulT2MatchesTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		a := Random(6, 4, seed)
		b := Random(5, 4, seed+1)
		got, err := MatMulT2(a, b)
		if err != nil {
			return false
		}
		want, err := MatMul(a, transpose(b))
		if err != nil {
			return false
		}
		return got.AlmostEqual(want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := Random(4, 4, 9)
	id := FromFunc(4, 4, func(r, c int) float64 {
		if r == c {
			return 1
		}
		return 0
	})
	c, _ := MatMul(a, id)
	if d, _ := c.MaxAbsDiff(a); d > 1e-15 {
		t.Fatalf("A x I != A (diff %v)", d)
	}
}

func TestMatMulZeroSkip(t *testing.T) {
	// Rows of zeros exercise the v==0 fast path.
	a := New(3, 3)
	a.Set(1, 1, 2)
	b := Random(3, 3, 4)
	c, _ := MatMul(a, b)
	for j := 0; j < 3; j++ {
		if c.At(0, j) != 0 || math.Abs(c.At(1, j)-2*b.At(1, j)) > 1e-15 {
			t.Fatal("zero-skip path wrong")
		}
	}
}
