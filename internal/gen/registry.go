package gen

import (
	"fmt"
	"math"

	"twoface/internal/sparse"
)

// Spec describes one synthetic analog of a paper matrix (Table 1). Rows and
// StripeWidth are given at Scale = 1.0, which corresponds to roughly 1/512
// of the paper's dimensions; average degree (nonzeros per row) matches the
// paper, so nonzero counts also scale by ~1/512.
type Spec struct {
	Long   string  // paper's long name, e.g. "mawi_201512020030"
	Short  string  // paper's short name, e.g. "mawi"
	Rows   int32   // rows = cols at scale 1.0 (all paper matrices are square)
	AvgDeg float64 // target nonzeros per row
	Width  int32   // stripe width W at scale 1.0 (paper Table 1, scaled)

	// build constructs the matrix for the given dimension and nonzero target.
	build func(rows int32, nnz int64, seed uint64) *sparse.COO
	// degCap, when set, bounds the achievable degree at a given dimension
	// (the banded analogs cap degree by their band width).
	degCap func(rows int32) float64
}

// ExpectedDeg reports the degree the generator actually targets at the given
// scale: AvgDeg unless the matrix's structure caps it (thin-banded analogs).
func (s Spec) ExpectedDeg(scale float64) float64 {
	deg := s.AvgDeg
	if s.degCap != nil {
		if cap := s.degCap(scaledRows(s.Rows, scale)); cap < deg {
			deg = cap
		}
	}
	return deg
}

// PaperRows reports the row count of the real SuiteSparse matrix, for
// rendering Table 1.
func (s Spec) PaperRows() float64 { return float64(s.Rows) * 512 }

// registry lists the eight evaluation matrices in the paper's Table 1 order
// (ascending nonzero count).
var registry = []Spec{
	{
		Long: "mawi_201512020030", Short: "mawi", Rows: 134_000, AvgDeg: 2.08, Width: 256,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			return HubTraffic(rows, nnz, max32(rows/2048, 4), 0.85, 0.8, seed)
		},
	},
	{
		Long: "Queen_4147", Short: "queen", Rows: 8_100, AvgDeg: 76.3, Width: 16,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			// Very thin band (~0.2% of the matrix): a reordered 3D FEM mesh
			// whose remote dense accesses are a boundary layer that is tiny
			// relative to any node's block. The row degree is capped by the
			// band width, so the analog trades some of Queen_4147's density
			// for its structure — the structure is what drives communication.
			band := max32(rows/256, 8)
			perRow := math.Min(float64(nnz)/float64(rows), float64(band))
			return Banded(rows, band, perRow, seed)
		},
		degCap: func(rows int32) float64 { return float64(max32(rows/256, 8)) },
	},
	{
		Long: "stokes", Short: "stokes", Rows: 22_400, AvgDeg: 30.5, Width: 64,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			// Wider band than queen (~0.8%): a coupled Stokes discretization
			// with more boundary coupling, so less of the win.
			band := max32(rows/48, 8)
			perRow := math.Min(float64(nnz)/float64(rows), 1.5*float64(band))
			return Banded(rows, band, perRow, seed)
		},
		degCap: func(rows int32) float64 { return 1.5 * float64(max32(rows/48, 8)) },
	},
	{
		Long: "kmer_V1r", Short: "kmer", Rows: 418_000, AvgDeg: 2.17, Width: 1024,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			return Uniform(rows, rows, nnz, seed)
		},
	},
	{
		Long: "arabic-2005", Short: "arabic", Rows: 44_400, AvgDeg: 28.1, Width: 128,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			return CommunityWeb(rows, max32(rows/256, 16), float64(nnz)/float64(rows), 0.985, seed)
		},
	},
	{
		Long: "twitter7", Short: "twitter", Rows: 81_300, AvgDeg: 35.3, Width: 256,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			return RMAT(rows, nnz, 0.57, 0.19, 0.19, 0.05, seed)
		},
	},
	{
		Long: "GAP-web", Short: "web", Rows: 98_900, AvgDeg: 38.1, Width: 256,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			return CommunityWeb(rows, max32(rows/512, 16), float64(nnz)/float64(rows), 0.97, seed)
		},
	},
	{
		Long: "com-Friendster", Short: "friendster", Rows: 128_100, AvgDeg: 55.1, Width: 256,
		build: func(rows int32, nnz int64, seed uint64) *sparse.COO {
			return RMAT(rows, nnz, 0.45, 0.22, 0.22, 0.11, seed)
		},
	},
}

// Specs returns the eight paper matrices in Table 1 order.
func Specs() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// ByName looks up a spec by its short name.
func ByName(short string) (Spec, error) {
	for _, s := range registry {
		if s.Short == short {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gen: unknown matrix %q (known: mawi queen stokes kmer arabic twitter web friendster)", short)
}

// Build generates the matrix at the given scale with the given seed. Scale
// multiplies the row count (and, with fixed average degree, the nonzero
// count); scale 1.0 is the default benchmark size, and tests use smaller
// scales.
func (s Spec) Build(scale float64, seed uint64) *sparse.COO {
	rows := scaledRows(s.Rows, scale)
	nnz := int64(math.Round(float64(rows) * s.AvgDeg))
	return s.build(rows, nnz, seed)
}

// ScaledRows reports the dimension Build would use at the given scale.
func (s Spec) ScaledRows(scale float64) int32 { return scaledRows(s.Rows, scale) }

// ScaledWidth reports the stripe width W at the given scale: the Table 1
// width scaled proportionally and rounded to the nearest power of two, with
// a floor of 8 (the paper chose widths "to scale with the number of
// columns", rounded to powers of two).
func (s Spec) ScaledWidth(scale float64) int32 {
	w := float64(s.Width) * scale
	if w < 8 {
		return 8
	}
	return nearestPow2(w)
}

func scaledRows(rows int32, scale float64) int32 {
	r := int32(math.Round(float64(rows) * scale))
	if r < 64 {
		r = 64
	}
	return r
}

func nearestPow2(x float64) int32 {
	e := math.Round(math.Log2(x))
	return int32(1) << int32(e)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
