package gen

import (
	"testing"

	"twoface/internal/sparse"
)

func checkValid(t *testing.T, m *sparse.COO) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Fatal("generator produced empty matrix")
	}
}

func entriesEqual(a, b *sparse.COO) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

func TestUniform(t *testing.T) {
	m := Uniform(100, 120, 500, 1)
	checkValid(t, m)
	if m.NumRows != 100 || m.NumCols != 120 {
		t.Fatalf("shape %dx%d", m.NumRows, m.NumCols)
	}
	// Dedup may remove a few duplicates but not many at this density.
	if m.NNZ() < 450 || m.NNZ() > 500 {
		t.Fatalf("nnz = %d, want ~500", m.NNZ())
	}
}

func TestBandedStaysNearDiagonal(t *testing.T) {
	const band = 10
	m := Banded(200, band, 5, 2)
	checkValid(t, m)
	for _, e := range m.Entries {
		d := int64(e.Col) - int64(e.Row)
		if d < -band || d > band {
			t.Fatalf("entry (%d,%d) outside band %d", e.Row, e.Col, band)
		}
	}
	// Diagonal must be fully populated.
	diag := 0
	for _, e := range m.Entries {
		if e.Row == e.Col {
			diag++
		}
	}
	if diag != 200 {
		t.Fatalf("diagonal has %d entries, want 200", diag)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	m := RMAT(1024, 8192, 0.57, 0.19, 0.19, 0.05, 3)
	checkValid(t, m)
	if m.NumRows != 1024 {
		t.Fatalf("rows = %d", m.NumRows)
	}
	// Power-law: the max column degree should far exceed the average.
	s := m.ComputeStats()
	if float64(s.MaxColNNZ) < 5*s.AvgPerRow {
		t.Fatalf("RMAT not skewed: max col %d vs avg %.2f", s.MaxColNNZ, s.AvgPerRow)
	}
}

func TestRMATNonPowerOfTwoRows(t *testing.T) {
	m := RMAT(1000, 4000, 0.57, 0.19, 0.19, 0.05, 4)
	checkValid(t, m)
	for _, e := range m.Entries {
		if e.Row >= 1000 || e.Col >= 1000 {
			t.Fatalf("entry (%d,%d) outside clipped 1000x1000", e.Row, e.Col)
		}
	}
}

func TestCommunityWebLocality(t *testing.T) {
	const rows, block = 1000, 50
	m := CommunityWeb(rows, block, 10, 0.9, 5)
	checkValid(t, m)
	inBlock := 0
	for _, e := range m.Entries {
		if e.Row/block == e.Col/block {
			inBlock++
		}
	}
	frac := float64(inBlock) / float64(m.NNZ())
	if frac < 0.75 {
		t.Fatalf("in-community fraction %.2f, want >= 0.75", frac)
	}
}

func TestHubTrafficSkew(t *testing.T) {
	m := HubTraffic(2000, 8000, 4, 0.6, 0.7, 6)
	checkValid(t, m)
	cols := m.ColCounts()
	var hubMass int64
	for c := int32(0); c < 4; c++ {
		hubMass += cols[c]
	}
	// Roughly half the hub entries land on the column side, so the 4 hub
	// columns should hold a large share of all nonzeros.
	if float64(hubMass) < 0.15*float64(m.NNZ()) {
		t.Fatalf("hub columns hold only %d of %d entries", hubMass, m.NNZ())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	builders := map[string]func(seed uint64) *sparse.COO{
		"uniform": func(s uint64) *sparse.COO { return Uniform(64, 64, 200, s) },
		"banded":  func(s uint64) *sparse.COO { return Banded(64, 5, 4, s) },
		"rmat":    func(s uint64) *sparse.COO { return RMAT(64, 300, 0.57, 0.19, 0.19, 0.05, s) },
		"web":     func(s uint64) *sparse.COO { return CommunityWeb(64, 8, 5, 0.9, s) },
		"hub":     func(s uint64) *sparse.COO { return HubTraffic(64, 300, 2, 0.5, 0.7, s) },
	}
	for name, build := range builders {
		a, b := build(7), build(7)
		if !entriesEqual(a, b) {
			t.Fatalf("%s: same seed gave different matrices", name)
		}
		c := build(8)
		if entriesEqual(a, c) {
			t.Fatalf("%s: different seeds gave identical matrices", name)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 8 {
		t.Fatalf("registry has %d specs, want 8", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Short] = true
		if s.Rows <= 0 || s.AvgDeg <= 0 || s.Width <= 0 {
			t.Fatalf("spec %s has invalid parameters: %+v", s.Short, s)
		}
	}
	for _, want := range []string{"mawi", "queen", "stokes", "kmer", "arabic", "twitter", "web", "friendster"} {
		if !names[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("queen")
	if err != nil || s.Short != "queen" {
		t.Fatalf("ByName(queen) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestSpecBuildSmallScale(t *testing.T) {
	for _, s := range Specs() {
		// Scale 0.05 keeps the banded generators' bands wide enough that
		// dedup clipping does not crush the average degree.
		m := s.Build(0.05, 42)
		checkValid(t, m)
		wantRows := s.ScaledRows(0.05)
		if m.NumRows != wantRows {
			t.Fatalf("%s: rows %d, want %d", s.Short, m.NumRows, wantRows)
		}
		if m.NumRows != m.NumCols {
			t.Fatalf("%s: not square: %dx%d", s.Short, m.NumRows, m.NumCols)
		}
		// Average degree should be in the right ballpark of the effective
		// target (dedup and clipping shave a little; banded analogs cap the
		// degree by their band width).
		deg := float64(m.NNZ()) / float64(m.NumRows)
		want := s.ExpectedDeg(0.05)
		if deg < 0.4*want || deg > 1.6*want {
			t.Fatalf("%s: avg degree %.2f, target %.2f", s.Short, deg, want)
		}
	}
}

func TestScaledWidthPowerOfTwo(t *testing.T) {
	for _, s := range Specs() {
		for _, scale := range []float64{0.01, 0.1, 1.0} {
			w := s.ScaledWidth(scale)
			if w < 8 || w&(w-1) != 0 {
				t.Fatalf("%s scale %v: width %d not a power of two >= 8", s.Short, scale, w)
			}
		}
	}
}

func TestScaledRowsFloor(t *testing.T) {
	s, _ := ByName("queen")
	if r := s.ScaledRows(1e-9); r != 64 {
		t.Fatalf("tiny scale rows = %d, want floor 64", r)
	}
}

func TestZipfDistribution(t *testing.T) {
	rng := newRNG(9)
	z := newZipf(rng, 1.3, 100000)
	counts := make(map[int64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := z.next()
		if v < 0 || v >= 100000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		if v < 10 {
			counts[v]++
		}
	}
	// Item 0 must dominate item 9 by roughly (10/1)^1.3 ~ 20x; allow slack.
	if counts[0] < 4*counts[9] {
		t.Fatalf("zipf head not skewed: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
}

func TestZipfSmallN(t *testing.T) {
	rng := newRNG(10)
	z := newZipf(rng, 1.5, 10) // n smaller than head table
	for i := 0; i < 1000; i++ {
		if v := z.next(); v < 0 || v >= 10 {
			t.Fatalf("zipf small-n draw %d out of range", v)
		}
	}
}
