// Package gen produces deterministic synthetic sparse matrices whose
// communication-relevant structure mimics the eight SuiteSparse matrices of
// the paper's evaluation (Table 1). The real matrices are hundreds of
// millions to billions of nonzeros and are not redistributable here, so each
// generator targets the property that drives the SUT-vs-SAT trade-off for
// its archetype:
//
//   - Banded (queen, stokes): FEM/stencil matrices whose nonzeros hug the
//     diagonal, so nearly all dense-input accesses are local or from the
//     neighbouring node — fine-grained one-sided transfers win big.
//   - Uniform (kmer): an almost-regular, extremely sparse graph whose few
//     nonzeros per row scatter uniformly over all nodes.
//   - RMAT (twitter, friendster): power-law social networks with celebrity
//     columns needed by every node, which favours collective multicasts and
//     stresses Two-Face's synchronous half with large fan-outs.
//   - CommunityWeb (web, arabic): web crawls with strong host locality —
//     most links stay inside a small community block, plus a power-law tail
//     of cross links. Dense-shifting wastes nearly all of its transfers
//     here, which is where the paper's Two-Face wins hardest.
//   - HubTraffic (mawi): packet-trace matrices where a handful of hub
//     endpoints appear in a large fraction of all flows, concentrated in one
//     region of the row space, producing dense asynchronous stripes and high
//     load imbalance.
//
// All generators are deterministic functions of their seed.
package gen

import (
	"math"
	"math/rand/v2"

	"twoface/internal/sparse"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

func randVal(rng *rand.Rand) float64 { return 2*rng.Float64() - 1 }

// Uniform returns a rows x cols matrix with nnz entries drawn uniformly at
// random. Duplicate coordinates are summed, so the result may hold slightly
// fewer than nnz stored entries.
func Uniform(rows, cols int32, nnz int64, seed uint64) *sparse.COO {
	rng := newRNG(seed)
	m := sparse.NewCOO(rows, cols, int(nnz))
	for i := int64(0); i < nnz; i++ {
		m.Append(rng.Int32N(rows), rng.Int32N(cols), randVal(rng))
	}
	m.Dedup()
	return m
}

// Banded returns a square stencil-like matrix: each row holds about
// perRow entries at columns within halfBand of the diagonal (clipped to the
// matrix), plus the diagonal itself. This mimics reordered FEM matrices such
// as Queen_4147 and stokes, whose dense-input accesses are almost entirely
// local under 1D partitioning.
func Banded(rows int32, halfBand int32, perRow float64, seed uint64) *sparse.COO {
	rng := newRNG(seed)
	if halfBand < 1 {
		halfBand = 1
	}
	m := sparse.NewCOO(rows, rows, int(float64(rows)*perRow))
	for r := int32(0); r < rows; r++ {
		m.Append(r, r, randVal(rng))
		// Poisson-ish count around perRow-1 via a simple jitter of +/-25%.
		n := int(perRow - 1 + (rng.Float64()-0.5)*0.5*perRow)
		for i := 0; i < n; i++ {
			c := r + rng.Int32N(2*halfBand+1) - halfBand
			if c < 0 || c >= rows {
				continue
			}
			m.Append(r, c, randVal(rng))
		}
	}
	m.Dedup()
	return m
}

// RMAT returns a square power-law matrix of dimension rows (rounded up to a
// power of two internally and clipped) with about nnz entries, using the
// classic recursive-quadrant construction with probabilities a, b, c, d
// (a+b+c+d must be ~1). Quadrant probabilities are jittered per level, the
// standard trick to avoid artificial self-similarity.
func RMAT(rows int32, nnz int64, a, b, c, d float64, seed uint64) *sparse.COO {
	rng := newRNG(seed)
	levels := 0
	for (int32(1) << levels) < rows {
		levels++
	}
	m := sparse.NewCOO(rows, rows, int(nnz))
	for i := int64(0); i < nnz; i++ {
		var r, col int32
		for l := 0; l < levels; l++ {
			// Jitter each level's quadrant split by up to +/-10%.
			ja := a * (0.9 + 0.2*rng.Float64())
			jb := b * (0.9 + 0.2*rng.Float64())
			jc := c * (0.9 + 0.2*rng.Float64())
			jd := d * (0.9 + 0.2*rng.Float64())
			sum := ja + jb + jc + jd
			u := rng.Float64() * sum
			r <<= 1
			col <<= 1
			switch {
			case u < ja:
				// top-left: nothing to add
			case u < ja+jb:
				col |= 1
			case u < ja+jb+jc:
				r |= 1
			default:
				r |= 1
				col |= 1
			}
		}
		if r >= rows || col >= rows {
			i-- // outside the clipped region; retry
			continue
		}
		m.Append(r, col, randVal(rng))
	}
	m.Dedup()
	return m
}

// CommunityWeb returns a square web-crawl-like matrix. Rows are grouped into
// communities of blockRows consecutive rows; each row links mostly inside
// its own community (probability inFrac) and otherwise to a global target
// drawn from a Zipf-like distribution, so a small set of popular pages
// collect cross links. Consecutive-row communities give the strong locality
// that makes web/arabic the paper's best cases for fine-grained transfers.
func CommunityWeb(rows int32, blockRows int32, perRow float64, inFrac float64, seed uint64) *sparse.COO {
	rng := newRNG(seed)
	if blockRows < 1 {
		blockRows = 1
	}
	// Exponent 1.8: cross links concentrate on a few hundred popular pages,
	// leaving most remote stripes of any node empty or nearly so — the
	// emptiness structure that makes web crawls the best case for
	// sparsity-aware transfers.
	zipf := newZipf(rng, 1.8, int64(rows))
	m := sparse.NewCOO(rows, rows, int(float64(rows)*perRow))
	for r := int32(0); r < rows; r++ {
		blockLo := (r / blockRows) * blockRows
		blockHi := blockLo + blockRows
		if blockHi > rows {
			blockHi = rows
		}
		n := int(perRow + (rng.Float64()-0.5)*0.5*perRow)
		for i := 0; i < n; i++ {
			var c int32
			if rng.Float64() < inFrac {
				c = blockLo + rng.Int32N(blockHi-blockLo)
			} else {
				c = int32(zipf.next())
			}
			m.Append(r, c, randVal(rng))
		}
	}
	m.Dedup()
	return m
}

// HubTraffic returns a square packet-trace-like matrix (mawi archetype):
// hubCount hub endpoints, clustered at the low end of the index space, are
// an endpoint of hubFrac of all entries; the rest scatter uniformly. A hub
// entry lands on a hub *column* with probability colBias (a hub row
// otherwise): traffic traces skew toward popular destinations, so colBias
// is normally > 0.5. Hub columns make a few dense stripes that every node
// needs; hub rows concentrate scattered accesses on the hub-owning node,
// producing the inter-node load imbalance the paper reports for mawi.
func HubTraffic(rows int32, nnz int64, hubCount int32, hubFrac, colBias float64, seed uint64) *sparse.COO {
	rng := newRNG(seed)
	if hubCount < 1 {
		hubCount = 1
	}
	m := sparse.NewCOO(rows, rows, int(nnz))
	for i := int64(0); i < nnz; i++ {
		if rng.Float64() < hubFrac {
			hub := rng.Int32N(hubCount)
			other := rng.Int32N(rows)
			if rng.Float64() < colBias {
				m.Append(other, hub, randVal(rng))
			} else {
				m.Append(hub, other, randVal(rng))
			}
		} else {
			m.Append(rng.Int32N(rows), rng.Int32N(rows), randVal(rng))
		}
	}
	m.Dedup()
	return m
}

// zipf draws integers in [0, n) with probability proportional to
// 1/(i+1)^s using inverse-CDF sampling over a precomputed table for the head
// and a power-law approximation for the tail. It is deterministic given the
// rand source.
type zipf struct {
	rng     *rand.Rand
	n       int64
	headCDF []float64 // cumulative probability of the first len(headCDF) items
	tailP   float64   // probability mass beyond the head
	s       float64
}

func newZipf(rng *rand.Rand, s float64, n int64) *zipf {
	head := int64(1024)
	if head > n {
		head = n
	}
	cdf := make([]float64, head)
	var total float64
	// Total mass approximated by the head sum plus the integral of x^-s.
	for i := int64(0); i < head; i++ {
		total += math.Pow(float64(i+1), -s)
	}
	tail := 0.0
	if n > head {
		tail = (math.Pow(float64(head), 1-s) - math.Pow(float64(n), 1-s)) / (s - 1)
	}
	total += tail
	var cum float64
	for i := int64(0); i < head; i++ {
		cum += math.Pow(float64(i+1), -s) / total
		cdf[i] = cum
	}
	return &zipf{rng: rng, n: n, headCDF: cdf, tailP: tail / total, s: s}
}

func (z *zipf) next() int64 {
	u := z.rng.Float64()
	head := int64(len(z.headCDF))
	if head == z.n || u < z.headCDF[head-1] {
		// Binary search in the head table.
		lo, hi := 0, len(z.headCDF)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.headCDF[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}
	// Tail: invert the continuous power-law CDF over [head, n).
	v := (u - z.headCDF[head-1]) / z.tailP
	x := math.Pow(math.Pow(float64(head), 1-z.s)*(1-v)+math.Pow(float64(z.n), 1-z.s)*v, 1/(1-z.s))
	i := int64(x)
	if i >= z.n {
		i = z.n - 1
	}
	if i < head {
		i = head
	}
	return i
}
