package core

import (
	"sync"

	"twoface/internal/cluster"
	"twoface/internal/kernels"
)

// Per-worker scratch buffers for the executor's hot loops. Each worker
// goroutine checks one workspace out of a package-level sync.Pool for its
// lifetime and returns it on exit, so steady-state execution — including
// repeated Exec calls during GNN training — allocates nothing per stripe or
// panel: every buffer grows to its high-water mark and is reused.

// asyncScratch backs processAsyncStripe and processAsyncBatch: the
// unique-column scan, the coalesced fetch regions, the one-sided fetch
// buffer, and the stripe-local accumulator. The batched path additionally
// uses per-stripe column bounds, the per-column row references, the copies
// of cache-hit rows, and the per-stripe miss/coalesce scratch.
// Retention note: every asyncScratch field is a slice of values (indices,
// regions, or float64 copies — crows holds copies of cached rows, rowRef
// holds indices, never slice headers into foreign arrays), so parking one in
// the pool pins only its own capacity. That property is what lets it skip a
// release step; panelScratch, whose table holds slice headers aliasing recv
// arenas, B, and cache entries, cannot (see panelScratch.release).
type asyncScratch struct {
	cols    []int32
	bufRow  []int32
	regions []cluster.Region
	drows   []float64
	acc     kernels.RowAccumulator

	stripeColPtr []int32          // bounds of each batch stripe's run in cols
	rowRef       []int32          // per col: >=0 drows row, <0 ^idx into crows
	crows        []float64        // copies of cache-hit rows (k elems each)
	missCols     []int32          // current stripe's miss columns
	missIdx      []int32          // their indices into cols
	regions2     []cluster.Region // current stripe's coalesced regions
}

var asyncScratchPool = sync.Pool{New: func() any { return new(asyncScratch) }}

// fetchBuf returns the fetch buffer resized to n elements, reusing capacity.
func (ws *asyncScratch) fetchBuf(n int) []float64 {
	if cap(ws.drows) < n {
		ws.drows = make([]float64, n)
	}
	return ws.drows[:n]
}

// recvArena is the pooled backing store for a node's dense-stripe receive
// buffers: syncTransfers slices each stripe's buffer out of one grown-once
// allocation instead of a per-stripe make, so repeated runs allocate nothing
// steady-state (mirroring the async/panel scratch pools). The arena is
// returned to the pool only after the run's panel workers — the buffers'
// readers — have all finished.
type recvArena struct {
	buf []float64
}

var recvArenaPool = sync.Pool{New: func() any { return new(recvArena) }}

// grab returns the arena resized to n elements, reusing capacity.
func (a *recvArena) grab(n int64) []float64 {
	if int64(cap(a.buf)) < n {
		a.buf = make([]float64, n)
	}
	return a.buf[:n]
}

// panelScratch backs processSyncRowPanel: the per-panel accumulator row and
// the pre-resolved column table. slot/stamp map a global column to its table
// entry; stamps are epoch-guarded so starting a panel never clears them.
type panelScratch struct {
	acc   []float64
	table [][]float64
	slot  []int32
	stamp []uint32
	epoch uint32
}

var panelScratchPool = sync.Pool{New: func() any { return new(panelScratch) }}

// begin sizes the scratch for a panel over numCols global columns with dense
// width k and opens a fresh epoch.
func (ws *panelScratch) begin(numCols, k int) {
	if cap(ws.acc) < k {
		ws.acc = make([]float64, k)
	}
	ws.acc = ws.acc[:k]
	if len(ws.stamp) < numCols {
		ws.slot = make([]int32, numCols)
		ws.stamp = make([]uint32, numCols)
	}
	ws.epoch++
	if ws.epoch == 0 {
		clear(ws.stamp)
		ws.epoch = 1
	}
	ws.table = ws.table[:0]
}

// release drops every row reference the table accumulated so the scratch can
// sit in the pool without pinning foreign memory. The table's entries are
// slice headers aliasing recv-arena buffers, rows of the dense input B, and
// cross-run cache entries; begin only truncates (ws.table[:0]), which keeps
// those pointers live in the backing array past Put — a pooled scratch would
// otherwise retain an entire receive arena across runs. Capacity is kept;
// only the references are cleared.
func (ws *panelScratch) release() {
	clear(ws.table[:cap(ws.table)])
	ws.table = ws.table[:0]
}

// resolved returns the dense B row for col, resolving each distinct column
// once per panel through `resolve` and serving repeats from the flat table,
// so the caller's innermost loop is closure-free.
func (ws *panelScratch) resolved(col int32, resolve rowResolver) ([]float64, error) {
	if ws.stamp[col] != ws.epoch {
		brow, err := resolve(col)
		if err != nil {
			return nil, err
		}
		ws.stamp[col] = ws.epoch
		ws.slot[col] = int32(len(ws.table))
		ws.table = append(ws.table, brow)
		return brow, nil
	}
	return ws.table[ws.slot[col]], nil
}
