package core

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"twoface/internal/atomicfloat"
	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/kernels"
	"twoface/internal/obs"
)

// Executor metrics, registered on the default registry and inert until it is
// enabled (obs.Default.SetEnabled). Granularity is per stripe / per panel /
// per get — never per nonzero — so even when enabled the cost is a handful
// of atomic operations per work unit.
var (
	metricAsyncStripes  = obs.Default.Counter("exec.async.stripes")
	metricSyncPanels    = obs.Default.Counter("exec.sync.panels")
	metricQueueDepth    = obs.Default.Histogram("exec.async.queue_depth", obs.ExpBuckets(1, 2, 16))
	metricStripeSeconds = obs.Default.Histogram("exec.async.stripe_seconds", obs.ExpBuckets(1e-8, 4, 18))
	metricPanelSeconds  = obs.Default.Histogram("exec.sync.panel_seconds", obs.ExpBuckets(1e-8, 4, 18))
	metricRegionsPerGet = obs.Default.Histogram("exec.async.regions_per_get", obs.ExpBuckets(1, 2, 16))
	metricRegionElems   = obs.Default.Histogram("exec.async.region_elems", obs.ExpBuckets(8, 4, 14))
	metricPoolAsyncGet  = obs.Default.Counter("core.pool.async.get")
	metricPoolPanelGet  = obs.Default.Counter("core.pool.panel.get")
	metricPoolRecvGet   = obs.Default.Counter("core.pool.recv.get")
	metricDegradations  = obs.Default.Counter("exec.async.degradations")
)

// ExecOptions controls the real goroutine parallelism of one node's
// execution. These affect wall-clock time only; the modeled (virtual) time
// uses the thread counts in Params, which default to the paper's Table 2.
type ExecOptions struct {
	// AsyncWorkers is the number of goroutines draining the async stripe
	// queue per node (the paper's 2 async communication threads). Default 2.
	AsyncWorkers int
	// SyncWorkers is the number of goroutines draining the row-panel queue
	// per node. Default 4 (scaled down from the paper's 120 to suit a
	// single-host simulation).
	SyncWorkers int
	// SkipCompute runs the algorithm in timing-only mode: all transfers,
	// queues, and virtual-time charges happen exactly as in a full run, but
	// the floating-point accumulation loops are skipped and C is left zero.
	// The experiment harness uses this to regenerate the paper's figures
	// quickly on modest hosts; correctness is established separately by the
	// test suite, and modeled time is independent of the arithmetic.
	SkipCompute bool

	// SampleKeep, when in (0, 1), runs a sampled SpMM (paper section 5.4):
	// each nonzero survives with this probability under the deterministic
	// mask SampleMask(row, col, SampleSeed, SampleKeep). The offline stripe
	// classification and all transfers are unchanged; computation skips
	// masked entries. 0 or 1 disables sampling.
	SampleKeep float64
	// SampleSeed selects the sample (one value per training iteration).
	SampleSeed uint64

	// DisableOverlap serializes the collective path the way the seed
	// executor did: row-panel compute starts only after every dense stripe
	// has arrived, and no overlap credit is recorded, so the sync half of
	// NodeTime reduces to the legacy serial SyncComm + SyncComp. Every
	// category charge is identical either way — the toggle changes only the
	// SyncOverlap credit — which keeps golden traces and A/B accounting
	// comparisons reproducible (DESIGN.md section 9).
	DisableOverlap bool

	// CheckpointInterval is the virtual-time cadence (seconds) between
	// crash-recovery checkpoint writes. It only takes effect when the
	// cluster has recovery enabled (cluster.SetRecovery); <= 0 selects an
	// automatic cadence of defaultCheckpointCadence checkpoint costs, which
	// bounds checkpoint overhead to ~1/defaultCheckpointCadence of runtime
	// regardless of machine scale. See DESIGN.md section 12.
	CheckpointInterval float64
}

func (o ExecOptions) sampling() sampling {
	return sampling{active: o.SampleKeep > 0 && o.SampleKeep < 1, keep: o.SampleKeep, seed: o.SampleSeed}
}

func (o ExecOptions) normalize() ExecOptions {
	if o.AsyncWorkers < 1 {
		o.AsyncWorkers = 2
	}
	if o.SyncWorkers < 1 {
		o.SyncWorkers = 4
	}
	return o
}

// Result is the outcome of one distributed SpMM.
type Result struct {
	// C is the assembled output matrix (NumRows x K).
	C *dense.Matrix
	// Breakdowns holds each node's modeled time ledger (Figure 10).
	Breakdowns []cluster.Breakdown
	// ModeledSeconds is the cluster makespan under the virtual-time model —
	// or, when Measured is set, the maximum measured rank time.
	ModeledSeconds float64
	// Measured reports that the cluster ran on a wall-clock transport: the
	// breakdown ledgers hold measured elapsed seconds (attributed to the
	// same categories, best-effort under concurrency) instead of modeled
	// virtual time, and only the transport's local ranks carry charges.
	Measured bool
	// Wall is the wall-clock duration of the simulated run. It measures
	// this host, not the modeled machine.
	Wall time.Duration
	// Transfer holds each rank's data-movement counters for this run, and
	// TotalTransfer their cluster-wide sum (Table 5's accounting).
	Transfer      []cluster.TransferStats
	TotalTransfer cluster.TransferStats
	// TraceEvents and TraceDropped carry the transfer trace when the
	// cluster had tracing enabled: all ranks' events in rank-major order,
	// and the number of events each rank dropped to its buffer cap.
	TraceEvents  []cluster.Event
	TraceDropped []int64
	// Resilience holds each rank's fault-handling counters (retries,
	// backoff time, degradations) and TotalResilience their cluster-wide
	// sum. All zero on a healthy cluster.
	Resilience      []cluster.ResilienceStats
	TotalResilience cluster.ResilienceStats
	// RowCache summarizes the remote-row cache's traffic during this run
	// (all zero under LegacyAsyncGets or a disabled cache; hits require a
	// prior run on the same Prep and B — see DESIGN.md section 8).
	RowCache RowCacheStats
}

// FillObservability populates the transfer counters and (when tracing is
// on) the transfer-trace view of a finished run, and publishes straggler
// gauges when the metrics registry is live. The executors and baselines
// call it after every run.
func (res *Result) FillObservability(clu *cluster.Cluster) {
	res.Transfer = clu.TransferStats()
	res.TotalTransfer = clu.TotalTransfer()
	res.Resilience = clu.ResilienceStats()
	res.TotalResilience = clu.TotalResilience()
	if clu.TraceEnabled() {
		events, dropped := clu.TraceByRank()
		for _, ev := range events {
			res.TraceEvents = append(res.TraceEvents, ev...)
		}
		res.TraceDropped = dropped
	}
	if obs.Default.Enabled() {
		obs.RecordSkew(obs.Default, res.Breakdowns)
		obs.RecordOverlap(obs.Default, res.Breakdowns)
		obs.RecordResilience(obs.Default, res.TotalResilience)
	}
	logRun(res)
}

// logRun emits the run-completion log record: makespan, wall time, the
// straggler rank, and (when faults fired) the resilience counters. The
// process logger discards by default, so un-instrumented runs pay one
// level check here.
func logRun(res *Result) {
	l := obs.Logger()
	if !l.Enabled(nil, slog.LevelInfo) {
		return
	}
	straggler, max := 0, 0.0
	for i, bd := range res.Breakdowns {
		if t := bd.NodeTime(); t > max {
			straggler, max = i, t
		}
	}
	attrs := []any{
		"event", "run.complete",
		"modeled_s", res.ModeledSeconds,
		"wall_s", res.Wall.Seconds(),
		"ranks", len(res.Breakdowns),
		"straggler", straggler,
	}
	if rs := res.TotalResilience; rs.Faulted() {
		attrs = append(attrs,
			"get_retries", rs.GetRetries,
			"degradations", rs.Degradations,
			"leg_retries", rs.LegRetries,
			"backoff_s", rs.BackoffSeconds,
		)
		if rs.Crashes > 0 || rs.Checkpoints > 0 {
			attrs = append(attrs,
				"crashes", rs.Crashes,
				"checkpoints", rs.Checkpoints,
				"recovered_stripes", rs.RecoveredStripes,
				"recovered_panels", rs.RecoveredPanels,
				"refetched_elems", rs.RefetchedElems,
				"recovery_s", rs.RecoverySeconds,
			)
		}
	}
	l.Info("run complete", attrs...)
}

// Exec runs Two-Face (Algorithm 1) for C = A x B on the given cluster using
// preprocessed state. B must have prep.Layout.NumCols rows and prep.Params.K
// columns; the cluster must have prep.Params.P nodes. The cluster's clocks
// are reset at entry.
func Exec(prep *Prep, b *dense.Matrix, clu *cluster.Cluster, opts ExecOptions) (*Result, error) {
	params := prep.Params
	if b.Rows != int(prep.Layout.NumCols) || b.Cols != params.K {
		return nil, fmt.Errorf("core: B is %dx%d, want %dx%d", b.Rows, b.Cols, prep.Layout.NumCols, params.K)
	}
	if clu.P() != params.P {
		return nil, fmt.Errorf("core: cluster has %d nodes, prep expects %d", clu.P(), params.P)
	}
	opts = opts.normalize()
	clu.Reset()

	k := params.K
	out := atomicfloat.NewSlice(int(prep.Layout.NumRows) * k)
	caches := prep.attachRowCaches(b)
	rec := &recoveryCoordinator{}
	start := time.Now()
	runErr := clu.Run(func(r *cluster.Rank) error {
		return execNode(prep, b, r, out, opts, caches, rec)
	})
	if runErr != nil {
		return nil, runErr
	}
	wall := time.Since(start)

	c := dense.New(int(prep.Layout.NumRows), k)
	out.CopyTo(c.Data)
	res := &Result{
		C:              c,
		Breakdowns:     clu.Breakdowns(),
		ModeledSeconds: clu.TotalTime(),
		Wall:           wall,
		Measured:       clu.WallClock(),
	}
	for _, rc := range caches {
		rc.mu.Lock()
		res.RowCache.Hits += rc.hits
		res.RowCache.Misses += rc.misses
		res.RowCache.SavedBytes += 8 * rc.savedElems
		rc.mu.Unlock()
	}
	res.FillObservability(clu)
	return res, nil
}

// execNode is Algorithm 1 for one node. A rank whose fault plan dooms it to
// crash runs the serialized checkpointing variant instead, so the set of
// units its last checkpoint covers is deterministic (see execNodeDoomed).
func execNode(prep *Prep, b *dense.Matrix, r *cluster.Rank, out *atomicfloat.Slice, opts ExecOptions, caches []*rowCache, rec *recoveryCoordinator) error {
	if r.RecoveryEnabled() && !math.IsInf(r.CrashTime(), 1) {
		return execNodeDoomed(prep, b, r, out, opts, rec)
	}
	layout, params := prep.Layout, prep.Params
	net := r.Net()
	np := &prep.Nodes[r.ID]
	k := params.K

	// Expose this node's B block as a one-sided window.
	colBlock := layout.ColBlock(r.ID)
	r.Expose("B", b.RowRange(colBlock.Lo, colBlock.Hi))
	if err := r.Barrier(); err != nil {
		return err
	}

	// "Other": per-stripe setup of MPI structures (Figure 10's residual
	// category): stripes received, async stripes issued, multicasts rooted.
	rooted := 0
	lo, hi := layout.NodeStripeRange(r.ID)
	for sid := lo; sid < hi; sid++ {
		if len(prep.Dests[sid]) > 0 {
			rooted++
		}
	}
	r.ChargeOp(cluster.Other, "setup", net.SetupBase+net.SetupPerStripe*float64(len(np.RecvStripes)+np.Async.NumStripes()+rooted))

	recvBufs := make([][]float64, layout.NumStripes())
	metricPoolRecvGet.Inc()
	arena := recvArenaPool.Get().(*recvArena)
	defer recvArenaPool.Put(arena) // all return paths join the goroutines first
	var pl *syncPipeline
	if !opts.DisableOverlap {
		pl = newSyncPipeline(len(np.RecvStripes))
	}
	syncDone := make(chan error, 1)
	var wg sync.WaitGroup

	// Thread 0: synchronous dense-stripe transfers (Algorithm 1 lines 5-8).
	// With pipelining on (the default) each stripe is published through its
	// gate as it lands, so panel workers block per stripe, not on the flag.
	wg.Add(1)
	go func() {
		defer wg.Done()
		syncDone <- syncTransfers(prep, r, np, recvBufs, arena, k, pl)
		close(syncDone)
	}()

	// Asynchronous threads (Algorithm 1 lines 9-14): drain the stripe queue
	// in owner-batches — one aggregated GetIndexed per run of consecutive
	// same-owner stripes — or per stripe under the LegacyAsyncGets toggle.
	var asyncErr error
	var asyncMu sync.Mutex
	var asyncCursor atomic.Int64
	legacy := params.LegacyAsyncGets
	var batches []asyncBatch
	var cache *rowCache
	nWork := int64(np.Async.NumStripes())
	if !legacy {
		batches = buildAsyncSchedule(layout, np, k, params.MaxBatchBytes, nil)
		nWork = int64(len(batches))
		if caches != nil {
			cache = caches[r.ID]
		}
	}
	wg.Add(opts.AsyncWorkers)
	for w := 0; w < opts.AsyncWorkers; w++ {
		go func() {
			defer wg.Done()
			metricPoolAsyncGet.Inc()
			ws := asyncScratchPool.Get().(*asyncScratch)
			defer asyncScratchPool.Put(ws)
			for {
				n := asyncCursor.Add(1) - 1
				if n >= nWork {
					return
				}
				if obs.Default.Enabled() {
					metricQueueDepth.Observe(float64(nWork - n))
				}
				var err error
				if legacy {
					metricAsyncStripes.Inc()
					err = processAsyncStripe(prep, b, r, np, out, ws, int(n), opts.SkipCompute, opts.sampling())
				} else {
					err = processAsyncBatch(prep, b, r, np, out, ws, batches[n], cache, opts.SkipCompute, opts.sampling())
				}
				if err != nil {
					asyncMu.Lock()
					if asyncErr == nil {
						asyncErr = err
					}
					asyncMu.Unlock()
					return
				}
			}
		}()
	}

	// Row panels (Algorithm 1 lines 15-19). The pipelined default starts
	// the panel workers immediately: each panel blocks only on the gate of
	// its latest-arriving stripe dependency, so panel compute overlaps the
	// multicasts still in flight. Under DisableOverlap the workers start
	// only once every stripe has arrived, as the seed executor did.
	if opts.DisableOverlap {
		if err := <-syncDone; err != nil {
			wg.Wait()
			return err
		}
	}
	nPanels := np.Sync.NumPanels()
	var deps *panelDeps
	var panelCost []float64
	if pl != nil {
		deps = np.deps(layout)
		panelCost = make([]float64, nPanels)
	}
	var panelCursor atomic.Int64
	resolver := makeRowResolver(prep, b, r.ID, recvBufs, k)
	var panelWg sync.WaitGroup
	var panelErr error
	var panelMu sync.Mutex
	setPanelErr := func(err error) {
		panelMu.Lock()
		if panelErr == nil {
			panelErr = err
		}
		panelMu.Unlock()
	}
	panelWg.Add(opts.SyncWorkers)
	for w := 0; w < opts.SyncWorkers; w++ {
		go func() {
			defer panelWg.Done()
			metricPoolPanelGet.Inc()
			ws := panelScratchPool.Get().(*panelScratch)
			defer func() {
				ws.release() // drop B/arena row references before pooling
				panelScratchPool.Put(ws)
			}()
			for {
				n := panelCursor.Add(1) - 1
				if n >= int64(nPanels) {
					return
				}
				pi := int(n)
				if pl != nil {
					pi = int(deps.order[n])
					if rel := deps.release[pi]; rel >= 0 {
						g := &pl.gates[rel]
						<-g.ready
						if g.err != nil {
							setPanelErr(g.err)
							return
						}
					}
				}
				metricSyncPanels.Inc()
				cost, err := processSyncRowPanel(prep, r, np, out, resolver, ws, pi, opts.SkipCompute, opts.sampling())
				if err != nil {
					setPanelErr(err)
					return
				}
				if panelCost != nil {
					panelCost[pi] = cost
				}
			}
		}()
	}
	panelWg.Wait()
	var syncErr error
	if pl != nil {
		syncErr = <-syncDone
	}
	wg.Wait()
	if syncErr != nil {
		return syncErr
	}
	if asyncErr != nil {
		return asyncErr
	}
	if panelErr != nil {
		return panelErr
	}
	if pl != nil {
		if ov := pipelineOverlap(pl, deps, panelCost); ov > 0 {
			r.ChargeOp(cluster.Overlap, "sync.overlap", ov)
		}
	}
	// Checkpoint accounting for a rank that survives to the end: its cadenced
	// snapshots happened alongside the run, charged here as one lump since
	// nothing ever restores from them (only a doomed rank's cuts matter).
	chargeHealthyCheckpoints(r, np, k, opts)
	r.Instant("epilogue.flush")
	if err := r.Barrier(); err != nil {
		return err
	}
	// The barrier above is the recovery fence: every doomed rank has either
	// passed it (it outran its crash time) or left it by dying, so the death
	// list is final and identical across survivors.
	return runRecoveryPhase(prep, b, r, out, opts, rec)
}

// stripeGate publishes one received dense stripe to the panel workers: the
// sync thread closes ready only after the stripe's buffer is in recvBufs
// (or after a failure, with err written first), and waiters observe err
// before touching the buffer.
type stripeGate struct {
	ready chan struct{}
	err   error
}

// syncPipeline is the per-run state of the pipelined collective path: one
// gate per received stripe (np.RecvStripes order), each stripe's arrival
// time, and the final value of the sync thread's local comm clock. Arrival
// times accumulate locally applied charges — never reads of the shared
// SyncComm ledger, which async workers may concurrently advance with
// degradation re-fetches — so the overlap accounting is deterministic under
// any goroutine interleaving.
type syncPipeline struct {
	gates     []stripeGate
	arrivals  []float64
	commTotal float64
}

func newSyncPipeline(n int) *syncPipeline {
	pl := &syncPipeline{gates: make([]stripeGate, n), arrivals: make([]float64, n)}
	for i := range pl.gates {
		pl.gates[i].ready = make(chan struct{})
	}
	return pl
}

// publish marks the stripe at RecvStripes position i arrived at local sync
// time at.
func (pl *syncPipeline) publish(i int, at float64) {
	pl.arrivals[i] = at
	close(pl.gates[i].ready)
}

// abort closes every not-yet-published gate with err, so panel workers
// blocked on stripes that will never arrive fail fast instead of hanging
// the rank — which would keep the rank's error from ever reaching the
// cluster's abort path and deadlock the surviving ranks in the final
// barrier.
func (pl *syncPipeline) abort(from int, err error) {
	for i := from; i < len(pl.gates); i++ {
		pl.gates[i].err = err
		close(pl.gates[i].ready)
	}
}

// pipelineOverlap computes the sync-half seconds hidden by pipelining. The
// panels form one serialized compute stream (SyncComputeCost already
// spreads each panel across the model's sync threads) whose units release
// at their latest dependency's arrival on the sync thread's local comm
// clock; walking them in release order yields the optimal single-stream
// list schedule. The pipelined sync half is max(schedule makespan,
// commTotal) — the sync thread itself stays busy through commTotal — so the
// overlap credit, serial sum minus pipelined makespan, lands in
// [0, min(commTotal, compTotal)] by construction: NodeTime is never worse
// than the serial accounting, and SyncOverlap <= min(SyncComm, SyncComp).
func pipelineOverlap(pl *syncPipeline, deps *panelDeps, panelCost []float64) float64 {
	var t, compTotal float64
	for _, pi := range deps.order {
		if rel := deps.release[pi]; rel >= 0 && pl.arrivals[rel] > t {
			t = pl.arrivals[rel]
		}
		t += panelCost[pi]
		compTotal += panelCost[pi]
	}
	makespan := t
	if pl.commTotal > makespan {
		makespan = pl.commTotal
	}
	return pl.commTotal + compTotal - makespan
}

// syncTransfers receives every dense stripe this node needs through
// collective multicasts and charges both receiver-side and (for stripes this
// node roots) root-side collective time. Receive buffers are sliced out of
// the node's pooled arena, so steady-state runs allocate nothing here.
//
// With a non-nil pipeline each stripe is published through its gate the
// moment it lands, stamped with the sync thread's local comm clock (applied
// charges only: root multicasts first, then per-stripe fault seconds and
// receive cost). A failure — a multicast leg past its retry budget, or a
// cluster abort — closes every remaining gate with the error before
// returning, so no panel worker can be left waiting on a stripe that will
// never arrive.
func syncTransfers(prep *Prep, r *cluster.Rank, np *NodePart, recvBufs [][]float64, arena *recvArena, k int, pl *syncPipeline) (retErr error) {
	layout := prep.Layout
	net := r.Net()
	published := 0
	if pl != nil {
		defer func() {
			if retErr != nil {
				pl.abort(published, retErr)
			}
		}()
	}

	// Root side: this node participates in the multicast tree of every
	// owned stripe that has destinations.
	var commClock float64
	lo, hi := layout.NodeStripeRange(r.ID)
	for sid := lo; sid < hi; sid++ {
		if n := len(prep.Dests[sid]); n > 0 {
			elems := int64(layout.StripeWidthOf(sid)) * int64(k)
			commClock += r.ChargeOpTimed(cluster.SyncComm, "multicast.root", net.MulticastCost(elems, n))
		}
	}

	// Receiver side: pull each needed dense stripe from its owner's window.
	var total int64
	for _, sid := range np.RecvStripes {
		colLo, colHi := layout.StripeCols(sid)
		total += int64(colHi-colLo) * int64(k)
	}
	buf := arena.grab(total)
	for i, sid := range np.RecvStripes {
		colLo, colHi := layout.StripeCols(sid)
		owner := layout.StripeOwner(sid)
		ownerBlock := layout.ColBlock(owner)
		elems := int64(colHi-colLo) * int64(k)
		dst := buf[:elems:elems]
		buf = buf[elems:]
		off := int64(colLo-int32(ownerBlock.Lo)) * int64(k)
		_, faultSeconds, err := r.MulticastPullTimed(owner, "B", off, elems, dst)
		if err != nil {
			return err
		}
		commClock += faultSeconds
		recvBufs[sid] = dst
		commClock += r.ChargeOpTimed(cluster.SyncComm, "multicast.recv", net.MulticastCost(elems, len(prep.Dests[sid])))
		if pl != nil {
			pl.publish(i, commClock)
			published = i + 1
		}
	}
	if pl != nil {
		pl.commTotal = commClock
	}
	return nil
}

// processAsyncStripe is Algorithm 3: fetch the distinct dense rows of one
// asynchronous stripe with a one-sided indexed get, then accumulate its
// nonzeros into a stripe-local dense buffer that is flushed once per touched
// C row. The flush is the only atomic traffic: each output row takes a
// single AddRange pass instead of one CAS loop per scalar per nonzero, and
// all scratch comes from the worker's pooled workspace.
func processAsyncStripe(prep *Prep, b *dense.Matrix, r *cluster.Rank, np *NodePart, out accumSink, ws *asyncScratch, n int, skipCompute bool, smp sampling) error {
	layout, params := prep.Layout, prep.Params
	net := r.Net()
	k := params.K
	entries := np.Async.Entries[np.Async.StripePtr[n]:np.Async.StripePtr[n+1]]
	if len(entries) == 0 {
		return nil
	}
	sid := np.Async.StripeIDs[n]
	owner := layout.StripeOwner(sid)
	ownerBlock := layout.ColBlock(owner)

	ws.cols = appendUniqueCols(ws.cols, entries)
	cols := ws.cols
	var fetchedRows int64
	ws.regions, ws.bufRow, fetchedRows = coalesceRegionsInto(ws.regions, ws.bufRow, cols, params.MaxCoalesceGap, int32(ownerBlock.Lo), k)
	drows := ws.fetchBuf(int(fetchedRows) * k)
	elems := fetchedRows * int64(k)
	var commCost float64
	if _, err := r.GetIndexed(owner, "B", ws.regions, drows); err != nil {
		if !errors.Is(err, cluster.ErrRetryExhausted) {
			return err
		}
		// Graceful degradation (the fault plan made this target unreachable
		// one-sidedly): re-fetch the same rows through the reliable
		// synchronous path. The data is identical, so the SpMM completes
		// bit-exactly; the extra time lands in SyncComm as a point-to-point
		// resend, visibly attributed in the Breakdown ledger.
		if _, err := r.SyncFallbackPull(owner, "B", ws.regions, drows); err != nil {
			return err
		}
		commCost = net.MulticastCost(elems, 1)
		r.ChargeOp(cluster.SyncComm, "degrade.refetch", commCost)
		metricDegradations.Inc()
	} else {
		commCost = net.OneSidedCost(len(ws.regions), elems)
		r.ChargeOp(cluster.AsyncComm, "get.indexed", commCost)
	}
	if obs.Default.Enabled() {
		metricRegionsPerGet.Observe(float64(len(ws.regions)))
		for _, reg := range ws.regions {
			metricRegionElems.Observe(float64(reg.Elems))
		}
	}

	if !skipCompute {
		// Column-major walk: advance the unique-column cursor as the column
		// changes, accumulating each same-column run against its dense row
		// through the tiled multi-row kernel.
		acc := &ws.acc
		acc.Begin(int(np.RowHi-np.RowLo), k)
		bufRow := ws.bufRow
		ci := 0
		for i := 0; i < len(entries); {
			col := entries[i].Col
			j := i + 1
			for j < len(entries) && entries[j].Col == col {
				j++
			}
			for cols[ci] != col {
				ci++
			}
			off := int(bufRow[ci]) * k
			accumulateRun(acc, entries[i:j], drows[off:off+k], np.RowLo, smp)
			i = j
		}
		base := int(np.RowLo) * k
		for i, row := range acc.Touched() {
			out.AddRange(base+int(row)*k, acc.Vals(i))
		}
	}
	kept := float64(len(entries)) * smp.computeScale()
	compCost := net.AsyncComputeCost(int64(kept), k, params.ModelAsyncCompThreads, 1)
	r.ChargeOp(cluster.AsyncComp, "compute.async.stripe", compCost)
	metricStripeSeconds.Observe(commCost + compCost)
	return nil
}

// rowResolver returns the dense B row for a global column, either from the
// node's own block or from a received dense stripe.
type rowResolver func(col int32) ([]float64, error)

func makeRowResolver(prep *Prep, b *dense.Matrix, rank int, recvBufs [][]float64, k int) rowResolver {
	layout := prep.Layout
	own := layout.ColBlock(rank)
	return func(col int32) ([]float64, error) {
		if own.Contains(int(col)) {
			return b.Row(int(col)), nil
		}
		sid := layout.StripeOfCol(col)
		buf := recvBufs[sid]
		if buf == nil {
			return nil, fmt.Errorf("core: rank %d: dense stripe %d for column %d was never received", rank, sid, col)
		}
		colLo, _ := layout.StripeCols(sid)
		off := int(col-colLo) * k
		return buf[off : off+k], nil
	}
}

// processSyncRowPanel is Algorithm 2: multiply one row panel with a
// thread-local accumulation buffer, flushing to C with one atomic pass per
// output row. Each of the panel's distinct columns is resolved to its dense
// B row once, into the workspace's flat slice table; the per-nonzero loop is
// then a table lookup plus a shared AXPY kernel, with no closure calls. It
// returns the panel's applied SyncComp charge for the pipeline's overlap
// accounting.
func processSyncRowPanel(prep *Prep, r *cluster.Rank, np *NodePart, out accumSink, resolve rowResolver, ws *panelScratch, n int, skipCompute bool, smp sampling) (float64, error) {
	params := prep.Params
	net := r.Net()
	k := params.K
	panel := np.Sync.Entries[np.Sync.PanelPtr[n]:np.Sync.PanelPtr[n+1]]
	if len(panel) == 0 {
		return 0, nil
	}
	if !skipCompute {
		ws.begin(int(prep.Layout.NumCols), k)
		acc := ws.acc
		base := int(np.RowLo) * k
		clear(acc)
		prevRow := panel[0].Row
		// Consecutive nonzeros of a row pair up through the dual-source tiled
		// kernel, keeping the accumulator tile in registers across both
		// multiply-adds; an unpaired leftover (odd count, or a gap forced by
		// sampling) flushes through plain Axpy. Axpy2 rounds exactly like the
		// two sequential Axpys it replaces, so the panel result is unchanged.
		var pendVal float64
		var pendRow []float64
		for _, e := range panel {
			if e.Row != prevRow {
				if pendRow != nil {
					kernels.Axpy(pendVal, pendRow, acc)
					pendRow = nil
				}
				out.AddRange(base+int(prevRow)*k, acc)
				clear(acc)
				prevRow = e.Row
			}
			if smp.masked(np.RowLo+e.Row, e.Col) {
				continue
			}
			brow, err := ws.resolved(e.Col, resolve)
			if err != nil {
				return 0, err
			}
			if pendRow == nil {
				pendVal, pendRow = e.Val, brow
				continue
			}
			kernels.Axpy2(pendVal, pendRow, e.Val, brow, acc)
			pendRow = nil
		}
		if pendRow != nil {
			kernels.Axpy(pendVal, pendRow, acc)
		}
		out.AddRange(base+int(prevRow)*k, acc)
	}
	kept := float64(len(panel)) * smp.computeScale()
	cost := r.ChargeOpTimed(cluster.SyncComp, "compute.sync.panel",
		net.SyncComputeCost(int64(kept), k, params.ModelSyncThreads))
	metricPanelSeconds.Observe(cost)
	return cost, nil
}
