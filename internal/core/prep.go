package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"twoface/internal/model"
	"twoface/internal/sparse"
)

// SyncMatrix is the synchronous/local-input sparse matrix of Figure 6b:
// the node's local-input and synchronous nonzeros in row-major order, cut
// into fixed-height row panels. Panel i's entries are
// Entries[PanelPtr[i]:PanelPtr[i+1]]; empty panels have equal pointers.
// Entry rows are node-local (0-based within the node's row block); columns
// are global.
type SyncMatrix struct {
	PanelPtr []int64
	Entries  []sparse.NZ
}

// NumPanels returns the number of row panels.
func (m *SyncMatrix) NumPanels() int { return len(m.PanelPtr) - 1 }

// AsyncMatrix is the asynchronous sparse matrix of Figure 6c: the node's
// asynchronous nonzeros, column-major within each stripe, stripes ordered by
// global stripe id. Stripe i covers Entries[StripePtr[i]:StripePtr[i+1]] and
// corresponds to dense stripe StripeIDs[i]. Entry rows are node-local;
// columns are global.
type AsyncMatrix struct {
	StripePtr []int64
	StripeIDs []int32
	Entries   []sparse.NZ
}

// NumStripes returns the number of asynchronous stripes.
func (m *AsyncMatrix) NumStripes() int { return len(m.StripeIDs) }

// NodePart is the preprocessed state one node holds at runtime.
type NodePart struct {
	Rank         int
	RowLo, RowHi int32 // this node's A/C row block

	Sync  SyncMatrix
	Async AsyncMatrix

	// RecvStripes lists the remote dense stripes this node receives through
	// collective multicasts, ascending by stripe id.
	RecvStripes []int32

	// Model features (paper section 4.2 / 6.2 notation).
	SS int64 // synchronous (remote) stripes
	SA int64 // asynchronous stripes
	LA int64 // dense B rows fetched one-sidedly
	NA int64 // nonzeros in asynchronous stripes

	LocalInputNNZ int64 // nonzeros whose B rows are node-local
	SyncNNZ       int64 // nonzeros in remote synchronous stripes

	memCapFlips int64 // stripes this node flipped async to fit memory

	// depsOnce/depsCache lazily hold the panel→stripe dependency sets the
	// pipelined executor blocks on (see deps.go). Derived from Sync and
	// RecvStripes, rebuilt per process, never serialized.
	depsOnce  sync.Once
	depsCache panelDeps
}

// Prep is the full output of Two-Face preprocessing: everything each node
// needs at runtime plus the replicated multicast metadata.
type Prep struct {
	Layout *Layout
	Params Params
	Nodes  []NodePart

	// Dests[sid] lists the ranks that receive dense stripe sid through a
	// collective multicast, ascending. Empty for stripes nobody needs
	// synchronously. This is the metadata the paper replicates across all
	// nodes (section 5.1).
	Dests [][]int32

	Stats PrepStats

	// needers[sid] counts the remote nodes with at least one nonzero in
	// dense stripe sid; filled only for the column classifier.
	needers []int32

	// Per-rank remote-row caches, created lazily by attachRowCaches and
	// keyed to one dense input at a time: cacheKey/cacheLen identify B's
	// backing array and cacheFP fingerprints its contents, so a different
	// (or mutated) B invalidates every cache in O(1).
	cacheMu   sync.Mutex
	rowCaches []*rowCache
	cacheKey  *float64
	cacheLen  int
	cacheFP   uint64
}

// PrepStats summarizes preprocessing for reporting (Table 6) and the
// experiment harness.
type PrepStats struct {
	TotalNNZ                 int64
	LocalInputNNZ            int64
	SyncNNZ                  int64
	AsyncNNZ                 int64
	SyncStripes              int64 // sum over nodes of SS
	AsyncStripes             int64 // sum over nodes of SA
	MemCapFlips              int64 // stripes forced async by the memory cap
	WallSeconds              float64
	ModeledPrepSeconds       float64 // modeled single-node preprocessing, no I/O
	ModeledPrepWithIOSeconds float64 // including Matrix Market read + binary write
	AvgMulticastFanout       float64 // mean |Dests| over communicated stripes
	MaxMulticastFanout       int
}

// Modeled preprocessing cost constants: the paper's preprocessing is a
// serial single-node pass dominated by sorting and matrix construction
// (section 7.3 calls its numbers "a pessimistic bound"). Costs are expressed
// per nonzero to mirror that accounting; the I/O terms model the textual
// Matrix Market read and bespoke-binary write of the paper's pipeline.
const (
	prepSortCostPerNNZCmp = 4.2e-10 // per nnz * log2(nnz) comparison
	prepBuildCostPerNNZ   = 1.0e-9  // bucketing, classification, panel build
	prepCostPerStripe     = 3.3e-8  // per (node, stripe) metadata record
	ioTextReadCostPerNNZ  = 3.3e-8  // Matrix Market text parse
	ioBinWriteCostPerNNZ  = 6.0e-9  // binary part write
)

// Preprocess partitions A for p nodes, classifies every sparse stripe, and
// builds the per-node modified-COO matrices and multicast metadata.
func Preprocess(a *sparse.COO, params Params) (*Prep, error) {
	start := time.Now()
	params, err := params.Normalize()
	if err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	layout, err := NewLayout(a.NumRows, a.NumCols, params.P, params.W)
	if err != nil {
		return nil, err
	}
	if params.BalanceRows {
		bounds, err := BalancedRowBounds(a, params.P)
		if err != nil {
			return nil, err
		}
		layout, err = layout.WithRowBounds(bounds)
		if err != nil {
			return nil, err
		}
	}

	// Bucket nonzeros by owning node (counting sort on row blocks).
	counts := make([]int64, params.P)
	for _, e := range a.Entries {
		counts[layout.RowOwner(e.Row)]++
	}
	buckets := make([][]sparse.NZ, params.P)
	for i := range buckets {
		buckets[i] = make([]sparse.NZ, 0, counts[i])
	}
	for _, e := range a.Entries {
		i := layout.RowOwner(e.Row)
		buckets[i] = append(buckets[i], e)
	}

	prep := &Prep{
		Layout: layout,
		Params: params,
		Nodes:  make([]NodePart, params.P),
		Dests:  make([][]int32, layout.NumStripes()),
	}

	// The column classifier needs global stripe popularity before any
	// per-node decision (the model classifier is purely node-local).
	if params.Classifier == ClassifierColumn && params.ForceSplit == nil {
		prep.needers = countStripeNeeders(a, layout)
	}

	// Per-node preprocessing is independent; run the nodes concurrently.
	// (The paper's implementation is serial; the *modeled* preprocessing
	// time below stays serial to keep Table 6's pessimistic accounting.)
	var wg sync.WaitGroup
	errs := make([]error, params.P)
	for i := 0; i < params.P; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = prepNode(prep, rank, buckets[rank])
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	// Merge multicast destinations (replicated metadata).
	for i := range prep.Nodes {
		for _, sid := range prep.Nodes[i].RecvStripes {
			prep.Dests[sid] = append(prep.Dests[sid], int32(i))
		}
	}
	for _, d := range prep.Dests {
		sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
	}

	prep.fillStats(start, int64(len(a.Entries)))
	return prep, nil
}

// prepNode builds one node's NodePart from its bucketed nonzeros.
func prepNode(prep *Prep, rank int, entries []sparse.NZ) error {
	layout, params := prep.Layout, prep.Params
	rowBlock := layout.RowBlock(rank)
	np := &prep.Nodes[rank]
	np.Rank = rank
	np.RowLo, np.RowHi = int32(rowBlock.Lo), int32(rowBlock.Hi)

	// Localize rows and sort column-major: stripe ids are monotone in the
	// column, so stripes become contiguous runs.
	local := make([]sparse.NZ, len(entries))
	for i, e := range entries {
		local[i] = sparse.NZ{Row: e.Row - np.RowLo, Col: e.Col, Val: e.Val}
	}
	sort.Slice(local, func(i, j int) bool {
		if local[i].Col != local[j].Col {
			return local[i].Col < local[j].Col
		}
		return local[i].Row < local[j].Row
	})

	// Scan stripe runs.
	type stripeRun struct {
		sid      int32
		lo, hi   int64 // entry range in `local`
		rowsNeed int64 // distinct columns referenced
	}
	var runs []stripeRun
	for lo := int64(0); lo < int64(len(local)); {
		sid := layout.StripeOfCol(local[lo].Col)
		hi := lo + 1
		uniq := int64(1)
		for hi < int64(len(local)) && layout.StripeOfCol(local[hi].Col) == sid {
			if local[hi].Col != local[hi-1].Col {
				uniq++
			}
			hi++
		}
		runs = append(runs, stripeRun{sid: sid, lo: lo, hi: hi, rowsNeed: uniq})
		lo = hi
	}

	// Split local-input vs remote, then classify the remote stripes.
	var remote []stripeRun
	var localRuns []stripeRun
	for _, r := range runs {
		if layout.StripeOwner(r.sid) == rank {
			localRuns = append(localRuns, r)
		} else {
			remote = append(remote, r)
		}
	}
	infos := make([]model.StripeInfo, len(remote))
	for i, r := range remote {
		infos[i] = model.StripeInfo{NNZ: r.hi - r.lo, RowsNeeded: r.rowsNeed}
	}

	var decision model.Decision
	switch {
	case params.ForceSplit != nil:
		decision = forceSplit(infos, params, *params.ForceSplit)
	case params.Classifier == ClassifierColumn:
		sids := make([]int32, len(remote))
		for i, r := range remote {
			sids[i] = r.sid
		}
		decision = columnClassify(sids, prep.needers, params)
	default:
		// The async scheduler amortizes the per-request AlphaA over each
		// owner-batch, so the classifier sees the batched per-stripe cost;
		// under LegacyAsyncGets the estimate is 1 and this is the paper's
		// per-stripe Classify exactly.
		decision = model.ClassifyBatched(infos, params.W, params.K, params.Coef,
			asyncBatchEstimate(infos, params))
	}
	flips := model.ApplyMemoryCap(&decision, infos, params.W, params.K, params.Coef, params.MemBudgetElems)
	np.memCapFlips = int64(flips)

	// Assemble the asynchronous matrix: async stripes ascending by sid,
	// entries already column-major within each run.
	for i, r := range remote {
		if !decision.Async[i] {
			continue
		}
		np.Async.StripePtr = append(np.Async.StripePtr, int64(len(np.Async.Entries)))
		np.Async.StripeIDs = append(np.Async.StripeIDs, r.sid)
		np.Async.Entries = append(np.Async.Entries, local[r.lo:r.hi]...)
		np.SA++
		np.LA += r.rowsNeed
		np.NA += r.hi - r.lo
	}
	np.Async.StripePtr = append(np.Async.StripePtr, int64(len(np.Async.Entries)))

	// Assemble the synchronous/local-input matrix: gather, then re-sort
	// row-major and panel it.
	var syncEntries []sparse.NZ
	for _, r := range localRuns {
		syncEntries = append(syncEntries, local[r.lo:r.hi]...)
		np.LocalInputNNZ += r.hi - r.lo
	}
	for i, r := range remote {
		if decision.Async[i] {
			continue
		}
		syncEntries = append(syncEntries, local[r.lo:r.hi]...)
		np.RecvStripes = append(np.RecvStripes, r.sid)
		np.SS++
		np.SyncNNZ += r.hi - r.lo
	}
	sort.Slice(np.RecvStripes, func(a, b int) bool { return np.RecvStripes[a] < np.RecvStripes[b] })
	sort.Slice(syncEntries, func(i, j int) bool {
		if syncEntries[i].Row != syncEntries[j].Row {
			return syncEntries[i].Row < syncEntries[j].Row
		}
		return syncEntries[i].Col < syncEntries[j].Col
	})
	np.Sync.Entries = syncEntries

	h := params.RowPanelHeight
	numPanels := (int32(rowBlock.Len()) + h - 1) / h
	if numPanels == 0 {
		numPanels = 1
	}
	np.Sync.PanelPtr = make([]int64, numPanels+1)
	for _, e := range syncEntries {
		np.Sync.PanelPtr[e.Row/h+1]++
	}
	for i := int32(1); i <= numPanels; i++ {
		np.Sync.PanelPtr[i] += np.Sync.PanelPtr[i-1]
	}
	if np.Sync.PanelPtr[numPanels] != int64(len(syncEntries)) {
		return fmt.Errorf("core: rank %d: panel pointers inconsistent", rank)
	}
	if !params.DisableRowReorder {
		reorderPanelRows(layout, np.Sync.Entries, np.Sync.PanelPtr)
	}
	return nil
}

// reorderPanelRows groups each synchronous panel's rows by the set of dense
// stripes their columns touch, hashed to a 64-bit signature (bit = stripe id
// mod 64), so the panel kernel visits rows with shared column blocks back to
// back and reuses cache-hot B rows across the register-tiled passes. Whole
// row runs move as units — every row's nonzeros stay contiguous and
// column-sorted, and no entry changes panels — so each row's partial-sum
// order, and therefore C, is bit-identical to the unreordered layout.
// Ties sort by row, keeping the pass deterministic.
func reorderPanelRows(layout *Layout, entries []sparse.NZ, panelPtr []int64) {
	type rowRun struct {
		sig    uint64
		row    int32
		lo, hi int32
	}
	var runs []rowRun
	var scratch []sparse.NZ
	for p := 0; p+1 < len(panelPtr); p++ {
		seg := entries[panelPtr[p]:panelPtr[p+1]]
		runs = runs[:0]
		for lo := 0; lo < len(seg); {
			row := seg[lo].Row
			sig := uint64(1) << (uint(layout.StripeOfCol(seg[lo].Col)) % 64)
			hi := lo + 1
			for hi < len(seg) && seg[hi].Row == row {
				sig |= uint64(1) << (uint(layout.StripeOfCol(seg[hi].Col)) % 64)
				hi++
			}
			runs = append(runs, rowRun{sig: sig, row: row, lo: int32(lo), hi: int32(hi)})
			lo = hi
		}
		if len(runs) < 2 {
			continue
		}
		sort.Slice(runs, func(a, b int) bool {
			if runs[a].sig != runs[b].sig {
				return runs[a].sig < runs[b].sig
			}
			return runs[a].row < runs[b].row
		})
		scratch = append(scratch[:0], seg...)
		out := seg[:0]
		for _, r := range runs {
			out = append(out, scratch[r.lo:r.hi]...)
		}
	}
}

// forceSplit classifies a fixed fraction of the remote stripes as
// asynchronous, cheapest z first (used by Async Fine-Grained and the
// calibration sweeps).
func forceSplit(infos []model.StripeInfo, params Params, frac float64) model.Decision {
	d := model.Decision{Async: make([]bool, len(infos))}
	order := make([]int, len(infos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return params.Coef.ZScore(infos[order[a]], params.W, params.K) <
			params.Coef.ZScore(infos[order[b]], params.W, params.K)
	})
	take := int(math.Ceil(frac * float64(len(infos))))
	for _, idx := range order[:take] {
		d.Async[idx] = true
		d.NumAsync++
	}
	d.NumSync = len(infos) - d.NumAsync
	return d
}

func (p *Prep) fillStats(start time.Time, totalNNZ int64) {
	s := &p.Stats
	s.TotalNNZ = totalNNZ
	for i := range p.Nodes {
		np := &p.Nodes[i]
		s.LocalInputNNZ += np.LocalInputNNZ
		s.SyncNNZ += np.SyncNNZ
		s.AsyncNNZ += np.NA
		s.SyncStripes += np.SS
		s.AsyncStripes += np.SA
		s.MemCapFlips += np.memCapFlips
	}
	var fanSum, fanCnt int64
	for _, d := range p.Dests {
		if len(d) == 0 {
			continue
		}
		fanSum += int64(len(d))
		fanCnt++
		if len(d) > s.MaxMulticastFanout {
			s.MaxMulticastFanout = len(d)
		}
	}
	if fanCnt > 0 {
		s.AvgMulticastFanout = float64(fanSum) / float64(fanCnt)
	}

	nnz := float64(totalNNZ)
	logN := 1.0
	if totalNNZ > 2 {
		logN = math.Log2(nnz)
	}
	stripes := float64(s.SyncStripes + s.AsyncStripes)
	s.ModeledPrepSeconds = prepSortCostPerNNZCmp*nnz*logN + prepBuildCostPerNNZ*nnz + prepCostPerStripe*stripes
	s.ModeledPrepWithIOSeconds = s.ModeledPrepSeconds + (ioTextReadCostPerNNZ+ioBinWriteCostPerNNZ)*nnz
	s.WallSeconds = time.Since(start).Seconds()
}

// countStripeNeeders returns, per dense stripe, the number of remote nodes
// with at least one nonzero in it — the popularity signal of the column
// classifier.
func countStripeNeeders(a *sparse.COO, layout *Layout) []int32 {
	p := layout.P
	needers := make([]int32, layout.NumStripes())
	seen := make([]bool, int(layout.NumStripes())*p)
	for _, e := range a.Entries {
		node := layout.RowOwner(e.Row)
		sid := layout.StripeOfCol(e.Col)
		if layout.StripeOwner(sid) == node {
			continue // local-input: no transfer either way
		}
		idx := int(sid)*p + node
		if !seen[idx] {
			seen[idx] = true
			needers[sid]++
		}
	}
	return needers
}

// columnClassify implements the paper's future-work alternative: a stripe is
// synchronous iff its dense stripe is needed by at least threshold nodes
// (popular data rides multicasts; niche data is fetched one-sidedly).
func columnClassify(sids []int32, needers []int32, params Params) model.Decision {
	d := model.Decision{Async: make([]bool, len(sids))}
	for i, sid := range sids {
		if int(needers[sid]) < params.ColumnSyncThreshold {
			d.Async[i] = true
			d.NumAsync++
		}
	}
	d.NumSync = len(sids) - d.NumAsync
	return d
}
