package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"twoface/internal/sparse"
)

func TestUniqueCols(t *testing.T) {
	entries := []sparse.NZ{{Col: 3}, {Col: 3}, {Col: 5}, {Col: 5}, {Col: 5}, {Col: 9}}
	got := uniqueCols(entries)
	want := []int32{3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("uniqueCols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("uniqueCols = %v, want %v", got, want)
		}
	}
	if uniqueCols(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestCoalescePaperExample(t *testing.T) {
	// Section 5.2.3: rows {2,3,6,8} with adjacent-only coalescing become
	// (2,2),(6,1),(8,1); with gap 2 they become (2,2),(6,3), fetching row 7.
	cols := []int32{2, 3, 6, 8}
	const k = 4

	regions, bufRow, fetched := coalesceRegions(cols, 1, 0, k)
	if len(regions) != 3 || fetched != 4 {
		t.Fatalf("adjacent: %d regions, %d rows; want 3 regions, 4 rows", len(regions), fetched)
	}
	wantOff := []int64{2 * k, 6 * k, 8 * k}
	wantElems := []int64{2 * k, 1 * k, 1 * k}
	for i, r := range regions {
		if r.Off != wantOff[i] || r.Elems != wantElems[i] {
			t.Fatalf("adjacent region %d = %+v", i, r)
		}
	}
	wantBuf := []int32{0, 1, 2, 3}
	for i := range wantBuf {
		if bufRow[i] != wantBuf[i] {
			t.Fatalf("adjacent bufRow = %v", bufRow)
		}
	}

	regions, bufRow, fetched = coalesceRegions(cols, 2, 0, k)
	if len(regions) != 2 || fetched != 5 {
		t.Fatalf("gap-2: %d regions, %d rows; want 2 regions, 5 rows (incl. useless row 7)", len(regions), fetched)
	}
	if regions[1].Off != 6*k || regions[1].Elems != 3*k {
		t.Fatalf("gap-2 second region = %+v", regions[1])
	}
	// Row 8 sits at buffer row 4 (after 2,3 then 6,7).
	if bufRow[3] != 4 {
		t.Fatalf("gap-2 bufRow = %v", bufRow)
	}
}

func TestCoalesceOwnerOffset(t *testing.T) {
	regions, _, _ := coalesceRegions([]int32{100, 101}, 1, 96, 8)
	if len(regions) != 1 || regions[0].Off != 4*8 || regions[0].Elems != 2*8 {
		t.Fatalf("owner-relative region = %+v", regions)
	}
}

func TestCoalesceEmptyAndSingle(t *testing.T) {
	if r, _, n := coalesceRegions(nil, 1, 0, 4); r != nil || n != 0 {
		t.Fatal("empty cols should produce nothing")
	}
	r, buf, n := coalesceRegions([]int32{7}, 1, 0, 4)
	if len(r) != 1 || n != 1 || buf[0] != 0 {
		t.Fatalf("single col: %+v %v %d", r, buf, n)
	}
}

func TestCoalesceProperty(t *testing.T) {
	// For any sorted distinct column set and any gap, the regions must
	// cover every requested column exactly once at the bufRow offsets, and
	// fetched rows == sum of region lengths.
	f := func(seed uint64, gapRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		gap := int32(gapRaw%8) + 1
		const k = 3
		var cols []int32
		c := int32(rng.IntN(5))
		for len(cols) < 30 && c < 500 {
			cols = append(cols, c)
			c += 1 + int32(rng.IntN(10))
		}
		regions, bufRow, fetched := coalesceRegions(cols, gap, 0, k)
		var sum int64
		for _, r := range regions {
			if r.Elems%k != 0 || r.Off%k != 0 {
				return false
			}
			sum += r.Elems / k
		}
		if sum != fetched {
			return false
		}
		// Reconstruct the fetched row list and verify bufRow maps each col
		// to its own row.
		var fetchedRows []int32
		for _, r := range regions {
			start := int32(r.Off / k)
			for i := int64(0); i < r.Elems/k; i++ {
				fetchedRows = append(fetchedRows, start+int32(i))
			}
		}
		for i, col := range cols {
			if bufRow[i] < 0 || int(bufRow[i]) >= len(fetchedRows) {
				return false
			}
			if fetchedRows[bufRow[i]] != col {
				return false
			}
		}
		// Gap rule: consecutive cols within a region differ by <= gap.
		for i := 1; i < len(cols); i++ {
			sameRegion := false
			for _, r := range regions {
				s, e := int32(r.Off/k), int32(r.Off/k)+int32(r.Elems/k)-1
				if cols[i-1] >= s && cols[i] <= e {
					sameRegion = true
				}
			}
			if cols[i]-cols[i-1] <= gap && !sameRegion {
				return false // should have been merged
			}
			if cols[i]-cols[i-1] > gap && sameRegion {
				return false // should not have been merged
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
