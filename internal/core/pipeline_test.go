package core

import (
	"math"
	"testing"
	"time"

	"twoface/internal/chaos"
	"twoface/internal/cluster"
	"twoface/internal/dense"
)

// execMode preps and runs one case on a fresh cluster with the pipelined
// sync path on or off. A fresh Prep per run keeps the row cache cold in
// both modes, so the two runs are true twins.
func execMode(t *testing.T, m *testMatrix, params Params, disableOverlap bool) *Result {
	t.Helper()
	prep, err := Preprocess(m.coo, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(params.P, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(prep, m.b, clu, ExecOptions{DisableOverlap: disableOverlap})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func relClose(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestPipelinedMatchesSerial is the bit-exactness contract of the pipelined
// collective path: against DisableOverlap it must move the same bytes in
// the same messages (exact integer ledgers), charge the same per-category
// virtual time, and compute the same C — only the SyncOverlap credit, and
// through it NodeTime, may differ, and never for the worse.
func TestPipelinedMatchesSerial(t *testing.T) {
	var totalOverlap float64
	for _, tc := range []struct {
		p int
		k int
		w int32
	}{
		{2, 4, 8}, {4, 8, 4}, {8, 16, 2}, {4, 32, 8},
	} {
		m := buildCase(t, 160, 2400, tc.k, uint64(tc.p*1000+tc.k))
		params := basicParams(tc.p, tc.k, tc.w)
		serial := execMode(t, m, params, true)
		piped := execMode(t, m, params, false)

		if !piped.C.AlmostEqual(m.want, 1e-9) || !serial.C.AlmostEqual(m.want, 1e-9) {
			t.Fatalf("p=%d k=%d: result differs from reference", tc.p, tc.k)
		}
		if !piped.C.AlmostEqual(serial.C, 1e-9) {
			t.Fatalf("p=%d k=%d: pipelined C differs from serial C", tc.p, tc.k)
		}
		for rank := range serial.Transfer {
			if piped.Transfer[rank] != serial.Transfer[rank] {
				t.Fatalf("p=%d k=%d rank %d: transfer ledgers differ: %+v vs %+v",
					tc.p, tc.k, rank, piped.Transfer[rank], serial.Transfer[rank])
			}
		}
		for rank, sb := range serial.Breakdowns {
			pb := piped.Breakdowns[rank]
			if sb.SyncOverlap != 0 {
				t.Fatalf("rank %d: serial run carries overlap credit %g", rank, sb.SyncOverlap)
			}
			if !relClose(pb.SyncComm, sb.SyncComm) || !relClose(pb.SyncComp, sb.SyncComp) ||
				!relClose(pb.AsyncComm, sb.AsyncComm) || !relClose(pb.AsyncComp, sb.AsyncComp) ||
				!relClose(pb.Other, sb.Other) {
				t.Fatalf("p=%d k=%d rank %d: category totals differ: %+v vs %+v", tc.p, tc.k, rank, pb, sb)
			}
			if pb.SyncOverlap < 0 || pb.SyncOverlap > math.Min(pb.SyncComm, pb.SyncComp)*(1+1e-9) {
				t.Fatalf("rank %d: overlap %g outside [0, min(%g, %g)]",
					rank, pb.SyncOverlap, pb.SyncComm, pb.SyncComp)
			}
			if pb.NodeTime() > sb.NodeTime()*(1+1e-9) {
				t.Fatalf("rank %d: pipelined node time %g worse than serial %g", rank, pb.NodeTime(), sb.NodeTime())
			}
			totalOverlap += pb.SyncOverlap
		}
		if piped.ModeledSeconds > serial.ModeledSeconds*(1+1e-9) {
			t.Fatalf("p=%d k=%d: pipelined makespan %g worse than serial %g",
				tc.p, tc.k, piped.ModeledSeconds, serial.ModeledSeconds)
		}
	}
	if totalOverlap <= 0 {
		t.Fatal("no config earned any overlap credit; pipelining is not engaging")
	}
}

// TestPanelDepsCorrect recomputes every node's panel→stripe dependency sets
// by brute force and checks the CSR, the single-gate release positions, and
// the release-sorted claim order.
func TestPanelDepsCorrect(t *testing.T) {
	m := buildCase(t, 150, 2000, 8, 11)
	prep, err := Preprocess(m.coo, basicParams(4, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	layout := prep.Layout
	for n := range prep.Nodes {
		np := &prep.Nodes[n]
		d := np.deps(layout)
		if d != np.deps(layout) {
			t.Fatalf("node %d: deps not cached", n)
		}
		pos := map[int32]int32{}
		for i, sid := range np.RecvStripes {
			pos[sid] = int32(i)
		}
		nPanels := np.Sync.NumPanels()
		if len(d.release) != nPanels || len(d.order) != nPanels || len(d.ptr) != nPanels+1 {
			t.Fatalf("node %d: deps sized %d/%d/%d for %d panels", n, len(d.release), len(d.order), len(d.ptr), nPanels)
		}
		for p := 0; p < nPanels; p++ {
			want := map[int32]bool{}
			rel := int32(-1)
			for _, e := range np.Sync.Entries[np.Sync.PanelPtr[p]:np.Sync.PanelPtr[p+1]] {
				sid := layout.StripeOfCol(e.Col)
				if at, ok := pos[sid]; ok {
					want[sid] = true
					if at > rel {
						rel = at
					}
				}
			}
			got := d.sids[d.ptr[p]:d.ptr[p+1]]
			if len(got) != len(want) {
				t.Fatalf("node %d panel %d: %d deps, want %d", n, p, len(got), len(want))
			}
			for _, sid := range got {
				if !want[sid] {
					t.Fatalf("node %d panel %d: spurious dep on stripe %d", n, p, sid)
				}
			}
			if d.release[p] != rel {
				t.Fatalf("node %d panel %d: release %d, want %d", n, p, d.release[p], rel)
			}
		}
		for i := 1; i < nPanels; i++ {
			if d.release[d.order[i-1]] > d.release[d.order[i]] {
				t.Fatalf("node %d: claim order not sorted by release at %d", n, i)
			}
		}
	}
}

// TestPanelScratchRelease is the scratch-retention regression: a pooled
// panelScratch must not keep dense-row slice headers (into receive arenas,
// B, or cache entries) alive past its return to the pool. begin only
// truncates the table, so without release the references survive in the
// backing array.
func TestPanelScratchRelease(t *testing.T) {
	ws := &panelScratch{}
	ws.begin(8, 4)
	rows := [][]float64{make([]float64, 4), make([]float64, 4), make([]float64, 4)}
	resolve := func(c int32) ([]float64, error) { return rows[c], nil }
	for c := int32(0); c < 3; c++ {
		if _, err := ws.resolved(c, resolve); err != nil {
			t.Fatal(err)
		}
	}
	if len(ws.table) != 3 {
		t.Fatalf("table has %d entries, want 3", len(ws.table))
	}

	ws.release()
	if len(ws.table) != 0 {
		t.Fatalf("release left %d live entries", len(ws.table))
	}
	if cap(ws.table) < 3 {
		t.Fatalf("release dropped table capacity to %d", cap(ws.table))
	}
	for i, ref := range ws.table[:cap(ws.table)] {
		if ref != nil {
			t.Fatalf("table backing slot %d still references a dense row after release", i)
		}
	}

	// The scratch must stay usable: a later panel on the same pooled object
	// resolves fresh rows correctly.
	ws.begin(8, 4)
	got, err := ws.resolved(1, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &rows[1][0] {
		t.Fatal("resolved wrong row after release/begin cycle")
	}
}

// TestFingerprintTailSensitive is the stale-cache regression: the B
// fingerprint must observe the buffer's final element even when the strided
// sampling loop steps over it.
func TestFingerprintTailSensitive(t *testing.T) {
	// 34 elements: step = 34/16 = 2 samples 0, 2, ..., 32 and leaves the
	// final element (index 33) to the explicit tail mix.
	data := make([]float64, 34)
	for i := range data {
		data[i] = float64(i)
	}
	before := fingerprint(data)
	data[len(data)-1] = 1e9
	if fingerprint(data) == before {
		t.Fatal("tail-only mutation left the fingerprint unchanged")
	}

	// When the stride already lands on the last element it must not be
	// mixed twice: the fingerprint of a 17-element buffer (step 1) equals a
	// plain full-scan FNV.
	d2 := make([]float64, 17)
	for i := range d2 {
		d2[i] = float64(i) * 1.5
	}
	var h uint64 = 14695981039346656037
	for _, v := range d2 {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	if fingerprint(d2) != h {
		t.Fatal("full-coverage fingerprint double-mixes the tail")
	}
}

// TestRowCacheTailInvalidation drives the same bug end-to-end: mutating
// only B's last element between runs on one Prep must invalidate the
// cross-run row cache.
func TestRowCacheTailInvalidation(t *testing.T) {
	m := buildCase(t, 17, 120, 2, 5)
	prep, err := Preprocess(m.coo, basicParams(2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	b := dense.Random(17, 2, 9) // 34 elements: strided sampling misses the tail
	prep.attachRowCaches(b)
	before := prep.cacheFP
	b.Data[len(b.Data)-1] += 1
	prep.attachRowCaches(b)
	if prep.cacheFP == before {
		t.Fatal("tail-only mutation of B did not change the cached fingerprint")
	}
}

// TestPipelinedRankFailureNoDeadlock aborts one rank's sync transfers with
// a fatal multicast-leg fault (failures past the retry budget) while
// pipelining is on. The failing rank must close its stripe gates so its own
// panel workers unblock, the error must reach the cluster abort path, and
// every surviving rank must return instead of hanging in the final barrier.
func TestPipelinedRankFailureNoDeadlock(t *testing.T) {
	m := buildCase(t, 120, 1500, 8, 7)
	params := basicParams(4, 8, 8)
	allSync := 0.0
	params.ForceSplit = &allSync // every remote stripe rides a multicast leg
	prep, err := Preprocess(m.coo, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(4, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	plan := &chaos.Plan{Seed: 1, Legs: []chaos.LegFault{{Origin: 1, Root: -1, Prob: 1, Fails: 10}}}
	inj, err := plan.Injector(4)
	if err != nil {
		t.Fatal(err)
	}
	clu.SetFaultInjector(inj)

	done := make(chan error, 1)
	go func() {
		_, err := Exec(prep, m.b, clu, ExecOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run survived a fatal multicast-leg plan")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster deadlocked after one rank's sync transfers failed")
	}
}
