// Package core implements Two-Face, the paper's distributed SpMM algorithm:
// the megatile/stripe partitioner, the preprocessing step that classifies
// sparse stripes as synchronous or asynchronous with the cost model of
// package model, the modified-COO storage of Figure 6, and the runtime of
// Algorithms 1-3 executed on the simulated cluster.
package core

import (
	"fmt"

	"twoface/internal/dense"
)

// Layout captures the 1D partition geometry of one SpMM instance
// (paper sections 2.2 and 4.1):
//
//   - Node i owns the consecutive A-row block (and C-row block)
//     [i*N/p, (i+1)*N/p), and the B-row block [i*M/p, (i+1)*M/p).
//   - A is logically divided into p x p megatiles; the megatile column of
//     node j spans j's B-row block.
//   - Each megatile column is cut into sparse stripes of width W columns
//     (the last stripe of a megatile may be narrower). Stripes are numbered
//     globally, megatile-major: all stripes of node 0's columns first.
//   - Dense stripe s is the W-row slice of B that sparse stripes in column
//     range s access.
type Layout struct {
	NumRows int32 // N: rows of A and C
	NumCols int32 // M: columns of A, rows of B
	P       int   // nodes
	W       int32 // stripe width

	stripeBase []int32 // per node: global id of its first stripe; len P+1

	// rowBounds, when non-nil, replaces the equal-rows formula with explicit
	// A/C row-block boundaries (len P+1) — the load-balanced partitioning
	// extension. B's distribution (column blocks) stays equal either way.
	rowBounds []int32
}

// NewLayout validates and builds the partition geometry.
func NewLayout(numRows, numCols int32, p int, w int32) (*Layout, error) {
	if numRows <= 0 || numCols <= 0 {
		return nil, fmt.Errorf("core: invalid matrix shape %dx%d", numRows, numCols)
	}
	if p < 1 {
		return nil, fmt.Errorf("core: need at least one node, got %d", p)
	}
	if w < 1 {
		return nil, fmt.Errorf("core: stripe width must be positive, got %d", w)
	}
	if int32(p) > numCols {
		return nil, fmt.Errorf("core: more nodes (%d) than matrix columns (%d)", p, numCols)
	}
	l := &Layout{NumRows: numRows, NumCols: numCols, P: p, W: w, stripeBase: make([]int32, p+1)}
	for j := 0; j < p; j++ {
		b := dense.BlockOf(int(numCols), p, j)
		n := int32((b.Len() + int(w) - 1) / int(w))
		l.stripeBase[j+1] = l.stripeBase[j] + n
	}
	return l, nil
}

// WithRowBounds returns a copy of the layout using explicit A/C row-block
// boundaries (ascending, bounds[0]=0, bounds[P]=NumRows, strictly
// increasing). Stripe geometry (which follows B's column blocks) is shared.
func (l *Layout) WithRowBounds(bounds []int32) (*Layout, error) {
	if len(bounds) != l.P+1 {
		return nil, fmt.Errorf("core: need %d row bounds, got %d", l.P+1, len(bounds))
	}
	if bounds[0] != 0 || bounds[l.P] != l.NumRows {
		return nil, fmt.Errorf("core: row bounds must span [0,%d], got [%d,%d]", l.NumRows, bounds[0], bounds[l.P])
	}
	for i := 0; i < l.P; i++ {
		if bounds[i+1] <= bounds[i] {
			return nil, fmt.Errorf("core: row bounds not strictly increasing at %d", i)
		}
	}
	out := *l
	out.rowBounds = append([]int32(nil), bounds...)
	return &out, nil
}

// NumStripes returns the total number of stripe columns across all nodes.
func (l *Layout) NumStripes() int32 { return l.stripeBase[l.P] }

// RowBlock returns node i's A/C row range.
func (l *Layout) RowBlock(i int) dense.Block {
	if l.rowBounds != nil {
		return dense.Block{Lo: int(l.rowBounds[i]), Hi: int(l.rowBounds[i+1])}
	}
	return dense.BlockOf(int(l.NumRows), l.P, i)
}

// ColBlock returns node j's B row range (equivalently, its megatile column
// range in A).
func (l *Layout) ColBlock(j int) dense.Block { return dense.BlockOf(int(l.NumCols), l.P, j) }

// RowOwner returns the node owning A/C row r.
func (l *Layout) RowOwner(r int32) int {
	if l.rowBounds != nil {
		// Binary search over the explicit boundaries.
		lo, hi := 0, l.P-1
		for lo < hi {
			mid := (lo + hi) / 2
			if l.rowBounds[mid+1] > r {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	return dense.OwnerOf(int(l.NumRows), l.P, int(r))
}

// ColOwner returns the node owning B row c (A column c).
func (l *Layout) ColOwner(c int32) int { return dense.OwnerOf(int(l.NumCols), l.P, int(c)) }

// StripeOfCol returns the global stripe id containing A column c. Stripe ids
// are monotone non-decreasing in c.
func (l *Layout) StripeOfCol(c int32) int32 {
	j := l.ColOwner(c)
	b := l.ColBlock(j)
	return l.stripeBase[j] + (c-int32(b.Lo))/l.W
}

// StripeOwner returns the node hosting the dense stripe sid.
func (l *Layout) StripeOwner(sid int32) int {
	// stripeBase is sorted; p is small, so a linear scan is fine and avoids
	// allocation. Binary search would not be faster below ~64 nodes.
	for j := 0; j < l.P; j++ {
		if sid < l.stripeBase[j+1] {
			return j
		}
	}
	panic(fmt.Sprintf("core: stripe id %d out of range [0,%d)", sid, l.NumStripes()))
}

// StripeCols returns the half-open A-column range [lo, hi) of stripe sid.
func (l *Layout) StripeCols(sid int32) (lo, hi int32) {
	j := l.StripeOwner(sid)
	b := l.ColBlock(j)
	lo = int32(b.Lo) + (sid-l.stripeBase[j])*l.W
	hi = lo + l.W
	if hi > int32(b.Hi) {
		hi = int32(b.Hi)
	}
	return lo, hi
}

// StripeWidthOf returns the number of columns in stripe sid (W except
// possibly for the last stripe of each megatile column).
func (l *Layout) StripeWidthOf(sid int32) int32 {
	lo, hi := l.StripeCols(sid)
	return hi - lo
}

// NodeStripeRange returns the global stripe ids [lo, hi) hosted by node j.
func (l *Layout) NodeStripeRange(j int) (lo, hi int32) {
	return l.stripeBase[j], l.stripeBase[j+1]
}
