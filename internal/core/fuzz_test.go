package core

import (
	"bytes"
	"testing"
)

// FuzzReadPrep hammers the plan decoder with arbitrary bytes: it must either
// reject the input or produce a plan whose executor-critical invariants
// hold, never panic or allocate absurdly.
func FuzzReadPrep(f *testing.F) {
	a := randomCOO(40, 40, 200, 1)
	prep, err := Preprocess(a, basicParams(2, 4, 8))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePrep(&buf, prep); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TFPREP1\x00"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPrep(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted plans must be internally consistent enough for Exec's
		// validation layer.
		if p.Layout == nil || len(p.Nodes) != p.Params.P {
			t.Fatal("decoder accepted an inconsistent plan")
		}
		if len(p.Dests) != int(p.Layout.NumStripes()) {
			t.Fatal("dests/stripe mismatch accepted")
		}
		for i := range p.Nodes {
			np := &p.Nodes[i]
			if len(np.Sync.PanelPtr) > 0 && np.Sync.PanelPtr[len(np.Sync.PanelPtr)-1] > int64(len(np.Sync.Entries)) {
				t.Fatal("panel pointers past entries accepted")
			}
		}
	})
}
