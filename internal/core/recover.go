package core

import (
	"errors"
	"fmt"
	"sync"

	"twoface/internal/atomicfloat"
	"twoface/internal/cluster"
	"twoface/internal/dense"
)

// Fail-recover execution (DESIGN.md section 12). With cluster recovery
// enabled, a fault-plan crash no longer aborts the run: the doomed rank
// executes a serialized checkpointing variant of Algorithm 1 and dies at its
// crash time as a membership transition, and after the epilogue fence the
// survivors redistribute its unfinished work, re-fetch the inputs it held,
// and re-execute from its last checkpoint. C comes out equivalent to the
// fault-free run, and all recovery overhead is attributed to the Checkpoint
// and Recovery ledger categories.
//
// The recovery unit numbering is canonical and shared by the doomed rank's
// checkpoints and the survivors' redistribution: units [0, nAsync) are the
// async batches of buildAsyncSchedule (or the async stripes, one each, under
// LegacyAsyncGets), and units [nAsync, nAsync+nPanels) are the sync row
// panels in plain index order. A DeathRecord's Units field is a cut in this
// numbering: everything below it was made durable by the last checkpoint,
// everything at or above it is re-executed by the survivors, striped
// round-robin over the live ranks in rank order.

// defaultCheckpointCadence sets the automatic checkpoint interval to this
// many checkpoint write costs, bounding checkpoint overhead to roughly
// 1/defaultCheckpointCadence (~2%) of runtime at any machine scale.
const defaultCheckpointCadence = 50

// accumSink receives a work unit's output-row contributions. The live
// executor passes the shared atomic output directly; the doomed and recovery
// paths interpose a stagedSink so a unit's output becomes visible only at a
// checkpoint or in global unit order.
type accumSink interface {
	AddRange(off int, vals []float64)
}

// stagedSink buffers AddRange calls for deferred, ordered replay into the
// real output. Values are copied at staging time because callers reuse their
// accumulation scratch across rows and units.
type stagedSink struct {
	offs []int
	lens []int
	buf  []float64
}

func (s *stagedSink) AddRange(off int, vals []float64) {
	s.offs = append(s.offs, off)
	s.lens = append(s.lens, len(vals))
	s.buf = append(s.buf, vals...)
}

// flush replays the staged ranges into out in staging order and resets.
func (s *stagedSink) flush(out *atomicfloat.Slice) {
	p := 0
	for i, off := range s.offs {
		out.AddRange(off, s.buf[p:p+s.lens[i]])
		p += s.lens[i]
	}
	s.reset()
}

// reset discards everything staged since the last flush — the doomed rank's
// work past its last checkpoint, lost with the crash.
func (s *stagedSink) reset() {
	s.offs, s.lens, s.buf = s.offs[:0], s.lens[:0], s.buf[:0]
}

// checkpointInterval resolves the effective checkpoint cadence for one rank:
// zero (checkpointing off) unless the cluster is in fail-recover mode, the
// explicit option when set, and otherwise the self-scaling default cadence.
func checkpointInterval(r *cluster.Rank, np *NodePart, k int, opts ExecOptions) float64 {
	if !r.RecoveryEnabled() {
		return 0
	}
	if opts.CheckpointInterval > 0 {
		return opts.CheckpointInterval
	}
	elems := int64(np.RowHi-np.RowLo) * int64(k)
	return defaultCheckpointCadence * r.Net().CheckpointCost(elems)
}

// chargeHealthyCheckpoints accounts a surviving rank's cadenced snapshots as
// one epilogue lump: floor(NodeTime/interval) writes at the modeled
// checkpoint cost. Nothing ever restores from a survivor's checkpoints, so
// only their time matters, not their cut points.
func chargeHealthyCheckpoints(r *cluster.Rank, np *NodePart, k int, opts ExecOptions) {
	iv := checkpointInterval(r, np, k, opts)
	if iv <= 0 {
		return
	}
	n := int64(r.Breakdown().NodeTime() / iv)
	if n <= 0 {
		return
	}
	elems := int64(np.RowHi-np.RowLo) * int64(k)
	applied := r.ChargeOpTimed(cluster.Checkpoint, "checkpoint.write", float64(n)*r.Net().CheckpointCost(elems))
	r.CountCheckpoints(n, applied)
}

// checkpointer drives the doomed rank's cadenced snapshots: at each unit
// boundary past nextAt it charges one checkpoint write, makes the staged
// output durable, and records the cut. The cadence is anchored to the clock
// after each write (write time included), so a straggler-scaled rank
// checkpoints by its own slowed clock, like a real wall-clock timer would.
type checkpointer struct {
	interval float64
	cost     float64
	nextAt   float64
	cut      int   // units made durable by the last flush
	count    int64 // completed checkpoint writes
}

func newCheckpointer(r *cluster.Rank, np *NodePart, k int, opts ExecOptions) *checkpointer {
	iv := checkpointInterval(r, np, k, opts)
	elems := int64(np.RowHi-np.RowLo) * int64(k)
	return &checkpointer{interval: iv, cost: r.Net().CheckpointCost(elems), nextAt: iv}
}

func (ck *checkpointer) maybe(r *cluster.Rank, sink *stagedSink, out *atomicfloat.Slice, unitsDone int) {
	if ck.interval <= 0 || r.Breakdown().NodeTime() < ck.nextAt {
		return
	}
	applied := r.ChargeOpTimed(cluster.Checkpoint, "checkpoint.write", ck.cost)
	r.CountCheckpoints(1, applied)
	sink.flush(out)
	ck.cut = unitsDone
	ck.count++
	ck.nextAt = r.Breakdown().NodeTime() + ck.interval
}

// execNodeDoomed is Algorithm 1 for a rank whose fault plan crashes it and
// whose cluster is in fail-recover mode. It runs single-threaded so the
// clock at every unit boundary — and therefore the crash cut — is a pure
// function of the plan, and stages all output through a stagedSink so only
// checkpointed units are ever visible in C. The crash itself is a clean
// membership transition (Rank.Die): the rank publishes how far its
// checkpoints got, leaves the barrier so the survivors' fence completes, and
// returns nil. Die fails (propagating to the PR 3 abort path) only when no
// live rank would remain to recover.
func execNodeDoomed(prep *Prep, b *dense.Matrix, r *cluster.Rank, out *atomicfloat.Slice, opts ExecOptions, rec *recoveryCoordinator) error {
	layout, params := prep.Layout, prep.Params
	net := r.Net()
	np := &prep.Nodes[r.ID]
	k := params.K
	crashAt := r.CrashTime()

	colBlock := layout.ColBlock(r.ID)
	r.Expose("B", b.RowRange(colBlock.Lo, colBlock.Hi))
	if err := r.Barrier(); err != nil {
		return err
	}

	rooted := 0
	lo, hi := layout.NodeStripeRange(r.ID)
	for sid := lo; sid < hi; sid++ {
		if len(prep.Dests[sid]) > 0 {
			rooted++
		}
	}
	r.ChargeOp(cluster.Other, "setup", net.SetupBase+net.SetupPerStripe*float64(len(np.RecvStripes)+np.Async.NumStripes()+rooted))

	ck := newCheckpointer(r, np, k, opts)
	die := func() error {
		return r.Die(r.Breakdown().NodeTime(), ck.cut, ck.count)
	}
	// crashed distinguishes this rank's own crash from a cluster-wide abort
	// (another rank's failure), which must propagate as an error instead.
	crashed := func(err error) bool {
		return errors.Is(err, cluster.ErrCrashed) && !errors.Is(err, cluster.ErrAborted)
	}

	// Dense-stripe reception, serialized (no pipeline: its overlap credit
	// would depend on goroutine timing, and a doomed rank needs a replayable
	// clock more than it needs overlap it won't live to enjoy). The sink is
	// created before the transfers so the cadence can tick through them.
	sink := &stagedSink{}
	recvBufs := make([][]float64, layout.NumStripes())
	if dead, err := doomedSyncTransfers(prep, r, np, recvBufs, k, ck, sink, out, crashAt); dead {
		return die()
	} else if err != nil {
		if crashed(err) {
			return die()
		}
		return err
	}

	legacy := params.LegacyAsyncGets
	var batches []asyncBatch
	nAsync := np.Async.NumStripes()
	if !legacy {
		batches = buildAsyncSchedule(layout, np, k, params.MaxBatchBytes, nil)
		nAsync = len(batches)
	}
	total := nAsync + np.Sync.NumPanels()

	// Fresh, unpooled scratch and no row cache: the charge sequence — which
	// fixes where the crash lands — must not depend on earlier runs' state.
	aws := &asyncScratch{}
	pws := &panelScratch{}
	defer pws.release()
	resolver := makeRowResolver(prep, b, r.ID, recvBufs, k)
	smp := opts.sampling()
	for u := 0; u < total; u++ {
		if r.Breakdown().NodeTime() >= crashAt {
			sink.reset()
			return die()
		}
		var err error
		switch {
		case u < nAsync && legacy:
			err = processAsyncStripe(prep, b, r, np, sink, aws, u, opts.SkipCompute, smp)
		case u < nAsync:
			err = processAsyncBatch(prep, b, r, np, sink, aws, batches[u], nil, opts.SkipCompute, smp)
		default:
			_, err = processSyncRowPanel(prep, r, np, sink, resolver, pws, u-nAsync, opts.SkipCompute, smp)
		}
		if err != nil {
			if crashed(err) {
				sink.reset()
				return die()
			}
			return err
		}
		ck.maybe(r, sink, out, u+1)
	}
	if r.Breakdown().NodeTime() >= crashAt {
		sink.reset()
		return die()
	}
	// The crash time lies beyond the rank's whole run: it completes normally
	// (its clock is frozen from here, so the fence cannot trip it) and joins
	// the survivors. A crash landing inside the recovery phase below is the
	// double-crash case: unrecoverable, aborting through failed().
	sink.flush(out)
	ck.cut = total
	r.Instant("epilogue.flush")
	if err := r.Barrier(); err != nil {
		return err
	}
	return runRecoveryPhase(prep, b, r, out, opts, rec)
}

// doomedSyncTransfers is the doomed rank's serialized replica of
// syncTransfers: the same root- and receiver-side charge sequence, but with
// the crash clock checked and the checkpoint cadence ticked at each stripe
// boundary. A cadence tick before any unit has run writes an (empty, cut 0)
// checkpoint — keeping the doomed rank's checkpoint count consistent with
// the healthy ranks' floor(NodeTime/interval) accounting even when the
// crash lands inside the transfer phase. Returns dead=true when the rank
// hit its crash boundary; err carries transfer failures (which may
// themselves wrap the crash, tripped inside a pull).
func doomedSyncTransfers(prep *Prep, r *cluster.Rank, np *NodePart, recvBufs [][]float64, k int, ck *checkpointer, sink *stagedSink, out *atomicfloat.Slice, crashAt float64) (dead bool, err error) {
	layout := prep.Layout
	net := r.Net()

	lo, hi := layout.NodeStripeRange(r.ID)
	for sid := lo; sid < hi; sid++ {
		if n := len(prep.Dests[sid]); n > 0 {
			if r.Breakdown().NodeTime() >= crashAt {
				return true, nil
			}
			elems := int64(layout.StripeWidthOf(sid)) * int64(k)
			r.ChargeOp(cluster.SyncComm, "multicast.root", net.MulticastCost(elems, n))
			ck.maybe(r, sink, out, 0)
		}
	}

	var total int64
	for _, sid := range np.RecvStripes {
		colLo, colHi := layout.StripeCols(sid)
		total += int64(colHi-colLo) * int64(k)
	}
	buf := make([]float64, total)
	for _, sid := range np.RecvStripes {
		if r.Breakdown().NodeTime() >= crashAt {
			return true, nil
		}
		colLo, colHi := layout.StripeCols(sid)
		owner := layout.StripeOwner(sid)
		ownerBlock := layout.ColBlock(owner)
		elems := int64(colHi-colLo) * int64(k)
		dst := buf[:elems:elems]
		buf = buf[elems:]
		off := int64(colLo-int32(ownerBlock.Lo)) * int64(k)
		if _, _, err := r.MulticastPullTimed(owner, "B", off, elems, dst); err != nil {
			return false, err
		}
		recvBufs[sid] = dst
		r.ChargeOp(cluster.SyncComm, "multicast.recv", net.MulticastCost(elems, len(prep.Dests[sid])))
		ck.maybe(r, sink, out, 0)
	}
	return false, nil
}

// runRecoveryPhase is the survivors' post-fence tail: nothing on a run
// without deaths, otherwise redistribute and re-execute every dead rank's
// unfinished units, then re-synchronize. The second barrier exists only on
// the death path, and the death list is fence-consistent, so every live rank
// takes the same barrier count.
func runRecoveryPhase(prep *Prep, b *dense.Matrix, r *cluster.Rank, out *atomicfloat.Slice, opts ExecOptions, rec *recoveryCoordinator) error {
	deaths := r.Deaths()
	if len(deaths) == 0 {
		return nil
	}
	if err := recoverDead(prep, b, r, out, opts, rec, deaths); err != nil {
		return err
	}
	return r.Barrier()
}

// recoverDead re-executes the dead ranks' unfinished work, one dead rank at
// a time in rank order (all survivors agree on the order, so the per-death
// flush pipelines can never wait on each other cyclically). All charges in
// here land in the Recovery category via BeginRecovery, and the phase's
// applied seconds and re-executed unit counts go to ResilienceStats.
func recoverDead(prep *Prep, b *dense.Matrix, r *cluster.Rank, out *atomicfloat.Slice, opts ExecOptions, rec *recoveryCoordinator, deaths []cluster.DeathRecord) error {
	live := liveAfter(r.P, deaths)
	myPos := -1
	for i, id := range live {
		if id == r.ID {
			myPos = i
		}
	}
	if myPos < 0 {
		return fmt.Errorf("core: rank %d entered recovery but is recorded dead", r.ID)
	}
	r.BeginRecovery()
	defer r.EndRecovery()
	before := r.Breakdown().Recovery
	var stripes, panels int64
	for _, d := range deaths {
		s, p, err := recoverOne(prep, b, r, out, opts, rec, d, live, myPos)
		stripes += s
		panels += p
		if err != nil {
			return err
		}
	}
	if applied := r.Breakdown().Recovery - before; stripes > 0 || panels > 0 || applied > 0 {
		r.CountRecovered(stripes, panels, applied)
	}
	return nil
}

// recoverOne re-executes one dead rank's units from its checkpoint cut. Each
// survivor takes the units at its position modulo the live count, computes
// them into a stagedSink, and flushes in global unit order through the
// death's shared pipeline — so the additions into the dead rank's C rows
// happen in one deterministic sequence regardless of survivor interleaving,
// and a same-seed replay reproduces C bit-for-bit.
func recoverOne(prep *Prep, b *dense.Matrix, r *cluster.Rank, out *atomicfloat.Slice, opts ExecOptions, rec *recoveryCoordinator, d cluster.DeathRecord, live []int, myPos int) (stripes, panels int64, err error) {
	layout, params := prep.Layout, prep.Params
	k := params.K
	np := &prep.Nodes[d.Rank]
	legacy := params.LegacyAsyncGets
	var batches []asyncBatch
	nAsync := np.Async.NumStripes()
	if !legacy {
		// buildAsyncSchedule is a pure function of the plan, so every
		// survivor independently reconstructs the dead rank's batch list —
		// and the unit numbering its checkpoints used.
		batches = buildAsyncSchedule(layout, np, k, params.MaxBatchBytes, nil)
		nAsync = len(batches)
	}
	todo := nAsync + np.Sync.NumPanels() - d.Units
	if todo <= 0 {
		return 0, 0, nil
	}
	pl := rec.pipeline(d.Rank)
	abort := func(e error) (int64, int64, error) {
		rec.fail(e) // release every survivor blocked in a flush pipeline
		return stripes, panels, e
	}

	// The dead rank's inputs for any row panels assigned here: its own B
	// column block plus the received stripes those panels reference, all
	// re-pulled over the reliable collective substrate. Built even under
	// SkipCompute so the re-fetch charges (timing) don't depend on it.
	var resolver rowResolver
	for j := myPos; j < todo; j += len(live) {
		if d.Units+j >= nAsync {
			var rerr error
			if resolver, rerr = buildRecoveryResolver(prep, r, d, live, myPos, nAsync, todo); rerr != nil {
				return abort(rerr)
			}
			break
		}
	}

	sink := &stagedSink{}
	aws := &asyncScratch{}
	pws := &panelScratch{}
	defer pws.release()
	smp := opts.sampling()
	for j := myPos; j < todo; j += len(live) {
		u := d.Units + j
		var uerr error
		switch {
		case u < nAsync && legacy:
			uerr = processAsyncStripe(prep, b, r, np, sink, aws, u, opts.SkipCompute, smp)
		case u < nAsync:
			uerr = processAsyncBatch(prep, b, r, np, sink, aws, batches[u], nil, opts.SkipCompute, smp)
		default:
			_, uerr = processSyncRowPanel(prep, r, np, sink, resolver, pws, u-nAsync, opts.SkipCompute, smp)
		}
		if uerr != nil {
			return abort(uerr)
		}
		if werr := pl.wait(j); werr != nil {
			return stripes, panels, werr
		}
		sink.flush(out)
		pl.done()
		switch {
		case u >= nAsync:
			panels++
		case legacy:
			stripes++
		default:
			stripes += int64(batches[u].hi - batches[u].lo)
		}
	}
	return stripes, panels, nil
}

// buildRecoveryResolver re-fetches the dense inputs a dead rank's row panels
// need — its own B column block and the received stripes referenced by the
// panels assigned to this survivor — and returns a rowResolver over the
// local copies. Traffic moves through RecoverPull (counted as collective,
// attributed to RefetchedElems) and each pull is charged one single-
// destination multicast to the Recovery clock.
func buildRecoveryResolver(prep *Prep, r *cluster.Rank, d cluster.DeathRecord, live []int, myPos, nAsync, todo int) (rowResolver, error) {
	layout, k := prep.Layout, prep.Params.K
	np := &prep.Nodes[d.Rank]
	net := r.Net()

	ownBlock := layout.ColBlock(d.Rank)
	ownElems := int64(ownBlock.Len()) * int64(k)
	ownBuf := make([]float64, ownElems)
	if _, err := r.RecoverPull(d.Rank, "B", []cluster.Region{{Off: 0, Elems: ownElems}}, ownBuf); err != nil {
		return nil, err
	}
	r.ChargeOp(cluster.Recovery, "recover.refetch", net.MulticastCost(ownElems, 1))

	deps := np.deps(layout)
	need := make(map[int32]bool)
	for j := myPos; j < todo; j += len(live) {
		u := d.Units + j
		if u < nAsync {
			continue
		}
		pi := u - nAsync
		for _, sid := range deps.sids[deps.ptr[pi]:deps.ptr[pi+1]] {
			need[sid] = true
		}
	}
	recvBufs := make([][]float64, layout.NumStripes())
	// Iterate RecvStripes, not the need set, so pulls happen in a
	// deterministic order.
	for _, sid := range np.RecvStripes {
		if !need[sid] {
			continue
		}
		colLo, colHi := layout.StripeCols(sid)
		owner := layout.StripeOwner(sid)
		ownerBlock := layout.ColBlock(owner)
		elems := int64(colHi-colLo) * int64(k)
		dst := make([]float64, elems)
		off := int64(colLo-int32(ownerBlock.Lo)) * int64(k)
		if _, err := r.RecoverPull(owner, "B", []cluster.Region{{Off: off, Elems: elems}}, dst); err != nil {
			return nil, err
		}
		r.ChargeOp(cluster.Recovery, "recover.refetch", net.MulticastCost(elems, 1))
		recvBufs[sid] = dst
	}
	return func(col int32) ([]float64, error) {
		if ownBlock.Contains(int(col)) {
			o := (int(col) - ownBlock.Lo) * k
			return ownBuf[o : o+k], nil
		}
		sid := layout.StripeOfCol(col)
		buf := recvBufs[sid]
		if buf == nil {
			return nil, fmt.Errorf("core: recovering rank %d's panels: dense stripe %d for column %d was never re-fetched", d.Rank, sid, col)
		}
		colLo, _ := layout.StripeCols(sid)
		o := int(col-colLo) * k
		return buf[o : o+k], nil
	}, nil
}

// liveAfter returns the sorted rank ids not present in the death list.
func liveAfter(p int, deaths []cluster.DeathRecord) []int {
	dead := make(map[int]bool, len(deaths))
	for _, d := range deaths {
		dead[d.Rank] = true
	}
	live := make([]int, 0, p-len(deaths))
	for i := 0; i < p; i++ {
		if !dead[i] {
			live = append(live, i)
		}
	}
	return live
}

// recoverPipeline serializes the survivors' output flushes for one dead rank
// into global unit order. Deadlock-free by construction: unit j's owner is
// live[(j) mod len(live)] shifted by the death's cut, every survivor
// processes its units in increasing j, and compute happens before wait — so
// the owner of the lowest unflushed unit is never blocked on the pipeline.
type recoverPipeline struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
	err  error
}

// wait blocks until it is unit j's turn to flush (or recovery failed).
func (pl *recoverPipeline) wait(j int) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for pl.next != j && pl.err == nil {
		pl.cond.Wait()
	}
	return pl.err
}

// done marks the current unit flushed and wakes the next owner.
func (pl *recoverPipeline) done() {
	pl.mu.Lock()
	pl.next++
	pl.cond.Broadcast()
	pl.mu.Unlock()
}

// fail poisons the pipeline: current and future waiters return err.
func (pl *recoverPipeline) fail(err error) {
	pl.mu.Lock()
	if pl.err == nil {
		pl.err = err
	}
	pl.cond.Broadcast()
	pl.mu.Unlock()
}

// recoveryCoordinator hands out the per-dead-rank flush pipelines shared by
// the survivors of one Exec, and fans a recovery failure out to all of them
// (including ones created later) so no survivor is left waiting on a flush
// turn that will never come.
type recoveryCoordinator struct {
	mu    sync.Mutex
	err   error
	pipes map[int]*recoverPipeline
}

func (rc *recoveryCoordinator) pipeline(rank int) *recoverPipeline {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.pipes == nil {
		rc.pipes = map[int]*recoverPipeline{}
	}
	pl := rc.pipes[rank]
	if pl == nil {
		pl = &recoverPipeline{}
		pl.cond = sync.NewCond(&pl.mu)
		rc.pipes[rank] = pl
		if rc.err != nil {
			pl.err = rc.err
		}
	}
	return pl
}

func (rc *recoveryCoordinator) fail(err error) {
	rc.mu.Lock()
	if rc.err == nil {
		rc.err = err
	}
	pipes := make([]*recoverPipeline, 0, len(rc.pipes))
	for _, pl := range rc.pipes {
		pipes = append(pipes, pl)
	}
	rc.mu.Unlock()
	for _, pl := range pipes {
		pl.fail(err)
	}
}
