package core

import "sort"

// Panel→stripe dependency sets for the pipelined collective path. The
// synchronous executor no longer waits for every dense stripe before the
// first row panel runs (the seed's all-or-nothing syncReady barrier); a
// panel becomes runnable as soon as the specific stripes its columns
// reference have arrived. The dependency sets below are pure functions of
// the preprocessed plan and the layout, so they are computed once per
// NodePart and cached for every subsequent Exec on the same Prep.

// panelDeps holds, for every sync row panel of one node, the distinct
// remote dense stripes the panel's entries reference, in CSR form: panel i
// depends on sids[ptr[i]:ptr[i+1]]. Node-local columns never appear — they
// need no transfer.
//
// Because the sync thread receives stripes in np.RecvStripes order and its
// local comm clock only moves forward, stripe arrival times are monotone in
// that order. Each panel therefore blocks on a single gate: release[i] is
// the RecvStripes position of its latest-arriving dependency (-1 when the
// panel is purely node-local), and order lists the panels sorted by release
// so workers claim panels roughly in arrival order and idle as little as
// possible.
type panelDeps struct {
	ptr     []int32 // len NumPanels+1; bounds of each panel's run in sids
	sids    []int32 // concatenated dependency stripe ids
	release []int32 // per panel: max RecvStripes position over deps, -1 if none
	order   []int32 // panel indices sorted by (release, panel index)
}

// deps returns the node's cached dependency sets, building them on first
// use. Safe for concurrent Exec calls on one Prep.
func (np *NodePart) deps(layout *Layout) *panelDeps {
	np.depsOnce.Do(func() { np.depsCache = buildPanelDeps(layout, np) })
	return &np.depsCache
}

func buildPanelDeps(layout *Layout, np *NodePart) panelDeps {
	numPanels := np.Sync.NumPanels()
	d := panelDeps{
		ptr:     make([]int32, numPanels+1),
		release: make([]int32, numPanels),
	}

	// Position of each received stripe in np.RecvStripes; -1 for stripes
	// this node never receives (its own, or purely asynchronous ones).
	pos := make([]int32, layout.NumStripes())
	for i := range pos {
		pos[i] = -1
	}
	for i, sid := range np.RecvStripes {
		pos[sid] = int32(i)
	}

	stamp := make([]uint32, layout.NumStripes())
	var epoch uint32
	for p := 0; p < numPanels; p++ {
		epoch++
		rel := int32(-1)
		for _, e := range np.Sync.Entries[np.Sync.PanelPtr[p]:np.Sync.PanelPtr[p+1]] {
			sid := layout.StripeOfCol(e.Col)
			if pos[sid] < 0 {
				continue
			}
			if stamp[sid] == epoch {
				continue
			}
			stamp[sid] = epoch
			d.sids = append(d.sids, sid)
			if pos[sid] > rel {
				rel = pos[sid]
			}
		}
		d.ptr[p+1] = int32(len(d.sids))
		d.release[p] = rel
	}

	d.order = make([]int32, numPanels)
	for i := range d.order {
		d.order[i] = int32(i)
	}
	sort.SliceStable(d.order, func(a, b int) bool {
		return d.release[d.order[a]] < d.release[d.order[b]]
	})
	return d
}
