package core

import (
	"sync"
	"testing"

	"twoface/internal/atomicfloat"
	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/gen"
)

// The stripe-local accumulation path must match the sequential reference on
// every registry matrix archetype — banded, uniform, hub-traffic, community
// web, and RMAT structures stress different stripe shapes and touched-row
// densities. 1e-9 absorbs the reassociation the per-stripe buffering
// introduces relative to per-element atomic adds.
func TestExecAccumulationExactOnRegistry(t *testing.T) {
	for _, spec := range gen.Specs() {
		spec := spec
		t.Run(spec.Short, func(t *testing.T) {
			t.Parallel()
			const scale, k = 0.004, 16
			a := spec.Build(scale, 7)
			b := dense.Random(int(a.NumCols), k, 8)
			want, err := a.ToCSR().Mul(b)
			if err != nil {
				t.Fatal(err)
			}
			params := Params{P: 4, K: k, W: spec.ScaledWidth(scale)}
			prep, err := Preprocess(a, params)
			if err != nil {
				t.Fatal(err)
			}
			clu, err := cluster.New(4, cluster.Default())
			if err != nil {
				t.Fatal(err)
			}
			res, err := Exec(prep, b, clu, ExecOptions{AsyncWorkers: 3, SyncWorkers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !res.C.AlmostEqual(want, 1e-9) {
				d, _ := res.C.MaxAbsDiff(want)
				t.Fatalf("%s: Two-Face differs from reference by %v", spec.Short, d)
			}
		})
	}
}

// Force every remote stripe asynchronous with many workers per node so
// several stripe-local accumulators flush concurrently into the same C rows;
// run under -race by scripts/check.sh, and check the sums survive the
// concurrent AddRange flushes.
func TestExecConcurrentStripeFlushRace(t *testing.T) {
	frac := 1.0
	m := buildCase(t, 160, 4000, 8, 91)
	params := basicParams(4, 8, 4)
	params.ForceSplit = &frac
	prep, err := Preprocess(m.coo, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(4, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(prep, m.b, clu, ExecOptions{AsyncWorkers: 8, SyncWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.AlmostEqual(m.want, 1e-9) {
		d, _ := res.C.MaxAbsDiff(m.want)
		t.Fatalf("concurrent flush corrupted C by %v", d)
	}
}

// Pooled workspaces from different goroutines flushing through
// atomicfloat.AddRange into one shared slice: the minimal reproduction of
// the executor's write pattern, independent of the cluster machinery.
func TestStripeFlushSharedOutputRace(t *testing.T) {
	const rows, k, workers, rounds = 32, 8, 8, 25
	out := atomicfloat.NewSlice(rows * k)
	x := make([]float64, k)
	for i := range x {
		x[i] = 0.5
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := asyncScratchPool.Get().(*asyncScratch)
			defer asyncScratchPool.Put(ws)
			for round := 0; round < rounds; round++ {
				ws.acc.Begin(rows, k)
				for row := int32(0); row < rows; row++ {
					ws.acc.Accumulate(row, 1, x)
					ws.acc.Accumulate(row, 1, x)
				}
				for i, row := range ws.acc.Touched() {
					out.AddRange(int(row)*k, ws.acc.Vals(i))
				}
			}
		}()
	}
	wg.Wait()
	want := float64(workers * rounds)
	for i := 0; i < rows*k; i++ {
		if got := out.Load(i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

// The pooled-scratch wrappers must agree with the allocating variants.
func TestScratchVariantsMatch(t *testing.T) {
	entries := randomCOO(50, 40, 300, 5).Entries
	// Column-major order, as async stripes store entries.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && (entries[j].Col < entries[j-1].Col ||
			(entries[j].Col == entries[j-1].Col && entries[j].Row < entries[j-1].Row)); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	want := uniqueCols(entries)
	got := appendUniqueCols(make([]int32, 0, 2), entries)
	if len(got) != len(want) {
		t.Fatalf("appendUniqueCols len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("appendUniqueCols[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if cap(got) < len(entries) {
		t.Fatalf("scratch must be sized from the entry count, got cap %d", cap(got))
	}

	wantReg, wantBuf, wantFetched := coalesceRegions(want, 2, 0, 4)
	gotReg, gotBuf, gotFetched := coalesceRegionsInto(make([]cluster.Region, 0, 1), make([]int32, 1), want, 2, 0, 4)
	if gotFetched != wantFetched || len(gotReg) != len(wantReg) || len(gotBuf) != len(wantBuf) {
		t.Fatalf("coalesceRegionsInto shape mismatch")
	}
	for i := range wantReg {
		if gotReg[i] != wantReg[i] {
			t.Fatalf("region %d: %+v != %+v", i, gotReg[i], wantReg[i])
		}
	}
	for i := range wantBuf {
		if gotBuf[i] != wantBuf[i] {
			t.Fatalf("bufRow %d: %d != %d", i, gotBuf[i], wantBuf[i])
		}
	}
}

// A panel workspace's column table must serve repeats from the table and
// reset across panels (epochs).
func TestPanelScratchResolvedTable(t *testing.T) {
	ws := panelScratchPool.Get().(*panelScratch)
	defer panelScratchPool.Put(ws)
	calls := 0
	resolve := func(col int32) ([]float64, error) {
		calls++
		return []float64{float64(col)}, nil
	}
	ws.begin(10, 1)
	for _, c := range []int32{3, 7, 3, 3, 7} {
		row, err := ws.resolved(c, resolve)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != float64(c) {
			t.Fatalf("resolved(%d) = %v", c, row)
		}
	}
	if calls != 2 {
		t.Fatalf("resolver called %d times, want 2 (once per distinct column)", calls)
	}
	ws.begin(10, 1)
	if _, err := ws.resolved(3, resolve); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("new panel must re-resolve; calls = %d", calls)
	}
}
