package core

import (
	"testing"
	"testing/quick"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

func runTwoFace(t *testing.T, a *testMatrix, params Params) *Result {
	t.Helper()
	prep, err := Preprocess(a.coo, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(params.P, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(prep, a.b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

type testMatrix struct {
	coo  *sparse.COO
	b    *dense.Matrix
	want *dense.Matrix
}

func buildCase(t *testing.T, rows int32, nnz int, k int, seed uint64) *testMatrix {
	t.Helper()
	a := randomCOO(rows, rows, nnz, seed)
	b := dense.Random(int(rows), k, seed+1)
	want, err := a.ToCSR().Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	return &testMatrix{coo: a, b: b, want: want}
}

func TestExecMatchesReferenceAcrossConfigs(t *testing.T) {
	for _, tc := range []struct {
		p int
		k int
		w int32
	}{
		{1, 4, 8}, {2, 4, 8}, {3, 8, 4}, {4, 16, 8}, {8, 4, 2}, {5, 1, 16},
	} {
		tc := tc
		m := buildCase(t, 120, 1500, tc.k, uint64(tc.p*100+tc.k))
		res := runTwoFace(t, m, basicParams(tc.p, tc.k, tc.w))
		if !res.C.AlmostEqual(m.want, 1e-9) {
			d, _ := res.C.MaxAbsDiff(m.want)
			t.Fatalf("p=%d k=%d w=%d: Two-Face differs from reference by %v", tc.p, tc.k, tc.w, d)
		}
	}
}

func TestExecProperty(t *testing.T) {
	f := func(seed uint64, pRaw, wRaw uint8) bool {
		p := int(pRaw)%6 + 1
		w := int32(wRaw)%16 + 1
		rows := int32(60 + seed%40)
		a := randomCOO(rows, rows, 600, seed)
		b := dense.Random(int(rows), 5, seed+9)
		want, err := a.ToCSR().Mul(b)
		if err != nil {
			return false
		}
		prep, err := Preprocess(a, basicParams(p, 5, w))
		if err != nil {
			return false
		}
		clu, err := cluster.New(p, cluster.Default())
		if err != nil {
			return false
		}
		res, err := Exec(prep, b, clu, ExecOptions{})
		if err != nil {
			return false
		}
		return res.C.AlmostEqual(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExecForcedSplits(t *testing.T) {
	// Every forced split fraction must still compute the right answer:
	// classification affects performance, never correctness.
	m := buildCase(t, 100, 1200, 8, 42)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		frac := frac
		params := basicParams(4, 8, 8)
		params.ForceSplit = &frac
		res := runTwoFace(t, m, params)
		if !res.C.AlmostEqual(m.want, 1e-9) {
			t.Fatalf("ForceSplit=%v: wrong result", frac)
		}
	}
}

func TestExecCoalescingGapsCorrect(t *testing.T) {
	m := buildCase(t, 100, 1200, 4, 17)
	for _, gap := range []int32{1, 2, 5, 100} {
		params := basicParams(4, 4, 8)
		params.MaxCoalesceGap = gap
		res := runTwoFace(t, m, params)
		if !res.C.AlmostEqual(m.want, 1e-9) {
			t.Fatalf("MaxCoalesceGap=%d: wrong result", gap)
		}
	}
}

func TestExecValidation(t *testing.T) {
	m := buildCase(t, 50, 300, 4, 3)
	prep, err := Preprocess(m.coo, basicParams(2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(2, cluster.Default())
	// Wrong B shape.
	if _, err := Exec(prep, dense.New(50, 3), clu, ExecOptions{}); err == nil {
		t.Fatal("wrong K should fail")
	}
	if _, err := Exec(prep, dense.New(49, 4), clu, ExecOptions{}); err == nil {
		t.Fatal("wrong B rows should fail")
	}
	// Wrong cluster size.
	clu3, _ := cluster.New(3, cluster.Default())
	if _, err := Exec(prep, m.b, clu3, ExecOptions{}); err == nil {
		t.Fatal("wrong cluster size should fail")
	}
}

func TestExecBreakdownsPopulated(t *testing.T) {
	m := buildCase(t, 200, 4000, 8, 21)
	res := runTwoFace(t, m, basicParams(4, 8, 4))
	if len(res.Breakdowns) != 4 {
		t.Fatalf("%d breakdowns", len(res.Breakdowns))
	}
	if res.ModeledSeconds <= 0 {
		t.Fatal("modeled time should be positive")
	}
	var anyComm bool
	for _, bd := range res.Breakdowns {
		if bd.SyncComm > 0 || bd.AsyncComm > 0 {
			anyComm = true
		}
		if bd.NodeTime() > res.ModeledSeconds+1e-15 {
			t.Fatal("node time exceeds cluster makespan")
		}
	}
	if !anyComm {
		t.Fatal("a 4-node SpMM should communicate")
	}
	if res.Wall <= 0 {
		t.Fatal("wall time should be positive")
	}
}

func TestExecSingleNodeNoComm(t *testing.T) {
	m := buildCase(t, 64, 500, 4, 33)
	res := runTwoFace(t, m, basicParams(1, 4, 8))
	if !res.C.AlmostEqual(m.want, 1e-9) {
		t.Fatal("single-node result wrong")
	}
	bd := res.Breakdowns[0]
	if bd.SyncComm != 0 || bd.AsyncComm != 0 {
		t.Fatalf("single node should not communicate: %+v", bd)
	}
}

func TestExecRepeatedRunsDeterministicModel(t *testing.T) {
	m := buildCase(t, 100, 1500, 8, 55)
	r1 := runTwoFace(t, m, basicParams(4, 8, 8))
	r2 := runTwoFace(t, m, basicParams(4, 8, 8))
	if r1.ModeledSeconds != r2.ModeledSeconds {
		t.Fatalf("modeled time not deterministic: %v vs %v", r1.ModeledSeconds, r2.ModeledSeconds)
	}
	if d, _ := r1.C.MaxAbsDiff(r2.C); d > 1e-12 {
		t.Fatalf("results differ across runs by %v", d)
	}
}

func TestExecEmptyMatrix(t *testing.T) {
	a := randomCOO(40, 40, 0, 1)
	b := dense.Random(40, 4, 2)
	prep, err := Preprocess(a, basicParams(2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(2, cluster.Default())
	res, err := Exec(prep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.C.FrobeniusNorm() != 0 {
		t.Fatal("empty A must give zero C")
	}
}

func TestExecWorkerOptions(t *testing.T) {
	m := buildCase(t, 100, 1200, 4, 66)
	for _, o := range []ExecOptions{{AsyncWorkers: 1, SyncWorkers: 1}, {AsyncWorkers: 4, SyncWorkers: 8}} {
		prep, err := Preprocess(m.coo, basicParams(4, 4, 8))
		if err != nil {
			t.Fatal(err)
		}
		clu, _ := cluster.New(4, cluster.Default())
		res, err := Exec(prep, m.b, clu, o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.C.AlmostEqual(m.want, 1e-9) {
			t.Fatalf("options %+v: wrong result", o)
		}
	}
}
