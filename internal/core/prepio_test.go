package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"twoface/internal/cluster"
	"twoface/internal/dense"
)

func TestPrepRoundtrip(t *testing.T) {
	a := randomCOO(150, 150, 2500, 1)
	prep, err := Preprocess(a, basicParams(4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePrep(&buf, prep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPrep(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structural equality.
	if back.Layout.NumRows != prep.Layout.NumRows || back.Layout.NumCols != prep.Layout.NumCols {
		t.Fatal("layout shape mismatch")
	}
	if back.Params.P != prep.Params.P || back.Params.K != prep.Params.K || back.Params.W != prep.Params.W {
		t.Fatal("params mismatch")
	}
	if len(back.Dests) != len(prep.Dests) {
		t.Fatal("dests length mismatch")
	}
	for sid := range prep.Dests {
		if len(back.Dests[sid]) != len(prep.Dests[sid]) {
			t.Fatalf("dests[%d] mismatch", sid)
		}
	}
	for i := range prep.Nodes {
		a, b := &prep.Nodes[i], &back.Nodes[i]
		if a.RowLo != b.RowLo || a.RowHi != b.RowHi || a.SS != b.SS || a.SA != b.SA || a.LA != b.LA || a.NA != b.NA {
			t.Fatalf("node %d metadata mismatch", i)
		}
		if len(a.Sync.Entries) != len(b.Sync.Entries) || len(a.Async.Entries) != len(b.Async.Entries) {
			t.Fatalf("node %d entry counts mismatch", i)
		}
		for j := range a.Sync.Entries {
			if a.Sync.Entries[j] != b.Sync.Entries[j] {
				t.Fatalf("node %d sync entry %d mismatch", i, j)
			}
		}
		for j := range a.Async.Entries {
			if a.Async.Entries[j] != b.Async.Entries[j] {
				t.Fatalf("node %d async entry %d mismatch", i, j)
			}
		}
	}

	// Behavioural equality: a loaded plan must execute identically.
	b := dense.Random(150, 8, 2)
	clu, _ := cluster.New(4, cluster.Default())
	r1, err := Exec(prep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Exec(back, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := r1.C.MaxAbsDiff(r2.C); d > 1e-12 {
		t.Fatalf("loaded plan computes differently: %v", d)
	}
	if r1.ModeledSeconds != r2.ModeledSeconds {
		t.Fatalf("loaded plan models differently: %v vs %v", r1.ModeledSeconds, r2.ModeledSeconds)
	}
}

func TestPrepRoundtripBalanced(t *testing.T) {
	a := skewedCOO(200, 4)
	params := basicParams(4, 4, 8)
	params.BalanceRows = true
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePrep(&buf, prep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPrep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if back.Layout.RowBlock(i) != prep.Layout.RowBlock(i) {
			t.Fatalf("balanced bounds lost for node %d", i)
		}
	}
	b := dense.Random(200, 4, 5)
	clu, _ := cluster.New(4, cluster.Default())
	res, err := Exec(back, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.ToCSR().Mul(b)
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("loaded balanced plan computes wrong result")
	}
}

func TestPrepFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	a := randomCOO(60, 60, 500, 6)
	prep, err := Preprocess(a, basicParams(2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "plan.tfp")
	if err := WritePrepFile(path, prep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPrepFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats.TotalNNZ != int64(a.NNZ()) {
		t.Fatalf("stats not rebuilt: %d vs %d", back.Stats.TotalNNZ, a.NNZ())
	}
	if _, err := ReadPrepFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestReadPrepRejectsCorruption(t *testing.T) {
	a := randomCOO(50, 50, 300, 7)
	prep, err := Preprocess(a, basicParams(2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePrep(&buf, prep); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ReadPrep(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := ReadPrep(bytes.NewReader(good[:16])); err == nil {
		t.Fatal("truncated header should fail")
	}
	if _, err := ReadPrep(bytes.NewReader(good[:len(good)-7])); err == nil {
		t.Fatal("truncated body should fail")
	}
	// Corrupt a length prefix deep in the body to something absurd.
	bad2 := append([]byte{}, good...)
	for i := 60; i < 68; i++ {
		bad2[i] = 0xFF
	}
	if _, err := ReadPrep(bytes.NewReader(bad2)); err == nil {
		t.Fatal("absurd section length should fail")
	}
}
