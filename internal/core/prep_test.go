package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/kernels"
	"twoface/internal/sparse"
)

func randomCOO(rows, cols int32, nnz int, seed uint64) *sparse.COO {
	rng := rand.New(rand.NewPCG(seed, seed^77))
	m := sparse.NewCOO(rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(rng.Int32N(rows), rng.Int32N(cols), rng.Float64()*2-1)
	}
	m.Dedup()
	return m
}

func basicParams(p, k int, w int32) Params {
	return Params{P: p, K: k, W: w}
}

func TestParamsNormalizeDefaults(t *testing.T) {
	p, err := basicParams(4, 128, 64).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.RowPanelHeight != 32 {
		t.Fatalf("RowPanelHeight default = %d", p.RowPanelHeight)
	}
	if p.MaxCoalesceGap != 127/128+1 {
		t.Fatalf("MaxCoalesceGap default = %d", p.MaxCoalesceGap)
	}
	if p.ModelSyncThreads != 120 || p.ModelAsyncCompThreads != 8 {
		t.Fatalf("model threads = %d/%d", p.ModelSyncThreads, p.ModelAsyncCompThreads)
	}
	if p.MemBudgetElems != 48<<20 {
		t.Fatalf("MemBudgetElems default = %d", p.MemBudgetElems)
	}
	// K=32 gives a wider coalescing gap.
	p2, _ := basicParams(4, 32, 64).Normalize()
	if p2.MaxCoalesceGap != 4 {
		t.Fatalf("K=32 MaxCoalesceGap = %d, want 4", p2.MaxCoalesceGap)
	}
}

func TestParamsNormalizeErrors(t *testing.T) {
	bad := []Params{
		{P: 0, K: 1, W: 1},
		{P: 1, K: 0, W: 1},
		{P: 1, K: 1, W: 0},
		{P: 1, K: 1, W: 1, RowPanelHeight: -1},
		{P: 1, K: 1, W: 1024, MemBudgetElems: 10},
		{P: 1, K: 1, W: 1, ModelSyncThreads: -2},
	}
	for i, b := range bad {
		if _, err := b.Normalize(); err == nil {
			t.Fatalf("case %d should fail: %+v", i, b)
		}
	}
	f := 1.5
	if _, err := (Params{P: 1, K: 1, W: 1, ForceSplit: &f}).Normalize(); err == nil {
		t.Fatal("ForceSplit > 1 should fail")
	}
}

func TestPreprocessConservesNonzeros(t *testing.T) {
	f := func(seed uint64) bool {
		a := randomCOO(200, 200, 2000, seed)
		prep, err := Preprocess(a, basicParams(4, 16, 8))
		if err != nil {
			return false
		}
		var total int64
		for i := range prep.Nodes {
			np := &prep.Nodes[i]
			total += int64(len(np.Sync.Entries)) + int64(len(np.Async.Entries))
		}
		if total != int64(a.NNZ()) {
			return false
		}
		s := prep.Stats
		return s.LocalInputNNZ+s.SyncNNZ+s.AsyncNNZ == int64(a.NNZ())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPreprocessRowOwnership(t *testing.T) {
	a := randomCOO(100, 100, 800, 5)
	prep, err := Preprocess(a, basicParams(4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		localRows := np.RowHi - np.RowLo
		for _, e := range np.Sync.Entries {
			if e.Row < 0 || e.Row >= localRows {
				t.Fatalf("rank %d: sync entry row %d outside [0,%d)", i, e.Row, localRows)
			}
		}
		for _, e := range np.Async.Entries {
			if e.Row < 0 || e.Row >= localRows {
				t.Fatalf("rank %d: async entry row %d outside [0,%d)", i, e.Row, localRows)
			}
		}
	}
}

// Panels must keep every row's nonzeros contiguous and column-sorted — the
// invariant the panel kernel's per-row flush depends on — even though the
// default row reordering may visit rows out of ascending order.
func TestPreprocessSyncMatrixPanelRowRuns(t *testing.T) {
	a := randomCOO(128, 128, 1500, 6)
	prep, err := Preprocess(a, basicParams(4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		h := prep.Params.RowPanelHeight
		for p := 0; p < np.Sync.NumPanels(); p++ {
			panel := np.Sync.Entries[np.Sync.PanelPtr[p]:np.Sync.PanelPtr[p+1]]
			seen := map[int32]bool{}
			for j, e := range panel {
				if e.Row/h != int32(p) {
					t.Fatalf("rank %d: entry row %d in panel %d (height %d)", i, e.Row, p, h)
				}
				if j == 0 || panel[j-1].Row != e.Row {
					if seen[e.Row] {
						t.Fatalf("rank %d panel %d: row %d split into separate runs", i, p, e.Row)
					}
					seen[e.Row] = true
				} else if panel[j-1].Col >= e.Col {
					t.Fatalf("rank %d panel %d: row %d columns not ascending", i, p, e.Row)
				}
			}
		}
	}
}

// With the reorder disabled, panels are strictly row-major as the seed
// produced them.
func TestPreprocessSyncMatrixRowMajorPanels(t *testing.T) {
	a := randomCOO(128, 128, 1500, 6)
	params := basicParams(4, 8, 8)
	params.DisableRowReorder = true
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		h := prep.Params.RowPanelHeight
		for p := 0; p < np.Sync.NumPanels(); p++ {
			panel := np.Sync.Entries[np.Sync.PanelPtr[p]:np.Sync.PanelPtr[p+1]]
			for j, e := range panel {
				if e.Row/h != int32(p) {
					t.Fatalf("rank %d: entry row %d in panel %d (height %d)", i, e.Row, p, h)
				}
				if j > 0 {
					prev := panel[j-1]
					if prev.Row > e.Row || (prev.Row == e.Row && prev.Col > e.Col) {
						t.Fatalf("rank %d panel %d: not row-major", i, p)
					}
				}
			}
		}
	}
}

// The reorder must not change any row's accumulated panel contribution:
// whole row runs move as units, so the per-row sums — computed here with the
// shipped pending-pair kernel sequence — must be bit-identical between the
// reordered and row-major preps. Full-run C equality only holds up to the
// reassociation that concurrent sync/async flushing into a shared C row
// already introduces between two healthy runs, so the executor A/B at the
// end uses a relative tolerance instead of ==.
func TestRowReorderBitExact(t *testing.T) {
	a := randomCOO(160, 160, 2200, 11)
	b := dense.Random(160, 8, 12)
	params := basicParams(4, 8, 8)
	on, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	params.DisableRowReorder = true
	off, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	reordered := false
	for i := range on.Nodes {
		for j, e := range on.Nodes[i].Sync.Entries {
			if e != off.Nodes[i].Sync.Entries[j] {
				reordered = true
			}
		}
	}
	if !reordered {
		t.Log("warning: reorder left every panel unchanged on this input")
	}

	// Sequential, deterministic replay of the panel compute: one accumulator
	// per row, consecutive same-row nonzeros paired through Axpy2, exactly
	// like processSyncRowPanel.
	rowSums := func(prep *Prep) map[int64][]float64 {
		sums := make(map[int64][]float64)
		for i := range prep.Nodes {
			np := &prep.Nodes[i]
			for p := 0; p < np.Sync.NumPanels(); p++ {
				panel := np.Sync.Entries[np.Sync.PanelPtr[p]:np.Sync.PanelPtr[p+1]]
				if len(panel) == 0 {
					continue
				}
				acc := make([]float64, b.Cols)
				prevRow := panel[0].Row
				var pendVal float64
				var pendRow []float64
				flush := func(row int32) {
					if pendRow != nil {
						kernels.Axpy(pendVal, pendRow, acc)
						pendRow = nil
					}
					sums[int64(i)<<32|int64(row)] = acc
					acc = make([]float64, b.Cols)
				}
				for _, e := range panel {
					if e.Row != prevRow {
						flush(prevRow)
						prevRow = e.Row
					}
					if pendRow == nil {
						pendVal, pendRow = e.Val, b.Row(int(e.Col))
						continue
					}
					kernels.Axpy2(pendVal, pendRow, e.Val, b.Row(int(e.Col)), acc)
					pendRow = nil
				}
				flush(prevRow)
			}
		}
		return sums
	}
	so, sf := rowSums(on), rowSums(off)
	if len(so) != len(sf) {
		t.Fatalf("row count changed: %d reordered vs %d row-major", len(so), len(sf))
	}
	for key, vo := range so {
		vf, ok := sf[key]
		if !ok {
			t.Fatalf("node %d row %d only present reordered", key>>32, int32(key))
		}
		for j := range vo {
			if vo[j] != vf[j] {
				t.Fatalf("node %d row %d col %d: %v (reordered) != %v (row-major)",
					key>>32, int32(key), j, vo[j], vf[j])
			}
		}
	}

	cluOn, err := cluster.New(params.P, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	params.DisableRowReorder = false
	resOn, err := Exec(on, b, cluOn, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cluOff, err := cluster.New(params.P, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Exec(off, b, cluOff, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range resOn.C.Data {
		w := resOff.C.Data[i]
		if diff := math.Abs(v - w); diff > 1e-12*(math.Abs(v)+math.Abs(w)+1) {
			t.Fatalf("C[%d]: %v (reordered) vs %v (row-major) beyond tolerance", i, v, w)
		}
	}
}

func TestPreprocessAsyncMatrixColMajorWithinStripes(t *testing.T) {
	a := randomCOO(128, 128, 1500, 7)
	forceAll := 1.0
	params := basicParams(4, 8, 8)
	params.ForceSplit = &forceAll
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	anyAsync := false
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		prevSid := int32(-1)
		for s := 0; s < np.Async.NumStripes(); s++ {
			sid := np.Async.StripeIDs[s]
			if sid <= prevSid {
				t.Fatalf("rank %d: async stripes not ascending", i)
			}
			prevSid = sid
			entries := np.Async.Entries[np.Async.StripePtr[s]:np.Async.StripePtr[s+1]]
			if len(entries) == 0 {
				t.Fatalf("rank %d: empty async stripe %d stored", i, sid)
			}
			anyAsync = true
			for j, e := range entries {
				if prep.Layout.StripeOfCol(e.Col) != sid {
					t.Fatalf("rank %d: entry col %d not in stripe %d", i, e.Col, sid)
				}
				if j > 0 {
					prev := entries[j-1]
					if prev.Col > e.Col || (prev.Col == e.Col && prev.Row > e.Row) {
						t.Fatalf("rank %d stripe %d: not column-major", i, sid)
					}
				}
			}
		}
		if np.SS != 0 {
			t.Fatalf("rank %d: ForceSplit=1 left %d sync stripes", i, np.SS)
		}
	}
	if !anyAsync {
		t.Fatal("expected asynchronous stripes")
	}
}

func TestPreprocessLocalInputNeverRemote(t *testing.T) {
	// Entries in a node's own column block must never appear in the async
	// matrix or the sync receive list.
	a := randomCOO(120, 120, 1000, 8)
	prep, err := Preprocess(a, basicParams(3, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		own := prep.Layout.ColBlock(i)
		for _, e := range np.Async.Entries {
			if own.Contains(int(e.Col)) {
				t.Fatalf("rank %d: local column %d in async matrix", i, e.Col)
			}
		}
		for _, sid := range np.RecvStripes {
			if prep.Layout.StripeOwner(sid) == i {
				t.Fatalf("rank %d: receives own stripe %d", i, sid)
			}
		}
	}
}

func TestPreprocessDestsMatchRecvStripes(t *testing.T) {
	a := randomCOO(150, 150, 2000, 9)
	prep, err := Preprocess(a, basicParams(5, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Dests[sid] contains exactly the ranks listing sid in RecvStripes.
	want := map[int32]map[int32]bool{}
	for i := range prep.Nodes {
		for _, sid := range prep.Nodes[i].RecvStripes {
			if want[sid] == nil {
				want[sid] = map[int32]bool{}
			}
			want[sid][int32(i)] = true
		}
	}
	for sid, dests := range prep.Dests {
		if len(dests) != len(want[int32(sid)]) {
			t.Fatalf("stripe %d: %d dests, want %d", sid, len(dests), len(want[int32(sid)]))
		}
		for j, d := range dests {
			if !want[int32(sid)][d] {
				t.Fatalf("stripe %d: unexpected dest %d", sid, d)
			}
			if j > 0 && dests[j-1] >= d {
				t.Fatalf("stripe %d: dests not sorted", sid)
			}
		}
	}
}

func TestPreprocessModelFeaturesConsistent(t *testing.T) {
	a := randomCOO(200, 200, 3000, 10)
	prep, err := Preprocess(a, basicParams(4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		if np.SA != int64(np.Async.NumStripes()) {
			t.Fatalf("rank %d: SA=%d but %d async stripes", i, np.SA, np.Async.NumStripes())
		}
		if np.SS != int64(len(np.RecvStripes)) {
			t.Fatalf("rank %d: SS=%d but %d recv stripes", i, np.SS, len(np.RecvStripes))
		}
		if np.NA != int64(len(np.Async.Entries)) {
			t.Fatalf("rank %d: NA=%d but %d async entries", i, np.NA, len(np.Async.Entries))
		}
		// LA = sum of distinct columns per async stripe.
		var la int64
		for s := 0; s < np.Async.NumStripes(); s++ {
			entries := np.Async.Entries[np.Async.StripePtr[s]:np.Async.StripePtr[s+1]]
			la += int64(len(uniqueCols(entries)))
		}
		if la != np.LA {
			t.Fatalf("rank %d: LA=%d, recomputed %d", i, np.LA, la)
		}
	}
}

func TestPreprocessMemoryCap(t *testing.T) {
	// A dense-ish matrix with a tiny budget must flip stripes async.
	a := randomCOO(64, 64, 3000, 11)
	params := basicParams(4, 64, 8)
	params.MemBudgetElems = 2 * int64(params.W) * int64(params.K) // room for 2 stripes
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.Nodes {
		if got := int64(len(prep.Nodes[i].RecvStripes)) * int64(params.W) * int64(params.K); got > params.MemBudgetElems {
			t.Fatalf("rank %d: receive buffers (%d elems) exceed budget (%d)", i, got, params.MemBudgetElems)
		}
	}
}

func TestPreprocessInvalidMatrix(t *testing.T) {
	a := sparse.NewCOO(10, 10, 1)
	a.Append(20, 0, 1)
	if _, err := Preprocess(a, basicParams(2, 4, 4)); err == nil {
		t.Fatal("invalid matrix should fail preprocessing")
	}
}

func TestPreprocessStatsFanout(t *testing.T) {
	a := randomCOO(100, 100, 3000, 12)
	prep, err := Preprocess(a, basicParams(4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	s := prep.Stats
	if s.TotalNNZ != int64(a.NNZ()) {
		t.Fatalf("TotalNNZ = %d", s.TotalNNZ)
	}
	if s.SyncStripes > 0 && (s.AvgMulticastFanout < 1 || s.MaxMulticastFanout < 1) {
		t.Fatalf("fanout stats inconsistent: %+v", s)
	}
	if s.ModeledPrepSeconds <= 0 || s.ModeledPrepWithIOSeconds <= s.ModeledPrepSeconds {
		t.Fatalf("modeled prep costs inconsistent: %+v", s)
	}
}
