package core

import (
	"errors"
	"math"
	"sync"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/model"
	"twoface/internal/obs"
)

// The async communication scheduler. The per-stripe path (processAsyncStripe)
// issues one GetIndexed per async stripe, paying the ~7.5x per-request
// overhead AlphaA every time even when consecutive stripes live on the same
// owner. This file replaces it (unless Params.LegacyAsyncGets) with an
// owner-batched schedule: consecutive same-owner stripes are grouped into one
// aggregated request whose regions are each stripe's own coalesced region
// list, merged only where exactly contiguous — so the fetched row multiset is
// identical to the per-stripe path's, just carried by far fewer requests. On
// top of the batches sits a per-rank bounded row cache that serves rows
// already fetched by an earlier run on the same Prep and B, dropping them
// from the outgoing region lists entirely.

// Scheduler metrics (inert until obs.Default is enabled; counters are cheap
// unconditional atomics, histograms are guarded at the call sites).
var (
	metricBatchStripes    = obs.Default.Histogram("exec.async.batch_size", obs.ExpBuckets(1, 2, 10))
	metricCacheHits       = obs.Default.Counter("exec.async.cache_hits")
	metricCacheMisses     = obs.Default.Counter("exec.async.cache_misses")
	metricCacheSavedBytes = obs.Default.Counter("exec.async.cache_saved_bytes")
)

// asyncBatch is one aggregated one-sided request: the async stripes with
// indices [lo, hi) in a node's AsyncMatrix, all owned by the same rank.
type asyncBatch struct {
	lo, hi int
	owner  int
}

// buildAsyncSchedule groups a node's async stripe queue into owner-major
// batches. The queue is already owner-major — stripe ids ascend and stripe
// ownership is monotone in the id — so batches are simply maximal runs of
// consecutive same-owner stripes, cut whenever the estimated one-sided
// payload (distinct rows x K x 8 bytes) would exceed maxBatchBytes. Every
// batch holds at least one stripe, so a single oversized stripe still ships.
func buildAsyncSchedule(layout *Layout, np *NodePart, k int, maxBatchBytes int64, dst []asyncBatch) []asyncBatch {
	dst = dst[:0]
	n := np.Async.NumStripes()
	if n == 0 {
		return dst
	}
	cur := asyncBatch{lo: 0, hi: 1, owner: int(layout.StripeOwner(np.Async.StripeIDs[0]))}
	bytes := stripeFetchBytes(np, 0, k)
	for i := 1; i < n; i++ {
		owner := int(layout.StripeOwner(np.Async.StripeIDs[i]))
		sb := stripeFetchBytes(np, i, k)
		if owner == cur.owner && bytes+sb <= maxBatchBytes {
			cur.hi = i + 1
			bytes += sb
			continue
		}
		dst = append(dst, cur)
		cur = asyncBatch{lo: i, hi: i + 1, owner: owner}
		bytes = sb
	}
	return append(dst, cur)
}

// stripeFetchBytes estimates the one-sided payload of async stripe i: its
// distinct referenced columns times one dense row. Gap rows added by region
// coalescing are not counted; the estimate only steers batch boundaries.
func stripeFetchBytes(np *NodePart, i int, k int) int64 {
	entries := np.Async.Entries[np.Async.StripePtr[i]:np.Async.StripePtr[i+1]]
	var rows int64
	prev := int32(-1)
	for _, e := range entries {
		if e.Col != prev {
			rows++
			prev = e.Col
		}
	}
	return rows * int64(k) * 8
}

// asyncBatchEstimate predicts the scheduler's mean stripes-per-get for the
// classifier: the batch cap divided by the mean per-stripe payload, clamped
// to [1, 16] (owner changes and region growth bound real batches well below
// the cap's arithmetic limit). The estimate only shifts the classifier's
// sync/async split point; execution batches whatever the schedule yields.
func asyncBatchEstimate(infos []model.StripeInfo, params Params) float64 {
	if params.LegacyAsyncGets || len(infos) == 0 {
		return 1
	}
	var rows int64
	for _, s := range infos {
		rows += s.RowsNeeded
	}
	if rows == 0 {
		return 1
	}
	meanBytes := float64(rows) / float64(len(infos)) * float64(params.K) * 8
	est := float64(params.MaxBatchBytes) / meanBytes
	if est < 1 {
		return 1
	}
	if est > 16 {
		est = 16
	}
	return est
}

// missMark is the rowRef placeholder for a column that must be fetched.
// Resolved references are >= 0 (a drows row index) or negative (^idx into the
// cached-row copies), so the marker can never collide with either.
const missMark = int32(math.MaxInt32)

// planBatchRegions turns a batch's gathered columns (ws.cols, with per-stripe
// bounds ws.stripeColPtr and cache hits already marked in ws.rowRef) into the
// aggregated request's region list. Each stripe's miss columns are coalesced
// independently with the same maxGap as the per-stripe path, and regions are
// merged across stripe boundaries only when exactly contiguous — both steps
// preserve the fetched row multiset bit-identically, which is what keeps the
// batched path superset-free versus per-stripe fetching (stripes partition
// the column space, so per-stripe fetch sets are disjoint by construction).
// On return ws.regions holds the request and every missMark in ws.rowRef has
// been resolved to its drows row index; the total fetched row count is
// returned.
func planBatchRegions(ws *asyncScratch, maxGap int32, ownerColLo int32, k int) int64 {
	ws.regions = ws.regions[:0]
	base := int64(0)
	for s := 0; s+1 < len(ws.stripeColPtr); s++ {
		lo, hi := ws.stripeColPtr[s], ws.stripeColPtr[s+1]
		ws.missCols = ws.missCols[:0]
		ws.missIdx = ws.missIdx[:0]
		for i := lo; i < hi; i++ {
			if ws.rowRef[i] == missMark {
				ws.missCols = append(ws.missCols, ws.cols[i])
				ws.missIdx = append(ws.missIdx, i)
			}
		}
		if len(ws.missCols) == 0 {
			continue
		}
		var fetched int64
		ws.regions2, ws.bufRow, fetched = coalesceRegionsInto(ws.regions2, ws.bufRow, ws.missCols, maxGap, ownerColLo, k)
		for j, idx := range ws.missIdx {
			ws.rowRef[idx] = int32(base) + ws.bufRow[j]
		}
		for _, reg := range ws.regions2 {
			if n := len(ws.regions); n > 0 && ws.regions[n-1].Off+ws.regions[n-1].Elems == reg.Off {
				ws.regions[n-1].Elems += reg.Elems
			} else {
				ws.regions = append(ws.regions, reg)
			}
		}
		base += fetched
	}
	return base
}

// rowCache is one rank's bounded cache of remote B rows fetched one-sidedly,
// in the epoch-stamped spirit of kernels.RowAccumulator: stamp[col] == epoch
// marks a cached column, slot[col] its row index into data, and invalidation
// is a single epoch bump (with a full stamp clear only on uint32 wraparound).
// Within one Exec no column is ever needed twice — stripes partition the
// column space — so hits come from *reuse across runs* on the same Prep and
// B (GNN training steps, iterative solvers, SpMM+SDDMM pipelines). Fill
// policy is insert-until-full: rows keep their slots until invalidation.
type rowCache struct {
	mu    sync.Mutex
	limit int64 // max float64 elems in data
	epoch uint32
	stamp []uint32
	slot  []int32
	data  []float64

	// Per-run counters, zeroed by beginRun and summed into Result.RowCache.
	hits, misses, savedElems int64
}

func newRowCache(numCols int, limit int64) *rowCache {
	return &rowCache{
		limit: limit,
		epoch: 1,
		stamp: make([]uint32, numCols),
		slot:  make([]int32, numCols),
	}
}

// invalidate drops every cached row in O(1).
func (c *rowCache) invalidate() {
	c.mu.Lock()
	c.epoch++
	if c.epoch == 0 {
		clear(c.stamp)
		c.epoch = 1
	}
	c.data = c.data[:0]
	c.mu.Unlock()
}

func (c *rowCache) beginRun() {
	c.mu.Lock()
	c.hits, c.misses, c.savedElems = 0, 0, 0
	c.mu.Unlock()
}

// RowCacheStats summarizes the remote-row cache's behaviour during one run.
type RowCacheStats struct {
	// Hits counts async columns served from the cache; Misses those fetched.
	Hits, Misses int64
	// SavedBytes is the one-sided payload the hits avoided (Hits x K x 8).
	SavedBytes int64
}

// HitRate returns Hits/(Hits+Misses), or 0 for an idle cache.
func (s RowCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// attachRowCaches returns the per-rank row caches for a run against B,
// creating them on first use and invalidating them whenever B's backing
// array changes — identity first (pointer and length), plus a strided
// content fingerprint that catches the common in-place mutation patterns.
// Returns nil (cache off) under LegacyAsyncGets or a negative RowCacheElems.
func (p *Prep) attachRowCaches(b *dense.Matrix) []*rowCache {
	if p.Params.LegacyAsyncGets || p.Params.RowCacheElems < 0 {
		return nil
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if p.rowCaches == nil {
		p.rowCaches = make([]*rowCache, p.Params.P)
		for i := range p.rowCaches {
			p.rowCaches[i] = newRowCache(int(p.Layout.NumCols), p.Params.RowCacheElems)
		}
	}
	var key *float64
	if len(b.Data) > 0 {
		key = &b.Data[0]
	}
	fp := fingerprint(b.Data)
	if key != p.cacheKey || len(b.Data) != p.cacheLen || fp != p.cacheFP {
		for _, c := range p.rowCaches {
			c.invalidate()
		}
		p.cacheKey, p.cacheLen, p.cacheFP = key, len(b.Data), fp
	}
	for _, c := range p.rowCaches {
		c.beginRun()
	}
	return p.rowCaches
}

// FingerprintData exposes the dense-operand identity hash that keys the
// cross-run row cache (DESIGN.md section 8). It is a sampled heuristic for
// detecting in-place mutation of one caller's buffer; it is NOT collision
// free across distinct operands, so the serving layer's request coalescing
// deliberately does not key on it (see internal/serve/coalesce.go).
func FingerprintData(data []float64) uint64 { return fingerprint(data) }

// fingerprint hashes 16 strided samples of the buffer plus its final
// element — a cheap guard against callers mutating B in place between runs
// on one Plan. The last element is always mixed: the strided loop rarely
// lands on it (only when step divides n-1), and without it a tail-only
// mutation would silently reuse stale cached rows.
func fingerprint(data []float64) uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	n := len(data)
	if n == 0 {
		return h
	}
	step := n / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		h ^= math.Float64bits(data[i])
		h *= 1099511628211 // FNV prime
	}
	if (n-1)%step != 0 {
		h ^= math.Float64bits(data[n-1])
		h *= 1099511628211
	}
	return h
}

// processAsyncBatch fetches and computes one owner-batch of async stripes:
// gather each stripe's distinct columns, serve cache hits locally, coalesce
// the misses into one aggregated GetIndexed, then run the per-stripe
// accumulation kernels against the combined fetch+cache buffers. Modeled
// cost: one OneSidedBatchCost charge for the whole request (AlphaA once),
// the same per-stripe AsyncComputeCost as the per-stripe path, and the same
// SyncFallbackPull degradation — applied per batch — when the retry budget
// runs out.
func processAsyncBatch(prep *Prep, b *dense.Matrix, r *cluster.Rank, np *NodePart, out accumSink, ws *asyncScratch, bt asyncBatch, cache *rowCache, skipCompute bool, smp sampling) error {
	layout, params := prep.Layout, prep.Params
	net := r.Net()
	k := params.K
	ownerBlock := layout.ColBlock(bt.owner)

	// Gather the distinct columns of each stripe, back to back.
	ws.cols = ws.cols[:0]
	ws.stripeColPtr = ws.stripeColPtr[:0]
	for si := bt.lo; si < bt.hi; si++ {
		ws.stripeColPtr = append(ws.stripeColPtr, int32(len(ws.cols)))
		prev := int32(-1)
		for _, e := range np.Async.Entries[np.Async.StripePtr[si]:np.Async.StripePtr[si+1]] {
			if e.Col != prev {
				ws.cols = append(ws.cols, e.Col)
				prev = e.Col
			}
		}
	}
	ws.stripeColPtr = append(ws.stripeColPtr, int32(len(ws.cols)))
	metricAsyncStripes.Add(int64(bt.hi - bt.lo))
	if len(ws.cols) == 0 {
		return nil
	}

	// Serve cached rows: a hit's row is copied out under the lock (the cache
	// may grow concurrently) and its column dropped from the fetch set.
	if cap(ws.rowRef) < len(ws.cols) {
		ws.rowRef = make([]int32, len(ws.cols))
	}
	ws.rowRef = ws.rowRef[:len(ws.cols)]
	ws.crows = ws.crows[:0]
	var hits int64
	if cache != nil {
		cache.mu.Lock()
		for i, col := range ws.cols {
			if cache.stamp[col] == cache.epoch {
				off := int(cache.slot[col]) * k
				ws.rowRef[i] = int32(^(len(ws.crows) / k))
				ws.crows = append(ws.crows, cache.data[off:off+k]...)
				hits++
			} else {
				ws.rowRef[i] = missMark
			}
		}
		cache.mu.Unlock()
	} else {
		for i := range ws.rowRef {
			ws.rowRef[i] = missMark
		}
	}
	misses := int64(len(ws.cols)) - hits

	// Coalesce the misses into the aggregated request and issue it.
	fetchedRows := planBatchRegions(ws, params.MaxCoalesceGap, int32(ownerBlock.Lo), k)
	drows := ws.fetchBuf(int(fetchedRows) * k)
	elems := fetchedRows * int64(k)
	var commCost float64
	if len(ws.regions) > 0 {
		if _, err := r.GetIndexed(bt.owner, "B", ws.regions, drows); err != nil {
			if !errors.Is(err, cluster.ErrRetryExhausted) {
				return err
			}
			// Graceful degradation, per batch: re-fetch the whole aggregated
			// region list through the reliable synchronous path (identical
			// packing, so the compute below is oblivious) and attribute the
			// resend to SyncComm in the Breakdown ledger.
			if _, err := r.SyncFallbackPull(bt.owner, "B", ws.regions, drows); err != nil {
				return err
			}
			commCost = net.MulticastCost(elems, 1)
			r.ChargeOp(cluster.SyncComm, "degrade.refetch", commCost)
			metricDegradations.Inc()
		} else {
			commCost = net.OneSidedBatchCost(len(ws.regions), elems)
			r.ChargeOp(cluster.AsyncComm, "get.indexed", commCost)
		}
	}
	metricCacheHits.Add(hits)
	metricCacheMisses.Add(misses)
	metricCacheSavedBytes.Add(hits * int64(k) * 8)
	if obs.Default.Enabled() {
		metricBatchStripes.Observe(float64(bt.hi - bt.lo))
		metricRegionsPerGet.Observe(float64(len(ws.regions)))
		for _, reg := range ws.regions {
			metricRegionElems.Observe(float64(reg.Elems))
		}
	}

	// Remember the fetched rows (degraded fetches too: the data is identical)
	// and account the run's cache traffic.
	if cache != nil {
		cache.mu.Lock()
		cache.hits += hits
		cache.misses += misses
		cache.savedElems += hits * int64(k)
		for i, col := range ws.cols {
			ref := ws.rowRef[i]
			if ref >= 0 && cache.stamp[col] != cache.epoch && int64(len(cache.data)+k) <= cache.limit {
				cache.stamp[col] = cache.epoch
				cache.slot[col] = int32(len(cache.data) / k)
				cache.data = append(cache.data, drows[int(ref)*k:int(ref)*k+k]...)
			}
		}
		cache.mu.Unlock()
	}

	// Per-stripe accumulation, exactly as the per-stripe path: stripe-local
	// buffer, one atomic AddRange per touched C row, per-stripe AsyncComp
	// charge. The batch's communication cost is spread evenly across its
	// stripes for the stripe-seconds histogram.
	commShare := commCost / float64(bt.hi-bt.lo)
	for si := bt.lo; si < bt.hi; si++ {
		entries := np.Async.Entries[np.Async.StripePtr[si]:np.Async.StripePtr[si+1]]
		if len(entries) == 0 {
			continue
		}
		clo := ws.stripeColPtr[si-bt.lo]
		cols := ws.cols[clo:ws.stripeColPtr[si-bt.lo+1]]
		rowRef := ws.rowRef[clo:]
		if !skipCompute {
			acc := &ws.acc
			acc.Begin(int(np.RowHi-np.RowLo), k)
			ci := 0
			for i := 0; i < len(entries); {
				col := entries[i].Col
				j := i + 1
				for j < len(entries) && entries[j].Col == col {
					j++
				}
				for cols[ci] != col {
					ci++
				}
				var brow []float64
				if ref := rowRef[ci]; ref >= 0 {
					off := int(ref) * k
					brow = drows[off : off+k]
				} else {
					off := int(^ref) * k
					brow = ws.crows[off : off+k]
				}
				accumulateRun(acc, entries[i:j], brow, np.RowLo, smp)
				i = j
			}
			base := int(np.RowLo) * k
			for i, row := range acc.Touched() {
				out.AddRange(base+int(row)*k, acc.Vals(i))
			}
		}
		kept := float64(len(entries)) * smp.computeScale()
		compCost := net.AsyncComputeCost(int64(kept), k, params.ModelAsyncCompThreads, 1)
		r.ChargeOp(cluster.AsyncComp, "compute.async.stripe", compCost)
		metricStripeSeconds.Observe(commShare + compCost)
	}
	return nil
}
