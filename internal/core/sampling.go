package core

// Sampled SpMM support (paper section 5.4): Two-Face's preprocessing is
// incompatible with per-iteration sampling because the reduced matrix
// changes every iteration. The paper's proposed future-work approach is to
// classify once offline on the full matrix and, at runtime, apply masks that
// filter the nonzeros eliminated by the current iteration's sample, leaving
// the storage of Figure 6 and the transfer schedule untouched.
//
// This file implements that approach with deterministic pseudo-random edge
// masks: an entry (row, col) survives iteration `seed` with probability
// `keep`. Transfers are unchanged (the conservative choice the paper
// describes: stripes keep their offline classification and dense stripes
// still move in full), computation skips masked entries, and the modeled
// compute time scales with the expected surviving nonzeros.

// SampleMask reports whether the entry at (row, col) survives the sample
// with the given seed and keep fraction. It is a pure function, so every
// node makes identical decisions without communication.
func SampleMask(row, col int32, seed uint64, keep float64) bool {
	if keep >= 1 {
		return true
	}
	if keep <= 0 {
		return false
	}
	x := uint64(uint32(row))<<32 | uint64(uint32(col))
	x ^= seed + 0x9e3779b97f4a7c15
	// splitmix64 finalizer: well-distributed 64-bit hash.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < keep
}

// sampling bundles the runtime mask configuration.
type sampling struct {
	active bool
	keep   float64
	seed   uint64
}

func (s sampling) masked(row, col int32) bool {
	return s.active && !SampleMask(row, col, s.seed, s.keep)
}

// computeScale is the expected fraction of compute that survives.
func (s sampling) computeScale() float64 {
	if !s.active {
		return 1
	}
	return s.keep
}
