package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

// Distributed SDDMM (paper section 9: "With simple modifications, the
// Two-Face algorithm should also be applicable to ... SDDMM, which exhibits
// very similar patterns to SpMM"). The kernel computes
// C_ij = A_ij * dot(X[i,:], Y[j,:]) over A's nonzeros. Under 1D
// partitioning, X rows are node-local (indexed by A rows, like C in SpMM)
// and Y rows follow A's column structure (indexed like B in SpMM), so the
// communication problem — which Y rows to move, collectively or one-sidedly
// — is *identical* to SpMM's, and an existing SpMM Prep is reused verbatim:
// synchronous stripes multicast whole dense stripes of Y, asynchronous
// stripes fetch individual Y rows. Unlike SpMM, output entries are
// independent, so no atomics are needed.

// SDDMMResult is the outcome of one distributed SDDMM.
type SDDMMResult struct {
	// C holds A's sparsity structure with sampled values, sorted row-major.
	C *sparse.COO
	// Breakdowns and ModeledSeconds mirror core.Result.
	Breakdowns     []cluster.Breakdown
	ModeledSeconds float64
	Wall           time.Duration
	// Transfer and TotalTransfer mirror core.Result's per-rank counters.
	Transfer      []cluster.TransferStats
	TotalTransfer cluster.TransferStats
}

// ExecSDDMM runs distributed SDDMM using an SpMM preprocessing plan. X must
// be NumRows x K, Y must be NumCols x K with K = prep.Params.K.
func ExecSDDMM(prep *Prep, x, y *dense.Matrix, clu *cluster.Cluster, opts ExecOptions) (*SDDMMResult, error) {
	params := prep.Params
	if x.Rows != int(prep.Layout.NumRows) || x.Cols != params.K {
		return nil, fmt.Errorf("core: X is %dx%d, want %dx%d", x.Rows, x.Cols, prep.Layout.NumRows, params.K)
	}
	if y.Rows != int(prep.Layout.NumCols) || y.Cols != params.K {
		return nil, fmt.Errorf("core: Y is %dx%d, want %dx%d", y.Rows, y.Cols, prep.Layout.NumCols, params.K)
	}
	if clu.P() != params.P {
		return nil, fmt.Errorf("core: cluster has %d nodes, prep expects %d", clu.P(), params.P)
	}
	opts = opts.normalize()
	clu.Reset()

	parts := make([][]sparse.NZ, params.P)
	start := time.Now()
	runErr := clu.Run(func(r *cluster.Rank) error {
		out, err := sddmmNode(prep, x, y, r, opts)
		if err != nil {
			return err
		}
		parts[r.ID] = out
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	wall := time.Since(start)

	c := &sparse.COO{NumRows: prep.Layout.NumRows, NumCols: prep.Layout.NumCols}
	for _, p := range parts {
		c.Entries = append(c.Entries, p...)
	}
	c.SortRowMajor()
	return &SDDMMResult{
		C:              c,
		Breakdowns:     clu.Breakdowns(),
		ModeledSeconds: clu.TotalTime(),
		Wall:           wall,
		Transfer:       clu.TransferStats(),
		TotalTransfer:  clu.TotalTransfer(),
	}, nil
}

// sddmmNode mirrors execNode with the SpMM accumulation replaced by
// per-entry dot products.
func sddmmNode(prep *Prep, x, y *dense.Matrix, r *cluster.Rank, opts ExecOptions) ([]sparse.NZ, error) {
	layout, params := prep.Layout, prep.Params
	net := r.Net()
	np := &prep.Nodes[r.ID]
	k := params.K

	colBlock := layout.ColBlock(r.ID)
	r.Expose("Y", y.RowRange(colBlock.Lo, colBlock.Hi))
	if err := r.Barrier(); err != nil {
		return nil, err
	}

	rooted := 0
	lo, hi := layout.NodeStripeRange(r.ID)
	for sid := lo; sid < hi; sid++ {
		if len(prep.Dests[sid]) > 0 {
			rooted++
		}
	}
	r.ChargeOp(cluster.Other, "setup", net.SetupBase+net.SetupPerStripe*float64(len(np.RecvStripes)+np.Async.NumStripes()+rooted))

	out := make([]sparse.NZ, 0, len(np.Sync.Entries)+len(np.Async.Entries))
	var outMu sync.Mutex
	emit := func(batch []sparse.NZ) {
		outMu.Lock()
		out = append(out, batch...)
		outMu.Unlock()
	}

	recvBufs := make([][]float64, layout.NumStripes())
	syncReady := make(chan error, 1)
	var wg sync.WaitGroup

	// Thread 0: synchronous dense-stripe transfers of Y (identical plan to
	// SpMM's transfers of B).
	wg.Add(1)
	go func() {
		defer wg.Done()
		syncReady <- sddmmSyncTransfers(prep, r, np, recvBufs, k)
		close(syncReady)
	}()

	// Async threads: fetch Y rows per stripe, then sample dot products.
	var asyncErr error
	var asyncMu sync.Mutex
	var asyncCursor atomic.Int64
	nAsync := int64(np.Async.NumStripes())
	wg.Add(opts.AsyncWorkers)
	for w := 0; w < opts.AsyncWorkers; w++ {
		go func() {
			defer wg.Done()
			for {
				n := asyncCursor.Add(1) - 1
				if n >= nAsync {
					return
				}
				batch, err := sddmmAsyncStripe(prep, x, r, np, int(n), opts.SkipCompute)
				if err != nil {
					asyncMu.Lock()
					if asyncErr == nil {
						asyncErr = err
					}
					asyncMu.Unlock()
					return
				}
				emit(batch)
			}
		}()
	}

	if err := <-syncReady; err != nil {
		wg.Wait()
		return nil, err
	}
	resolver := makeSDDMMResolver(prep, y, r.ID, recvBufs, k)
	var panelCursor atomic.Int64
	nPanels := int64(np.Sync.NumPanels())
	var panelWg sync.WaitGroup
	var panelErr error
	var panelMu sync.Mutex
	panelWg.Add(opts.SyncWorkers)
	for w := 0; w < opts.SyncWorkers; w++ {
		go func() {
			defer panelWg.Done()
			for {
				n := panelCursor.Add(1) - 1
				if n >= nPanels {
					return
				}
				batch, err := sddmmSyncPanel(prep, x, r, np, resolver, int(n), opts.SkipCompute)
				if err != nil {
					panelMu.Lock()
					if panelErr == nil {
						panelErr = err
					}
					panelMu.Unlock()
					return
				}
				emit(batch)
			}
		}()
	}
	panelWg.Wait()
	wg.Wait()
	if asyncErr != nil {
		return nil, asyncErr
	}
	if panelErr != nil {
		return nil, panelErr
	}
	if err := r.Barrier(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}

func sddmmSyncTransfers(prep *Prep, r *cluster.Rank, np *NodePart, recvBufs [][]float64, k int) error {
	layout := prep.Layout
	net := r.Net()
	lo, hi := layout.NodeStripeRange(r.ID)
	for sid := lo; sid < hi; sid++ {
		if n := len(prep.Dests[sid]); n > 0 {
			elems := int64(layout.StripeWidthOf(sid)) * int64(k)
			r.ChargeOp(cluster.SyncComm, "multicast.root", net.MulticastCost(elems, n))
		}
	}
	for _, sid := range np.RecvStripes {
		colLo, colHi := layout.StripeCols(sid)
		owner := layout.StripeOwner(sid)
		ownerBlock := layout.ColBlock(owner)
		elems := int64(colHi-colLo) * int64(k)
		buf := make([]float64, elems)
		off := int64(colLo-int32(ownerBlock.Lo)) * int64(k)
		if _, err := r.MulticastPull(owner, "Y", off, elems, buf); err != nil {
			return err
		}
		recvBufs[sid] = buf
		r.ChargeOp(cluster.SyncComm, "multicast.recv", net.MulticastCost(elems, len(prep.Dests[sid])))
	}
	return nil
}

func sddmmAsyncStripe(prep *Prep, x *dense.Matrix, r *cluster.Rank, np *NodePart, n int, skipCompute bool) ([]sparse.NZ, error) {
	layout, params := prep.Layout, prep.Params
	net := r.Net()
	k := params.K
	entries := np.Async.Entries[np.Async.StripePtr[n]:np.Async.StripePtr[n+1]]
	if len(entries) == 0 {
		return nil, nil
	}
	sid := np.Async.StripeIDs[n]
	owner := layout.StripeOwner(sid)
	ownerBlock := layout.ColBlock(owner)

	cols := uniqueCols(entries)
	regions, bufRow, fetchedRows := coalesceRegions(cols, params.MaxCoalesceGap, int32(ownerBlock.Lo), k)
	yrows := make([]float64, fetchedRows*int64(k))
	if _, err := r.GetIndexed(owner, "Y", regions, yrows); err != nil {
		return nil, err
	}
	r.ChargeOp(cluster.AsyncComm, "get.indexed", net.OneSidedCost(len(regions), fetchedRows*int64(k)))

	var out []sparse.NZ
	if !skipCompute {
		out = make([]sparse.NZ, len(entries))
		ci := 0
		for i, e := range entries {
			for cols[ci] != e.Col {
				ci++
			}
			yrow := yrows[int(bufRow[ci])*k : (int(bufRow[ci])+1)*k]
			xrow := x.Row(int(np.RowLo + e.Row))
			out[i] = sparse.NZ{Row: np.RowLo + e.Row, Col: e.Col, Val: e.Val * dotProduct(xrow, yrow)}
		}
	}
	r.ChargeOp(cluster.AsyncComp, "compute.async.stripe", net.AsyncComputeCost(int64(len(entries)), k, params.ModelAsyncCompThreads, 1))
	return out, nil
}

func sddmmSyncPanel(prep *Prep, x *dense.Matrix, r *cluster.Rank, np *NodePart, resolve rowResolver, n int, skipCompute bool) ([]sparse.NZ, error) {
	params := prep.Params
	net := r.Net()
	k := params.K
	panel := np.Sync.Entries[np.Sync.PanelPtr[n]:np.Sync.PanelPtr[n+1]]
	if len(panel) == 0 {
		return nil, nil
	}
	var out []sparse.NZ
	if !skipCompute {
		out = make([]sparse.NZ, len(panel))
		for i, e := range panel {
			yrow, err := resolve(e.Col)
			if err != nil {
				return nil, err
			}
			xrow := x.Row(int(np.RowLo + e.Row))
			out[i] = sparse.NZ{Row: np.RowLo + e.Row, Col: e.Col, Val: e.Val * dotProduct(xrow, yrow)}
		}
	}
	r.ChargeOp(cluster.SyncComp, "compute.sync.panel", net.SyncComputeCost(int64(len(panel)), k, params.ModelSyncThreads))
	return out, nil
}

// makeSDDMMResolver is makeRowResolver over Y instead of B.
func makeSDDMMResolver(prep *Prep, y *dense.Matrix, rank int, recvBufs [][]float64, k int) rowResolver {
	layout := prep.Layout
	own := layout.ColBlock(rank)
	return func(col int32) ([]float64, error) {
		if own.Contains(int(col)) {
			return y.Row(int(col)), nil
		}
		sid := layout.StripeOfCol(col)
		buf := recvBufs[sid]
		if buf == nil {
			return nil, fmt.Errorf("core: rank %d: dense stripe %d for column %d was never received", rank, sid, col)
		}
		colLo, _ := layout.StripeCols(sid)
		off := int(col-colLo) * k
		return buf[off : off+k], nil
	}
}

func dotProduct(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
