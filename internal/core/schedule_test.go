package core

import (
	"math"
	"testing"
	"testing/quick"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/model"
	"twoface/internal/sparse"
)

// forcedPrep preprocesses with a pinned sync/async split so the legacy and
// batched paths classify identically (the batched classifier otherwise
// amortizes AlphaA and shifts the split point).
func forcedPrep(t *testing.T, a *sparse.COO, params Params, frac float64) *Prep {
	t.Helper()
	params.ForceSplit = &frac
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

func TestBuildAsyncScheduleProperties(t *testing.T) {
	a := randomCOO(240, 240, 6000, 11)
	prep := forcedPrep(t, a, basicParams(4, 8, 8), 1.0) // everything async
	layout := prep.Layout
	k := prep.Params.K
	for _, maxBytes := range []int64{1, 4 << 10, 1 << 20} {
		for ni := range prep.Nodes {
			np := &prep.Nodes[ni]
			batches := buildAsyncSchedule(layout, np, k, maxBytes, nil)
			n := np.Async.NumStripes()
			if n == 0 {
				if len(batches) != 0 {
					t.Fatalf("node %d: batches for empty queue", ni)
				}
				continue
			}
			// Batches tile [0, n) contiguously.
			next := 0
			for _, bt := range batches {
				if bt.lo != next || bt.hi <= bt.lo {
					t.Fatalf("node %d cap %d: batch %+v does not tile (want lo %d)", ni, maxBytes, bt, next)
				}
				next = bt.hi
				// Every stripe in the batch has the batch's owner.
				for s := bt.lo; s < bt.hi; s++ {
					if int(layout.StripeOwner(np.Async.StripeIDs[s])) != bt.owner {
						t.Fatalf("node %d: stripe %d owner mismatch in batch %+v", ni, s, bt)
					}
				}
				// Multi-stripe batches respect the byte cap.
				if bt.hi-bt.lo > 1 {
					var bytes int64
					for s := bt.lo; s < bt.hi; s++ {
						bytes += stripeFetchBytes(np, s, k)
					}
					if bytes > maxBytes {
						t.Fatalf("node %d: batch %+v carries %d bytes > cap %d", ni, bt, bytes, maxBytes)
					}
				}
			}
			if next != n {
				t.Fatalf("node %d: batches cover %d of %d stripes", ni, next, n)
			}
		}
	}
}

func TestBuildAsyncScheduleTinyCapSingletons(t *testing.T) {
	a := randomCOO(200, 200, 4000, 3)
	prep := forcedPrep(t, a, basicParams(4, 8, 8), 1.0)
	for ni := range prep.Nodes {
		np := &prep.Nodes[ni]
		batches := buildAsyncSchedule(prep.Layout, np, prep.Params.K, 1, nil)
		for _, bt := range batches {
			if bt.hi-bt.lo != 1 {
				t.Fatalf("node %d: cap 1 byte must force singleton batches, got %+v", ni, bt)
			}
		}
	}
}

// expandRegions lists the global B rows a region list fetches, in fill order.
func expandRegions(regions []cluster.Region, ownerColLo int32, k int) []int32 {
	var rows []int32
	for _, r := range regions {
		start := ownerColLo + int32(r.Off/int64(k))
		for i := int64(0); i < r.Elems/int64(k); i++ {
			rows = append(rows, start+int32(i))
		}
	}
	return rows
}

// TestPlanBatchRegionsMatchesPerStripe is the satellite property test: for
// every batch, the aggregated request must fetch exactly the rows the
// per-stripe path fetches — same multiset, same fill order — and resolve
// every column to its own row.
func TestPlanBatchRegionsMatchesPerStripe(t *testing.T) {
	f := func(seed uint64, gapRaw uint8) bool {
		gap := int32(gapRaw%4) + 1
		a := randomCOO(160, 160, 3000, seed)
		params := basicParams(4, 4, 8)
		frac := 1.0
		params.ForceSplit = &frac
		prep, err := Preprocess(a, params)
		if err != nil {
			return false
		}
		k := prep.Params.K
		ws := new(asyncScratch)
		for ni := range prep.Nodes {
			np := &prep.Nodes[ni]
			for _, bt := range buildAsyncSchedule(prep.Layout, np, k, 8<<10, nil) {
				ownerColLo := int32(prep.Layout.ColBlock(bt.owner).Lo)
				// Gather like processAsyncBatch, with no cache (all misses).
				ws.cols = ws.cols[:0]
				ws.stripeColPtr = ws.stripeColPtr[:0]
				var want []int32 // per-stripe path's fetched rows, concatenated
				for s := bt.lo; s < bt.hi; s++ {
					ws.stripeColPtr = append(ws.stripeColPtr, int32(len(ws.cols)))
					entries := np.Async.Entries[np.Async.StripePtr[s]:np.Async.StripePtr[s+1]]
					ws.cols = appendUniqueCols2(ws.cols, entries)
					regs, _, _ := coalesceRegions(uniqueCols(entries), gap, ownerColLo, k)
					want = append(want, expandRegions(regs, ownerColLo, k)...)
				}
				ws.stripeColPtr = append(ws.stripeColPtr, int32(len(ws.cols)))
				if cap(ws.rowRef) < len(ws.cols) {
					ws.rowRef = make([]int32, len(ws.cols))
				}
				ws.rowRef = ws.rowRef[:len(ws.cols)]
				for i := range ws.rowRef {
					ws.rowRef[i] = missMark
				}
				fetched := planBatchRegions(ws, gap, ownerColLo, k)

				got := expandRegions(ws.regions, ownerColLo, k)
				if int64(len(got)) != fetched || len(got) != len(want) {
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
				for i, col := range ws.cols {
					ref := ws.rowRef[i]
					if ref < 0 || int(ref) >= len(got) || got[ref] != col {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// appendUniqueCols2 appends (rather than resets) the distinct columns of a
// column-major entry slice — the batch gather of processAsyncBatch.
func appendUniqueCols2(dst []int32, entries []sparse.NZ) []int32 {
	prev := int32(-1)
	for _, e := range entries {
		if e.Col != prev {
			dst = append(dst, e.Col)
			prev = e.Col
		}
	}
	return dst
}

func TestRowCacheInvalidateWraparound(t *testing.T) {
	c := newRowCache(8, 1<<10)
	c.epoch = math.MaxUint32
	for i := range c.stamp {
		c.stamp[i] = math.MaxUint32 // everything cached at the last epoch
	}
	c.data = append(c.data, 1, 2, 3)
	c.invalidate()
	if c.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", c.epoch)
	}
	if len(c.data) != 0 {
		t.Fatal("invalidate must drop cached rows")
	}
	for i, s := range c.stamp {
		if s == c.epoch {
			t.Fatalf("stamp[%d] still matches the epoch after wraparound", i)
		}
	}
}

func TestAttachRowCachesLifecycle(t *testing.T) {
	a := randomCOO(120, 120, 2000, 9)
	params := basicParams(4, 8, 8)
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	b := dense.Random(120, 8, 1)
	caches := prep.attachRowCaches(b)
	if len(caches) != 4 {
		t.Fatalf("got %d caches, want one per rank", len(caches))
	}
	epoch0 := caches[0].epoch

	// Same B again: no invalidation.
	if again := prep.attachRowCaches(b); again[0].epoch != epoch0 {
		t.Fatal("same B must not invalidate the caches")
	}
	// Different B buffer: invalidated.
	if other := prep.attachRowCaches(dense.Random(120, 8, 2)); other[0].epoch == epoch0 {
		t.Fatal("a different B must invalidate the caches")
	}
	// In-place mutation of the same buffer: the fingerprint catches it.
	epoch1 := caches[0].epoch
	for i := range b.Data {
		b.Data[i] += 1
	}
	if mut := prep.attachRowCaches(b); mut[0].epoch == epoch1 {
		t.Fatal("mutating B in place must invalidate the caches")
	}

	// The toggles disable the cache entirely.
	params.LegacyAsyncGets = true
	legacyPrep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	if legacyPrep.attachRowCaches(b) != nil {
		t.Fatal("LegacyAsyncGets must disable the row cache")
	}
	params.LegacyAsyncGets = false
	params.RowCacheElems = -1
	offPrep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	if offPrep.attachRowCaches(b) != nil {
		t.Fatal("RowCacheElems < 0 must disable the row cache")
	}
}

func TestRowCacheRespectsLimit(t *testing.T) {
	a := randomCOO(200, 200, 5000, 21)
	params := basicParams(4, 8, 8)
	params.RowCacheElems = 4 * 8 // room for 4 rows per rank
	prep := forcedPrep(t, a, params, 1.0)
	b := dense.Random(200, 8, 3)
	clu, _ := cluster.New(4, cluster.Default())
	if _, err := Exec(prep, b, clu, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, c := range prep.rowCaches {
		if int64(len(c.data)) > c.limit {
			t.Fatalf("rank %d cache holds %d elems, limit %d", i, len(c.data), c.limit)
		}
	}
	// A second run still computes correctly with a mostly-cold cache.
	res, err := Exec(prep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.ToCSR().Mul(b)
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("bounded cache changed the result")
	}
	if res.RowCache.Misses == 0 {
		t.Fatal("a 4-row cache cannot serve every row of this workload")
	}
}

// TestExecBatchedMatchesLegacy is the headline equivalence check: with the
// classification pinned, the batched path must move exactly the bytes the
// legacy path moves (cold cache), in strictly fewer requests, and produce the
// same C; a warm second run must then move strictly fewer bytes, again with
// the same C.
func TestExecBatchedMatchesLegacy(t *testing.T) {
	a := randomCOO(320, 320, 9000, 13)
	b := dense.Random(320, 8, 7)
	want, _ := a.ToCSR().Mul(b)

	legacyParams := basicParams(4, 8, 8)
	legacyParams.LegacyAsyncGets = true
	legacyPrep := forcedPrep(t, a, legacyParams, 0.5)
	clu, _ := cluster.New(4, cluster.Default())
	legacy, err := Exec(legacyPrep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lt := legacy.TotalTransfer

	batchedPrep := forcedPrep(t, a, basicParams(4, 8, 8), 0.5)
	cold, err := Exec(batchedPrep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ct := cold.TotalTransfer

	if !legacy.C.AlmostEqual(want, 1e-9) || !cold.C.AlmostEqual(want, 1e-9) {
		t.Fatal("a path diverged from the reference kernel")
	}
	if lt.OneSidedGets == 0 {
		t.Fatal("test workload has no async stripes; widen it")
	}
	if ct.OneSidedBytes != lt.OneSidedBytes {
		t.Fatalf("cold batched bytes %d != legacy bytes %d (fetch sets must be identical)", ct.OneSidedBytes, lt.OneSidedBytes)
	}
	if ct.OneSidedGets >= lt.OneSidedGets {
		t.Fatalf("batched gets %d not fewer than legacy %d", ct.OneSidedGets, lt.OneSidedGets)
	}
	if ct.OneSidedMsgs > lt.OneSidedMsgs {
		t.Fatalf("batched regions %d exceed legacy %d", ct.OneSidedMsgs, lt.OneSidedMsgs)
	}
	// Legacy accounting: one get per async stripe fetch.
	if cold.RowCache.Hits != 0 {
		t.Fatalf("cold run had %d cache hits", cold.RowCache.Hits)
	}

	warm, err := Exec(batchedPrep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wt := warm.TotalTransfer
	if !warm.C.AlmostEqual(want, 1e-9) {
		t.Fatal("warm run diverged from the reference kernel")
	}
	if warm.RowCache.Hits == 0 {
		t.Fatal("warm run on the same Prep and B must hit the cache")
	}
	if wt.OneSidedBytes >= ct.OneSidedBytes {
		t.Fatalf("warm bytes %d not below cold %d", wt.OneSidedBytes, ct.OneSidedBytes)
	}
	if warm.RowCache.SavedBytes != warm.RowCache.Hits*8*int64(batchedPrep.Params.K) {
		t.Fatalf("SavedBytes %d inconsistent with %d hits", warm.RowCache.SavedBytes, warm.RowCache.Hits)
	}
}

func TestAsyncBatchEstimate(t *testing.T) {
	params, err := basicParams(4, 8, 8).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rows int64) []model.StripeInfo {
		return []model.StripeInfo{{NNZ: 10, RowsNeeded: rows}}
	}
	legacy := params
	legacy.LegacyAsyncGets = true
	if got := asyncBatchEstimate(mk(100), legacy); got != 1 {
		t.Fatalf("legacy estimate = %v, want 1", got)
	}
	if got := asyncBatchEstimate(nil, params); got != 1 {
		t.Fatalf("empty estimate = %v, want 1", got)
	}
	// Huge stripes: no batching headroom.
	if got := asyncBatchEstimate(mk(params.MaxBatchBytes/(8*8)+1), params); got != 1 {
		t.Fatalf("oversized stripes estimate = %v, want 1", got)
	}
	// Tiny stripes: clamped at 16.
	if got := asyncBatchEstimate(mk(1), params); got != 16 {
		t.Fatalf("tiny stripes estimate = %v, want clamp at 16", got)
	}
}

func TestCoalesceGapBoundaries(t *testing.T) {
	const k = 4
	// maxGap 0: even adjacent columns stay separate regions.
	regions, _, fetched := coalesceRegions([]int32{2, 3, 4}, 0, 0, k)
	if len(regions) != 3 || fetched != 3 {
		t.Fatalf("maxGap 0: %d regions, %d rows; want 3 and 3", len(regions), fetched)
	}
	// Gap exactly equal to maxGap merges (and fetches the gap rows).
	regions, _, fetched = coalesceRegions([]int32{2, 5}, 3, 0, k)
	if len(regions) != 1 || fetched != 4 {
		t.Fatalf("gap == maxGap: %d regions, %d rows; want 1 and 4", len(regions), fetched)
	}
	// One past maxGap does not.
	regions, _, fetched = coalesceRegions([]int32{2, 6}, 3, 0, k)
	if len(regions) != 2 || fetched != 2 {
		t.Fatalf("gap == maxGap+1: %d regions, %d rows; want 2 and 2", len(regions), fetched)
	}
}
