package core

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutValidation(t *testing.T) {
	cases := []struct {
		rows, cols int32
		p          int
		w          int32
	}{
		{0, 10, 2, 4}, {10, 0, 2, 4}, {10, 10, 0, 4}, {10, 10, 2, 0}, {10, 4, 8, 2},
	}
	for i, c := range cases {
		if _, err := NewLayout(c.rows, c.cols, c.p, c.w); err == nil {
			t.Fatalf("case %d should fail: %+v", i, c)
		}
	}
	if _, err := NewLayout(100, 100, 4, 8); err != nil {
		t.Fatal(err)
	}
}

func TestStripeEnumeration(t *testing.T) {
	// 100 columns, 4 nodes -> blocks of 25 columns, W=8 -> ceil(25/8)=4
	// stripes per node, 16 total.
	l, err := NewLayout(100, 100, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStripes() != 16 {
		t.Fatalf("NumStripes = %d, want 16", l.NumStripes())
	}
	// First stripe of node 1 starts at column 25.
	lo, hi := l.StripeCols(4)
	if lo != 25 || hi != 33 {
		t.Fatalf("stripe 4 covers [%d,%d), want [25,33)", lo, hi)
	}
	// Last stripe of node 0 is ragged: columns 24..25.
	lo, hi = l.StripeCols(3)
	if lo != 24 || hi != 25 {
		t.Fatalf("stripe 3 covers [%d,%d), want [24,25)", lo, hi)
	}
	if l.StripeWidthOf(3) != 1 {
		t.Fatalf("ragged stripe width = %d", l.StripeWidthOf(3))
	}
}

func TestStripeColRoundtrip(t *testing.T) {
	f := func(colsRaw uint16, pRaw, wRaw uint8, cRaw uint32) bool {
		cols := int32(colsRaw)%3000 + 1
		p := int(pRaw)%8 + 1
		if int32(p) > cols {
			p = int(cols)
		}
		w := int32(wRaw)%64 + 1
		l, err := NewLayout(cols, cols, p, w)
		if err != nil {
			return false
		}
		c := int32(cRaw % uint32(cols))
		sid := l.StripeOfCol(c)
		lo, hi := l.StripeCols(sid)
		if c < lo || c >= hi {
			return false
		}
		// The stripe's owner must own column c too.
		return l.StripeOwner(sid) == l.ColOwner(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStripesPartitionColumns(t *testing.T) {
	// Every column belongs to exactly one stripe and stripes tile the
	// column space in order.
	l, err := NewLayout(50, 97, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	prevSid := int32(-1)
	covered := int32(0)
	for sid := int32(0); sid < l.NumStripes(); sid++ {
		lo, hi := l.StripeCols(sid)
		if hi <= lo {
			t.Fatalf("stripe %d empty: [%d,%d)", sid, lo, hi)
		}
		if sid != prevSid+1 {
			t.Fatalf("stripe ids not consecutive")
		}
		for c := lo; c < hi; c++ {
			if l.StripeOfCol(c) != sid {
				t.Fatalf("column %d maps to stripe %d, not %d", c, l.StripeOfCol(c), sid)
			}
		}
		covered += hi - lo
		prevSid = sid
	}
	if covered != 97 {
		t.Fatalf("stripes cover %d columns, want 97", covered)
	}
}

func TestStripeIDsMonotoneInColumn(t *testing.T) {
	l, err := NewLayout(64, 640, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(0)
	for c := int32(0); c < 640; c++ {
		sid := l.StripeOfCol(c)
		if sid < prev {
			t.Fatalf("stripe id decreased at column %d", c)
		}
		prev = sid
	}
}

func TestNodeStripeRange(t *testing.T) {
	l, err := NewLayout(40, 40, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for j := 0; j < 4; j++ {
		lo, hi := l.NodeStripeRange(j)
		if lo != total {
			t.Fatalf("node %d stripe range starts at %d, want %d", j, lo, total)
		}
		for sid := lo; sid < hi; sid++ {
			if l.StripeOwner(sid) != j {
				t.Fatalf("stripe %d owner = %d, want %d", sid, l.StripeOwner(sid), j)
			}
		}
		total = hi
	}
	if total != l.NumStripes() {
		t.Fatalf("ranges cover %d stripes of %d", total, l.NumStripes())
	}
}

func TestStripeOwnerPanicsOutOfRange(t *testing.T) {
	l, _ := NewLayout(10, 10, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stripe id should panic")
		}
	}()
	l.StripeOwner(l.NumStripes())
}

func TestSingleNodeLayout(t *testing.T) {
	l, err := NewLayout(10, 10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStripes() != 3 {
		t.Fatalf("NumStripes = %d, want 3", l.NumStripes())
	}
	if l.StripeOwner(2) != 0 {
		t.Fatal("single node owns everything")
	}
}

func TestWidthLargerThanBlock(t *testing.T) {
	// W larger than a node's column block: one stripe per megatile column.
	l, err := NewLayout(16, 16, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStripes() != 4 {
		t.Fatalf("NumStripes = %d, want 4", l.NumStripes())
	}
	lo, hi := l.StripeCols(1)
	if lo != 4 || hi != 8 {
		t.Fatalf("stripe 1 = [%d,%d), want [4,8)", lo, hi)
	}
}
