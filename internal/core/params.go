package core

import (
	"fmt"

	"twoface/internal/cluster"
	"twoface/internal/model"
)

// Params configures preprocessing and execution of Two-Face. Zero values are
// replaced by the paper's defaults (Tables 2 and 3) in Normalize.
type Params struct {
	P int   // nodes; required
	K int   // dense matrix columns; required
	W int32 // sparse stripe width; required (Table 1 scales it with the matrix)

	// RowPanelHeight is the height (rows) of the synchronous row panels,
	// the unit of work for sync compute threads. Table 2 default: 32.
	RowPanelHeight int32

	// Coef are the preprocessing-model coefficients used for stripe
	// classification. Default: model.PaperDefaults (Table 3).
	Coef model.Coefficients

	// MemBudgetElems caps the per-node dense receive buffer, in float64
	// elements. If the classification would exceed it, additional stripes
	// are flipped to asynchronous (section 6.3). It also bounds the
	// replication buffers of the baseline algorithms, whose whole-block
	// strategies fail outright when over budget. The default, 48 Mi
	// elements, corresponds to the paper's 256 GiB nodes at this
	// repository's 1/512 evaluation scale.
	MemBudgetElems int64

	// ForceSplit, when non-nil, bypasses the cost model: the given fraction
	// of each node's remote stripes (cheapest z first) is classified
	// asynchronous. 1.0 reproduces the Async Fine-Grained baseline; values
	// in between generate the forced configurations of the calibration step
	// (section 6.2).
	ForceSplit *float64

	// MaxCoalesceGap merges one-sided fetches of dense rows a < b whenever
	// b-a <= MaxCoalesceGap, fetching up to MaxCoalesceGap-1 useless rows to
	// save per-region overhead (section 5.2.3). 0 means the Table 2
	// default, 127/K + 1. 1 merges only adjacent rows.
	MaxCoalesceGap int32

	// MaxBatchBytes caps the estimated payload of one aggregated one-sided
	// get: the async scheduler batches the coalesced regions of consecutive
	// same-owner stripes into a single GetIndexed until the next stripe would
	// push the batch past this many bytes, keeping individual requests small
	// enough that virtual-time communication still overlaps compute. 0 means
	// the default, 1 MiB. Every batch holds at least one stripe, so a tiny
	// cap degenerates to the per-stripe schedule without breaking anything.
	MaxBatchBytes int64

	// LegacyAsyncGets is the fidelity toggle for paper-figure reproduction:
	// it restores the seed per-stripe async path — one GetIndexed per async
	// stripe, per-request AlphaA accounting via NetModel.OneSidedCost, no
	// request batching and no remote-row cache.
	LegacyAsyncGets bool

	// RowCacheElems bounds the per-rank remote-row cache, in float64
	// elements. Rows fetched one-sidedly are kept (up to this bound) and
	// served locally when a later Exec on the same Prep and same B needs
	// them again, dropping them from the outgoing region lists. 0 means the
	// default, 1 Mi elements (8 MiB) per rank; negative disables the cache.
	// The cache keys on the identity of B's backing array and is invalidated
	// whenever it changes; callers that mutate B in place between runs must
	// disable the cache (see DESIGN.md section 8).
	RowCacheElems int64

	// ModelSyncThreads and ModelAsyncCompThreads are the per-node thread
	// counts assumed by the virtual-time model (Table 2 defaults: 120 and
	// 8). They parameterize the compute-cost terms; actual goroutine
	// parallelism is an ExecOptions concern.
	ModelSyncThreads      int
	ModelAsyncCompThreads int

	// Classifier selects the stripe-classification strategy. The default is
	// the paper's cost-model balancer (section 4.2); ClassifierColumn is the
	// alternative the paper leaves as future work: classify a stripe
	// synchronous when its dense stripe is needed by many nodes, so
	// multicasts are reserved for widely shared data.
	Classifier Classifier
	// ColumnSyncThreshold is the needer count at or above which the column
	// classifier marks a stripe synchronous. 0 means max(2, P/4).
	ColumnSyncThreshold int

	// BalanceRows replaces the paper's equal row blocks with boundaries that
	// equalize nonzeros per node — an extension targeting the load imbalance
	// the paper reports for mawi (section 7.2). B's distribution is
	// unchanged, so only A/C ownership shifts.
	BalanceRows bool

	// DisableRowReorder turns off the prep-time reordering of rows within
	// each synchronous row panel. By default rows are grouped by the set of
	// dense stripes their columns touch (a 64-bit stripe signature), so the
	// panel kernel's consecutive row runs reuse cache-hot B rows. Each row's
	// nonzeros stay contiguous and column-sorted, so every per-row panel sum
	// is bit-identical either way; only the panel-internal row visit order
	// changes, which perturbs C by at most the same flush-order
	// reassociation concurrent execution already exhibits run to run.
	DisableRowReorder bool
}

// Classifier selects how remote stripes are split into sync/async.
type Classifier int

// Classifier strategies.
const (
	// ClassifierModel is the paper's section 4.2 cost-model balancer.
	ClassifierModel Classifier = iota
	// ClassifierColumn is the column-popularity heuristic of the paper's
	// future-work discussion: dense stripes needed by many nodes are served
	// collectively, all others one-sidedly.
	ClassifierColumn
)

// Normalize fills defaulted fields and validates the result.
func (p Params) Normalize() (Params, error) {
	if p.P < 1 {
		return p, fmt.Errorf("core: Params.P must be >= 1, got %d", p.P)
	}
	if p.K < 1 {
		return p, fmt.Errorf("core: Params.K must be >= 1, got %d", p.K)
	}
	if p.W < 1 {
		return p, fmt.Errorf("core: Params.W must be >= 1, got %d", p.W)
	}
	if p.RowPanelHeight == 0 {
		p.RowPanelHeight = 32
	}
	if p.RowPanelHeight < 1 {
		return p, fmt.Errorf("core: Params.RowPanelHeight must be >= 1, got %d", p.RowPanelHeight)
	}
	if p.Coef == (model.Coefficients{}) {
		p.Coef = model.PaperDefaults()
	}
	if err := p.Coef.Validate(); err != nil {
		return p, err
	}
	if p.MemBudgetElems == 0 {
		p.MemBudgetElems = 48 << 20
	}
	if p.MemBudgetElems < int64(p.W)*int64(p.K) {
		return p, fmt.Errorf("core: memory budget %d below one dense stripe (%d elems)", p.MemBudgetElems, int64(p.W)*int64(p.K))
	}
	if p.ForceSplit != nil && (*p.ForceSplit < 0 || *p.ForceSplit > 1) {
		return p, fmt.Errorf("core: ForceSplit %v outside [0,1]", *p.ForceSplit)
	}
	if p.MaxCoalesceGap == 0 {
		p.MaxCoalesceGap = int32(127/p.K) + 1
	}
	if p.MaxCoalesceGap < 1 {
		return p, fmt.Errorf("core: MaxCoalesceGap must be >= 1, got %d", p.MaxCoalesceGap)
	}
	if p.MaxBatchBytes == 0 {
		p.MaxBatchBytes = 1 << 20
	}
	if p.MaxBatchBytes < 0 {
		return p, fmt.Errorf("core: MaxBatchBytes must be >= 0, got %d", p.MaxBatchBytes)
	}
	if p.RowCacheElems == 0 {
		p.RowCacheElems = 1 << 20
	}
	if p.ModelSyncThreads == 0 {
		p.ModelSyncThreads = 120
	}
	if p.ModelAsyncCompThreads == 0 {
		p.ModelAsyncCompThreads = 8
	}
	if p.ModelSyncThreads < 1 || p.ModelAsyncCompThreads < 1 {
		return p, fmt.Errorf("core: model thread counts must be >= 1 (%d, %d)", p.ModelSyncThreads, p.ModelAsyncCompThreads)
	}
	switch p.Classifier {
	case ClassifierModel, ClassifierColumn:
	default:
		return p, fmt.Errorf("core: unknown classifier %d", p.Classifier)
	}
	if p.ColumnSyncThreshold == 0 {
		p.ColumnSyncThreshold = p.P / 4
		if p.ColumnSyncThreshold < 2 {
			p.ColumnSyncThreshold = 2
		}
	}
	if p.ColumnSyncThreshold < 1 {
		return p, fmt.Errorf("core: ColumnSyncThreshold must be >= 1, got %d", p.ColumnSyncThreshold)
	}
	return p, nil
}

// CoefficientsFromNet derives preprocessing-model coefficients that describe
// a given machine the way the paper's regression calibration would see it:
// the synchronous terms absorb the effective multicast cost (a pipelined
// multi-destination broadcast moves ~2x the payload and ~2 latency stages
// past each participant — see cluster.NetModel.MulticastCost), and the async
// compute term folds in the async-compute thread count as the paper's
// gamma_A does. Getting the sync coefficients right is what lets the
// classifier actually equalize the two halves at runtime.
func CoefficientsFromNet(net cluster.NetModel, asyncCompThreads int) model.Coefficients {
	if asyncCompThreads < 1 {
		asyncCompThreads = 8
	}
	return model.Coefficients{
		BetaS:  2 * net.BetaS,
		AlphaS: 2 * net.AlphaS,
		BetaA:  net.BetaA,
		AlphaA: net.AlphaA,
		GammaA: net.GammaCore * net.AsyncPenalty / float64(asyncCompThreads),
		KappaA: net.KappaStripe,
	}
}
