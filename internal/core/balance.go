package core

import (
	"fmt"
	"sort"

	"twoface/internal/sparse"
)

// Load-balanced 1D partitioning (an extension beyond the paper, which uses
// equal row blocks and attributes mawi's poor scaling to the resulting
// inter-node load imbalance, section 7.2). Instead of N/p rows per node,
// row-block boundaries are chosen so every node owns approximately the same
// number of *nonzeros* — the quantity that actually drives both compute and
// the volume of dense input a node must see.

// BalancedRowBounds returns p+1 row boundaries such that each block holds
// roughly total/p nonzeros. Boundaries are strictly increasing; every block
// holds at least one row (so p must not exceed the row count).
func BalancedRowBounds(a *sparse.COO, p int) ([]int32, error) {
	if p < 1 {
		return nil, fmt.Errorf("core: need at least one node, got %d", p)
	}
	if int32(p) > a.NumRows {
		return nil, fmt.Errorf("core: more nodes (%d) than rows (%d)", p, a.NumRows)
	}
	rowNNZ := make([]int64, a.NumRows)
	for _, e := range a.Entries {
		rowNNZ[e.Row]++
	}
	bounds := make([]int32, p+1)
	bounds[p] = a.NumRows
	total := int64(len(a.Entries))
	var acc int64
	node := 1
	for r := int32(0); r < a.NumRows && node < p; r++ {
		acc += rowNNZ[r]
		// Close block `node-1` once its share is reached, but always leave
		// enough rows for the remaining blocks.
		target := total * int64(node) / int64(p)
		if acc >= target || a.NumRows-(r+1) <= int32(p-node) {
			bounds[node] = r + 1
			node++
		}
	}
	for ; node < p; node++ {
		bounds[node] = bounds[node-1] + 1
	}
	return bounds, nil
}

// Imbalance reports max-block-nnz / mean-block-nnz for the given row
// boundaries — 1.0 is perfect balance.
func Imbalance(a *sparse.COO, bounds []int32) float64 {
	p := len(bounds) - 1
	if p < 1 || len(a.Entries) == 0 {
		return 1
	}
	cnt := make([]int64, p)
	for _, e := range a.Entries {
		i := sort.Search(p, func(i int) bool { return bounds[i+1] > e.Row })
		cnt[i]++
	}
	var max int64
	for _, c := range cnt {
		if c > max {
			max = c
		}
	}
	mean := float64(len(a.Entries)) / float64(p)
	return float64(max) / mean
}
