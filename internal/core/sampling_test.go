package core

import (
	"math"
	"testing"
	"testing/quick"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

func TestSampleMaskDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		row, col := int32(i*7), int32(i*13)
		a := SampleMask(row, col, 42, 0.5)
		b := SampleMask(row, col, 42, 0.5)
		if a != b {
			t.Fatal("mask must be deterministic")
		}
	}
}

func TestSampleMaskEdgeCases(t *testing.T) {
	if !SampleMask(1, 2, 3, 1.0) || !SampleMask(1, 2, 3, 1.5) {
		t.Fatal("keep >= 1 must keep everything")
	}
	if SampleMask(1, 2, 3, 0) || SampleMask(1, 2, 3, -1) {
		t.Fatal("keep <= 0 must drop everything")
	}
}

func TestSampleMaskRate(t *testing.T) {
	for _, keep := range []float64{0.25, 0.5, 0.9} {
		kept := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if SampleMask(int32(i), int32(i*31+7), 9, keep) {
				kept++
			}
		}
		got := float64(kept) / n
		if math.Abs(got-keep) > 0.02 {
			t.Fatalf("keep=%.2f: observed rate %.3f", keep, got)
		}
	}
}

func TestSampleMaskSeedVariesSample(t *testing.T) {
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if SampleMask(int32(i), 0, 1, 0.5) == SampleMask(int32(i), 0, 2, 0.5) {
			same++
		}
	}
	// Independent 50% masks agree about half the time; 90%+ agreement means
	// the seed isn't being mixed in.
	if same > n*3/4 {
		t.Fatalf("masks for different seeds agree on %d/%d entries", same, n)
	}
}

// maskedReference computes the expected sampled result by filtering the
// matrix first and running the reference kernel.
func maskedReference(t *testing.T, a *sparse.COO, b *dense.Matrix, seed uint64, keep float64) *dense.Matrix {
	t.Helper()
	filtered := sparse.NewCOO(a.NumRows, a.NumCols, 0)
	for _, e := range a.Entries {
		if SampleMask(e.Row, e.Col, seed, keep) {
			filtered.Entries = append(filtered.Entries, e)
		}
	}
	want, err := filtered.ToCSR().Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestSampledExecMatchesFilteredReference(t *testing.T) {
	a := randomCOO(120, 120, 1600, 3)
	b := dense.Random(120, 8, 4)
	prep, err := Preprocess(a, basicParams(4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(4, cluster.Default())
	for _, keep := range []float64{0.2, 0.5, 0.8} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := Exec(prep, b, clu, ExecOptions{SampleKeep: keep, SampleSeed: seed})
			if err != nil {
				t.Fatal(err)
			}
			want := maskedReference(t, a, b, seed, keep)
			if !res.C.AlmostEqual(want, 1e-9) {
				d, _ := res.C.MaxAbsDiff(want)
				t.Fatalf("keep=%.1f seed=%d: sampled result off by %v", keep, seed, d)
			}
		}
	}
}

func TestSampledExecProperty(t *testing.T) {
	f := func(seedRaw uint64, keepRaw uint8) bool {
		keep := 0.1 + 0.8*float64(keepRaw)/255
		a := randomCOO(60, 60, 500, seedRaw)
		b := dense.Random(60, 4, seedRaw+1)
		prep, err := Preprocess(a, basicParams(3, 4, 8))
		if err != nil {
			return false
		}
		clu, err := cluster.New(3, cluster.Default())
		if err != nil {
			return false
		}
		res, err := Exec(prep, b, clu, ExecOptions{SampleKeep: keep, SampleSeed: seedRaw})
		if err != nil {
			return false
		}
		filtered := sparse.NewCOO(a.NumRows, a.NumCols, 0)
		for _, e := range a.Entries {
			if SampleMask(e.Row, e.Col, seedRaw, keep) {
				filtered.Entries = append(filtered.Entries, e)
			}
		}
		want, err := filtered.ToCSR().Mul(b)
		if err != nil {
			return false
		}
		return res.C.AlmostEqual(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledExecReducesComputeCharge(t *testing.T) {
	a := randomCOO(200, 200, 5000, 5)
	b := dense.Random(200, 8, 6)
	params := basicParams(4, 8, 8)
	// The comparison below runs the same prep twice; disable the remote-row
	// cache so the second run's transfers aren't served from it.
	params.RowCacheElems = -1
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(4, cluster.Default())
	full, err := Exec(prep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Exec(prep, b, clu, ExecOptions{SampleKeep: 0.25, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fullComp, sampComp float64
	for i := range full.Breakdowns {
		fullComp += full.Breakdowns[i].SyncComp + full.Breakdowns[i].AsyncComp
		sampComp += sampled.Breakdowns[i].SyncComp + sampled.Breakdowns[i].AsyncComp
	}
	if sampComp >= fullComp*0.5 {
		t.Fatalf("sampling should scale modeled compute: full %v, sampled %v", fullComp, sampComp)
	}
	// Communication is unchanged (the conservative schedule).
	var fullComm, sampComm float64
	for i := range full.Breakdowns {
		fullComm += full.Breakdowns[i].SyncComm + full.Breakdowns[i].AsyncComm
		sampComm += sampled.Breakdowns[i].SyncComm + sampled.Breakdowns[i].AsyncComm
	}
	if math.Abs(fullComm-sampComm) > 1e-15 {
		t.Fatalf("sampling must not change transfers: %v vs %v", fullComm, sampComm)
	}
}

func TestColumnClassifierCorrectAndDifferent(t *testing.T) {
	a := randomCOO(160, 160, 2500, 7)
	b := dense.Random(160, 8, 8)
	want, _ := a.ToCSR().Mul(b)

	paramsModel := basicParams(4, 8, 8)
	paramsCol := basicParams(4, 8, 8)
	paramsCol.Classifier = ClassifierColumn

	prepModel, err := Preprocess(a, paramsModel)
	if err != nil {
		t.Fatal(err)
	}
	prepCol, err := Preprocess(a, paramsCol)
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(4, cluster.Default())
	for name, prep := range map[string]*Prep{"model": prepModel, "column": prepCol} {
		res, err := Exec(prep, b, clu, ExecOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.C.AlmostEqual(want, 1e-9) {
			t.Fatalf("%s classifier: wrong result", name)
		}
	}
}

func TestColumnClassifierThreshold(t *testing.T) {
	// A matrix with one universally needed column group and scattered rest.
	a := sparse.NewCOO(80, 80, 0)
	for r := int32(0); r < 80; r++ {
		a.Append(r, 0, 1) // column 0: needed by every node
		a.Append(r, r, 1) // diagonal: local
	}
	a.Append(5, 70, 1) // one niche remote access
	a.Dedup()

	params := basicParams(4, 4, 4)
	params.Classifier = ClassifierColumn
	params.ColumnSyncThreshold = 3
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	// The popular stripe (col 0) must be sync on the three non-owner nodes;
	// the niche stripe (col 70) must be async on node 0.
	if prep.Stats.SyncStripes != 3 {
		t.Fatalf("popular stripe: %d sync stripes, want 3", prep.Stats.SyncStripes)
	}
	if prep.Stats.AsyncStripes != 1 {
		t.Fatalf("niche stripe: %d async stripes, want 1", prep.Stats.AsyncStripes)
	}
}

func TestColumnClassifierBadParams(t *testing.T) {
	p := basicParams(2, 4, 4)
	p.Classifier = Classifier(99)
	if _, err := p.Normalize(); err == nil {
		t.Fatal("unknown classifier should fail")
	}
	p = basicParams(2, 4, 4)
	p.ColumnSyncThreshold = -1
	if _, err := p.Normalize(); err == nil {
		t.Fatal("negative threshold should fail")
	}
}
