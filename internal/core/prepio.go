package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"twoface/internal/sparse"
)

// Plan serialization: the paper's pipeline preprocesses once and writes the
// per-node matrices "in a bespoke binary format" to be loaded at run time
// (section 7.3). WritePrep/ReadPrep round-trip a complete Prep — layout,
// classification, modified-COO matrices, and multicast metadata — so the
// expensive preprocessing can run offline (twoface-prep) and the executor
// can start from disk.
//
// Format (little-endian): magic "TFPREP1\x00", a fixed header, then
// length-prefixed sections per node. Entries are (row int32, col int32,
// val float64) triples as in the matrix format.

var prepMagic = [8]byte{'T', 'F', 'P', 'R', 'E', 'P', '1', 0}

type prepWriter struct {
	w   *bufio.Writer
	err error
}

func (pw *prepWriter) u32(v uint32) {
	if pw.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, pw.err = pw.w.Write(b[:])
}

func (pw *prepWriter) u64(v uint64) {
	if pw.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, pw.err = pw.w.Write(b[:])
}

func (pw *prepWriter) f64(v float64) { pw.u64(floatBits(v)) }

func (pw *prepWriter) i32s(vs []int32) {
	pw.u64(uint64(len(vs)))
	for _, v := range vs {
		pw.u32(uint32(v))
	}
}

func (pw *prepWriter) i64s(vs []int64) {
	pw.u64(uint64(len(vs)))
	for _, v := range vs {
		pw.u64(uint64(v))
	}
}

func (pw *prepWriter) entries(es []sparse.NZ) {
	pw.u64(uint64(len(es)))
	for _, e := range es {
		pw.u32(uint32(e.Row))
		pw.u32(uint32(e.Col))
		pw.f64(e.Val)
	}
}

// WritePrep serializes a preprocessing plan.
func WritePrep(w io.Writer, p *Prep) error {
	pw := &prepWriter{w: bufio.NewWriterSize(w, 1<<20)}
	if _, err := pw.w.Write(prepMagic[:]); err != nil {
		return err
	}
	// Header: geometry + the params the executor needs.
	pw.u32(uint32(p.Layout.NumRows))
	pw.u32(uint32(p.Layout.NumCols))
	pw.u32(uint32(p.Params.P))
	pw.u32(uint32(p.Params.K))
	pw.u32(uint32(p.Params.W))
	pw.u32(uint32(p.Params.RowPanelHeight))
	pw.u32(uint32(p.Params.MaxCoalesceGap))
	pw.u32(uint32(p.Params.ModelSyncThreads))
	pw.u32(uint32(p.Params.ModelAsyncCompThreads))
	// Optional balanced row bounds.
	if p.Layout.rowBounds != nil {
		pw.u32(1)
		pw.i32s(p.Layout.rowBounds)
	} else {
		pw.u32(0)
	}
	// Multicast metadata.
	pw.u64(uint64(len(p.Dests)))
	for _, d := range p.Dests {
		pw.i32s(d)
	}
	// Per-node parts.
	for i := range p.Nodes {
		np := &p.Nodes[i]
		pw.u32(uint32(np.RowLo))
		pw.u32(uint32(np.RowHi))
		pw.u64(uint64(np.SS))
		pw.u64(uint64(np.SA))
		pw.u64(uint64(np.LA))
		pw.u64(uint64(np.NA))
		pw.u64(uint64(np.LocalInputNNZ))
		pw.u64(uint64(np.SyncNNZ))
		pw.i64s(np.Sync.PanelPtr)
		pw.entries(np.Sync.Entries)
		pw.i64s(np.Async.StripePtr)
		pw.i32s(np.Async.StripeIDs)
		pw.entries(np.Async.Entries)
		pw.i32s(np.RecvStripes)
	}
	if pw.err != nil {
		return pw.err
	}
	return pw.w.Flush()
}

type prepReader struct {
	r   *bufio.Reader
	err error
}

func (pr *prepReader) u32() uint32 {
	if pr.err != nil {
		return 0
	}
	var b [4]byte
	if _, pr.err = io.ReadFull(pr.r, b[:]); pr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (pr *prepReader) u64() uint64 {
	if pr.err != nil {
		return 0
	}
	var b [8]byte
	if _, pr.err = io.ReadFull(pr.r, b[:]); pr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (pr *prepReader) f64() float64 { return floatFromBits(pr.u64()) }

// sliceLen validates a length prefix to avoid absurd allocations on corrupt
// input.
func (pr *prepReader) sliceLen(max uint64) int {
	n := pr.u64()
	if pr.err == nil && n > max {
		pr.err = fmt.Errorf("core: corrupt plan: length %d exceeds limit %d", n, max)
	}
	if pr.err != nil {
		return 0
	}
	return int(n)
}

const (
	maxPrepSection = 1 << 33 // generous: ~8G entries
	// prepPreallocCap bounds the up-front allocation for a length prefix;
	// the header is untrusted and a truncated body fails on read anyway.
	prepPreallocCap = 1 << 20
)

func preallocLen(n int) int {
	if n > prepPreallocCap {
		return prepPreallocCap
	}
	return n
}

func (pr *prepReader) i32s() []int32 {
	n := pr.sliceLen(maxPrepSection)
	out := make([]int32, 0, preallocLen(n))
	for i := 0; i < n && pr.err == nil; i++ {
		out = append(out, int32(pr.u32()))
	}
	return out
}

func (pr *prepReader) i64s() []int64 {
	n := pr.sliceLen(maxPrepSection)
	out := make([]int64, 0, preallocLen(n))
	for i := 0; i < n && pr.err == nil; i++ {
		out = append(out, int64(pr.u64()))
	}
	return out
}

func (pr *prepReader) entries() []sparse.NZ {
	n := pr.sliceLen(maxPrepSection)
	out := make([]sparse.NZ, 0, preallocLen(n))
	for i := 0; i < n && pr.err == nil; i++ {
		out = append(out, sparse.NZ{Row: int32(pr.u32()), Col: int32(pr.u32()), Val: pr.f64()})
	}
	return out
}

// ReadPrep deserializes a plan written by WritePrep. The classifier
// coefficients are not stored (they only matter during preprocessing); the
// returned Prep carries normalized default Params plus the stored geometry.
func ReadPrep(r io.Reader) (*Prep, error) {
	pr := &prepReader{r: bufio.NewReaderSize(r, 1<<20)}
	var magic [8]byte
	if _, err := io.ReadFull(pr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading plan magic: %w", err)
	}
	if magic != prepMagic {
		return nil, fmt.Errorf("core: bad plan magic %q", magic[:])
	}
	numRows := int32(pr.u32())
	numCols := int32(pr.u32())
	params := Params{
		P: int(pr.u32()), K: int(pr.u32()), W: int32(pr.u32()),
		RowPanelHeight:        int32(pr.u32()),
		MaxCoalesceGap:        int32(pr.u32()),
		ModelSyncThreads:      int(pr.u32()),
		ModelAsyncCompThreads: int(pr.u32()),
	}
	if pr.err != nil {
		return nil, pr.err
	}
	params, err := params.Normalize()
	if err != nil {
		return nil, fmt.Errorf("core: corrupt plan header: %w", err)
	}
	// Untrusted header: bound the derived allocations (node array, stripe
	// metadata) before building anything.
	const (
		maxPlanNodes   = 1 << 16
		maxPlanStripes = 1 << 24
	)
	if params.P > maxPlanNodes {
		return nil, fmt.Errorf("core: corrupt plan: %d nodes exceeds limit %d", params.P, maxPlanNodes)
	}
	layout, err := NewLayout(numRows, numCols, params.P, params.W)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt plan geometry: %w", err)
	}
	if layout.NumStripes() > maxPlanStripes {
		return nil, fmt.Errorf("core: corrupt plan: %d stripes exceeds limit %d", layout.NumStripes(), maxPlanStripes)
	}
	if pr.u32() == 1 {
		bounds := pr.i32s()
		if pr.err != nil {
			return nil, pr.err
		}
		layout, err = layout.WithRowBounds(bounds)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt plan row bounds: %w", err)
		}
	}
	prep := &Prep{Layout: layout, Params: params}
	nDests := pr.sliceLen(uint64(layout.NumStripes()) + 1)
	if pr.err == nil && nDests != int(layout.NumStripes()) {
		return nil, fmt.Errorf("core: corrupt plan: %d dest lists for %d stripes", nDests, layout.NumStripes())
	}
	prep.Dests = make([][]int32, nDests)
	for i := range prep.Dests {
		prep.Dests[i] = pr.i32s()
	}
	prep.Nodes = make([]NodePart, params.P)
	for i := range prep.Nodes {
		np := &prep.Nodes[i]
		np.Rank = i
		np.RowLo = int32(pr.u32())
		np.RowHi = int32(pr.u32())
		np.SS = int64(pr.u64())
		np.SA = int64(pr.u64())
		np.LA = int64(pr.u64())
		np.NA = int64(pr.u64())
		np.LocalInputNNZ = int64(pr.u64())
		np.SyncNNZ = int64(pr.u64())
		np.Sync.PanelPtr = pr.i64s()
		np.Sync.Entries = pr.entries()
		np.Async.StripePtr = pr.i64s()
		np.Async.StripeIDs = pr.i32s()
		np.Async.Entries = pr.entries()
		np.RecvStripes = pr.i32s()
	}
	if pr.err != nil {
		return nil, fmt.Errorf("core: reading plan: %w", pr.err)
	}
	for i := range prep.Nodes {
		prep.Stats.LocalInputNNZ += prep.Nodes[i].LocalInputNNZ
		prep.Stats.SyncNNZ += prep.Nodes[i].SyncNNZ
		prep.Stats.AsyncNNZ += prep.Nodes[i].NA
		prep.Stats.SyncStripes += prep.Nodes[i].SS
		prep.Stats.AsyncStripes += prep.Nodes[i].SA
	}
	prep.Stats.TotalNNZ = prep.Stats.LocalInputNNZ + prep.Stats.SyncNNZ + prep.Stats.AsyncNNZ
	return prep, nil
}

// WritePrepFile writes a plan to disk.
func WritePrepFile(path string, p *Prep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePrep(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPrepFile reads a plan written by WritePrepFile.
func ReadPrepFile(path string) (*Prep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPrep(f)
}
