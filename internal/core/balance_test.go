package core

import (
	"testing"
	"testing/quick"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

// skewedCOO concentrates most nonzeros on the first rows (a mawi-like row
// imbalance).
func skewedCOO(rows int32, seed uint64) *sparse.COO {
	m := randomCOO(rows, rows, int(rows), seed) // sparse background
	hot := m.Clone()
	for r := int32(0); r < rows/16; r++ {
		for c := int32(0); c < rows; c += 3 {
			hot.Append(r, c, 1)
		}
	}
	hot.Dedup()
	return hot
}

func TestBalancedRowBoundsInvariants(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw)%7 + 1
		rows := int32(40 + seed%200)
		a := randomCOO(rows, rows, 800, seed)
		bounds, err := BalancedRowBounds(a, p)
		if err != nil {
			return false
		}
		if len(bounds) != p+1 || bounds[0] != 0 || bounds[p] != rows {
			return false
		}
		for i := 0; i < p; i++ {
			if bounds[i+1] <= bounds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedRowBoundsErrors(t *testing.T) {
	a := randomCOO(5, 5, 10, 1)
	if _, err := BalancedRowBounds(a, 0); err == nil {
		t.Fatal("p=0 should fail")
	}
	if _, err := BalancedRowBounds(a, 6); err == nil {
		t.Fatal("p > rows should fail")
	}
}

func TestBalancedBoundsReduceImbalance(t *testing.T) {
	a := skewedCOO(512, 3)
	const p = 8
	equal := make([]int32, p+1)
	for i := 0; i <= p; i++ {
		equal[i] = int32(i) * a.NumRows / p
	}
	balanced, err := BalancedRowBounds(a, p)
	if err != nil {
		t.Fatal(err)
	}
	ib0 := Imbalance(a, equal)
	ib1 := Imbalance(a, balanced)
	if ib1 >= ib0 {
		t.Fatalf("balancing did not help: %.2f -> %.2f", ib0, ib1)
	}
	if ib1 > 1.3 {
		t.Fatalf("balanced imbalance still %.2f", ib1)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	a := sparse.NewCOO(4, 4, 0)
	if Imbalance(a, []int32{0, 4}) != 1 {
		t.Fatal("empty matrix imbalance should be 1")
	}
}

func TestWithRowBoundsValidation(t *testing.T) {
	l, err := NewLayout(100, 100, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]int32{
		{0, 25, 50, 100},     // wrong length
		{1, 25, 50, 75, 100}, // doesn't start at 0
		{0, 25, 50, 75, 99},  // doesn't end at NumRows
		{0, 50, 50, 75, 100}, // not strictly increasing
	}
	for i, b := range bad {
		if _, err := l.WithRowBounds(b); err == nil {
			t.Fatalf("case %d should fail: %v", i, b)
		}
	}
	good, err := l.WithRowBounds([]int32{0, 10, 20, 90, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := good.RowBlock(2); got.Lo != 20 || got.Hi != 90 {
		t.Fatalf("RowBlock(2) = %+v", got)
	}
	for r := int32(0); r < 100; r++ {
		owner := good.RowOwner(r)
		if !good.RowBlock(owner).Contains(int(r)) {
			t.Fatalf("RowOwner(%d) = %d does not contain the row", r, owner)
		}
	}
	// The original layout is unchanged.
	if l.RowBlock(0).Hi != 25 {
		t.Fatal("WithRowBounds must not mutate the receiver")
	}
}

func TestBalancedExecCorrect(t *testing.T) {
	a := skewedCOO(256, 7)
	b := dense.Random(256, 8, 8)
	want, _ := a.ToCSR().Mul(b)
	params := basicParams(4, 8, 8)
	params.BalanceRows = true
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(4, cluster.Default())
	res, err := Exec(prep, b, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.AlmostEqual(want, 1e-9) {
		t.Fatal("balanced-partition result wrong")
	}
	// The row blocks must actually differ from equal blocks on this skew.
	equalBlock := int(a.NumRows) / 4
	diff := false
	for i := range prep.Nodes {
		if int(prep.Nodes[i].RowHi-prep.Nodes[i].RowLo) != equalBlock {
			diff = true
		}
	}
	if !diff {
		t.Fatal("BalanceRows had no effect on a skewed matrix")
	}
}

func TestBalancedSDDMMCorrect(t *testing.T) {
	a := skewedCOO(128, 9)
	x := dense.Random(128, 4, 1)
	y := dense.Random(128, 4, 2)
	params := basicParams(4, 4, 8)
	params.BalanceRows = true
	prep, err := Preprocess(a, params)
	if err != nil {
		t.Fatal(err)
	}
	clu, _ := cluster.New(4, cluster.Default())
	res, err := ExecSDDMM(prep, x, y, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.SDDMM(x, y)
	sddmmEqual(t, res.C, want, 1e-9)
}

func TestBalancedImprovesSkewedMakespan(t *testing.T) {
	// On a row-skewed matrix, balanced partitioning should not be slower in
	// modeled time (usually faster: the hot node shrinks).
	a := skewedCOO(512, 11)
	b := dense.Random(512, 16, 12)
	run := func(balance bool) float64 {
		params := basicParams(8, 16, 8)
		params.BalanceRows = balance
		prep, err := Preprocess(a, params)
		if err != nil {
			t.Fatal(err)
		}
		clu, _ := cluster.New(8, cluster.Default())
		res, err := Exec(prep, b, clu, ExecOptions{SkipCompute: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.ModeledSeconds
	}
	equal, balanced := run(false), run(true)
	if balanced > equal*1.05 {
		t.Fatalf("balancing slowed a skewed matrix: %v -> %v", equal, balanced)
	}
}
