package core

import (
	"twoface/internal/cluster"
	"twoface/internal/sparse"
)

// uniqueCols returns the distinct column indices of a column-major-sorted
// entry slice, ascending. This is the cheap scan that motivates the
// column-major async layout (section 4.1): the distinct columns are exactly
// the dense B rows the stripe must fetch.
func uniqueCols(entries []sparse.NZ) []int32 {
	if len(entries) == 0 {
		return nil
	}
	return appendUniqueCols(nil, entries)
}

// appendUniqueCols is uniqueCols writing into dst (which it resets),
// reusing dst's capacity so pooled callers allocate nothing in steady state.
// The scratch is sized from the entry count — the worst case of all-distinct
// columns — rather than a fixed small capacity, so a stripe never regrows it
// mid-scan.
func appendUniqueCols(dst []int32, entries []sparse.NZ) []int32 {
	if cap(dst) < len(entries) {
		dst = make([]int32, 0, len(entries))
	}
	dst = dst[:0]
	if len(entries) == 0 {
		return dst
	}
	dst = append(dst, entries[0].Col)
	for _, e := range entries[1:] {
		if e.Col != dst[len(dst)-1] {
			dst = append(dst, e.Col)
		}
	}
	return dst
}

// coalesceRegions converts the sorted distinct columns of an async stripe
// into one-sided fetch regions over the owner's B window, merging runs of
// needed rows separated by at most maxGap-1 unused rows (section 5.2.3:
// rows {2,3,6,8} coalesce to {(2,2),(6,1),(8,1)} adjacent-only, or
// {(2,2),(6,3)} with gap coalescing, fetching useless row 7).
//
// ownerColLo is the first global column of the owner's block; k is the dense
// width. It returns the regions, the buffer row offset of each input column
// (aligned with cols), and the total number of B rows fetched including
// useless gap rows.
func coalesceRegions(cols []int32, maxGap int32, ownerColLo int32, k int) (regions []cluster.Region, bufRow []int32, fetchedRows int64) {
	if len(cols) == 0 {
		return nil, nil, 0
	}
	return coalesceRegionsInto(nil, nil, cols, maxGap, ownerColLo, k)
}

// coalesceRegionsInto is coalesceRegions writing into the provided region
// and bufRow scratch slices (which it resets), reusing their capacity.
func coalesceRegionsInto(regionScratch []cluster.Region, bufRowScratch []int32, cols []int32, maxGap int32, ownerColLo int32, k int) (regions []cluster.Region, bufRow []int32, fetchedRows int64) {
	regions = regionScratch[:0]
	if len(cols) == 0 {
		return regions, bufRowScratch[:0], 0
	}
	if cap(bufRowScratch) < len(cols) {
		bufRowScratch = make([]int32, len(cols))
	}
	bufRow = bufRowScratch[:len(cols)]
	start, end := cols[0], cols[0] // current run [start, end], inclusive
	base := int64(0)               // buffer row offset of `start`
	bufRow[0] = 0
	for i := 1; i < len(cols); i++ {
		c := cols[i]
		if c-end <= maxGap {
			end = c
		} else {
			regions = append(regions, cluster.Region{
				Off:   int64(start-ownerColLo) * int64(k),
				Elems: int64(end-start+1) * int64(k),
			})
			base += int64(end - start + 1)
			start, end = c, c
		}
		bufRow[i] = int32(base + int64(c-start))
	}
	regions = append(regions, cluster.Region{
		Off:   int64(start-ownerColLo) * int64(k),
		Elems: int64(end-start+1) * int64(k),
	})
	fetchedRows = base + int64(end-start+1)
	return regions, bufRow, fetchedRows
}
