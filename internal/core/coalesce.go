package core

import (
	"twoface/internal/cluster"
	"twoface/internal/sparse"
)

// uniqueCols returns the distinct column indices of a column-major-sorted
// entry slice, ascending. This is the cheap scan that motivates the
// column-major async layout (section 4.1): the distinct columns are exactly
// the dense B rows the stripe must fetch.
func uniqueCols(entries []sparse.NZ) []int32 {
	if len(entries) == 0 {
		return nil
	}
	cols := make([]int32, 0, 16)
	cols = append(cols, entries[0].Col)
	for _, e := range entries[1:] {
		if e.Col != cols[len(cols)-1] {
			cols = append(cols, e.Col)
		}
	}
	return cols
}

// coalesceRegions converts the sorted distinct columns of an async stripe
// into one-sided fetch regions over the owner's B window, merging runs of
// needed rows separated by at most maxGap-1 unused rows (section 5.2.3:
// rows {2,3,6,8} coalesce to {(2,2),(6,1),(8,1)} adjacent-only, or
// {(2,2),(6,3)} with gap coalescing, fetching useless row 7).
//
// ownerColLo is the first global column of the owner's block; k is the dense
// width. It returns the regions, the buffer row offset of each input column
// (aligned with cols), and the total number of B rows fetched including
// useless gap rows.
func coalesceRegions(cols []int32, maxGap int32, ownerColLo int32, k int) (regions []cluster.Region, bufRow []int32, fetchedRows int64) {
	if len(cols) == 0 {
		return nil, nil, 0
	}
	bufRow = make([]int32, len(cols))
	start, end := cols[0], cols[0] // current run [start, end], inclusive
	base := int64(0)               // buffer row offset of `start`
	bufRow[0] = 0
	for i := 1; i < len(cols); i++ {
		c := cols[i]
		if c-end <= maxGap {
			end = c
		} else {
			regions = append(regions, cluster.Region{
				Off:   int64(start-ownerColLo) * int64(k),
				Elems: int64(end-start+1) * int64(k),
			})
			base += int64(end - start + 1)
			start, end = c, c
		}
		bufRow[i] = int32(base + int64(c-start))
	}
	regions = append(regions, cluster.Region{
		Off:   int64(start-ownerColLo) * int64(k),
		Elems: int64(end-start+1) * int64(k),
	})
	fetchedRows = base + int64(end-start+1)
	return regions, bufRow, fetchedRows
}
