package core

import (
	"testing"
	"testing/quick"

	"twoface/internal/cluster"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

func sddmmFixture(t *testing.T, rows int32, nnz, k, p int, seed uint64) (*sparse.COO, *dense.Matrix, *dense.Matrix, *Prep, *cluster.Cluster) {
	t.Helper()
	a := randomCOO(rows, rows, nnz, seed)
	x := dense.Random(int(rows), k, seed+1)
	y := dense.Random(int(rows), k, seed+2)
	prep, err := Preprocess(a, basicParams(p, k, 8))
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(p, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	return a, x, y, prep, clu
}

func sddmmEqual(t *testing.T, got, want *sparse.COO, tol float64) {
	t.Helper()
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("SDDMM entry counts: %d vs %d", len(got.Entries), len(want.Entries))
	}
	want.SortRowMajor()
	for i := range want.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if g.Row != w.Row || g.Col != w.Col {
			t.Fatalf("entry %d coordinates (%d,%d) vs (%d,%d)", i, g.Row, g.Col, w.Row, w.Col)
		}
		scale := 1.0
		if abs := w.Val; abs < 0 {
			abs = -abs
			if abs > scale {
				scale = abs
			}
		} else if abs > scale {
			scale = abs
		}
		if d := g.Val - w.Val; d > tol*scale || d < -tol*scale {
			t.Fatalf("entry %d value %v vs %v", i, g.Val, w.Val)
		}
	}
}

func TestSDDMMMatchesReference(t *testing.T) {
	a, x, y, prep, clu := sddmmFixture(t, 120, 1500, 8, 4, 1)
	res, err := ExecSDDMM(prep, x, y, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sddmmEqual(t, res.C, want, 1e-12)
	if res.ModeledSeconds <= 0 {
		t.Fatal("no modeled time")
	}
}

func TestSDDMMProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw)%5 + 1
		rows := int32(50 + seed%50)
		a := randomCOO(rows, rows, 500, seed)
		x := dense.Random(int(rows), 4, seed+1)
		y := dense.Random(int(rows), 4, seed+2)
		prep, err := Preprocess(a, basicParams(p, 4, 4))
		if err != nil {
			return false
		}
		clu, err := cluster.New(p, cluster.Default())
		if err != nil {
			return false
		}
		res, err := ExecSDDMM(prep, x, y, clu, ExecOptions{})
		if err != nil {
			return false
		}
		want, err := a.SDDMM(x, y)
		if err != nil {
			return false
		}
		want.SortRowMajor()
		if len(res.C.Entries) != len(want.Entries) {
			return false
		}
		for i := range want.Entries {
			g, w := res.C.Entries[i], want.Entries[i]
			if g.Row != w.Row || g.Col != w.Col {
				return false
			}
			if d := g.Val - w.Val; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSDDMMValidation(t *testing.T) {
	_, x, y, prep, clu := sddmmFixture(t, 60, 400, 4, 2, 3)
	if _, err := ExecSDDMM(prep, dense.New(60, 3), y, clu, ExecOptions{}); err == nil {
		t.Fatal("wrong X shape should fail")
	}
	if _, err := ExecSDDMM(prep, x, dense.New(59, 4), clu, ExecOptions{}); err == nil {
		t.Fatal("wrong Y shape should fail")
	}
	wrongClu, _ := cluster.New(3, cluster.Default())
	if _, err := ExecSDDMM(prep, x, y, wrongClu, ExecOptions{}); err == nil {
		t.Fatal("wrong cluster size should fail")
	}
}

func TestSDDMMSkipCompute(t *testing.T) {
	_, x, y, prep, clu := sddmmFixture(t, 80, 600, 4, 4, 5)
	res, err := ExecSDDMM(prep, x, y, clu, ExecOptions{SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.C.Entries) != 0 {
		t.Fatal("timing-only SDDMM should not emit entries")
	}
	if res.ModeledSeconds <= 0 {
		t.Fatal("timing-only SDDMM should still model time")
	}
}

func TestSDDMMReusesSpMMPlan(t *testing.T) {
	// The same Prep must serve both kernels.
	a, x, y, prep, clu := sddmmFixture(t, 100, 1200, 8, 4, 7)
	spmm, err := Exec(prep, y, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSpMM, _ := a.ToCSR().Mul(y)
	if !spmm.C.AlmostEqual(wantSpMM, 1e-9) {
		t.Fatal("SpMM on shared prep wrong")
	}
	sd, err := ExecSDDMM(prep, x, y, clu, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSD, _ := a.SDDMM(x, y)
	sddmmEqual(t, sd.C, wantSD, 1e-9)
}

func TestSDDMMSequentialReferenceShapes(t *testing.T) {
	a := randomCOO(10, 20, 30, 9)
	x := dense.Random(10, 4, 1)
	y := dense.Random(20, 4, 2)
	out, err := a.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != a.NNZ() {
		t.Fatal("SDDMM must preserve sparsity structure")
	}
	if _, err := a.SDDMM(dense.New(9, 4), y); err == nil {
		t.Fatal("bad X rows should fail")
	}
	if _, err := a.SDDMM(x, dense.New(20, 5)); err == nil {
		t.Fatal("K mismatch should fail")
	}
}
