package core

import (
	"twoface/internal/kernels"
	"twoface/internal/sparse"
)

// accumulateRun adds one same-column run of async-stripe nonzeros into the
// row accumulator against the run's shared dense B row, grouping up to four
// destination rows per pass through the register-tiled AxpyQuad kernel so
// each B-row tile is loaded once for four updates. A run's rows are distinct
// (one nonzero per (row, col)), so the grouped destinations never alias.
//
// Results are bit-identical to per-entry Accumulate calls: AxpyQuad rounds
// exactly like four sequential Axpys under every non-FMA variant, first
// touches scale-assign exactly as Accumulate does, and reordering updates of
// distinct rows within the run leaves every row's own accumulation order
// unchanged.
func accumulateRun(acc *kernels.RowAccumulator, run []sparse.NZ, brow []float64, rowLo int32, smp sampling) {
	acc.Reserve(len(run)) // pending Row buffers must survive first-touch growth
	var na int
	var alphas [4]float64
	var dsts [4][]float64
	for _, e := range run {
		if smp.masked(rowLo+e.Row, e.Col) {
			continue
		}
		vals, first := acc.Row(e.Row)
		if first {
			kernels.ScaleTo(vals, e.Val, brow)
			continue
		}
		alphas[na], dsts[na] = e.Val, vals
		na++
		if na == 4 {
			kernels.AxpyQuad(brow, alphas[0], dsts[0], alphas[1], dsts[1], alphas[2], dsts[2], alphas[3], dsts[3])
			na = 0
		}
	}
	for i := 0; i < na; i++ {
		kernels.Axpy(alphas[i], brow, dsts[i])
	}
}
