package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Transport is the transfer-level seam between the cluster's rank semantics
// (virtual-time charging, fault injection, retry/degrade policies, transfer
// counters, tracing) and the machinery that actually moves bytes between
// ranks. Everything above this interface is byte-movement-agnostic: the
// in-process simulator (NewMemTransport) services all p ranks from shared
// memory under the virtual clock, while a wall-clock backend (e.g.
// internal/transport/tcp) services exactly one rank per OS process and
// reaches peers over sockets.
//
// Semantics every implementation must provide:
//
//   - Expose/Read are the one-sided window primitives. Read packs the
//     requested regions contiguously into dst and is all-or-nothing: on any
//     error — bad region, missing window, mid-transfer connection loss — the
//     caller must not be able to observe bytes from the failed attempt in
//     dst. (The retry/degrade machinery above re-issues failed gets; a
//     half-filled buffer surviving into the fallback path would corrupt C.)
//   - Deposit/Collect are the staging slots of the deposit-barrier-collect
//     collectives. Collect may return a slice aliasing the depositor's data
//     (the in-process case); callers copy before use.
//   - Barrier blocks until every live rank of the cluster has entered, and
//     fails (rather than deadlocks) once the cluster is aborted.
//   - Abort records the first cluster-wide failure and releases every
//     current and future Barrier waiter; AbortErr exposes the recorded
//     error, which unwraps to ErrAborted, on every rank.
//   - Leave removes one rank from subsequent barriers (crash-recovery
//     membership). Transports that do not support recovery may panic; the
//     facade refuses to combine recovery with such transports.
//
// WallClock distinguishes the two ledger regimes: false means charges are
// modeled virtual seconds (the simulator), true means the rank ledger
// measures real elapsed time between charges and the modeled dt arguments
// are ignored (see Rank.charge).
type Transport interface {
	// P returns the cluster size the transport serves.
	P() int
	// LocalRanks returns the ranks this process executes, ascending. The
	// simulator returns all of [0, P); a multi-process backend returns one.
	LocalRanks() []int
	// WallClock reports whether rank ledgers measure real time (true) or
	// accumulate modeled virtual time (false).
	WallClock() bool

	// Expose registers (or replaces) rank's window under the given name.
	// The slice is not copied; callers must not mutate it while exposed.
	Expose(rank int, name string, data []float64)
	// Read packs the given regions of target's window contiguously into
	// dst, returning the element count. All-or-nothing: on error, no bytes
	// of the failed attempt are observable in dst.
	Read(rank, target int, name string, regions []Region, dst []float64) (int64, error)

	// Deposit places data in rank's staging slot.
	Deposit(rank int, data []float64)
	// Collect returns the payload rank `from` last deposited (possibly nil).
	Collect(rank, from int) ([]float64, error)

	// Barrier blocks rank until all live ranks have entered, or fails with
	// the abort error once the cluster is aborted.
	Barrier(rank int) error
	// Leave permanently removes rank from subsequent barriers.
	Leave(rank int)

	// Abort records the first cluster-wide failure, releasing barrier
	// waiters everywhere. It reports whether this call recorded the cause
	// (false: an earlier abort won).
	Abort(cause error) bool
	// AbortErr returns the recorded abort error (unwrapping to ErrAborted),
	// or nil while healthy.
	AbortErr() error

	// Reset clears windows, staging slots, and (for resettable transports)
	// abort state, preparing for an unrelated run.
	Reset()
	// Finish quiesces the transport between Runs: the simulator resets its
	// barrier and clears the abort flag; single-shot wall-clock transports
	// may treat it as a no-op.
	Finish()
	// Close releases external resources (sockets). The simulator is a no-op.
	Close() error
}

// CheckRegions validates a one-sided region list against a window of winLen
// elements and a destination of dstLen elements, returning the total element
// count. It is the shared validation step that makes Read all-or-nothing:
// every transport backend validates the complete request before moving any
// bytes. The rank/target/name arguments only shape the error messages.
func CheckRegions(rank, target int, name string, regions []Region, winLen, dstLen int) (int64, error) {
	var n int64
	for _, reg := range regions {
		if reg.Off < 0 || reg.Elems < 0 || reg.Off+reg.Elems > int64(winLen) {
			return 0, fmt.Errorf("cluster: rank %d: region [%d,+%d) outside window %q of rank %d (len %d): %w",
				rank, reg.Off, reg.Elems, name, target, winLen, ErrRegionOOB)
		}
		n += reg.Elems
	}
	if int64(dstLen) < n {
		return 0, fmt.Errorf("cluster: rank %d: destination too small for indexed get (%d < %d): %w",
			rank, dstLen, n, ErrDstTooSmall)
	}
	return n, nil
}

// memTransport is the in-process virtual-time backend: all p ranks live in
// one address space, windows and staging slots are shared maps, and the
// barrier is the cyclic in-memory one. It is the deterministic test
// substrate — nothing here consults a real clock.
type memTransport struct {
	p      int
	locals []int

	mu      sync.RWMutex
	windows []map[string][]float64 // per-rank named one-sided windows
	staging [][]float64            // per-rank deposit slots for exchanges

	bar   *barrier
	abort atomic.Pointer[abortError] // first failure; nil while healthy
}

// NewMemTransport returns the in-process simulator transport for p ranks.
// cluster.New wraps it; it is exported so the conformance suite can drive
// the same backend the simulator uses through the Transport interface.
func NewMemTransport(p int) (Transport, error) {
	if p < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", p)
	}
	t := &memTransport{
		p:       p,
		locals:  make([]int, p),
		windows: make([]map[string][]float64, p),
		staging: make([][]float64, p),
		bar:     newBarrier(p),
	}
	for i := 0; i < p; i++ {
		t.locals[i] = i
		t.windows[i] = map[string][]float64{}
	}
	return t, nil
}

func (t *memTransport) P() int            { return t.p }
func (t *memTransport) LocalRanks() []int { return t.locals }
func (t *memTransport) WallClock() bool   { return false }

func (t *memTransport) Expose(rank int, name string, data []float64) {
	t.mu.Lock()
	t.windows[rank][name] = data
	t.mu.Unlock()
}

func (t *memTransport) Read(rank, target int, name string, regions []Region, dst []float64) (int64, error) {
	if target < 0 || target >= t.p {
		return 0, fmt.Errorf("cluster: rank %d: window target %d out of range [0,%d): %w", rank, target, t.p, ErrWindowMissing)
	}
	t.mu.RLock()
	w, ok := t.windows[target][name]
	t.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("cluster: rank %d: no window %q exposed by rank %d: %w", rank, name, target, ErrWindowMissing)
	}
	// Validate the complete request before copying anything: a rejected get
	// must leave dst untouched so the retry/degrade path above can reuse it.
	if _, err := CheckRegions(rank, target, name, regions, len(w), len(dst)); err != nil {
		return 0, err
	}
	var n int64
	for _, reg := range regions {
		copy(dst[n:n+reg.Elems], w[reg.Off:reg.Off+reg.Elems])
		n += reg.Elems
	}
	return n, nil
}

func (t *memTransport) Deposit(rank int, data []float64) {
	t.mu.Lock()
	t.staging[rank] = data
	t.mu.Unlock()
}

func (t *memTransport) Collect(rank, from int) ([]float64, error) {
	if from < 0 || from >= t.p {
		return nil, fmt.Errorf("cluster: rank %d: collect from %d out of range [0,%d)", rank, from, t.p)
	}
	t.mu.RLock()
	d := t.staging[from]
	t.mu.RUnlock()
	return d, nil
}

func (t *memTransport) Barrier(rank int) error { return t.bar.wait() }
func (t *memTransport) Leave(rank int)         { t.bar.leave() }

func (t *memTransport) Abort(cause error) bool {
	err := &abortError{cause: cause}
	if t.abort.CompareAndSwap(nil, err) {
		t.bar.breakWith(err)
		return true
	}
	return false
}

func (t *memTransport) AbortErr() error {
	if err := t.abort.Load(); err != nil {
		return err
	}
	return nil
}

func (t *memTransport) Reset() {
	t.mu.Lock()
	for i := range t.windows {
		t.windows[i] = map[string][]float64{}
		t.staging[i] = nil
	}
	t.mu.Unlock()
	t.abort.Store(nil)
}

func (t *memTransport) Finish() {
	t.bar.reset()
	t.abort.Store(nil)
}

func (t *memTransport) Close() error { return nil }
