package cluster

import "sync"

// TransferStats counts the actual data an algorithm moved through the
// cluster's mechanics, independent of the virtual-time model. Because the
// counters are incremented by the transfer primitives themselves (not by the
// algorithms' cost charges), they are an honest record of communication
// volume: an algorithm cannot under-report what it moved. The experiment
// harness uses them for the communication-volume analysis that explains the
// paper's speedups.
type TransferStats struct {
	// CollectiveBytes counts payload received through collective primitives
	// (multicast pulls, allgather, sendrecv shifts).
	CollectiveBytes int64
	// CollectiveMsgs counts collective operations this rank took part in.
	CollectiveMsgs int64
	// OneSidedBytes counts payload read through one-sided gets.
	OneSidedBytes int64
	// OneSidedMsgs counts one-sided regions fetched (each region is one
	// network transaction in the MPI_Type_indexed pattern).
	OneSidedMsgs int64
}

// Plus returns the field-wise sum.
func (t TransferStats) Plus(o TransferStats) TransferStats {
	return TransferStats{
		CollectiveBytes: t.CollectiveBytes + o.CollectiveBytes,
		CollectiveMsgs:  t.CollectiveMsgs + o.CollectiveMsgs,
		OneSidedBytes:   t.OneSidedBytes + o.OneSidedBytes,
		OneSidedMsgs:    t.OneSidedMsgs + o.OneSidedMsgs,
	}
}

// TotalBytes returns all payload received by this rank.
func (t TransferStats) TotalBytes() int64 { return t.CollectiveBytes + t.OneSidedBytes }

// transferCounters is the mutable, mutex-guarded holder embedded in Rank.
type transferCounters struct {
	mu sync.Mutex
	ts TransferStats
}

func (c *transferCounters) addCollective(elems int64, msgs int64) {
	c.mu.Lock()
	c.ts.CollectiveBytes += 8 * elems
	c.ts.CollectiveMsgs += msgs
	c.mu.Unlock()
}

func (c *transferCounters) addOneSided(elems int64, msgs int64) {
	c.mu.Lock()
	c.ts.OneSidedBytes += 8 * elems
	c.ts.OneSidedMsgs += msgs
	c.mu.Unlock()
}

func (c *transferCounters) snapshot() TransferStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ts
}

func (c *transferCounters) reset() {
	c.mu.Lock()
	c.ts = TransferStats{}
	c.mu.Unlock()
}

// TransferStats returns a copy of this rank's data-movement counters.
func (r *Rank) TransferStats() TransferStats { return r.counters.snapshot() }

// TransferStats returns every rank's data-movement counters.
func (c *Cluster) TransferStats() []TransferStats {
	out := make([]TransferStats, c.p)
	for i, r := range c.ranks {
		out[i] = r.counters.snapshot()
	}
	return out
}

// TotalTransfer returns the cluster-wide sum of all ranks' counters.
func (c *Cluster) TotalTransfer() TransferStats {
	var sum TransferStats
	for _, r := range c.ranks {
		sum = sum.Plus(r.counters.snapshot())
	}
	return sum
}
