package cluster

import "sync/atomic"

// TransferStats counts the actual data an algorithm moved through the
// cluster's mechanics, independent of the virtual-time model. Because the
// counters are incremented by the transfer primitives themselves (not by the
// algorithms' cost charges), they are an honest record of communication
// volume: an algorithm cannot under-report what it moved. The experiment
// harness uses them for the communication-volume analysis that explains the
// paper's speedups.
//
// Unit convention: all payloads in this repository are float64 elements, so
// byte counters are exactly 8 x the element counts that the transfer
// primitives (and the trace's Event.Elems) report. Event.Bytes applies the
// same convention, so trace events and these stats cross-check directly.
type TransferStats struct {
	// CollectiveBytes counts payload received through collective primitives
	// (multicast pulls, allgather, sendrecv shifts).
	CollectiveBytes int64
	// CollectiveMsgs counts collective operations this rank took part in.
	CollectiveMsgs int64
	// OneSidedBytes counts payload read through one-sided gets.
	OneSidedBytes int64
	// OneSidedMsgs counts one-sided regions fetched (each region is one
	// network transaction in the MPI_Type_indexed pattern).
	OneSidedMsgs int64
	// OneSidedGets counts aggregated one-sided get *requests* issued (each
	// GetIndexed call is one request carrying one or more regions). This is
	// the request count the per-request overhead AlphaA multiplies, so it is
	// the number the owner-batched scheduler drives down; degraded re-fetches
	// through the collective path do not count.
	OneSidedGets int64
}

// Plus returns the field-wise sum.
func (t TransferStats) Plus(o TransferStats) TransferStats {
	return TransferStats{
		CollectiveBytes: t.CollectiveBytes + o.CollectiveBytes,
		CollectiveMsgs:  t.CollectiveMsgs + o.CollectiveMsgs,
		OneSidedBytes:   t.OneSidedBytes + o.OneSidedBytes,
		OneSidedMsgs:    t.OneSidedMsgs + o.OneSidedMsgs,
		OneSidedGets:    t.OneSidedGets + o.OneSidedGets,
	}
}

// TotalBytes returns all payload received by this rank.
func (t TransferStats) TotalBytes() int64 { return t.CollectiveBytes + t.OneSidedBytes }

// transferCounters is the mutable holder embedded in Rank. The fields are
// independent atomics rather than a mutex-guarded struct: the adds sit on
// the one-sided hot path (every indexed get of every async stripe, from
// multiple worker goroutines of the same rank), where four uncontended
// atomic adds are markedly cheaper than a lock/unlock pair — see
// BenchmarkTransferCounters. The trade-off is that a concurrent snapshot
// may observe one transfer's fields partially applied; totals are exact
// whenever the counters are quiescent (after Run returns), which is the
// only time the harness reads them.
type transferCounters struct {
	collectiveBytes atomic.Int64
	collectiveMsgs  atomic.Int64
	oneSidedBytes   atomic.Int64
	oneSidedMsgs    atomic.Int64
	oneSidedGets    atomic.Int64
}

func (c *transferCounters) addCollective(elems int64, msgs int64) {
	c.collectiveBytes.Add(8 * elems)
	c.collectiveMsgs.Add(msgs)
}

func (c *transferCounters) addOneSided(elems int64, msgs int64) {
	c.oneSidedBytes.Add(8 * elems)
	c.oneSidedMsgs.Add(msgs)
}

func (c *transferCounters) addGet() { c.oneSidedGets.Add(1) }

func (c *transferCounters) snapshot() TransferStats {
	return TransferStats{
		CollectiveBytes: c.collectiveBytes.Load(),
		CollectiveMsgs:  c.collectiveMsgs.Load(),
		OneSidedBytes:   c.oneSidedBytes.Load(),
		OneSidedMsgs:    c.oneSidedMsgs.Load(),
		OneSidedGets:    c.oneSidedGets.Load(),
	}
}

func (c *transferCounters) reset() {
	c.collectiveBytes.Store(0)
	c.collectiveMsgs.Store(0)
	c.oneSidedBytes.Store(0)
	c.oneSidedMsgs.Store(0)
	c.oneSidedGets.Store(0)
}

// TransferStats returns a copy of this rank's data-movement counters.
func (r *Rank) TransferStats() TransferStats { return r.counters.snapshot() }

// TransferStats returns every rank's data-movement counters.
func (c *Cluster) TransferStats() []TransferStats {
	out := make([]TransferStats, c.p)
	for i, r := range c.ranks {
		out[i] = r.counters.snapshot()
	}
	return out
}

// TotalTransfer returns the cluster-wide sum of all ranks' counters.
func (c *Cluster) TotalTransfer() TransferStats {
	var sum TransferStats
	for _, r := range c.ranks {
		sum = sum.Plus(r.counters.snapshot())
	}
	return sum
}
