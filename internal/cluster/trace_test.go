package cluster

import (
	"strings"
	"testing"
)

func TestTraceDisabledByDefault(t *testing.T) {
	c := mustNew(t, 2)
	_ = c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 8))
		if err := r.Barrier(); err != nil {
			return err
		}
		_, err := r.Get((r.ID+1)%2, "w", Region{Off: 0, Elems: 4}, make([]float64, 4))
		return err
	})
	ev, dropped := c.Trace()
	if len(ev) != 0 || dropped != 0 {
		t.Fatalf("tracing should be off by default: %d events", len(ev))
	}
}

func TestTraceRecordsAllOps(t *testing.T) {
	const p = 2
	c := mustNew(t, p)
	c.EnableTrace(0)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 16))
		if err := r.Barrier(); err != nil {
			return err
		}
		peer := (r.ID + 1) % p
		if _, err := r.GetIndexed(peer, "w", []Region{{Off: 0, Elems: 2}, {Off: 8, Elems: 2}}, make([]float64, 4)); err != nil {
			return err
		}
		if _, err := r.MulticastPull(peer, "w", 0, 4, make([]float64, 4)); err != nil {
			return err
		}
		if _, err := r.Sendrecv(make([]float64, 3), peer, peer); err != nil {
			return err
		}
		if _, err := r.Allgather(make([]float64, 5)); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, dropped := c.Trace()
	if dropped != 0 {
		t.Fatalf("%d events dropped", dropped)
	}
	counts := map[TraceOp]int{}
	for _, e := range ev {
		counts[e.Op]++
		if e.Op == TraceGet && (e.Elems != 4 || e.Msgs != 2) {
			t.Fatalf("get event wrong: %+v", e)
		}
		if e.Op == TraceMulticast && e.Elems != 4 {
			t.Fatalf("multicast event wrong: %+v", e)
		}
	}
	// Every rank performed each op once.
	for _, op := range []TraceOp{TraceGet, TraceMulticast, TraceSendrecv, TraceAllgather} {
		if counts[op] != p {
			t.Fatalf("op %s recorded %d times, want %d (all: %v)", op, counts[op], p, counts)
		}
	}
	if !strings.Contains(ev[0].String(), "rank") {
		t.Fatal("Event.String is empty")
	}
}

func TestTraceCapAndDisable(t *testing.T) {
	c := mustNew(t, 1)
	c.EnableTrace(3)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 4))
		if err := r.Barrier(); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if _, err := r.Get(0, "w", Region{Off: 0, Elems: 1}, make([]float64, 1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, dropped := c.Trace()
	if len(ev) != 3 || dropped != 7 {
		t.Fatalf("cap: %d events, %d dropped", len(ev), dropped)
	}
	c.DisableTrace()
	ev, _ = c.Trace()
	if len(ev) != 0 {
		t.Fatal("DisableTrace should clear events")
	}
}
