package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperTable3(t *testing.T) {
	n := Default()
	if n.AlphaS != 1.36e-6 || n.BetaS != 1.95e-10 || n.AlphaA != 1.02e-5 || n.BetaA != 3.61e-9 {
		t.Fatalf("default transfer coefficients diverge from Table 3: %+v", n)
	}
	// Paper section 6.2: beta_A / beta_S ~ 18.5.
	ratio := n.BetaA / n.BetaS
	if ratio < 18 || ratio > 19 {
		t.Fatalf("BetaA/BetaS = %.2f, want ~18.5", ratio)
	}
	// The effective async gamma (with Table 2's 8 async compute threads)
	// must match the documented machine truth of 6e-10 per nonzero per
	// dense column (see NetModel.AsyncPenalty for why this deliberately
	// departs from Table 3's fitted 2.07e-8).
	gammaA := n.GammaCore * n.AsyncPenalty / 8
	if math.Abs(gammaA-6e-10) > 1e-13 {
		t.Fatalf("effective gamma_A = %v, want 6e-10", gammaA)
	}
}

func TestMulticastCostGrowsWithFanout(t *testing.T) {
	n := Default()
	if n.MulticastCost(1000, 0) != 0 {
		t.Fatal("zero destinations should cost nothing")
	}
	one := n.MulticastCost(1000, 1)
	if want := n.AlphaS + n.BetaS*1000; one != want {
		t.Fatalf("single-destination multicast = %v, want point-to-point %v", one, want)
	}
	// Multi-destination: 2x payload (scatter-allgather) + per-stage latency.
	if got, want := n.MulticastCost(1000, 3), 2*n.AlphaS+2*n.BetaS*1000; math.Abs(got-want) > 1e-15 {
		t.Fatalf("3-dest multicast = %v, want %v", got, want)
	}
	if got, want := n.MulticastCost(1000, 35), 6*n.AlphaS+2*n.BetaS*1000; math.Abs(got-want) > 1e-15 {
		t.Fatalf("35-dest multicast = %v, want %v", got, want)
	}
}

func TestMulticastMonotone(t *testing.T) {
	n := Default()
	f := func(e uint32, d1, d2 uint8) bool {
		elems := int64(e % 1e6)
		a, b := int(d1%64), int(d2%64)
		if a > b {
			a, b = b, a
		}
		return n.MulticastCost(elems, a) <= n.MulticastCost(elems, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherCost(t *testing.T) {
	n := Default()
	if n.AllgatherCost(1, 1000) != 0 {
		t.Fatal("p=1 allgather should be free")
	}
	got := n.AllgatherCost(4, 1000)
	want := 3 * (n.AlphaS + n.BetaS*1000)
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("AllgatherCost = %v, want %v", got, want)
	}
}

func TestSendrecvCost(t *testing.T) {
	n := Default()
	if got := n.SendrecvCost(500); got != n.AlphaS+n.BetaS*500 {
		t.Fatalf("SendrecvCost = %v", got)
	}
}

func TestOneSidedCost(t *testing.T) {
	n := Default()
	if n.OneSidedCost(0, 0) != 0 {
		t.Fatal("zero regions should cost nothing")
	}
	got := n.OneSidedCost(3, 1000)
	want := 3*n.AlphaA + 1000*n.BetaA
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("OneSidedCost = %v, want %v", got, want)
	}
}

func TestOneSidedVsCollectivePerElement(t *testing.T) {
	// For bulk transfers the per-element cost of one-sided must exceed
	// collective (the premise of the whole paper).
	n := Default()
	elems := int64(1 << 20)
	oneSided := n.OneSidedCost(1, elems)
	collective := n.MulticastCost(elems, 1)
	if oneSided <= collective {
		t.Fatalf("one-sided bulk (%v) should cost more than collective (%v)", oneSided, collective)
	}
}

func TestComputeCosts(t *testing.T) {
	n := Default()
	s := n.SyncComputeCost(1000, 128, 120)
	if want := n.GammaCore * 1000 * 128 / 120; math.Abs(s-want) > 1e-18 {
		t.Fatalf("SyncComputeCost = %v, want %v", s, want)
	}
	a := n.AsyncComputeCost(1000, 128, 8, 5)
	want := n.GammaCore*n.AsyncPenalty*1000*128/8 + n.KappaStripe*5
	if math.Abs(a-want) > 1e-18 {
		t.Fatalf("AsyncComputeCost = %v, want %v", a, want)
	}
	// Async kernel must be slower per nonzero than sync at equal threads.
	if n.AsyncComputeCost(1000, 128, 8, 0) <= n.SyncComputeCost(1000, 128, 8) {
		t.Fatal("async compute should carry a penalty")
	}
	// Zero/negative thread counts clamp rather than divide by zero.
	if math.IsInf(n.SyncComputeCost(10, 10, 0), 0) || math.IsInf(n.AsyncComputeCost(10, 10, -1, 0), 0) {
		t.Fatal("thread clamping failed")
	}
}

func TestOneSidedBatchCost(t *testing.T) {
	n := Default()
	if n.OneSidedBatchCost(0, 0) != 0 {
		t.Fatal("zero regions should cost nothing")
	}
	// One region: a batch degenerates to a plain one-sided request.
	if got, want := n.OneSidedBatchCost(1, 1000), n.OneSidedCost(1, 1000); math.Abs(got-want) > 1e-18 {
		t.Fatalf("single-region batch = %v, want %v", got, want)
	}
	got := n.OneSidedBatchCost(5, 1000)
	want := n.AlphaA + 4*n.RegionAlpha + 1000*n.BetaA
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("OneSidedBatchCost = %v, want %v", got, want)
	}
	// Aggregation must never cost more than separate per-region requests.
	f := func(regionsRaw uint8, elemsRaw uint32) bool {
		regions := int(regionsRaw%32) + 1
		elems := int64(elemsRaw % 1e6)
		return n.OneSidedBatchCost(regions, elems) <= n.OneSidedCost(regions, elems)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaledDividesRegionAlpha(t *testing.T) {
	n := Default().Scaled(4)
	if got, want := n.RegionAlpha, Default().RegionAlpha/4; math.Abs(got-want) > 1e-18 {
		t.Fatalf("scaled RegionAlpha = %v, want %v", got, want)
	}
}
