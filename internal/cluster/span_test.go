package cluster

import (
	"sync"
	"testing"
)

// recordedSpan mirrors one SpanRecorder.Span call.
type recordedSpan struct {
	rank       int
	cat        Category
	op         string
	start, end float64
}

type fakeRecorder struct {
	mu       sync.Mutex
	spans    []recordedSpan
	instants []string
}

func (f *fakeRecorder) Span(rank int, cat Category, op string, start, end float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spans = append(f.spans, recordedSpan{rank, cat, op, start, end})
}

func (f *fakeRecorder) Instant(rank int, op string, at float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.instants = append(f.instants, op)
}

// TestSpanRecorderTiling checks the contract SetSpanRecorder documents: the
// spans of one (rank, category) pair tile that category's ledger total
// exactly — each span starts where the previous ended and the last end
// equals the Breakdown entry bit-for-bit.
func TestSpanRecorderTiling(t *testing.T) {
	clu, err := New(1, Default())
	if err != nil {
		t.Fatal(err)
	}
	rec := &fakeRecorder{}
	clu.SetSpanRecorder(rec)
	charges := []float64{1e-6, 2.5e-7, 3e-5, 4.25e-6}
	err = clu.Run(func(r *Rank) error {
		for _, dt := range charges {
			r.ChargeOp(SyncComp, "compute", dt)
		}
		r.ChargeOp(AsyncComm, "get", 1e-6) // other categories don't interleave
		r.Instant("epilogue.flush")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var syncSpans []recordedSpan
	for _, s := range rec.spans {
		if s.cat == SyncComp {
			syncSpans = append(syncSpans, s)
		}
	}
	if len(syncSpans) != len(charges) {
		t.Fatalf("%d SyncComp spans, want %d", len(syncSpans), len(charges))
	}
	clock := 0.0
	for i, s := range syncSpans {
		if s.start != clock {
			t.Fatalf("span %d starts at %g, previous ended at %g", i, s.start, clock)
		}
		if s.op != "compute" || s.rank != 0 {
			t.Fatalf("span %d mislabeled: %+v", i, s)
		}
		clock = s.end
	}
	if bd := clu.Breakdowns()[0]; clock != bd.SyncComp {
		t.Fatalf("last span end %g != ledger total %g", clock, bd.SyncComp)
	}
	if len(rec.instants) != 1 || rec.instants[0] != "epilogue.flush" {
		t.Fatalf("instants = %v", rec.instants)
	}
}

// TestSpanRecorderDefaultOp checks that a plain Charge reports the
// category's generic label and that Barrier emits its instant.
func TestSpanRecorderDefaultOp(t *testing.T) {
	clu, err := New(2, Default())
	if err != nil {
		t.Fatal(err)
	}
	rec := &fakeRecorder{}
	clu.SetSpanRecorder(rec)
	err = clu.Run(func(r *Rank) error {
		r.Charge(Other, 1e-9)
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.spans {
		if s.op != Other.String() {
			t.Fatalf("unnamed charge labeled %q, want %q", s.op, Other.String())
		}
	}
	barriers := 0
	for _, op := range rec.instants {
		if op == "barrier" {
			barriers++
		}
	}
	if barriers != 2 {
		t.Fatalf("%d barrier instants, want one per rank", barriers)
	}
}

// TestModeledTimeUnchangedByRecorder is the off-by-default guarantee: the
// same program with and without a recorder attached produces bit-identical
// ledgers.
func TestModeledTimeUnchangedByRecorder(t *testing.T) {
	program := func(r *Rank) error {
		r.ChargeOp(SyncComm, "multicast.recv", 1.00000000012e-5)
		r.ChargeOp(SyncComp, "compute", 7.25e-6)
		r.ChargeOp(AsyncComp, "stripe", 3.1e-7)
		return r.Barrier()
	}
	run := func(rec SpanRecorder) []Breakdown {
		clu, err := New(2, Default())
		if err != nil {
			t.Fatal(err)
		}
		clu.SetSpanRecorder(rec)
		if err := clu.Run(program); err != nil {
			t.Fatal(err)
		}
		return clu.Breakdowns()
	}
	plain := run(nil)
	traced := run(&fakeRecorder{})
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("rank %d: traced ledger %+v != plain %+v", i, traced[i], plain[i])
		}
	}
}
