package cluster

import (
	"fmt"
	"testing"
)

func TestTransferStatsOneSided(t *testing.T) {
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 100))
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID == 1 {
			dst := make([]float64, 30)
			if _, err := r.GetIndexed(0, "w", []Region{{Off: 0, Elems: 10}, {Off: 50, Elems: 20}}, dst); err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := c.TransferStats()
	if stats[0].OneSidedBytes != 0 {
		t.Fatalf("rank 0 moved nothing but counted %+v", stats[0])
	}
	if stats[1].OneSidedBytes != 30*8 || stats[1].OneSidedMsgs != 2 {
		t.Fatalf("rank 1 stats = %+v, want 240 bytes / 2 msgs", stats[1])
	}
	total := c.TotalTransfer()
	if total.TotalBytes() != 240 {
		t.Fatalf("TotalTransfer = %+v", total)
	}
}

func TestTransferStatsMulticastReclassifies(t *testing.T) {
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		r.Expose("b", make([]float64, 64))
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID == 1 {
			dst := make([]float64, 16)
			if _, err := r.MulticastPull(0, "b", 8, 16, dst); err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.TransferStats()[1]
	if s.OneSidedBytes != 0 || s.OneSidedMsgs != 0 {
		t.Fatalf("multicast pull leaked into one-sided counters: %+v", s)
	}
	if s.CollectiveBytes != 16*8 || s.CollectiveMsgs != 1 {
		t.Fatalf("collective counters = %+v", s)
	}
}

func TestTransferStatsCollectives(t *testing.T) {
	const p = 3
	c := mustNew(t, p)
	err := c.Run(func(r *Rank) error {
		// Allgather of 10 elements each: every rank receives 20 remote.
		if _, err := r.Allgather(make([]float64, 10)); err != nil {
			return err
		}
		// One ring shift of 5 elements.
		if _, err := r.Sendrecv(make([]float64, 5), (r.ID+1)%p, (r.ID-1+p)%p); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range c.TransferStats() {
		wantBytes := int64((2*10 + 5) * 8)
		if s.CollectiveBytes != wantBytes {
			t.Fatalf("rank %d collective bytes = %d, want %d", i, s.CollectiveBytes, wantBytes)
		}
		if s.CollectiveMsgs != int64(p-1)+1 {
			t.Fatalf("rank %d collective msgs = %d", i, s.CollectiveMsgs)
		}
	}
}

func TestTransferStatsReset(t *testing.T) {
	c := mustNew(t, 1)
	_ = c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 8))
		if err := r.Barrier(); err != nil {
			return err
		}
		_, err := r.Get(0, "w", Region{Off: 0, Elems: 8}, make([]float64, 8))
		return err
	})
	if c.TotalTransfer().TotalBytes() == 0 {
		t.Fatal("expected counted bytes")
	}
	c.Reset()
	if c.TotalTransfer().TotalBytes() != 0 {
		t.Fatal("Reset should clear transfer counters")
	}
}

func TestTransferStatsPlus(t *testing.T) {
	a := TransferStats{CollectiveBytes: 1, CollectiveMsgs: 2, OneSidedBytes: 3, OneSidedMsgs: 4}
	b := a.Plus(a)
	if b.CollectiveBytes != 2 || b.OneSidedMsgs != 8 {
		t.Fatalf("Plus = %+v", b)
	}
	if a.TotalBytes() != 4 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestTransferStatsConcurrent(t *testing.T) {
	c := mustNew(t, 4)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 1000))
		if err := r.Barrier(); err != nil {
			return err
		}
		// Every rank hammers every other rank's window concurrently.
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			go func() {
				dst := make([]float64, 10)
				for i := 0; i < 50; i++ {
					_, err := r.Get((r.ID+1)%r.P, "w", Region{Off: int64(i), Elems: 10}, dst)
					if err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		for g := 0; g < 8; g++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range c.TransferStats() {
		if s.OneSidedBytes != 8*50*10*8 {
			t.Fatal(fmt.Sprintf("rank %d lost counter updates: %+v", i, s))
		}
	}
}

func TestTargetContentionCharging(t *testing.T) {
	net := Default()
	net.TargetContention = 0.5
	c, err := New(2, net)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 100))
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID == 1 {
			dst := make([]float64, 50)
			if _, err := r.GetIndexed(0, "w", []Region{{Off: 0, Elems: 50}}, dst); err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	bds := c.Breakdowns()
	if bds[0].AsyncComm <= 0 {
		t.Fatal("target should be charged contention")
	}
	want := 0.5 * net.OneSidedCost(1, 50)
	if d := bds[0].AsyncComm - want; d > 1e-18 || d < -1e-18 {
		t.Fatalf("target charge %v, want %v", bds[0].AsyncComm, want)
	}
	// With the default model (contention 0), targets stay free.
	c2, _ := New(2, Default())
	_ = c2.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 10))
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID == 1 {
			if _, err := r.Get(0, "w", Region{Off: 0, Elems: 5}, make([]float64, 5)); err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if c2.Breakdowns()[0].AsyncComm != 0 {
		t.Fatal("default model must not charge targets")
	}
}

func TestOneSidedGetsCounting(t *testing.T) {
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 100))
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID == 1 {
			// One aggregated request carrying three regions: one get.
			dst := make([]float64, 30)
			regs := []Region{{Off: 0, Elems: 10}, {Off: 40, Elems: 10}, {Off: 80, Elems: 10}}
			if _, err := r.GetIndexed(0, "w", regs, dst); err != nil {
				return err
			}
			// A multicast pull is collective: no get counted.
			if _, err := r.MulticastPull(0, "w", 0, 8, make([]float64, 8)); err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.TransferStats()[1]
	if s.OneSidedGets != 1 {
		t.Fatalf("OneSidedGets = %d, want 1 (one request, regardless of regions)", s.OneSidedGets)
	}
	if s.OneSidedMsgs != 3 {
		t.Fatalf("OneSidedMsgs = %d, want 3 (one per region)", s.OneSidedMsgs)
	}
	a := TransferStats{OneSidedGets: 2}
	if a.Plus(a).OneSidedGets != 4 {
		t.Fatal("Plus must sum OneSidedGets")
	}
}
