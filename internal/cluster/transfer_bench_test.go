package cluster

import (
	"sync"
	"testing"
)

// mutexCounters is the pre-refactor implementation of transferCounters, kept
// here only as the benchmark baseline for the atomic version.
type mutexCounters struct {
	mu    sync.Mutex
	stats TransferStats
}

func (c *mutexCounters) addOneSided(elems, msgs int64) {
	c.mu.Lock()
	c.stats.OneSidedBytes += 8 * elems
	c.stats.OneSidedMsgs += msgs
	c.mu.Unlock()
}

// BenchmarkTransferCounters measures the atomic transfer counters on the
// one-sided hot path (several worker goroutines of one rank counting every
// indexed get). Compare with BenchmarkTransferCountersMutex, the
// mutex-guarded implementation they replaced; the stats.go doc comment
// references this pair.
func BenchmarkTransferCounters(b *testing.B) {
	var c transferCounters
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.addOneSided(64, 4)
		}
	})
	if c.oneSidedMsgs.Load() == 0 {
		b.Fatal("no adds recorded")
	}
}

func BenchmarkTransferCountersMutex(b *testing.B) {
	var c mutexCounters
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.addOneSided(64, 4)
		}
	})
	if c.stats.OneSidedMsgs == 0 {
		b.Fatal("no adds recorded")
	}
}

func TestTransferCountersConcurrent(t *testing.T) {
	var c transferCounters
	const (
		workers = 8
		iters   = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.addOneSided(2, 1)
				c.addCollective(3, 1)
			}
		}()
	}
	wg.Wait()
	got := c.snapshot()
	want := TransferStats{
		CollectiveBytes: 8 * 3 * workers * iters,
		CollectiveMsgs:  workers * iters,
		OneSidedBytes:   8 * 2 * workers * iters,
		OneSidedMsgs:    workers * iters,
	}
	if got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	c.reset()
	if c.snapshot() != (TransferStats{}) {
		t.Fatal("reset left counts behind")
	}
}
