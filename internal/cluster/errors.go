package cluster

import "errors"

// Typed sentinel errors for the cluster runtime. Every error the transfer
// primitives return wraps one of these, so resilience code (retry loops,
// degradation fallbacks, abort handling) and callers can branch with
// errors.Is instead of matching message strings.
var (
	// ErrAborted marks any error observed by a rank after the cluster was
	// aborted by another rank's failure. Window lookups, collectives, and
	// retry loops all consult the abort flag, so a mid-run rank failure
	// cannot leave peers deadlocked or spinning.
	ErrAborted = errors.New("cluster aborted")

	// ErrWindowMissing reports a one-sided access to a window that was never
	// exposed, or to a target rank outside [0, P).
	ErrWindowMissing = errors.New("window not exposed")

	// ErrRegionOOB reports a one-sided region that falls outside the target
	// window's bounds.
	ErrRegionOOB = errors.New("region out of window bounds")

	// ErrDstTooSmall reports a destination buffer with no room for the
	// requested payload.
	ErrDstTooSmall = errors.New("destination buffer too small")

	// ErrRetryExhausted reports a one-sided get whose injected transient
	// failures outlasted the retry budget. Callers on the asynchronous path
	// treat it as the signal to degrade to the synchronous fallback
	// (SyncFallbackPull); anywhere else it is fatal.
	ErrRetryExhausted = errors.New("one-sided retry budget exhausted")

	// ErrCrashed reports that the fault plan crashed this rank: its virtual
	// clock passed the plan's crash time. The crashed rank's error aborts
	// the cluster, so peers observe ErrAborted.
	ErrCrashed = errors.New("rank crashed by fault plan")
)

// abortError is the error peers observe after the cluster aborts. It
// unwraps to both ErrAborted and the first failing rank's error, so
// errors.Is works against either.
type abortError struct{ cause error }

func (e *abortError) Error() string {
	return "cluster: aborted: " + e.cause.Error()
}

func (e *abortError) Unwrap() []error { return []error{ErrAborted, e.cause} }

// NewAbortError wraps cause in the cluster's abort error type, unwrapping to
// both ErrAborted and cause. Transport backends outside this package use it
// to surface remote aborts with the same errors.Is behaviour the in-process
// simulator produces.
func NewAbortError(cause error) error { return &abortError{cause: cause} }
