package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Cluster is a p-node distributed machine. Create one with New (in-process
// virtual-time simulator) or NewWithTransport (any Transport backend), then
// execute a distributed program with Run; every node this process hosts runs
// the program concurrently in its own goroutine, communicating through the
// Rank handle. Under the simulator that is all p nodes; under a
// multi-process transport it is this process's single rank, with the peers
// running the same program in their own processes.
//
// A Cluster may be Run multiple times; windows and virtual clocks reset
// between runs only via Reset.
type Cluster struct {
	p    int
	net  NetModel
	tr   Transport
	wall bool // transport measures real time; modeled charges are ignored

	ranks []*Rank

	mu       sync.RWMutex  // guards injector and retry
	injector FaultInjector // nil = healthy machine
	retry    RetryPolicy

	log atomic.Pointer[slog.Logger]

	// Crash-recovery membership. recovery is set before Run (SetRecovery);
	// live and deaths are guarded by memMu and describe the current run.
	memMu    sync.Mutex
	recovery bool
	live     int
	deaths   []DeathRecord
}

// DeathRecord describes one rank's crash under recovery: when it died and
// how far its checkpoints had durably progressed. Units is the count of
// recovery units (async stripes/batches then row panels, in the executor's
// canonical order) whose output the last checkpoint made visible; survivors
// re-execute everything from Units onward.
type DeathRecord struct {
	Rank        int
	At          float64 // virtual time of the crash
	Units       int     // recovery units durably checkpointed
	Checkpoints int64   // checkpoint writes the rank completed before dying
}

// New returns a cluster of p nodes on the in-process virtual-time simulator
// with the given network model.
func New(p int, net NetModel) (*Cluster, error) {
	tr, err := NewMemTransport(p)
	if err != nil {
		return nil, err
	}
	return NewWithTransport(tr, net)
}

// NewWithTransport returns a cluster whose ranks communicate through the
// given transport backend. Rank handles exist for all P ranks (so ledger and
// counter accessors stay shape-stable), but Run executes the program only on
// the transport's local ranks.
func NewWithTransport(tr Transport, net NetModel) (*Cluster, error) {
	p := tr.P()
	if p < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", p)
	}
	c := &Cluster{
		p:     p,
		net:   net,
		tr:    tr,
		wall:  tr.WallClock(),
		retry: RetryPolicy{}.Normalize(),
	}
	c.ranks = make([]*Rank, p)
	for i := 0; i < p; i++ {
		c.ranks[i] = &Rank{ID: i, P: p, c: c, crashAt: math.Inf(1)}
	}
	return c, nil
}

// P returns the number of nodes.
func (c *Cluster) P() int { return c.p }

// Net returns the cluster's network model.
func (c *Cluster) Net() NetModel { return c.net }

// Transport returns the transfer backend the cluster runs over.
func (c *Cluster) Transport() Transport { return c.tr }

// WallClock reports whether rank ledgers measure real elapsed time instead
// of accumulating modeled virtual time (see Rank.Charge).
func (c *Cluster) WallClock() bool { return c.wall }

// Run executes fn on every local rank concurrently and waits for all of
// them. If any rank returns an error, the whole cluster aborts: the barrier
// is broken so ranks blocked in collectives fail fast, and every subsequent
// window lookup, transfer, or retry-loop iteration on any rank observes an
// ErrAborted-wrapping error, so a mid-run rank failure cannot deadlock the
// survivors. The joined per-rank errors are returned.
func (c *Cluster) Run(fn func(r *Rank) error) error {
	c.memMu.Lock()
	c.live = c.p
	c.deaths = nil
	c.memMu.Unlock()
	errs := make([]error, c.p)
	var wg sync.WaitGroup
	for _, i := range c.tr.LocalRanks() {
		wg.Add(1)
		go func(rank *Rank) {
			defer wg.Done()
			if err := fn(rank); err != nil {
				errs[rank.ID] = fmt.Errorf("rank %d: %w", rank.ID, err)
				c.abortWith(errs[rank.ID])
			}
		}(c.ranks[i])
	}
	wg.Wait()
	c.tr.Finish()
	return errors.Join(errs...)
}

// abortWith records the first failure and releases every current and
// future barrier waiter with an ErrAborted-wrapping error.
func (c *Cluster) abortWith(cause error) {
	if c.tr.Abort(cause) {
		if l := c.log.Load(); l != nil {
			l.Error("cluster aborted", "cause", cause.Error())
		}
	}
}

// abortedErr returns the cluster-wide abort error, or nil while healthy.
func (c *Cluster) abortedErr() error { return c.tr.AbortErr() }

// Breakdowns returns a copy of every rank's virtual-time ledger.
func (c *Cluster) Breakdowns() []Breakdown {
	out := make([]Breakdown, c.p)
	for i, r := range c.ranks {
		out[i] = r.Breakdown()
	}
	return out
}

// TotalTime returns the cluster's modeled makespan: the maximum node time.
// All algorithms in this repository end with an implicit synchronization
// (the SpMM result is consumed collectively), so the slowest node defines
// the operation's latency.
func (c *Cluster) TotalTime() float64 {
	var max float64
	for _, r := range c.ranks {
		if t := r.Breakdown().NodeTime(); t > max {
			max = t
		}
	}
	return max
}

// Reset clears all windows, staging slots, virtual clocks, transfer and
// resilience counters, and any abort state, preparing the cluster for an
// unrelated run. An attached fault injector survives: repeated runs on one
// plan stay under the same fault regime.
func (c *Cluster) Reset() {
	c.tr.Reset()
	c.memMu.Lock()
	c.live = c.p
	c.deaths = nil
	c.memMu.Unlock()
	for _, r := range c.ranks {
		r.resetClock()
	}
}

// SetRecovery enables (or disables) fail-recover mode for subsequent runs:
// a fault-plan crash becomes a membership transition that survivors recover
// from, instead of tripping the cluster-wide abort. Call it before Run.
func (c *Cluster) SetRecovery(on bool) {
	c.memMu.Lock()
	c.recovery = on
	c.memMu.Unlock()
}

// RecoveryEnabled reports whether fail-recover mode is on.
func (c *Cluster) RecoveryEnabled() bool {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	return c.recovery
}

// Deaths returns the crashes recorded so far in the current run, in rank
// order. Survivors read it after a barrier: every death strictly precedes
// the completion of the fence the dead rank left, so all survivors observe
// the same list.
func (c *Cluster) Deaths() []DeathRecord {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	out := make([]DeathRecord, len(c.deaths))
	copy(out, c.deaths)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// LiveRanks returns the sorted rank IDs still alive in the current run.
func (c *Cluster) LiveRanks() []int {
	dead := map[int]bool{}
	c.memMu.Lock()
	for _, d := range c.deaths {
		dead[d.Rank] = true
	}
	c.memMu.Unlock()
	out := make([]int, 0, c.p)
	for i := 0; i < c.p; i++ {
		if !dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// SpanRecorder observes virtual-time activity on the cluster's ranks. Span
// is called once per Charge with the interval [start, end) on that
// category's cumulative clock (intervals within one rank and category are
// non-overlapping and tile the category total exactly); Instant is called
// for zero-duration markers (barrier entry, epilogue flush), stamped at the
// rank's current modeled makespan. Implementations must be safe for
// concurrent use; obs.Tracer is the standard one. A nil recorder (the
// default) costs one nil check per charge and leaves modeled time
// bit-identical, since recording never feeds back into the simulation.
type SpanRecorder interface {
	Span(rank int, cat Category, op string, start, end float64)
	Instant(rank int, op string, at float64)
}

// SetSpanRecorder attaches (or, with nil, detaches) a span recorder on
// every rank. Call it before Run; charges made while it is attached are
// reported as spans.
func (c *Cluster) SetSpanRecorder(sr SpanRecorder) {
	for _, r := range c.ranks {
		r.mu.Lock()
		r.rec = sr
		r.mu.Unlock()
	}
}

// SetLogger attaches (or, with nil, detaches) a structured logger. Each
// rank logs through a child logger carrying its rank attr, so a chaos run's
// retry storm is attributable line by line. Like span recording, logging is
// pure observation: it never feeds back into modeled time, and the default
// (no logger) costs one atomic load on the resilience paths only — the
// charge hot path never looks at it.
func (c *Cluster) SetLogger(l *slog.Logger) {
	c.log.Store(l)
	for _, r := range c.ranks {
		var rl *slog.Logger
		if l != nil {
			rl = l.With("rank", r.ID)
		}
		r.log.Store(rl)
	}
}

// Rank is one node's handle into the cluster. All methods are safe for use
// by multiple goroutines of the same node (the paper's per-node OpenMP
// threads map to goroutines sharing one Rank).
type Rank struct {
	ID int // this node's rank, 0-based
	P  int // number of nodes
	c  *Cluster

	mu         sync.Mutex
	bd         Breakdown
	lastWall   time.Time // wall-clock mode: end of the last measured interval
	rec        SpanRecorder
	log        atomic.Pointer[slog.Logger] // rank-attributed child of the cluster logger
	fi         FaultInjector               // cached from the cluster; nil = healthy
	retry      RetryPolicy
	crashAt    float64 // virtual time of fault-plan crash; +Inf = never
	recovering bool    // charges redirect to the Recovery category
	counters   transferCounters
	resilience resilienceCounters
	trace      traceBuf
}

// logger returns this rank's attached logger, or nil when logging is off.
func (r *Rank) logger() *slog.Logger { return r.log.Load() }

// injection returns this rank's cached fault injector and retry policy.
func (r *Rank) injection() (FaultInjector, RetryPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fi, r.retry
}

// Net returns the cluster's network model.
func (r *Rank) Net() NetModel { return r.c.net }

// Charge adds dt seconds of virtual time to the given category of this
// node's ledger. Negative charges are rejected. An attached span recorder
// sees the charge under the category's generic label; use ChargeOp to name
// the phase.
//
// On a wall-clock transport the modeled dt is ignored: each charge instead
// closes the real-time interval since the rank's previous charge and books
// the measured seconds to its category, so the ledger's categories tile the
// measured span of the run (the modeled categories are reported as
// "measured"). SyncOverlap is the exception — overlap is a modeled credit
// with no measurable duration of its own, so it books zero without
// consuming the interval.
func (r *Rank) Charge(cat Category, dt float64) {
	r.charge(cat, "", dt)
}

// ChargeOp is Charge with a phase label for span tracing: "multicast.recv",
// "get.indexed", "compute.sync.panel", ... The label has no effect on the
// ledger.
func (r *Rank) ChargeOp(cat Category, op string, dt float64) {
	r.charge(cat, op, dt)
}

// ChargeOpTimed is ChargeOp returning the applied charge: the seconds the
// ledger actually advanced, after any fault-plan straggler scaling. The
// pipelined executor mirrors these into its local arrival/cost bookkeeping
// so overlap accounting stays consistent with the ledger without reading
// the (concurrently advancing) category clocks back.
func (r *Rank) ChargeOpTimed(cat Category, op string, dt float64) float64 {
	return r.charge(cat, op, dt)
}

func (r *Rank) charge(cat Category, op string, dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("cluster: negative charge %v to %v", dt, cat))
	}
	r.mu.Lock()
	if r.recovering {
		cat = Recovery
	}
	if r.c.wall {
		// Measured ledger: replace the modeled dt with the real interval
		// since this rank's previous charge. Attribution is to the charge
		// that closes the interval, which is the category whose operation
		// just finished; with several goroutines charging one rank the
		// intervals still tile wall time exactly, but category attribution
		// is approximate under concurrency (see DESIGN.md section 14).
		now := time.Now()
		if cat == Overlap {
			dt = 0 // modeled credit; no measurable duration, keep the interval open
		} else {
			dt = 0
			if !r.lastWall.IsZero() {
				dt = now.Sub(r.lastWall).Seconds()
			}
			r.lastWall = now
		}
	} else if r.fi != nil {
		dt *= r.fi.ScaleCharge(r.ID, cat)
	}
	f := r.bd.field(cat)
	if f == nil {
		r.mu.Unlock()
		panic(fmt.Sprintf("cluster: unknown category %d", cat))
	}
	start := *f
	*f += dt
	end := *f
	rec := r.rec
	r.mu.Unlock()
	if rec != nil {
		if op == "" {
			op = cat.String()
		}
		rec.Span(r.ID, cat, op, start, end)
	}
	return dt
}

// Instant reports a zero-duration marker to the attached span recorder,
// stamped at this rank's current modeled makespan. A no-op without a
// recorder.
func (r *Rank) Instant(op string) {
	r.mu.Lock()
	rec := r.rec
	at := r.bd.NodeTime()
	r.mu.Unlock()
	if rec != nil {
		rec.Instant(r.ID, op, at)
	}
}

// Breakdown returns a copy of this node's current ledger.
func (r *Rank) Breakdown() Breakdown {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bd
}

func (r *Rank) resetClock() {
	r.mu.Lock()
	r.bd = Breakdown{}
	r.lastWall = time.Time{}
	r.recovering = false
	r.mu.Unlock()
	r.counters.reset()
	r.resilience.reset()
}

// RecoveryEnabled reports whether the cluster is in fail-recover mode.
func (r *Rank) RecoveryEnabled() bool { return r.c.RecoveryEnabled() }

// CrashTime returns this rank's fault-plan crash time (+Inf = never).
func (r *Rank) CrashTime() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashAt
}

// Deaths returns the crashes recorded so far in the current run.
func (r *Rank) Deaths() []DeathRecord { return r.c.Deaths() }

// BeginRecovery redirects this rank's subsequent charges into the Recovery
// category (survivor re-execution of a dead rank's work happens after the
// fence, serial with the rank's own halves). EndRecovery restores normal
// charging. Only the post-fence recovery phase, which is single-threaded
// per rank, may use this.
func (r *Rank) BeginRecovery() {
	r.mu.Lock()
	r.recovering = true
	r.mu.Unlock()
}

// EndRecovery restores normal category charging after BeginRecovery.
func (r *Rank) EndRecovery() {
	r.mu.Lock()
	r.recovering = false
	r.mu.Unlock()
}

func (r *Rank) isRecovering() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recovering
}

// Die records this rank's fault-plan crash as a membership transition: the
// death is published, the rank leaves the barrier (completing any fence the
// survivors are waiting on), and its goroutine must return nil immediately
// after. It fails — returning an error that the caller should propagate to
// trip the PR 3 abort path — when recovery is disabled or when this is the
// last live rank (nobody is left to recover).
func (r *Rank) Die(at float64, units int, checkpoints int64) error {
	c := r.c
	c.memMu.Lock()
	if !c.recovery {
		c.memMu.Unlock()
		return fmt.Errorf("cluster: rank %d: %w (crash time %.4g, recovery disabled)", r.ID, ErrCrashed, at)
	}
	if c.live <= 1 {
		c.memMu.Unlock()
		return fmt.Errorf("cluster: rank %d: %w (crash time %.4g, no live rank left to recover)", r.ID, ErrCrashed, at)
	}
	c.live--
	c.deaths = append(c.deaths, DeathRecord{Rank: r.ID, At: at, Units: units, Checkpoints: checkpoints})
	c.memMu.Unlock()
	r.resilience.addCrash()
	if l := r.logger(); l != nil {
		l.Warn("rank crashed; survivors will recover",
			"event", "crash.recoverable", "at", at,
			"checkpointed_units", units, "checkpoints", checkpoints)
	}
	c.tr.Leave(r.ID)
	return nil
}

// Barrier blocks until every rank has reached it. It returns an error if
// the cluster was aborted by another rank's failure, or if this rank's
// fault-plan crash time has passed (the crash then aborts the cluster
// through Run). With a span recorder attached, entry is reported as a
// "barrier" instant.
func (r *Rank) Barrier() error {
	if err := r.failed(); err != nil {
		return err
	}
	r.Instant("barrier")
	return r.c.tr.Barrier(r.ID)
}
