package cluster

import "sync"

// barrier is a reusable (cyclic) p-party barrier. A failing rank can break
// it, releasing all current and future waiters with the recorded error, so
// that collective operations fail fast instead of deadlocking when a peer
// has exited. A rank that dies under crash recovery instead *leaves*:
// the party count shrinks and the survivors' barrier completes without it.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	initial int
	parties int
	count   int
	gen     uint64
	err     error
}

func newBarrier(parties int) *barrier {
	b := &barrier{initial: parties, parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	gen := b.gen
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && b.err == nil {
		b.cond.Wait()
	}
	return b.err
}

// leave permanently removes one party (a crashed rank under recovery). If
// every remaining party is already waiting, the barrier generation releases
// immediately — the departure is what completes the survivors' fence.
func (b *barrier) leave() {
	b.mu.Lock()
	b.parties--
	if b.parties > 0 && b.count == b.parties {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

func (b *barrier) breakWith(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) reset() {
	b.mu.Lock()
	b.parties = b.initial
	b.count = 0
	b.err = nil
	b.gen++
	b.cond.Broadcast()
	b.mu.Unlock()
}
