package cluster

import (
	"fmt"
	"math"
	"sync"
)

// Fault injection and resilience. The cluster itself stays a healthy
// machine by default; a FaultInjector (normally compiled from a
// chaos.Plan) perturbs it deterministically: charges stretch under
// straggler multipliers, one-sided gets suffer transient failures that the
// rank retries with exponential backoff charged to the virtual clock, and
// multicast legs can be delayed or re-pulled. When a get's retry budget is
// exhausted the caller degrades to SyncFallbackPull, the reliable
// root-mediated path, so the SpMM still completes bit-exactly. Every
// resilience action is counted per rank (ResilienceStats) and attributed
// to the Breakdown ledger through ordinary charges, so makespan inflation
// is visible in the same Figure 10 categories as healthy time.

// AttemptOutcome is a fault injector's verdict on one transfer attempt.
type AttemptOutcome struct {
	// Fail makes this attempt fail transiently (retried up to the budget).
	Fail bool
	// Delay adds virtual seconds to the attempt even when it succeeds (a
	// straggling network leg).
	Delay float64
}

// FaultInjector is consulted by the cluster on every charge and transfer.
// Implementations must be deterministic pure functions of their arguments
// (plus their own seed): attempts are identified by stable keys, never by
// wall-clock state, so the same plan replays the same faults regardless of
// goroutine interleaving. internal/chaos compiles the standard injector.
type FaultInjector interface {
	// ScaleCharge returns the multiplier (>= 0) applied to rank's charges
	// in the given category; 1 leaves the charge untouched. Straggler
	// multipliers > 1 model slow nodes and slow links.
	ScaleCharge(rank int, cat Category) float64
	// GetAttempt judges one attempt of a one-sided get, identified by
	// origin, target, the first region's offset, and the total element
	// count. attempt counts from 1.
	GetAttempt(origin, target int, firstOff, elems int64, attempt int) AttemptOutcome
	// LegAttempt judges one attempt of a multicast leg pull. syncClock is
	// the origin's SyncComm clock at issue time (deterministic: the sync
	// transfer thread is sequential per rank), enabling virtual-time
	// triggers.
	LegAttempt(origin, root int, off, elems int64, syncClock float64, attempt int) AttemptOutcome
	// CrashTime returns the virtual time at which rank dies, or +Inf for
	// never. A crashed rank fails its next transfer or barrier with
	// ErrCrashed, aborting the cluster.
	CrashTime(rank int) float64
	// Retry returns the retry policy ranks use for transient failures.
	Retry() RetryPolicy
}

// RetryPolicy bounds and prices the retry loop of transient transfer
// failures. Backoff is charged to the issuing rank's virtual clock, so
// retries inflate modeled time exactly like real ones would.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per transfer (first try
	// included). Default 4.
	MaxAttempts int
	// BaseBackoff is the virtual-seconds backoff after the first failed
	// attempt. Default 1e-5 (on the order of a one-sided request setup).
	BaseBackoff float64
	// Multiplier grows the backoff per further attempt. Default 2.
	Multiplier float64
}

// Normalize fills zero fields with the defaults.
func (p RetryPolicy) Normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 1e-5
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	return p
}

// Backoff returns the virtual-time backoff charged after the given failed
// attempt (1-based): BaseBackoff * Multiplier^(attempt-1).
func (p RetryPolicy) Backoff(attempt int) float64 {
	return p.BaseBackoff * math.Pow(p.Multiplier, float64(attempt-1))
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector.
// Call it before Run; it survives Reset so a plan's repeated Multiply
// calls stay under the same fault regime. A nil injector (the default)
// keeps every fast path a single nil check.
func (c *Cluster) SetFaultInjector(fi FaultInjector) {
	retry := RetryPolicy{}.Normalize()
	if fi != nil {
		retry = fi.Retry().Normalize()
	}
	c.mu.Lock()
	c.injector = fi
	c.retry = retry
	c.mu.Unlock()
	for _, r := range c.ranks {
		crash := math.Inf(1)
		if fi != nil {
			if t := fi.CrashTime(r.ID); t > 0 {
				crash = t
			}
		}
		r.mu.Lock()
		r.fi = fi
		r.retry = retry
		r.crashAt = crash
		r.mu.Unlock()
	}
}

// FaultInjector returns the attached injector, or nil.
func (c *Cluster) FaultInjector() FaultInjector {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.injector
}

// failed reports why this rank must stop: the cluster aborted (another
// rank's failure) or this rank's fault-plan crash time has passed. The
// transfer primitives and retry loops consult it so neither condition can
// leave ranks spinning or deadlocked.
func (r *Rank) failed() error {
	if err := r.c.abortedErr(); err != nil {
		return err
	}
	r.mu.Lock()
	crashed := r.bd.NodeTime() >= r.crashAt
	at := r.crashAt
	r.mu.Unlock()
	if crashed {
		return fmt.Errorf("cluster: rank %d: %w (crash time %.4g, clock passed it)", r.ID, ErrCrashed, at)
	}
	return nil
}

// Aborted reports the cluster-wide abort error, or nil while healthy.
// Long-running per-rank loops outside the transfer primitives can poll it
// to stop early once a peer has failed.
func (r *Rank) Aborted() error { return r.c.abortedErr() }

// ResilienceStats counts one rank's fault-handling activity: what the
// injected faults cost and how the rank absorbed them. Like
// TransferStats, the counters are incremented by the primitives
// themselves, so they are an honest record an algorithm cannot
// under-report. All virtual-time fields are also charged to the Breakdown
// ledger (backoff and injected delay to the issuing side's comm
// categories), so NodeTime already includes them; these counters exist to
// attribute the inflation.
type ResilienceStats struct {
	// GetRetries counts one-sided attempts that failed transiently and
	// were retried.
	GetRetries int64
	// GetExhausted counts one-sided gets whose retry budget ran out
	// (each normally becomes one Degradation).
	GetExhausted int64
	// Degradations counts exhausted gets re-fetched through the
	// synchronous fallback path.
	Degradations int64
	// DegradedElems counts float64 elements moved by the fallback path.
	DegradedElems int64
	// LegRetries counts multicast leg pulls that failed and re-pulled.
	LegRetries int64
	// BackoffSeconds is virtual time spent backing off between retries.
	BackoffSeconds float64
	// DelaySeconds is injected straggler-leg delay absorbed by transfers.
	DelaySeconds float64
	// Checkpoints counts crash-recovery checkpoint writes (zero unless
	// recovery is enabled).
	Checkpoints int64
	// CheckpointSeconds is virtual time spent writing checkpoints (the
	// Breakdown.Checkpoint total).
	CheckpointSeconds float64
	// Crashes counts this rank's own fault-plan crashes that were absorbed
	// as membership transitions (at most 1 per run).
	Crashes int64
	// RecoveredStripes counts a dead rank's async stripes/batches this rank
	// re-executed as a recovery delegate.
	RecoveredStripes int64
	// RecoveredPanels counts a dead rank's sync row panels this rank
	// re-executed as a recovery delegate.
	RecoveredPanels int64
	// RefetchedElems counts float64 elements re-pulled through RecoverPull
	// to rebuild a dead rank's inputs (distinct from DegradedElems, which
	// counts the retry-exhaustion fallback).
	RefetchedElems int64
	// RecoverySeconds is virtual time this rank spent re-executing dead
	// ranks' work (the Breakdown.Recovery total).
	RecoverySeconds float64
}

// Plus returns the field-wise sum.
func (s ResilienceStats) Plus(o ResilienceStats) ResilienceStats {
	return ResilienceStats{
		GetRetries:        s.GetRetries + o.GetRetries,
		GetExhausted:      s.GetExhausted + o.GetExhausted,
		Degradations:      s.Degradations + o.Degradations,
		DegradedElems:     s.DegradedElems + o.DegradedElems,
		LegRetries:        s.LegRetries + o.LegRetries,
		BackoffSeconds:    s.BackoffSeconds + o.BackoffSeconds,
		DelaySeconds:      s.DelaySeconds + o.DelaySeconds,
		Checkpoints:       s.Checkpoints + o.Checkpoints,
		CheckpointSeconds: s.CheckpointSeconds + o.CheckpointSeconds,
		Crashes:           s.Crashes + o.Crashes,
		RecoveredStripes:  s.RecoveredStripes + o.RecoveredStripes,
		RecoveredPanels:   s.RecoveredPanels + o.RecoveredPanels,
		RefetchedElems:    s.RefetchedElems + o.RefetchedElems,
		RecoverySeconds:   s.RecoverySeconds + o.RecoverySeconds,
	}
}

// Faulted reports whether any fault handling happened at all. Checkpoint
// writes count: they are recovery overhead charged to the clock even when
// no crash fires.
func (s ResilienceStats) Faulted() bool {
	return s.GetRetries != 0 || s.GetExhausted != 0 || s.Degradations != 0 ||
		s.LegRetries != 0 || s.BackoffSeconds != 0 || s.DelaySeconds != 0 ||
		s.Checkpoints != 0 || s.Crashes != 0 ||
		s.RecoveredStripes != 0 || s.RecoveredPanels != 0 ||
		s.RefetchedElems != 0 || s.RecoverySeconds != 0
}

// resilienceCounters is the mutable holder embedded in Rank. A mutex is
// fine here: every update sits on a fault path, which is cold by
// definition (fault-free runs never touch it).
type resilienceCounters struct {
	mu sync.Mutex
	s  ResilienceStats
}

func (c *resilienceCounters) addGetRetry(backoff float64) {
	c.mu.Lock()
	c.s.GetRetries++
	c.s.BackoffSeconds += backoff
	c.mu.Unlock()
}

func (c *resilienceCounters) addExhausted() {
	c.mu.Lock()
	c.s.GetExhausted++
	c.mu.Unlock()
}

func (c *resilienceCounters) addDegradation(elems int64) {
	c.mu.Lock()
	c.s.Degradations++
	c.s.DegradedElems += elems
	c.mu.Unlock()
}

func (c *resilienceCounters) addLegRetry(backoff float64) {
	c.mu.Lock()
	c.s.LegRetries++
	c.s.BackoffSeconds += backoff
	c.mu.Unlock()
}

func (c *resilienceCounters) addDelay(d float64) {
	c.mu.Lock()
	c.s.DelaySeconds += d
	c.mu.Unlock()
}

func (c *resilienceCounters) addCheckpoints(n int64, seconds float64) {
	c.mu.Lock()
	c.s.Checkpoints += n
	c.s.CheckpointSeconds += seconds
	c.mu.Unlock()
}

func (c *resilienceCounters) addCrash() {
	c.mu.Lock()
	c.s.Crashes++
	c.mu.Unlock()
}

func (c *resilienceCounters) addRecovered(stripes, panels int64, seconds float64) {
	c.mu.Lock()
	c.s.RecoveredStripes += stripes
	c.s.RecoveredPanels += panels
	c.s.RecoverySeconds += seconds
	c.mu.Unlock()
}

func (c *resilienceCounters) addRefetched(elems int64) {
	c.mu.Lock()
	c.s.RefetchedElems += elems
	c.mu.Unlock()
}

func (c *resilienceCounters) snapshot() ResilienceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

func (c *resilienceCounters) reset() {
	c.mu.Lock()
	c.s = ResilienceStats{}
	c.mu.Unlock()
}

// ResilienceStats returns a copy of this rank's fault-handling counters.
func (r *Rank) ResilienceStats() ResilienceStats { return r.resilience.snapshot() }

// CountCheckpoints records n completed checkpoint writes costing the given
// applied virtual seconds (already charged to the Checkpoint category by
// the executor).
func (r *Rank) CountCheckpoints(n int64, seconds float64) { r.resilience.addCheckpoints(n, seconds) }

// CountRecovered records re-executed units of a dead rank's work and the
// applied Recovery-category seconds they cost.
func (r *Rank) CountRecovered(stripes, panels int64, seconds float64) {
	r.resilience.addRecovered(stripes, panels, seconds)
}

// ResilienceStats returns every rank's fault-handling counters.
func (c *Cluster) ResilienceStats() []ResilienceStats {
	out := make([]ResilienceStats, c.p)
	for i, r := range c.ranks {
		out[i] = r.resilience.snapshot()
	}
	return out
}

// TotalResilience returns the cluster-wide sum of all ranks' counters.
func (c *Cluster) TotalResilience() ResilienceStats {
	var sum ResilienceStats
	for _, r := range c.ranks {
		sum = sum.Plus(r.resilience.snapshot())
	}
	return sum
}

// regionsTotal sums the element counts of a region list.
func regionsTotal(regions []Region) int64 {
	var n int64
	for _, reg := range regions {
		n += reg.Elems
	}
	return n
}
