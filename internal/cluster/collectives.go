package cluster

import "fmt"

// Synchronous collectives built on a deposit-barrier-collect discipline:
// each participating rank deposits its outgoing payload in its staging slot,
// everyone synchronizes, then each rank copies what it needs. Two barriers
// bound every step so slots can be reused. This realizes the data plane of
// MPI_Allgather and the cyclic MPI_Sendrecv shifts of the dense-shifting
// baseline; costs are charged by callers from NetModel.

// deposit places data in this rank's staging slot.
func (r *Rank) deposit(data []float64) {
	r.c.tr.Deposit(r.ID, data)
}

func (r *Rank) collect(from int) ([]float64, error) {
	if err := r.c.abortedErr(); err != nil {
		return nil, err
	}
	return r.c.tr.Collect(r.ID, from)
}

// Sendrecv simultaneously sends `send` toward rank `to` and receives the
// payload deposited by rank `from`, as one synchronous shift step. Every
// rank must call it in the same round. The received slice is a copy.
func (r *Rank) Sendrecv(send []float64, to, from int) ([]float64, error) {
	if err := r.failed(); err != nil {
		return nil, err
	}
	if to < 0 || to >= r.P || from < 0 || from >= r.P {
		return nil, fmt.Errorf("cluster: rank %d: Sendrecv peers (%d,%d) out of range", r.ID, to, from)
	}
	r.deposit(send)
	if err := r.Barrier(); err != nil {
		return nil, err
	}
	src, err := r.collect(from)
	if err != nil {
		return nil, err
	}
	recv := make([]float64, len(src))
	copy(recv, src)
	r.counters.addCollective(int64(len(recv)), 1)
	r.trace.record(Event{Rank: r.ID, Op: TraceSendrecv, Peer: from, Elems: int64(len(recv)), Msgs: 1})
	// Second barrier: nobody overwrites a slot before all reads complete.
	if err := r.Barrier(); err != nil {
		return nil, err
	}
	return recv, nil
}

// Allgather contributes this rank's local slice and returns every rank's
// contribution, indexed by rank. The result slices are copies. Every rank
// must call it in the same round.
func (r *Rank) Allgather(local []float64) ([][]float64, error) {
	if err := r.failed(); err != nil {
		return nil, err
	}
	r.deposit(local)
	if err := r.Barrier(); err != nil {
		return nil, err
	}
	out := make([][]float64, r.P)
	var recvElems int64
	for i := 0; i < r.P; i++ {
		src, err := r.collect(i)
		if err != nil {
			return nil, err
		}
		out[i] = make([]float64, len(src))
		copy(out[i], src)
		if i != r.ID {
			recvElems += int64(len(src))
		}
	}
	r.counters.addCollective(recvElems, int64(r.P-1))
	r.trace.record(Event{Rank: r.ID, Op: TraceAllgather, Peer: -1, Elems: recvElems, Msgs: int64(r.P - 1)})
	if err := r.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}
