// Package cluster is the distributed-runtime substrate of this repository:
// a stand-in for the MPI + interconnect stack of the paper's evaluation
// platform (OpenMPI/UCX over a Cray Slingshot network on NCSA Delta).
//
// It provides two things:
//
//  1. Real message-passing mechanics. P "nodes" run as goroutines inside one
//     process. Collectives (multicast, allgather, cyclic shifts) and
//     one-sided indexed gets (the MPI_Rget + MPI_Type_indexed pattern) move
//     actual float64 data, so every distributed algorithm computes real,
//     verifiable results.
//
//  2. A virtual-time network model. Wall-clock time inside a single-host
//     simulation says nothing about a 4096-core supercomputer, so each node
//     carries a virtual clock, split into the categories of the paper's
//     Figure 10 (synchronous/asynchronous x communication/computation, plus
//     Other). Transfer mechanics report element counts; algorithms convert
//     them to seconds through NetModel and charge the appropriate category.
//
// The separation of mechanics (what moved) from model (what it cost) is
// deliberate: the paper's preprocessing model is *calibrated against* the
// machine, so the machine's true parameters must live somewhere the
// classifier cannot see.
package cluster

import "math"

// NetModel is the machine-truth performance model of the simulated cluster.
// The default values are derived from the paper's Table 3, which reports
// the coefficients measured (by linear regression) on NCSA Delta. Costs are
// expressed per float64 element, matching the paper's convention.
type NetModel struct {
	// AlphaS is the per-message software/latency overhead of a synchronous
	// (collective) transfer step, in seconds.
	AlphaS float64
	// BetaS is the per-element transfer cost of collective communication
	// (inverse effective bandwidth), in seconds per float64.
	BetaS float64
	// AlphaA is the per-request overhead of a one-sided get. It is ~7.5x
	// AlphaS on Delta: fine-grained RDMA pays library and round-trip costs
	// per region.
	AlphaA float64
	// BetaA is the per-element transfer cost of one-sided communication.
	// Paper section 6.2: BetaA/BetaS ~ 18.5.
	BetaA float64
	// RegionAlpha is the marginal per-region cost of adding one more indexed
	// region to an *already issued* one-sided request (OneSidedBatchCost).
	// AlphaA bundles request setup, library call, and network round trip;
	// once a request is in flight, each extra MPI_Type_indexed region only
	// pays descriptor build and target-side gather, which is why aggregating
	// the regions of many stripes into one get amortizes the dominant AlphaA.
	// Default: AlphaA/8.
	RegionAlpha float64

	// GammaCore is the compute cost per (nonzero x dense column) on a single
	// thread for the row-major synchronous kernel, in seconds. 1.2e-9
	// corresponds to a memory-bound streaming SpMM (~1.7 GFLOP/s/core),
	// which keeps the bulk-synchronous baselines communication-bound at the
	// default node count (Figure 10) while making single-node runs
	// compute-bound, as in the strong-scaling study (Figure 11).
	GammaCore float64
	// AsyncPenalty multiplies GammaCore for the column-major asynchronous
	// kernel, which cannot buffer output rows and pays one atomic per
	// nonzero (paper section 4.1). The effective async compute coefficient
	// is gamma_A = GammaCore * AsyncPenalty / asyncCompThreads. Note: the
	// paper's Table 3 reports gamma_A = 2.07e-8 as fitted on its testbed;
	// that value is inconsistent with the paper's own Figure 2 (it would
	// make Async Fine unable to win on queen/web by two orders of
	// magnitude), so this simulator uses a machine truth of gamma_A = 6e-10
	// under which the paper's qualitative results are self-consistent.
	AsyncPenalty float64
	// KappaStripe is the extra per-stripe software overhead of asynchronous
	// computation (the paper's kappa_A).
	KappaStripe float64
	// SetupPerStripe models the "Other" category of Figure 10: per-stripe
	// initialization of MPI datatypes and request structures.
	SetupPerStripe float64
	// TargetContention is the fraction of each one-sided transfer's cost
	// additionally charged to the *target* node. Real RDMA targets are
	// passive in software but their NIC and memory bandwidth are consumed —
	// the paper's stated reason for limiting async communication threads
	// ("a large number of one-sided transfers results in high resource
	// contention", section 6.2). 0 (the default) reproduces the paper's
	// purely origin-side accounting; the ablation bench explores >0.
	TargetContention float64
	// SetupBase is the fixed per-node setup cost of one distributed SpMM
	// (window creation, communicator setup — the bulk of Figure 10's
	// "Other"). It puts a floor under every algorithm's time, which is what
	// keeps speedups on small, highly local matrices (queen) from growing
	// unboundedly.
	SetupBase float64
	// CheckpointAlpha is the fixed per-checkpoint cost of snapshotting a
	// rank's C-panel accumulator and progress cursors to node-local durable
	// storage (file open, metadata sync), in seconds. Charged to the
	// Checkpoint category only when crash recovery is enabled.
	CheckpointAlpha float64
	// CheckpointBeta is the per-element cost of a checkpoint write — the
	// inverse bandwidth of streaming the C block to local NVMe (~8 GB/s for
	// 8-byte float64 elements at the default).
	CheckpointBeta float64
}

// Default returns the NetModel matching the paper's measured Delta
// coefficients (Table 3 plus the thread-count conventions of Table 2).
func Default() NetModel {
	return NetModel{
		AlphaS:          1.36e-6,
		BetaS:           1.95e-10,
		AlphaA:          1.02e-5,
		BetaA:           3.61e-9,
		RegionAlpha:     1.275e-6, // AlphaA/8
		GammaCore:       1.2e-9,
		AsyncPenalty:    4, // gamma_A = 1.2e-9 * 4 / 8 threads = 6e-10 per nnz*K
		KappaStripe:     8.72e-9,
		SetupPerStripe:  2e-6,
		SetupBase:       8e-3,
		CheckpointAlpha: 5e-4,
		CheckpointBeta:  1.25e-10, // ~8 GB/s local NVMe per float64
	}
}

// Scaled returns the model of a 1/f-scale machine: per-message and
// per-stripe fixed overheads shrink by f while per-element and per-nonzero
// costs are unchanged. This keeps the ratio of fixed overhead to payload
// invariant when this repository's evaluation runs matrices (and stripe
// widths) scaled down by f from the paper's, so the classifier faces the
// same trade-offs the paper's machine poses at full scale.
func (n NetModel) Scaled(f float64) NetModel {
	if f <= 0 {
		panic("cluster: scale factor must be positive")
	}
	n.AlphaS /= f
	n.AlphaA /= f
	n.RegionAlpha /= f
	n.KappaStripe /= f
	n.SetupPerStripe /= f
	n.SetupBase /= f
	n.CheckpointAlpha /= f
	return n
}

// MulticastCost returns the per-participant cost of a multicast of elems
// float64 values to ndests destination nodes. Large-message broadcasts use
// pipelined scatter-allgather (van de Geijn), moving ~2x the payload past
// every participant regardless of fan-out, while the latency term pays one
// tree stage per level: AlphaS*ceil(log2(ndests+1)) + 2*BetaS*elems. A
// single destination degenerates to a point-to-point send (1x payload).
// The extra payload factor and the latency stages are what make the very
// wide multicasts of twitter/friendster costly next to dense shifting's
// point-to-point rotation (paper section 7.2, mean fan-out 35.7 and 43.5).
func (n NetModel) MulticastCost(elems int64, ndests int) float64 {
	if ndests <= 0 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(ndests) + 1))
	payload := 2.0
	if ndests == 1 {
		payload = 1.0
	}
	return n.AlphaS*stages + payload*n.BetaS*float64(elems)
}

// SendrecvCost returns the cost of one cyclic-shift step exchanging elems
// elements in each direction (send and receive overlap on full-duplex
// links, so the exchange costs one transfer).
func (n NetModel) SendrecvCost(elems int64) float64 {
	return n.AlphaS + n.BetaS*float64(elems)
}

// AllgatherCost returns the per-node cost of a ring allgather across p
// nodes where each node contributes blockElems elements: p-1 steps, each a
// block exchange.
func (n NetModel) AllgatherCost(p int, blockElems int64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (n.AlphaS + n.BetaS*float64(blockElems))
}

// OneSidedCost returns the origin-side cost of a one-sided indexed get of
// `regions` contiguous regions totalling elems elements. The target is
// passive and is charged nothing (paper section 2.3).
func (n NetModel) OneSidedCost(regions int, elems int64) float64 {
	if regions <= 0 {
		return 0
	}
	return n.AlphaA*float64(regions) + n.BetaA*float64(elems)
}

// OneSidedBatchCost returns the origin-side cost of one *aggregated*
// one-sided get carrying `regions` indexed regions totalling elems elements:
// the full per-request overhead AlphaA is paid once, and each additional
// region pays only the marginal RegionAlpha. With one region it equals
// OneSidedCost; with many it is strictly cheaper, which is the modeled win
// of the owner-batched scheduler (core.Params.LegacyAsyncGets restores the
// per-stripe OneSidedCost accounting).
func (n NetModel) OneSidedBatchCost(regions int, elems int64) float64 {
	if regions <= 0 {
		return 0
	}
	return n.AlphaA + n.RegionAlpha*float64(regions-1) + n.BetaA*float64(elems)
}

// CheckpointCost returns the cost of one checkpoint write covering elems
// float64 elements of accumulator state (plus negligible progress cursors):
// a fixed open/sync overhead and a streaming write to node-local storage.
func (n NetModel) CheckpointCost(elems int64) float64 {
	return n.CheckpointAlpha + n.CheckpointBeta*float64(elems)
}

// SyncComputeCost returns the cost of multiplying nnz nonzeros against K
// dense columns with the row-major buffered kernel spread over `threads`
// threads.
func (n NetModel) SyncComputeCost(nnz int64, k, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	return n.GammaCore * float64(nnz) * float64(k) / float64(threads)
}

// AsyncComputeCost returns the cost of the column-major atomic-heavy kernel
// over nnz nonzeros, K columns, `stripes` stripes, and `threads` async
// compute threads.
func (n NetModel) AsyncComputeCost(nnz int64, k, threads, stripes int) float64 {
	if threads < 1 {
		threads = 1
	}
	return n.GammaCore*n.AsyncPenalty*float64(nnz)*float64(k)/float64(threads) +
		n.KappaStripe*float64(stripes)
}

// Breakdown is the per-node virtual-time ledger, mirroring the categories of
// the paper's Figure 10. The synchronous and asynchronous halves execute in
// parallel (different thread groups), so a node's makespan is Other plus the
// longer of the two halves.
type Breakdown struct {
	SyncComm  float64
	SyncComp  float64
	AsyncComm float64
	AsyncComp float64
	Other     float64
	// SyncOverlap is the portion of the synchronous half hidden by
	// pipelining stripe multicasts with row-panel compute (the non-blocking
	// MPI_Ibcast overlap of the paper's Algorithm 1). The category totals
	// above are charged identically whether or not the executor pipelines;
	// the overlap credit is what turns the serial sum SyncComm + SyncComp
	// into the pipelined sync-half makespan. It never exceeds
	// min(SyncComm, SyncComp) and is zero under core's DisableOverlap
	// escape hatch, for the SDDMM executor, and for every baseline, which
	// preserves the legacy serial accounting exactly.
	SyncOverlap float64
	// Checkpoint is virtual time spent writing crash-recovery checkpoints
	// of the rank's C accumulator state to node-local storage. Serial with
	// both halves (the snapshot must be consistent, so compute is fenced
	// while it streams out); zero unless recovery is enabled.
	Checkpoint float64
	// Recovery is virtual time a survivor spends re-executing a dead rank's
	// lost work: re-fetching its inputs and recomputing its panels/stripes.
	// It happens after the post-run fence, strictly serial with the rank's
	// own halves; zero in fault-free and fail-clean runs.
	Recovery float64
}

// NodeTime returns the node's modeled makespan.
func (b Breakdown) NodeTime() float64 {
	sync := b.SyncComm + b.SyncComp - b.SyncOverlap
	async := b.AsyncComm + b.AsyncComp
	if async > sync {
		sync = async
	}
	return b.Other + b.Checkpoint + b.Recovery + sync
}

// field returns the ledger slot for a category, or nil if unknown.
func (b *Breakdown) field(cat Category) *float64 {
	switch cat {
	case SyncComm:
		return &b.SyncComm
	case SyncComp:
		return &b.SyncComp
	case AsyncComm:
		return &b.AsyncComm
	case AsyncComp:
		return &b.AsyncComp
	case Other:
		return &b.Other
	case Overlap:
		return &b.SyncOverlap
	case Checkpoint:
		return &b.Checkpoint
	case Recovery:
		return &b.Recovery
	}
	return nil
}

// Plus returns the category-wise sum of two breakdowns.
func (b Breakdown) Plus(o Breakdown) Breakdown {
	return Breakdown{
		SyncComm:    b.SyncComm + o.SyncComm,
		SyncComp:    b.SyncComp + o.SyncComp,
		AsyncComm:   b.AsyncComm + o.AsyncComm,
		AsyncComp:   b.AsyncComp + o.AsyncComp,
		Other:       b.Other + o.Other,
		SyncOverlap: b.SyncOverlap + o.SyncOverlap,
		Checkpoint:  b.Checkpoint + o.Checkpoint,
		Recovery:    b.Recovery + o.Recovery,
	}
}

// Category labels a Breakdown component for charging.
type Category int

// Categories of virtual time, matching Figure 10, plus the Overlap credit
// of the pipelined sync path (charged once per run by the executor, already
// in post-straggler applied seconds — fault injectors scale it by 1).
const (
	SyncComm Category = iota
	SyncComp
	AsyncComm
	AsyncComp
	Other
	Overlap
	// Checkpoint and Recovery are the fail-recover categories: checkpoint
	// writes and survivor re-execution. Like Other they are serial with both
	// halves, and fault injectors scale them by 1 (local storage and the
	// recovery protocol are not subject to network stragglers).
	Checkpoint
	Recovery
)

// String returns the Figure 10 label of the category.
func (c Category) String() string {
	switch c {
	case SyncComm:
		return "Sync Comm"
	case SyncComp:
		return "Sync Comp"
	case AsyncComm:
		return "Async Comm"
	case AsyncComp:
		return "Async Comp"
	case Other:
		return "Other"
	case Overlap:
		return "Sync Overlap"
	case Checkpoint:
		return "Checkpoint"
	case Recovery:
		return "Recovery"
	}
	return "Unknown"
}
