package cluster

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// testInjector is a hand-wired FaultInjector for unit tests: table-driven
// verdicts instead of hashing, so each test controls exactly which attempt
// fails.
type testInjector struct {
	scale func(rank int, cat Category) float64
	get   func(origin, target int, attempt int) AttemptOutcome
	leg   func(origin, root int, attempt int) AttemptOutcome
	crash map[int]float64
	retry RetryPolicy
}

func (t *testInjector) ScaleCharge(rank int, cat Category) float64 {
	if t.scale == nil {
		return 1
	}
	return t.scale(rank, cat)
}

func (t *testInjector) GetAttempt(origin, target int, firstOff, elems int64, attempt int) AttemptOutcome {
	if t.get == nil {
		return AttemptOutcome{}
	}
	return t.get(origin, target, attempt)
}

func (t *testInjector) LegAttempt(origin, root int, off, elems int64, syncClock float64, attempt int) AttemptOutcome {
	if t.leg == nil {
		return AttemptOutcome{}
	}
	return t.leg(origin, root, attempt)
}

func (t *testInjector) CrashTime(rank int) float64 {
	if at, ok := t.crash[rank]; ok {
		return at
	}
	return math.Inf(1)
}

func (t *testInjector) Retry() RetryPolicy { return t.retry }

// TestWindowErrorPaths is the table-driven satellite: every window.go error
// path must fail with its typed sentinel, checkable with errors.Is.
func TestWindowErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		call    func(r *Rank, dst []float64) error
		wantErr error
	}{
		{
			name: "target negative",
			call: func(r *Rank, dst []float64) error {
				_, err := r.GetIndexed(-1, "w", []Region{{Off: 0, Elems: 1}}, dst)
				return err
			},
			wantErr: ErrWindowMissing,
		},
		{
			name: "target past cluster",
			call: func(r *Rank, dst []float64) error {
				_, err := r.GetIndexed(99, "w", []Region{{Off: 0, Elems: 1}}, dst)
				return err
			},
			wantErr: ErrWindowMissing,
		},
		{
			name: "window never exposed",
			call: func(r *Rank, dst []float64) error {
				_, err := r.GetIndexed(0, "nope", []Region{{Off: 0, Elems: 1}}, dst)
				return err
			},
			wantErr: ErrWindowMissing,
		},
		{
			name: "region past window end",
			call: func(r *Rank, dst []float64) error {
				_, err := r.GetIndexed(0, "w", []Region{{Off: 2, Elems: 5}}, dst)
				return err
			},
			wantErr: ErrRegionOOB,
		},
		{
			name: "region negative offset",
			call: func(r *Rank, dst []float64) error {
				_, err := r.GetIndexed(0, "w", []Region{{Off: -1, Elems: 1}}, dst)
				return err
			},
			wantErr: ErrRegionOOB,
		},
		{
			name: "dst too small",
			call: func(r *Rank, dst []float64) error {
				_, err := r.GetIndexed(0, "w", []Region{{Off: 0, Elems: 4}}, dst[:2])
				return err
			},
			wantErr: ErrDstTooSmall,
		},
		{
			name: "multicast window missing",
			call: func(r *Rank, dst []float64) error {
				_, err := r.MulticastPull(0, "nope", 0, 1, dst)
				return err
			},
			wantErr: ErrWindowMissing,
		},
		{
			name: "fallback window missing",
			call: func(r *Rank, dst []float64) error {
				_, err := r.SyncFallbackPull(0, "nope", []Region{{Off: 0, Elems: 1}}, dst)
				return err
			},
			wantErr: ErrWindowMissing,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustNew(t, 2)
			err := c.Run(func(r *Rank) error {
				r.Expose("w", make([]float64, 4))
				if err := r.Barrier(); err != nil {
					return err
				}
				if r.ID != 1 {
					return nil
				}
				err := tc.call(r, make([]float64, 8))
				if !errors.Is(err, tc.wantErr) {
					return fmt.Errorf("got %v, want errors.Is(%v)", err, tc.wantErr)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResetClearsEverything is the other window satellite: Reset must leave
// no trace of the previous run — windows, staging slots, clocks, transfer
// counters, resilience counters, abort state.
func TestResetClearsEverything(t *testing.T) {
	c := mustNew(t, 2)
	inj := &testInjector{get: func(origin, target, attempt int) AttemptOutcome {
		return AttemptOutcome{Fail: attempt == 1} // every get retried once
	}}
	c.SetFaultInjector(inj)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", []float64{1, 2, 3, 4})
		r.Charge(SyncComp, 1.0)
		if err := r.Barrier(); err != nil {
			return err
		}
		dst := make([]float64, 4)
		if _, err := r.GetIndexed((r.ID+1)%2, "w", []Region{{Off: 0, Elems: 4}}, dst); err != nil {
			return err
		}
		if _, err := r.Sendrecv(dst, (r.ID+1)%2, (r.ID+1)%2); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalTime() == 0 || !c.TotalResilience().Faulted() {
		t.Fatal("run left no state to clear; test is vacuous")
	}

	c.Reset()

	mt := c.Transport().(*memTransport)
	for i := 0; i < c.P(); i++ {
		if len(mt.windows[i]) != 0 {
			t.Errorf("rank %d still has %d windows after Reset", i, len(mt.windows[i]))
		}
		if mt.staging[i] != nil {
			t.Errorf("rank %d staging slot not cleared", i)
		}
	}
	if got := c.TotalTime(); got != 0 {
		t.Errorf("clocks not cleared: TotalTime = %v", got)
	}
	for i, bd := range c.Breakdowns() {
		if bd != (Breakdown{}) {
			t.Errorf("rank %d breakdown not zeroed: %+v", i, bd)
		}
	}
	for i, ts := range c.TransferStats() {
		if ts != (TransferStats{}) {
			t.Errorf("rank %d transfer counters not zeroed: %+v", i, ts)
		}
	}
	for i, rs := range c.ResilienceStats() {
		if rs != (ResilienceStats{}) {
			t.Errorf("rank %d resilience counters not zeroed: %+v", i, rs)
		}
	}
	if c.abortedErr() != nil {
		t.Error("abort state survived Reset")
	}
	if c.FaultInjector() != inj {
		t.Error("fault injector must survive Reset")
	}
}

// TestGetRetryChargesBackoff: transient failures retry with exponential
// backoff charged to AsyncComm and counted in ResilienceStats.
func TestGetRetryChargesBackoff(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: 1e-3, Multiplier: 2}
	c := mustNew(t, 2)
	c.SetFaultInjector(&testInjector{
		retry: pol,
		get: func(origin, target, attempt int) AttemptOutcome {
			return AttemptOutcome{Fail: origin == 1 && attempt <= 2}
		},
	})
	err := c.Run(func(r *Rank) error {
		r.Expose("w", []float64{7, 8})
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID != 1 {
			return nil
		}
		dst := make([]float64, 2)
		if _, err := r.GetIndexed(0, "w", []Region{{Off: 0, Elems: 2}}, dst); err != nil {
			return err
		}
		if dst[0] != 7 || dst[1] != 8 {
			return fmt.Errorf("retried get returned %v", dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := c.ResilienceStats()[1]
	if rs.GetRetries != 2 {
		t.Errorf("GetRetries = %d, want 2", rs.GetRetries)
	}
	wantBackoff := pol.Backoff(1) + pol.Backoff(2) // 1e-3 + 2e-3
	if math.Abs(rs.BackoffSeconds-wantBackoff) > 1e-15 {
		t.Errorf("BackoffSeconds = %v, want %v", rs.BackoffSeconds, wantBackoff)
	}
	if got := c.Breakdowns()[1].AsyncComm; math.Abs(got-wantBackoff) > 1e-15 {
		t.Errorf("AsyncComm = %v, want the backoff %v charged to the clock", got, wantBackoff)
	}
	if other := c.ResilienceStats()[0]; other.Faulted() {
		t.Errorf("rank 0 should be untouched, got %+v", other)
	}
}

// TestGetExhaustionAndFallback: a persistently failing get exhausts the
// budget with ErrRetryExhausted; SyncFallbackPull then moves the same data,
// reclassified as collective traffic.
func TestGetExhaustionAndFallback(t *testing.T) {
	c := mustNew(t, 2)
	c.SetFaultInjector(&testInjector{
		retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 1e-6, Multiplier: 2},
		get: func(origin, target, attempt int) AttemptOutcome {
			return AttemptOutcome{Fail: origin == 1}
		},
	})
	err := c.Run(func(r *Rank) error {
		r.Expose("w", []float64{1, 2, 3})
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID != 1 {
			return nil
		}
		dst := make([]float64, 3)
		_, err := r.GetIndexed(0, "w", []Region{{Off: 0, Elems: 3}}, dst)
		if !errors.Is(err, ErrRetryExhausted) {
			return fmt.Errorf("got %v, want ErrRetryExhausted", err)
		}
		n, err := r.SyncFallbackPull(0, "w", []Region{{Off: 0, Elems: 3}}, dst)
		if err != nil {
			return err
		}
		if n != 3 || dst[0] != 1 || dst[2] != 3 {
			return fmt.Errorf("fallback moved %d elems, dst %v", n, dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := c.ResilienceStats()[1]
	if rs.GetExhausted != 1 || rs.Degradations != 1 || rs.DegradedElems != 3 {
		t.Errorf("resilience = %+v, want 1 exhausted, 1 degradation of 3 elems", rs)
	}
	if rs.GetRetries != 2 { // attempts 1 and 2 retried; attempt 3 exhausts
		t.Errorf("GetRetries = %d, want 2", rs.GetRetries)
	}
	ts := c.TransferStats()[1]
	if ts.OneSidedBytes != 0 || ts.CollectiveBytes != 3*8 {
		t.Errorf("fallback traffic misclassified: %+v (want 24 collective bytes, 0 one-sided)", ts)
	}
}

// TestMulticastLegRetry: failed legs re-pull with backoff charged to
// SyncComm; injected delay lands on the clock too.
func TestMulticastLegRetry(t *testing.T) {
	c := mustNew(t, 2)
	c.SetFaultInjector(&testInjector{
		retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: 1e-3, Multiplier: 2},
		leg: func(origin, root, attempt int) AttemptOutcome {
			if origin != 1 {
				return AttemptOutcome{}
			}
			if attempt == 1 {
				return AttemptOutcome{Fail: true}
			}
			return AttemptOutcome{Delay: 5e-3}
		},
	})
	err := c.Run(func(r *Rank) error {
		r.Expose("w", []float64{4, 5})
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID != 1 {
			return nil
		}
		dst := make([]float64, 2)
		if _, err := r.MulticastPull(0, "w", 0, 2, dst); err != nil {
			return err
		}
		if dst[0] != 4 || dst[1] != 5 {
			return fmt.Errorf("leg retry returned %v", dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := c.ResilienceStats()[1]
	if rs.LegRetries != 1 || rs.DelaySeconds != 5e-3 {
		t.Errorf("resilience = %+v, want 1 leg retry and 5e-3 delay", rs)
	}
	want := 1e-3 + 5e-3 // backoff after attempt 1 + injected delay
	if got := c.Breakdowns()[1].SyncComm; math.Abs(got-want) > 1e-15 {
		t.Errorf("SyncComm = %v, want %v", got, want)
	}
}

// TestStragglerScalesCharges: ScaleCharge multiplies the afflicted rank's
// charges in the matching categories only.
func TestStragglerScalesCharges(t *testing.T) {
	c := mustNew(t, 2)
	c.SetFaultInjector(&testInjector{
		scale: func(rank int, cat Category) float64 {
			if rank == 1 && cat == SyncComp {
				return 3
			}
			return 1
		},
	})
	err := c.Run(func(r *Rank) error {
		r.Charge(SyncComp, 1.0)
		r.Charge(AsyncComm, 1.0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bds := c.Breakdowns()
	if bds[0].SyncComp != 1 || bds[1].SyncComp != 3 {
		t.Errorf("SyncComp = %v / %v, want 1 / 3", bds[0].SyncComp, bds[1].SyncComp)
	}
	if bds[1].AsyncComm != 1 {
		t.Errorf("AsyncComm = %v, want 1 (unscaled)", bds[1].AsyncComm)
	}
}

// TestCrashAbortsWithoutDeadlock is the abort-path regression satellite: a
// rank crashing mid-SpMM must fail the run with ErrCrashed while every
// surviving rank — including ones already blocked in a barrier — observes
// ErrAborted instead of hanging. The test deadlocks (and times out) if
// abort propagation ever regresses.
func TestCrashAbortsWithoutDeadlock(t *testing.T) {
	const p = 4
	c := mustNew(t, p)
	c.SetFaultInjector(&testInjector{crash: map[int]float64{2: 0.5}})
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 8))
		if err := r.Barrier(); err != nil {
			return err
		}
		r.Charge(SyncComp, 1.0) // pushes rank 2 past its crash time
		dst := make([]float64, 8)
		for i := 0; ; i++ {
			if _, err := r.GetIndexed((r.ID+1)%p, "w", []Region{{Off: 0, Elems: 8}}, dst); err != nil {
				return err
			}
			if err := r.Barrier(); err != nil {
				return err
			}
		}
	})
	if err == nil {
		t.Fatal("crash plan must fail the run")
	}
	if !errors.Is(err, ErrCrashed) {
		t.Errorf("joined error %v does not wrap ErrCrashed", err)
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("joined error %v does not wrap ErrAborted (peers must see the abort)", err)
	}
	// The cluster must stay usable for an unrelated run after Reset.
	c.Reset()
	c.SetFaultInjector(nil)
	if err := c.Run(func(r *Rank) error { return r.Barrier() }); err != nil {
		t.Fatalf("cluster unusable after crash + Reset: %v", err)
	}
}

// TestAbortObservedByRetryLoop: a rank spinning in the get retry loop must
// observe a peer's abort instead of burning its full backoff budget.
func TestAbortObservedByRetryLoop(t *testing.T) {
	c := mustNew(t, 2)
	c.SetFaultInjector(&testInjector{
		retry: RetryPolicy{MaxAttempts: 1 << 20, BaseBackoff: 1e-9, Multiplier: 1.0000001},
		get: func(origin, target, attempt int) AttemptOutcome {
			return AttemptOutcome{Fail: origin == 0}
		},
	})
	boom := errors.New("boom")
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 2))
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID == 1 {
			return boom
		}
		dst := make([]float64, 2)
		_, err := r.GetIndexed(1, "w", []Region{{Off: 0, Elems: 2}}, dst)
		return err
	})
	if !errors.Is(err, boom) || !errors.Is(err, ErrAborted) {
		t.Fatalf("joined error %v should wrap both the cause and ErrAborted", err)
	}
}
