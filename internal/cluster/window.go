package cluster

import "fmt"

// One-sided communication: the analog of MPI windows and MPI_Rget with an
// MPI_Type_indexed datatype (paper section 5.2.3). A rank exposes a named
// float64 buffer; any rank may then read arbitrary region lists from it
// without the target's participation. Windows are treated as immutable for
// the duration of an exposure epoch, matching the algorithms here, which
// never mutate the dense input B during an SpMM.

// Region selects a contiguous run of a window: Elems float64 values starting
// at element Off.
type Region struct {
	Off   int64
	Elems int64
}

// Expose registers (or replaces) this rank's window under the given name.
// The slice is not copied: the caller must not mutate it until the window is
// dropped. Call Barrier afterwards before peers access it.
func (r *Rank) Expose(name string, data []float64) {
	r.c.tr.Expose(r.ID, name, data)
}

// GetIndexed performs a one-sided read of the given regions from a peer's
// window, packing them contiguously into dst (which must have room for the
// sum of region lengths). It returns the number of elements read. The call
// only moves data; charge the cost with Net().OneSidedCost and Charge.
//
// Under an attached fault injector the get becomes resilient: each injected
// transient failure is retried with exponential backoff charged to this
// rank's AsyncComm clock ("get.retry.backoff" spans), up to the policy's
// attempt budget. When the budget runs out the get fails with an
// ErrRetryExhausted-wrapping error; asynchronous-path callers then degrade
// to SyncFallbackPull, which moves the same elements reliably.
func (r *Rank) GetIndexed(target int, name string, regions []Region, dst []float64) (int64, error) {
	fi, pol := r.injection()
	if fi == nil {
		return r.getIndexed(target, name, regions, dst, true)
	}
	var firstOff int64
	if len(regions) > 0 {
		firstOff = regions[0].Off
	}
	elems := regionsTotal(regions)
	for attempt := 1; ; attempt++ {
		if err := r.failed(); err != nil {
			return 0, err
		}
		out := fi.GetAttempt(r.ID, target, firstOff, elems, attempt)
		if out.Delay > 0 {
			r.ChargeOp(AsyncComm, "get.fault.delay", out.Delay)
			r.resilience.addDelay(out.Delay)
		}
		if !out.Fail {
			return r.getIndexed(target, name, regions, dst, true)
		}
		if attempt >= pol.MaxAttempts {
			r.resilience.addExhausted()
			if l := r.logger(); l != nil {
				l.Warn("one-sided get retry budget exhausted",
					"event", "get.exhausted", "target", target, "attempts", attempt, "elems", elems)
			}
			return 0, fmt.Errorf("cluster: rank %d: one-sided get from rank %d failed %d attempts: %w",
				r.ID, target, attempt, ErrRetryExhausted)
		}
		backoff := pol.Backoff(attempt)
		r.ChargeOp(AsyncComm, "get.retry.backoff", backoff)
		r.resilience.addGetRetry(backoff)
		if l := r.logger(); l != nil {
			l.Debug("one-sided get retry",
				"event", "get.retry", "target", target, "attempt", attempt, "backoff_s", backoff, "elems", elems)
		}
		r.trace.record(Event{Rank: r.ID, Op: TraceRetry, Peer: target, Elems: elems, Msgs: int64(len(regions))})
	}
}

func (r *Rank) getIndexed(target int, name string, regions []Region, dst []float64, record bool) (int64, error) {
	// Observe the cluster-wide abort flag before touching the transport, so
	// a rank looping over window accesses after a peer failure stops
	// promptly instead of grinding on.
	if err := r.c.abortedErr(); err != nil {
		return 0, err
	}
	// The transport's Read is all-or-nothing: a failed get (bad region,
	// missing window, lost connection mid-transfer) leaves dst untouched,
	// so the retry/degrade machinery above can reuse the buffer without a
	// consumer ever observing bytes from the failed attempt.
	n, err := r.c.tr.Read(r.ID, target, name, regions, dst)
	if err != nil {
		return 0, err
	}
	r.counters.addOneSided(n, int64(len(regions)))
	if record {
		// Count the aggregated request itself only for true one-sided gets:
		// multicast pulls and degraded re-fetches (record=false) subtract the
		// provisional region/byte counts and reclassify them as collective,
		// so they must not bump the request counter either.
		r.counters.addGet()
		r.trace.record(Event{Rank: r.ID, Op: TraceGet, Peer: target, Elems: n, Msgs: int64(len(regions))})
		// Target-side contention (optional machine behaviour): the passive
		// target's NIC/memory bandwidth is consumed by incoming gets. Only
		// true one-sided traffic pays it; multicast pulls (record=false)
		// model root-driven collectives whose cost the root already carries.
		// Recovery re-execution skips it too: post-fence charging must stay
		// single-rank, or the charge's category on the target would depend
		// on whether the target was still inside its own recovery phase.
		// Wall-clock transports skip it entirely: the target rank is a
		// remote process whose ledger measures its own real time.
		if f := r.c.net.TargetContention; f > 0 && target != r.ID && !r.c.wall && !r.isRecovering() {
			r.c.ranks[target].ChargeOp(AsyncComm, "get.target_contention", f*r.c.net.OneSidedCost(len(regions), n))
		}
	}
	return n, nil
}

// Get performs a one-sided read of a single contiguous region — the
// MPI_Get whole-block pattern of the Async Coarse-Grained baseline.
func (r *Rank) Get(target int, name string, reg Region, dst []float64) (int64, error) {
	return r.GetIndexed(target, name, []Region{reg}, dst)
}

// MulticastPull reads a peer's whole exposed window into dst — the data
// plane of a collective multicast in which this rank is a destination. Pull
// semantics are equivalent to the paper's root-initiated MPI_Ibcast here
// because windows are immutable during the epoch and reception is blocking
// anyway (paper section 5.2.1). Returns the element count for charging.
//
// Under an attached fault injector a leg of the multicast tree can
// straggle (extra SyncComm charged as "multicast.leg.delay") or fail, in
// which case the leg is re-pulled after a backoff charged as
// "multicast.retry.backoff". A leg whose failures outlast the retry budget
// is fatal — the collective path is this machine's reliable substrate, so
// a plan that breaks it permanently is not survivable.
func (r *Rank) MulticastPull(root int, name string, off, elems int64, dst []float64) (int64, error) {
	n, _, err := r.MulticastPullTimed(root, name, off, elems, dst)
	return n, err
}

// MulticastPullTimed is MulticastPull that additionally returns the applied
// fault seconds the pull charged to this rank's SyncComm clock (leg delays
// and retry backoff, post straggler scaling; 0 on a healthy machine). The
// pipelined executor folds it into the stripe's completion time on its
// local sync-comm clock, so delayed legs push only the panels that need the
// afflicted stripe, not the whole pipeline.
func (r *Rank) MulticastPullTimed(root int, name string, off, elems int64, dst []float64) (int64, float64, error) {
	var faultSeconds float64
	if fi, pol := r.injection(); fi != nil {
		for attempt := 1; ; attempt++ {
			if err := r.failed(); err != nil {
				return 0, faultSeconds, err
			}
			out := fi.LegAttempt(r.ID, root, off, elems, r.Breakdown().SyncComm, attempt)
			if out.Delay > 0 {
				faultSeconds += r.ChargeOpTimed(SyncComm, "multicast.leg.delay", out.Delay)
				r.resilience.addDelay(out.Delay)
			}
			if !out.Fail {
				break
			}
			if attempt >= pol.MaxAttempts {
				if l := r.logger(); l != nil {
					l.Error("multicast leg retry budget exhausted",
						"event", "leg.exhausted", "root", root, "attempts", attempt, "elems", elems)
				}
				return 0, faultSeconds, fmt.Errorf("cluster: rank %d: multicast leg from root %d failed %d attempts: %w",
					r.ID, root, attempt, ErrRetryExhausted)
			}
			backoff := pol.Backoff(attempt)
			faultSeconds += r.ChargeOpTimed(SyncComm, "multicast.retry.backoff", backoff)
			r.resilience.addLegRetry(backoff)
			if l := r.logger(); l != nil {
				l.Debug("multicast leg retry",
					"event", "leg.retry", "root", root, "attempt", attempt, "backoff_s", backoff, "elems", elems)
			}
			r.trace.record(Event{Rank: r.ID, Op: TraceRetry, Peer: root, Elems: elems, Msgs: 1})
		}
	}
	n, err := r.getIndexed(root, name, []Region{{Off: off, Elems: elems}}, dst, false)
	if err != nil {
		return n, faultSeconds, err
	}
	// Reclassify: the bytes moved through a collective, not a one-sided get.
	r.counters.addOneSided(-n, -1)
	r.counters.addCollective(n, 1)
	r.trace.record(Event{Rank: r.ID, Op: TraceMulticast, Peer: root, Elems: n, Msgs: 1})
	return n, faultSeconds, nil
}

// SyncFallbackPull re-fetches the given regions through the synchronous
// path after the one-sided path exhausted its retry budget (graceful
// degradation, so the SpMM still completes bit-exactly). It moves exactly
// the elements GetIndexed would have and packs them identically into dst,
// but the traffic is counted as collective and no one-sided faults apply:
// this models the root re-sending the rows over the reliable collective
// substrate. The call only moves data; the caller charges the collective
// cost (typically NetModel.MulticastCost with one destination) to
// SyncComm, which is what attributes the degradation in the Breakdown
// ledger.
func (r *Rank) SyncFallbackPull(target int, name string, regions []Region, dst []float64) (int64, error) {
	if err := r.failed(); err != nil {
		return 0, err
	}
	n, err := r.getIndexed(target, name, regions, dst, false)
	if err != nil {
		return n, err
	}
	// Reclassify as collective traffic, like MulticastPull.
	r.counters.addOneSided(-n, -int64(len(regions)))
	r.counters.addCollective(n, 1)
	r.resilience.addDegradation(n)
	if l := r.logger(); l != nil {
		l.Warn("degraded to synchronous fallback pull",
			"event", "degrade", "target", target, "elems", n, "regions", len(regions))
	}
	r.trace.record(Event{Rank: r.ID, Op: TraceDegrade, Peer: target, Elems: n, Msgs: 1})
	return n, nil
}

// RecoverPull re-fetches a dead rank's input regions over the reliable
// collective substrate so a survivor can re-execute its lost work. It packs
// elements exactly like GetIndexed, counts the traffic as collective, and
// attributes the elements to ResilienceStats.RefetchedElems (not
// Degradations — nothing degraded; this is the recovery protocol working as
// designed). No one-sided faults apply. The caller charges the collective
// cost to the Recovery category (normally via BeginRecovery redirection).
func (r *Rank) RecoverPull(target int, name string, regions []Region, dst []float64) (int64, error) {
	if err := r.failed(); err != nil {
		return 0, err
	}
	n, err := r.getIndexed(target, name, regions, dst, false)
	if err != nil {
		return n, err
	}
	// Reclassify as collective traffic, like MulticastPull.
	r.counters.addOneSided(-n, -int64(len(regions)))
	r.counters.addCollective(n, 1)
	r.resilience.addRefetched(n)
	if l := r.logger(); l != nil {
		l.Info("recovery re-fetch of dead rank inputs",
			"event", "recover.refetch", "target", target, "elems", n, "regions", len(regions))
	}
	r.trace.record(Event{Rank: r.ID, Op: TraceRecover, Peer: target, Elems: n, Msgs: 1})
	return n, nil
}
