package cluster

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestExposeAndGetIndexed(t *testing.T) {
	c := mustNew(t, 3)
	err := c.Run(func(r *Rank) error {
		data := make([]float64, 10)
		for i := range data {
			data[i] = float64(r.ID*100 + i)
		}
		r.Expose("b", data)
		if err := r.Barrier(); err != nil {
			return err
		}
		target := (r.ID + 1) % r.P
		dst := make([]float64, 5)
		n, err := r.GetIndexed(target, "b", []Region{{Off: 2, Elems: 3}, {Off: 8, Elems: 2}}, dst)
		if err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("read %d elems, want 5", n)
		}
		want := []float64{float64(target*100 + 2), float64(target*100 + 3), float64(target*100 + 4),
			float64(target*100 + 8), float64(target*100 + 9)}
		for i := range want {
			if dst[i] != want[i] {
				return fmt.Errorf("dst = %v, want %v", dst, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetIndexedErrors(t *testing.T) {
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		r.Expose("w", make([]float64, 4))
		if err := r.Barrier(); err != nil {
			return err
		}
		dst := make([]float64, 8)
		if _, err := r.GetIndexed(5, "w", nil, dst); err == nil {
			return fmt.Errorf("out-of-range target should fail")
		}
		if _, err := r.GetIndexed(0, "nope", nil, dst); err == nil {
			return fmt.Errorf("unknown window should fail")
		}
		if _, err := r.GetIndexed(0, "w", []Region{{Off: 2, Elems: 5}}, dst); err == nil {
			return fmt.Errorf("region past end should fail")
		}
		if _, err := r.GetIndexed(0, "w", []Region{{Off: -1, Elems: 1}}, dst); err == nil {
			return fmt.Errorf("negative offset should fail")
		}
		if _, err := r.GetIndexed(0, "w", []Region{{Off: 0, Elems: 4}}, make([]float64, 2)); err == nil {
			return fmt.Errorf("small destination should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulticastPull(t *testing.T) {
	c := mustNew(t, 4)
	err := c.Run(func(r *Rank) error {
		data := []float64{float64(r.ID), float64(r.ID) * 2, float64(r.ID) * 3}
		r.Expose("stripe", data)
		if err := r.Barrier(); err != nil {
			return err
		}
		// Everyone pulls rank 2's window.
		dst := make([]float64, 2)
		if _, err := r.MulticastPull(2, "stripe", 1, 2, dst); err != nil {
			return err
		}
		if dst[0] != 4 || dst[1] != 6 {
			return fmt.Errorf("rank %d pulled %v", r.ID, dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	c := mustNew(t, 4)
	err := c.Run(func(r *Rank) error {
		payload := []float64{float64(r.ID * 10)}
		to := (r.ID + 1) % r.P
		from := (r.ID - 1 + r.P) % r.P
		got, err := r.Sendrecv(payload, to, from)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != float64(from*10) {
			return fmt.Errorf("rank %d got %v, want [%d]", r.ID, got, from*10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvMultipleRounds(t *testing.T) {
	// Cyclic shifting across several rounds: after p rounds every rank's
	// value returns home. This exercises slot reuse between rounds.
	const p = 5
	c := mustNew(t, p)
	err := c.Run(func(r *Rank) error {
		val := []float64{float64(r.ID)}
		for round := 0; round < p; round++ {
			got, err := r.Sendrecv(val, (r.ID+1)%p, (r.ID-1+p)%p)
			if err != nil {
				return err
			}
			val = got
		}
		if val[0] != float64(r.ID) {
			return fmt.Errorf("rank %d: value did not return home: %v", r.ID, val)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvBadPeers(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(r *Rank) error {
		if _, err := r.Sendrecv(nil, 3, 0); err == nil {
			return fmt.Errorf("bad peer should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	c := mustNew(t, 3)
	err := c.Run(func(r *Rank) error {
		local := []float64{float64(r.ID), float64(r.ID + 100)}
		all, err := r.Allgather(local)
		if err != nil {
			return err
		}
		for i := 0; i < r.P; i++ {
			if all[i][0] != float64(i) || all[i][1] != float64(i+100) {
				return fmt.Errorf("rank %d: all[%d] = %v", r.ID, i, all[i])
			}
		}
		// Returned slices must be copies.
		all[(r.ID+1)%r.P][0] = -1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherIsolation(t *testing.T) {
	// Mutating a received buffer must not affect other ranks' receptions in
	// a later round.
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		local := []float64{float64(r.ID)}
		first, err := r.Allgather(local)
		if err != nil {
			return err
		}
		first[0][0] = 999
		second, err := r.Allgather(local)
		if err != nil {
			return err
		}
		if second[0][0] != 0 {
			return fmt.Errorf("allgather leaked mutation: %v", second[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetIndexedRoundtripProperty(t *testing.T) {
	// Arbitrary region lists read back exactly the selected elements.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		win := make([]float64, 64)
		for i := range win {
			win[i] = rng.Float64()
		}
		var regions []Region
		var want []float64
		off := int64(0)
		for off < 64 {
			l := int64(rng.IntN(5))
			if off+l > 64 {
				l = 64 - off
			}
			if rng.IntN(2) == 0 && l > 0 {
				regions = append(regions, Region{Off: off, Elems: l})
				want = append(want, win[off:off+l]...)
			}
			off += l + int64(rng.IntN(3))
		}
		c, err := New(2, Default())
		if err != nil {
			return false
		}
		ok := true
		err = c.Run(func(r *Rank) error {
			if r.ID == 0 {
				r.Expose("w", win)
			}
			if err := r.Barrier(); err != nil {
				return err
			}
			if r.ID == 1 {
				dst := make([]float64, len(want))
				n, err := r.GetIndexed(0, "w", regions, dst)
				if err != nil {
					return err
				}
				if n != int64(len(want)) {
					ok = false
				}
				for i := range want {
					if dst[i] != want[i] {
						ok = false
					}
				}
			}
			return r.Barrier()
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeCollectivesTrivial(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(r *Rank) error {
		all, err := r.Allgather([]float64{7})
		if err != nil || len(all) != 1 || all[0][0] != 7 {
			return fmt.Errorf("allgather p=1: %v %v", all, err)
		}
		got, err := r.Sendrecv([]float64{3}, 0, 0)
		if err != nil || got[0] != 3 {
			return fmt.Errorf("sendrecv p=1: %v %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
