package cluster

import (
	"errors"
	"testing"
)

// Satellite regression tests for the all-or-nothing guarantee of one-sided
// reads: a get that fails validation — a region out of bounds, a destination
// too small, a missing window — must leave the caller's dst untouched, no
// matter how many of its regions were individually valid. Before the
// transport seam, getIndexed copied region-by-region and returned mid-loop,
// so a failing *second* region left the first region's bytes visible in dst;
// once real sockets can fail mid-transfer this seam is load-bearing for the
// retry/degrade path (the degraded re-fetch reuses the same buffer).

const canary = -12345.5

func canaryBuf(n int) []float64 {
	dst := make([]float64, n)
	for i := range dst {
		dst[i] = canary
	}
	return dst
}

func assertUntouched(t *testing.T, dst []float64) {
	t.Helper()
	for i, v := range dst {
		if v != canary {
			t.Fatalf("dst[%d] = %v: failed get leaked bytes into the destination", i, v)
		}
	}
}

func windowFixture(t *testing.T) (*Cluster, *Rank) {
	t.Helper()
	c, err := New(2, Default())
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 8)
	for i := range w {
		w[i] = float64(i + 1)
	}
	c.ranks[1].Expose("B", w)
	return c, c.ranks[0]
}

func TestGetIndexedOOBSecondRegionLeavesDstUntouched(t *testing.T) {
	_, r := windowFixture(t)
	dst := canaryBuf(8)
	// First region valid, second out of bounds: the old region-by-region
	// copy would have written dst[0:4] before noticing.
	_, err := r.GetIndexed(1, "B", []Region{{Off: 0, Elems: 4}, {Off: 6, Elems: 4}}, dst)
	if !errors.Is(err, ErrRegionOOB) {
		t.Fatalf("want ErrRegionOOB, got %v", err)
	}
	assertUntouched(t, dst)
}

func TestGetIndexedDstTooSmallLeavesDstUntouched(t *testing.T) {
	_, r := windowFixture(t)
	dst := canaryBuf(3)
	// Two valid regions, but dst only has room for the first: the old code
	// filled dst[0:2] from region one before rejecting region two.
	_, err := r.GetIndexed(1, "B", []Region{{Off: 0, Elems: 2}, {Off: 4, Elems: 2}}, dst)
	if !errors.Is(err, ErrDstTooSmall) {
		t.Fatalf("want ErrDstTooSmall, got %v", err)
	}
	assertUntouched(t, dst)
}

func TestSyncFallbackPullFailureLeavesDstUntouched(t *testing.T) {
	_, r := windowFixture(t)
	dst := canaryBuf(8)
	// The degrade path re-fetches through the collective substrate; a
	// failing re-fetch must be as side-effect-free as a failing get.
	_, err := r.SyncFallbackPull(1, "B", []Region{{Off: 2, Elems: 2}, {Off: -1, Elems: 2}}, dst)
	if !errors.Is(err, ErrRegionOOB) {
		t.Fatalf("want ErrRegionOOB, got %v", err)
	}
	assertUntouched(t, dst)

	_, err = r.SyncFallbackPull(1, "missing", []Region{{Off: 0, Elems: 2}}, dst)
	if !errors.Is(err, ErrWindowMissing) {
		t.Fatalf("want ErrWindowMissing, got %v", err)
	}
	assertUntouched(t, dst)
}

func TestMemTransportReadAllOrNothing(t *testing.T) {
	tr, err := NewMemTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Expose(1, "w", []float64{1, 2, 3, 4})
	dst := canaryBuf(4)
	if _, err := tr.Read(0, 1, "w", []Region{{Off: 0, Elems: 2}, {Off: 3, Elems: 2}}, dst); !errors.Is(err, ErrRegionOOB) {
		t.Fatalf("want ErrRegionOOB, got %v", err)
	}
	assertUntouched(t, dst)
	if _, err := tr.Read(0, 3, "w", nil, dst); !errors.Is(err, ErrWindowMissing) {
		t.Fatalf("want ErrWindowMissing for target out of range, got %v", err)
	}
	n, err := tr.Read(0, 1, "w", []Region{{Off: 1, Elems: 2}}, dst)
	if err != nil || n != 2 || dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("valid read: n=%d err=%v dst=%v", n, err, dst[:2])
	}
}

// TestGetIndexedRetryExhaustedLeavesDstUntouched drives the chaos path: a
// fault injector that always fails the get exhausts the retry budget, and
// the exhausted get must not have leaked any bytes into dst — the caller
// hands the very same buffer to SyncFallbackPull next.
func TestGetIndexedRetryExhaustedLeavesDstUntouched(t *testing.T) {
	c, r := windowFixture(t)
	c.SetFaultInjector(alwaysFailInjector{})
	dst := canaryBuf(8)
	_, err := r.GetIndexed(1, "B", []Region{{Off: 0, Elems: 4}}, dst)
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("want ErrRetryExhausted, got %v", err)
	}
	assertUntouched(t, dst)
	// The degraded re-fetch then fills the same buffer correctly.
	n, err := r.SyncFallbackPull(1, "B", []Region{{Off: 0, Elems: 4}}, dst)
	if err != nil || n != 4 {
		t.Fatalf("fallback: n=%d err=%v", n, err)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != float64(i+1) {
			t.Fatalf("fallback dst[%d] = %v, want %v", i, dst[i], float64(i+1))
		}
	}
}

// alwaysFailInjector fails every one-sided attempt with no delay, leaving
// collectives healthy — the minimal injector for exercising retry
// exhaustion and degradation.
type alwaysFailInjector struct{}

func (alwaysFailInjector) ScaleCharge(rank int, cat Category) float64 { return 1 }
func (alwaysFailInjector) GetAttempt(origin, target int, firstOff, elems int64, attempt int) AttemptOutcome {
	return AttemptOutcome{Fail: true}
}
func (alwaysFailInjector) LegAttempt(origin, root int, off, elems int64, syncClock float64, attempt int) AttemptOutcome {
	return AttemptOutcome{}
}
func (alwaysFailInjector) CrashTime(rank int) float64 { return 0 }
func (alwaysFailInjector) Retry() RetryPolicy         { return RetryPolicy{} }
