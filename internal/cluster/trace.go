package cluster

import (
	"fmt"
	"sync"
)

// Transfer tracing: an opt-in, bounded per-rank event log recording every
// data-plane operation (what moved, between whom, how much). It is the
// debugging view behind the aggregate TransferStats — e.g. to see exactly
// which dense stripes a node pulled and from where.

// TraceOp labels a traced transfer operation.
type TraceOp string

// Traced operation kinds.
const (
	TraceGet       TraceOp = "get"       // one-sided indexed get
	TraceMulticast TraceOp = "multicast" // collective multicast reception
	TraceSendrecv  TraceOp = "sendrecv"  // cyclic shift step
	TraceAllgather TraceOp = "allgather" // allgather reception
	TraceRetry     TraceOp = "retry"     // injected transient failure, retried
	TraceDegrade   TraceOp = "degrade"   // one-sided get degraded to the sync path
	TraceRecover   TraceOp = "recover"   // survivor re-fetch of a dead rank's inputs
)

// Event is one traced transfer, from the receiving rank's perspective.
// Payload sizes are recorded in float64 elements, the unit the transfer
// primitives work in; Bytes converts with the repository-wide 8-byte
// convention shared with TransferStats, so summing Bytes over a rank's get
// events reproduces that rank's OneSidedBytes exactly.
type Event struct {
	Rank  int     // the rank recording the event
	Op    TraceOp // what kind of transfer
	Peer  int     // the remote side (source for receives; -1 for allgather)
	Elems int64   // float64 elements received
	Msgs  int64   // network transactions (regions for indexed gets)
}

// Bytes returns the event's payload in bytes (8 bytes per float64 element,
// matching TransferStats' byte counters).
func (e Event) Bytes() int64 { return 8 * e.Elems }

func (e Event) String() string {
	return fmt.Sprintf("rank %d %s peer=%d elems=%d msgs=%d", e.Rank, e.Op, e.Peer, e.Elems, e.Msgs)
}

// traceBuf is a bounded append-only event buffer; when full, further events
// are counted but not stored.
type traceBuf struct {
	mu      sync.Mutex
	enabled bool
	limit   int
	events  []Event
	dropped int64
}

func (t *traceBuf) record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		return
	}
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

func (t *traceBuf) snapshot() ([]Event, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out, t.dropped
}

func (t *traceBuf) reset(enabled bool, limit int) {
	t.mu.Lock()
	t.enabled = enabled
	t.limit = limit
	t.events = nil
	t.dropped = 0
	t.mu.Unlock()
}

// EnableTrace turns on transfer tracing with the given per-rank event cap
// (<=0 uses 4096). Existing events are cleared.
func (c *Cluster) EnableTrace(perRankLimit int) {
	if perRankLimit <= 0 {
		perRankLimit = 4096
	}
	for _, r := range c.ranks {
		r.trace.reset(true, perRankLimit)
	}
}

// DisableTrace turns tracing off and clears buffered events.
func (c *Cluster) DisableTrace() {
	for _, r := range c.ranks {
		r.trace.reset(false, 0)
	}
}

// Trace returns every rank's buffered events (rank-major order) and the
// total number of events dropped to the per-rank cap.
func (c *Cluster) Trace() ([]Event, int64) {
	events, dropped := c.TraceByRank()
	var all []Event
	var total int64
	for i, ev := range events {
		all = append(all, ev...)
		total += dropped[i]
	}
	return all, total
}

// TraceByRank returns each rank's buffered events and per-rank dropped
// counts, indexed by rank.
func (c *Cluster) TraceByRank() ([][]Event, []int64) {
	events := make([][]Event, c.p)
	dropped := make([]int64, c.p)
	for i, r := range c.ranks {
		events[i], dropped[i] = r.trace.snapshot()
	}
	return events, dropped
}

// TraceEnabled reports whether transfer tracing is currently on.
func (c *Cluster) TraceEnabled() bool {
	if len(c.ranks) == 0 {
		return false
	}
	t := &c.ranks[0].trace
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}
