package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func mustNew(t *testing.T, p int) *Cluster {
	t.Helper()
	c, err := New(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Default()); err == nil {
		t.Fatal("p=0 should fail")
	}
	c := mustNew(t, 4)
	if c.P() != 4 {
		t.Fatalf("P = %d", c.P())
	}
}

func TestRunAllRanks(t *testing.T) {
	c := mustNew(t, 5)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := c.Run(func(r *Rank) error {
		mu.Lock()
		seen[r.ID] = true
		mu.Unlock()
		if r.P != 5 {
			return fmt.Errorf("P = %d", r.P)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("ran %d ranks, want 5", len(seen))
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	c := mustNew(t, 3)
	sentinel := errors.New("boom")
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			return sentinel
		}
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want wrapped sentinel", err)
	}
}

func TestErrorBreaksBarrier(t *testing.T) {
	// If one rank fails before a barrier, the others must not deadlock.
	c := mustNew(t, 4)
	sentinel := errors.New("early exit")
	err := c.Run(func(r *Rank) error {
		if r.ID == 2 {
			return sentinel
		}
		return r.Barrier()
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// Cluster must be reusable after the broken run.
	if err := c.Run(func(r *Rank) error { return r.Barrier() }); err != nil {
		t.Fatalf("cluster not reusable after broken run: %v", err)
	}
}

func TestChargeAndBreakdown(t *testing.T) {
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		r.Charge(SyncComm, 1)
		r.Charge(SyncComp, 2)
		r.Charge(AsyncComm, 3)
		r.Charge(AsyncComp, 4)
		r.Charge(Other, 0.5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range c.Breakdowns() {
		if bd.SyncComm != 1 || bd.SyncComp != 2 || bd.AsyncComm != 3 || bd.AsyncComp != 4 || bd.Other != 0.5 {
			t.Fatalf("breakdown = %+v", bd)
		}
		// Node time: Other + max(1+2, 3+4) = 0.5 + 7.
		if bd.NodeTime() != 7.5 {
			t.Fatalf("NodeTime = %v, want 7.5", bd.NodeTime())
		}
	}
	if c.TotalTime() != 7.5 {
		t.Fatalf("TotalTime = %v", c.TotalTime())
	}
	c.Reset()
	if c.TotalTime() != 0 {
		t.Fatal("Reset should clear clocks")
	}
}

func TestChargePanicsOnNegative(t *testing.T) {
	c := mustNew(t, 1)
	_ = c.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("negative charge should panic")
			}
		}()
		r.Charge(SyncComm, -1)
		return nil
	})
}

func TestConcurrentChargesSum(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(r *Rank) error {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 1000; j++ {
					r.Charge(AsyncComm, 0.001)
				}
			}()
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Breakdowns()[0].AsyncComm
	if got < 7.999 || got > 8.001 {
		t.Fatalf("concurrent charges sum = %v, want 8", got)
	}
}

func TestNodeTimeSyncDominates(t *testing.T) {
	bd := Breakdown{SyncComm: 5, SyncComp: 1, AsyncComm: 1, AsyncComp: 1, Other: 2}
	if bd.NodeTime() != 8 {
		t.Fatalf("NodeTime = %v, want 8", bd.NodeTime())
	}
}

func TestBreakdownPlus(t *testing.T) {
	a := Breakdown{SyncComm: 1, SyncComp: 2, AsyncComm: 3, AsyncComp: 4, Other: 5}
	b := a.Plus(a)
	if b.SyncComm != 2 || b.Other != 10 {
		t.Fatalf("Plus = %+v", b)
	}
}

func TestCategoryString(t *testing.T) {
	for _, c := range []Category{SyncComm, SyncComp, AsyncComm, AsyncComp, Other} {
		if c.String() == "Unknown" || c.String() == "" {
			t.Fatalf("category %d has no label", c)
		}
	}
	if Category(99).String() != "Unknown" {
		t.Fatal("out-of-range category should stringify as Unknown")
	}
}
