package cluster

import (
	"errors"
	"fmt"
	"testing"
)

// Fail-recover primitives: rank death as a membership transition. The
// executor-level recovery protocol is tested in internal/core; here we pin
// the cluster mechanics it builds on — Die freeing the barrier, death
// records, the recovery charge redirect, and the extended stats plumbing.

// TestDiePublishesDeathAndFreesBarrier: in recovery mode a rank death must
// not strand the survivors — their next barrier completes without the dead
// rank, and the death record (crash time, checkpoint cut) is visible after
// that fence. Subsequent barriers keep working at the reduced party count.
func TestDiePublishesDeathAndFreesBarrier(t *testing.T) {
	c := mustNew(t, 3)
	c.SetRecovery(true)
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			return r.Die(0.5, 7, 2)
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		deaths := r.Deaths()
		if len(deaths) != 1 {
			return fmt.Errorf("rank %d: %d deaths after fence, want 1", r.ID, len(deaths))
		}
		d := deaths[0]
		if d.Rank != 1 || d.At != 0.5 || d.Units != 7 || d.Checkpoints != 2 {
			return fmt.Errorf("death record %+v", d)
		}
		return r.Barrier() // post-recovery fence, again without rank 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalResilience().Crashes; got != 1 {
		t.Errorf("Crashes = %d, want 1", got)
	}
	live := c.LiveRanks()
	if len(live) != 2 || live[0] != 0 || live[1] != 2 {
		t.Errorf("LiveRanks = %v, want [0 2]", live)
	}
}

// TestDieRefusedOutsideRecovery: without recovery mode (or with no survivor
// left) Die must refuse with a crash error, keeping fail-clean semantics.
func TestDieRefusedOutsideRecovery(t *testing.T) {
	c := mustNew(t, 2)
	err := c.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Die(0.1, 0, 0)
		}
		return nil
	})
	if !errors.Is(err, ErrCrashed) {
		t.Errorf("Die without recovery: %v, want ErrCrashed", err)
	}

	solo := mustNew(t, 1)
	solo.SetRecovery(true)
	err = solo.Run(func(r *Rank) error { return r.Die(0.1, 0, 0) })
	if !errors.Is(err, ErrCrashed) {
		t.Errorf("Die of the last rank: %v, want ErrCrashed", err)
	}
}

// TestRecoveryChargeRedirect: between BeginRecovery and EndRecovery every
// charge lands in the Recovery category regardless of its nominal one, and
// NodeTime counts it serially (additively).
func TestRecoveryChargeRedirect(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(r *Rank) error {
		r.Charge(AsyncComm, 1.0)
		r.BeginRecovery()
		r.Charge(AsyncComm, 2.0)
		r.Charge(SyncComp, 3.0)
		r.EndRecovery()
		r.Charge(SyncComp, 4.0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bd := c.Breakdowns()[0]
	if bd.Recovery != 5.0 {
		t.Errorf("Recovery = %v, want 5", bd.Recovery)
	}
	if bd.AsyncComm != 1.0 || bd.SyncComp != 4.0 {
		t.Errorf("nominal categories polluted: %+v", bd)
	}
	// Recovery and Checkpoint are serial additions to NodeTime, outside the
	// sync/async overlap max.
	want := 5.0 + 4.0 // Recovery + max(SyncComp, AsyncComm)
	if bd.NodeTime() != want {
		t.Errorf("NodeTime = %v, want %v", bd.NodeTime(), want)
	}
}

// TestCheckpointInNodeTime: Checkpoint charges extend NodeTime additively.
func TestCheckpointInNodeTime(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(r *Rank) error {
		r.Charge(SyncComp, 1.0)
		r.ChargeOp(Checkpoint, "checkpoint.write", 0.25)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bd := c.Breakdowns()[0]
	if bd.Checkpoint != 0.25 || bd.NodeTime() != 1.25 {
		t.Errorf("Checkpoint = %v, NodeTime = %v, want 0.25 and 1.25", bd.Checkpoint, bd.NodeTime())
	}
}

// TestResilienceStatsRecoveryFields: the checkpoint/recovery counters ride
// through Plus and trip Faulted on their own.
func TestResilienceStatsRecoveryFields(t *testing.T) {
	a := ResilienceStats{
		Checkpoints: 3, CheckpointSeconds: 0.5, Crashes: 1,
		RecoveredStripes: 10, RecoveredPanels: 4, RefetchedElems: 1000, RecoverySeconds: 2.5,
	}
	sum := a.Plus(a)
	if sum.Checkpoints != 6 || sum.CheckpointSeconds != 1.0 || sum.Crashes != 2 ||
		sum.RecoveredStripes != 20 || sum.RecoveredPanels != 8 ||
		sum.RefetchedElems != 2000 || sum.RecoverySeconds != 5.0 {
		t.Errorf("Plus dropped recovery fields: %+v", sum)
	}
	for name, rs := range map[string]ResilienceStats{
		"checkpoints": {Checkpoints: 1},
		"crashes":     {Crashes: 1},
		"recovered":   {RecoveredStripes: 1},
		"refetched":   {RefetchedElems: 1},
	} {
		if !rs.Faulted() {
			t.Errorf("%s alone must count as faulted", name)
		}
	}
	if (ResilienceStats{}).Faulted() {
		t.Error("zero stats must not count as faulted")
	}
}

// TestResetClearsDeaths: Reset returns the cluster to full membership.
func TestResetClearsDeaths(t *testing.T) {
	c := mustNew(t, 2)
	c.SetRecovery(true)
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			return r.Die(0.5, 0, 0)
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if len(c.Deaths()) != 0 {
		t.Errorf("Deaths survive Reset: %v", c.Deaths())
	}
	if live := c.LiveRanks(); len(live) != 2 {
		t.Errorf("LiveRanks after Reset = %v, want both", live)
	}
	if err := c.Run(func(r *Rank) error { return r.Barrier() }); err != nil {
		t.Fatalf("cluster unusable after death + Reset: %v", err)
	}
}
