// Package kernels provides the shared float64 inner-loop kernels of every
// SpMM/matmul hot path in this repository: AXPY-style row updates, fused
// scale-assign, dot products, and the register-tiled multi-source/multi-
// destination variants the panel and stripe paths are built from.
//
// The package is a dispatching layer. At init it detects the host CPU and
// binds each kernel to the best available implementation: hand-written Go
// assembly (AVX2 on amd64, NEON on arm64, plus an opt-in FMA variant on
// amd64) or the pure-Go 4-way unrolls that remain the always-available
// fallback on every architecture. Except for the explicitly opt-in FMA
// variant (SetAllowFMA / TWOFACE_ALLOW_FMA), every implementation of a
// kernel is bit-identical to the generic one on every input, so results do
// not depend on the host: the assembly mirrors the generic code's exact
// operation order and rounding (separate multiply and add on amd64, fused
// multiply-add on arm64 where the Go compiler itself fuses). SetForceGeneric
// or TWOFACE_FORCE_GENERIC=1 pins the generic implementations for A/B runs.
//
// Length contract: every kernel that takes two or more slices operates on
// the common (minimum) length of its operands, so callers can pass
// full-capacity scratch buffers without trimming. The one exception is
// Scale, which has a single operand and scales the full slice.
package kernels

// Axpy computes y[i] += alpha * x[i] over the common length of x and y.
func Axpy(alpha float64, x, y []float64) {
	n := min(len(x), len(y))
	if n == 0 {
		return
	}
	active.Load().axpy(alpha, x[:n], y[:n])
}

// ScaleTo computes dst[i] = alpha * x[i] (fused scale-assign) over the
// common length of dst and x. Accumulators use it on the first touch of a
// row so scratch buffers never need zeroing.
func ScaleTo(dst []float64, alpha float64, x []float64) {
	n := min(len(dst), len(x))
	if n == 0 {
		return
	}
	active.Load().scaleTo(dst[:n], alpha, x[:n])
}

// AxpyTo computes dst[i] = y[i] + alpha * x[i] (fused scale-add into a
// separate destination) over the common length of the three slices. dst may
// alias x or y exactly (same base and length); partial overlaps are not
// supported.
func AxpyTo(dst []float64, alpha float64, x, y []float64) {
	n := min(len(dst), len(x), len(y))
	if n == 0 {
		return
	}
	active.Load().axpyTo(dst[:n], alpha, x[:n], y[:n])
}

// Add computes dst[i] += x[i] over the common length of x and dst.
func Add(dst, x []float64) {
	n := min(len(dst), len(x))
	if n == 0 {
		return
	}
	active.Load().add(dst[:n], x[:n])
}

// Scale computes x[i] *= alpha in place, over the FULL slice.
//
// Unlike every other kernel in this package, Scale has no second operand
// and therefore no min-length truncation: all len(x) elements are scaled.
// Callers passing a full-capacity scratch buffer must trim it themselves.
// This contract was implicit in the original pure-Go loop; it is documented
// (and tested) so the assembly ports cannot silently diverge on short
// buffers.
func Scale(alpha float64, x []float64) {
	if len(x) == 0 {
		return
	}
	active.Load().scale(alpha, x)
}

// Dot returns the inner product of x and y over their common length, using
// four independent partial sums to break the accumulation dependency chain.
// Every implementation reproduces the generic code's exact grouping — lane
// j accumulates elements j mod 4 and the partials reduce in the fixed order
// ((s0+s1)+s2)+s3 before the sequential remainder — so the result is
// bit-identical across variants (except opt-in FMA).
func Dot(x, y []float64) float64 {
	n := min(len(x), len(y))
	if n == 0 {
		return 0
	}
	return active.Load().dot(x[:n], y[:n])
}

// Axpy2 computes y[i] += a0*x0[i] + a1*x1[i] over the common length of the
// three slices, as two chained multiply-adds per element — bit-identical to
// Axpy(a0, x0, y) followed by Axpy(a1, x1, y), but with the accumulator
// K-tile held in registers across both sources. This is the register-tiled
// panel kernel: processing a row's nonzeros two at a time halves the
// accumulator load/store traffic of the per-nonzero AXPY formulation.
func Axpy2(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64) {
	n := min(len(x0), len(x1), len(y))
	if n == 0 {
		return
	}
	active.Load().axpy2(a0, x0[:n], a1, x1[:n], y[:n])
}

// AxpyQuad computes yR[i] += aR*x[i] for each of the four destination rows
// y0..y3, over the common length of all five slices — bit-identical to four
// Axpy calls, but with each x K-tile loaded once and spread to all four
// destinations while in registers. This is the multi-row tiled kernel: the
// async stripe path and the dense matmuls use it to update four C rows per
// pass against the same dense source row. The destinations must not alias
// each other.
func AxpyQuad(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64) {
	n := min(len(x), len(y0), len(y1), len(y2), len(y3))
	if n == 0 {
		return
	}
	active.Load().axpyQuad(x[:n], a0, y0[:n], a1, y1[:n], a2, y2[:n], a3, y3[:n])
}
