// Package kernels provides the shared float64 inner-loop kernels of every
// SpMM/matmul hot path in this repository: AXPY-style row updates, fused
// scale-assign, and dot products. All loops are 4-way unrolled with bounds
// checks hoisted by re-slicing, the standard pure-Go construction (cf.
// gonum's f64 assembly fallbacks). Centralizing them here means the
// distributed executor, the baselines, the reference kernels, and the GNN
// layers all share one tuned implementation instead of five hand-rolled
// loops.
//
// Every kernel operates on min(len(x), len(dst)) elements, so callers can
// pass full-capacity scratch buffers without trimming.
package kernels

// Axpy computes y[i] += alpha * x[i] over the common length of x and y.
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	x, y = x[:n:n], y[:n:n]
	for len(x) >= 4 {
		y[0] += alpha * x[0]
		y[1] += alpha * x[1]
		y[2] += alpha * x[2]
		y[3] += alpha * x[3]
		x, y = x[4:], y[4:]
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleTo computes dst[i] = alpha * x[i] (fused scale-assign). Accumulators
// use it on the first touch of a row so scratch buffers never need zeroing.
func ScaleTo(dst []float64, alpha float64, x []float64) {
	n := len(x)
	if len(dst) < n {
		n = len(dst)
	}
	x, dst = x[:n:n], dst[:n:n]
	for len(x) >= 4 {
		dst[0] = alpha * x[0]
		dst[1] = alpha * x[1]
		dst[2] = alpha * x[2]
		dst[3] = alpha * x[3]
		x, dst = x[4:], dst[4:]
	}
	for i, v := range x {
		dst[i] = alpha * v
	}
}

// AxpyTo computes dst[i] = y[i] + alpha * x[i] (fused scale-add into a
// separate destination) over the common length of the three slices.
func AxpyTo(dst []float64, alpha float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if len(dst) < n {
		n = len(dst)
	}
	x, y, dst = x[:n:n], y[:n:n], dst[:n:n]
	for len(x) >= 4 {
		dst[0] = y[0] + alpha*x[0]
		dst[1] = y[1] + alpha*x[1]
		dst[2] = y[2] + alpha*x[2]
		dst[3] = y[3] + alpha*x[3]
		x, y, dst = x[4:], y[4:], dst[4:]
	}
	for i, v := range x {
		dst[i] = y[i] + alpha*v
	}
}

// Add computes dst[i] += x[i] over the common length of x and dst.
func Add(dst, x []float64) {
	n := len(x)
	if len(dst) < n {
		n = len(dst)
	}
	x, dst = x[:n:n], dst[:n:n]
	for len(x) >= 4 {
		dst[0] += x[0]
		dst[1] += x[1]
		dst[2] += x[2]
		dst[3] += x[3]
		x, dst = x[4:], dst[4:]
	}
	for i, v := range x {
		dst[i] += v
	}
}

// Scale computes x[i] *= alpha in place.
func Scale(alpha float64, x []float64) {
	for len(x) >= 4 {
		x[0] *= alpha
		x[1] *= alpha
		x[2] *= alpha
		x[3] *= alpha
		x = x[4:]
	}
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y over their common length, using
// four independent partial sums to break the accumulation dependency chain.
func Dot(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	x, y = x[:n:n], y[:n:n]
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
		x, y = x[4:], y[4:]
	}
	s := s0 + s1 + s2 + s3
	for i, v := range x {
		s += v * y[i]
	}
	return s
}
