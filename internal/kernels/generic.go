package kernels

// Pure-Go kernel implementations: 4-way unrolled with bounds checks hoisted
// by re-slicing, the standard construction (cf. gonum's f64 fallbacks).
// These are the always-available dispatch fallback and the bit-exactness
// reference for every assembly port. All impl-level functions receive
// equal-length, non-empty slices (the public wrappers trim).
//
// Rounding note for porters: on amd64 the Go compiler emits a separate
// multiply and add for `y += a*x` (the v1 baseline has no FMA), so the AVX2
// ports use separate VMULPD/VADDPD. On arm64 the compiler fuses the same
// expression into FMADDD, so the NEON ports use FMLA. Either way the
// assembly reproduces the generic code's exact per-element rounding.

var genericImpl = impl{
	variant:  VariantGeneric,
	axpy:     axpyGeneric,
	axpyTo:   axpyToGeneric,
	scaleTo:  scaleToGeneric,
	add:      addGeneric,
	scale:    scaleGeneric,
	dot:      dotGeneric,
	axpy2:    axpy2Generic,
	axpyQuad: axpyQuadGeneric,
}

func axpyGeneric(alpha float64, x, y []float64) {
	n := len(x)
	x, y = x[:n:n], y[:n:n]
	for len(x) >= 4 {
		y[0] += alpha * x[0]
		y[1] += alpha * x[1]
		y[2] += alpha * x[2]
		y[3] += alpha * x[3]
		x, y = x[4:], y[4:]
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

func scaleToGeneric(dst []float64, alpha float64, x []float64) {
	n := len(x)
	x, dst = x[:n:n], dst[:n:n]
	for len(x) >= 4 {
		dst[0] = alpha * x[0]
		dst[1] = alpha * x[1]
		dst[2] = alpha * x[2]
		dst[3] = alpha * x[3]
		x, dst = x[4:], dst[4:]
	}
	for i, v := range x {
		dst[i] = alpha * v
	}
}

func axpyToGeneric(dst []float64, alpha float64, x, y []float64) {
	n := len(x)
	x, y, dst = x[:n:n], y[:n:n], dst[:n:n]
	for len(x) >= 4 {
		dst[0] = y[0] + alpha*x[0]
		dst[1] = y[1] + alpha*x[1]
		dst[2] = y[2] + alpha*x[2]
		dst[3] = y[3] + alpha*x[3]
		x, y, dst = x[4:], y[4:], dst[4:]
	}
	for i, v := range x {
		dst[i] = y[i] + alpha*v
	}
}

func addGeneric(dst, x []float64) {
	n := len(x)
	x, dst = x[:n:n], dst[:n:n]
	for len(x) >= 4 {
		dst[0] += x[0]
		dst[1] += x[1]
		dst[2] += x[2]
		dst[3] += x[3]
		x, dst = x[4:], dst[4:]
	}
	for i, v := range x {
		dst[i] += v
	}
}

func scaleGeneric(alpha float64, x []float64) {
	for len(x) >= 4 {
		x[0] *= alpha
		x[1] *= alpha
		x[2] *= alpha
		x[3] *= alpha
		x = x[4:]
	}
	for i := range x {
		x[i] *= alpha
	}
}

func dotGeneric(x, y []float64) float64 {
	n := len(x)
	x, y = x[:n:n], y[:n:n]
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
		x, y = x[4:], y[4:]
	}
	s := s0 + s1 + s2 + s3
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// axpy2Generic chains the two multiply-adds per element exactly as two
// sequential Axpy calls would round them.
func axpy2Generic(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64) {
	n := len(y)
	x0, x1, y = x0[:n:n], x1[:n:n], y[:n:n]
	for i, v := range x0 {
		t := y[i] + a0*v
		y[i] = t + a1*x1[i]
	}
}

// axpyQuadGeneric updates the four destinations per element exactly as four
// sequential Axpy calls would (the destinations are independent, so the
// interleaving cannot change any result bit).
func axpyQuadGeneric(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64) {
	n := len(x)
	x = x[:n:n]
	y0, y1, y2, y3 = y0[:n:n], y1[:n:n], y2[:n:n], y3[:n:n]
	for i, v := range x {
		y0[i] += a0 * v
		y1[i] += a1 * v
		y2[i] += a2 * v
		y3[i] += a3 * v
	}
}
