package kernels

// Declarations for the AVX2/FMA assembly kernels in kernels_amd64.s and the
// slice wrappers that bind them into the dispatch table. All assembly
// entry points take raw base pointers plus an element count n >= 1; the
// wrappers receive equal-length non-empty slices from the dispatch layer.
//
// The AVX2 variants use separate VMULPD/VADDPD so every element rounds
// twice, exactly like the generic Go code (the compiler does not fuse on
// the amd64 v1 baseline) — results are bit-identical to generic. The FMA
// variants (VFMADD231PD) round once per multiply-add and are only reachable
// through the explicit AllowFMA opt-in. ScaleTo/Add/Scale have no
// multiply-add to fuse, so the FMA implementation set reuses their AVX2
// bodies.

//go:noescape
func axpyAVX2(alpha float64, x, y *float64, n int)

//go:noescape
func axpyFMA(alpha float64, x, y *float64, n int)

//go:noescape
func axpyToAVX2(dst *float64, alpha float64, x, y *float64, n int)

//go:noescape
func axpyToFMA(dst *float64, alpha float64, x, y *float64, n int)

//go:noescape
func scaleToAVX2(dst *float64, alpha float64, x *float64, n int)

//go:noescape
func addAVX2(dst, x *float64, n int)

//go:noescape
func scaleAVX2(alpha float64, x *float64, n int)

//go:noescape
func dotAVX2(x, y *float64, n int) float64

//go:noescape
func dotFMA(x, y *float64, n int) float64

//go:noescape
func axpy2AVX2(a0 float64, x0 *float64, a1 float64, x1 *float64, y *float64, n int)

//go:noescape
func axpy2FMA(a0 float64, x0 *float64, a1 float64, x1 *float64, y *float64, n int)

//go:noescape
func axpyQuadAVX2(x *float64, a0 float64, y0 *float64, a1 float64, y1 *float64, a2 float64, y2 *float64, a3 float64, y3 *float64, n int)

//go:noescape
func axpyQuadFMA(x *float64, a0 float64, y0 *float64, a1 float64, y1 *float64, a2 float64, y2 *float64, a3 float64, y3 *float64, n int)

var avx2Impl = impl{
	variant: VariantAVX2,
	axpy: func(alpha float64, x, y []float64) {
		axpyAVX2(alpha, &x[0], &y[0], len(x))
	},
	axpyTo: func(dst []float64, alpha float64, x, y []float64) {
		axpyToAVX2(&dst[0], alpha, &x[0], &y[0], len(x))
	},
	scaleTo: func(dst []float64, alpha float64, x []float64) {
		scaleToAVX2(&dst[0], alpha, &x[0], len(x))
	},
	add: func(dst, x []float64) {
		addAVX2(&dst[0], &x[0], len(x))
	},
	scale: func(alpha float64, x []float64) {
		scaleAVX2(alpha, &x[0], len(x))
	},
	dot: func(x, y []float64) float64 {
		return dotAVX2(&x[0], &y[0], len(x))
	},
	axpy2: func(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64) {
		axpy2AVX2(a0, &x0[0], a1, &x1[0], &y[0], len(y))
	},
	axpyQuad: func(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64) {
		axpyQuadAVX2(&x[0], a0, &y0[0], a1, &y1[0], a2, &y2[0], a3, &y3[0], len(x))
	},
}

var fmaImpl = impl{
	variant: VariantAVX2FMA,
	axpy: func(alpha float64, x, y []float64) {
		axpyFMA(alpha, &x[0], &y[0], len(x))
	},
	axpyTo: func(dst []float64, alpha float64, x, y []float64) {
		axpyToFMA(&dst[0], alpha, &x[0], &y[0], len(x))
	},
	scaleTo: avx2Impl.scaleTo,
	add:     avx2Impl.add,
	scale:   avx2Impl.scale,
	dot: func(x, y []float64) float64 {
		return dotFMA(&x[0], &y[0], len(x))
	},
	axpy2: func(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64) {
		axpy2FMA(a0, &x0[0], a1, &x1[0], &y[0], len(y))
	},
	axpyQuad: func(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64) {
		axpyQuadFMA(&x[0], a0, &y0[0], a1, &y1[0], a2, &y2[0], a3, &y3[0], len(x))
	},
}
