package kernels

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randSlice(n int, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 2*rng.Float64() - 1
	}
	return s
}

// pinNonFMA turns the FMA opt-in off for the duration of a test that
// requires exact equality with the unfused reference loops, restoring the
// ambient state (which TWOFACE_ALLOW_FMA may have set) afterwards. The FMA
// variant's one-rounding drift is covered by TestFMABoundedError.
func pinNonFMA(t *testing.T) {
	t.Helper()
	if FMAAllowed() {
		SetAllowFMA(false)
		t.Cleanup(func() { SetAllowFMA(true) })
	}
}

// Every kernel must agree with its naive one-line loop for all lengths,
// including the 1..3 remainders of the 4-way unroll.
func TestKernelsMatchNaive(t *testing.T) {
	pinNonFMA(t)
	rng := rand.New(rand.NewPCG(1, 2))
	for n := 0; n <= 67; n++ {
		x := randSlice(n, rng)
		y := randSlice(n, rng)
		alpha := 2*rng.Float64() - 1

		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + alpha*x[i]
		}
		got := append([]float64(nil), y...)
		Axpy(alpha, x, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Axpy n=%d i=%d: %v != %v", n, i, got[i], want[i])
			}
		}

		got = make([]float64, n)
		ScaleTo(got, alpha, x)
		for i := range got {
			if got[i] != alpha*x[i] {
				t.Fatalf("ScaleTo n=%d i=%d", n, i)
			}
		}

		got = make([]float64, n)
		AxpyTo(got, alpha, x, y)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AxpyTo n=%d i=%d", n, i)
			}
		}

		got = append([]float64(nil), y...)
		Add(got, x)
		for i := range got {
			if got[i] != y[i]+x[i] {
				t.Fatalf("Add n=%d i=%d", n, i)
			}
		}

		got = append([]float64(nil), x...)
		Scale(alpha, got)
		for i := range got {
			if got[i] != alpha*x[i] {
				t.Fatalf("Scale n=%d i=%d", n, i)
			}
		}

		var dot float64
		for i := range x {
			dot += x[i] * y[i]
		}
		if d := Dot(x, y); math.Abs(d-dot) > 1e-12*float64(n+1) {
			t.Fatalf("Dot n=%d: %v != %v", n, d, dot)
		}
	}
}

// Kernels operate over the common length, so mismatched slices must neither
// panic nor touch elements beyond it.
func TestKernelsCommonLength(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Fatalf("Axpy short y: %v", y)
	}
	y = []float64{10, 20, 30, 40, 50, 60}
	Axpy(2, x[:2], y)
	if y[2] != 30 || y[5] != 60 {
		t.Fatalf("Axpy short x wrote past common length: %v", y)
	}
	if d := Dot(x, y[:3]); d != 1*12+2*24+3*30 {
		t.Fatalf("Dot common length: %v", d)
	}
	dst := make([]float64, 2)
	AxpyTo(dst, 1, x, y)
	if dst[0] != 13 || dst[1] != 26 {
		t.Fatalf("AxpyTo short dst: %v", dst)
	}
}

func TestAxpyProperty(t *testing.T) {
	pinNonFMA(t)
	f := func(seed uint64, nRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := int(nRaw % 300)
		x, y := randSlice(n, rng), randSlice(n, rng)
		alpha := 2*rng.Float64() - 1
		got := append([]float64(nil), y...)
		Axpy(alpha, x, got)
		for i := range got {
			if got[i] != y[i]+alpha*x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, k := range []int{32, 128, 512} {
		b.Run(sizeName(k), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(3, 4))
			x, y := randSlice(k, rng), randSlice(k, rng)
			b.ReportAllocs()
			b.SetBytes(int64(16 * k))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(1.0000001, x, y)
			}
		})
	}
}

func BenchmarkDot(b *testing.B) {
	for _, k := range []int{32, 128, 512} {
		b.Run(sizeName(k), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(5, 6))
			x, y := randSlice(k, rng), randSlice(k, rng)
			var sink float64
			b.ReportAllocs()
			b.SetBytes(int64(16 * k))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += Dot(x, y)
			}
			_ = sink
		})
	}
}

func sizeName(k int) string {
	switch k {
	case 32:
		return "K=32"
	case 128:
		return "K=128"
	case 512:
		return "K=512"
	}
	return "K=?"
}
