package kernels

import (
	"os"
	"sync"
	"sync/atomic"
)

// Variant identifies one kernel implementation set.
type Variant uint8

const (
	// VariantGeneric is the pure-Go fallback, available everywhere.
	VariantGeneric Variant = iota
	// VariantAVX2 is the amd64 AVX2 assembly (separate multiply and add,
	// bit-identical to generic).
	VariantAVX2
	// VariantAVX2FMA is the amd64 FMA assembly (fused multiply-add, one
	// rounding per element instead of two; opt-in only).
	VariantAVX2FMA
	// VariantNEON is the arm64 NEON assembly (FMLA, bit-identical to the
	// generic code the Go compiler fuses on arm64).
	VariantNEON
)

// String returns the variant's short name as used in benchmarks and reports.
func (v Variant) String() string {
	switch v {
	case VariantAVX2:
		return "avx2"
	case VariantAVX2FMA:
		return "avx2+fma"
	case VariantNEON:
		return "neon"
	}
	return "generic"
}

// impl is one complete implementation set. All functions receive
// equal-length, non-empty slices: the public wrappers in kernels.go trim to
// the common length and drop empty calls before dispatching.
type impl struct {
	variant  Variant
	axpy     func(alpha float64, x, y []float64)
	axpyTo   func(dst []float64, alpha float64, x, y []float64)
	scaleTo  func(dst []float64, alpha float64, x []float64)
	add      func(dst, x []float64)
	scale    func(alpha float64, x []float64)
	dot      func(x, y []float64) float64
	axpy2    func(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64)
	axpyQuad func(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64)
}

// active is the currently bound implementation set. It is read with one
// atomic load per kernel call and swapped whole on rebinds, so toggling
// ForceGeneric/AllowFMA is race-free even with kernels in flight.
var active atomic.Pointer[impl]

var (
	dispatchMu   sync.Mutex
	forceGeneric bool
	allowFMA     bool
)

func init() {
	forceGeneric = envTrue("TWOFACE_FORCE_GENERIC")
	allowFMA = envTrue("TWOFACE_ALLOW_FMA")
	rebind()
}

func envTrue(name string) bool {
	switch os.Getenv(name) {
	case "", "0", "false", "no", "off":
		return false
	}
	return true
}

// rebind picks the best implementation under the current flags. Callers
// hold dispatchMu (or are in init, which runs before any concurrent use).
func rebind() {
	t := &genericImpl
	if !forceGeneric {
		if a := archImpl(allowFMA); a != nil {
			t = a
		}
	}
	active.Store(t)
}

// Active returns the variant currently answering kernel calls.
func Active() Variant { return active.Load().variant }

// SetForceGeneric pins (or unpins) the pure-Go kernels, overriding CPU
// detection. The TWOFACE_FORCE_GENERIC environment variable sets the
// initial state. Safe to call at any time; in-flight kernel calls finish on
// the implementation they started with.
func SetForceGeneric(on bool) {
	dispatchMu.Lock()
	forceGeneric = on
	rebind()
	dispatchMu.Unlock()
}

// GenericForced reports whether the generic kernels are currently pinned.
func GenericForced() bool {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	return forceGeneric
}

// SetAllowFMA opts in (or out of) the fused multiply-add kernels on hosts
// that have them. FMA rounds once per multiply-add instead of twice, so
// results drift from the generic kernels by up to one ulp per operation;
// the default therefore stays off, keeping runs bit-exact across hosts.
// The TWOFACE_ALLOW_FMA environment variable sets the initial state.
func SetAllowFMA(on bool) {
	dispatchMu.Lock()
	allowFMA = on
	rebind()
	dispatchMu.Unlock()
}

// FMAAllowed reports whether FMA kernels may be selected.
func FMAAllowed() bool {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	return allowFMA
}

// Impl is one implementation set exposed for per-variant benchmarks and
// exactness tests. The function fields apply the same public length
// contracts as the package-level kernels.
type Impl struct {
	Variant  Variant
	Axpy     func(alpha float64, x, y []float64)
	AxpyTo   func(dst []float64, alpha float64, x, y []float64)
	ScaleTo  func(dst []float64, alpha float64, x []float64)
	Add      func(dst, x []float64)
	Scale    func(alpha float64, x []float64)
	Dot      func(x, y []float64) float64
	Axpy2    func(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64)
	AxpyQuad func(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64)
}

// Implementations returns every implementation set available on this host,
// generic first, regardless of the ForceGeneric/AllowFMA state. Benchmarks
// use it to measure variants side by side without flipping global dispatch.
func Implementations() []Impl {
	impls := []*impl{&genericImpl}
	impls = append(impls, archImpls()...)
	out := make([]Impl, len(impls))
	for i, t := range impls {
		out[i] = exportImpl(t)
	}
	return out
}

func exportImpl(t *impl) Impl {
	return Impl{
		Variant: t.variant,
		Axpy: func(alpha float64, x, y []float64) {
			if n := min(len(x), len(y)); n > 0 {
				t.axpy(alpha, x[:n], y[:n])
			}
		},
		AxpyTo: func(dst []float64, alpha float64, x, y []float64) {
			if n := min(len(dst), len(x), len(y)); n > 0 {
				t.axpyTo(dst[:n], alpha, x[:n], y[:n])
			}
		},
		ScaleTo: func(dst []float64, alpha float64, x []float64) {
			if n := min(len(dst), len(x)); n > 0 {
				t.scaleTo(dst[:n], alpha, x[:n])
			}
		},
		Add: func(dst, x []float64) {
			if n := min(len(dst), len(x)); n > 0 {
				t.add(dst[:n], x[:n])
			}
		},
		Scale: func(alpha float64, x []float64) {
			if len(x) > 0 {
				t.scale(alpha, x)
			}
		},
		Dot: func(x, y []float64) float64 {
			n := min(len(x), len(y))
			if n == 0 {
				return 0
			}
			return t.dot(x[:n], y[:n])
		},
		Axpy2: func(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64) {
			if n := min(len(x0), len(x1), len(y)); n > 0 {
				t.axpy2(a0, x0[:n], a1, x1[:n], y[:n])
			}
		},
		AxpyQuad: func(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64) {
			if n := min(len(x), len(y0), len(y1), len(y2), len(y3)); n > 0 {
				t.axpyQuad(x[:n], a0, y0[:n], a1, y1[:n], a2, y2[:n], a3, y3[:n])
			}
		},
	}
}
