package kernels

// CPU feature detection for the amd64 dispatch: AVX2 requires the OS to
// have enabled YMM state saving (OSXSAVE + XCR0[2:1] == 11) on top of the
// CPUID feature bits, per the Intel SDM procedure. Detection runs once at
// package initialization, before init() binds the dispatch table.

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0). Only valid when CPUID
// reports OSXSAVE. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

var hasAVX2, hasFMA = detectAMD64()

func detectAMD64() (avx2, fma bool) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false, false
	}
	if lo, _ := xgetbv(); lo&6 != 6 { // XMM and YMM state enabled by the OS
		return false, false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	avx2 = ebx7&avx2Bit != 0
	fma = avx2 && ecx1&fmaBit != 0
	return avx2, fma
}

// archImpl returns the best assembly implementation under the FMA policy,
// or nil to fall back to generic.
func archImpl(allowFMA bool) *impl {
	if hasAVX2 && allowFMA && hasFMA {
		return &fmaImpl
	}
	if hasAVX2 {
		return &avx2Impl
	}
	return nil
}

// archImpls lists every assembly implementation this host can run.
func archImpls() []*impl {
	var out []*impl
	if hasAVX2 {
		out = append(out, &avx2Impl)
	}
	if hasFMA {
		out = append(out, &fmaImpl)
	}
	return out
}
