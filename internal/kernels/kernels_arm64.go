package kernels

// Declarations for the NEON assembly kernels in kernels_arm64.s and the
// slice wrappers that bind them into the dispatch table. All assembly entry
// points take raw base pointers plus an element count n >= 1; the wrappers
// receive equal-length non-empty slices from the dispatch layer.
//
// ScaleTo and Scale intentionally stay generic on arm64: the only fused
// path available (FMLA against a zero accumulator) maps -0.0 products to
// +0.0, which would break bit-exactness with the generic dst = alpha*x
// loops, and a plain multiply vectorizes well under the compiler anyway.

//go:noescape
func axpyNEON(alpha float64, x, y *float64, n int)

//go:noescape
func axpyToNEON(dst *float64, alpha float64, x, y *float64, n int)

//go:noescape
func addNEON(dst, x *float64, n int)

//go:noescape
func dotNEON(x, y *float64, n int) float64

//go:noescape
func axpy2NEON(a0 float64, x0 *float64, a1 float64, x1 *float64, y *float64, n int)

//go:noescape
func axpyQuadNEON(x *float64, a0 float64, y0 *float64, a1 float64, y1 *float64, a2 float64, y2 *float64, a3 float64, y3 *float64, n int)

var neonImpl = impl{
	variant: VariantNEON,
	axpy: func(alpha float64, x, y []float64) {
		axpyNEON(alpha, &x[0], &y[0], len(x))
	},
	axpyTo: func(dst []float64, alpha float64, x, y []float64) {
		axpyToNEON(&dst[0], alpha, &x[0], &y[0], len(x))
	},
	scaleTo: scaleToGeneric,
	add: func(dst, x []float64) {
		addNEON(&dst[0], &x[0], len(x))
	},
	scale: scaleGeneric,
	dot: func(x, y []float64) float64 {
		return dotNEON(&x[0], &y[0], len(x))
	},
	axpy2: func(a0 float64, x0 []float64, a1 float64, x1 []float64, y []float64) {
		axpy2NEON(a0, &x0[0], a1, &x1[0], &y[0], len(y))
	},
	axpyQuad: func(x []float64, a0 float64, y0 []float64, a1 float64, y1 []float64, a2 float64, y2 []float64, a3 float64, y3 []float64) {
		axpyQuadNEON(&x[0], a0, &y0[0], a1, &y1[0], a2, &y2[0], a3, &y3[0], len(x))
	},
}
