package kernels

// RowAccumulator gathers scaled dense rows into a compact per-row buffer so
// that a stream of (row, alpha, x) updates in arbitrary row order — the
// column-major nonzero order of an asynchronous stripe — turns into exactly
// one flush per distinct output row. The executor drains it through
// atomicfloat.AddRange, replacing one CAS-looped atomic add per scalar with
// plain float adds plus a single atomic pass per touched row.
//
// Row indices are dense small integers (node-local row offsets). First
// touches are detected with an epoch stamp per row index, so Begin is O(1):
// no per-call clearing of the stamp or accumulator arrays. A RowAccumulator
// is reusable across stripes and sized lazily; the zero value is ready to
// use. It is not safe for concurrent use — give each worker its own
// (typically from a sync.Pool).
type RowAccumulator struct {
	k     int       // dense row width of the current epoch
	acc   []float64 // slot-major accumulation buffer, len >= len(rows)*k
	rows  []int32   // touched rows in first-touch order
	slot  []int32   // row -> slot index, valid iff stamp[row] == epoch
	stamp []uint32  // row -> epoch of last touch
	epoch uint32
}

// Begin starts accumulation for a new stripe over row indices [0, numRows)
// with dense width k. It retains and reuses all prior capacity.
func (a *RowAccumulator) Begin(numRows, k int) {
	a.k = k
	if len(a.stamp) < numRows {
		a.slot = make([]int32, numRows)
		a.stamp = make([]uint32, numRows)
	}
	a.epoch++
	if a.epoch == 0 { // uint32 wraparound: stale stamps could collide
		clear(a.stamp)
		a.epoch = 1
	}
	a.rows = a.rows[:0]
}

// Accumulate adds alpha * x into the accumulator row `row`. The first touch
// of a row assigns it the next free slot and scale-assigns (no zero fill);
// later touches accumulate with Axpy.
func (a *RowAccumulator) Accumulate(row int32, alpha float64, x []float64) {
	vals, first := a.Row(row)
	if first {
		ScaleTo(vals, alpha, x)
		return
	}
	Axpy(alpha, x, vals)
}

// Row returns the width-k accumulation buffer of `row`, assigning it the
// next free slot on a first touch. When first is true the buffer holds stale
// data from an earlier epoch: the caller must assign into it (ScaleTo), not
// accumulate. Buffers alias internal storage and are invalidated when a
// later first touch grows it — callers holding several buffers across touches
// (the tiled AxpyQuad path) must Reserve the batch's rows up front.
func (a *RowAccumulator) Row(row int32) (vals []float64, first bool) {
	if a.stamp[row] != a.epoch {
		a.stamp[row] = a.epoch
		a.slot[row] = int32(len(a.rows))
		a.rows = append(a.rows, row)
		if need := len(a.rows) * a.k; need > len(a.acc) {
			grown := make([]float64, max(need, 2*len(a.acc)))
			copy(grown, a.acc)
			a.acc = grown
		}
		off := (len(a.rows) - 1) * a.k
		return a.acc[off : off+a.k], true
	}
	off := int(a.slot[row]) * a.k
	return a.acc[off : off+a.k], false
}

// Reserve grows the accumulation buffer to hold up to n further first
// touches, so Row buffers handed out during the next n touches stay valid.
func (a *RowAccumulator) Reserve(n int) {
	if need := (len(a.rows) + n) * a.k; need > len(a.acc) {
		grown := make([]float64, max(need, 2*len(a.acc)))
		copy(grown, a.acc)
		a.acc = grown
	}
}

// Touched returns the rows accumulated since Begin, in first-touch order.
// The slice aliases internal storage and is invalidated by the next Begin.
func (a *RowAccumulator) Touched() []int32 { return a.rows }

// Vals returns the accumulated width-k vector of the i-th touched row
// (aligned with Touched). It aliases internal storage.
func (a *RowAccumulator) Vals(i int) []float64 { return a.acc[i*a.k : (i+1)*a.k] }
