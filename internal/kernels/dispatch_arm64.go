package kernels

// NEON (ASIMD) is a mandatory part of the arm64 profile Go targets, so the
// assembly set is always available and needs no runtime probing.
//
// The Go compiler already fuses multiply-adds on arm64 (FMADDD), and the
// NEON kernels use FMLA with the same single rounding, so the assembly is
// bit-identical to the generic code here. There is consequently no separate
// FMA variant on this architecture: allowFMA changes nothing.

func archImpl(allowFMA bool) *impl { return &neonImpl }

func archImpls() []*impl { return []*impl{&neonImpl} }
