// NEON float64 kernels (see kernels_arm64.go for the contracts).
//
// Bit-exactness discipline: the Go compiler fuses multiply-adds into FMADDD
// on arm64, so the generic kernels already round once per multiply-add;
// the vector bodies use FMLA, which rounds identically, making these
// kernels bit-identical to generic. Dot reproduces the generic
// four-partial-sum grouping: lane j of the accumulator pair holds the
// generic s_j and the lanes reduce in the fixed order ((s0+s1)+s2)+s3,
// with the <4 remainder accumulated sequentially.
//
// All entry points take base pointers plus an element count n >= 1.

#include "textflag.h"

// func axpyNEON(alpha float64, x, y *float64, n int)
TEXT ·axpyNEON(SB), NOSPLIT, $0-32
	FMOVD alpha+0(FP), F0
	VDUP  V0.D[0], V0.D2
	MOVD  x+8(FP), R1
	MOVD  y+16(FP), R2
	MOVD  n+24(FP), R3

axpy4:
	CMP  $4, R3
	BLT  axpy1
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1   (R2), [V3.D2, V4.D2]
	VFMLA  V0.D2, V1.D2, V3.D2
	VFMLA  V0.D2, V2.D2, V4.D2
	VST1.P [V3.D2, V4.D2], 32(R2)
	SUB  $4, R3
	B    axpy4

axpy1:
	CBZ  R3, axpydone
	FMOVD  (R1), F1
	FMOVD  (R2), F2
	FMADDD F1, F2, F0, F2
	FMOVD  F2, (R2)
	ADD  $8, R1
	ADD  $8, R2
	SUB  $1, R3
	B    axpy1

axpydone:
	RET

// func axpyToNEON(dst *float64, alpha float64, x, y *float64, n int)
TEXT ·axpyToNEON(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	FMOVD alpha+8(FP), F0
	VDUP  V0.D[0], V0.D2
	MOVD  x+16(FP), R1
	MOVD  y+24(FP), R2
	MOVD  n+32(FP), R3

axpyto4:
	CMP  $4, R3
	BLT  axpyto1
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1.P 32(R2), [V3.D2, V4.D2]
	VFMLA  V0.D2, V1.D2, V3.D2
	VFMLA  V0.D2, V2.D2, V4.D2
	VST1.P [V3.D2, V4.D2], 32(R0)
	SUB  $4, R3
	B    axpyto4

axpyto1:
	CBZ  R3, axpytodone
	FMOVD  (R1), F1
	FMOVD  (R2), F2
	FMADDD F1, F2, F0, F2
	FMOVD  F2, (R0)
	ADD  $8, R0
	ADD  $8, R1
	ADD  $8, R2
	SUB  $1, R3
	B    axpyto1

axpytodone:
	RET

// func addNEON(dst, x *float64, n int)
//
// Vector adds run as FMLA against a splat of 1.0: round(1.0*x + d) is
// exactly x + d, so this is bit-identical to the generic d += x loop.
TEXT ·addNEON(SB), NOSPLIT, $0-24
	MOVD  dst+0(FP), R0
	MOVD  x+8(FP), R1
	MOVD  n+16(FP), R3
	MOVD  $0x3FF0000000000000, R4 // float64(1.0)
	FMOVD R4, F0
	VDUP  V0.D[0], V0.D2

add4:
	CMP  $4, R3
	BLT  add1
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1   (R0), [V3.D2, V4.D2]
	VFMLA  V0.D2, V1.D2, V3.D2
	VFMLA  V0.D2, V2.D2, V4.D2
	VST1.P [V3.D2, V4.D2], 32(R0)
	SUB  $4, R3
	B    add4

add1:
	CBZ  R3, adddone
	FMOVD (R1), F1
	FMOVD (R0), F2
	FADDD F1, F2, F2
	FMOVD F2, (R0)
	ADD  $8, R0
	ADD  $8, R1
	SUB  $1, R3
	B    add1

adddone:
	RET

// func dotNEON(x, y *float64, n int) float64
TEXT ·dotNEON(SB), NOSPLIT, $0-32
	MOVD x+0(FP), R1
	MOVD y+8(FP), R2
	MOVD n+16(FP), R3
	VEOR V20.B16, V20.B16, V20.B16 // lanes (s0, s1)
	VEOR V21.B16, V21.B16, V21.B16 // lanes (s2, s3)

dot4:
	CMP  $4, R3
	BLT  dotreduce
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1.P 32(R2), [V3.D2, V4.D2]
	VFMLA  V3.D2, V1.D2, V20.D2
	VFMLA  V4.D2, V2.D2, V21.D2
	SUB  $4, R3
	B    dot4

dotreduce:
	// s = ((s0+s1)+s2)+s3, the generic reduction order.
	VMOV  V20.D[1], V22.D[0] // F22 = s1
	VMOV  V21.D[1], V23.D[0] // F23 = s3
	FADDD F22, F20, F20      // s0+s1
	FADDD F21, F20, F20      // +s2
	FADDD F23, F20, F20      // +s3

dot1:
	CBZ  R3, dotdone
	FMOVD  (R1), F1
	FMOVD  (R2), F2
	FMADDD F2, F20, F1, F20 // s += x*y
	ADD  $8, R1
	ADD  $8, R2
	SUB  $1, R3
	B    dot1

dotdone:
	FMOVD F20, ret+24(FP)
	RET

// func axpy2NEON(a0 float64, x0 *float64, a1 float64, x1 *float64, y *float64, n int)
//
// The register-tiled dual-source kernel: the accumulator tile stays in
// vector registers across both multiply-adds, halving accumulator traffic
// versus two Axpy passes while rounding identically (source 0 first).
TEXT ·axpy2NEON(SB), NOSPLIT, $0-48
	FMOVD a0+0(FP), F0
	VDUP  V0.D[0], V0.D2
	MOVD  x0+8(FP), R1
	FMOVD a1+16(FP), F1
	VDUP  V1.D[0], V1.D2
	MOVD  x1+24(FP), R2
	MOVD  y+32(FP), R0
	MOVD  n+40(FP), R3

a2loop4:
	CMP  $4, R3
	BLT  a2loop1
	VLD1   (R0), [V16.D2, V17.D2]
	VLD1.P 32(R1), [V2.D2, V3.D2]
	VFMLA  V0.D2, V2.D2, V16.D2
	VFMLA  V0.D2, V3.D2, V17.D2
	VLD1.P 32(R2), [V2.D2, V3.D2]
	VFMLA  V1.D2, V2.D2, V16.D2
	VFMLA  V1.D2, V3.D2, V17.D2
	VST1.P [V16.D2, V17.D2], 32(R0)
	SUB  $4, R3
	B    a2loop4

a2loop1:
	CBZ  R3, a2done
	FMOVD  (R0), F4
	FMOVD  (R1), F5
	FMADDD F5, F4, F0, F4
	FMOVD  (R2), F5
	FMADDD F5, F4, F1, F4
	FMOVD  F4, (R0)
	ADD  $8, R0
	ADD  $8, R1
	ADD  $8, R2
	SUB  $1, R3
	B    a2loop1

a2done:
	RET

// func axpyQuadNEON(x *float64, a0 float64, y0 *float64, a1 float64, y1 *float64, a2 float64, y2 *float64, a3 float64, y3 *float64, n int)
//
// The multi-row tiled kernel: each x tile is loaded once and spread to four
// destination rows while in registers, cutting source bandwidth 4x versus
// four Axpy passes while rounding identically.
TEXT ·axpyQuadNEON(SB), NOSPLIT, $0-80
	MOVD  x+0(FP), R0
	FMOVD a0+8(FP), F0
	VDUP  V0.D[0], V0.D2
	MOVD  y0+16(FP), R4
	FMOVD a1+24(FP), F1
	VDUP  V1.D[0], V1.D2
	MOVD  y1+32(FP), R5
	FMOVD a2+40(FP), F2
	VDUP  V2.D[0], V2.D2
	MOVD  y2+48(FP), R6
	FMOVD a3+56(FP), F3
	VDUP  V3.D[0], V3.D2
	MOVD  y3+64(FP), R7
	MOVD  n+72(FP), R3

quad4:
	CMP  $4, R3
	BLT  quad1
	VLD1.P 32(R0), [V4.D2, V5.D2]
	VLD1   (R4), [V6.D2, V7.D2]
	VFMLA  V0.D2, V4.D2, V6.D2
	VFMLA  V0.D2, V5.D2, V7.D2
	VST1.P [V6.D2, V7.D2], 32(R4)
	VLD1   (R5), [V6.D2, V7.D2]
	VFMLA  V1.D2, V4.D2, V6.D2
	VFMLA  V1.D2, V5.D2, V7.D2
	VST1.P [V6.D2, V7.D2], 32(R5)
	VLD1   (R6), [V6.D2, V7.D2]
	VFMLA  V2.D2, V4.D2, V6.D2
	VFMLA  V2.D2, V5.D2, V7.D2
	VST1.P [V6.D2, V7.D2], 32(R6)
	VLD1   (R7), [V6.D2, V7.D2]
	VFMLA  V3.D2, V4.D2, V6.D2
	VFMLA  V3.D2, V5.D2, V7.D2
	VST1.P [V6.D2, V7.D2], 32(R7)
	SUB  $4, R3
	B    quad4

quad1:
	CBZ  R3, quaddone
	FMOVD  (R0), F4
	FMOVD  (R4), F5
	FMADDD F4, F5, F0, F5
	FMOVD  F5, (R4)
	FMOVD  (R5), F5
	FMADDD F4, F5, F1, F5
	FMOVD  F5, (R5)
	FMOVD  (R6), F5
	FMADDD F4, F5, F2, F5
	FMOVD  F5, (R6)
	FMOVD  (R7), F5
	FMADDD F4, F5, F3, F5
	FMOVD  F5, (R7)
	ADD  $8, R0
	ADD  $8, R4
	ADD  $8, R5
	ADD  $8, R6
	ADD  $8, R7
	SUB  $1, R3
	B    quad1

quaddone:
	RET
