package kernels

import (
	"math/rand/v2"
	"testing"
)

// The register-tiled kernels are drop-in replacements for sequences of Axpy
// calls: Axpy2 must equal two chained Axpys and AxpyQuad four independent
// ones, bit for bit, under EVERY variant — including FMA, where both sides
// fuse identically. This equivalence is what lets the executor use the tiled
// formulations unconditionally without a ForceGeneric branch.
func TestAxpy2EquivalentToTwoAxpys(t *testing.T) {
	for _, v := range Implementations() {
		t.Run(v.Variant.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(29, uint64(v.Variant)))
			for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 19, 32, 127, 128} {
				x0, x1 := randSlice(n, rng), randSlice(n, rng)
				y := randSlice(n, rng)
				a0, a1 := 2*rng.Float64()-1, 2*rng.Float64()-1

				want := append([]float64(nil), y...)
				v.Axpy(a0, x0, want)
				v.Axpy(a1, x1, want)

				got := append([]float64(nil), y...)
				v.Axpy2(a0, x0, a1, x1, got)

				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d i=%d: %v != %v", n, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestAxpyQuadEquivalentToFourAxpys(t *testing.T) {
	for _, v := range Implementations() {
		t.Run(v.Variant.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(31, uint64(v.Variant)))
			for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 19, 32, 127, 128} {
				x := randSlice(n, rng)
				ys := [4][]float64{randSlice(n, rng), randSlice(n, rng), randSlice(n, rng), randSlice(n, rng)}
				as := [4]float64{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}

				var want, got [4][]float64
				for j := range ys {
					want[j] = append([]float64(nil), ys[j]...)
					got[j] = append([]float64(nil), ys[j]...)
					v.Axpy(as[j], x, want[j])
				}
				v.AxpyQuad(x, as[0], got[0], as[1], got[1], as[2], got[2], as[3], got[3])

				for j := range want {
					for i := range want[j] {
						if got[j][i] != want[j][i] {
							t.Fatalf("n=%d dst=%d i=%d: %v != %v", n, j, i, got[j][i], want[j][i])
						}
					}
				}
			}
		})
	}
}

// Package-level Axpy2/AxpyQuad trim to the common length like every other
// kernel.
func TestTiledKernelsTruncate(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	Axpy2(1, []float64{10, 10}, 1, []float64{100, 100, 100}, y)
	if y[0] != 111 || y[1] != 112 || y[2] != 3 {
		t.Fatalf("Axpy2 truncation: %v", y)
	}
	y0 := []float64{1, 2, 3}
	y1 := []float64{1, 2, 3}
	AxpyQuad([]float64{5, 5}, 1, y0, 2, y1, 0, y0[:0], 0, nil)
	if y0[0] != 1 || y1[0] != 1 || y0[2] != 3 {
		t.Fatalf("AxpyQuad empty dst must truncate all: %v %v", y0, y1)
	}
}

// Row hands out the same buffer Accumulate fills, with the first-touch flag
// deciding assign-vs-accumulate, and Reserve keeps outstanding buffers valid
// across first-touch growth — the contract the tiled async path depends on.
func TestRowAccumulatorRowAndReserve(t *testing.T) {
	var a RowAccumulator
	a.Begin(8, 4)
	x := []float64{1, 2, 3, 4}

	vals, first := a.Row(3)
	if !first {
		t.Fatal("first touch not reported")
	}
	ScaleTo(vals, 2, x)
	vals, first = a.Row(3)
	if first {
		t.Fatal("second touch reported as first")
	}
	Axpy(1, x, vals)
	if got := a.Vals(0); got[0] != 3 || got[3] != 12 {
		t.Fatalf("accumulated row: %v", got)
	}
	if rows := a.Touched(); len(rows) != 1 || rows[0] != 3 {
		t.Fatalf("touched: %v", rows)
	}

	// Reserve must keep an outstanding buffer valid while new rows grow the
	// accumulator past its current capacity.
	a.Begin(64, 4)
	a.Reserve(64)
	held, _ := a.Row(0)
	ScaleTo(held, 1, x)
	for r := int32(1); r < 64; r++ {
		vals, first := a.Row(r)
		if !first {
			t.Fatalf("row %d: expected first touch", r)
		}
		ScaleTo(vals, 1, x)
	}
	held[0] = 42 // must still alias slot 0
	if got := a.Vals(0); got[0] != 42 {
		t.Fatalf("Reserve did not keep the buffer valid: %v", got)
	}

	// Epoch reuse: a new Begin forgets everything without clearing.
	a.Begin(8, 4)
	if _, first := a.Row(3); !first {
		t.Fatal("row 3 should be first-touch again after Begin")
	}
	if len(a.Touched()) != 1 {
		t.Fatalf("touched after Begin: %v", a.Touched())
	}
}
