package kernels

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// genericRef runs every kernel of the generic set through the public-length
// wrappers, as the baseline all dispatch variants are compared against.
func genericRef() Impl { return exportImpl(&genericImpl) }

// Every non-FMA variant must produce element-wise identical results to the
// generic loops for all lengths 0..67 — covering the vector widths, the
// 4-and-8-wide main loops, and every scalar-tail remainder.
func TestVariantsMatchGenericExact(t *testing.T) {
	ref := genericRef()
	for _, v := range Implementations() {
		if v.Variant == VariantAVX2FMA {
			continue // one-rounding drift; covered by TestFMABoundedError
		}
		t.Run(v.Variant.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(7, uint64(v.Variant)))
			for n := 0; n <= 67; n++ {
				x := randSlice(n, rng)
				y := randSlice(n, rng)
				x1 := randSlice(n, rng)
				y1, y2, y3 := randSlice(n, rng), randSlice(n, rng), randSlice(n, rng)
				alpha := 2*rng.Float64() - 1
				a1, a2, a3 := rng.Float64(), -rng.Float64(), 2*rng.Float64()-1

				check := func(name string, got, want []float64) {
					t.Helper()
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s n=%d i=%d: %v != %v", name, n, i, got[i], want[i])
						}
					}
				}

				gw := append([]float64(nil), y...)
				gv := append([]float64(nil), y...)
				ref.Axpy(alpha, x, gw)
				v.Axpy(alpha, x, gv)
				check("Axpy", gv, gw)

				gw, gv = make([]float64, n), make([]float64, n)
				ref.ScaleTo(gw, alpha, x)
				v.ScaleTo(gv, alpha, x)
				check("ScaleTo", gv, gw)

				ref.AxpyTo(gw, alpha, x, y)
				v.AxpyTo(gv, alpha, x, y)
				check("AxpyTo", gv, gw)

				gw = append([]float64(nil), y...)
				gv = append([]float64(nil), y...)
				ref.Add(gw, x)
				v.Add(gv, x)
				check("Add", gv, gw)

				gw = append([]float64(nil), x...)
				gv = append([]float64(nil), x...)
				ref.Scale(alpha, gw)
				v.Scale(alpha, gv)
				check("Scale", gv, gw)

				if dw, dv := ref.Dot(x, y), v.Dot(x, y); dw != dv {
					t.Fatalf("Dot n=%d: %v != %v", n, dv, dw)
				}

				gw = append([]float64(nil), y...)
				gv = append([]float64(nil), y...)
				ref.Axpy2(alpha, x, a1, x1, gw)
				v.Axpy2(alpha, x, a1, x1, gv)
				check("Axpy2", gv, gw)

				w0 := append([]float64(nil), y...)
				w1 := append([]float64(nil), y1...)
				w2 := append([]float64(nil), y2...)
				w3 := append([]float64(nil), y3...)
				v0 := append([]float64(nil), y...)
				v1 := append([]float64(nil), y1...)
				v2 := append([]float64(nil), y2...)
				v3 := append([]float64(nil), y3...)
				ref.AxpyQuad(x, alpha, w0, a1, w1, a2, w2, a3, w3)
				v.AxpyQuad(x, alpha, v0, a1, v1, a2, v2, a3, v3)
				check("AxpyQuad y0", v0, w0)
				check("AxpyQuad y1", v1, w1)
				check("AxpyQuad y2", v2, w2)
				check("AxpyQuad y3", v3, w3)
			}
		})
	}
}

// Mismatched lengths truncate to the common prefix under every variant, and
// elements past it are never touched.
func TestVariantsTruncate(t *testing.T) {
	for _, v := range Implementations() {
		t.Run(v.Variant.String(), func(t *testing.T) {
			x := []float64{1, 2, 3, 4, 5, 6, 7}
			y := []float64{10, 20, 30, 40, 50, 60, 70}
			got := append([]float64(nil), y...)
			v.Axpy(2, x[:5], got)
			for i := 0; i < 5; i++ {
				if got[i] != y[i]+2*x[i] {
					t.Fatalf("Axpy i=%d: %v", i, got[i])
				}
			}
			if got[5] != 60 || got[6] != 70 {
				t.Fatalf("Axpy wrote past common length: %v", got)
			}
			dst := make([]float64, 3)
			v.AxpyTo(dst, 1, x, y)
			if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
				t.Fatalf("AxpyTo short dst: %v", dst)
			}
			if d := v.Dot(x[:2], y); d != 1*10+2*20 {
				t.Fatalf("Dot truncation: %v", d)
			}
			// AxpyQuad truncates to the min across ALL five slices: an empty
			// destination therefore disables the whole call.
			yq := append([]float64(nil), y...)
			v.AxpyQuad(x[:2], 1, yq, 0, nil, 0, nil, 0, nil)
			for i := range yq {
				if yq[i] != y[i] {
					t.Fatalf("AxpyQuad with empty dst must be a no-op: %v", yq)
				}
			}
		})
	}
}

// AxpyTo explicitly allows dst to alias x or y exactly; every variant must
// compute the same in-place result as the generic loops.
func TestVariantsAxpyToAliasing(t *testing.T) {
	ref := genericRef()
	for _, v := range Implementations() {
		if v.Variant == VariantAVX2FMA {
			continue
		}
		t.Run(v.Variant.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(11, uint64(v.Variant)))
			for n := 0; n <= 67; n++ {
				x := randSlice(n, rng)
				y := randSlice(n, rng)
				alpha := 2*rng.Float64() - 1

				// dst == y: the Axpy shape.
				want := append([]float64(nil), y...)
				got := append([]float64(nil), y...)
				ref.AxpyTo(want, alpha, x, want)
				v.AxpyTo(got, alpha, x, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("dst==y n=%d i=%d: %v != %v", n, i, got[i], want[i])
					}
				}

				// dst == x: overwrite the scaled source.
				want = append([]float64(nil), x...)
				got = append([]float64(nil), x...)
				ref.AxpyTo(want, alpha, want, y)
				v.AxpyTo(got, alpha, got, y)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("dst==x n=%d i=%d: %v != %v", n, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// Scale's documented contract differs from every other kernel: it has no
// second slice to truncate against and always scales the FULL slice. Every
// variant must honor that for lengths crossing the vector width.
func TestScaleFullSliceSemantics(t *testing.T) {
	for _, v := range Implementations() {
		t.Run(v.Variant.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(13, uint64(v.Variant)))
			for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 67} {
				x := randSlice(n, rng)
				got := append([]float64(nil), x...)
				v.Scale(3.5, got)
				for i := range x {
					if got[i] != 3.5*x[i] {
						t.Fatalf("n=%d i=%d: element not scaled", n, i)
					}
				}
			}
		})
	}
	// And via the package-level dispatcher.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	Scale(2, x)
	if x[8] != 18 {
		t.Fatalf("package Scale skipped the tail: %v", x)
	}
}

// The FMA variant rounds once per multiply-add instead of twice. Its drift
// from the generic result must stay within a few ulps per accumulation —
// anything larger means the kernel computes something other than fused
// y + alpha*x.
func TestFMABoundedError(t *testing.T) {
	var fma *Impl
	impls := Implementations()
	for i := range impls {
		if impls[i].Variant == VariantAVX2FMA {
			fma = &impls[i]
			break
		}
	}
	if fma == nil {
		t.Skip("no FMA implementation on this host")
	}
	ref := genericRef()
	rng := rand.New(rand.NewPCG(17, 19))
	for n := 0; n <= 67; n++ {
		x := randSlice(n, rng)
		y := randSlice(n, rng)
		alpha := 2*rng.Float64() - 1
		want := append([]float64(nil), y...)
		got := append([]float64(nil), y...)
		ref.Axpy(alpha, x, want)
		fma.Axpy(alpha, x, got)
		for i := range want {
			tol := 4 * ulp(math.Abs(want[i])+math.Abs(alpha*x[i]))
			if diff := math.Abs(got[i] - want[i]); diff > tol {
				t.Fatalf("Axpy n=%d i=%d: fma drift %g exceeds %g", n, i, diff, tol)
			}
		}
		dw, dg := ref.Dot(x, y), fma.Dot(x, y)
		var mag float64
		for i := range x {
			mag += math.Abs(x[i] * y[i])
		}
		if diff := math.Abs(dg - dw); diff > 4*float64(n+1)*ulp(mag+1) {
			t.Fatalf("Dot n=%d: fma drift %g", n, diff)
		}
	}
}

func ulp(v float64) float64 {
	next := math.Nextafter(v, math.Inf(1))
	return next - v
}

// Toggling ForceGeneric rebinds dispatch immediately and reversibly, and the
// kernels stay correct on both sides of the toggle.
func TestSetForceGenericToggle(t *testing.T) {
	wasForced := GenericForced()
	t.Cleanup(func() { SetForceGeneric(wasForced) })

	SetForceGeneric(true)
	if Active() != VariantGeneric {
		t.Fatalf("forced generic but active is %v", Active())
	}
	y := []float64{1, 2, 3, 4, 5}
	Axpy(2, []float64{1, 1, 1, 1, 1}, y)
	if y[0] != 3 || y[4] != 7 {
		t.Fatalf("generic Axpy wrong: %v", y)
	}

	SetForceGeneric(false)
	if len(archImpls()) > 0 && Active() == VariantGeneric && !GenericForced() {
		t.Fatalf("unforced generic on a host with assembly kernels")
	}
	y = []float64{1, 2, 3, 4, 5}
	Axpy(2, []float64{1, 1, 1, 1, 1}, y)
	if y[0] != 3 || y[4] != 7 {
		t.Fatalf("dispatched Axpy wrong: %v", y)
	}
}

// Property test: on random lengths and seeds, every non-FMA variant agrees
// exactly with generic for the three hot kernels.
func TestVariantsProperty(t *testing.T) {
	ref := genericRef()
	f := func(seed uint64, nRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		n := int(nRaw % 300)
		x, y := randSlice(n, rng), randSlice(n, rng)
		alpha := 2*rng.Float64() - 1
		for _, v := range Implementations() {
			if v.Variant == VariantAVX2FMA {
				continue
			}
			gw := append([]float64(nil), y...)
			gv := append([]float64(nil), y...)
			ref.Axpy(alpha, x, gw)
			v.Axpy(alpha, x, gv)
			for i := range gw {
				if gw[i] != gv[i] {
					return false
				}
			}
			if ref.Dot(x, y) != v.Dot(x, y) {
				return false
			}
			dw, dv := make([]float64, n), make([]float64, n)
			ref.ScaleTo(dw, alpha, x)
			v.ScaleTo(dv, alpha, x)
			for i := range dw {
				if dw[i] != dv[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
