// AVX2 and FMA float64 kernels (see kernels_amd64.go for the contracts).
//
// Bit-exactness discipline: the AVX2 bodies use separate VMULPD/VADDPD so
// every element is rounded twice, exactly as the generic Go code compiles
// on the amd64 v1 baseline; only the *FMA bodies (reachable through the
// AllowFMA opt-in alone) fuse the multiply-add into a single rounding.
// Dot reproduces the generic four-partial-sum grouping: vector lane j holds
// the generic s_j, the lanes reduce in the fixed order ((s0+s1)+s2)+s3, and
// the <4 remainder accumulates sequentially.
//
// All entry points take base pointers plus an element count n >= 1.

#include "textflag.h"

// func axpyAVX2(alpha float64, x, y *float64, n int)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	XORQ AX, AX

axpy8:
	CMPQ CX, $8
	JLT  axpy4
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  axpy8

axpy4:
	CMPQ CX, $4
	JLT  axpy1
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX

axpy1:
	TESTQ CX, CX
	JEQ   axpydone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	DECQ CX
	JMP  axpy1

axpydone:
	VZEROUPPER
	RET

// func axpyFMA(alpha float64, x, y *float64, n int)
TEXT ·axpyFMA(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	XORQ AX, AX

faxpy8:
	CMPQ CX, $8
	JLT  faxpy4
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD 32(DI)(AX*8), Y2
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VFMADD231PD 32(SI)(AX*8), Y0, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  faxpy8

faxpy4:
	CMPQ CX, $4
	JLT  faxpy1
	VMOVUPD (DI)(AX*8), Y1
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX

faxpy1:
	TESTQ CX, CX
	JEQ   faxpydone
	VMOVSD (DI)(AX*8), X1
	VFMADD231SD (SI)(AX*8), X0, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	DECQ CX
	JMP  faxpy1

faxpydone:
	VZEROUPPER
	RET

// func axpyToAVX2(dst *float64, alpha float64, x, y *float64, n int)
TEXT ·axpyToAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	VBROADCASTSD alpha+8(FP), Y0
	MOVQ x+16(FP), SI
	MOVQ y+24(FP), DI
	MOVQ n+32(FP), CX
	XORQ AX, AX

axpyto4:
	CMPQ CX, $4
	JLT  axpyto1
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DX)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  axpyto4

axpyto1:
	TESTQ CX, CX
	JEQ   axpytodone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DX)(AX*8)
	INCQ AX
	DECQ CX
	JMP  axpyto1

axpytodone:
	VZEROUPPER
	RET

// func axpyToFMA(dst *float64, alpha float64, x, y *float64, n int)
TEXT ·axpyToFMA(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	VBROADCASTSD alpha+8(FP), Y0
	MOVQ x+16(FP), SI
	MOVQ y+24(FP), DI
	MOVQ n+32(FP), CX
	XORQ AX, AX

faxpyto4:
	CMPQ CX, $4
	JLT  faxpyto1
	VMOVUPD (DI)(AX*8), Y1
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VMOVUPD Y1, (DX)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  faxpyto4

faxpyto1:
	TESTQ CX, CX
	JEQ   faxpytodone
	VMOVSD (DI)(AX*8), X1
	VFMADD231SD (SI)(AX*8), X0, X1
	VMOVSD X1, (DX)(AX*8)
	INCQ AX
	DECQ CX
	JMP  faxpyto1

faxpytodone:
	VZEROUPPER
	RET

// func scaleToAVX2(dst *float64, alpha float64, x *float64, n int)
TEXT ·scaleToAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DX
	VBROADCASTSD alpha+8(FP), Y0
	MOVQ x+16(FP), SI
	MOVQ n+24(FP), CX
	XORQ AX, AX

scaleto4:
	CMPQ CX, $4
	JLT  scaleto1
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD Y1, (DX)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  scaleto4

scaleto1:
	TESTQ CX, CX
	JEQ   scaletodone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (DX)(AX*8)
	INCQ AX
	DECQ CX
	JMP  scaleto1

scaletodone:
	VZEROUPPER
	RET

// func addAVX2(dst, x *float64, n int)
TEXT ·addAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX

add4:
	CMPQ CX, $4
	JLT  add1
	VMOVUPD (DI)(AX*8), Y1
	VADDPD  (SI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  add4

add1:
	TESTQ CX, CX
	JEQ   adddone
	VMOVSD (DI)(AX*8), X1
	VADDSD (SI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	DECQ CX
	JMP  add1

adddone:
	VZEROUPPER
	RET

// func scaleAVX2(alpha float64, x *float64, n int)
TEXT ·scaleAVX2(SB), NOSPLIT, $0-24
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX

scale4:
	CMPQ CX, $4
	JLT  scale1
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD Y1, (SI)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  scale4

scale1:
	TESTQ CX, CX
	JEQ   scaledone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (SI)(AX*8)
	INCQ AX
	DECQ CX
	JMP  scale1

scaledone:
	VZEROUPPER
	RET

// func dotAVX2(x, y *float64, n int) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	VXORPD Y1, Y1, Y1 // lane j accumulates the generic partial s_j

dot4:
	CMPQ CX, $4
	JLT  dotreduce
	VMOVUPD (SI)(AX*8), Y2
	VMULPD  (DI)(AX*8), Y2, Y2
	VADDPD  Y2, Y1, Y1
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  dot4

dotreduce:
	// s = ((s0+s1)+s2)+s3, the generic reduction order.
	VEXTRACTF128 $1, Y1, X2 // X2 = (s2, s3)
	VPERMILPD $1, X1, X3    // X3 low = s1
	VADDSD X3, X1, X1       // s0+s1
	VADDSD X2, X1, X1       // +s2
	VPERMILPD $1, X2, X2    // low = s3
	VADDSD X2, X1, X1       // +s3

dot1:
	TESTQ CX, CX
	JEQ   dotdone
	VMOVSD (SI)(AX*8), X2
	VMULSD (DI)(AX*8), X2, X2
	VADDSD X2, X1, X1
	INCQ AX
	DECQ CX
	JMP  dot1

dotdone:
	VMOVSD X1, ret+24(FP)
	VZEROUPPER
	RET

// func dotFMA(x, y *float64, n int) float64
TEXT ·dotFMA(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	VXORPD Y1, Y1, Y1

fdot4:
	CMPQ CX, $4
	JLT  fdotreduce
	VMOVUPD (SI)(AX*8), Y2
	VFMADD231PD (DI)(AX*8), Y2, Y1
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  fdot4

fdotreduce:
	VEXTRACTF128 $1, Y1, X2
	VPERMILPD $1, X1, X3
	VADDSD X3, X1, X1
	VADDSD X2, X1, X1
	VPERMILPD $1, X2, X2
	VADDSD X2, X1, X1

fdot1:
	TESTQ CX, CX
	JEQ   fdotdone
	VMOVSD (SI)(AX*8), X2
	VFMADD231SD (DI)(AX*8), X2, X1
	INCQ AX
	DECQ CX
	JMP  fdot1

fdotdone:
	VMOVSD X1, ret+24(FP)
	VZEROUPPER
	RET

// func axpy2AVX2(a0 float64, x0 *float64, a1 float64, x1 *float64, y *float64, n int)
//
// The register-tiled dual-source kernel: the accumulator tile stays in
// YMM registers across both multiply-adds, halving accumulator traffic
// versus two Axpy passes while rounding identically (mul then add, source
// 0 first).
TEXT ·axpy2AVX2(SB), NOSPLIT, $0-48
	VBROADCASTSD a0+0(FP), Y14
	MOVQ x0+8(FP), SI
	VBROADCASTSD a1+16(FP), Y15
	MOVQ x1+24(FP), DX
	MOVQ y+32(FP), DI
	MOVQ n+40(FP), CX
	XORQ AX, AX

a2loop8:
	CMPQ CX, $8
	JLT  a2loop4
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD 32(DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y3
	VMOVUPD 32(SI)(AX*8), Y4
	VMULPD  Y14, Y3, Y3
	VMULPD  Y14, Y4, Y4
	VADDPD  Y3, Y1, Y1
	VADDPD  Y4, Y2, Y2
	VMOVUPD (DX)(AX*8), Y3
	VMOVUPD 32(DX)(AX*8), Y4
	VMULPD  Y15, Y3, Y3
	VMULPD  Y15, Y4, Y4
	VADDPD  Y3, Y1, Y1
	VADDPD  Y4, Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  a2loop8

a2loop4:
	CMPQ CX, $4
	JLT  a2loop1
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y3
	VMULPD  Y14, Y3, Y3
	VADDPD  Y3, Y1, Y1
	VMOVUPD (DX)(AX*8), Y3
	VMULPD  Y15, Y3, Y3
	VADDPD  Y3, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX

a2loop1:
	TESTQ CX, CX
	JEQ   a2done
	VMOVSD (DI)(AX*8), X1
	VMOVSD (SI)(AX*8), X3
	VMULSD X14, X3, X3
	VADDSD X3, X1, X1
	VMOVSD (DX)(AX*8), X3
	VMULSD X15, X3, X3
	VADDSD X3, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	DECQ CX
	JMP  a2loop1

a2done:
	VZEROUPPER
	RET

// func axpy2FMA(a0 float64, x0 *float64, a1 float64, x1 *float64, y *float64, n int)
TEXT ·axpy2FMA(SB), NOSPLIT, $0-48
	VBROADCASTSD a0+0(FP), Y14
	MOVQ x0+8(FP), SI
	VBROADCASTSD a1+16(FP), Y15
	MOVQ x1+24(FP), DX
	MOVQ y+32(FP), DI
	MOVQ n+40(FP), CX
	XORQ AX, AX

fa2loop8:
	CMPQ CX, $8
	JLT  fa2loop4
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD 32(DI)(AX*8), Y2
	VFMADD231PD (SI)(AX*8), Y14, Y1
	VFMADD231PD 32(SI)(AX*8), Y14, Y2
	VFMADD231PD (DX)(AX*8), Y15, Y1
	VFMADD231PD 32(DX)(AX*8), Y15, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  fa2loop8

fa2loop4:
	CMPQ CX, $4
	JLT  fa2loop1
	VMOVUPD (DI)(AX*8), Y1
	VFMADD231PD (SI)(AX*8), Y14, Y1
	VFMADD231PD (DX)(AX*8), Y15, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX

fa2loop1:
	TESTQ CX, CX
	JEQ   fa2done
	VMOVSD (DI)(AX*8), X1
	VFMADD231SD (SI)(AX*8), X14, X1
	VFMADD231SD (DX)(AX*8), X15, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	DECQ CX
	JMP  fa2loop1

fa2done:
	VZEROUPPER
	RET

// func axpyQuadAVX2(x *float64, a0 float64, y0 *float64, a1 float64, y1 *float64, a2 float64, y2 *float64, a3 float64, y3 *float64, n int)
//
// The multi-row tiled kernel: each x tile is loaded once and spread to four
// destination rows while in registers, cutting source bandwidth 4x versus
// four Axpy passes while rounding identically.
TEXT ·axpyQuadAVX2(SB), NOSPLIT, $0-80
	MOVQ x+0(FP), SI
	VBROADCASTSD a0+8(FP), Y12
	MOVQ y0+16(FP), R8
	VBROADCASTSD a1+24(FP), Y13
	MOVQ y1+32(FP), R9
	VBROADCASTSD a2+40(FP), Y14
	MOVQ y2+48(FP), R10
	VBROADCASTSD a3+56(FP), Y15
	MOVQ y3+64(FP), R11
	MOVQ n+72(FP), CX
	XORQ AX, AX

quad4:
	CMPQ CX, $4
	JLT  quad1
	VMOVUPD (SI)(AX*8), Y0
	VMULPD  Y12, Y0, Y2
	VADDPD  (R8)(AX*8), Y2, Y2
	VMOVUPD Y2, (R8)(AX*8)
	VMULPD  Y13, Y0, Y2
	VADDPD  (R9)(AX*8), Y2, Y2
	VMOVUPD Y2, (R9)(AX*8)
	VMULPD  Y14, Y0, Y2
	VADDPD  (R10)(AX*8), Y2, Y2
	VMOVUPD Y2, (R10)(AX*8)
	VMULPD  Y15, Y0, Y2
	VADDPD  (R11)(AX*8), Y2, Y2
	VMOVUPD Y2, (R11)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  quad4

quad1:
	TESTQ CX, CX
	JEQ   quaddone
	VMOVSD (SI)(AX*8), X0
	VMULSD X12, X0, X2
	VADDSD (R8)(AX*8), X2, X2
	VMOVSD X2, (R8)(AX*8)
	VMULSD X13, X0, X2
	VADDSD (R9)(AX*8), X2, X2
	VMOVSD X2, (R9)(AX*8)
	VMULSD X14, X0, X2
	VADDSD (R10)(AX*8), X2, X2
	VMOVSD X2, (R10)(AX*8)
	VMULSD X15, X0, X2
	VADDSD (R11)(AX*8), X2, X2
	VMOVSD X2, (R11)(AX*8)
	INCQ AX
	DECQ CX
	JMP  quad1

quaddone:
	VZEROUPPER
	RET

// func axpyQuadFMA(x *float64, a0 float64, y0 *float64, a1 float64, y1 *float64, a2 float64, y2 *float64, a3 float64, y3 *float64, n int)
TEXT ·axpyQuadFMA(SB), NOSPLIT, $0-80
	MOVQ x+0(FP), SI
	VBROADCASTSD a0+8(FP), Y12
	MOVQ y0+16(FP), R8
	VBROADCASTSD a1+24(FP), Y13
	MOVQ y1+32(FP), R9
	VBROADCASTSD a2+40(FP), Y14
	MOVQ y2+48(FP), R10
	VBROADCASTSD a3+56(FP), Y15
	MOVQ y3+64(FP), R11
	MOVQ n+72(FP), CX
	XORQ AX, AX

fquad4:
	CMPQ CX, $4
	JLT  fquad1
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD (R8)(AX*8), Y2
	VFMADD231PD Y0, Y12, Y2
	VMOVUPD Y2, (R8)(AX*8)
	VMOVUPD (R9)(AX*8), Y2
	VFMADD231PD Y0, Y13, Y2
	VMOVUPD Y2, (R9)(AX*8)
	VMOVUPD (R10)(AX*8), Y2
	VFMADD231PD Y0, Y14, Y2
	VMOVUPD Y2, (R10)(AX*8)
	VMOVUPD (R11)(AX*8), Y2
	VFMADD231PD Y0, Y15, Y2
	VMOVUPD Y2, (R11)(AX*8)
	ADDQ $4, AX
	SUBQ $4, CX
	JMP  fquad4

fquad1:
	TESTQ CX, CX
	JEQ   fquaddone
	VMOVSD (SI)(AX*8), X0
	VMOVSD (R8)(AX*8), X2
	VFMADD231SD X0, X12, X2
	VMOVSD X2, (R8)(AX*8)
	VMOVSD (R9)(AX*8), X2
	VFMADD231SD X0, X13, X2
	VMOVSD X2, (R9)(AX*8)
	VMOVSD (R10)(AX*8), X2
	VFMADD231SD X0, X14, X2
	VMOVSD X2, (R10)(AX*8)
	VMOVSD (R11)(AX*8), X2
	VFMADD231SD X0, X15, X2
	VMOVSD X2, (R11)(AX*8)
	INCQ AX
	DECQ CX
	JMP  fquad1

fquaddone:
	VZEROUPPER
	RET
