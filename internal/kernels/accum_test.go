package kernels

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

// The accumulator must reproduce the naive "dense C += alpha * x per row"
// result for arbitrary touch orders, including repeated rows.
func TestRowAccumulatorMatchesDense(t *testing.T) {
	const rows, k = 37, 9
	rng := rand.New(rand.NewPCG(11, 12))
	var acc RowAccumulator
	for trial := 0; trial < 20; trial++ {
		want := make([]float64, rows*k)
		acc.Begin(rows, k)
		n := rng.IntN(200)
		for i := 0; i < n; i++ {
			row := int32(rng.IntN(rows))
			alpha := 2*rng.Float64() - 1
			x := randSlice(k, rng)
			for j := 0; j < k; j++ {
				want[int(row)*k+j] += alpha * x[j]
			}
			acc.Accumulate(row, alpha, x)
		}
		got := make([]float64, rows*k)
		touched := acc.Touched()
		seen := map[int32]bool{}
		for i, row := range touched {
			if seen[row] {
				t.Fatalf("trial %d: row %d flushed twice", trial, row)
			}
			seen[row] = true
			copy(got[int(row)*k:(int(row)+1)*k], acc.Vals(i))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: element %d: %v != %v", trial, i, got[i], want[i])
			}
		}
		// Untouched rows must not appear.
		for row := range seen {
			var any bool
			for j := 0; j < k; j++ {
				if want[int(row)*k+j] != 0 {
					any = true
				}
			}
			if !any && len(touched) > n {
				t.Fatalf("trial %d: spurious touched row %d", trial, row)
			}
		}
	}
}

// Reuse across Begin calls must not leak prior epochs' state, including when
// the dense width changes.
func TestRowAccumulatorReuse(t *testing.T) {
	var acc RowAccumulator
	acc.Begin(8, 4)
	acc.Accumulate(3, 2, []float64{1, 1, 1, 1})
	acc.Begin(8, 2)
	acc.Accumulate(3, 1, []float64{5, 7})
	if got := acc.Touched(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("touched = %v", got)
	}
	if v := acc.Vals(0); v[0] != 5 || v[1] != 7 {
		t.Fatalf("vals = %v (prior epoch leaked)", v)
	}
	acc.Begin(16, 3) // grow the row space
	acc.Accumulate(15, 1, []float64{1, 2, 3})
	if v := acc.Vals(0); v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("vals after grow = %v", v)
	}
}

func TestRowAccumulatorEpochWraparound(t *testing.T) {
	var acc RowAccumulator
	acc.Begin(4, 1)
	acc.Accumulate(2, 1, []float64{9})
	acc.epoch = math.MaxUint32 // force the next Begin to wrap
	acc.Begin(4, 1)
	if len(acc.Touched()) != 0 {
		t.Fatal("wrapped epoch must start empty")
	}
	acc.Accumulate(2, 1, []float64{4})
	if v := acc.Vals(0); v[0] != 4 {
		t.Fatalf("vals after wraparound = %v (stale stamp matched)", v)
	}
}

// Independent accumulators flushing concurrently into one shared output must
// be race-free and sum correctly — the async-stripe flush pattern, run under
// -race by scripts/check.sh.
func TestRowAccumulatorConcurrentFlush(t *testing.T) {
	const rows, k, workers, stripes = 16, 8, 8, 40
	shared := make([]float64, rows*k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var acc RowAccumulator
			x := make([]float64, k)
			for i := range x {
				x[i] = 1
			}
			for s := 0; s < stripes; s++ {
				acc.Begin(rows, k)
				for row := int32(0); row < rows; row++ {
					acc.Accumulate(row, 1, x)
					acc.Accumulate(row, 1, x)
				}
				mu.Lock()
				for i, row := range acc.Touched() {
					Add(shared[int(row)*k:(int(row)+1)*k], acc.Vals(i))
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	want := float64(2 * workers * stripes)
	for i, v := range shared {
		if v != want {
			t.Fatalf("shared[%d] = %v, want %v", i, v, want)
		}
	}
}

// BenchmarkRowAccumulator measures the steady-state accumulate path; after
// warm-up it must not allocate.
func BenchmarkRowAccumulator(b *testing.B) {
	for _, k := range []int{32, 128, 512} {
		b.Run(sizeName(k), func(b *testing.B) {
			const rows = 256
			rng := rand.New(rand.NewPCG(21, 22))
			x := randSlice(k, rng)
			var acc RowAccumulator
			acc.Begin(rows, k) // warm up the buffers
			for r := int32(0); r < rows; r++ {
				acc.Accumulate(r, 1, x)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Begin(rows, k)
				for r := int32(0); r < rows; r++ {
					acc.Accumulate(r, 0.5, x)
					acc.Accumulate(r, 0.5, x)
				}
			}
		})
	}
}
