//go:build !amd64 && !arm64

package kernels

// No assembly kernels on this architecture; dispatch always binds the
// generic implementation.

func archImpl(allowFMA bool) *impl { return nil }

func archImpls() []*impl { return nil }
