package model

import (
	"fmt"
	"math"
)

// Linear-regression calibration (paper section 6.2): the six coefficients
// are fit from a small number of profiled SpMM runs with varying stripe
// widths and forced sync/async splits. Each of the three cost equations is
// a two-parameter linear model, fit by ordinary least squares.

// Sample is one profiled run of the Two-Face executor on a calibration
// workload: the observed per-node times together with the model features
// that explain them.
type Sample struct {
	W int32 // stripe width
	K int   // dense columns

	SyncStripes  int64 // S_S
	AsyncStripes int64 // S_A
	AsyncRows    int64 // L_A: dense rows fetched one-sidedly
	AsyncNNZ     int64 // N_A: nonzeros in async stripes

	CommS float64 // observed synchronous communication seconds
	CommA float64 // observed asynchronous communication seconds
	CompA float64 // observed asynchronous computation seconds
}

// Diagnostics reports the quality of a calibration fit: the coefficient of
// determination (R-squared) of each of the three regressions. Values near 1
// mean the two-parameter linear model explains the observations; the gap
// below 1 is the unmodeled machine behaviour (multicast fan-out, coalescing)
// that the paper's section 7.4 sensitivity study probes.
type Diagnostics struct {
	R2CommS float64
	R2CommA float64
	R2CompA float64
}

// CalibrateWithDiagnostics is Calibrate plus per-equation fit quality.
func CalibrateWithDiagnostics(samples []Sample) (Coefficients, Diagnostics, error) {
	c, err := Calibrate(samples)
	if err != nil {
		return c, Diagnostics{}, err
	}
	var d Diagnostics
	commS := func(s Sample) float64 {
		return c.BetaS*float64(s.SyncStripes)*float64(s.W)*float64(s.K) + c.AlphaS*float64(s.SyncStripes)
	}
	commA := func(s Sample) float64 {
		return c.BetaA*float64(s.K)*float64(s.AsyncRows) + c.AlphaA*float64(s.AsyncStripes)
	}
	compA := func(s Sample) float64 {
		return c.GammaA*float64(s.K)*float64(s.AsyncNNZ) + c.KappaA*float64(s.AsyncStripes)
	}
	d.R2CommS = rSquared(samples, commS, func(s Sample) float64 { return s.CommS })
	d.R2CommA = rSquared(samples, commA, func(s Sample) float64 { return s.CommA })
	d.R2CompA = rSquared(samples, compA, func(s Sample) float64 { return s.CompA })
	return c, d, nil
}

// rSquared computes 1 - SS_res/SS_tot for predictions over the samples.
func rSquared(samples []Sample, predict, observe func(Sample) float64) float64 {
	var mean float64
	for _, s := range samples {
		mean += observe(s)
	}
	mean /= float64(len(samples))
	var ssRes, ssTot float64
	for _, s := range samples {
		y := observe(s)
		e := y - predict(s)
		ssRes += e * e
		ssTot += (y - mean) * (y - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Calibrate fits Coefficients to the samples by three independent
// least-squares regressions:
//
//	CommS ~ BetaS*(S_S*W*K) + AlphaS*S_S
//	CommA ~ BetaA*(K*L_A)   + AlphaA*S_A
//	CompA ~ GammaA*(K*N_A)  + KappaA*S_A
//
// At least two samples with linearly independent features are required per
// equation. Fitted coefficients are clamped to a small positive floor: the
// true values are positive, and a noisy fit that crossed zero would break
// the classifier.
func Calibrate(samples []Sample) (Coefficients, error) {
	if len(samples) < 2 {
		return Coefficients{}, fmt.Errorf("model: calibration needs >= 2 samples, got %d", len(samples))
	}
	xs, xa, xc := make([][]float64, len(samples)), make([][]float64, len(samples)), make([][]float64, len(samples))
	ys, ya, yc := make([]float64, len(samples)), make([]float64, len(samples)), make([]float64, len(samples))
	for i, s := range samples {
		wk := float64(s.W) * float64(s.K)
		xs[i] = []float64{float64(s.SyncStripes) * wk, float64(s.SyncStripes)}
		ys[i] = s.CommS
		xa[i] = []float64{float64(s.K) * float64(s.AsyncRows), float64(s.AsyncStripes)}
		ya[i] = s.CommA
		xc[i] = []float64{float64(s.K) * float64(s.AsyncNNZ), float64(s.AsyncStripes)}
		yc[i] = s.CompA
	}
	bs, err := FitLeastSquares(xs, ys)
	if err != nil {
		return Coefficients{}, fmt.Errorf("model: fitting CommS: %w", err)
	}
	ba, err := FitLeastSquares(xa, ya)
	if err != nil {
		return Coefficients{}, fmt.Errorf("model: fitting CommA: %w", err)
	}
	bc, err := FitLeastSquares(xc, yc)
	if err != nil {
		return Coefficients{}, fmt.Errorf("model: fitting CompA: %w", err)
	}
	c := Coefficients{
		BetaS: floor(bs[0]), AlphaS: floor(bs[1]),
		BetaA: floor(ba[0]), AlphaA: floor(ba[1]),
		GammaA: floor(bc[0]), KappaA: floor(bc[1]),
	}
	return c, nil
}

// floor clamps fitted coefficients away from zero and below.
func floor(v float64) float64 {
	const eps = 1e-12
	if v < eps || math.IsNaN(v) {
		return eps
	}
	return v
}

// FitLeastSquares solves the ordinary least-squares problem
// min_b ||X*b - y||^2 via the normal equations X'X b = X'y, using Gaussian
// elimination with partial pivoting. X is row-major: x[i] is one
// observation's feature vector. All rows must have equal length d >= 1, and
// len(x) == len(y) >= d.
func FitLeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("model: need matching non-empty X (%d rows) and y (%d)", n, len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, fmt.Errorf("model: empty feature vectors")
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("model: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if n < d {
		return nil, fmt.Errorf("model: underdetermined system: %d observations for %d features", n, d)
	}
	// Build the d x d normal matrix and d-vector.
	ata := make([][]float64, d)
	aty := make([]float64, d)
	for i := 0; i < d; i++ {
		ata[i] = make([]float64, d)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < d; i++ {
			aty[i] += x[r][i] * y[r]
			for j := i; j < d; j++ {
				ata[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	for i := 1; i < d; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	b, err := solveGaussian(ata, aty)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// solveGaussian solves the square system A x = b in place with partial
// pivoting. It reports singular systems.
func solveGaussian(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("model: singular normal matrix (collinear calibration features)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
