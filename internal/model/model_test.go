package model

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPaperDefaultsValid(t *testing.T) {
	c := PaperDefaults()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.BetaA/c.BetaS < 18 || c.BetaA/c.BetaS > 19 {
		t.Fatalf("BetaA/BetaS = %.2f, paper says ~18.5", c.BetaA/c.BetaS)
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	c := PaperDefaults()
	c.GammaA = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero coefficient should fail")
	}
}

func TestZScoreComposition(t *testing.T) {
	c := PaperDefaults()
	s := StripeInfo{NNZ: 100, RowsNeeded: 40}
	w, k := int32(256), 32
	want := float64(k)*(c.BetaA*40+c.GammaA*100) + c.AlphaA + c.KappaA + c.BetaS*float64(w)*float64(k) + c.AlphaS
	if got := c.ZScore(s, w, k); math.Abs(got-want) > 1e-18 {
		t.Fatalf("ZScore = %v, want %v", got, want)
	}
}

func TestClassifyEmpty(t *testing.T) {
	d := Classify(nil, 128, 32, PaperDefaults())
	if d.NumAsync != 0 || d.NumSync != 0 || len(d.Async) != 0 {
		t.Fatalf("empty classify = %+v", d)
	}
}

func TestClassifyPrefersCheapStripes(t *testing.T) {
	c := PaperDefaults()
	// One stripe needing almost nothing, one needing everything.
	// Wide stripes make each collective expensive, so the nearly-empty
	// stripe comfortably fits the async budget while the dense one does not.
	stripes := []StripeInfo{
		{NNZ: 100000, RowsNeeded: 128},
		{NNZ: 2, RowsNeeded: 2},
	}
	d := Classify(stripes, 8192, 128, c)
	if !d.Async[1] {
		t.Fatal("cheap stripe should be classified async")
	}
	if d.Async[0] && !d.Async[1] {
		t.Fatal("expensive stripe flipped before cheap one")
	}
}

func TestClassifyBudgetInvariant(t *testing.T) {
	// Property: SpentZ never exceeds Budget, counts are consistent, and the
	// flipped set is a prefix of the z-ascending order (no flipped stripe
	// has higher z than an unflipped one... except by the budget cutoff).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := rng.IntN(60)
		stripes := make([]StripeInfo, n)
		for i := range stripes {
			stripes[i] = StripeInfo{NNZ: int64(rng.IntN(10000)), RowsNeeded: int64(rng.IntN(512))}
		}
		c := PaperDefaults()
		w := int32(64 << rng.IntN(4))
		k := 32 << rng.IntN(3)
		d := Classify(stripes, w, k, c)
		if d.NumAsync+d.NumSync != n {
			return false
		}
		if d.SpentZ > d.Budget+1e-12 {
			return false
		}
		// Prefix property: max z among async <= min z among sync, up to ties.
		maxAsync, minSync := math.Inf(-1), math.Inf(1)
		for i, s := range stripes {
			z := c.ZScore(s, w, k)
			if d.Async[i] && z > maxAsync {
				maxAsync = z
			}
			if !d.Async[i] && z < minSync {
				minSync = z
			}
		}
		return d.NumAsync == 0 || d.NumSync == 0 || maxAsync <= minSync+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyMaximality(t *testing.T) {
	// The classifier must take as many stripes as the budget allows: adding
	// the next cheapest sync stripe would exceed the budget.
	rng := rand.New(rand.NewPCG(7, 7))
	stripes := make([]StripeInfo, 40)
	for i := range stripes {
		stripes[i] = StripeInfo{NNZ: int64(rng.IntN(5000)), RowsNeeded: int64(rng.IntN(256))}
	}
	c := PaperDefaults()
	d := Classify(stripes, 128, 128, c)
	if d.NumSync == 0 {
		return // everything fit; nothing to check
	}
	minSyncZ := math.Inf(1)
	for i, s := range stripes {
		if !d.Async[i] {
			if z := c.ZScore(s, 128, 128); z < minSyncZ {
				minSyncZ = z
			}
		}
	}
	if d.SpentZ+minSyncZ <= d.Budget {
		t.Fatalf("classifier left budget on the table: spent %v + next %v <= budget %v", d.SpentZ, minSyncZ, d.Budget)
	}
}

func TestClassifyBalancesHalves(t *testing.T) {
	// With many similar stripes, the model's predicted async half should be
	// within one stripe's cost of the sync half (approximate equalization,
	// section 4.2).
	stripes := make([]StripeInfo, 200)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := range stripes {
		// Light stripes: heavy ones individually exceed the sync budget and
		// the classifier correctly keeps everything synchronous.
		stripes[i] = StripeInfo{NNZ: 5 + int64(rng.IntN(10)), RowsNeeded: 3 + int64(rng.IntN(8))}
	}
	c := PaperDefaults()
	w, k := int32(128), 128
	d := Classify(stripes, w, k, c)
	if d.NumAsync == 0 || d.NumSync == 0 {
		t.Fatalf("degenerate classification: %d async, %d sync", d.NumAsync, d.NumSync)
	}
	commS, commA, compA := PredictedTimes(stripes, d, w, k, c)
	asyncHalf := commA + compA
	// The paper's equalization target: CommS ~ CommA + CompA. Classify
	// balances Budget (= S_T * syncStripeCost) against z-sums, which is the
	// same equation rearranged; allow one stripe of slack either way.
	slack := c.ZScore(stripes[0], w, k) + c.SyncStripeCost(w, k)
	if math.Abs(commS-asyncHalf) > slack {
		t.Fatalf("halves unbalanced: CommS=%v async=%v slack=%v", commS, asyncHalf, slack)
	}
}

func TestApplyMemoryCap(t *testing.T) {
	stripes := make([]StripeInfo, 10)
	for i := range stripes {
		stripes[i] = StripeInfo{NNZ: 1 << 20, RowsNeeded: 512} // huge: all stay sync
	}
	c := PaperDefaults()
	w, k := int32(128), 128
	d := Classify(stripes, w, k, c)
	if d.NumSync != 10 {
		t.Fatalf("setup: want all sync, got %d async", d.NumAsync)
	}
	// Budget for only 3 sync stripes.
	budget := int64(3) * int64(w) * int64(k)
	flipped := ApplyMemoryCap(&d, stripes, w, k, c, budget)
	if flipped != 7 || d.NumSync != 3 || d.NumAsync != 7 {
		t.Fatalf("memory cap: flipped %d, sync %d, async %d", flipped, d.NumSync, d.NumAsync)
	}
	// No-op when already within budget.
	if again := ApplyMemoryCap(&d, stripes, w, k, c, budget); again != 0 {
		t.Fatalf("second cap flipped %d more", again)
	}
}

func TestApplyMemoryCapFlipsExpensiveFirst(t *testing.T) {
	stripes := []StripeInfo{
		{NNZ: 1 << 30, RowsNeeded: 4096}, // most expensive z
		{NNZ: 1 << 20, RowsNeeded: 512},
		{NNZ: 1 << 25, RowsNeeded: 2048},
	}
	c := PaperDefaults()
	w, k := int32(128), 128
	d := Decision{Async: make([]bool, 3), NumSync: 3}
	ApplyMemoryCap(&d, stripes, w, k, c, int64(2)*int64(w)*int64(k))
	if !d.Async[0] {
		t.Fatal("highest-z stripe should be flipped first")
	}
	if d.Async[1] {
		t.Fatal("cheapest stripe should remain sync")
	}
}

func TestPredictedTimes(t *testing.T) {
	c := PaperDefaults()
	stripes := []StripeInfo{{NNZ: 10, RowsNeeded: 5}, {NNZ: 20, RowsNeeded: 8}}
	d := Decision{Async: []bool{true, false}, NumAsync: 1, NumSync: 1}
	commS, commA, compA := PredictedTimes(stripes, d, 64, 32, c)
	if commS != c.SyncStripeCost(64, 32) {
		t.Fatalf("commS = %v", commS)
	}
	wantCommA := c.BetaA*32*5 + c.AlphaA
	wantCompA := c.GammaA*32*10 + c.KappaA
	if math.Abs(commA-wantCommA) > 1e-18 || math.Abs(compA-wantCompA) > 1e-18 {
		t.Fatalf("commA=%v compA=%v want %v %v", commA, compA, wantCommA, wantCompA)
	}
}

func TestZScoreBatchedAmortizesAlphaA(t *testing.T) {
	c := PaperDefaults()
	s := StripeInfo{NNZ: 50, RowsNeeded: 20}
	if got, want := c.ZScoreBatched(s, 64, 128, 1), c.ZScore(s, 64, 128); got != want {
		t.Fatalf("batch=1 z = %v, want ZScore %v", got, want)
	}
	// batch < 1 clamps to 1 rather than inflating the overhead.
	if got, want := c.ZScoreBatched(s, 64, 128, 0.25), c.ZScore(s, 64, 128); got != want {
		t.Fatalf("batch<1 z = %v, want clamp to ZScore %v", got, want)
	}
	z1 := c.ZScore(s, 64, 128)
	z4 := c.ZScoreBatched(s, 64, 128, 4)
	if want := z1 - c.AlphaA*3/4; z4 >= z1 || z4 < want-1e-18 || z4 > want+1e-18 {
		t.Fatalf("batch=4 z = %v, want %v (AlphaA amortized 4x)", z4, want)
	}
}

func TestClassifyBatchedMonotoneInBatch(t *testing.T) {
	c := PaperDefaults()
	stripes := make([]StripeInfo, 40)
	for i := range stripes {
		stripes[i] = StripeInfo{NNZ: int64(10 + i*17%50), RowsNeeded: int64(5 + i*13%40)}
	}
	base := Classify(stripes, 64, 128, c)
	if d1 := ClassifyBatched(stripes, 64, 128, c, 1); d1.NumAsync != base.NumAsync {
		t.Fatalf("batch=1 NumAsync = %d, want Classify's %d", d1.NumAsync, base.NumAsync)
	}
	prev := base.NumAsync
	for _, batch := range []float64{2, 4, 8, 16} {
		d := ClassifyBatched(stripes, 64, 128, c, batch)
		if d.NumAsync < prev {
			t.Fatalf("batch=%v NumAsync = %d dropped below %d: cheaper async stripes must not reduce the async count", batch, d.NumAsync, prev)
		}
		prev = d.NumAsync
	}
}
