package model

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFitLeastSquaresExact(t *testing.T) {
	// y = 2*x0 + 3*x1, no noise.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 5}}
	y := []float64{2, 3, 5, 19}
	b, err := FitLeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-2) > 1e-9 || math.Abs(b[1]-3) > 1e-9 {
		t.Fatalf("fit = %v, want [2 3]", b)
	}
}

func TestFitLeastSquaresOverdeterminedNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 4*a-1.5*b+(rng.Float64()-0.5)*0.01)
	}
	coef, err := FitLeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-4) > 0.01 || math.Abs(coef[1]+1.5) > 0.01 {
		t.Fatalf("noisy fit = %v, want ~[4 -1.5]", coef)
	}
}

func TestFitLeastSquaresErrors(t *testing.T) {
	if _, err := FitLeastSquares(nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := FitLeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := FitLeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("empty features should fail")
	}
	if _, err := FitLeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("underdetermined should fail")
	}
	if _, err := FitLeastSquares([][]float64{{1, 2}, {1, 3}, {1}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("ragged rows should fail")
	}
	// Collinear features -> singular normal matrix.
	if _, err := FitLeastSquares([][]float64{{1, 2}, {2, 4}, {3, 6}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("collinear features should fail")
	}
}

func TestFitRecoversRandomModels(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		d := 1 + rng.IntN(4)
		truth := make([]float64, d)
		for i := range truth {
			truth[i] = rng.Float64()*4 - 2
		}
		n := d + 5 + rng.IntN(20)
		x := make([][]float64, n)
		y := make([]float64, n)
		for r := 0; r < n; r++ {
			x[r] = make([]float64, d)
			for i := 0; i < d; i++ {
				x[r][i] = rng.Float64()*10 - 5
			}
			for i := 0; i < d; i++ {
				y[r] += truth[i] * x[r][i]
			}
		}
		got, err := FitLeastSquares(x, y)
		if err != nil {
			return false
		}
		for i := range truth {
			if math.Abs(got[i]-truth[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRecoversCoefficients(t *testing.T) {
	// Generate samples from known coefficients and check Calibrate recovers
	// them — the same experiment the paper runs on twitter with nine
	// configurations.
	truth := PaperDefaults()
	rng := rand.New(rand.NewPCG(9, 9))
	var samples []Sample
	for _, w := range []int32{64, 128, 256} {
		for i := 0; i < 3; i++ {
			ss := int64(10 + rng.IntN(100))
			sa := int64(10 + rng.IntN(100))
			la := sa * int64(1+rng.IntN(200))
			na := sa * int64(1+rng.IntN(500))
			k := 32
			samples = append(samples, Sample{
				W: w, K: k,
				SyncStripes: ss, AsyncStripes: sa, AsyncRows: la, AsyncNNZ: na,
				CommS: truth.BetaS*float64(ss)*float64(w)*float64(k) + truth.AlphaS*float64(ss),
				CommA: truth.BetaA*float64(k)*float64(la) + truth.AlphaA*float64(sa),
				CompA: truth.GammaA*float64(k)*float64(na) + truth.KappaA*float64(sa),
			})
		}
	}
	got, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	rel := func(a, b float64) float64 { return math.Abs(a-b) / b }
	if rel(got.BetaS, truth.BetaS) > 1e-6 || rel(got.AlphaS, truth.AlphaS) > 1e-6 ||
		rel(got.BetaA, truth.BetaA) > 1e-6 || rel(got.AlphaA, truth.AlphaA) > 1e-6 ||
		rel(got.GammaA, truth.GammaA) > 1e-6 || rel(got.KappaA, truth.KappaA) > 1e-6 {
		t.Fatalf("calibration diverged:\n got  %+v\n want %+v", got, truth)
	}
}

func TestCalibrateTooFewSamples(t *testing.T) {
	if _, err := Calibrate([]Sample{{}}); err == nil {
		t.Fatal("one sample should fail")
	}
}

func TestCalibrateClampsNegativeFits(t *testing.T) {
	// Adversarial samples that would fit negative overheads still produce
	// positive (floored) coefficients.
	samples := []Sample{
		{W: 64, K: 32, SyncStripes: 10, AsyncStripes: 10, AsyncRows: 100, AsyncNNZ: 100, CommS: 1, CommA: 1, CompA: 1},
		{W: 128, K: 32, SyncStripes: 20, AsyncStripes: 20, AsyncRows: 50, AsyncNNZ: 50, CommS: 0.5, CommA: 2, CompA: 2},
		{W: 256, K: 32, SyncStripes: 5, AsyncStripes: 40, AsyncRows: 400, AsyncNNZ: 20, CommS: 2, CommA: 0.1, CompA: 0.1},
	}
	c, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("calibrated coefficients not positive: %v", err)
	}
}

func TestCalibrateWithDiagnosticsPerfectFit(t *testing.T) {
	truth := PaperDefaults()
	var samples []Sample
	for i := 1; i <= 8; i++ {
		ss, sa := int64(10*i), int64(5*i+i*i) // non-collinear features
		la, na := int64(100*i*i), int64(300*i+17*i*i)
		s := Sample{W: int32(64 * i), K: 32, SyncStripes: ss, AsyncStripes: sa, AsyncRows: la, AsyncNNZ: na}
		s.CommS = truth.BetaS*float64(ss)*float64(s.W)*32 + truth.AlphaS*float64(ss)
		s.CommA = truth.BetaA*32*float64(la) + truth.AlphaA*float64(sa)
		s.CompA = truth.GammaA*32*float64(na) + truth.KappaA*float64(sa)
		samples = append(samples, s)
	}
	_, diag, err := CalibrateWithDiagnostics(samples)
	if err != nil {
		t.Fatal(err)
	}
	if diag.R2CommS < 0.999 || diag.R2CommA < 0.999 || diag.R2CompA < 0.999 {
		t.Fatalf("perfect data should fit with R2~1: %+v", diag)
	}
}

func TestCalibrateWithDiagnosticsNoisyFit(t *testing.T) {
	// Observations with a deterministic unmodeled component must show
	// R2 < 1 but still fit.
	truth := PaperDefaults()
	var samples []Sample
	for i := 1; i <= 9; i++ {
		ss, sa := int64(7*i), int64(4*i+i*i) // non-collinear features
		la, na := int64(50*i*i), int64(200*i+11*i*i)
		s := Sample{W: int32(32 * i), K: 32, SyncStripes: ss, AsyncStripes: sa, AsyncRows: la, AsyncNNZ: na}
		bump := 1.0 + 0.3*float64(i%3) // unmodeled structure
		s.CommS = (truth.BetaS*float64(ss)*float64(s.W)*32 + truth.AlphaS*float64(ss)) * bump
		s.CommA = truth.BetaA*32*float64(la) + truth.AlphaA*float64(sa)
		s.CompA = truth.GammaA*32*float64(na) + truth.KappaA*float64(sa)
		samples = append(samples, s)
	}
	_, diag, err := CalibrateWithDiagnostics(samples)
	if err != nil {
		t.Fatal(err)
	}
	if diag.R2CommS >= 0.999 {
		t.Fatalf("unmodeled structure should depress R2, got %+v", diag)
	}
	if diag.R2CommA < 0.999 {
		t.Fatalf("clean equation should fit, got %+v", diag)
	}
}
