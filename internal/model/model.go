// Package model implements the paper's preprocessing execution model
// (section 4.2): the six-coefficient linear cost model, the stripe
// classifier that balances the synchronous and asynchronous halves of
// Two-Face, and the linear-regression calibration that fits the
// coefficients to a machine (section 6.2).
package model

import (
	"fmt"
	"sort"
)

// Coefficients are the preprocessing model's parameters. They describe what
// the classifier *believes* about the machine; the actual machine behaviour
// lives in the cluster package's NetModel. The paper calibrates them once
// per system by linear regression.
//
// Cost model (for one node):
//
//	CommS = S_S * (BetaS*W*K + AlphaS)
//	CommA = BetaA*K*L_A + AlphaA*S_A
//	CompA = GammaA*K*N_A + KappaA*S_A
//
// where S_S/S_A count the node's synchronous/asynchronous stripes, L_A the
// dense rows fetched one-sidedly, and N_A the nonzeros in async stripes.
type Coefficients struct {
	BetaS  float64 // collective transfer cost per element of B
	AlphaS float64 // per-stripe overhead of collective transfer
	BetaA  float64 // one-sided transfer cost per element of B
	AlphaA float64 // per-stripe overhead of one-sided transfer
	GammaA float64 // async compute cost per nonzero per dense column
	KappaA float64 // per-stripe overhead of async compute
}

// PaperDefaults returns the coefficients of the paper's Table 3, measured
// on NCSA Delta by linear regression.
func PaperDefaults() Coefficients {
	return Coefficients{
		BetaS:  1.95e-10,
		AlphaS: 1.36e-6,
		BetaA:  3.61e-9,
		AlphaA: 1.02e-5,
		GammaA: 2.07e-8,
		KappaA: 8.72e-9,
	}
}

// Scaled returns the coefficients for a 1/f-scale machine: per-stripe fixed
// overheads (AlphaS, AlphaA, KappaA) shrink by f while per-element and
// per-nonzero costs are unchanged. It mirrors cluster.NetModel.Scaled so a
// classifier calibrated for the scaled machine sees the paper's trade-offs.
func (c Coefficients) Scaled(f float64) Coefficients {
	if f <= 0 {
		panic("model: scale factor must be positive")
	}
	c.AlphaS /= f
	c.AlphaA /= f
	c.KappaA /= f
	return c
}

// Validate rejects non-positive transfer coefficients, which would make the
// classifier degenerate.
func (c Coefficients) Validate() error {
	if c.BetaS <= 0 || c.AlphaS <= 0 || c.BetaA <= 0 || c.AlphaA <= 0 || c.GammaA <= 0 || c.KappaA <= 0 {
		return fmt.Errorf("model: coefficients must be positive: %+v", c)
	}
	return nil
}

// StripeInfo summarizes one remote-input sparse stripe of a node for
// classification purposes.
type StripeInfo struct {
	NNZ        int64 // n_i: nonzeros in the stripe
	RowsNeeded int64 // l_i: distinct dense rows of B the stripe references
}

// ZScore returns z_i = K*(BetaA*l_i + GammaA*n_i) + u, the stripe's
// contribution to the asynchronous half if classified async, where
// u = AlphaA + KappaA + BetaS*W*K + AlphaS is the per-stripe constant
// (section 4.2).
func (c Coefficients) ZScore(s StripeInfo, w int32, k int) float64 {
	return c.ZScoreBatched(s, w, k, 1)
}

// ZScoreBatched is ZScore with the one-sided per-request overhead AlphaA
// amortized over an expected aggregation of `batch` stripes per get: the
// executor's owner-batched scheduler issues one request for a run of
// consecutive same-owner stripes, so each stripe carries only AlphaA/batch
// of request overhead. batch <= 1 reproduces ZScore (the seed per-stripe
// accounting).
func (c Coefficients) ZScoreBatched(s StripeInfo, w int32, k int, batch float64) float64 {
	return float64(k)*(c.BetaA*float64(s.RowsNeeded)+c.GammaA*float64(s.NNZ)) + c.perStripeConstant(w, k, batch)
}

func (c Coefficients) perStripeConstant(w int32, k int, batch float64) float64 {
	if batch < 1 {
		batch = 1
	}
	return c.AlphaA/batch + c.KappaA + c.BetaS*float64(w)*float64(k) + c.AlphaS
}

// SyncStripeCost returns the modeled collective cost of one synchronous
// stripe: BetaS*W*K + AlphaS.
func (c Coefficients) SyncStripeCost(w int32, k int) float64 {
	return c.BetaS*float64(w)*float64(k) + c.AlphaS
}

// Decision is the outcome of classifying one node's remote-input stripes.
type Decision struct {
	// Async[i] reports whether stripes[i] was classified asynchronous.
	Async []bool
	// NumAsync and NumSync count the two classes.
	NumAsync, NumSync int
	// Budget is S_T*(BetaS*W*K + AlphaS), the modeled synchronous cost if
	// every stripe were synchronous — the classifier flips stripes to async
	// while their cumulative z stays within it.
	Budget float64
	// SpentZ is the cumulative z of the stripes flipped to async.
	SpentZ float64
}

// Classify implements the paper's greedy balancing algorithm: start with all
// stripes synchronous, sort by ascending z, and flip stripes to asynchronous
// while the running z-sum stays within S_T*(BetaS*W*K + AlphaS). This
// maximizes the async count (minimizing the number of costly collectives)
// subject to the async half not becoming the bottleneck.
func Classify(stripes []StripeInfo, w int32, k int, c Coefficients) Decision {
	return ClassifyBatched(stripes, w, k, c, 1)
}

// ClassifyBatched is Classify with the per-stripe async cost amortized over
// an expected get-aggregation factor (see ZScoreBatched). A larger batch
// makes async stripes cheaper, so the greedy flip classifies at least as
// many stripes asynchronous as Classify does — the split point the paper
// derives for per-stripe requests shifts toward the one-sided half when
// requests are batched.
func ClassifyBatched(stripes []StripeInfo, w int32, k int, c Coefficients, batch float64) Decision {
	d := Decision{Async: make([]bool, len(stripes))}
	st := len(stripes)
	d.Budget = float64(st) * c.SyncStripeCost(w, k)

	order := make([]int, st)
	z := make([]float64, st)
	for i, s := range stripes {
		order[i] = i
		z[i] = c.ZScoreBatched(s, w, k, batch)
	}
	sort.Slice(order, func(a, b int) bool { return z[order[a]] < z[order[b]] })

	for _, idx := range order {
		if d.SpentZ+z[idx] > d.Budget {
			break
		}
		d.SpentZ += z[idx]
		d.Async[idx] = true
		d.NumAsync++
	}
	d.NumSync = st - d.NumAsync
	return d
}

// ApplyMemoryCap enforces the paper's section 6.3 override: if the chosen
// classification would require more receive-buffer memory than budgetElems
// float64 elements on this node, flip additional synchronous stripes to
// asynchronous (highest z first, so the cheapest collectives are kept) until
// the projected buffer fits. Each remote synchronous stripe buffers one
// dense stripe of W*K elements.
//
// It returns the number of stripes flipped.
func ApplyMemoryCap(d *Decision, stripes []StripeInfo, w int32, k int, c Coefficients, budgetElems int64) int {
	stripeElems := int64(w) * int64(k)
	if stripeElems <= 0 {
		return 0
	}
	needed := int64(d.NumSync) * stripeElems
	if needed <= budgetElems {
		return 0
	}
	// Flip sync stripes in descending z order.
	var syncIdx []int
	for i, a := range d.Async {
		if !a {
			syncIdx = append(syncIdx, i)
		}
	}
	sort.Slice(syncIdx, func(a, b int) bool {
		return c.ZScore(stripes[syncIdx[a]], w, k) > c.ZScore(stripes[syncIdx[b]], w, k)
	})
	flipped := 0
	for _, idx := range syncIdx {
		if int64(d.NumSync)*stripeElems <= budgetElems {
			break
		}
		d.Async[idx] = true
		d.NumAsync++
		d.NumSync--
		flipped++
	}
	return flipped
}

// PredictedTimes returns the model's expected (CommS, CommA, CompA) for a
// node given its classification, for diagnostics and tests of the balancing
// property.
func PredictedTimes(stripes []StripeInfo, d Decision, w int32, k int, c Coefficients) (commS, commA, compA float64) {
	for i, s := range stripes {
		if d.Async[i] {
			commA += c.BetaA*float64(k)*float64(s.RowsNeeded) + c.AlphaA
			compA += c.GammaA*float64(k)*float64(s.NNZ) + c.KappaA
		} else {
			commS += c.SyncStripeCost(w, k)
		}
	}
	return commS, commA, compA
}
