// Package baselines implements the SpMM algorithms the paper compares
// Two-Face against (Table 4):
//
//   - Dense Shifting DS(c): Bharadwaj et al.'s replicate-then-shift
//     algorithm, the paper's main baseline, with replication factor c.
//   - Allgather: full replication of the dense input with a collective.
//   - Async Coarse-Grained: each node one-sidedly fetches the whole dense
//     blocks it touches.
//   - Async Fine-Grained: Two-Face with every remote stripe forced
//     asynchronous (used in Figure 2's motivation study).
//
// All algorithms share the 1D partitioning of package core and run on the
// simulated cluster, so their outputs are bit-comparable with Two-Face and
// the sequential reference, and their virtual-time ledgers are directly
// comparable with Two-Face's.
package baselines

import (
	"errors"
	"fmt"
	"time"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

// ErrOutOfMemory reports that an algorithm's replication strategy exceeds
// the per-node memory budget — the condition that blanks out data points in
// the paper's figures (e.g. DS8 at K=512 for half the matrices, Allgather on
// kmer at K=128).
var ErrOutOfMemory = errors.New("baselines: replication exceeds per-node memory budget")

// Options configures a baseline run. Zero values take defaults.
type Options struct {
	// Threads is the modeled per-node compute thread count (Table 2's 128).
	Threads int
	// MemBudgetElems is the per-node buffer budget in float64 elements;
	// the default matches core.Params (48 Mi elements, the paper's 256 GiB
	// nodes at 1/512 scale).
	MemBudgetElems int64
	// Workers is the real goroutine count for local kernels. Default 4.
	Workers int
	// SkipCompute runs in timing-only mode: transfers and virtual-time
	// charges happen, arithmetic is skipped and C stays zero (see
	// core.ExecOptions.SkipCompute).
	SkipCompute bool
}

func (o Options) normalize() Options {
	if o.Threads == 0 {
		o.Threads = 128
	}
	if o.MemBudgetElems == 0 {
		o.MemBudgetElems = 48 << 20
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	return o
}

// nodeA is one node's slice of A, bucketed by the owner of each nonzero's
// column, with rows localized to the node and columns localized to the
// owning block. perBlock[j] multiplies against block j of B.
type nodeA struct {
	rows     int
	perBlock []*sparse.CSR
	blockNNZ []int64
}

// buildNodeA distributes A for the block algorithms.
func buildNodeA(a *sparse.COO, p int) ([]*nodeA, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	nodes := make([]*nodeA, p)
	rowBlocks := dense.Partition(int(a.NumRows), p)
	colBlocks := dense.Partition(int(a.NumCols), p)
	buckets := make([][]*sparse.COO, p)
	for i := 0; i < p; i++ {
		nodes[i] = &nodeA{rows: rowBlocks[i].Len(), blockNNZ: make([]int64, p)}
		buckets[i] = make([]*sparse.COO, p)
		for j := 0; j < p; j++ {
			buckets[i][j] = sparse.NewCOO(int32(rowBlocks[i].Len()), int32(colBlocks[j].Len()), 0)
		}
	}
	for _, e := range a.Entries {
		i := dense.OwnerOf(int(a.NumRows), p, int(e.Row))
		j := dense.OwnerOf(int(a.NumCols), p, int(e.Col))
		buckets[i][j].Append(e.Row-int32(rowBlocks[i].Lo), e.Col-int32(colBlocks[j].Lo), e.Val)
	}
	for i := 0; i < p; i++ {
		nodes[i].perBlock = make([]*sparse.CSR, p)
		for j := 0; j < p; j++ {
			nodes[i].perBlock[j] = buckets[i][j].ToCSR()
			nodes[i].blockNNZ[j] = int64(buckets[i][j].NNZ())
		}
	}
	return nodes, nil
}

// validate checks shared input invariants and returns the block partition.
func validate(a *sparse.COO, b *dense.Matrix, clu *cluster.Cluster) error {
	if b.Rows != int(a.NumCols) {
		return fmt.Errorf("baselines: B has %d rows, want %d", b.Rows, a.NumCols)
	}
	if int32(clu.P()) > a.NumCols || int32(clu.P()) > a.NumRows {
		return fmt.Errorf("baselines: more nodes (%d) than matrix dimensions (%dx%d)", clu.P(), a.NumRows, a.NumCols)
	}
	return nil
}

// getOrDegrade pulls one contiguous region from a peer's window
// one-sidedly. When an attached fault plan exhausts the retry budget for
// that get, it degrades to the reliable synchronous path instead of
// failing the run: the same elements are re-fetched via SyncFallbackPull
// and the resend is charged to SyncComm as "degrade.refetch", so every
// baseline completes bit-exactly under survivable fault plans just like
// Two-Face. Reports whether the degraded path was taken; on the normal
// path the caller charges the one-sided cost itself.
func getOrDegrade(r *cluster.Rank, target int, name string, reg cluster.Region, dst []float64) (bool, error) {
	_, err := r.Get(target, name, reg, dst)
	if err == nil {
		return false, nil
	}
	if !errors.Is(err, cluster.ErrRetryExhausted) {
		return false, err
	}
	if _, err := r.SyncFallbackPull(target, name, []cluster.Region{reg}, dst); err != nil {
		return false, err
	}
	r.ChargeOp(cluster.SyncComm, "degrade.refetch", r.Net().MulticastCost(reg.Elems, 1))
	return true, nil
}

// maxBlockElems returns the size in elements of the largest B block.
func maxBlockElems(numCols int32, p, k int) int64 {
	var max int64
	for _, blk := range dense.Partition(int(numCols), p) {
		if e := int64(blk.Len()) * int64(k); e > max {
			max = e
		}
	}
	return max
}

func finishResult(clu *cluster.Cluster, c *dense.Matrix, start time.Time) *core.Result {
	res := &core.Result{
		C:              c,
		Breakdowns:     clu.Breakdowns(),
		ModeledSeconds: clu.TotalTime(),
		Wall:           time.Since(start),
	}
	res.FillObservability(clu)
	return res
}
