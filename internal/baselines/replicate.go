package baselines

import (
	"fmt"
	"time"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

// Allgather runs the full-replication baseline: every node broadcasts its
// dense block to all others with MPI_Allgather, then computes its whole row
// block locally. Simple and sparsity-unaware — and memory-hungry: the
// replicated B must fit on every node, which is exactly what fails for kmer
// at K=128 in the paper (Figure 2's missing bar).
func Allgather(a *sparse.COO, b *dense.Matrix, clu *cluster.Cluster, opts Options) (*core.Result, error) {
	start := time.Now()
	opts = opts.normalize()
	p := clu.P()
	if err := validate(a, b, clu); err != nil {
		return nil, err
	}
	k := b.Cols
	totalElems := int64(a.NumCols) * int64(k)
	if totalElems > opts.MemBudgetElems {
		return nil, fmt.Errorf("%w: full replication needs %d elems, budget %d",
			ErrOutOfMemory, totalElems, opts.MemBudgetElems)
	}
	nodes, err := buildNodeA(a, p)
	if err != nil {
		return nil, err
	}
	colBlocks := dense.Partition(int(a.NumCols), p)
	rowBlocks := dense.Partition(int(a.NumRows), p)
	out := dense.New(int(a.NumRows), k)

	clu.Reset()
	runErr := clu.Run(func(r *cluster.Rank) error {
		net := r.Net()
		na := nodes[r.ID]
		cView := out.SliceRows(rowBlocks[r.ID])
		r.ChargeOp(cluster.Other, "setup", net.SetupBase+net.SetupPerStripe*float64(p))

		all, err := r.Allgather(b.RowRange(colBlocks[r.ID].Lo, colBlocks[r.ID].Hi))
		if err != nil {
			return err
		}
		r.ChargeOp(cluster.SyncComm, "allgather", net.AllgatherCost(p, maxBlockElems(a.NumCols, p, k)))

		var nnz int64
		for j := 0; j < p; j++ {
			if na.blockNNZ[j] == 0 {
				continue
			}
			if !opts.SkipCompute {
				bBlock, err := dense.FromData(colBlocks[j].Len(), k, all[j])
				if err != nil {
					return err
				}
				if err := na.perBlock[j].MulIntoParallel(bBlock, cView, opts.Workers); err != nil {
					return err
				}
			}
			nnz += na.blockNNZ[j]
		}
		if nnz > 0 {
			r.ChargeOp(cluster.SyncComp, "compute.sync.block", net.SyncComputeCost(nnz, k, opts.Threads))
		}
		return r.Barrier()
	})
	if runErr != nil {
		return nil, runErr
	}
	return finishResult(clu, out, start), nil
}

// AsyncCoarse runs the asynchronous coarse-grained baseline: each node
// issues one-sided MPI_Get operations for every whole dense block containing
// at least one column it touches, then computes locally. Sparsity-aware
// only at block granularity.
func AsyncCoarse(a *sparse.COO, b *dense.Matrix, clu *cluster.Cluster, opts Options) (*core.Result, error) {
	start := time.Now()
	opts = opts.normalize()
	p := clu.P()
	if err := validate(a, b, clu); err != nil {
		return nil, err
	}
	k := b.Cols
	nodes, err := buildNodeA(a, p)
	if err != nil {
		return nil, err
	}
	colBlocks := dense.Partition(int(a.NumCols), p)
	rowBlocks := dense.Partition(int(a.NumRows), p)

	// Memory check: the worst node buffers every block it touches.
	for i := 0; i < p; i++ {
		var need int64
		for j := 0; j < p; j++ {
			if nodes[i].blockNNZ[j] > 0 || j == i {
				need += int64(colBlocks[j].Len()) * int64(k)
			}
		}
		if need > opts.MemBudgetElems {
			return nil, fmt.Errorf("%w: node %d needs %d elems of dense blocks, budget %d",
				ErrOutOfMemory, i, need, opts.MemBudgetElems)
		}
	}
	out := dense.New(int(a.NumRows), k)

	clu.Reset()
	runErr := clu.Run(func(r *cluster.Rank) error {
		net := r.Net()
		na := nodes[r.ID]
		cView := out.SliceRows(rowBlocks[r.ID])
		r.Expose("B", b.RowRange(colBlocks[r.ID].Lo, colBlocks[r.ID].Hi))
		if err := r.Barrier(); err != nil {
			return err
		}
		r.ChargeOp(cluster.Other, "setup", net.SetupBase+net.SetupPerStripe*float64(p))

		var nnz int64
		for j := 0; j < p; j++ {
			if na.blockNNZ[j] == 0 {
				continue
			}
			blockElems := int64(colBlocks[j].Len()) * int64(k)
			var data []float64
			if j == r.ID {
				data = b.RowRange(colBlocks[j].Lo, colBlocks[j].Hi)
			} else {
				buf := make([]float64, blockElems)
				degraded, err := getOrDegrade(r, j, "B", cluster.Region{Off: 0, Elems: blockElems}, buf)
				if err != nil {
					return err
				}
				if !degraded {
					r.ChargeOp(cluster.AsyncComm, "get.block", net.OneSidedCost(1, blockElems))
				}
				data = buf
			}
			if !opts.SkipCompute {
				bBlock, err := dense.FromData(colBlocks[j].Len(), k, data)
				if err != nil {
					return err
				}
				if err := na.perBlock[j].MulIntoParallel(bBlock, cView, opts.Workers); err != nil {
					return err
				}
			}
			nnz += na.blockNNZ[j]
		}
		if nnz > 0 {
			r.ChargeOp(cluster.AsyncComp, "compute.async.block", net.SyncComputeCost(nnz, k, opts.Threads))
		}
		return r.Barrier()
	})
	if runErr != nil {
		return nil, runErr
	}
	return finishResult(clu, out, start), nil
}

// AsyncFine runs the asynchronous fine-grained baseline: Two-Face's executor
// with every remote stripe forced asynchronous (paper sections 2.3 and 6.3).
// The stripe width w follows the same Table 1 scaling as Two-Face.
func AsyncFine(a *sparse.COO, b *dense.Matrix, clu *cluster.Cluster, w int32, opts Options) (*core.Result, error) {
	opts = opts.normalize()
	frac := 1.0
	params := core.Params{
		P: clu.P(), K: b.Cols, W: w,
		ForceSplit:     &frac,
		MemBudgetElems: opts.MemBudgetElems,
	}
	prep, err := core.Preprocess(a, params)
	if err != nil {
		return nil, err
	}
	return core.Exec(prep, b, clu, core.ExecOptions{AsyncWorkers: opts.Workers, SyncWorkers: opts.Workers, SkipCompute: opts.SkipCompute})
}
