package baselines

import (
	"fmt"
	"time"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

// DenseShift runs the dense-shifting algorithm DS(c) of Bharadwaj et al.
// (paper sections 6.3, Table 4): nodes are grouped into p/c replication
// groups; an initial allgather within each group leaves every node holding
// its group's c dense blocks; then p/c computation steps alternate local
// SpMM on the held blocks with a cyclic shift of the whole held set c ranks
// down the ring (MPI_Sendrecv).
//
// c must divide the node count. DS(1) degenerates to pure block rotation
// with no replication.
func DenseShift(a *sparse.COO, b *dense.Matrix, clu *cluster.Cluster, c int, opts Options) (*core.Result, error) {
	start := time.Now()
	opts = opts.normalize()
	p := clu.P()
	if c < 1 || p%c != 0 {
		return nil, fmt.Errorf("baselines: replication factor %d must divide node count %d", c, p)
	}
	if err := validate(a, b, clu); err != nil {
		return nil, err
	}
	k := b.Cols
	// Memory check: each node buffers c dense blocks (its replicated held
	// set) on top of its own block.
	if int64(c)*maxBlockElems(a.NumCols, p, k) > opts.MemBudgetElems {
		return nil, fmt.Errorf("%w: DS%d holds %d block elems, budget %d",
			ErrOutOfMemory, c, int64(c)*maxBlockElems(a.NumCols, p, k), opts.MemBudgetElems)
	}
	nodes, err := buildNodeA(a, p)
	if err != nil {
		return nil, err
	}
	colBlocks := dense.Partition(int(a.NumCols), p)
	rowBlocks := dense.Partition(int(a.NumRows), p)
	out := dense.New(int(a.NumRows), k)
	groups := p / c

	clu.Reset()
	runErr := clu.Run(func(r *cluster.Rank) error {
		net := r.Net()
		na := nodes[r.ID]
		cView := out.SliceRows(rowBlocks[r.ID])
		r.Expose("B", b.RowRange(colBlocks[r.ID].Lo, colBlocks[r.ID].Hi))
		if err := r.Barrier(); err != nil {
			return err
		}
		r.ChargeOp(cluster.Other, "setup", net.SetupBase+net.SetupPerStripe*float64(p))

		// Initial intra-group allgather: pull the group's blocks from their
		// owners' windows. The ring-allgather cost covers the c-1 remote
		// blocks.
		group := r.ID / c
		held := make([][]float64, c) // held[j] = block group*c+j
		for j := 0; j < c; j++ {
			owner := group*c + j
			ownerBlock := colBlocks[owner]
			buf := make([]float64, ownerBlock.Len()*k)
			if owner == r.ID {
				// The node's own block never crosses the network.
				copy(buf, b.RowRange(ownerBlock.Lo, ownerBlock.Hi))
			} else if _, err := getOrDegrade(r, owner, "B", cluster.Region{Off: 0, Elems: int64(len(buf))}, buf); err != nil {
				return err
			}
			held[j] = buf
		}
		if c > 1 {
			r.ChargeOp(cluster.SyncComm, "allgather.group", net.AllgatherCost(c, maxBlockElems(a.NumCols, p, k)))
		}

		// p/c compute+shift steps. At step t this node holds the blocks of
		// group (group - t) mod groups.
		for t := 0; t < groups; t++ {
			holdGroup := ((group-t)%groups + groups) % groups
			var stepNNZ int64
			for j := 0; j < c; j++ {
				blockID := holdGroup*c + j
				if na.blockNNZ[blockID] == 0 {
					continue
				}
				if !opts.SkipCompute {
					bBlock, err := dense.FromData(colBlocks[blockID].Len(), k, held[j])
					if err != nil {
						return err
					}
					if err := na.perBlock[blockID].MulIntoParallel(bBlock, cView, opts.Workers); err != nil {
						return err
					}
				}
				stepNNZ += na.blockNNZ[blockID]
			}
			if stepNNZ > 0 {
				r.ChargeOp(cluster.SyncComp, "compute.sync.step", net.SyncComputeCost(stepNNZ, k, opts.Threads))
			}
			if t == groups-1 {
				break
			}
			// Shift the held set c ranks down the ring; the receiving
			// node's held set comes from c ranks up.
			sendBuf := flatten(held)
			recvBuf, err := r.Sendrecv(sendBuf, (r.ID+c)%p, (r.ID-c+p)%p)
			if err != nil {
				return err
			}
			// Unpack: the incoming set belongs to group (group - t - 1).
			nextGroup := ((group-t-1)%groups + groups) % groups
			held = unflatten(recvBuf, colBlocks, nextGroup, c, k)
			r.ChargeOp(cluster.SyncComm, "sendrecv.shift", net.SendrecvCost(int64(len(sendBuf))))
		}
		return r.Barrier()
	})
	if runErr != nil {
		return nil, runErr
	}
	return finishResult(clu, out, start), nil
}

func flatten(held [][]float64) []float64 {
	var n int
	for _, h := range held {
		n += len(h)
	}
	out := make([]float64, 0, n)
	for _, h := range held {
		out = append(out, h...)
	}
	return out
}

func unflatten(buf []float64, colBlocks []dense.Block, group, c, k int) [][]float64 {
	held := make([][]float64, c)
	off := 0
	for j := 0; j < c; j++ {
		n := colBlocks[group*c+j].Len() * k
		held[j] = buf[off : off+n]
		off += n
	}
	return held
}
