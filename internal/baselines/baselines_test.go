package baselines

import (
	"errors"
	"math/rand/v2"
	"testing"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/sparse"
)

func randomCOO(rows, cols int32, nnz int, seed uint64) *sparse.COO {
	rng := rand.New(rand.NewPCG(seed, seed^123))
	m := sparse.NewCOO(rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(rng.Int32N(rows), rng.Int32N(cols), rng.Float64()*2-1)
	}
	m.Dedup()
	return m
}

type fixture struct {
	a    *sparse.COO
	b    *dense.Matrix
	want *dense.Matrix
	clu  *cluster.Cluster
}

func newFixture(t *testing.T, rows int32, nnz, k, p int, seed uint64) *fixture {
	t.Helper()
	a := randomCOO(rows, rows, nnz, seed)
	b := dense.Random(int(rows), k, seed+1)
	want, err := a.ToCSR().Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := cluster.New(p, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{a: a, b: b, want: want, clu: clu}
}

func checkResult(t *testing.T, name string, res *core.Result, err error, want *dense.Matrix) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.C.AlmostEqual(want, 1e-9) {
		d, _ := res.C.MaxAbsDiff(want)
		t.Fatalf("%s: result differs from reference by %v", name, d)
	}
	if res.ModeledSeconds <= 0 {
		t.Fatalf("%s: no modeled time", name)
	}
}

func TestDenseShiftCorrectAcrossReplication(t *testing.T) {
	fx := newFixture(t, 128, 2500, 8, 8, 1)
	for _, c := range []int{1, 2, 4, 8} {
		res, err := DenseShift(fx.a, fx.b, fx.clu, c, Options{})
		checkResult(t, "DS", res, err, fx.want)
	}
}

func TestDenseShiftBadReplication(t *testing.T) {
	fx := newFixture(t, 64, 500, 4, 6, 2)
	if _, err := DenseShift(fx.a, fx.b, fx.clu, 4, Options{}); err == nil {
		t.Fatal("c=4 with p=6 should fail")
	}
	if _, err := DenseShift(fx.a, fx.b, fx.clu, 0, Options{}); err == nil {
		t.Fatal("c=0 should fail")
	}
}

func TestDenseShiftSingleNode(t *testing.T) {
	fx := newFixture(t, 64, 600, 4, 1, 3)
	res, err := DenseShift(fx.a, fx.b, fx.clu, 1, Options{})
	checkResult(t, "DS1/p1", res, err, fx.want)
	if bd := res.Breakdowns[0]; bd.SyncComm != 0 {
		t.Fatalf("single node should not shift: %+v", bd)
	}
}

func TestDenseShiftOOM(t *testing.T) {
	fx := newFixture(t, 256, 1000, 16, 4, 4)
	_, err := DenseShift(fx.a, fx.b, fx.clu, 4, Options{MemBudgetElems: 100})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestAllgatherCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		fx := newFixture(t, 100, 1800, 8, p, uint64(p))
		res, err := Allgather(fx.a, fx.b, fx.clu, Options{})
		checkResult(t, "Allgather", res, err, fx.want)
	}
}

func TestAllgatherOOM(t *testing.T) {
	fx := newFixture(t, 256, 1000, 16, 4, 5)
	_, err := Allgather(fx.a, fx.b, fx.clu, Options{MemBudgetElems: 1000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestAsyncCoarseCorrect(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		fx := newFixture(t, 120, 2000, 4, p, uint64(10+p))
		res, err := AsyncCoarse(fx.a, fx.b, fx.clu, Options{})
		checkResult(t, "AsyncCoarse", res, err, fx.want)
	}
}

func TestAsyncCoarseOOM(t *testing.T) {
	fx := newFixture(t, 256, 4000, 16, 4, 6)
	_, err := AsyncCoarse(fx.a, fx.b, fx.clu, Options{MemBudgetElems: 2000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestAsyncCoarseChargesAsync(t *testing.T) {
	fx := newFixture(t, 120, 2000, 4, 4, 7)
	res, err := AsyncCoarse(fx.a, fx.b, fx.clu, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var async float64
	for _, bd := range res.Breakdowns {
		async += bd.AsyncComm
		if bd.SyncComm != 0 {
			t.Fatalf("AsyncCoarse should not charge SyncComm: %+v", bd)
		}
	}
	if async == 0 {
		t.Fatal("AsyncCoarse must charge one-sided communication")
	}
}

func TestAsyncFineCorrect(t *testing.T) {
	fx := newFixture(t, 128, 2200, 8, 4, 8)
	res, err := AsyncFine(fx.a, fx.b, fx.clu, 8, Options{})
	checkResult(t, "AsyncFine", res, err, fx.want)
	// All communication must be one-sided.
	for _, bd := range res.Breakdowns {
		if bd.SyncComm != 0 {
			t.Fatalf("AsyncFine charged SyncComm: %+v", bd)
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	fx := newFixture(t, 96, 1500, 4, 4, 9)
	params := core.Params{P: 4, K: 4, W: 8}
	prep, err := core.Preprocess(fx.a, params)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := core.Exec(prep, fx.b, fx.clu, core.ExecOptions{})
	checkResult(t, "Two-Face", tf, err, fx.want)

	ds, err := DenseShift(fx.a, fx.b, fx.clu, 2, Options{})
	checkResult(t, "DS2", ds, err, fx.want)
	ag, err := Allgather(fx.a, fx.b, fx.clu, Options{})
	checkResult(t, "Allgather", ag, err, fx.want)
	ac, err := AsyncCoarse(fx.a, fx.b, fx.clu, Options{})
	checkResult(t, "AsyncCoarse", ac, err, fx.want)
	af, err := AsyncFine(fx.a, fx.b, fx.clu, 8, Options{})
	checkResult(t, "AsyncFine", af, err, fx.want)
}

func TestValidateShapeMismatch(t *testing.T) {
	fx := newFixture(t, 64, 500, 4, 2, 11)
	badB := dense.New(63, 4)
	if _, err := Allgather(fx.a, badB, fx.clu, Options{}); err == nil {
		t.Fatal("B row mismatch should fail")
	}
	if _, err := DenseShift(fx.a, badB, fx.clu, 1, Options{}); err == nil {
		t.Fatal("B row mismatch should fail")
	}
	if _, err := AsyncCoarse(fx.a, badB, fx.clu, Options{}); err == nil {
		t.Fatal("B row mismatch should fail")
	}
}

func TestDenseShiftCommCheaperWithReplication(t *testing.T) {
	// Higher replication means fewer, larger shifts; for a fixed matrix the
	// modeled communication of DS8 should not exceed DS1's.
	fx := newFixture(t, 256, 4000, 16, 8, 12)
	res1, err := DenseShift(fx.a, fx.b, fx.clu, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := DenseShift(fx.a, fx.b, fx.clu, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var comm1, comm8 float64
	for i := range res1.Breakdowns {
		comm1 += res1.Breakdowns[i].SyncComm
		comm8 += res8.Breakdowns[i].SyncComm
	}
	if comm8 > comm1 {
		t.Fatalf("DS8 comm (%v) should not exceed DS1 comm (%v)", comm8, comm1)
	}
}
