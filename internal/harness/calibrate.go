package harness

import (
	"fmt"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/gen"
	"twoface/internal/model"
)

// Calibrate reproduces the paper's section 6.2 parameter fitting: it
// profiles the Two-Face executor on the twitter analog with K=32 and nine
// configurations (three stripe widths x three forced sync/async splits),
// collects per-node (features, observed times) samples, and fits the six
// model coefficients by linear regression. It returns the fitted
// coefficients alongside the machine-truth values for comparison.
func (c Config) Calibrate() (fitted, truth model.Coefficients, err error) {
	cc := c.normalize()
	spec, err := gen.ByName("twitter")
	if err != nil {
		return fitted, truth, err
	}
	w := cc.BuildWorkload(spec)
	const k = 32

	var samples []model.Sample
	widths := []int32{w.W / 2, w.W, w.W * 2}
	splits := []float64{0.25, 0.5, 0.75}
	for _, width := range widths {
		if width < 1 {
			width = 1
		}
		for _, split := range splits {
			split := split
			params := core.Params{
				P: cc.P, K: k, W: width,
				Coef:           cc.Coef(),
				ForceSplit:     &split,
				MemBudgetElems: cc.MemBudget(),
			}
			prep, err := core.Preprocess(w.A, params)
			if err != nil {
				return fitted, truth, fmt.Errorf("harness: calibration prep (W=%d split=%.2f): %w", width, split, err)
			}
			clu, err := cluster.New(cc.P, cc.Net())
			if err != nil {
				return fitted, truth, err
			}
			res, err := core.Exec(prep, w.B(k), clu, core.ExecOptions{AsyncWorkers: 2, SyncWorkers: cc.Workers, SkipCompute: !cc.Verify})
			if err != nil {
				return fitted, truth, fmt.Errorf("harness: calibration run (W=%d split=%.2f): %w", width, split, err)
			}
			for rank, bd := range res.Breakdowns {
				np := &prep.Nodes[rank]
				samples = append(samples, model.Sample{
					W: width, K: k,
					SyncStripes:  np.SS,
					AsyncStripes: np.SA,
					AsyncRows:    np.LA,
					AsyncNNZ:     np.NA,
					CommS:        bd.SyncComm,
					CommA:        bd.AsyncComm,
					CompA:        bd.AsyncComp,
				})
			}
		}
	}
	fitted, diag, err := model.CalibrateWithDiagnostics(samples)
	if err != nil {
		return fitted, truth, err
	}
	lastDiagnostics = diag
	return fitted, cc.Coef(), nil
}

// lastDiagnostics holds the most recent calibration's fit quality for
// Table3's rendering. Calibration runs are driven sequentially by the CLI
// and benches, so a package variable suffices.
var lastDiagnostics model.Diagnostics

// Table3 renders the calibration outcome next to the machine-truth values
// (the paper's Table 3 analog for this simulated system).
func (c Config) Table3() (*Table, error) {
	fitted, truth, err := c.Calibrate()
	if err != nil {
		return nil, err
	}
	rows := []string{"betaS", "alphaS", "betaA", "alphaA", "gammaA", "kappaA"}
	t := NewTable("Table 3: preprocessing coefficients (regression fit vs machine truth)",
		rows, []string{"fitted", "truth", "ratio"})
	pairs := [][2]float64{
		{fitted.BetaS, truth.BetaS},
		{fitted.AlphaS, truth.AlphaS},
		{fitted.BetaA, truth.BetaA},
		{fitted.AlphaA, truth.AlphaA},
		{fitted.GammaA, truth.GammaA},
		{fitted.KappaA, truth.KappaA},
	}
	for i, p := range pairs {
		t.Set(i, 0, p[0], "%.3g")
		t.Set(i, 1, p[1], "%.3g")
		if p[1] != 0 {
			t.Set(i, 2, p[0]/p[1], "%.2f")
		}
	}
	t.Note = fmt.Sprintf("Fitted by least squares on 9 profiled configurations of the twitter analog (3 widths x 3 forced splits), K=32.\n"+
		"Fit quality: R2(CommS)=%.3f R2(CommA)=%.3f R2(CompA)=%.3f — the residual is the multicast fan-out and\n"+
		"coalescing behaviour the two-parameter-per-equation model cannot express.",
		lastDiagnostics.R2CommS, lastDiagnostics.R2CommA, lastDiagnostics.R2CompA)
	return t, nil
}
