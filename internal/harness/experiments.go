package harness

import (
	"fmt"
	"math"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/gen"
	"twoface/internal/model"
)

// MatrixNames lists the evaluation matrices in Table 1 order.
func MatrixNames() []string {
	specs := gen.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Short
	}
	return names
}

// Table1 renders the matrix inventory: the paper's Table 1 plus the
// generated analog's actual dimensions at this configuration's scale.
func (c Config) Table1() *Table {
	cc := c.normalize()
	specs := gen.Specs()
	rows := make([]string, len(specs))
	for i, s := range specs {
		rows[i] = s.Short
	}
	t := NewTable(
		fmt.Sprintf("Table 1: evaluation matrices (scale %.3g, synthetic analogs)", cc.Scale),
		rows,
		[]string{"rows", "nnz(M)", "avg deg", "stripe W", "paper rows(M)", "paper nnz(M)"},
	)
	for i, s := range specs {
		a := cc.BuildWorkload(s)
		st := a.A.ComputeStats()
		t.Set(i, 0, float64(st.NumRows), "%.0f")
		t.Set(i, 1, float64(st.NNZ)/1e6, "%.3f")
		t.Set(i, 2, st.AvgPerRow, "%.2f")
		t.Set(i, 3, float64(a.W), "%.0f")
		t.Set(i, 4, s.PaperRows()/1e6, "%.2f")
		t.Set(i, 5, s.PaperRows()*s.AvgDeg/1e6, "%.0f")
	}
	return t
}

// Figure2 reproduces the motivation study: speedup of Async Fine-Grained
// over the Allgather collective implementation for K in {32, 128}. Values
// above 1 mean the sparsity-aware side wins. "OOM" marks the paper's
// missing kmer/K=128 collectives bar.
func (c Config) Figure2() *Table {
	cc := c.normalize()
	t := NewTable(
		fmt.Sprintf("Figure 2: Async Fine speedup over Collectives (Allgather), p=%d", cc.P),
		MatrixNames(),
		[]string{"K=32", "K=128"},
	)
	for i, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		for j, k := range []int{32, 128} {
			ag := cc.Run(AlgoAllgather, w, k, cc.P)
			af := cc.Run(AlgoAsyncFine, w, k, cc.P)
			t.Set(i, j, Speedup(ag, af), "%.2f")
		}
	}
	t.Note = "Values > 1: fine-grained one-sided wins; < 1: collectives win. OOM: full replication exceeds node memory."
	return t
}

// SpeedupFigure reproduces Figure 7 (K=32), 8 (K=128), or 9 (K=512): the
// speedup of every algorithm over DS2 per matrix, plus a final avg row
// (geometric mean over matrices where the algorithm ran).
func (c Config) SpeedupFigure(k int) *Table {
	cc := c.normalize()
	rows := append(MatrixNames(), "avg")
	cols := make([]string, len(FigureAlgos))
	for j, a := range FigureAlgos {
		cols[j] = string(a)
	}
	t := NewTable(fmt.Sprintf("Figures 7-9: speedup over DS2, K=%d, p=%d", k, cc.P), rows, cols)
	geo := make([]float64, len(FigureAlgos))
	cnt := make([]int, len(FigureAlgos))
	for i, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		base := cc.Run(AlgoDS2, w, k, cc.P)
		for j, algo := range FigureAlgos {
			var out Outcome
			if algo == AlgoDS2 {
				out = base
			} else {
				out = cc.Run(algo, w, k, cc.P)
			}
			sp := Speedup(base, out)
			t.Set(i, j, sp, "%.2f")
			if !math.IsNaN(sp) {
				geo[j] += math.Log(sp)
				cnt[j]++
			}
		}
	}
	for j := range FigureAlgos {
		if cnt[j] > 0 {
			t.Set(len(rows)-1, j, math.Exp(geo[j]/float64(cnt[j])), "%.2f")
		}
	}
	return t
}

// Table5 reports the absolute modeled execution times of DS2 and Two-Face
// for K in {32, 128, 512} (paper Table 5; seconds on the modeled machine).
func (c Config) Table5() *Table {
	cc := c.normalize()
	var rows []string
	for _, k := range []int{32, 128, 512} {
		rows = append(rows, fmt.Sprintf("K=%d DS2", k), fmt.Sprintf("K=%d Two-Face", k))
	}
	t := NewTable(fmt.Sprintf("Table 5: absolute modeled times (s), p=%d", cc.P), rows, MatrixNames())
	for col, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		for ki, k := range []int{32, 128, 512} {
			ds := cc.Run(AlgoDS2, w, k, cc.P)
			tf := cc.Run(AlgoTwoFace, w, k, cc.P)
			t.Set(2*ki, col, orNaN(ds), "%.4g")
			t.Set(2*ki+1, col, orNaN(tf), "%.4g")
		}
	}
	return t
}

func orNaN(o Outcome) float64 {
	if o.OOM || o.Err != nil {
		return math.NaN()
	}
	return o.Modeled
}

// Figure10 reproduces the execution-time breakdown of DS4 vs Two-Face at
// K=128: for each matrix, the five Figure 10 categories summed over nodes,
// normalized to DS4's total. Two-Face's sync and async halves overlap, so
// its makespan is less than the sum of its categories.
func (c Config) Figure10() *Table {
	cc := c.normalize()
	const k = 128
	cols := []string{
		"DS4 SyncComm", "DS4 SyncComp", "DS4 Other",
		"2F SyncComm", "2F SyncComp", "2F AsyncComm", "2F AsyncComp", "2F Other",
		"2F/DS4 time",
	}
	t := NewTable(fmt.Sprintf("Figure 10: time breakdown DS4 vs Two-Face, K=%d, p=%d (normalized to DS4 total)", k, cc.P),
		MatrixNames(), cols)
	for i, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		ds := cc.Run(AlgoDS4, w, k, cc.P)
		tf := cc.Run(AlgoTwoFace, w, k, cc.P)
		if ds.OOM || ds.Err != nil || tf.OOM || tf.Err != nil {
			continue
		}
		dsSum := sumBreakdowns(ds.Breakdowns)
		tfSum := sumBreakdowns(tf.Breakdowns)
		norm := ds.Modeled
		t.Set(i, 0, dsSum.SyncComm/float64(len(ds.Breakdowns))/norm, "%.3f")
		t.Set(i, 1, dsSum.SyncComp/float64(len(ds.Breakdowns))/norm, "%.3f")
		t.Set(i, 2, dsSum.Other/float64(len(ds.Breakdowns))/norm, "%.3f")
		n := float64(len(tf.Breakdowns))
		t.Set(i, 3, tfSum.SyncComm/n/norm, "%.3f")
		t.Set(i, 4, tfSum.SyncComp/n/norm, "%.3f")
		t.Set(i, 5, tfSum.AsyncComm/n/norm, "%.3f")
		t.Set(i, 6, tfSum.AsyncComp/n/norm, "%.3f")
		t.Set(i, 7, tfSum.Other/n/norm, "%.3f")
		t.Set(i, 8, tf.Modeled/norm, "%.3f")
	}
	return t
}

func sumBreakdowns(bds []cluster.Breakdown) cluster.Breakdown {
	var s cluster.Breakdown
	for _, b := range bds {
		s = s.Plus(b)
	}
	return s
}

// Figure11 reproduces the strong-scaling study: modeled execution time of
// Two-Face and DS1/DS2/DS4/DS8 at K=128 for each node count. One table per
// matrix, rows = algorithms, columns = node counts.
func (c Config) Figure11(nodeCounts []int) []*Table {
	cc := c.normalize()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8, 16}
	}
	const k = 128
	algos := []Algo{AlgoTwoFace, AlgoDS1, AlgoDS2, AlgoDS4, AlgoDS8}
	var tables []*Table
	for _, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		cols := make([]string, len(nodeCounts))
		for j, p := range nodeCounts {
			cols[j] = fmt.Sprintf("p=%d", p)
		}
		rows := make([]string, len(algos))
		for i, a := range algos {
			rows[i] = string(a)
		}
		t := NewTable(fmt.Sprintf("Figure 11 (%s): modeled time (s) vs node count, K=%d", s.Short, k), rows, cols)
		for j, p := range nodeCounts {
			for i, algo := range algos {
				if isDS(algo) && p%dsFactor(algo) != 0 {
					continue // replication factor must divide p
				}
				out := cc.Run(algo, w, k, p)
				t.Set(i, j, orNaN(out), "%.4g")
			}
		}
		tables = append(tables, t)
	}
	return tables
}

func isDS(a Algo) bool {
	return a == AlgoDS1 || a == AlgoDS2 || a == AlgoDS4 || a == AlgoDS8
}

// Table6 reproduces the preprocessing-overhead study at K=128: the modeled
// single-node preprocessing time (with and without I/O) normalized to one
// modeled Two-Face SpMM.
func (c Config) Table6() *Table {
	cc := c.normalize()
	const k = 128
	t := NewTable(fmt.Sprintf("Table 6: preprocessing overhead / one SpMM, K=%d, p=%d", k, cc.P),
		append(MatrixNames(), "avg"), []string{"t_norm_io", "t_norm"})
	var sumIO, sum float64
	var n int
	for i, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		tf := cc.Run(AlgoTwoFace, w, k, cc.P)
		if tf.Err != nil || tf.OOM || tf.Prep == nil || tf.Modeled == 0 {
			continue
		}
		io := tf.Prep.ModeledPrepWithIOSeconds / tf.Modeled
		no := tf.Prep.ModeledPrepSeconds / tf.Modeled
		t.Set(i, 0, io, "%.2f")
		t.Set(i, 1, no, "%.2f")
		sumIO += io
		sum += no
		n++
	}
	if n > 0 {
		t.Set(len(MatrixNames()), 0, sumIO/float64(n), "%.2f")
		t.Set(len(MatrixNames()), 1, sum/float64(n), "%.2f")
	}
	return t
}

// Figure12 reproduces the sensitivity study: Two-Face's modeled time with
// perturbed preprocessing-model coefficients, relative to the default
// coefficients, averaged over the paper's three representative matrices
// (web: best case, twitter: worst case, stokes: median). Three 3x3 grids:
// (alphaA, betaA), (alphaS, betaS), (gammaA, kappaA), each scaled by
// {0.8, 1.0, 1.25}.
func (c Config) Figure12() []*Table {
	cc := c.normalize()
	const k = 128
	factors := []float64{0.8, 1.0, 1.25}
	reps := []string{"web", "twitter", "stokes"}

	type pairDef struct {
		name  string
		apply func(coef model.Coefficients, fRow, fCol float64) model.Coefficients
	}
	pairs := []pairDef{
		{"alphaA (rows) x betaA (cols)", func(m model.Coefficients, fr, fc float64) model.Coefficients {
			m.AlphaA *= fr
			m.BetaA *= fc
			return m
		}},
		{"alphaS (rows) x betaS (cols)", func(m model.Coefficients, fr, fc float64) model.Coefficients {
			m.AlphaS *= fr
			m.BetaS *= fc
			return m
		}},
		{"gammaA (rows) x kappaA (cols)", func(m model.Coefficients, fr, fc float64) model.Coefficients {
			m.GammaA *= fr
			m.KappaA *= fc
			return m
		}},
	}

	// Baseline runs with default coefficients.
	baseTimes := map[string]float64{}
	workloads := map[string]*Workload{}
	for _, name := range reps {
		spec, err := gen.ByName(name)
		if err != nil {
			continue
		}
		w := cc.BuildWorkload(spec)
		workloads[name] = w
		out := cc.Run(AlgoTwoFace, w, k, cc.P)
		if out.Err == nil && !out.OOM {
			baseTimes[name] = out.Modeled
		}
	}

	var tables []*Table
	for _, pd := range pairs {
		rows := []string{"0.8x", "1.0x", "1.25x"}
		t := NewTable(fmt.Sprintf("Figure 12: sensitivity, %s (relative modeled time, avg of web/twitter/stokes)", pd.name),
			rows, rows)
		for ri, fr := range factors {
			for ci, fc := range factors {
				var sum float64
				var n int
				for _, name := range reps {
					w, ok := workloads[name]
					if !ok || baseTimes[name] == 0 {
						continue
					}
					coef := pd.apply(cc.Coef(), fr, fc)
					out := cc.runPerturbed(w, k, coef)
					if out.Err == nil && !out.OOM && out.Modeled > 0 {
						sum += out.Modeled / baseTimes[name]
						n++
					}
				}
				if n > 0 {
					t.Set(ri, ci, sum/float64(n), "%.2f")
				}
			}
		}
		tables = append(tables, t)
	}
	return tables
}

// runPerturbed runs Two-Face with explicit classifier coefficients (the
// machine model stays at the default — that is the whole point of the
// sensitivity study).
func (c Config) runPerturbed(w *Workload, k int, coef model.Coefficients) Outcome {
	cc := c.normalize()
	out := Outcome{Algo: AlgoTwoFace}
	clu, err := cluster.New(cc.P, cc.Net())
	if err != nil {
		out.Err = err
		return out
	}
	params := core.Params{
		P: cc.P, K: k, W: w.W,
		Coef:           coef,
		MemBudgetElems: cc.MemBudget(),
	}
	prep, err := core.Preprocess(w.A, params)
	if err != nil {
		out.Err = err
		return out
	}
	out.Prep = &prep.Stats
	res, err := core.Exec(prep, w.B(k), clu, core.ExecOptions{AsyncWorkers: 2, SyncWorkers: cc.Workers, SkipCompute: !cc.Verify})
	if err != nil {
		out.Err = err
		return out
	}
	out.Modeled = res.ModeledSeconds
	out.Breakdowns = res.Breakdowns
	return out
}
