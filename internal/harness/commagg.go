package harness

import (
	"fmt"
	"math"

	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/gen"
)

// CommAggRow measures, for one registry matrix, what the owner-batched
// one-sided path and the cross-run row cache buy over the legacy
// one-get-per-stripe accounting. All byte/request numbers come from the
// cluster's honest transfer counters, not the cost model.
type CommAggRow struct {
	Matrix string `json:"matrix"`

	// Legacy path: one GetIndexed per async stripe, no cache.
	LegacyGets    int64 `json:"legacy_gets"`
	LegacyRegions int64 `json:"legacy_regions"`
	LegacyBytes   int64 `json:"legacy_bytes"`

	// Batched path, first (cold-cache) run.
	BatchedGets    int64 `json:"batched_gets"`
	BatchedRegions int64 `json:"batched_regions"`
	ColdBytes      int64 `json:"cold_bytes"`

	// Batched path, second run on the same plan and dense input: the row
	// cache serves repeats, so gets and bytes drop further.
	WarmGets  int64 `json:"warm_gets"`
	WarmBytes int64 `json:"warm_bytes"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	SavedBytes     int64   `json:"saved_bytes"`
	GetReduction   float64 `json:"get_reduction"`   // LegacyGets / BatchedGets
	WarmByteRatio  float64 `json:"warm_byte_ratio"` // WarmBytes / ColdBytes
	MaxRelDiff     float64 `json:"max_rel_diff"`    // batched C vs legacy C
	ResultsAgree   bool    `json:"results_agree"`   // MaxRelDiff <= 1e-9
	ModeledLegacy  float64 `json:"modeled_legacy_seconds"`
	ModeledBatched float64 `json:"modeled_batched_seconds"`

	// Overlap comparison: a third run on the same plan, cluster, and (warm)
	// cache with the pipelined sync path off — DisableOverlap, the seed's
	// serial accounting — against the warm pipelined run. The pipeline
	// changes only when panels start, not what moves or what is charged per
	// category, so the serial C matches and OverlapGain = ModeledSerial /
	// ModeledPipelined >= 1 by construction (strictly > 1 wherever sync
	// comm and sync compute coexist).
	ModeledPipelined float64 `json:"modeled_pipelined_seconds"` // warm run, overlap on
	ModeledSerial    float64 `json:"modeled_serial_seconds"`    // warm run, overlap off
	OverlapSeconds   float64 `json:"overlap_seconds"`           // cluster-wide SyncOverlap sum
	OverlapGain      float64 `json:"overlap_gain"`              // ModeledSerial / ModeledPipelined
}

// CommAggregation runs Two-Face on every registry matrix three ways — legacy
// one-sided accounting, batched cold-cache, batched warm-cache — and reports
// the request/byte deltas. This is the headline evidence for the aggregation
// scheduler: same fetched rows, a fraction of the requests, and repeat runs
// served partly from the cache.
func (c Config) CommAggregation(k int) ([]CommAggRow, *Table, error) {
	cc := c.normalize()
	rows := make([]CommAggRow, 0, len(gen.Specs()))
	cols := []string{"legacy gets", "batched gets", "get redux", "warm bytes/cold", "cache hit%", "overlap gain"}
	t := NewTable(fmt.Sprintf("Extension: one-sided aggregation and row cache, K=%d, p=%d", k, cc.P),
		MatrixNames(), cols)
	for i, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		row, err := cc.commAggRow(w, k)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", s.Short, err)
		}
		row.Matrix = s.Short
		rows = append(rows, row)
		t.Set(i, 0, float64(row.LegacyGets), "%.0f")
		t.Set(i, 1, float64(row.BatchedGets), "%.0f")
		t.Set(i, 2, row.GetReduction, "%.2fx")
		t.Set(i, 3, row.WarmByteRatio, "%.3f")
		t.Set(i, 4, 100*row.CacheHitRate, "%.0f%%")
		t.Set(i, 5, row.OverlapGain, "%.3fx")
	}
	t.Note = "Legacy issues one one-sided get per async stripe; the batched path aggregates consecutive same-owner stripes into single requests (get redux = legacy/batched) and a per-rank row cache serves repeat runs (warm bytes/cold < 1). Overlap gain is the serial-sync makespan over the pipelined one (multicasts overlapped with panel compute), never below 1x."
	return rows, t, nil
}

// commAggRow measures one matrix. Arithmetic stays on so the legacy and
// batched results can be compared element-wise.
func (c Config) commAggRow(w *Workload, k int) (CommAggRow, error) {
	cc := c.normalize()
	var row CommAggRow
	b := w.B(k)

	legacyRes, err := cc.execTwoFace(w, k, b, true)
	if err != nil {
		return row, err
	}
	lt := legacyRes.TotalTransfer
	row.LegacyGets, row.LegacyRegions, row.LegacyBytes = lt.OneSidedGets, lt.OneSidedMsgs, lt.OneSidedBytes
	row.ModeledLegacy = legacyRes.ModeledSeconds

	// One prep, one cluster, two runs: the first is cold, the second hits
	// the row cache (per-run counters reset at each Exec entry).
	params := cc.twoFaceParams(w, k)
	prep, err := core.Preprocess(w.A, params)
	if err != nil {
		return row, err
	}
	clu, err := cluster.New(cc.P, cc.Net())
	if err != nil {
		return row, err
	}
	opts := core.ExecOptions{AsyncWorkers: cc.AsyncWorkers, SyncWorkers: cc.Workers}
	cold, err := core.Exec(prep, b, clu, opts)
	if err != nil {
		return row, err
	}
	ct := cold.TotalTransfer
	row.BatchedGets, row.BatchedRegions, row.ColdBytes = ct.OneSidedGets, ct.OneSidedMsgs, ct.OneSidedBytes
	row.ModeledBatched = cold.ModeledSeconds

	warm, err := core.Exec(prep, b, clu, opts)
	if err != nil {
		return row, err
	}
	wt := warm.TotalTransfer
	row.WarmGets, row.WarmBytes = wt.OneSidedGets, wt.OneSidedBytes
	row.CacheHits, row.CacheMisses = warm.RowCache.Hits, warm.RowCache.Misses
	row.CacheHitRate = warm.RowCache.HitRate()
	row.SavedBytes = warm.RowCache.SavedBytes

	// Overlap A/B: a second warm run with the pipelined sync path disabled.
	// Same plan, cluster, and cache state, so the only modeled difference is
	// the SyncOverlap credit.
	serialOpts := opts
	serialOpts.DisableOverlap = true
	serial, err := core.Exec(prep, b, clu, serialOpts)
	if err != nil {
		return row, err
	}
	row.ModeledPipelined = warm.ModeledSeconds
	row.ModeledSerial = serial.ModeledSeconds
	for _, bd := range warm.Breakdowns {
		row.OverlapSeconds += bd.SyncOverlap
	}
	if row.ModeledPipelined > 0 {
		row.OverlapGain = row.ModeledSerial / row.ModeledPipelined
	}

	if row.BatchedGets > 0 {
		row.GetReduction = float64(row.LegacyGets) / float64(row.BatchedGets)
	} else if row.LegacyGets == 0 {
		row.GetReduction = 1
	}
	if row.ColdBytes > 0 {
		row.WarmByteRatio = float64(row.WarmBytes) / float64(row.ColdBytes)
	} else {
		row.WarmByteRatio = 1
	}
	row.MaxRelDiff = maxRelDiff(legacyRes.C.Data, cold.C.Data)
	row.ResultsAgree = row.MaxRelDiff <= 1e-9
	return row, nil
}

// twoFaceParams builds the Two-Face parameters the harness uses everywhere.
func (c Config) twoFaceParams(w *Workload, k int) core.Params {
	cc := c.normalize()
	return core.Params{
		P: cc.P, K: k, W: w.W,
		Coef:           cc.Coef(),
		MemBudgetElems: cc.MemBudget(),
	}
}

// execTwoFace preps and runs Two-Face once with real arithmetic, on a fresh
// cluster, in legacy or batched one-sided mode.
func (c Config) execTwoFace(w *Workload, k int, b *dense.Matrix, legacy bool) (*core.Result, error) {
	cc := c.normalize()
	params := cc.twoFaceParams(w, k)
	params.LegacyAsyncGets = legacy
	prep, err := core.Preprocess(w.A, params)
	if err != nil {
		return nil, err
	}
	clu, err := cluster.New(cc.P, cc.Net())
	if err != nil {
		return nil, err
	}
	return core.Exec(prep, b, clu, core.ExecOptions{AsyncWorkers: cc.AsyncWorkers, SyncWorkers: cc.Workers})
}

// maxRelDiff returns the maximum per-element relative difference.
func maxRelDiff(a, b []float64) float64 {
	var maxRel float64
	for i, v := range a {
		wv := b[i]
		if v == wv {
			continue
		}
		rel := math.Abs(v-wv) / math.Max(math.Max(math.Abs(v), math.Abs(wv)), 1)
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}
