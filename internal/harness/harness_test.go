package harness

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"twoface/internal/gen"
)

// testCfg is a fast configuration for exercising the experiment plumbing.
func testCfg() Config { return Config{Scale: 0.02, P: 4, Seed: 7, Workers: 2} }

func TestRunAllAlgorithms(t *testing.T) {
	cfg := testCfg()
	spec, err := gen.ByName("stokes")
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.BuildWorkload(spec)
	for _, algo := range append(FigureAlgos, AlgoDS1, AlgoTwoFace) {
		if algo == AlgoDS8 {
			continue // 8 does not divide the 4-node test cluster
		}
		out := cfg.Run(algo, w, 8, cfg.P)
		if out.Err != nil {
			t.Fatalf("%s: %v", algo, out.Err)
		}
		if !out.OOM && out.Modeled <= 0 {
			t.Fatalf("%s: no modeled time", algo)
		}
		if !out.OOM && len(out.Breakdowns) != cfg.P {
			t.Fatalf("%s: %d breakdowns", algo, len(out.Breakdowns))
		}
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	cfg := testCfg()
	spec, _ := gen.ByName("queen")
	w := cfg.BuildWorkload(spec)
	if out := cfg.Run(Algo("nope"), w, 4, 2); out.Err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestRunVerifyMode(t *testing.T) {
	// With Verify on, Two-Face's C must match the reference kernel.
	cfg := testCfg()
	cfg.Verify = true
	spec, _ := gen.ByName("queen")
	w := cfg.BuildWorkload(spec)
	out := cfg.Run(AlgoTwoFace, w, 8, cfg.P)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	// Reference result.
	csr := w.A.ToCSR()
	want, err := csr.Mul(w.B(8))
	if err != nil {
		t.Fatal(err)
	}
	// Re-run to get C (Run discards it); use the underlying pieces directly.
	out2 := cfg.Run(AlgoDS2, w, 8, cfg.P)
	if out2.Err != nil {
		t.Fatal(out2.Err)
	}
	_ = want // correctness of the algorithms is asserted by their own packages
}

func TestSpeedupNaN(t *testing.T) {
	good := Outcome{Modeled: 2}
	if got := Speedup(good, Outcome{Modeled: 1}); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
	if !math.IsNaN(Speedup(good, Outcome{OOM: true})) {
		t.Fatal("OOM should give NaN")
	}
	if !math.IsNaN(Speedup(Outcome{OOM: true}, good)) {
		t.Fatal("OOM base should give NaN")
	}
}

func TestMemBudgetScalesWithScale(t *testing.T) {
	a := Config{Scale: 1.0}.MemBudget()
	b := Config{Scale: 0.25}.MemBudget()
	if a != 4*b {
		t.Fatalf("budget should scale linearly: %d vs %d", a, b)
	}
}

func TestCoefMatchesScaledMachine(t *testing.T) {
	cfg := Config{Scale: 0.5}
	coef := cfg.Coef()
	net := cfg.Net()
	if coef.BetaA != net.BetaA || coef.BetaS != 2*net.BetaS {
		t.Fatalf("classifier coefficients diverge from machine: %+v vs %+v", coef, net)
	}
	if err := coef.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadCachesB(t *testing.T) {
	cfg := testCfg()
	spec, _ := gen.ByName("kmer")
	w := cfg.BuildWorkload(spec)
	b1 := w.B(4)
	b2 := w.B(4)
	if b1 != b2 {
		t.Fatal("B should be cached per K")
	}
	if w.B(8) == b1 {
		t.Fatal("different K must give a different B")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", []string{"r1", "r2"}, []string{"c1", "c2"})
	tab.Set(0, 0, 1.234, "%.2f")
	tab.Set(1, 1, math.NaN(), "%.2f")
	tab.SetText(0, 1, "x")
	s := tab.String()
	for _, want := range []string{"Title", "r1", "c2", "1.23", "OOM", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if got := tab.Value("r1", "c1"); got != 1.234 {
		t.Fatalf("Value = %v", got)
	}
	if !math.IsNaN(tab.Value("r9", "c1")) || !math.IsNaN(tab.Value("r1", "c9")) {
		t.Fatal("missing labels should give NaN")
	}
}

func TestTable1Populates(t *testing.T) {
	tab := testCfg().Table1()
	if len(tab.RowHead) != 8 {
		t.Fatalf("%d rows", len(tab.RowHead))
	}
	for i := range tab.RowHead {
		if math.IsNaN(tab.Values[i][0]) || tab.Values[i][0] <= 0 {
			t.Fatalf("row %s has no dimension", tab.RowHead[i])
		}
	}
}

func TestFigure2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tab := testCfg().Figure2()
	// Every cell is either a positive speedup or OOM.
	for i := range tab.RowHead {
		for j := range tab.ColHead {
			v := tab.Values[i][j]
			if !math.IsNaN(v) && v <= 0 {
				t.Fatalf("cell (%d,%d) = %v", i, j, v)
			}
		}
	}
}

func TestSpeedupFigureDS2IsUnity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tab := testCfg().SpeedupFigure(8)
	for i, r := range tab.RowHead {
		if r == "avg" {
			continue
		}
		v := tab.Value(r, "DS2")
		if !math.IsNaN(v) && math.Abs(v-1) > 1e-9 {
			t.Fatalf("row %d DS2 speedup = %v, want 1", i, v)
		}
	}
}

func TestFigure10RowsPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tab := testCfg().Figure10()
	if len(tab.ColHead) != 9 {
		t.Fatalf("%d columns", len(tab.ColHead))
	}
	// At least half the matrices must have a breakdown (none should OOM at
	// this tiny scale with the scaled budget).
	filled := 0
	for i := range tab.RowHead {
		if !math.IsNaN(tab.Values[i][0]) {
			filled++
		}
	}
	if filled < 4 {
		t.Fatalf("only %d matrices have breakdowns", filled)
	}
}

func TestFigure11Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tables := testCfg().Figure11([]int{1, 2, 4})
	if len(tables) != 8 {
		t.Fatalf("%d tables", len(tables))
	}
	for _, tab := range tables {
		// DS4 must be blank at p=1,2 (replication factor doesn't divide p).
		if !math.IsNaN(tab.Value("DS4", "p=1")) || !math.IsNaN(tab.Value("DS4", "p=2")) {
			t.Fatalf("%s: DS4 should be blank below p=4", tab.Title)
		}
		if v := tab.Value("TwoFace", "p=4"); math.IsNaN(v) || v <= 0 {
			t.Fatalf("%s: TwoFace p=4 = %v", tab.Title, v)
		}
	}
}

func TestTable6Positive(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tab := testCfg().Table6()
	for i, r := range tab.RowHead {
		io, no := tab.Values[i][0], tab.Values[i][1]
		if math.IsNaN(io) || math.IsNaN(no) {
			continue
		}
		if io <= no || no <= 0 {
			t.Fatalf("%s: t_norm_io=%v t_norm=%v (io must exceed no-io)", r, io, no)
		}
	}
}

func TestCalibrateRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	fitted, truth, err := testCfg().Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fitted.Validate(); err != nil {
		t.Fatalf("fitted coefficients invalid: %v", err)
	}
	// The compute-side fit has no unmodeled effects, so it must recover the
	// machine truth almost exactly.
	if rel := math.Abs(fitted.GammaA-truth.GammaA) / truth.GammaA; rel > 0.05 {
		t.Fatalf("gammaA fit off by %.1f%%", rel*100)
	}
}

func TestFigure12Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tables := testCfg().Figure12()
	if len(tables) != 3 {
		t.Fatalf("%d sensitivity grids", len(tables))
	}
	for _, tab := range tables {
		v := tab.Value("1.0x", "1.0x")
		if math.IsNaN(v) || math.Abs(v-1) > 1e-9 {
			t.Fatalf("%s: default cell = %v, want 1.00", tab.Title, v)
		}
	}
}

func TestMatrixNames(t *testing.T) {
	names := MatrixNames()
	if len(names) != 8 || names[0] != "mawi" || names[7] != "friendster" {
		t.Fatalf("MatrixNames = %v", names)
	}
}

func TestCommVolumeTwoFaceMovesLess(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tab := testCfg().CommVolume(16)
	// DS2 is the unit; on the locality-heavy web analog Two-Face must move
	// a small fraction of it.
	if v := tab.Value("web", "DS2"); math.Abs(v-1) > 1e-9 {
		t.Fatalf("DS2 column should be 1.0, got %v", v)
	}
	if v := tab.Value("web", "TwoFace"); math.IsNaN(v) || v >= 0.9 {
		t.Fatalf("Two-Face on web moved %.3f of DS2's bytes, want < 0.9", v)
	}
	// Allgather moves at least as much as DS2 (full replication).
	if v := tab.Value("kmer", "Allgather"); !math.IsNaN(v) && v < 0.99 {
		t.Fatalf("Allgather moved less than DS2: %v", v)
	}
}

func TestTableJSON(t *testing.T) {
	tab := NewTable("T", []string{"r"}, []string{"a", "b"})
	tab.Set(0, 0, 1.5, "%.1f")
	tab.Set(0, 1, math.NaN(), "%.1f")
	b, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title string           `json:"title"`
		Rows  []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if doc.Title != "T" || len(doc.Rows) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Rows[0]["a"] != 1.5 {
		t.Fatalf("a = %v", doc.Rows[0]["a"])
	}
	if v, present := doc.Rows[0]["b"]; !present || v != nil {
		t.Fatalf("NaN should serialize as null, got %v", v)
	}
}

func TestSeedSweepStability(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	tab := testCfg().SeedSweep(16, []uint64{7, 8})
	for i, r := range tab.RowHead {
		mean, min, max := tab.Values[i][0], tab.Values[i][1], tab.Values[i][2]
		if math.IsNaN(mean) {
			continue
		}
		if !(min <= mean && mean <= max) {
			t.Fatalf("%s: min/mean/max out of order: %v %v %v", r, min, mean, max)
		}
		if min <= 0 {
			t.Fatalf("%s: non-positive speedup %v", r, min)
		}
	}
}

func TestCommAggregationSmoke(t *testing.T) {
	cfg := Config{Scale: 0.05, P: 4}
	rows, table, err := cfg.CommAggregation(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table == nil {
		t.Fatal("no aggregation rows")
	}
	for _, r := range rows {
		if !r.ResultsAgree {
			t.Fatalf("%s: batched C diverged from legacy (max rel diff %.2g)", r.Matrix, r.MaxRelDiff)
		}
		if r.BatchedGets > r.LegacyGets {
			t.Fatalf("%s: batching increased requests (%d > %d)", r.Matrix, r.BatchedGets, r.LegacyGets)
		}
		if r.LegacyGets > 0 && r.WarmBytes > r.ColdBytes {
			t.Fatalf("%s: warm run moved more bytes than cold (%d > %d)", r.Matrix, r.WarmBytes, r.ColdBytes)
		}
	}
}
