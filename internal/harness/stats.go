package harness

import (
	"math"
	"sort"
)

// Benchmark statistics shared by the load harness and report emitters:
// sample summaries with tail percentiles, dispersion (CV), and effect sizes
// (Cohen's d) so benchmark deltas ship with the evidence that they are real
// and not run-to-run noise. Latency distributions are long-tailed, so the
// summaries lead with P50/P95/P99 rather than the mean.

// Percentile returns the p-quantile (p in [0, 100]) of xs by linear
// interpolation between closest ranks. NaN for an empty slice. xs is not
// modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanStd returns the arithmetic mean and the sample standard deviation
// (n-1 denominator; 0 when fewer than two samples).
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// CV returns the coefficient of variation (std/mean) of xs — the
// run-to-run noise measure benchmark reports quote to justify that a
// difference is signal. 0 when the mean is 0.
func CV(xs []float64) float64 {
	mean, std := MeanStd(xs)
	if mean == 0 || math.IsNaN(mean) {
		return 0
	}
	return std / math.Abs(mean)
}

// CohenD returns Cohen's d effect size between two samples using the
// pooled standard deviation. By convention |d| >= 0.8 is a large effect;
// +Inf when both samples are noiseless and the means differ.
func CohenD(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	na, nb := float64(len(a)), float64(len(b))
	var pooled float64
	if na+nb > 2 {
		pooled = math.Sqrt(((na-1)*sa*sa + (nb-1)*sb*sb) / (na + nb - 2))
	}
	diff := ma - mb
	if pooled == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(sign(diff))
	}
	return diff / pooled
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Summary condenses one latency (or throughput) sample set.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CV   float64 `json:"cv"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// Summarize computes the Summary of xs (zero value for an empty slice).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	mean, std := MeanStd(xs)
	s := Summary{
		N: len(xs), Mean: mean, Std: std, CV: CV(xs),
		P50: Percentile(xs, 50), P95: Percentile(xs, 95), P99: Percentile(xs, 99),
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, v := range xs[1:] {
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	return s
}

// ScalingEfficiency relates measured throughput at a concurrency level to
// perfect linear scaling from a baseline point: qps / (baseQPS * conc /
// baseConc). 1.0 is ideal; the roll-off past the server's admission limit
// is the bounded-saturation behavior the serving benchmark demonstrates.
func ScalingEfficiency(baseConc int, baseQPS float64, conc int, qps float64) float64 {
	if baseConc <= 0 || baseQPS <= 0 || conc <= 0 {
		return math.NaN()
	}
	ideal := baseQPS * float64(conc) / float64(baseConc)
	return qps / ideal
}
