package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells with row and
// column labels, printable as aligned text. Experiments return Tables so the
// command-line tool and benchmarks share one renderer, and EXPERIMENTS.md
// can quote the output verbatim.
type Table struct {
	Title   string
	Note    string
	ColHead []string
	RowHead []string
	Cells   [][]string

	// Values carries the numeric cell contents (NaN for blanks) for
	// programmatic checks; indexed like Cells.
	Values [][]float64
}

// NewTable allocates a table with the given headers.
func NewTable(title string, rowHead, colHead []string) *Table {
	t := &Table{Title: title, ColHead: colHead, RowHead: rowHead}
	t.Cells = make([][]string, len(rowHead))
	t.Values = make([][]float64, len(rowHead))
	for i := range t.Cells {
		t.Cells[i] = make([]string, len(colHead))
		t.Values[i] = make([]float64, len(colHead))
		for j := range t.Cells[i] {
			t.Cells[i][j] = "-"
			t.Values[i][j] = math.NaN()
		}
	}
	return t
}

// Set stores a numeric cell, formatted with the given precision. NaN renders
// as "OOM" (the paper's blank bars are always memory failures here).
func (t *Table) Set(row, col int, v float64, format string) {
	t.Values[row][col] = v
	if math.IsNaN(v) {
		t.Cells[row][col] = "OOM"
		return
	}
	t.Cells[row][col] = fmt.Sprintf(format, v)
}

// SetText stores a preformatted cell with no numeric value.
func (t *Table) SetText(row, col int, s string) { t.Cells[row][col] = s }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.ColHead)+1)
	for _, r := range t.RowHead {
		widths[0] = max(widths[0], len(r))
	}
	for j, h := range t.ColHead {
		widths[j+1] = len(h)
		for i := range t.Cells {
			widths[j+1] = max(widths[j+1], len(t.Cells[i][j]))
		}
	}
	line := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[j], c))
		}
		sb.WriteByte('\n')
	}
	line(append([]string{""}, t.ColHead...))
	for i, r := range t.RowHead {
		line(append([]string{r}, t.Cells[i]...))
	}
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Value returns the numeric value at (rowLabel, colLabel), or NaN if absent.
func (t *Table) Value(rowLabel, colLabel string) float64 {
	for i, r := range t.RowHead {
		if r != rowLabel {
			continue
		}
		for j, c := range t.ColHead {
			if c == colLabel {
				return t.Values[i][j]
			}
		}
	}
	return math.NaN()
}

// JSON renders the table as a machine-readable document: NaN cells become
// null (JSON has no NaN), preserving the OOM semantics.
func (t *Table) JSON() ([]byte, error) {
	type doc struct {
		Title   string           `json:"title"`
		Note    string           `json:"note,omitempty"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}
	d := doc{Title: t.Title, Note: t.Note, Columns: t.ColHead}
	for i, r := range t.RowHead {
		row := map[string]any{"name": r}
		for j, c := range t.ColHead {
			v := t.Values[i][j]
			if math.IsNaN(v) {
				row[c] = nil
			} else {
				row[c] = v
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return json.MarshalIndent(d, "", "  ")
}
