package harness

import (
	"fmt"
	"math"

	"twoface/internal/baselines"
	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/gen"
)

// CommVolume is an extension experiment beyond the paper's figures: it
// measures the *actual* bytes each algorithm moves (counted by the cluster's
// transfer primitives, not by the cost model) and reports each algorithm's
// received volume relative to DS2's. This is the mechanism behind the
// paper's speedups made explicit: Two-Face wins exactly where it moves a
// small fraction of the dense input.
func (c Config) CommVolume(k int) *Table {
	cc := c.normalize()
	algos := []Algo{AlgoDS2, AlgoAllgather, AlgoAsyncFine, AlgoTwoFace}
	cols := make([]string, len(algos))
	for i, a := range algos {
		cols[i] = string(a)
	}
	t := NewTable(fmt.Sprintf("Extension: received data volume relative to DS2, K=%d, p=%d", k, cc.P),
		MatrixNames(), cols)
	for i, s := range gen.Specs() {
		w := cc.BuildWorkload(s)
		base, err := cc.runWithVolume(AlgoDS2, w, k)
		if err != nil || base == 0 {
			continue
		}
		for j, algo := range algos {
			vol, err := cc.runWithVolume(algo, w, k)
			if err != nil {
				t.Set(i, j, math.NaN(), "%.3f")
				continue
			}
			t.Set(i, j, float64(vol)/float64(base), "%.3f")
		}
	}
	t.Note = "Values are total bytes received across nodes, normalized to DS2 (which transfers essentially all of B to every node)."
	return t
}

// runWithVolume runs one algorithm and returns the cluster-wide bytes moved.
func (c Config) runWithVolume(algo Algo, w *Workload, k int) (int64, error) {
	cc := c.normalize()
	clu, err := cluster.New(cc.P, cc.Net())
	if err != nil {
		return 0, err
	}
	b := w.B(k)
	opts := baselines.Options{Workers: cc.Workers, MemBudgetElems: cc.MemBudget(), SkipCompute: true}
	switch algo {
	case AlgoDS2:
		_, err = baselines.DenseShift(w.A, b, clu, 2, opts)
	case AlgoAllgather:
		_, err = baselines.Allgather(w.A, b, clu, opts)
	case AlgoAsyncFine:
		_, err = baselines.AsyncFine(w.A, b, clu, w.W, opts)
	case AlgoTwoFace:
		params := core.Params{P: cc.P, K: k, W: w.W, Coef: cc.Coef(), MemBudgetElems: cc.MemBudget()}
		var prep *core.Prep
		prep, err = core.Preprocess(w.A, params)
		if err == nil {
			_, err = core.Exec(prep, b, clu, core.ExecOptions{SkipCompute: true})
		}
	default:
		return 0, fmt.Errorf("harness: CommVolume does not cover %q", algo)
	}
	if err != nil {
		return 0, err
	}
	return clu.TotalTransfer().TotalBytes(), nil
}
