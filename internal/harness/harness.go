// Package harness drives the paper's evaluation (section 7): it generates
// the benchmark matrices, runs every algorithm on the simulated cluster, and
// renders each table and figure of the paper as text. DESIGN.md's experiment
// index maps each paper artifact to a function here.
package harness

import (
	"errors"
	"fmt"
	"math"

	"twoface/internal/baselines"
	"twoface/internal/chaos"
	"twoface/internal/cluster"
	"twoface/internal/core"
	"twoface/internal/dense"
	"twoface/internal/gen"
	"twoface/internal/model"
	"twoface/internal/obs"
	"twoface/internal/sparse"
)

// paperScaleDivisor is the dimension ratio between the paper's matrices and
// this repository's registry at Scale=1.0 (see gen.Spec).
const paperScaleDivisor = 512

// Config selects the evaluation operating point. Zero values take defaults
// mirroring the paper's (scaled) setup.
type Config struct {
	Scale   float64 // matrix scale relative to the registry; default 1.0
	P       int     // nodes; default 8 (paper default: 32)
	Seed    uint64  // generator seed; default 42
	Workers int     // real goroutines per node for kernels; default 4
	// AsyncWorkers is the per-node goroutine count draining the one-sided
	// queue (wall-clock only); default 2.
	AsyncWorkers int
	// LegacyAsync runs Two-Face with the pre-aggregation one-sided path
	// (one get per async stripe, no row cache) — the fidelity toggle.
	LegacyAsync bool
	// Verify keeps the floating-point accumulation loops on so results can
	// be checked against the reference kernel. Off by default: the
	// experiments report modeled time, which is independent of the
	// arithmetic, and the test suite proves correctness separately.
	Verify bool
	// Chaos, when non-nil, runs every algorithm under this seeded fault
	// plan (compiled per node count, so one plan serves a p-sweep). Rank
	// indices beyond a particular run's node count are inert.
	Chaos *chaos.Plan
	// Recover switches crashed ranks from fail-clean aborts to checkpointed
	// fail-recover on the Two-Face executor (baselines stay fail-clean; a
	// crash there still aborts — see DESIGN.md section 12).
	Recover bool
	// CheckpointInterval is the virtual-time checkpoint cadence in seconds
	// under Recover; 0 picks the automatic ~2%-overhead cadence.
	CheckpointInterval float64
	// Listen, when non-empty, is the host:port of the live ops endpoint
	// (OpenMetrics /metrics, /report, /healthz, /debug/pprof) that StartOps
	// binds, so a long experiment sweep is scrapeable while it runs.
	Listen string
}

// StartOps starts the live ops HTTP server on c.Listen, exposing the
// default metrics registry. Returns nil (no server, no error) when Listen
// is empty. The caller owns the server and should Close it when the sweep
// finishes.
func (c Config) StartOps() (*obs.Server, error) { return obs.Serve(c.Listen) }

func (c Config) normalize() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.P == 0 {
		c.P = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.AsyncWorkers == 0 {
		c.AsyncWorkers = 2
	}
	return c
}

// machineScale is the fixed-overhead shrink factor for the simulated
// machine: our matrices are paper/(512/Scale) of the originals.
func (c Config) machineScale() float64 { return paperScaleDivisor / c.Scale }

// Net returns the simulated machine's network model at this config's scale.
func (c Config) Net() cluster.NetModel {
	return cluster.Default().Scaled(c.machineScale())
}

// Coef returns the classifier coefficients matched to the scaled machine —
// the ideal outcome of the paper's calibration step (section 6.2).
func (c Config) Coef() model.Coefficients {
	return core.CoefficientsFromNet(c.Net(), 8)
}

// MemBudget returns the per-node memory budget in float64 elements: the
// paper's 256 GiB nodes, scaled with the matrices.
func (c Config) MemBudget() int64 {
	return int64(float64(48<<20) * c.normalize().Scale)
}

// Algo names one of the compared algorithms (paper Table 4).
type Algo string

// The algorithm roster of the evaluation.
const (
	AlgoDS1         Algo = "DS1"
	AlgoDS2         Algo = "DS2"
	AlgoDS4         Algo = "DS4"
	AlgoDS8         Algo = "DS8"
	AlgoAllgather   Algo = "Allgather"
	AlgoAsyncCoarse Algo = "AsyncCoarse"
	AlgoAsyncFine   Algo = "AsyncFine"
	AlgoTwoFace     Algo = "TwoFace"
)

// FigureAlgos is the roster of Figures 7-9, in plot order.
var FigureAlgos = []Algo{AlgoAllgather, AlgoAsyncCoarse, AlgoAsyncFine, AlgoDS2, AlgoDS4, AlgoDS8, AlgoTwoFace}

// Outcome is one algorithm run on one workload.
type Outcome struct {
	Algo       Algo
	Modeled    float64 // modeled seconds (cluster makespan); the primary metric
	Breakdowns []cluster.Breakdown
	OOM        bool // the algorithm exceeded the per-node memory budget
	Err        error
	Prep       *core.PrepStats // Two-Face / AsyncFine only
}

// Workload is a generated matrix with its dense input, cached across
// algorithm runs.
type Workload struct {
	Spec gen.Spec
	A    *sparse.COO
	W    int32
	Bs   map[int]*dense.Matrix // per K
	seed uint64
}

// BuildWorkload generates the matrix for a spec at the config's scale.
func (c Config) BuildWorkload(spec gen.Spec) *Workload {
	cc := c.normalize()
	return &Workload{
		Spec: spec,
		A:    spec.Build(cc.Scale, cc.Seed),
		W:    spec.ScaledWidth(cc.Scale),
		Bs:   map[int]*dense.Matrix{},
		seed: cc.Seed,
	}
}

// B returns (building and caching on first use) the dense input for width k.
func (w *Workload) B(k int) *dense.Matrix {
	if b, ok := w.Bs[k]; ok {
		return b
	}
	b := dense.Random(int(w.A.NumCols), k, w.seed+uint64(k))
	w.Bs[k] = b
	return b
}

// Run executes one algorithm on a workload with the given K and node count,
// returning the outcome. Out-of-memory results are reported, not failed:
// they are the blank bars of the paper's figures.
func (c Config) Run(algo Algo, w *Workload, k, p int) Outcome {
	cc := c.normalize()
	out := Outcome{Algo: algo}
	clu, err := cluster.New(p, cc.Net())
	if err != nil {
		out.Err = err
		return out
	}
	if l := obs.ActiveLogger(); l != nil {
		clu.SetLogger(l)
	}
	if cc.Chaos != nil {
		inj, err := cc.Chaos.Injector(p)
		if err != nil {
			out.Err = err
			return out
		}
		clu.SetFaultInjector(inj)
	}
	clu.SetRecovery(cc.Recover)
	b := w.B(k)
	opts := baselines.Options{Workers: cc.Workers, MemBudgetElems: cc.MemBudget(), SkipCompute: !cc.Verify}

	var res *core.Result
	switch algo {
	case AlgoDS1, AlgoDS2, AlgoDS4, AlgoDS8:
		res, err = baselines.DenseShift(w.A, b, clu, dsFactor(algo), opts)
	case AlgoAllgather:
		res, err = baselines.Allgather(w.A, b, clu, opts)
	case AlgoAsyncCoarse:
		res, err = baselines.AsyncCoarse(w.A, b, clu, opts)
	case AlgoAsyncFine:
		res, err = c.runTwoFace(w, k, p, clu, ptr(1.0), &out)
	case AlgoTwoFace:
		res, err = c.runTwoFace(w, k, p, clu, nil, &out)
	default:
		out.Err = fmt.Errorf("harness: unknown algorithm %q", algo)
		return out
	}
	if err != nil {
		if isOOM(err) {
			out.OOM = true
		} else {
			out.Err = err
		}
		return out
	}
	out.Modeled = res.ModeledSeconds
	out.Breakdowns = res.Breakdowns
	return out
}

func (c Config) runTwoFace(w *Workload, k, p int, clu *cluster.Cluster, force *float64, out *Outcome) (*core.Result, error) {
	cc := c.normalize()
	params := core.Params{
		P: p, K: k, W: w.W,
		Coef:            cc.Coef(),
		ForceSplit:      force,
		MemBudgetElems:  cc.MemBudget(),
		LegacyAsyncGets: cc.LegacyAsync,
	}
	prep, err := core.Preprocess(w.A, params)
	if err != nil {
		return nil, err
	}
	out.Prep = &prep.Stats
	return core.Exec(prep, w.B(k), clu, core.ExecOptions{
		AsyncWorkers: cc.AsyncWorkers, SyncWorkers: cc.Workers,
		SkipCompute: !cc.Verify, CheckpointInterval: cc.CheckpointInterval,
	})
}

func dsFactor(a Algo) int {
	switch a {
	case AlgoDS1:
		return 1
	case AlgoDS2:
		return 2
	case AlgoDS4:
		return 4
	case AlgoDS8:
		return 8
	}
	panic(fmt.Sprintf("harness: %q is not a dense-shifting algorithm", a))
}

func isOOM(err error) bool { return errors.Is(err, baselines.ErrOutOfMemory) }

func ptr[T any](v T) *T { return &v }

// Speedup returns base/x treating OOM or error as NaN (a blank figure bar).
func Speedup(base, x Outcome) float64 {
	if base.OOM || x.OOM || base.Err != nil || x.Err != nil || x.Modeled == 0 {
		return math.NaN()
	}
	return base.Modeled / x.Modeled
}
