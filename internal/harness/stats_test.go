package harness

import (
	"math"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // unsorted on purpose; must not mutate
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v, want 5", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("P25 = %v, want 2 (closest-rank interpolation)", got)
	}
	if got := Percentile([]float64{1, 2}, 75); got != 1.75 {
		t.Fatalf("P75 of {1,2} = %v, want 1.75", got)
	}
	if xs[0] != 5 {
		t.Fatal("Percentile sorted its input in place")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("P50 of empty sample should be NaN")
	}
}

func TestMeanStdCV(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	if want := math.Sqrt(32.0 / 7.0); math.Abs(std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v (sample, n-1)", std, want)
	}
	if cv := CV([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(cv-std/5) > 1e-12 {
		t.Fatalf("CV = %v, want %v", cv, std/5)
	}
	if _, std := MeanStd([]float64{3}); std != 0 {
		t.Fatalf("single-sample std = %v, want 0", std)
	}
}

func TestCohenD(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10}
	b := []float64{14, 15, 13, 14, 14}
	d := CohenD(b, a)
	if d < 3 { // means 4 apart, pooled std ~0.7 — a huge effect
		t.Fatalf("Cohen's d = %v, want a large positive effect", d)
	}
	if got := CohenD(a, a); got != 0 {
		t.Fatalf("self effect = %v, want 0", got)
	}
	if got := CohenD([]float64{1, 1}, []float64{2, 2}); !math.IsInf(got, -1) {
		t.Fatalf("noiseless separated samples = %v, want -Inf", got)
	}
	if !math.IsNaN(CohenD(nil, a)) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P99 <= s.P95 || s.P95 <= s.P50 {
		t.Fatalf("tail percentiles out of order: %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestScalingEfficiency(t *testing.T) {
	if got := ScalingEfficiency(1, 100, 4, 400); got != 1 {
		t.Fatalf("perfect scaling = %v, want 1", got)
	}
	if got := ScalingEfficiency(1, 100, 4, 200); got != 0.5 {
		t.Fatalf("half scaling = %v, want 0.5", got)
	}
	if !math.IsNaN(ScalingEfficiency(0, 0, 4, 200)) {
		t.Fatal("degenerate baseline should give NaN")
	}
}
