package harness

import (
	"fmt"
	"math"

	"twoface/internal/gen"
)

// SeedSweep is an extension experiment: it repeats the Figure 8 headline
// comparison (Two-Face vs DS2) across several generator seeds and reports
// the mean, min, and max speedup per matrix. The paper averages five runs of
// the same matrix; here the matrices themselves are synthetic draws, so the
// spread across seeds is the reproduction's error bar — it shows the shape
// claims are properties of the matrix *class*, not of one lucky draw.
func (c Config) SeedSweep(k int, seeds []uint64) *Table {
	cc := c.normalize()
	if len(seeds) == 0 {
		seeds = []uint64{42, 43, 44}
	}
	t := NewTable(
		fmt.Sprintf("Extension: Two-Face speedup over DS2 across %d generator seeds, K=%d, p=%d", len(seeds), k, cc.P),
		MatrixNames(),
		[]string{"mean", "min", "max"},
	)
	for i, s := range gen.Specs() {
		var sum float64
		min, max := math.Inf(1), math.Inf(-1)
		n := 0
		for _, seed := range seeds {
			cfg := cc
			cfg.Seed = seed
			w := cfg.BuildWorkload(s)
			ds := cfg.Run(AlgoDS2, w, k, cfg.P)
			tf := cfg.Run(AlgoTwoFace, w, k, cfg.P)
			sp := Speedup(ds, tf)
			if math.IsNaN(sp) {
				continue
			}
			sum += sp
			min = math.Min(min, sp)
			max = math.Max(max, sp)
			n++
		}
		if n == 0 {
			continue
		}
		t.Set(i, 0, sum/float64(n), "%.2f")
		t.Set(i, 1, min, "%.2f")
		t.Set(i, 2, max, "%.2f")
	}
	t.Note = "Speedup > 1: Two-Face wins. Spread across seeds bounds the generator-draw variance of the shape claims."
	return t
}
