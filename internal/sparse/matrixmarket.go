package sparse

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Matrix Market coordinate-format I/O (paper section 7.3: the original sparse
// matrix is read "in a textual Matrix Market format"). The reader supports
// the common subset used by SuiteSparse downloads:
//
//	%%MatrixMarket matrix coordinate {real|integer|pattern} {general|symmetric}
//
// Pattern entries get value 1.0. Symmetric matrices are expanded: each
// off-diagonal entry (i, j) also yields (j, i). Indices are 1-based on disk
// and 0-based in memory.

// ReadMatrixMarket parses a Matrix Market stream into a COO matrix.
func ReadMatrixMarket(r io.Reader) (*COO, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", fields[2])
	}
	valType := fields[3]
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field type %q", valType)
	}
	symmetry := fields[4]
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var sizeLine string
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: MatrixMarket missing size line: %w", err)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			if err != nil {
				return nil, fmt.Errorf("sparse: MatrixMarket missing size line: %w", err)
			}
			continue
		}
		sizeLine = trimmed
		break
	}
	var rows, cols int32
	var nnz int64
	if _, err := fmt.Sscan(sizeLine, &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", sizeLine, err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket sizes in %q", sizeLine)
	}
	if symmetry == "symmetric" && rows != cols {
		return nil, fmt.Errorf("sparse: symmetric MatrixMarket matrix must be square, got %dx%d", rows, cols)
	}

	// The size line is untrusted input: cap the preallocation and let the
	// slice grow as entries actually parse.
	capHint := nnz
	if symmetry == "symmetric" {
		capHint *= 2
	}
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	m := NewCOO(rows, cols, int(capHint))
	for count := int64(0); count < nnz; {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			if err != nil {
				return nil, fmt.Errorf("sparse: MatrixMarket truncated after %d of %d entries", count, nnz)
			}
			continue
		}
		f := strings.Fields(trimmed)
		want := 3
		if valType == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", trimmed)
		}
		i, err1 := strconv.ParseInt(f[0], 10, 32)
		j, err2 := strconv.ParseInt(f[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket indices in %q", trimmed)
		}
		v := 1.0
		if valType != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket value in %q: %w", trimmed, err)
			}
		}
		row, col := int32(i-1), int32(j-1)
		if row < 0 || row >= rows || col < 0 || col >= cols {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		m.Append(row, col, v)
		if symmetry == "symmetric" && row != col {
			m.Append(col, row, v)
		}
		count++
	}
	return m, nil
}

// WriteMatrixMarket writes m as "coordinate real general" with 1-based
// indices, in the entries' current order.
func WriteMatrixMarket(w io.Writer, m *COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.NumRows, m.NumCols, len(m.Entries)); err != nil {
		return err
	}
	for _, e := range m.Entries {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.Row+1, e.Col+1, e.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixMarketFile reads a Matrix Market file from disk. Files ending
// in ".gz" are transparently gunzipped (SuiteSparse distributes matrices
// gzip-compressed).
func ReadMatrixMarketFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("sparse: opening gzip %s: %w", path, err)
		}
		defer gz.Close()
		return ReadMatrixMarket(gz)
	}
	return ReadMatrixMarket(f)
}

// WriteMatrixMarketFile writes m to path in Matrix Market format.
func WriteMatrixMarketFile(path string, m *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMatrixMarket(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
