package sparse

import (
	"fmt"
	"sync"

	"twoface/internal/dense"
)

// Mul computes C = A x B with a sequential CSR kernel. It is the reference
// implementation every distributed algorithm is checked against.
func (m *CSR) Mul(b *dense.Matrix) (*dense.Matrix, error) {
	if int(m.NumCols) != b.Rows {
		return nil, fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	c := dense.New(int(m.NumRows), b.Cols)
	m.MulInto(b, c, 0, int(m.NumRows))
	return c, nil
}

// MulInto accumulates rows [rowLo, rowHi) of A x B into the matching rows of
// c, which must already be shaped NumRows x b.Cols. It does not zero c first.
func (m *CSR) MulInto(b *dense.Matrix, c *dense.Matrix, rowLo, rowHi int) {
	k := b.Cols
	for r := rowLo; r < rowHi; r++ {
		crow := c.Row(r)
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			v := m.Val[i]
			brow := b.Data[int(m.Col[i])*k : (int(m.Col[i])+1)*k]
			for j := 0; j < k; j++ {
				crow[j] += v * brow[j]
			}
		}
	}
}

// MulParallel computes C = A x B using the given number of worker
// goroutines, splitting rows into contiguous chunks. Results are identical
// to Mul because each output row is written by exactly one worker.
func (m *CSR) MulParallel(b *dense.Matrix, workers int) (*dense.Matrix, error) {
	if int(m.NumCols) != b.Rows {
		return nil, fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	if workers < 1 {
		workers = 1
	}
	c := dense.New(int(m.NumRows), b.Cols)
	n := int(m.NumRows)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		m.MulInto(b, c, 0, n)
		return c, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.MulInto(b, c, lo, hi)
		}()
	}
	wg.Wait()
	return c, nil
}

// MulIntoParallel accumulates A x B into c (shaped NumRows x b.Cols) using
// the given number of worker goroutines over contiguous row chunks. Unlike
// MulParallel it writes into an existing matrix without zeroing it, so
// callers can accumulate multiple partial products.
func (m *CSR) MulIntoParallel(b *dense.Matrix, c *dense.Matrix, workers int) {
	n := int(m.NumRows)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		m.MulInto(b, c, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.MulInto(b, c, lo, hi)
		}()
	}
	wg.Wait()
}

// MulCOO computes C = A x B directly from coordinate format. It is slower
// than the CSR kernel and exists as an independent oracle for tests.
func (m *COO) MulCOO(b *dense.Matrix) (*dense.Matrix, error) {
	if int(m.NumCols) != b.Rows {
		return nil, fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	c := dense.New(int(m.NumRows), b.Cols)
	for _, e := range m.Entries {
		c.AddScaledRow(int(e.Row), e.Val, b.Row(int(e.Col)))
	}
	return c, nil
}
