package sparse

import (
	"fmt"
	"sync"

	"twoface/internal/dense"
	"twoface/internal/kernels"
)

// Mul computes C = A x B with a sequential CSR kernel. It is the reference
// implementation every distributed algorithm is checked against.
func (m *CSR) Mul(b *dense.Matrix) (*dense.Matrix, error) {
	if int(m.NumCols) != b.Rows {
		return nil, fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	c := dense.New(int(m.NumRows), b.Cols)
	m.MulInto(b, c, 0, int(m.NumRows))
	return c, nil
}

// MulInto accumulates rows [rowLo, rowHi) of A x B into the matching rows of
// c, which must already be shaped NumRows x b.Cols. It does not zero c first.
//
// Nonzeros pair up through the dual-source tiled kernel, which keeps the
// output-row tile in registers across both multiply-adds; Axpy2 rounds
// exactly like the two sequential Axpys it replaces, so results are
// unchanged.
func (m *CSR) MulInto(b *dense.Matrix, c *dense.Matrix, rowLo, rowHi int) {
	k := b.Cols
	for r := rowLo; r < rowHi; r++ {
		crow := c.Row(r)
		i, end := m.RowPtr[r], m.RowPtr[r+1]
		for ; i+1 < end; i += 2 {
			c0, c1 := int(m.Col[i]), int(m.Col[i+1])
			kernels.Axpy2(m.Val[i], b.Data[c0*k:(c0+1)*k], m.Val[i+1], b.Data[c1*k:(c1+1)*k], crow)
		}
		if i < end {
			col := int(m.Col[i])
			kernels.Axpy(m.Val[i], b.Data[col*k:(col+1)*k], crow)
		}
	}
}

// MulParallel computes C = A x B using the given number of worker
// goroutines, splitting rows into contiguous chunks. Results are identical
// to Mul because each output row is written by exactly one worker.
func (m *CSR) MulParallel(b *dense.Matrix, workers int) (*dense.Matrix, error) {
	if int(m.NumCols) != b.Rows {
		return nil, fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	if workers < 1 {
		workers = 1
	}
	c := dense.New(int(m.NumRows), b.Cols)
	n := int(m.NumRows)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		m.MulInto(b, c, 0, n)
		return c, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.MulInto(b, c, lo, hi)
		}()
	}
	wg.Wait()
	return c, nil
}

// MulIntoParallel accumulates A x B into c using the given number of worker
// goroutines over contiguous row chunks. Unlike MulParallel it writes into
// an existing matrix without zeroing it, so callers can accumulate multiple
// partial products. It validates all three shapes first: an out-of-shape c
// would otherwise be silently corrupted through the row arithmetic.
func (m *CSR) MulIntoParallel(b *dense.Matrix, c *dense.Matrix, workers int) error {
	if int(m.NumCols) != b.Rows {
		return fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	if c.Rows != int(m.NumRows) || c.Cols != b.Cols {
		return fmt.Errorf("sparse: output is %dx%d, want %dx%d", c.Rows, c.Cols, m.NumRows, b.Cols)
	}
	n := int(m.NumRows)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		m.MulInto(b, c, 0, n)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.MulInto(b, c, lo, hi)
		}()
	}
	wg.Wait()
	return nil
}

// MulCOO computes C = A x B directly from coordinate format. It is slower
// than the CSR kernel and exists as an independent oracle for tests.
func (m *COO) MulCOO(b *dense.Matrix) (*dense.Matrix, error) {
	if int(m.NumCols) != b.Rows {
		return nil, fmt.Errorf("sparse: shape mismatch %dx%d x %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols)
	}
	c := dense.New(int(m.NumRows), b.Cols)
	for _, e := range m.Entries {
		c.AddScaledRow(int(e.Row), e.Val, b.Row(int(e.Col)))
	}
	return c, nil
}
