package sparse

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func coosEqual(a, b *COO) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

func TestMatrixMarketRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(12, 17, 40, seed)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		return coosEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 2\n1 2\n3 3\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 2 || m.Entries[0].Val != 1 || m.Entries[0].Row != 0 || m.Entries[0].Col != 1 {
		t.Fatalf("pattern parse: %+v", m.Entries)
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n2 2 7.0\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal expands to 2 entries, diagonal stays 1 -> 3 total.
	if len(m.Entries) != 3 {
		t.Fatalf("symmetric expansion: %d entries, want 3", len(m.Entries))
	}
}

func TestMatrixMarketInteger(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 42\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Entries[0].Val != 42 {
		t.Fatalf("integer value = %v", m.Entries[0].Val)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"not a header\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n1 1\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\nnot a size line\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",     // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",     // truncated
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",         // missing value
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y 1.0\n",     // bad indices
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 notanum\n", // bad value
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n",             // negative size
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d should have failed: %q", i, in)
		}
	}
}

func TestMatrixMarketSkipsCommentsAndBlanks(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n%a\n\n%b\n2 2 1\n\n% mid comment\n2 2 3.5\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 1 || m.Entries[0].Val != 3.5 {
		t.Fatalf("parse: %+v", m.Entries)
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(30, 30, 120, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return coosEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	m := randomCOO(5, 5, 10, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncated body.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-5])); err == nil {
		t.Fatal("truncated body should fail")
	}
	// Truncated header.
	if _, err := ReadBinary(bytes.NewReader(good[:10])); err == nil {
		t.Fatal("truncated header should fail")
	}
	// Out-of-range entry: flip a column index beyond NumCols.
	bad2 := append([]byte{}, good...)
	bad2[8+16+4] = 0xFF // first record's col low byte
	bad2[8+16+5] = 0xFF
	bad2[8+16+6] = 0xFF
	bad2[8+16+7] = 0x7F
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Fatal("out-of-range entry should fail")
	}
}

func TestFileRoundtrips(t *testing.T) {
	dir := t.TempDir()
	m := randomCOO(8, 8, 20, 2)

	mmPath := filepath.Join(dir, "m.mtx")
	if err := WriteMatrixMarketFile(mmPath, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarketFile(mmPath)
	if err != nil {
		t.Fatal(err)
	}
	if !coosEqual(m, back) {
		t.Fatal("MatrixMarket file roundtrip mismatch")
	}

	binPath := filepath.Join(dir, "m.bin")
	if err := WriteBinaryFile(binPath, m); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadBinaryFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !coosEqual(m, back2) {
		t.Fatal("binary file roundtrip mismatch")
	}

	if _, err := ReadMatrixMarketFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := ReadBinaryFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestMatrixMarketGzipFile(t *testing.T) {
	dir := t.TempDir()
	m := randomCOO(10, 10, 30, 3)
	path := filepath.Join(dir, "m.mtx.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if err := WriteMatrixMarket(gz, m); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !coosEqual(m, back) {
		t.Fatal("gzip roundtrip mismatch")
	}
	// A .gz path with non-gzip bytes must fail cleanly.
	badPath := filepath.Join(dir, "bad.mtx.gz")
	if err := WriteMatrixMarketFile(badPath, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMatrixMarketFile(badPath); err == nil {
		t.Fatal("non-gzip .gz content should fail")
	}
}
