package sparse

import (
	"testing"
	"testing/quick"

	"twoface/internal/dense"
)

func TestMulTiny(t *testing.T) {
	// A = [[2, 0], [0, 3]], B = [[1, 2], [3, 4]] -> C = [[2, 4], [9, 12]]
	a := NewCOO(2, 2, 2)
	a.Append(0, 0, 2)
	a.Append(1, 1, 3)
	b, _ := dense.FromData(2, 2, []float64{1, 2, 3, 4})
	c, err := a.ToCSR().Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 9, 12}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("C = %v, want %v", c.Data, want)
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewCOO(2, 3, 0)
	b := dense.New(2, 2)
	if _, err := a.ToCSR().Mul(b); err == nil {
		t.Fatal("shape mismatch should error")
	}
	if _, err := a.MulCOO(b); err == nil {
		t.Fatal("shape mismatch should error (COO)")
	}
	if _, err := a.ToCSR().MulParallel(b, 4); err == nil {
		t.Fatal("shape mismatch should error (parallel)")
	}
}

func TestMulAgainstCOOOracle(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(15, 12, 60, seed)
		b := dense.Random(12, 7, seed)
		c1, err1 := m.ToCSR().Mul(b)
		c2, err2 := m.MulCOO(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1.AlmostEqual(c2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMulParallelMatchesSequential(t *testing.T) {
	m := randomCOO(200, 150, 3000, 11)
	b := dense.Random(150, 16, 3)
	csr := m.ToCSR()
	seq, _ := csr.Mul(b)
	for _, workers := range []int{1, 2, 4, 7, 300} {
		par, err := csr.MulParallel(b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := seq.MaxAbsDiff(par); d != 0 {
			t.Fatalf("workers=%d: parallel differs by %v", workers, d)
		}
	}
}

func TestMulParallelZeroWorkers(t *testing.T) {
	m := randomCOO(10, 10, 20, 12)
	b := dense.Random(10, 3, 4)
	if _, err := m.ToCSR().MulParallel(b, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMulEmptyMatrix(t *testing.T) {
	m := NewCOO(5, 5, 0)
	b := dense.Random(5, 4, 5)
	c, err := m.ToCSR().Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.FrobeniusNorm() != 0 {
		t.Fatal("empty A should give zero C")
	}
}

func TestMulIntoAccumulates(t *testing.T) {
	m := randomCOO(6, 6, 12, 13)
	b := dense.Random(6, 3, 6)
	csr := m.ToCSR()
	c := dense.New(6, 3)
	csr.MulInto(b, c, 0, 6)
	csr.MulInto(b, c, 0, 6) // accumulate twice
	once, _ := csr.Mul(b)
	once.Scale(2)
	if !c.AlmostEqual(once, 1e-12) {
		t.Fatal("MulInto should accumulate, not overwrite")
	}
}

func TestMulIntoParallelAccumulates(t *testing.T) {
	m := randomCOO(80, 60, 900, 21)
	b := dense.Random(60, 5, 22)
	csr := m.ToCSR()
	want, _ := csr.Mul(b)
	for _, workers := range []int{1, 3, 200} {
		c := dense.New(80, 5)
		if err := csr.MulIntoParallel(b, c, workers); err != nil {
			t.Fatal(err)
		}
		if d, _ := c.MaxAbsDiff(want); d != 0 {
			t.Fatalf("workers=%d: differs by %v", workers, d)
		}
		// Accumulation semantics: a second call doubles.
		if err := csr.MulIntoParallel(b, c, workers); err != nil {
			t.Fatal(err)
		}
		doubled := want.Clone()
		doubled.Scale(2)
		if !c.AlmostEqual(doubled, 1e-12) {
			t.Fatalf("workers=%d: second call did not accumulate", workers)
		}
	}
}

func TestMulIntoParallelValidatesShapes(t *testing.T) {
	m := randomCOO(8, 6, 20, 31)
	csr := m.ToCSR()
	b := dense.Random(6, 4, 32)
	// Mul/MulParallel already reject a bad B; MulIntoParallel must too.
	if err := csr.MulIntoParallel(dense.Random(5, 4, 33), dense.New(8, 4), 2); err == nil {
		t.Fatal("B with wrong row count should error")
	}
	// A mis-shaped output used to be silently corrupted.
	for _, c := range []*dense.Matrix{dense.New(7, 4), dense.New(8, 3), dense.New(1, 1)} {
		if err := csr.MulIntoParallel(b, c, 2); err == nil {
			t.Fatalf("output %dx%d should error", c.Rows, c.Cols)
		}
	}
	if err := csr.MulIntoParallel(b, dense.New(8, 4), 2); err != nil {
		t.Fatalf("well-shaped call failed: %v", err)
	}
}
