package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"twoface/internal/dense"
)

func TestCSCRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(25, 18, 120, seed)
		m.Dedup()
		back := m.ToCSC().ToCOO()
		back.SortRowMajor()
		m.SortRowMajor()
		if len(back.Entries) != len(m.Entries) {
			return false
		}
		for i := range m.Entries {
			if m.Entries[i] != back.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSCValidate(t *testing.T) {
	m := randomCOO(12, 12, 50, 3).ToCSC()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Row) > 0 {
		m.Row[0] = 99
		if err := m.Validate(); err == nil {
			t.Fatal("out-of-range row should fail")
		}
	}
}

func TestCSCColumnsSortedByRow(t *testing.T) {
	m := randomCOO(40, 30, 400, 4)
	csc := m.ToCSC()
	for c := int32(0); c < csc.NumCols; c++ {
		for i := csc.ColPtr[c] + 1; i < csc.ColPtr[c+1]; i++ {
			if csc.Row[i] < csc.Row[i-1] {
				t.Fatalf("column %d rows not ascending", c)
			}
		}
	}
}

func TestCSCAgainstCSRTranspose(t *testing.T) {
	// CSC of A holds the same data as CSR of A^T.
	m := randomCOO(20, 25, 150, 5)
	m.Dedup()
	csc := m.ToCSC()
	csrT := m.Transpose().ToCSR()
	if csc.NNZ() != csrT.NNZ() {
		t.Fatal("nnz mismatch")
	}
	for c := int32(0); c < csc.NumCols; c++ {
		if csc.ColPtr[c] != csrT.RowPtr[c] {
			t.Fatalf("pointer mismatch at %d", c)
		}
	}
	for i := range csc.Row {
		if csc.Row[i] != csrT.Col[i] || csc.Val[i] != csrT.Val[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

// shuffledBanded builds a banded matrix and destroys its ordering with a
// random symmetric permutation.
func shuffledBanded(t *testing.T, n int32, band int32, seed uint64) (*COO, *COO) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	banded := NewCOO(n, n, 0)
	for r := int32(0); r < n; r++ {
		banded.Append(r, r, 1)
		for k := 0; k < 4; k++ {
			c := r + rng.Int32N(2*band+1) - band
			if c >= 0 && c < n {
				banded.Append(r, c, 1)
			}
		}
	}
	banded.Dedup()
	shufflePerm := make([]int32, n)
	for i := range shufflePerm {
		shufflePerm[i] = int32(i)
	}
	rng.Shuffle(int(n), func(i, j int) { shufflePerm[i], shufflePerm[j] = shufflePerm[j], shufflePerm[i] })
	shuffled, err := banded.PermuteSymmetric(shufflePerm)
	if err != nil {
		t.Fatal(err)
	}
	return banded, shuffled
}

func TestRCMRecoversBandedness(t *testing.T) {
	banded, shuffled := shuffledBanded(t, 300, 6, 7)
	if shuffled.Bandwidth() < 100 {
		t.Fatalf("shuffle did not destroy bandwidth: %d", shuffled.Bandwidth())
	}
	perm, err := RCM(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := shuffled.PermuteSymmetric(perm)
	if err != nil {
		t.Fatal(err)
	}
	if got, orig := reordered.Bandwidth(), banded.Bandwidth(); got > 4*orig {
		t.Fatalf("RCM bandwidth %d, original %d, shuffled %d", got, orig, shuffled.Bandwidth())
	}
}

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(60, 60, 200, seed)
		perm, err := RCM(m)
		if err != nil {
			return false
		}
		seen := make([]bool, 60)
		for _, p := range perm {
			if p < 0 || p >= 60 || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two disjoint cliques plus isolated vertices must all be covered.
	m := NewCOO(10, 10, 0)
	for _, grp := range [][]int32{{0, 1, 2}, {5, 6, 7}} {
		for _, a := range grp {
			for _, b := range grp {
				if a != b {
					m.Append(a, b, 1)
				}
			}
		}
	}
	perm, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 10 {
		t.Fatalf("perm length %d", len(perm))
	}
}

func TestRCMErrors(t *testing.T) {
	if _, err := RCM(NewCOO(3, 4, 0)); err == nil {
		t.Fatal("non-square should fail")
	}
}

func TestPermuteSymmetricValidation(t *testing.T) {
	m := randomCOO(5, 5, 10, 9)
	if _, err := m.PermuteSymmetric([]int32{0, 1, 2}); err == nil {
		t.Fatal("short permutation should fail")
	}
	if _, err := m.PermuteSymmetric([]int32{0, 1, 2, 3, 3}); err == nil {
		t.Fatal("repeated index should fail")
	}
	if _, err := m.PermuteSymmetric([]int32{0, 1, 2, 3, 9}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if _, err := randomCOO(4, 5, 6, 1).PermuteSymmetric([]int32{0, 1, 2, 3}); err == nil {
		t.Fatal("non-square should fail")
	}
}

func TestPermuteSymmetricPreservesSpMM(t *testing.T) {
	// (P A P^T)(P B) = P (A B): permuting consistently permutes the result.
	m := randomCOO(30, 30, 150, 11)
	m.Dedup()
	perm, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := m.PermuteSymmetric(perm)
	if err != nil {
		t.Fatal(err)
	}
	// Structural check: nnz and value multiset preserved.
	if pm.NNZ() != m.NNZ() {
		t.Fatal("permutation changed nnz")
	}
	if pm.Bandwidth() == 0 && m.NNZ() > 30 {
		t.Fatal("suspicious zero bandwidth")
	}
}

func TestBandwidth(t *testing.T) {
	m := NewCOO(10, 10, 0)
	if m.Bandwidth() != 0 {
		t.Fatal("empty matrix bandwidth should be 0")
	}
	m.Append(2, 7, 1)
	m.Append(8, 8, 1)
	if m.Bandwidth() != 5 {
		t.Fatalf("Bandwidth = %d, want 5", m.Bandwidth())
	}
}

func TestSDDMMReferenceInSparsePackage(t *testing.T) {
	m := randomCOO(15, 12, 40, 31)
	x := dense.Random(15, 3, 1)
	y := dense.Random(12, 3, 2)
	out, err := m.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range out.Entries {
		var want float64
		for k := 0; k < 3; k++ {
			want += x.At(int(m.Entries[i].Row), k) * y.At(int(m.Entries[i].Col), k)
		}
		want *= m.Entries[i].Val
		if d := e.Val - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("entry %d = %v, want %v", i, e.Val, want)
		}
	}
}
