package sparse

import (
	"fmt"
	"sort"
)

// Reverse Cuthill-McKee reordering. Locality under 1D partitioning is what
// decides how much of the dense input crosses the network: matrices whose
// nonzeros hug the diagonal (queen, stokes) are Two-Face's best cases.
// RCM is the classic symmetric permutation that pulls a scattered matrix
// toward banded form, so it serves as a locality-restoring preprocessing
// pass for matrices whose natural ordering is unfavourable.

// RCM returns a permutation `perm` (newIndex = perm[oldIndex]) computed by
// reverse Cuthill-McKee over the symmetrized structure of the square matrix
// m: breadth-first traversal from a minimum-degree vertex of each connected
// component, neighbours visited in ascending degree, final order reversed.
func RCM(m *COO) ([]int32, error) {
	if m.NumRows != m.NumCols {
		return nil, fmt.Errorf("sparse: RCM needs a square matrix, got %dx%d", m.NumRows, m.NumCols)
	}
	n := m.NumRows
	// Symmetrized adjacency in CSR-ish arrays (self-loops dropped).
	deg := make([]int32, n)
	for _, e := range m.Entries {
		if e.Row != e.Col {
			deg[e.Row]++
			deg[e.Col]++
		}
	}
	ptr := make([]int64, n+1)
	for i := int32(0); i < n; i++ {
		ptr[i+1] = ptr[i] + int64(deg[i])
	}
	adj := make([]int32, ptr[n])
	next := make([]int64, n)
	copy(next, ptr[:n])
	for _, e := range m.Entries {
		if e.Row != e.Col {
			adj[next[e.Row]] = e.Col
			next[e.Row]++
			adj[next[e.Col]] = e.Row
			next[e.Col]++
		}
	}
	// Dedup each vertex's neighbour list (duplicates arise from symmetric
	// input or repeated entries).
	compact := make([]int64, n+1)
	w := int64(0)
	for i := int32(0); i < n; i++ {
		lo, hi := ptr[i], ptr[i+1]
		nbrs := adj[lo:hi]
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		compact[i] = w
		for j, v := range nbrs {
			if j > 0 && v == nbrs[j-1] {
				continue
			}
			adj[w] = v
			w++
		}
	}
	compact[n] = w
	adj = adj[:w]
	for i := int32(0); i < n; i++ {
		deg[i] = int32(compact[i+1] - compact[i])
	}

	order := make([]int32, 0, n)
	visited := make([]bool, n)
	// Process components from globally ascending degree so each BFS starts
	// pseudo-peripherally.
	byDegree := make([]int32, n)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.Slice(byDegree, func(a, b int) bool {
		if deg[byDegree[a]] != deg[byDegree[b]] {
			return deg[byDegree[a]] < deg[byDegree[b]]
		}
		return byDegree[a] < byDegree[b]
	})
	queue := make([]int32, 0, n)
	for _, start := range byDegree {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := adj[compact[v]:compact[v+1]]
			// Stable ascending-degree visit order.
			fresh := make([]int32, 0, len(nbrs))
			for _, u := range nbrs {
				if !visited[u] {
					visited[u] = true
					fresh = append(fresh, u)
				}
			}
			sort.Slice(fresh, func(a, b int) bool {
				if deg[fresh[a]] != deg[fresh[b]] {
					return deg[fresh[a]] < deg[fresh[b]]
				}
				return fresh[a] < fresh[b]
			})
			queue = append(queue, fresh...)
		}
	}
	// Reverse: perm[old] = new index.
	perm := make([]int32, n)
	for newIdx, old := range order {
		perm[old] = n - 1 - int32(newIdx)
	}
	return perm, nil
}

// PermuteSymmetric returns the matrix with rows and columns relabelled by
// perm (newIndex = perm[oldIndex]); values are unchanged.
func (m *COO) PermuteSymmetric(perm []int32) (*COO, error) {
	if m.NumRows != m.NumCols {
		return nil, fmt.Errorf("sparse: symmetric permutation needs a square matrix")
	}
	if len(perm) != int(m.NumRows) {
		return nil, fmt.Errorf("sparse: permutation length %d for %d rows", len(perm), m.NumRows)
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || int(p) >= len(perm) || seen[p] {
			return nil, fmt.Errorf("sparse: not a permutation")
		}
		seen[p] = true
	}
	out := &COO{NumRows: m.NumRows, NumCols: m.NumCols, Entries: make([]NZ, len(m.Entries))}
	for i, e := range m.Entries {
		out.Entries[i] = NZ{Row: perm[e.Row], Col: perm[e.Col], Val: e.Val}
	}
	return out, nil
}

// Bandwidth returns max |row - col| over the stored entries (0 for empty
// matrices) — the quantity RCM minimizes heuristically.
func (m *COO) Bandwidth() int32 {
	var bw int32
	for _, e := range m.Entries {
		d := e.Row - e.Col
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw
}
