// Package sparse provides the sparse-matrix formats, reference SpMM kernels,
// and file I/O that every distributed algorithm in this repository builds on.
//
// The central type is COO, a coordinate-format list of nonzeros. The
// distributed algorithms reorder COO entries into the paper's modified-COO
// layouts (row-major row panels for synchronous work, column-major stripes
// for asynchronous work); CSR is provided for the bulk local kernels used by
// the sparsity-unaware baselines.
//
// Row and column indices are int32: the paper's largest matrix (friendster)
// has 65.6M rows, comfortably within range, and 12-byte nonzeros keep the
// memory footprint of billion-edge matrices tractable.
package sparse

import (
	"fmt"
	"sort"
)

// NZ is a single nonzero element of a sparse matrix.
type NZ struct {
	Row int32
	Col int32
	Val float64
}

// COO is a sparse matrix in coordinate format. Entries may be in any order
// unless a function documents an ordering requirement.
type COO struct {
	NumRows int32
	NumCols int32
	Entries []NZ
}

// NewCOO returns an empty matrix with the given shape and capacity hint.
func NewCOO(rows, cols int32, capHint int) *COO {
	return &COO{NumRows: rows, NumCols: cols, Entries: make([]NZ, 0, capHint)}
}

// NNZ returns the number of stored entries.
func (m *COO) NNZ() int { return len(m.Entries) }

// Append adds a nonzero without validation. Call Validate before relying on
// index bounds.
func (m *COO) Append(row, col int32, val float64) {
	m.Entries = append(m.Entries, NZ{Row: row, Col: col, Val: val})
}

// Validate checks that every entry is inside the matrix bounds.
func (m *COO) Validate() error {
	if m.NumRows < 0 || m.NumCols < 0 {
		return fmt.Errorf("sparse: negative shape %dx%d", m.NumRows, m.NumCols)
	}
	for i, e := range m.Entries {
		if e.Row < 0 || e.Row >= m.NumRows || e.Col < 0 || e.Col >= m.NumCols {
			return fmt.Errorf("sparse: entry %d at (%d,%d) outside %dx%d", i, e.Row, e.Col, m.NumRows, m.NumCols)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (m *COO) Clone() *COO {
	out := &COO{NumRows: m.NumRows, NumCols: m.NumCols, Entries: make([]NZ, len(m.Entries))}
	copy(out.Entries, m.Entries)
	return out
}

// SortRowMajor sorts entries by (row, col) ascending.
func (m *COO) SortRowMajor() {
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

// SortColMajor sorts entries by (col, row) ascending.
func (m *COO) SortColMajor() {
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Row < b.Row
	})
}

// IsSortedRowMajor reports whether entries are ordered by (row, col).
func (m *COO) IsSortedRowMajor() bool {
	return sort.SliceIsSorted(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

// Dedup sums duplicate (row, col) entries in place. The result is row-major
// sorted. Entries whose sum is exactly zero are kept (structural nonzeros).
func (m *COO) Dedup() {
	if len(m.Entries) == 0 {
		return
	}
	m.SortRowMajor()
	out := m.Entries[:1]
	for _, e := range m.Entries[1:] {
		last := &out[len(out)-1]
		if e.Row == last.Row && e.Col == last.Col {
			last.Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	m.Entries = out
}

// Transpose returns a new matrix with rows and columns swapped.
func (m *COO) Transpose() *COO {
	out := &COO{NumRows: m.NumCols, NumCols: m.NumRows, Entries: make([]NZ, len(m.Entries))}
	for i, e := range m.Entries {
		out.Entries[i] = NZ{Row: e.Col, Col: e.Row, Val: e.Val}
	}
	return out
}

// RowSlice returns the sub-matrix restricted to global rows [lo, hi), with
// rows re-indexed to start at zero. Column indices are unchanged. Entries
// must not be assumed sorted.
func (m *COO) RowSlice(lo, hi int32) *COO {
	out := NewCOO(hi-lo, m.NumCols, 0)
	for _, e := range m.Entries {
		if e.Row >= lo && e.Row < hi {
			out.Entries = append(out.Entries, NZ{Row: e.Row - lo, Col: e.Col, Val: e.Val})
		}
	}
	return out
}
