package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Decoder robustness: arbitrary bytes must never panic the readers, and
// anything that parses must re-serialize and re-parse consistently.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"))
	f.Add([]byte("not a matrix"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n-1 -1 -1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.NNZ() != m.NNZ() {
			t.Fatalf("re-parse changed nnz: %d vs %d", back.NNZ(), m.NNZ())
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	m := NewCOO(3, 3, 2)
	m.Append(0, 1, 2.5)
	m.Append(2, 2, -1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TFCOO1\x00\x00garbage"))
	f.Add([]byte(strings.Repeat("\x00", 40)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid matrix: %v", err)
		}
	})
}
