package sparse

import (
	"fmt"

	"twoface/internal/dense"
)

// SDDMM computes the sampled dense-dense matrix multiplication
// C_ij = A_ij * dot(X[i,:], Y[j,:]) for every stored entry (i,j) of A,
// returning C with A's sparsity structure (paper section 9: SDDMM "exhibits
// very similar patterns to SpMM" — reads of X are row-local and reads of Y
// follow A's column structure, exactly like SpMM's reads of B).
//
// X must have NumRows rows, Y must have NumCols rows, and both must share a
// column count K. This sequential kernel is the reference the distributed
// implementation is checked against.
func (m *COO) SDDMM(x, y *dense.Matrix) (*COO, error) {
	if x.Rows != int(m.NumRows) || y.Rows != int(m.NumCols) || x.Cols != y.Cols {
		return nil, fmt.Errorf("sparse: SDDMM shapes: A %dx%d, X %dx%d, Y %dx%d",
			m.NumRows, m.NumCols, x.Rows, x.Cols, y.Rows, y.Cols)
	}
	out := &COO{NumRows: m.NumRows, NumCols: m.NumCols, Entries: make([]NZ, len(m.Entries))}
	for i, e := range m.Entries {
		out.Entries[i] = NZ{Row: e.Row, Col: e.Col, Val: e.Val * dot(x.Row(int(e.Row)), y.Row(int(e.Col)))}
	}
	return out, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
