package sparse

import "fmt"

// CSC is a sparse matrix in compressed sparse column format: column c's
// nonzeros occupy Row[ColPtr[c]:ColPtr[c+1]] and Val[...], ordered by
// ascending row. It is the natural format for the column-wise analyses the
// stripe partitioner performs (which dense rows does a column range need?).
type CSC struct {
	NumRows int32
	NumCols int32
	ColPtr  []int64 // len NumCols+1
	Row     []int32
	Val     []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Row) }

// ToCSC converts a COO matrix to CSC. Entries may be in any order;
// duplicates are preserved.
func (m *COO) ToCSC() *CSC {
	out := &CSC{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		ColPtr:  make([]int64, m.NumCols+1),
		Row:     make([]int32, len(m.Entries)),
		Val:     make([]float64, len(m.Entries)),
	}
	for _, e := range m.Entries {
		out.ColPtr[e.Col+1]++
	}
	for c := int32(0); c < m.NumCols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	next := make([]int64, m.NumCols)
	copy(next, out.ColPtr[:m.NumCols])
	for _, e := range m.Entries {
		i := next[e.Col]
		next[e.Col]++
		out.Row[i] = e.Row
		out.Val[i] = e.Val
	}
	for c := int32(0); c < m.NumCols; c++ {
		lo, hi := out.ColPtr[c], out.ColPtr[c+1]
		rows, vals := out.Row[lo:hi], out.Val[lo:hi]
		for i := 1; i < len(rows); i++ {
			r, v := rows[i], vals[i]
			j := i - 1
			for j >= 0 && rows[j] > r {
				rows[j+1], vals[j+1] = rows[j], vals[j]
				j--
			}
			rows[j+1], vals[j+1] = r, v
		}
	}
	return out
}

// ToCOO converts back to coordinate format in column-major order.
func (m *CSC) ToCOO() *COO {
	out := &COO{NumRows: m.NumRows, NumCols: m.NumCols, Entries: make([]NZ, 0, len(m.Row))}
	for c := int32(0); c < m.NumCols; c++ {
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			out.Entries = append(out.Entries, NZ{Row: m.Row[i], Col: c, Val: m.Val[i]})
		}
	}
	return out
}

// Validate checks structural invariants.
func (m *CSC) Validate() error {
	if len(m.ColPtr) != int(m.NumCols)+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(m.ColPtr), m.NumCols+1)
	}
	if m.ColPtr[0] != 0 || m.ColPtr[m.NumCols] != int64(len(m.Row)) {
		return fmt.Errorf("sparse: ColPtr endpoints [%d,%d], want [0,%d]", m.ColPtr[0], m.ColPtr[m.NumCols], len(m.Row))
	}
	if len(m.Row) != len(m.Val) {
		return fmt.Errorf("sparse: Row/Val length mismatch")
	}
	for c := int32(0); c < m.NumCols; c++ {
		if m.ColPtr[c] > m.ColPtr[c+1] {
			return fmt.Errorf("sparse: ColPtr not monotone at column %d", c)
		}
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			if m.Row[i] < 0 || m.Row[i] >= m.NumRows {
				return fmt.Errorf("sparse: row %d out of range in column %d", m.Row[i], c)
			}
			if i > m.ColPtr[c] && m.Row[i] < m.Row[i-1] {
				return fmt.Errorf("sparse: rows not ascending in column %d", c)
			}
		}
	}
	return nil
}
