package sparse

import "fmt"

// CSR is a sparse matrix in compressed sparse row format. Row r's nonzeros
// occupy Col[RowPtr[r]:RowPtr[r+1]] and Val[RowPtr[r]:RowPtr[r+1]], ordered
// by ascending column.
type CSR struct {
	NumRows int32
	NumCols int32
	RowPtr  []int64 // len NumRows+1
	Col     []int32
	Val     []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// ToCSR converts a COO matrix to CSR. The input is not modified; entries may
// be in any order. Duplicates are preserved (not summed), matching the
// behaviour of the kernels, which accumulate every stored entry.
func (m *COO) ToCSR() *CSR {
	out := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  make([]int64, m.NumRows+1),
		Col:     make([]int32, len(m.Entries)),
		Val:     make([]float64, len(m.Entries)),
	}
	for _, e := range m.Entries {
		out.RowPtr[e.Row+1]++
	}
	for r := int32(0); r < m.NumRows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	next := make([]int64, m.NumRows)
	copy(next, out.RowPtr[:m.NumRows])
	for _, e := range m.Entries {
		i := next[e.Row]
		next[e.Row]++
		out.Col[i] = e.Col
		out.Val[i] = e.Val
	}
	// Counting sort above preserves input order within a row; establish the
	// ascending-column invariant with per-row insertion sort (rows are short
	// for the matrices of interest).
	for r := int32(0); r < m.NumRows; r++ {
		lo, hi := out.RowPtr[r], out.RowPtr[r+1]
		cols, vals := out.Col[lo:hi], out.Val[lo:hi]
		for i := 1; i < len(cols); i++ {
			c, v := cols[i], vals[i]
			j := i - 1
			for j >= 0 && cols[j] > c {
				cols[j+1], vals[j+1] = cols[j], vals[j]
				j--
			}
			cols[j+1], vals[j+1] = c, v
		}
	}
	return out
}

// ToCOO converts back to coordinate format in row-major order.
func (m *CSR) ToCOO() *COO {
	out := &COO{NumRows: m.NumRows, NumCols: m.NumCols, Entries: make([]NZ, 0, len(m.Col))}
	for r := int32(0); r < m.NumRows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			out.Entries = append(out.Entries, NZ{Row: r, Col: m.Col[i], Val: m.Val[i]})
		}
	}
	return out
}

// Validate checks structural invariants: monotone row pointers, column
// bounds, and ascending columns within each row.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != int(m.NumRows)+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.NumRows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.NumRows] != int64(len(m.Col)) {
		return fmt.Errorf("sparse: RowPtr endpoints [%d,%d], want [0,%d]", m.RowPtr[0], m.RowPtr[m.NumRows], len(m.Col))
	}
	if len(m.Col) != len(m.Val) {
		return fmt.Errorf("sparse: Col/Val length mismatch %d vs %d", len(m.Col), len(m.Val))
	}
	for r := int32(0); r < m.NumRows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", r)
		}
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			if m.Col[i] < 0 || m.Col[i] >= m.NumCols {
				return fmt.Errorf("sparse: column %d out of range at row %d", m.Col[i], r)
			}
			if i > m.RowPtr[r] && m.Col[i] < m.Col[i-1] {
				return fmt.Errorf("sparse: columns not ascending in row %d", r)
			}
		}
	}
	return nil
}
