package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randomCOO(rows, cols int32, nnz int, seed uint64) *COO {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	m := NewCOO(rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(rng.Int32N(rows), rng.Int32N(cols), rng.Float64()*2-1)
	}
	return m
}

func TestValidate(t *testing.T) {
	m := NewCOO(3, 3, 1)
	m.Append(1, 2, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Append(3, 0, 1)
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range row should fail Validate")
	}
	bad := &COO{NumRows: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative shape should fail Validate")
	}
}

func TestSortRowMajor(t *testing.T) {
	m := randomCOO(50, 50, 500, 1)
	m.SortRowMajor()
	if !m.IsSortedRowMajor() {
		t.Fatal("not sorted row-major after SortRowMajor")
	}
	for i := 1; i < len(m.Entries); i++ {
		a, b := m.Entries[i-1], m.Entries[i]
		if a.Row > b.Row || (a.Row == b.Row && a.Col > b.Col) {
			t.Fatal("ordering violated")
		}
	}
}

func TestSortColMajor(t *testing.T) {
	m := randomCOO(50, 50, 500, 2)
	m.SortColMajor()
	for i := 1; i < len(m.Entries); i++ {
		a, b := m.Entries[i-1], m.Entries[i]
		if a.Col > b.Col || (a.Col == b.Col && a.Row > b.Row) {
			t.Fatal("ordering violated")
		}
	}
}

func TestDedupSums(t *testing.T) {
	m := NewCOO(4, 4, 4)
	m.Append(1, 1, 2)
	m.Append(1, 1, 3)
	m.Append(0, 2, 1)
	m.Append(1, 1, -1)
	m.Dedup()
	if len(m.Entries) != 2 {
		t.Fatalf("Dedup left %d entries, want 2", len(m.Entries))
	}
	m.SortRowMajor()
	if m.Entries[1].Row != 1 || m.Entries[1].Col != 1 || m.Entries[1].Val != 4 {
		t.Fatalf("Dedup sum wrong: %+v", m.Entries[1])
	}
}

func TestDedupEmpty(t *testing.T) {
	m := NewCOO(4, 4, 0)
	m.Dedup() // must not panic
	if len(m.Entries) != 0 {
		t.Fatal("empty Dedup should stay empty")
	}
}

func TestTranspose(t *testing.T) {
	m := randomCOO(5, 9, 30, 3)
	tr := m.Transpose()
	if tr.NumRows != 9 || tr.NumCols != 5 {
		t.Fatalf("Transpose shape %dx%d", tr.NumRows, tr.NumCols)
	}
	trtr := tr.Transpose()
	trtr.SortRowMajor()
	m.SortRowMajor()
	for i := range m.Entries {
		if m.Entries[i] != trtr.Entries[i] {
			t.Fatal("double transpose differs from original")
		}
	}
}

func TestRowSlice(t *testing.T) {
	m := NewCOO(6, 6, 3)
	m.Append(1, 0, 1)
	m.Append(3, 2, 2)
	m.Append(5, 5, 3)
	sub := m.RowSlice(2, 5)
	if sub.NumRows != 3 || len(sub.Entries) != 1 {
		t.Fatalf("RowSlice: %d rows, %d entries", sub.NumRows, len(sub.Entries))
	}
	if sub.Entries[0].Row != 1 || sub.Entries[0].Col != 2 {
		t.Fatalf("RowSlice entry: %+v", sub.Entries[0])
	}
}

func TestCloneIndependent(t *testing.T) {
	m := randomCOO(5, 5, 10, 4)
	c := m.Clone()
	c.Entries[0].Val = 1e9
	if m.Entries[0].Val == 1e9 {
		t.Fatal("Clone shares storage")
	}
}

func TestCSRRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(20, 30, 100, seed)
		m.Dedup()
		back := m.ToCSR().ToCOO()
		back.SortRowMajor()
		m.SortRowMajor()
		if len(back.Entries) != len(m.Entries) {
			return false
		}
		for i := range m.Entries {
			if m.Entries[i] != back.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRValidate(t *testing.T) {
	m := randomCOO(10, 10, 40, 5)
	csr := m.ToCSR()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a column.
	if len(csr.Col) > 0 {
		csr.Col[0] = 99
		if err := csr.Validate(); err == nil {
			t.Fatal("out-of-range column should fail Validate")
		}
	}
}

func TestCSRFromUnsortedInput(t *testing.T) {
	m := NewCOO(3, 5, 4)
	m.Append(2, 4, 1)
	m.Append(0, 3, 2)
	m.Append(0, 1, 3)
	m.Append(2, 0, 4)
	csr := m.ToCSR()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.RowPtr[1] != 2 || csr.Col[0] != 1 || csr.Col[1] != 3 {
		t.Fatalf("row 0 = cols %v", csr.Col[csr.RowPtr[0]:csr.RowPtr[1]])
	}
}

func TestCSRPreservesDuplicates(t *testing.T) {
	m := NewCOO(2, 2, 2)
	m.Append(0, 0, 1)
	m.Append(0, 0, 2)
	csr := m.ToCSR()
	if csr.NNZ() != 2 {
		t.Fatalf("ToCSR should preserve duplicates, nnz = %d", csr.NNZ())
	}
}

func TestStats(t *testing.T) {
	m := NewCOO(4, 4, 5)
	m.Append(0, 1, 1)
	m.Append(0, 2, 1)
	m.Append(0, 3, 1)
	m.Append(2, 1, 1)
	m.Append(3, 1, 1)
	s := m.ComputeStats()
	if s.NNZ != 5 || s.MaxRowNNZ != 3 || s.MaxColNNZ != 3 || s.EmptyRows != 1 || s.EmptyCols != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.AvgPerRow != 1.25 {
		t.Fatalf("AvgPerRow = %v", s.AvgPerRow)
	}
}

func TestColRowCounts(t *testing.T) {
	m := randomCOO(10, 10, 50, 6)
	colSum, rowSum := int64(0), int64(0)
	for _, c := range m.ColCounts() {
		colSum += c
	}
	for _, r := range m.RowCounts() {
		rowSum += r
	}
	if colSum != 50 || rowSum != 50 {
		t.Fatalf("counts sum to %d/%d, want 50", colSum, rowSum)
	}
}
