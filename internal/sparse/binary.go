package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Bespoke binary matrix format (paper section 7.3: preprocessed matrices are
// written "in a bespoke binary format"). Layout, little-endian:
//
//	offset 0: magic "TFCOO1\x00\x00" (8 bytes)
//	offset 8: numRows int32, numCols int32, nnz int64
//	then nnz records of (row int32, col int32, val float64)
//
// The fixed 16-byte record makes reads a single streaming pass with no
// parsing, which is what makes the preprocessing-overhead accounting of
// Table 6 (I/O vs no I/O) meaningful.

var binaryMagic = [8]byte{'T', 'F', 'C', 'O', 'O', '1', 0, 0}

// WriteBinary serializes m in the bespoke binary format.
func WriteBinary(w io.Writer, m *COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.NumRows))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.NumCols))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(m.Entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, e := range m.Entries {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Row))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Col))
		binary.LittleEndian.PutUint64(rec[8:], uint64(floatBits(e.Val)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a matrix written by WriteBinary. It rejects
// corrupt headers and truncated bodies with descriptive errors.
func ReadBinary(r io.Reader) (*COO, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("sparse: bad binary magic %q", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading binary header: %w", err)
	}
	rows := int32(binary.LittleEndian.Uint32(hdr[0:]))
	cols := int32(binary.LittleEndian.Uint32(hdr[4:]))
	nnz := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: corrupt binary header: %dx%d nnz=%d", rows, cols, nnz)
	}
	if nnz > int64(rows)*int64(cols) {
		return nil, fmt.Errorf("sparse: corrupt binary header: %d entries cannot fit %dx%d", nnz, rows, cols)
	}
	// Cap the preallocation: the header is untrusted, and a truncated body
	// will fail below anyway. The slice grows as real records arrive.
	capHint := nnz
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	m := NewCOO(rows, cols, int(capHint))
	var rec [16]byte
	for i := int64(0); i < nnz; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("sparse: binary body truncated at entry %d of %d: %w", i, nnz, err)
		}
		e := NZ{
			Row: int32(binary.LittleEndian.Uint32(rec[0:])),
			Col: int32(binary.LittleEndian.Uint32(rec[4:])),
			Val: floatFromBits(binary.LittleEndian.Uint64(rec[8:])),
		}
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: binary entry %d at (%d,%d) outside %dx%d", i, e.Row, e.Col, rows, cols)
		}
		m.Entries = append(m.Entries, e)
	}
	return m, nil
}

// WriteBinaryFile writes m to path in the bespoke binary format.
func WriteBinaryFile(path string, m *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a matrix written by WriteBinaryFile.
func ReadBinaryFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
