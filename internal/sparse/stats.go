package sparse

// Stats summarizes the nonzero structure of a matrix. The distributed
// algorithms care about the distribution of nonzeros over columns, because
// column popularity determines how widely each dense input row must travel.
type Stats struct {
	NumRows, NumCols int32
	NNZ              int64
	AvgPerRow        float64
	MaxRowNNZ        int64
	MaxColNNZ        int64
	EmptyRows        int64
	EmptyCols        int64
}

// ComputeStats scans the matrix once and returns its Stats.
func (m *COO) ComputeStats() Stats {
	rowCnt := make([]int64, m.NumRows)
	colCnt := make([]int64, m.NumCols)
	for _, e := range m.Entries {
		rowCnt[e.Row]++
		colCnt[e.Col]++
	}
	s := Stats{NumRows: m.NumRows, NumCols: m.NumCols, NNZ: int64(len(m.Entries))}
	if m.NumRows > 0 {
		s.AvgPerRow = float64(s.NNZ) / float64(m.NumRows)
	}
	for _, c := range rowCnt {
		if c > s.MaxRowNNZ {
			s.MaxRowNNZ = c
		}
		if c == 0 {
			s.EmptyRows++
		}
	}
	for _, c := range colCnt {
		if c > s.MaxColNNZ {
			s.MaxColNNZ = c
		}
		if c == 0 {
			s.EmptyCols++
		}
	}
	return s
}

// ColCounts returns the number of nonzeros in each column.
func (m *COO) ColCounts() []int64 {
	cnt := make([]int64, m.NumCols)
	for _, e := range m.Entries {
		cnt[e.Col]++
	}
	return cnt
}

// RowCounts returns the number of nonzeros in each row.
func (m *COO) RowCounts() []int64 {
	cnt := make([]int64, m.NumRows)
	for _, e := range m.Entries {
		cnt[e.Row]++
	}
	return cnt
}
