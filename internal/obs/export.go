package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics exposition of the metrics registry: the text format Prometheus
// and every OpenMetrics-compatible scraper ingest. Metric names translate
// dots to underscores (exec.async.stripes -> exec_async_stripes), counters
// gain the mandated _total suffix, histograms emit cumulative le-labelled
// buckets plus _sum/_count, and the document ends with the required # EOF
// marker. Output is sorted by name so expositions are deterministic and
// golden-testable.

// OpenMetricsContentType is the Content-Type of the exposition, as specified
// by the OpenMetrics standard.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the snapshot in OpenMetrics text format.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		m := openMetricsName(name)
		bw.printf("# TYPE %s counter\n", m)
		bw.printf("%s_total %d\n", m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := openMetricsName(name)
		bw.printf("# TYPE %s gauge\n", m)
		bw.printf("%s %s\n", m, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		m := openMetricsName(name)
		bw.printf("# TYPE %s histogram\n", m)
		var cum int64
		for i, c := range hs.Counts {
			cum += c
			le := "+Inf"
			if i < len(hs.UpperBounds) {
				le = formatFloat(hs.UpperBounds[i])
			}
			bw.printf("%s_bucket{le=\"%s\"} %d\n", m, le, cum)
		}
		bw.printf("%s_sum %s\n", m, formatFloat(hs.Sum))
		bw.printf("%s_count %d\n", m, hs.Count)
		for _, label := range sortedKeys(hs.Quantiles) {
			bw.printf("%s_quantile{quantile=\"%s\"} %s\n",
				m, quantileValue(label), formatFloat(hs.Quantiles[label]))
		}
	}
	bw.printf("# EOF\n")
	return bw.err
}

// OpenMetrics renders the registry's current snapshot as an OpenMetrics
// document.
func (r *Registry) OpenMetrics() string {
	var sb strings.Builder
	_ = WriteOpenMetrics(&sb, r.Snapshot())
	return sb.String()
}

// openMetricsName maps a registry name onto the OpenMetrics grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, translating dots (our namespace separator) and
// any other illegal rune to underscores.
func openMetricsName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// quantileValue maps a snapshot quantile label (p50, p99) back to its
// numeric form (0.5, 0.99) for the exposition label; unknown labels pass
// through unchanged.
func quantileValue(label string) string {
	if q, ok := snapshotQuantiles[label]; ok {
		return formatFloat(q)
	}
	return label
}

// formatFloat renders a float64 the way OpenMetrics expects: shortest exact
// decimal form, with +Inf/-Inf/NaN spelled per the standard.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error so the exposition loop stays
// linear instead of error-checking every line.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
