package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Structured logging for the whole repository, built on log/slog. The
// process-wide logger defaults to discarding everything, so libraries log
// freely (cluster retries, chaos degradations, executor completions) and
// pay nothing until a CLI opts in with -log-level. Events carry structured
// attrs (rank, op, attempt, seconds) so a chaos run's retry storm is
// greppable JSON rather than prose.

// discardLogger drops every record without formatting it.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

var processLogger atomic.Pointer[slog.Logger]

func init() { processLogger.Store(discardLogger) }

// Logger returns the process-wide logger. It is never nil; before SetLogger
// it discards everything.
func Logger() *slog.Logger { return processLogger.Load() }

// ActiveLogger returns the process-wide logger, or nil when logging is off
// (the discarding default) — the nil-able form components like
// cluster.SetLogger expect.
func ActiveLogger() *slog.Logger {
	if l := processLogger.Load(); l != discardLogger {
		return l
	}
	return nil
}

// SetLogger installs the process-wide logger. A nil logger restores the
// discarding default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = discardLogger
	}
	processLogger.Store(l)
}

// NewLogger builds a logger writing to w at the given level, as JSON lines
// (machine-greppable) or the slog text format. It does not install itself;
// pass the result to SetLogger or carry it via twoface.Options.Logger.
func NewLogger(w io.Writer, level slog.Level, asJSON bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if asJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value onto a slog level. Empty means
// "logging off" and returns ok=false.
func ParseLevel(s string) (slog.Level, bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return 0, false, nil
	case "debug":
		return slog.LevelDebug, true, nil
	case "info":
		return slog.LevelInfo, true, nil
	case "warn", "warning":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	}
	return 0, false, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// runIDCounter disambiguates run IDs minted within the same second.
var runIDCounter atomic.Int64

// NewRunID mints a short unique identifier for one run, stamped on every
// log line via Logger().With("run", id) so interleaved runs stay separable.
func NewRunID() string {
	return fmt.Sprintf("%s-%04d", time.Now().UTC().Format("20060102T150405"), runIDCounter.Add(1)%10000)
}

// SetupLogging is the CLI entry point: parse the -log-level value, build a
// stderr logger (JSON when asJSON), stamp it with the tool name and a fresh
// run ID, and install it process-wide. Returns the installed logger and run
// ID; with an empty level it leaves the discarding default and returns
// Logger() unchanged.
func SetupLogging(tool, level string, asJSON bool) (*slog.Logger, string, error) {
	lvl, on, err := ParseLevel(level)
	if err != nil {
		return nil, "", err
	}
	if !on {
		return Logger(), "", nil
	}
	id := NewRunID()
	l := NewLogger(os.Stderr, lvl, asJSON).With("tool", tool, "run", id)
	SetLogger(l)
	return l, id, nil
}
