package obs

import (
	"math"
	"strings"
	"testing"
)

// TestOpenMetricsExposition pins the full exposition of a known registry:
// counters with the mandated _total suffix, gauges, cumulative le-labelled
// histogram buckets, _sum/_count, quantile lines, and the trailing # EOF.
// The output is sorted by name, so this golden is deterministic.
func TestOpenMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("cache.hits").Add(3)
	reg.Counter("exec.sync.stripes").Add(51)
	reg.Gauge("skew.max_over_mean").Set(1.25)
	h := reg.Histogram("get.latency.seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}

	want := `# TYPE cache_hits counter
cache_hits_total 3
# TYPE exec_sync_stripes counter
exec_sync_stripes_total 51
# TYPE skew_max_over_mean gauge
skew_max_over_mean 1.25
# TYPE get_latency_seconds histogram
get_latency_seconds_bucket{le="1"} 1
get_latency_seconds_bucket{le="2"} 2
get_latency_seconds_bucket{le="4"} 3
get_latency_seconds_bucket{le="+Inf"} 4
get_latency_seconds_sum 13
get_latency_seconds_count 4
get_latency_seconds_quantile{quantile="0.5"} 2
get_latency_seconds_quantile{quantile="0.95"} 4
get_latency_seconds_quantile{quantile="0.99"} 4
# EOF
`
	if got := reg.OpenMetrics(); got != want {
		t.Fatalf("exposition differs\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestOpenMetricsUntouchedRegistry checks an empty registry still emits a
// valid document: just the # EOF marker.
func TestOpenMetricsUntouchedRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("never.incremented")
	if got := reg.OpenMetrics(); got != "# EOF\n" {
		t.Fatalf("empty exposition = %q, want %q", got, "# EOF\n")
	}
}

// TestOpenMetricsNameSanitize maps registry names onto the OpenMetrics
// grammar: dots and illegal runes become underscores, leading digits gain a
// prefix underscore.
func TestOpenMetricsNameSanitize(t *testing.T) {
	cases := map[string]string{
		"exec.async.stripes": "exec_async_stripes",
		"9weird-name":        "_9weird_name",
		"ok_name:sub":        "ok_name:sub",
		"":                   "_",
		"a.b-c d":            "a_b_c_d",
	}
	for in, want := range cases {
		if got := openMetricsName(in); got != want {
			t.Errorf("openMetricsName(%q) = %q, want %q", in, got, want)
		}
	}

	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("9weird-name").Add(7)
	if got := reg.OpenMetrics(); !strings.Contains(got, "_9weird_name_total 7\n") {
		t.Fatalf("sanitized counter missing from exposition:\n%s", got)
	}
}

// TestFormatFloat pins the numeric rendering the exposition relies on,
// including the standard's spellings of the non-finite values.
func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1, "1"},
		{1.25, "1.25"},
		{0.0005, "0.0005"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
