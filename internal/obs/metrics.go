// Package obs is the observability layer of the reproduction: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), a virtual-time span tracer that renders whole runs as
// Chrome/Perfetto-loadable Gantt charts, and structured machine-readable run
// reports. Everything is off by default: with the registry disabled and no
// span recorder attached, instrumentation reduces to a single atomic load on
// already-cold paths and modeled time is bit-identical to an uninstrumented
// run (virtual-time charges never depend on observation).
//
// The split mirrors the cluster package's mechanics-vs-model separation:
// cluster and core report *what happened* (spans, counts, sizes); obs stores
// and exports it without ever feeding back into the simulation.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named metrics. Registration
// is idempotent: asking for an existing name returns the existing metric, so
// packages may register handles in package-level var blocks without
// coordination. A disabled registry (the initial state) turns every Add /
// Set / Observe into a single atomic load and branch.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Default is the process-wide registry that the executor and workspace
// instrumentation write to. It starts disabled.
var Default = NewRegistry()

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// SetEnabled turns metric collection on or off. Metrics registered while
// disabled still exist; they simply ignore updates.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset zeroes every registered metric (the registrations survive).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
		g.set.Store(false)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{reg: r}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{reg: r}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds on first use (an implicit +Inf
// overflow bucket is always appended). Re-registering an existing name
// returns the existing histogram; the bounds argument is then ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	upper := make([]float64, len(bounds))
	copy(upper, bounds)
	sort.Float64s(upper)
	h := &Histogram{reg: r, upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
	r.histograms[name] = h
	return h
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and multiplying by factor: start, start*factor, start*factor^2, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	reg *Registry
	v   atomic.Int64
}

// Add increments the counter by n when the registry is enabled.
func (c *Counter) Add(n int64) {
	if c.reg.enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one when the registry is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 (last write wins).
type Gauge struct {
	reg  *Registry
	bits atomic.Uint64
	set  atomic.Bool
}

// Set stores v when the registry is enabled.
func (g *Gauge) Set(v float64) {
	if g.reg.enabled.Load() {
		g.bits.Store(math.Float64bits(v))
		g.set.Store(true)
	}
}

// Add atomically adds delta to the gauge when the registry is enabled.
// Unlike a read-compute-Set sequence, concurrent Adds never lose or
// reorder each other, so balanced increments/decrements always return the
// gauge to its prior value.
func (g *Gauge) Add(delta float64) {
	if !g.reg.enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			g.set.Store(true)
			return
		}
	}
}

// Value returns the last stored value (0 if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with atomic bucket counts and a
// lock-free running sum. Bucket i counts observations v <= upper[i]; the
// final bucket is the +Inf overflow.
type Histogram struct {
	reg    *Registry
	upper  []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records v when the registry is enabled.
func (h *Histogram) Observe(v float64) {
	if !h.reg.enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation inside the bucket that holds the
// target rank — the Prometheus histogram_quantile estimator. Observations
// landing in the +Inf overflow bucket clamp to the largest finite bound, and
// an empty histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 { return h.snapshot().Quantile(q) }

// snapshot copies the histogram's current buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		UpperBounds: append([]float64(nil), h.upper...),
		Counts:      make([]int64, len(h.counts)),
		Count:       h.Count(),
		Sum:         h.Sum(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// HistogramSnapshot is the JSON-friendly view of a histogram.
type HistogramSnapshot struct {
	// UpperBounds are the finite bucket upper bounds; Counts has one more
	// entry, the +Inf overflow bucket.
	UpperBounds []float64 `json:"upper_bounds"`
	Counts      []int64   `json:"counts"`
	Count       int64     `json:"count"`
	Sum         float64   `json:"sum"`
	// Quantiles carries interpolated latency percentiles (p50, p95, p99),
	// computed at snapshot time so serialized reports keep them.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// snapshotQuantiles are the percentiles published in Snapshot and the run
// report — the serving-latency trio every benchmark harness wants.
var snapshotQuantiles = map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}

// Quantile estimates the q-quantile of the snapshot by bucket interpolation
// (see Histogram.Quantile).
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	var total int64
	for _, c := range hs.Counts {
		total += c
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range hs.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(hs.UpperBounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			if len(hs.UpperBounds) == 0 {
				return math.NaN()
			}
			return hs.UpperBounds[len(hs.UpperBounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = hs.UpperBounds[i-1]
		}
		upper := hs.UpperBounds[i]
		// Assume observations spread uniformly inside the bucket.
		return lower + (upper-lower)*(1-(cum-rank)/float64(c))
	}
	return math.NaN()
}

// Snapshot is a point-in-time copy of every touched metric, ordered by
// encoding/json's sorted-key map marshaling. Untouched metrics (zero
// counters, never-set gauges, empty histograms) are omitted so reports only
// carry signal.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = map[string]int64{}
			}
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if g.set.Load() {
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[name] = g.Value()
		}
	}
	for name, h := range r.histograms {
		if h.Count() == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		hs := h.snapshot()
		hs.Quantiles = map[string]float64{}
		for label, q := range snapshotQuantiles {
			if v := hs.Quantile(q); !math.IsNaN(v) {
				hs.Quantiles[label] = v
			}
		}
		s.Histograms[name] = hs
	}
	return s
}
