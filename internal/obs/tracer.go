package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"twoface/internal/cluster"
)

// Span tracing on virtual time. The cluster's per-rank ledgers already
// accumulate modeled seconds by category; the tracer additionally records
// each individual charge as a [start, end) interval on that category's
// cumulative clock. Within one (rank, category) pair charges are serialized
// by the rank's mutex, so the intervals tile the category's total exactly:
// the sum of span durations per rank and category equals the rank's
// Breakdown entry bit-for-bit. Exported as Chrome trace-event JSON, a run
// renders as a per-rank Gantt chart (one process per rank, one track per
// category) in chrome://tracing or https://ui.perfetto.dev — the
// reproduction's own Figure 10, zoomable.

// Span is one recorded virtual-time interval.
type Span struct {
	Rank  int              `json:"rank"`
	Cat   cluster.Category `json:"cat"`
	Op    string           `json:"op"`
	Start float64          `json:"start"` // virtual seconds on the category clock
	End   float64          `json:"end"`
}

// Instant is a zero-duration marker (barrier entry, epilogue flush) stamped
// at the rank's current modeled makespan.
type Instant struct {
	Rank int     `json:"rank"`
	Op   string  `json:"op"`
	At   float64 `json:"at"`
}

// Tracer collects spans from a cluster run. It implements
// cluster.SpanRecorder; attach it with Cluster.SetSpanRecorder (or the
// twoface facade's trace options) before Run. Storage is bounded per rank;
// past the cap, spans are dropped but their durations still accumulate into
// the per-category totals, so Totals stays exact regardless.
type Tracer struct {
	mu       sync.Mutex
	limit    int
	spans    []Span
	instants []Instant
	perRank  []int   // stored span count per rank
	dropped  []int64 // dropped span count per rank
	totals   []cluster.Breakdown
}

// DefaultSpanLimit is the per-rank stored-span cap when NewTracer is given
// a non-positive limit.
const DefaultSpanLimit = 1 << 20

// metricDroppedSpans mirrors every dropped span into the default registry,
// so a scrape of /metrics (and the -explain warning path) surfaces storage
// saturation instead of leaving it a silent field in the trace summary.
var metricDroppedSpans = Default.Counter("obs.trace.dropped_spans")

// NewTracer returns an empty tracer with the given per-rank span cap
// (<= 0 uses DefaultSpanLimit).
func NewTracer(perRankLimit int) *Tracer {
	if perRankLimit <= 0 {
		perRankLimit = DefaultSpanLimit
	}
	return &Tracer{limit: perRankLimit}
}

func (t *Tracer) grow(rank int) {
	for len(t.perRank) <= rank {
		t.perRank = append(t.perRank, 0)
		t.dropped = append(t.dropped, 0)
		t.totals = append(t.totals, cluster.Breakdown{})
	}
}

// Span records one charge interval. It is safe for concurrent use.
func (t *Tracer) Span(rank int, cat cluster.Category, op string, start, end float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.grow(rank)
	t.totals[rank] = t.totals[rank].Plus(breakdownOf(cat, end-start))
	if t.perRank[rank] >= t.limit {
		t.dropped[rank]++
		metricDroppedSpans.Inc()
		return
	}
	t.perRank[rank]++
	t.spans = append(t.spans, Span{Rank: rank, Cat: cat, Op: op, Start: start, End: end})
}

// Instant records a zero-duration marker. It is safe for concurrent use.
func (t *Tracer) Instant(rank int, op string, at float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.grow(rank)
	t.instants = append(t.instants, Instant{Rank: rank, Op: op, At: at})
}

// breakdownOf returns a Breakdown with dt in the given category.
func breakdownOf(cat cluster.Category, dt float64) cluster.Breakdown {
	var b cluster.Breakdown
	switch cat {
	case cluster.SyncComm:
		b.SyncComm = dt
	case cluster.SyncComp:
		b.SyncComp = dt
	case cluster.AsyncComm:
		b.AsyncComm = dt
	case cluster.AsyncComp:
		b.AsyncComp = dt
	case cluster.Overlap:
		b.SyncOverlap = dt
	case cluster.Checkpoint:
		b.Checkpoint = dt
	case cluster.Recovery:
		b.Recovery = dt
	default:
		b.Other = dt
	}
	return b
}

// Reset clears all recorded spans, instants, totals, and drop counts.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans, t.instants, t.perRank, t.dropped, t.totals = nil, nil, nil, nil, nil
}

// Spans returns a copy of the stored spans.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Totals returns each rank's per-category span-duration sums. Because every
// charge contributes (stored or dropped), these equal the cluster's
// Breakdowns for the traced run.
func (t *Tracer) Totals() []cluster.Breakdown {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]cluster.Breakdown(nil), t.totals...)
}

// Dropped returns the per-rank count of spans dropped to the storage cap.
func (t *Tracer) Dropped() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]int64(nil), t.dropped...)
}

// TotalDropped returns the cluster-wide count of spans dropped to the
// storage cap. Totals stay exact regardless; a non-zero value only means the
// per-op views (Chrome trace, critical-path top ops) are incomplete.
func (t *Tracer) TotalDropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, d := range t.dropped {
		n += d
	}
	return n
}

// Info summarizes the tracer's contents for a run report.
func (t *Tracer) Info() *TraceInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := &TraceInfo{Spans: len(t.spans), Instants: len(t.instants)}
	for _, d := range t.dropped {
		if d > 0 {
			info.DroppedPerRank = append([]int64(nil), t.dropped...)
			break
		}
	}
	return info
}

// ChromeTraceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// complete spans use ph "X" with ts/dur in microseconds; instants use ph
// "i"; metadata events (ph "M") name the per-rank processes and
// per-category threads.
type ChromeTraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace-event format, the shape
// both chrome://tracing and Perfetto load directly.
type ChromeTrace struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
	OtherData       map[string]string  `json:"otherData,omitempty"`
}

// chromeCategories orders the per-rank tracks top-to-bottom in the viewer.
var chromeCategories = []cluster.Category{
	cluster.SyncComm, cluster.SyncComp, cluster.AsyncComm, cluster.AsyncComp,
	cluster.Other, cluster.Overlap, cluster.Checkpoint, cluster.Recovery,
}

// ChromeTrace assembles the recorded spans into a trace-event document.
// Virtual seconds map to trace microseconds (ts = 1e6 * start).
func (t *Tracer) ChromeTrace() *ChromeTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	ct := &ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"clock": "virtual (modeled) time", "source": "twoface span tracer"},
	}
	for rank := range t.perRank {
		ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
			Name: "process_name", Ph: "M", Pid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
		for _, cat := range chromeCategories {
			ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
				Name: "thread_name", Ph: "M", Pid: rank, Tid: int(cat),
				Args: map[string]any{"name": cat.String()},
			})
		}
	}
	for _, s := range t.spans {
		ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
			Name: s.Op, Cat: s.Cat.String(), Ph: "X",
			Ts: 1e6 * s.Start, Dur: 1e6 * (s.End - s.Start),
			Pid: s.Rank, Tid: int(s.Cat),
		})
	}
	for _, in := range t.instants {
		ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
			Name: in.Op, Ph: "i", Ts: 1e6 * in.At,
			Pid: in.Rank, Tid: int(cluster.Other), S: "t",
		})
	}
	return ct
}

// WriteChromeTrace writes the trace-event JSON document to w.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.ChromeTrace())
}

// WriteChromeTraceFile writes the trace-event JSON document to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
