package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"twoface/internal/cluster"
)

// Structured run reports: one JSON document per run, carrying everything a
// later analysis (or a regression bot diffing two PRs) needs — the
// configuration, the per-rank modeled-time breakdown, the honest
// data-movement counters, a metrics snapshot, and build provenance. The
// trajectory file (BENCH_runs.json) is the append-only history of such
// documents across sessions, the run-level sibling of BENCH_kernels.json.

// RankReport is one rank's slice of a run report.
type RankReport struct {
	Rank      int                   `json:"rank"`
	Breakdown cluster.Breakdown     `json:"breakdown"`
	NodeTime  float64               `json:"node_time"`
	Transfer  cluster.TransferStats `json:"transfer"`
}

// Skew summarizes load imbalance across ranks: the straggler's modeled
// makespan against the mean.
type Skew struct {
	MaxNodeTime  float64 `json:"max_node_time"`
	MeanNodeTime float64 `json:"mean_node_time"`
	MaxOverMean  float64 `json:"max_over_mean"`
}

// TraceInfo summarizes an attached span tracer.
type TraceInfo struct {
	Spans          int     `json:"spans"`
	Instants       int     `json:"instants"`
	DroppedPerRank []int64 `json:"dropped_per_rank,omitempty"`
	File           string  `json:"file,omitempty"`
}

// Report is one run's machine-readable record.
type Report struct {
	Tool      string         `json:"tool"`
	GoVersion string         `json:"go_version"`
	Commit    string         `json:"commit,omitempty"`
	Config    map[string]any `json:"config"`

	ModeledSeconds float64               `json:"modeled_seconds"`
	WallSeconds    float64               `json:"wall_seconds"`
	Breakdown      cluster.Breakdown     `json:"breakdown_total"`
	Ranks          []RankReport          `json:"ranks,omitempty"`
	Transfer       cluster.TransferStats `json:"transfer_total"`
	Skew           *Skew                 `json:"skew,omitempty"`

	Metrics    *Snapshot                `json:"metrics,omitempty"`
	Trace      *TraceInfo               `json:"trace,omitempty"`
	Resilience *cluster.ResilienceStats `json:"resilience,omitempty"`

	// CriticalPath is the makespan attribution of the run (see critpath.go);
	// folded in whenever per-rank breakdowns are available.
	CriticalPath *CriticalPath `json:"critical_path,omitempty"`
	// Warnings carries observability caveats a reader must see (dropped
	// trace spans, saturated buffers) — never silent fields.
	Warnings []string `json:"warnings,omitempty"`
}

// Warn appends a report-level warning.
func (r *Report) Warn(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// SetResilience attaches the run's cluster-wide fault/retry/degradation
// counters; zero stats are omitted so fault-free reports stay unchanged.
func (r *Report) SetResilience(rs cluster.ResilienceStats) {
	if rs.Faulted() {
		r.Resilience = &rs
	}
}

// NewReport starts a report for the named tool, stamped with the build's Go
// version and (when the binary carries VCS build info) commit hash.
func NewReport(tool string) *Report {
	r := &Report{Tool: tool, GoVersion: runtime.Version(), Config: map[string]any{}}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				r.Commit = s.Value
			}
		}
	}
	return r
}

// SetRun fills the run outcome: per-rank breakdowns and transfer counters,
// the modeled makespan, wall-clock duration, and the derived totals and
// straggler skew. breakdowns and transfers must be rank-aligned (transfers
// may be nil when unavailable).
func (r *Report) SetRun(breakdowns []cluster.Breakdown, transfers []cluster.TransferStats, modeled float64, wall time.Duration) {
	r.ModeledSeconds = modeled
	r.WallSeconds = wall.Seconds()
	r.Ranks = r.Ranks[:0]
	r.Breakdown = cluster.Breakdown{}
	r.Transfer = cluster.TransferStats{}
	var sum, max float64
	for i, bd := range breakdowns {
		rr := RankReport{Rank: i, Breakdown: bd, NodeTime: bd.NodeTime()}
		if i < len(transfers) {
			rr.Transfer = transfers[i]
			r.Transfer = r.Transfer.Plus(transfers[i])
		}
		r.Breakdown = r.Breakdown.Plus(bd)
		sum += rr.NodeTime
		if rr.NodeTime > max {
			max = rr.NodeTime
		}
		r.Ranks = append(r.Ranks, rr)
	}
	if n := len(breakdowns); n > 0 {
		mean := sum / float64(n)
		sk := Skew{MaxNodeTime: max, MeanNodeTime: mean}
		if mean > 0 {
			sk.MaxOverMean = max / mean
		}
		r.Skew = &sk
	}
	r.CriticalPath = AnalyzeBreakdowns(breakdowns)
}

// Validate sanity-checks the report before it is written: a run report must
// carry a positive modeled time and per-rank entries consistent with the
// reported makespan.
func (r *Report) Validate() error {
	if r.ModeledSeconds <= 0 {
		return fmt.Errorf("obs: report has non-positive modeled time %g", r.ModeledSeconds)
	}
	var max float64
	for _, rr := range r.Ranks {
		if t := rr.Breakdown.NodeTime(); t > max {
			max = t
		}
	}
	if len(r.Ranks) > 0 && !approxEqual(max, r.ModeledSeconds) {
		return fmt.Errorf("obs: report makespan %g disagrees with max rank node time %g", r.ModeledSeconds, max)
	}
	return nil
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	return d <= 1e-9*scale
}

// WriteFile validates the report and writes it as indented JSON.
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// AppendTrajectory appends entry to the JSON array stored at path, creating
// the file if needed. The write is crash-safe: the new array goes to a
// uniquely named temp file in the same directory, is fsynced, and only then
// renamed over the original — an interrupted twoface-bench can at worst
// leave a stray temp file, never a truncated or corrupt history.
func AppendTrajectory(path string, entry any) error {
	var arr []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &arr); err != nil {
			return fmt.Errorf("obs: %s is not a JSON array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	arr = append(arr, raw)
	out, err := json.MarshalIndent(arr, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(out, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RecordSkew publishes straggler gauges for the given breakdowns into the
// registry (exec.node_time.max, exec.node_time.mean, exec.node_time.skew).
func RecordSkew(reg *Registry, breakdowns []cluster.Breakdown) {
	if len(breakdowns) == 0 {
		return
	}
	var sum, max float64
	for _, bd := range breakdowns {
		t := bd.NodeTime()
		sum += t
		if t > max {
			max = t
		}
	}
	mean := sum / float64(len(breakdowns))
	reg.Gauge("exec.node_time.max").Set(max)
	reg.Gauge("exec.node_time.mean").Set(mean)
	if mean > 0 {
		reg.Gauge("exec.node_time.skew").Set(max / mean)
	}
}

// RecordOverlap publishes how much of the synchronous half the pipelined
// executor hid behind stripe multicasts: exec.sync.overlap_seconds is the
// cluster-wide SyncOverlap sum and exec.sync.overlap_frac is that sum over
// the serial sync half (SyncComm + SyncComp), in [0, 1). Runs with no
// overlap credit — DisableOverlap, baselines, SDDMM — publish nothing.
func RecordOverlap(reg *Registry, breakdowns []cluster.Breakdown) {
	var overlap, serial float64
	for _, bd := range breakdowns {
		overlap += bd.SyncOverlap
		serial += bd.SyncComm + bd.SyncComp
	}
	if overlap <= 0 {
		return
	}
	reg.Gauge("exec.sync.overlap_seconds").Set(overlap)
	if serial > 0 {
		reg.Gauge("exec.sync.overlap_frac").Set(overlap / serial)
	}
}

// RecordResilience publishes the run's cluster-wide resilience counters as
// gauges (chaos.get_retries, chaos.degradations, ...). Fault-free runs
// publish nothing, keeping healthy snapshots free of chaos series.
func RecordResilience(reg *Registry, rs cluster.ResilienceStats) {
	if !rs.Faulted() {
		return
	}
	reg.Gauge("chaos.get_retries").Set(float64(rs.GetRetries))
	reg.Gauge("chaos.get_exhausted").Set(float64(rs.GetExhausted))
	reg.Gauge("chaos.degradations").Set(float64(rs.Degradations))
	reg.Gauge("chaos.degraded_elems").Set(float64(rs.DegradedElems))
	reg.Gauge("chaos.leg_retries").Set(float64(rs.LegRetries))
	reg.Gauge("chaos.backoff_seconds").Set(rs.BackoffSeconds)
	reg.Gauge("chaos.delay_seconds").Set(rs.DelaySeconds)
	reg.Gauge("chaos.checkpoints").Set(float64(rs.Checkpoints))
	reg.Gauge("chaos.checkpoint_seconds").Set(rs.CheckpointSeconds)
	reg.Gauge("chaos.crashes").Set(float64(rs.Crashes))
	reg.Gauge("chaos.recovered_stripes").Set(float64(rs.RecoveredStripes))
	reg.Gauge("chaos.recovered_panels").Set(float64(rs.RecoveredPanels))
	reg.Gauge("chaos.refetched_elems").Set(float64(rs.RefetchedElems))
	reg.Gauge("chaos.recovery_seconds").Set(rs.RecoverySeconds)
}
