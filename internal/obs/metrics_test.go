package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGatedOnEnabled(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a")
	c.Inc()
	c.Add(5)
	if v := c.Value(); v != 0 {
		t.Fatalf("disabled counter advanced to %d", v)
	}
	reg.SetEnabled(true)
	c.Inc()
	c.Add(5)
	if v := c.Value(); v != 6 {
		t.Fatalf("counter = %d, want 6", v)
	}
	reg.SetEnabled(false)
	c.Inc()
	if v := c.Value(); v != 6 {
		t.Fatalf("counter advanced while disabled: %d", v)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("disabled gauge took a value")
	}
	reg.SetEnabled(true)
	g.Set(3.5)
	g.Set(-1.25)
	if v := g.Value(); v != -1.25 {
		t.Fatalf("gauge = %g, want -1.25 (last write wins)", v)
	}
}

// TestGaugeAddConcurrent: balanced concurrent Adds must return the gauge
// exactly to its starting value — the property a read-compute-Set sequence
// cannot provide.
func TestGaugeAddConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("disabled gauge took an add")
	}
	reg.SetEnabled(true)
	g.Set(7)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 7 {
		t.Fatalf("gauge = %g after balanced concurrent adds, want 7", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+2+50+1000; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	snap := reg.Snapshot().Histograms["h"]
	// v <= 1 -> bucket 0; v <= 10 -> bucket 1; v <= 100 -> bucket 2; overflow.
	if want := []int64{2, 1, 1, 1}; !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if want := []float64{1, 10, 100}; !reflect.DeepEqual(snap.UpperBounds, want) {
		t.Fatalf("upper bounds = %v, want %v", snap.UpperBounds, want)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("Counter re-registration returned a new handle")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Fatal("Gauge re-registration returned a new handle")
	}
	h := reg.Histogram("x", []float64{1, 2})
	if reg.Histogram("x", []float64{99}) != h {
		t.Fatal("Histogram re-registration returned a new handle")
	}
	if got := len(h.upper); got != 2 {
		t.Fatalf("re-registration rewrote bounds: %d", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
}

func TestSnapshotOmitsUntouchedAndRoundTrips(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("touched").Inc()
	reg.Counter("untouched")
	reg.Gauge("set").Set(0) // explicitly set to zero: must survive
	reg.Gauge("never")
	reg.Histogram("observed", []float64{1}).Observe(0.5)
	reg.Histogram("empty", []float64{1})

	snap := reg.Snapshot()
	if _, ok := snap.Counters["untouched"]; ok {
		t.Fatal("zero counter present in snapshot")
	}
	if _, ok := snap.Gauges["never"]; ok {
		t.Fatal("never-set gauge present in snapshot")
	}
	if _, ok := snap.Gauges["set"]; !ok {
		t.Fatal("explicitly zero gauge dropped from snapshot")
	}
	if _, ok := snap.Histograms["empty"]; ok {
		t.Fatal("empty histogram present in snapshot")
	}

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot did not round-trip:\n%+v\n%+v", snap, back)
	}
}

func TestReset(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("c")
	c.Add(7)
	g := reg.Gauge("g")
	g.Set(1)
	h := reg.Histogram("h", []float64{1})
	h.Observe(2)
	reg.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left state behind")
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("Reset snapshot not empty: %+v", snap)
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("registration did not survive Reset")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines, including
// concurrent registration and snapshots, and checks the final totals. Run
// under -race it doubles as the metrics data-race test.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	const (
		workers = 8
		iters   = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			h := reg.Histogram("lat", ExpBuckets(1, 2, 8))
			g := reg.Gauge("last")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i % 7))
				g.Set(float64(i))
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters["shared"]; got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	h := snap.Histograms["lat"]
	if h.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	var perWorker float64
	for i := 0; i < iters; i++ {
		perWorker += float64(i % 7)
	}
	if h.Sum != perWorker*workers {
		t.Fatalf("histogram sum = %g, want %g", h.Sum, perWorker*workers)
	}
}
