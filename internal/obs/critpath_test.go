package obs

import (
	"math"
	"strings"
	"testing"

	"twoface/internal/cluster"
)

// TestAnalyzeBreakdowns attributes a hand-built three-rank run with a known
// makespan: rank 1's async half (4.0) plus Other (0.5) makes it the 4.5 s
// straggler, dominated by AsyncComm.
func TestAnalyzeBreakdowns(t *testing.T) {
	bds := []cluster.Breakdown{
		{SyncComm: 1, SyncComp: 2, SyncOverlap: 0.5, AsyncComm: 0.25, AsyncComp: 0.25, Other: 0.1},
		{SyncComm: 1, SyncComp: 1, AsyncComm: 3, AsyncComp: 1, Other: 0.5},
		{SyncComm: 0.5, SyncComp: 0.5, Other: 0.1},
	}
	cp := AnalyzeBreakdowns(bds)
	if cp == nil {
		t.Fatal("nil attribution for a non-empty run")
	}
	if cp.Makespan != 4.5 {
		t.Fatalf("makespan = %g, want 4.5", cp.Makespan)
	}
	if cp.Straggler != 1 {
		t.Fatalf("straggler = %d, want 1", cp.Straggler)
	}
	if cp.CriticalHalf != "async" {
		t.Fatalf("critical half = %q, want async", cp.CriticalHalf)
	}
	if want := cluster.AsyncComm.String(); cp.DominantPhase != want || cp.DominantSeconds != 3 {
		t.Fatalf("dominant phase = %s (%g s), want %s (3 s)", cp.DominantPhase, cp.DominantSeconds, want)
	}

	// Rank 0: sync half 1+2-0.5 = 2.5 beats async 0.5; node time 2.6.
	r0 := cp.Ranks[0]
	if r0.SyncHalf != 2.5 || r0.AsyncHalf != 0.5 || r0.CriticalHalf != "sync" {
		t.Fatalf("rank 0 halves = %g/%g (%s), want 2.5/0.5 (sync)", r0.SyncHalf, r0.AsyncHalf, r0.CriticalHalf)
	}
	if math.Abs(r0.BarrierWait-(4.5-2.6)) > 1e-12 {
		t.Fatalf("rank 0 barrier wait = %g, want %g", r0.BarrierWait, 4.5-2.6)
	}
	if !cp.Ranks[1].Critical || cp.Ranks[0].Critical || cp.Ranks[2].Critical {
		t.Fatal("critical flag is not exactly on the straggler")
	}
	if cp.Ranks[1].BarrierWait != 0 {
		t.Fatalf("straggler barrier wait = %g, want 0", cp.Ranks[1].BarrierWait)
	}
	wantTotal := (4.5 - r0.NodeTime) + (4.5 - cp.Ranks[2].NodeTime)
	if math.Abs(cp.TotalBarrierWait-wantTotal) > 1e-12 {
		t.Fatalf("total barrier wait = %g, want %g", cp.TotalBarrierWait, wantTotal)
	}

	if err := cp.Reconciles(bds); err != nil {
		t.Fatalf("attribution does not reconcile with its own ledgers: %v", err)
	}

	table := cp.Table()
	for _, want := range []string{"critical path: rank 1 (async half)", "dominant phase: " + cluster.AsyncComm.String(), "<-- async"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestAnalyzeOverlapFlipsCriticalHalf checks the overlap credit is applied
// before picking the critical half: a big SyncOverlap shrinks the sync half
// below the async half, flipping the attribution — and Overlap itself can
// never be the dominant phase.
func TestAnalyzeOverlapFlipsCriticalHalf(t *testing.T) {
	pipelined := []cluster.Breakdown{
		{SyncComm: 2, SyncComp: 2, SyncOverlap: 3, AsyncComm: 1.5, Other: 0.1},
	}
	cp := AnalyzeBreakdowns(pipelined)
	if cp.CriticalHalf != "async" {
		t.Fatalf("with overlap credit: critical half = %q, want async (sync half %g vs async %g)",
			cp.CriticalHalf, cp.Ranks[0].SyncHalf, cp.Ranks[0].AsyncHalf)
	}
	if cp.Makespan != 1.6 {
		t.Fatalf("makespan = %g, want 1.6", cp.Makespan)
	}
	if want := cluster.AsyncComm.String(); cp.DominantPhase != want {
		t.Fatalf("dominant phase = %q, want %q (Overlap must never dominate)", cp.DominantPhase, want)
	}

	// Same ledger without the credit: sync half 4 dominates.
	serial := []cluster.Breakdown{
		{SyncComm: 2, SyncComp: 2, AsyncComm: 1.5, Other: 0.1},
	}
	cp = AnalyzeBreakdowns(serial)
	if cp.CriticalHalf != "sync" {
		t.Fatalf("without overlap credit: critical half = %q, want sync", cp.CriticalHalf)
	}
	if cp.Makespan != 4.1 {
		t.Fatalf("makespan = %g, want 4.1", cp.Makespan)
	}
}

// TestAnalyzeBreakdownsDegenerate covers the empty and all-zero inputs.
func TestAnalyzeBreakdownsDegenerate(t *testing.T) {
	if cp := AnalyzeBreakdowns(nil); cp != nil {
		t.Fatalf("empty input: got %+v, want nil", cp)
	}
	cp := AnalyzeBreakdowns(make([]cluster.Breakdown, 3))
	if cp.Straggler != 0 || cp.Makespan != 0 {
		t.Fatalf("all-zero ledgers: straggler %d makespan %g, want 0 and 0", cp.Straggler, cp.Makespan)
	}
	if err := cp.Reconciles(make([]cluster.Breakdown, 3)); err != nil {
		t.Fatal(err)
	}
}

// TestReconcilesRejects checks the bit-for-bit guard actually fires: a
// perturbed ledger, a wrong rank count, and a falsified makespan all fail.
func TestReconcilesRejects(t *testing.T) {
	bds := []cluster.Breakdown{
		{SyncComm: 1, SyncComp: 2, Other: 0.1},
		{AsyncComm: 4, Other: 0.2},
	}
	cp := AnalyzeBreakdowns(bds)

	mutated := append([]cluster.Breakdown(nil), bds...)
	mutated[0].SyncComp += 1e-9
	if err := cp.Reconciles(mutated); err == nil {
		t.Fatal("Reconciles accepted a perturbed ledger")
	}
	if err := cp.Reconciles(bds[:1]); err == nil {
		t.Fatal("Reconciles accepted a wrong rank count")
	}
	forged := *cp
	forged.Makespan *= 2
	if err := forged.Reconciles(bds); err == nil {
		t.Fatal("Reconciles accepted a forged makespan")
	}
}

// TestTracerCriticalPath checks the span-enriched analysis: top ops come
// only from the straggler's critical half (plus Other), aggregated per op
// and sorted by seconds, and the totals reconcile with the span-tiled
// ledgers.
func TestTracerCriticalPath(t *testing.T) {
	tr := NewTracer(0)
	// Rank 0: small sync-only work.
	tr.Span(0, cluster.SyncComm, "mcast", 0, 0.5)
	tr.Span(0, cluster.Other, "setup", 0, 0.1)
	// Rank 1 (straggler, sync half): mcast 2.0 s across two spans, panel
	// 1.5 s, setup 0.2 s; async get 0.25 s must not appear in top ops.
	tr.Span(1, cluster.SyncComm, "mcast", 0, 1)
	tr.Span(1, cluster.SyncComm, "mcast", 1, 2)
	tr.Span(1, cluster.SyncComp, "panel", 0, 1.5)
	tr.Span(1, cluster.Other, "setup", 0, 0.2)
	tr.Span(1, cluster.AsyncComm, "get", 0, 0.25)

	cp := tr.CriticalPath()
	if cp == nil {
		t.Fatal("nil critical path from a populated tracer")
	}
	if cp.Straggler != 1 || cp.CriticalHalf != "sync" {
		t.Fatalf("straggler %d half %q, want 1/sync", cp.Straggler, cp.CriticalHalf)
	}
	if err := cp.Reconciles(tr.Totals()); err != nil {
		t.Fatal(err)
	}
	if len(cp.TopOps) != 3 {
		t.Fatalf("top ops = %+v, want mcast/panel/setup", cp.TopOps)
	}
	wantOps := []struct {
		op  string
		sec float64
	}{{"mcast", 2}, {"panel", 1.5}, {"setup", 0.2}}
	for i, w := range wantOps {
		if cp.TopOps[i].Op != w.op || math.Abs(cp.TopOps[i].Seconds-w.sec) > 1e-12 {
			t.Fatalf("top op %d = %+v, want %s %g s", i, cp.TopOps[i], w.op, w.sec)
		}
	}
	for _, o := range cp.TopOps {
		if o.Op == "get" {
			t.Fatal("async op leaked into a sync-half attribution")
		}
	}
	if cp.DroppedSpans != 0 || len(cp.Warnings) != 0 {
		t.Fatalf("unexpected drops/warnings: %d %v", cp.DroppedSpans, cp.Warnings)
	}
}

// TestTracerCriticalPathDropWarning checks a saturated tracer surfaces its
// incompleteness: the drop count is reported and a warning is appended,
// while the ledger totals (and hence Reconciles) stay exact.
func TestTracerCriticalPathDropWarning(t *testing.T) {
	tr := NewTracer(1) // per-rank cap of one stored span
	tr.Span(0, cluster.SyncComm, "a", 0, 1)
	tr.Span(0, cluster.SyncComm, "b", 1, 2) // dropped, still counted in totals

	cp := tr.CriticalPath()
	if cp.DroppedSpans != 1 {
		t.Fatalf("dropped spans = %d, want 1", cp.DroppedSpans)
	}
	if len(cp.Warnings) == 0 || !strings.Contains(cp.Warnings[0], "dropped 1 spans") {
		t.Fatalf("missing drop warning: %v", cp.Warnings)
	}
	if cp.Makespan != 2 {
		t.Fatalf("makespan = %g, want 2 (dropped span must still charge the ledger)", cp.Makespan)
	}
	if err := cp.Reconciles(tr.Totals()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cp.Table(), "warning:") {
		t.Fatal("table does not render the warning")
	}
}

// TestAnalyzeRecoveryFields: the Checkpoint and Recovery ledger fields ride
// through the analysis — copied per rank, counted in the serial makespan,
// eligible as dominant phase, guarded by Reconciles, and surfaced as Table
// columns only when a rank actually spent time there.
func TestAnalyzeRecoveryFields(t *testing.T) {
	bds := []cluster.Breakdown{
		{SyncComm: 1, SyncComp: 1, Other: 0.1, Checkpoint: 0.2, Recovery: 5},
		{AsyncComm: 1, Other: 0.1},
	}
	cp := AnalyzeBreakdowns(bds)
	if cp.Ranks[0].Checkpoint != 0.2 || cp.Ranks[0].Recovery != 5 {
		t.Fatalf("rank 0 recovery fields not copied: %+v", cp.Ranks[0])
	}
	if cp.Straggler != 0 {
		t.Fatalf("straggler = %d, want 0 (recovery-dominated)", cp.Straggler)
	}
	if want := 0.1 + 0.2 + 5 + 2; cp.Makespan != want {
		t.Fatalf("makespan = %g, want %g", cp.Makespan, want)
	}
	if cp.DominantPhase != "Recovery" {
		t.Fatalf("dominant phase = %q, want Recovery", cp.DominantPhase)
	}
	if err := cp.Reconciles(bds); err != nil {
		t.Fatal(err)
	}
	mutated := append([]cluster.Breakdown(nil), bds...)
	mutated[0].Recovery += 1e-9
	if err := cp.Reconciles(mutated); err == nil {
		t.Fatal("Reconciles accepted a perturbed Recovery ledger")
	}
	mutated = append([]cluster.Breakdown(nil), bds...)
	mutated[0].Checkpoint += 1e-9
	if err := cp.Reconciles(mutated); err == nil {
		t.Fatal("Reconciles accepted a perturbed Checkpoint ledger")
	}

	if tbl := cp.Table(); !strings.Contains(tbl, "Checkpoint") || !strings.Contains(tbl, "Recovery") {
		t.Errorf("recovery run's table lacks the new columns:\n%s", tbl)
	}
	healthy := AnalyzeBreakdowns([]cluster.Breakdown{{SyncComm: 1, Other: 0.1}})
	if tbl := healthy.Table(); strings.Contains(tbl, "Checkpoint") || strings.Contains(tbl, "Recovery") {
		t.Errorf("fault-free table grew recovery columns:\n%s", tbl)
	}
}
