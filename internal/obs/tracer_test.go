package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"twoface/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite golden files")

func approxEq(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12*scale
}

// TestTracerConcurrent records spans from many goroutines across several
// ranks and checks that the per-rank totals are exact. Run under -race it
// doubles as the span-recording data-race test.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0)
	const (
		ranks = 4
		iters = 500
	)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var clock float64
			for i := 0; i < iters; i++ {
				tr.Span(rank, cluster.SyncComp, "compute", clock, clock+1e-6)
				clock += 1e-6
				tr.Instant(rank, "mark", clock)
			}
		}(r)
	}
	wg.Wait()
	totals := tr.Totals()
	if len(totals) != ranks {
		t.Fatalf("totals for %d ranks, want %d", len(totals), ranks)
	}
	for r, bd := range totals {
		if want := iters * 1e-6; !approxEq(bd.SyncComp, want) {
			t.Fatalf("rank %d SyncComp = %g, want %g", r, bd.SyncComp, want)
		}
	}
	if got := len(tr.Spans()); got != ranks*iters {
		t.Fatalf("%d spans stored, want %d", got, ranks*iters)
	}
	for _, d := range tr.Dropped() {
		if d != 0 {
			t.Fatalf("unexpected drops: %v", tr.Dropped())
		}
	}
}

// TestTracerDropCap checks that the per-rank cap drops spans but keeps the
// totals exact, and that Info reports the drop counts.
func TestTracerDropCap(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		start := float64(i)
		tr.Span(0, cluster.AsyncComm, "get", start, start+0.5)
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("%d spans stored, want 2", got)
	}
	if d := tr.Dropped(); len(d) != 1 || d[0] != 3 {
		t.Fatalf("dropped = %v, want [3]", d)
	}
	if got := tr.Totals()[0].AsyncComm; !approxEq(got, 2.5) {
		t.Fatalf("total = %g, want 2.5 (drops must still accumulate)", got)
	}
	info := tr.Info()
	if info.Spans != 2 || len(info.DroppedPerRank) != 1 || info.DroppedPerRank[0] != 3 {
		t.Fatalf("info = %+v", info)
	}

	tr.Reset()
	if len(tr.Spans()) != 0 || len(tr.Totals()) != 0 || tr.Info().Spans != 0 {
		t.Fatal("Reset left state behind")
	}
}

// goldenRun drives a deterministic 2-rank cluster run with the tracer
// attached. Ranks take turns via a token channel so the recorded span order
// (and therefore the exported JSON) is reproducible byte-for-byte.
func goldenRun(t *testing.T, tr *Tracer) *cluster.Cluster {
	t.Helper()
	clu, err := cluster.New(2, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	clu.SetSpanRecorder(tr)
	turn := make(chan int, 1)
	turn <- 0
	err = clu.Run(func(r *cluster.Rank) error {
		for phase := 0; phase < 2; phase++ {
			for got := range turn {
				if got == r.ID {
					break
				}
				turn <- got
			}
			scale := float64(r.ID + 1)
			r.ChargeOp(cluster.SyncComm, "multicast.recv", 1e-5*scale)
			r.ChargeOp(cluster.SyncComp, "compute.sync.panel", 3e-5*scale)
			r.ChargeOp(cluster.AsyncComm, "get.indexed", 2e-6*scale)
			r.ChargeOp(cluster.AsyncComp, "compute.async.stripe", 4e-6*scale)
			r.Charge(cluster.Other, 1e-6)
			r.Instant("epilogue.flush")
			turn <- (r.ID + 1) % 2
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clu
}

// TestChromeTraceGolden runs a deterministic 2-rank cluster, exports the
// Chrome trace-event JSON, schema-checks it by unmarshalling, verifies the
// per-rank span totals equal the cluster's virtual-time breakdown, and
// compares the bytes against the checked-in golden file
// (go test ./internal/obs -run Golden -update to regenerate).
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer(0)
	clu := goldenRun(t, tr)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Schema check: the document must unmarshal into the trace-event shape
	// Perfetto loads, with the fields the viewer keys on.
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace JSON does not unmarshal: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	var meta, complete, instants int
	durByRankCat := map[[2]int]float64{}
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			if _, ok := ev.Args["name"]; !ok {
				t.Fatalf("metadata event without args.name: %+v", ev)
			}
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 || ev.Name == "" {
				t.Fatalf("malformed complete event: %+v", ev)
			}
			durByRankCat[[2]int{ev.Pid, ev.Tid}] += ev.Dur
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("instant event without thread scope: %+v", ev)
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
		if ev.Pid < 0 || ev.Pid >= clu.P() {
			t.Fatalf("event pid %d out of range", ev.Pid)
		}
	}
	if meta != clu.P()*(1+8) { // process_name + eight category tracks per rank
		t.Fatalf("%d metadata events, want %d", meta, clu.P()*9)
	}
	if complete != 2*2*5 { // 2 phases x 2 ranks x 5 charges
		t.Fatalf("%d complete events, want 20", complete)
	}
	if instants != 2*2 { // two explicit flushes per rank, no barriers in goldenRun
		t.Fatalf("%d instant events, want 4", instants)
	}

	// Span totals must equal the cluster's own ledger, category by category
	// (trace microseconds vs ledger seconds).
	for rank, bd := range clu.Breakdowns() {
		for cat, want := range map[int]float64{
			int(cluster.SyncComm):  bd.SyncComm,
			int(cluster.SyncComp):  bd.SyncComp,
			int(cluster.AsyncComm): bd.AsyncComm,
			int(cluster.AsyncComp): bd.AsyncComp,
			int(cluster.Other):     bd.Other,
		} {
			if got := durByRankCat[[2]int{rank, cat}] / 1e6; !approxEq(got, want) {
				t.Fatalf("rank %d cat %d: span total %g != breakdown %g", rank, cat, got, want)
			}
		}
	}
	// And the tracer's running totals match the ledger too.
	for rank, bd := range tr.Totals() {
		if want := clu.Breakdowns()[rank]; bd != want {
			t.Fatalf("rank %d tracer totals %+v != breakdown %+v", rank, bd, want)
		}
	}

	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON differs from %s (run with -update to regenerate)\ngot:  %s\nwant: %s",
			golden, truncate(buf.String()), truncate(string(want)))
	}
}

func truncate(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}

func TestTracerInstantOrdering(t *testing.T) {
	tr := NewTracer(0)
	tr.Instant(1, "barrier", 0.5)
	ct := tr.ChromeTrace()
	found := false
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "i" && ev.Name == "barrier" {
			found = true
			if ev.Ts != 0.5e6 || ev.Pid != 1 {
				t.Fatalf("instant mapped wrong: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("instant missing from Chrome trace")
	}
}
