package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantile checks the bucket-interpolation estimator on a known
// distribution: one observation per bucket of bounds {1, 2, 4} plus one in
// the +Inf overflow.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	h := reg.Histogram("q", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}

	cases := []struct {
		q, want float64
	}{
		{0.25, 1},    // rank 1: exactly fills bucket [0, 1]
		{0.50, 2},    // rank 2: exactly fills bucket (1, 2]
		{0.375, 1.5}, // rank 1.5: halfway through bucket (1, 2]
		{0.95, 4},    // rank 3.8: lands in +Inf, clamps to the last finite bound
		{0.99, 4},
		{0, 0},  // rank 0: the bottom of the first occupied bucket
		{-1, 0}, // q clamps to [0, 1]
		{2, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}
}

// TestHistogramQuantileEmpty checks the degenerate inputs: no observations,
// and observations with no finite bound to interpolate toward.
func TestHistogramQuantileEmpty(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	if got := reg.Histogram("empty", []float64{1}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %g, want NaN", got)
	}
	// Only an overflow bucket: nothing finite to clamp to.
	hs := HistogramSnapshot{Counts: []int64{5}}
	if got := hs.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("boundless snapshot Quantile = %g, want NaN", got)
	}
}

// TestSnapshotFillsQuantiles checks Registry.Snapshot computes the p50/p95/
// p99 trio at snapshot time, so serialized reports keep them.
func TestSnapshotFillsQuantiles(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	h := reg.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	hs, ok := snap.Histograms["lat"]
	if !ok {
		t.Fatal("snapshot lost the histogram")
	}
	want := map[string]float64{"p50": 2, "p95": 4, "p99": 4}
	for label, v := range want {
		if got := hs.Quantiles[label]; math.Abs(got-v) > 1e-12 {
			t.Errorf("Quantiles[%q] = %g, want %g", label, got, v)
		}
	}
	if len(hs.Quantiles) != len(want) {
		t.Errorf("snapshot quantiles = %v, want exactly %v", hs.Quantiles, want)
	}
}
