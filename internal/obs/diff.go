package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Benchstat-style comparison of two run reports (or two trajectory
// entries): the regression gate that answers "did this PR move the
// makespan, and which phase moved it". Modeled metrics are deterministic in
// this repository, so their noise threshold is tight; wall-clock metrics
// measure the host and get a generous one. The comparison is pure data in,
// pure data out — scripts/compare.sh and twoface-bench -compare-report wrap
// it, and check.sh uses it as a soft gate.

// DiffOptions sets the noise thresholds of a comparison. Zero values take
// the defaults.
type DiffOptions struct {
	// ModeledTol is the relative tolerance for deterministic modeled
	// metrics (modeled seconds, breakdown categories, transfer counters).
	// Default 1e-3: anything past it is a real change, not noise.
	ModeledTol float64
	// WallTol is the relative tolerance for wall-clock metrics, which
	// measure the host and jitter freely. Default 0.25.
	WallTol float64
}

func (o DiffOptions) normalize() DiffOptions {
	if o.ModeledTol == 0 {
		o.ModeledTol = 1e-3
	}
	if o.WallTol == 0 {
		o.WallTol = 0.25
	}
	return o
}

// Verdicts of one compared metric.
const (
	VerdictOK        = "ok"        // within the noise threshold
	VerdictImproved  = "improved"  // lower-is-better metric moved down
	VerdictRegressed = "regressed" // lower-is-better metric moved up
	VerdictChanged   = "changed"   // direction-neutral metric moved
	VerdictAdded     = "added"     // present only in the new report
	VerdictRemoved   = "removed"   // present only in the old report
)

// DiffRow compares one metric across the two reports.
type DiffRow struct {
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Delta   float64 `json:"delta"`
	Pct     float64 `json:"pct"` // 100 * (new-old)/old; NaN when old == 0
	Verdict string  `json:"verdict"`
}

// Diff is the outcome of comparing two reports.
type Diff struct {
	OldPath string    `json:"old_path,omitempty"`
	NewPath string    `json:"new_path,omitempty"`
	Rows    []DiffRow `json:"rows"`
	// Notes carries non-numeric observations: config mismatches, a moved
	// dominant phase, a different straggler rank.
	Notes []string `json:"notes,omitempty"`
	// Regressions counts rows whose verdict is "regressed" — the soft
	// gate's exit signal.
	Regressions int `json:"regressions"`
}

// lowerBetter marks the metrics where an increase is a regression.
var lowerBetter = map[string]bool{
	"modeled_seconds":            true,
	"wall_seconds":               true,
	"breakdown.sync_comm":        true,
	"breakdown.sync_comp":        true,
	"breakdown.async_comm":       true,
	"breakdown.async_comp":       true,
	"breakdown.other":            true,
	"transfer.collective_bytes":  true,
	"transfer.collective_msgs":   true,
	"transfer.one_sided_bytes":   true,
	"transfer.one_sided_gets":    true,
	"transfer.one_sided_msgs":    true,
	"skew.max_over_mean":         true,
	"critical_path.barrier_wait": true,
}

// wallMetric marks host-time metrics that take the generous threshold.
func wallMetric(name string) bool { return strings.Contains(name, "wall") }

// compare builds one row from a metric pair.
func (o DiffOptions) compare(name string, oldV, newV float64) DiffRow {
	row := DiffRow{Metric: name, Old: oldV, New: newV, Delta: newV - oldV}
	if oldV != 0 {
		row.Pct = 100 * (newV - oldV) / oldV
	} else if newV != 0 {
		row.Pct = math.Inf(sign(newV - oldV))
	}
	tol := o.ModeledTol
	if wallMetric(name) {
		tol = o.WallTol
	}
	scale := math.Max(math.Abs(oldV), math.Abs(newV))
	switch {
	case math.Abs(row.Delta) <= tol*scale:
		row.Verdict = VerdictOK
	case !lowerBetter[name]:
		row.Verdict = VerdictChanged
	case row.Delta > 0:
		row.Verdict = VerdictRegressed
	default:
		row.Verdict = VerdictImproved
	}
	return row
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// CompareReports diffs two structured run reports metric by metric.
func CompareReports(oldR, newR *Report, opt DiffOptions) *Diff {
	opt = opt.normalize()
	d := &Diff{}
	add := func(name string, oldV, newV float64) {
		if oldV == 0 && newV == 0 {
			return
		}
		d.Rows = append(d.Rows, opt.compare(name, oldV, newV))
	}

	add("modeled_seconds", oldR.ModeledSeconds, newR.ModeledSeconds)
	add("wall_seconds", oldR.WallSeconds, newR.WallSeconds)
	add("breakdown.sync_comm", oldR.Breakdown.SyncComm, newR.Breakdown.SyncComm)
	add("breakdown.sync_comp", oldR.Breakdown.SyncComp, newR.Breakdown.SyncComp)
	add("breakdown.sync_overlap", oldR.Breakdown.SyncOverlap, newR.Breakdown.SyncOverlap)
	add("breakdown.async_comm", oldR.Breakdown.AsyncComm, newR.Breakdown.AsyncComm)
	add("breakdown.async_comp", oldR.Breakdown.AsyncComp, newR.Breakdown.AsyncComp)
	add("breakdown.other", oldR.Breakdown.Other, newR.Breakdown.Other)
	add("transfer.collective_bytes", float64(oldR.Transfer.CollectiveBytes), float64(newR.Transfer.CollectiveBytes))
	add("transfer.collective_msgs", float64(oldR.Transfer.CollectiveMsgs), float64(newR.Transfer.CollectiveMsgs))
	add("transfer.one_sided_bytes", float64(oldR.Transfer.OneSidedBytes), float64(newR.Transfer.OneSidedBytes))
	add("transfer.one_sided_gets", float64(oldR.Transfer.OneSidedGets), float64(newR.Transfer.OneSidedGets))
	add("transfer.one_sided_msgs", float64(oldR.Transfer.OneSidedMsgs), float64(newR.Transfer.OneSidedMsgs))
	if oldR.Skew != nil && newR.Skew != nil {
		add("skew.max_over_mean", oldR.Skew.MaxOverMean, newR.Skew.MaxOverMean)
	}
	if oldR.CriticalPath != nil && newR.CriticalPath != nil {
		add("critical_path.barrier_wait", oldR.CriticalPath.TotalBarrierWait, newR.CriticalPath.TotalBarrierWait)
		if oldR.CriticalPath.Straggler != newR.CriticalPath.Straggler {
			d.Notes = append(d.Notes, fmt.Sprintf("straggler moved: rank %d -> rank %d",
				oldR.CriticalPath.Straggler, newR.CriticalPath.Straggler))
		}
		if oldR.CriticalPath.DominantPhase != newR.CriticalPath.DominantPhase {
			d.Notes = append(d.Notes, fmt.Sprintf("dominant phase moved: %s -> %s",
				oldR.CriticalPath.DominantPhase, newR.CriticalPath.DominantPhase))
		}
	}
	d.compareCounters(oldCounters(oldR), oldCounters(newR), opt)
	d.noteConfig(oldR.Config, newR.Config)
	d.countRegressions()
	return d
}

func oldCounters(r *Report) map[string]int64 {
	if r.Metrics == nil {
		return nil
	}
	return r.Metrics.Counters
}

// compareCounters diffs the metric-snapshot counters of both reports
// (union of names; counters are direction-neutral "changed" rows).
func (d *Diff) compareCounters(oldC, newC map[string]int64, opt DiffOptions) {
	names := map[string]bool{}
	for n := range oldC {
		names[n] = true
	}
	for n := range newC {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		oldV, inOld := oldC[n]
		newV, inNew := newC[n]
		name := "counter." + n
		switch {
		case !inOld:
			d.Rows = append(d.Rows, DiffRow{Metric: name, New: float64(newV), Delta: float64(newV), Verdict: VerdictAdded})
		case !inNew:
			d.Rows = append(d.Rows, DiffRow{Metric: name, Old: float64(oldV), Delta: -float64(oldV), Verdict: VerdictRemoved})
		default:
			d.Rows = append(d.Rows, opt.compare(name, float64(oldV), float64(newV)))
		}
	}
}

// noteConfig flags config keys that differ: a diff across mismatched
// configurations is comparing apples to oranges and the reader must know.
func (d *Diff) noteConfig(oldC, newC map[string]any) {
	keys := map[string]bool{}
	for k := range oldC {
		keys[k] = true
	}
	for k := range newC {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		ov, nv := fmt.Sprint(oldC[k]), fmt.Sprint(newC[k])
		if ov != nv {
			d.Notes = append(d.Notes, fmt.Sprintf("config %q differs: %s vs %s (comparison may not be like-for-like)", k, ov, nv))
		}
	}
}

func (d *Diff) countRegressions() {
	d.Regressions = 0
	for _, r := range d.Rows {
		if r.Verdict == VerdictRegressed {
			d.Regressions++
		}
	}
}

// String renders the diff as an aligned benchstat-style table. Rows whose
// verdict is "ok" are summarized in one line to keep the signal dense.
func (d *Diff) String() string {
	var sb strings.Builder
	if d.OldPath != "" || d.NewPath != "" {
		fmt.Fprintf(&sb, "report diff: %s -> %s\n", d.OldPath, d.NewPath)
	}
	fmt.Fprintf(&sb, "  %-34s %14s %14s %10s  %s\n", "metric", "old", "new", "delta", "verdict")
	ok := 0
	for _, r := range d.Rows {
		if r.Verdict == VerdictOK {
			ok++
			continue
		}
		pct := "n/a"
		if !math.IsNaN(r.Pct) && !math.IsInf(r.Pct, 0) {
			pct = fmt.Sprintf("%+.1f%%", r.Pct)
		}
		fmt.Fprintf(&sb, "  %-34s %14.6g %14.6g %10s  %s\n", r.Metric, r.Old, r.New, pct, r.Verdict)
	}
	fmt.Fprintf(&sb, "  %d metrics within noise thresholds; %d regressed\n", ok, d.Regressions)
	for _, n := range d.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// CompareFiles diffs two report files. Each file may be a structured run
// report (twoface-run/-bench -report output) or a trajectory array
// (BENCH_runs.json style), in which case its last entry is compared — "did
// the most recent run regress against the previous baseline file".
func CompareFiles(oldPath, newPath string, opt DiffOptions) (*Diff, error) {
	oldR, err := loadReportish(oldPath)
	if err != nil {
		return nil, err
	}
	newR, err := loadReportish(newPath)
	if err != nil {
		return nil, err
	}
	d := CompareReports(oldR, newR, opt)
	d.OldPath, d.NewPath = oldPath, newPath
	return d, nil
}

// loadReportish reads a report file or the last entry of a trajectory
// array, tolerating the compact trajectory entry shape (a subset of
// Report's fields plus extras, which json ignores).
func loadReportish(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if strings.HasPrefix(trimmed, "[") {
		var arr []json.RawMessage
		if err := json.Unmarshal(data, &arr); err != nil {
			return nil, fmt.Errorf("obs: %s: %w", path, err)
		}
		if len(arr) == 0 {
			return nil, fmt.Errorf("obs: %s: empty trajectory", path)
		}
		data = arr[len(arr)-1]
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &r, nil
}
