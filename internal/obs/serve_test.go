package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches path from the server and returns status, content type, body.
func get(t *testing.T, s *Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestServerEndpoints starts a real listener on a free port and checks every
// route: the OpenMetrics exposition with its mandated content type, the
// health probe echoing the published status, the report 404-then-200 cycle,
// and the index.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("exec.sync.stripes").Add(7)

	s := NewServer(reg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address after Start")
	}

	code, ctype, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ctype != OpenMetricsContentType {
		t.Fatalf("/metrics content type %q, want %q", ctype, OpenMetricsContentType)
	}
	if !strings.Contains(body, "# TYPE exec_sync_stripes counter\n") ||
		!strings.Contains(body, "exec_sync_stripes_total 7\n") ||
		!strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("/metrics body is not a valid exposition:\n%s", body)
	}

	code, _, body = get(t, s, "/healthz")
	if code != http.StatusOK || body != "ok idle\n" {
		t.Fatalf("/healthz = %d %q, want 200 %q", code, body, "ok idle\n")
	}
	s.SetStatus("running")
	if _, _, body = get(t, s, "/healthz"); body != "ok running\n" {
		t.Fatalf("/healthz after SetStatus = %q", body)
	}

	if code, _, _ = get(t, s, "/report"); code != http.StatusNotFound {
		t.Fatalf("/report before SetReport = %d, want 404", code)
	}
	rep := NewReport("serve-test")
	rep.ModeledSeconds = 0.5
	s.SetReport(rep)
	code, ctype, body = get(t, s, "/report")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/report = %d %q", code, ctype)
	}
	var back Report
	if err := json.Unmarshal([]byte(body), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "serve-test" || back.ModeledSeconds != 0.5 {
		t.Fatalf("/report round trip lost the report: %+v", back)
	}

	if code, _, body = get(t, s, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _, _ = get(t, s, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestServe covers the CLI helper: empty address is a no-op, a real address
// binds the Default registry, and a bad address surfaces the bind error
// instead of killing the run.
func TestServe(t *testing.T) {
	if s, err := Serve(""); s != nil || err != nil {
		t.Fatalf("Serve(\"\") = %v, %v, want nil, nil", s, err)
	}
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _, _ := get(t, s, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz on Serve'd server = %d", code)
	}
	if _, err := Serve("256.0.0.1:bad"); err == nil {
		t.Fatal("Serve accepted an unbindable address")
	}
}
