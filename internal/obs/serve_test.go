package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches path from the server and returns status, content type, body.
func get(t *testing.T, s *Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestServerEndpoints starts a real listener on a free port and checks every
// route: the OpenMetrics exposition with its mandated content type, the
// health probe echoing the published status, the report 404-then-200 cycle,
// and the index.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("exec.sync.stripes").Add(7)

	s := NewServer(reg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address after Start")
	}

	code, ctype, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ctype != OpenMetricsContentType {
		t.Fatalf("/metrics content type %q, want %q", ctype, OpenMetricsContentType)
	}
	if !strings.Contains(body, "# TYPE exec_sync_stripes counter\n") ||
		!strings.Contains(body, "exec_sync_stripes_total 7\n") ||
		!strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("/metrics body is not a valid exposition:\n%s", body)
	}

	code, _, body = get(t, s, "/healthz")
	if code != http.StatusOK || body != "ok idle\n" {
		t.Fatalf("/healthz = %d %q, want 200 %q", code, body, "ok idle\n")
	}
	s.SetStatus("running")
	if _, _, body = get(t, s, "/healthz"); body != "ok running\n" {
		t.Fatalf("/healthz after SetStatus = %q", body)
	}

	if code, _, _ = get(t, s, "/report"); code != http.StatusNotFound {
		t.Fatalf("/report before SetReport = %d, want 404", code)
	}
	rep := NewReport("serve-test")
	rep.ModeledSeconds = 0.5
	s.SetReport(rep)
	code, ctype, body = get(t, s, "/report")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/report = %d %q", code, ctype)
	}
	var back Report
	if err := json.Unmarshal([]byte(body), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "serve-test" || back.ModeledSeconds != 0.5 {
		t.Fatalf("/report round trip lost the report: %+v", back)
	}

	if code, _, body = get(t, s, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _, _ = get(t, s, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestServerShutdownDrains proves the graceful-stop contract a long-lived
// daemon relies on: an in-flight handler runs to completion while Shutdown
// waits, the response arrives intact, and once Shutdown returns the listener
// is gone. A second Shutdown (and one without a Start) is a no-op.
func TestServerShutdownDrains(t *testing.T) {
	s := NewServer(NewRegistry())
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	}))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	type reply struct {
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- reply{body: string(b), err: err}
	}()
	<-entered

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before the in-flight handler finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request = %q, %v; want it drained intact", r.body, r.err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := NewServer(nil).Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown without Start: %v", err)
	}
}

// TestServerShutdownDeadline: when the drain context expires first, Shutdown
// gives up, reports the context error, and hard-closes the straggler so its
// goroutine cannot leak.
func TestServerShutdownDeadline(t *testing.T) {
	s := NewServer(NewRegistry())
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	s.Handle("/stuck", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite a stuck handler")
	}
}

// TestServerHandle mounts an extra route and checks it coexists with the
// built-in ops endpoints on one mux.
func TestServerHandle(t *testing.T) {
	s := NewServer(NewRegistry())
	s.Handle("/v1/echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "echo")
	}))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _, body := get(t, s, "/v1/echo"); code != http.StatusOK || body != "echo" {
		t.Fatalf("/v1/echo = %d %q", code, body)
	}
	if code, _, _ := get(t, s, "/healthz"); code != http.StatusOK {
		t.Fatalf("ops route lost after Handle: %d", code)
	}
}

// TestServe covers the CLI helper: empty address is a no-op, a real address
// binds the Default registry, and a bad address surfaces the bind error
// instead of killing the run.
func TestServe(t *testing.T) {
	if s, err := Serve(""); s != nil || err != nil {
		t.Fatalf("Serve(\"\") = %v, %v, want nil, nil", s, err)
	}
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _, _ := get(t, s, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz on Serve'd server = %d", code)
	}
	if _, err := Serve("256.0.0.1:bad"); err == nil {
		t.Fatal("Serve accepted an unbindable address")
	}
}
