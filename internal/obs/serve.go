package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The live ops endpoint: a tiny HTTP server that makes a running solver
// observable from outside the process. /metrics serves the registry in
// OpenMetrics text format (scrapeable by Prometheus mid-run), /report serves
// the latest structured run report as JSON, /healthz answers liveness
// probes, and /debug/pprof/* exposes the standard Go profiler. Serving is
// read-only: handlers snapshot state under the registry's own atomics, so a
// scrape never perturbs the simulation, and enabling -listen leaves modeled
// results bit-identical.

// Server exposes a Registry (and optionally a Report) over HTTP.
type Server struct {
	reg *Registry

	mu     sync.Mutex
	report *Report
	status string
	ln     net.Listener
	srv    *http.Server
	extra  []route
}

// route is one caller-registered handler (see Handle).
type route struct {
	pattern string
	handler http.Handler
}

// NewServer returns a server exposing reg. A nil reg uses the process-wide
// Default registry.
func NewServer(reg *Registry) *Server {
	if reg == nil {
		reg = Default
	}
	return &Server{reg: reg, status: "idle"}
}

// SetReport publishes (or replaces) the report served at /report. Safe to
// call while the server is running; scrapes see either the old or the new
// report, never a torn one.
func (s *Server) SetReport(r *Report) {
	s.mu.Lock()
	s.report = r
	s.mu.Unlock()
}

// SetStatus publishes a one-word run phase ("running", "done", ...) echoed
// by /healthz so a watcher can tell a live run from a finished one.
func (s *Server) SetStatus(status string) {
	s.mu.Lock()
	s.status = status
	s.mu.Unlock()
}

// Handle registers an additional handler on the ops mux, so a daemon can
// mount its own routes (e.g. /v1/multiply) next to the observability
// endpoints and share one listener, one Start, and one graceful Shutdown.
// Call before Start; patterns follow http.ServeMux rules and must not
// collide with the built-in ops routes.
func (s *Server) Handle(pattern string, handler http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extra = append(s.extra, route{pattern: pattern, handler: handler})
}

// Handler returns the ops mux: /metrics, /report, /healthz, /debug/pprof/*,
// plus any caller-registered routes (see Handle).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.mu.Lock()
	for _, rt := range s.extra {
		mux.Handle(rt.pattern, rt.handler)
	}
	s.mu.Unlock()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "twoface ops endpoint\n\n/metrics  OpenMetrics exposition\n/report   latest run report (JSON)\n/healthz  liveness probe\n/debug/pprof/  Go profiler\n")
	})
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", OpenMetricsContentType)
	_ = WriteOpenMetrics(w, s.reg.Snapshot())
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	r := s.report
	s.mu.Unlock()
	if r == nil {
		http.Error(w, "no report yet: the run has not completed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	status := s.status
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok %s\n", status)
}

// Start binds addr (host:port; ":0" picks a free port) and serves in a
// background goroutine. The bound address is available from Addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately, dropping in-flight requests. Safe to
// call without a prior Start. Long-lived daemons should prefer Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Shutdown stops the server gracefully: the listener closes first (no new
// connections), then in-flight handlers run to completion, bounded by ctx —
// when ctx expires the remaining connections are closed hard and ctx's error
// is returned. This is the stop path a long-lived daemon wants on SIGTERM;
// the original Close drops in-flight scrapes and multiplies on the floor.
// Safe to call without a prior Start, and at most once per Start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	if err != nil {
		// Shutdown abandons lingering connections when ctx expires; close
		// them so the process does not leak their goroutines.
		_ = srv.Close()
	}
	return err
}

// Serve is the one-call form used by the CLIs: start an ops server for the
// Default registry on addr and return it (nil addr or "" is a no-op
// returning nil). Errors are returned, not fatal — a busy port should fail
// the flag, not the run.
func Serve(addr string) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	s := NewServer(nil)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}
