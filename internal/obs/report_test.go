package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"twoface/internal/cluster"
)

func sampleBreakdowns() []cluster.Breakdown {
	return []cluster.Breakdown{
		{SyncComm: 1, SyncComp: 2, AsyncComm: 0.5, AsyncComp: 0.25, Other: 0.1},
		{SyncComm: 2, SyncComp: 3, AsyncComm: 1.5, AsyncComp: 0.75, Other: 0.2},
	}
}

func TestReportSetRun(t *testing.T) {
	bds := sampleBreakdowns()
	tfs := []cluster.TransferStats{
		{CollectiveBytes: 800, CollectiveMsgs: 2, OneSidedBytes: 80, OneSidedMsgs: 5},
		{CollectiveBytes: 1600, CollectiveMsgs: 4, OneSidedBytes: 160, OneSidedMsgs: 10},
	}
	modeled := bds[1].NodeTime() // rank 1 is the straggler
	rep := NewReport("test")
	rep.SetRun(bds, tfs, modeled, 3*time.Second)

	if rep.GoVersion == "" {
		t.Fatal("report missing go version")
	}
	if len(rep.Ranks) != 2 {
		t.Fatalf("%d rank reports, want 2", len(rep.Ranks))
	}
	for i, rr := range rep.Ranks {
		if rr.Rank != i || rr.Breakdown != bds[i] || rr.Transfer != tfs[i] {
			t.Fatalf("rank report %d = %+v", i, rr)
		}
		if rr.NodeTime != bds[i].NodeTime() {
			t.Fatalf("rank %d node time %g, want %g", i, rr.NodeTime, bds[i].NodeTime())
		}
	}
	if want := bds[0].Plus(bds[1]); rep.Breakdown != want {
		t.Fatalf("breakdown total %+v, want %+v", rep.Breakdown, want)
	}
	if want := tfs[0].Plus(tfs[1]); rep.Transfer != want {
		t.Fatalf("transfer total %+v, want %+v", rep.Transfer, want)
	}
	if rep.Skew == nil {
		t.Fatal("skew not computed")
	}
	mean := (bds[0].NodeTime() + bds[1].NodeTime()) / 2
	if rep.Skew.MaxNodeTime != modeled || rep.Skew.MeanNodeTime != mean || rep.Skew.MaxOverMean != modeled/mean {
		t.Fatalf("skew = %+v", rep.Skew)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReportValidateRejects(t *testing.T) {
	rep := NewReport("test")
	if err := rep.Validate(); err == nil {
		t.Fatal("empty report validated")
	}
	bds := sampleBreakdowns()
	rep.SetRun(bds, nil, bds[1].NodeTime()*2, time.Second) // makespan != straggler
	if err := rep.Validate(); err == nil {
		t.Fatal("inconsistent makespan validated")
	}
	dir := t.TempDir()
	if err := rep.WriteFile(filepath.Join(dir, "r.json")); err == nil {
		t.Fatal("WriteFile accepted an invalid report")
	}
}

// TestReportRoundTrip writes a full report to disk, reads it back, and
// checks the per-rank modeled-time consistency the acceptance criteria
// require: the reported makespan equals the straggling rank's node time.
func TestReportRoundTrip(t *testing.T) {
	bds := sampleBreakdowns()
	modeled := bds[1].NodeTime()
	rep := NewReport("round-trip")
	rep.Config["matrix"] = "web"
	rep.Config["p"] = 2
	rep.SetRun(bds, nil, modeled, 42*time.Millisecond)
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("c").Add(3)
	snap := reg.Snapshot()
	rep.Metrics = &snap
	rep.Trace = &TraceInfo{Spans: 7, Instants: 2, File: "t.json"}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"tool"`, `"go_version"`, `"config"`, `"modeled_seconds"`, `"breakdown_total"`, `"ranks"`, `"skew"`, `"metrics"`, `"trace"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("report JSON missing %s", key)
		}
	}

	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "round-trip" || back.ModeledSeconds != modeled || len(back.Ranks) != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Metrics == nil || back.Metrics.Counters["c"] != 3 {
		t.Fatalf("metrics did not round-trip: %+v", back.Metrics)
	}
	if back.Trace == nil || !reflect.DeepEqual(*back.Trace, *rep.Trace) {
		t.Fatalf("trace info did not round-trip: %+v", back.Trace)
	}
	// Per-rank modeled-time consistency survives the round trip.
	var max float64
	for i, rr := range back.Ranks {
		if rr.Breakdown != bds[i] {
			t.Fatalf("rank %d breakdown did not round-trip", i)
		}
		if nt := rr.Breakdown.NodeTime(); nt > max {
			max = nt
		}
	}
	if max != back.ModeledSeconds {
		t.Fatalf("makespan %g != max rank node time %g after round trip", back.ModeledSeconds, max)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := AppendTrajectory(path, map[string]any{"run": 1}); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, map[string]any{"run": 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(data, &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 || arr[0]["run"] != float64(1) || arr[1]["run"] != float64(2) {
		t.Fatalf("trajectory = %+v", arr)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}

	// A corrupt history must refuse the append rather than overwrite it.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, map[string]any{"run": 3}); err == nil {
		t.Fatal("append to corrupt trajectory succeeded")
	}
}

func TestRecordSkew(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	RecordSkew(reg, sampleBreakdowns())
	snap := reg.Snapshot()
	bds := sampleBreakdowns()
	max, mean := bds[1].NodeTime(), (bds[0].NodeTime()+bds[1].NodeTime())/2
	if snap.Gauges["exec.node_time.max"] != max {
		t.Fatalf("max gauge = %g, want %g", snap.Gauges["exec.node_time.max"], max)
	}
	if snap.Gauges["exec.node_time.mean"] != mean {
		t.Fatalf("mean gauge = %g, want %g", snap.Gauges["exec.node_time.mean"], mean)
	}
	if snap.Gauges["exec.node_time.skew"] != max/mean {
		t.Fatalf("skew gauge = %g, want %g", snap.Gauges["exec.node_time.skew"], max/mean)
	}
	RecordSkew(reg, nil) // must not panic or divide by zero
}
